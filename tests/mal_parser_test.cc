#include "mal/parser.h"

#include <gtest/gtest.h>

#include "mal/interpreter.h"

namespace mammoth::mal {
namespace {

Program SampleProgram() {
  Program p;
  const int age = p.Bind("people", "age");
  const int cands = p.BindCandidates("people");
  const int sel = p.ThetaSelect(age, cands, Value::Int(1927), CmpOp::kGe);
  const int range =
      p.RangeSelect(age, sel, Value::Int(0), Value::Int(2000), true);
  const int salary = p.Bind("people", "salary");
  const int proj = p.Project(range, salary);
  const int scaled = p.CalcConst(algebra::ArithOp::kMul, proj,
                                 Value::Real(1.5));
  auto [groups, extents, n] = p.Group(proj);
  const int sum = p.Aggr(OpCode::kAggrSum, scaled, groups, n);
  auto [sorted, order] = p.Sort(sum, /*desc=*/true);
  const int top = p.TopN(sorted, 3);
  const int uniq = p.Distinct(proj);
  (void)top;
  (void)uniq;
  p.Result(sorted, "x");
  return p;
}

void ExpectStructurallyEqual(const Program& a, const Program& b) {
  ASSERT_EQ(a.instrs().size(), b.instrs().size());
  for (size_t i = 0; i < a.instrs().size(); ++i) {
    const Instr& x = a.instrs()[i];
    const Instr& y = b.instrs()[i];
    EXPECT_EQ(x.op, y.op) << "instr " << i;
    EXPECT_EQ(x.outputs, y.outputs) << "instr " << i;
    EXPECT_EQ(x.inputs, y.inputs) << "instr " << i;
    EXPECT_EQ(x.cmp, y.cmp) << "instr " << i;
    EXPECT_EQ(x.arith, y.arith) << "instr " << i;
    EXPECT_EQ(x.flag, y.flag) << "instr " << i;
    EXPECT_EQ(x.table, y.table) << "instr " << i;
    EXPECT_EQ(x.column, y.column) << "instr " << i;
    ASSERT_EQ(x.consts.size(), y.consts.size()) << "instr " << i;
    for (size_t c = 0; c < x.consts.size(); ++c) {
      EXPECT_EQ(x.consts[c].ToString(), y.consts[c].ToString())
          << "instr " << i << " const " << c;
    }
  }
}

TEST(MalParserTest, RoundTripsEveryOpcode) {
  const Program p = SampleProgram();
  auto parsed = ParseMal(p.ToString());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ExpectStructurallyEqual(p, *parsed);
  // And the round trip is a fixpoint.
  EXPECT_EQ(p.ToString(), parsed->ToString());
}

TEST(MalParserTest, ParsedProgramExecutes) {
  auto catalog = std::make_shared<Catalog>();
  auto t = Table::Create("people", {{"age", PhysType::kInt32},
                                    {"salary", PhysType::kDouble}});
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        (*t)->Insert({Value::Int(1900 + i), Value::Real(i * 1.0)}).ok());
  }
  ASSERT_TRUE(catalog->Register(*t).ok());

  const std::string text =
      "(v0) := sql.bind(\"people\", \"age\");\n"
      "(v1) := sql.tid(\"people\");\n"
      "(v2) := algebra.thetaselect(v0, v1, 1950, >=);\n"
      "(v3) := sql.bind(\"people\", \"salary\");\n"
      "(v4) := algebra.projection(v2, v3);\n"
      "(v5) := aggr.sum(v4, nil, nil);\n"
      "sql.resultSet(\"total\", v5);\n";
  auto prog = ParseMal(text);
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  Interpreter interp(catalog.get());
  auto r = interp.Run(*prog);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Ages 1950..1999 have salaries 50..99: sum = (50+99)*50/2.
  EXPECT_DOUBLE_EQ(r->columns[0]->ValueAt<double>(0), 3725.0);
}

TEST(MalParserTest, WhitespaceAndEmptyLinesTolerated) {
  auto p = ParseMal("\n\n  (v0) := sql.tid(\"t\");\n\n");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->instrs().size(), 1u);
  EXPECT_EQ(p->nvars(), 1);
}

TEST(MalParserTest, RejectsSsaViolations) {
  EXPECT_FALSE(ParseMal("(v0) := sql.tid(\"t\");\n"
                        "(v0) := sql.tid(\"t\");\n")
                   .ok());
  EXPECT_FALSE(
      ParseMal("(v1) := algebra.projection(v0, v0);\n").ok());  // undefined
}

TEST(MalParserTest, RejectsMalformedLines) {
  EXPECT_FALSE(ParseMal("(v0) := nosuch.op(\"t\");").ok());
  EXPECT_FALSE(ParseMal("(v0) := sql.tid(\"t\")").ok());  // missing ';'
  EXPECT_FALSE(ParseMal("(v0) := sql.tid(\"unterminated);").ok());
  EXPECT_FALSE(ParseMal("(v0) := sql.tid();").ok());  // wrong arity
  EXPECT_FALSE(
      ParseMal("(v0, v1) := sql.tid(\"t\");").ok());  // wrong output count
  EXPECT_FALSE(ParseMal("(v0) := algebra.thetaselect(v9, nil, 5, ==);")
                   .ok());  // undefined input
}

TEST(MalParserTest, FlagsRoundTrip) {
  Program p;
  const int age = p.Bind("t", "a");
  const int cands = p.BindCandidates("t");
  p.RangeSelect(age, cands, Value::Int(1), Value::Int(2), /*anti=*/true);
  auto [sorted, order] = p.Sort(age, /*desc=*/true);
  (void)sorted;
  (void)order;
  const std::string text = p.ToString();
  EXPECT_NE(text.find("anti"), std::string::npos);
  EXPECT_NE(text.find("desc"), std::string::npos);
  auto parsed = ParseMal(text);
  ASSERT_TRUE(parsed.ok());
  ExpectStructurallyEqual(p, *parsed);
}

}  // namespace
}  // namespace mammoth::mal
