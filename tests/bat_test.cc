#include "core/bat.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/persist.h"

namespace mammoth {
namespace {

TEST(ColumnTest, AppendAndRead) {
  Column c(PhysType::kInt32);
  for (int32_t i = 0; i < 1000; ++i) c.Append<int32_t>(i * 2);
  ASSERT_EQ(c.size(), 1000u);
  const int32_t* v = c.Data<int32_t>();
  for (int32_t i = 0; i < 1000; ++i) EXPECT_EQ(v[i], i * 2);
}

TEST(ColumnTest, AlignmentIsCacheLine) {
  Column c(PhysType::kInt64);
  c.Reserve(10);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(c.raw_data()) % Column::kAlignment,
            0u);
}

TEST(ColumnTest, MoveTransfersOwnership) {
  Column a(PhysType::kInt32);
  a.Append<int32_t>(7);
  Column b = std::move(a);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.Data<int32_t>()[0], 7);
}

TEST(ColumnTest, CloneIsDeep) {
  Column a(PhysType::kInt32);
  a.Append<int32_t>(1);
  Column b = a.Clone();
  b.Data<int32_t>()[0] = 2;
  EXPECT_EQ(a.Data<int32_t>()[0], 1);
}

TEST(ColumnTest, AdoptExternalCopiesOnGrowth) {
  int32_t external[4] = {1, 2, 3, 4};
  Column c(PhysType::kInt32);
  c.AdoptExternal(external, 4);
  EXPECT_FALSE(c.owns());
  c.Append<int32_t>(5);  // must trigger copy-on-write
  EXPECT_TRUE(c.owns());
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(c.Data<int32_t>()[4], 5);
  EXPECT_EQ(external[0], 1);
}

TEST(BatTest, DenseHeadIsVirtual) {
  BatPtr b = MakeBat<int32_t>({10, 20, 30});
  EXPECT_EQ(b->Count(), 3u);
  EXPECT_EQ(b->hseqbase(), 0u);
  EXPECT_EQ(b->ValueAt<int32_t>(1), 20);
}

TEST(BatTest, DenseTailNeedsNoPayload) {
  BatPtr b = Bat::NewDense(100, 50);
  EXPECT_TRUE(b->IsDenseTail());
  EXPECT_EQ(b->Count(), 50u);
  EXPECT_EQ(b->PayloadBytes(), 0u);
  EXPECT_EQ(b->OidAt(0), 100u);
  EXPECT_EQ(b->OidAt(49), 149u);
  EXPECT_TRUE(b->props().sorted);
  EXPECT_TRUE(b->props().key);
}

TEST(BatTest, MaterializeDense) {
  BatPtr b = Bat::NewDense(5, 3);
  b->MaterializeDense();
  EXPECT_FALSE(b->IsDenseTail());
  ASSERT_EQ(b->Count(), 3u);
  EXPECT_EQ(b->TailData<Oid>()[0], 5u);
  EXPECT_EQ(b->TailData<Oid>()[2], 7u);
}

TEST(BatTest, DerivePropsSorted) {
  BatPtr b = MakeBat<int32_t>({1, 2, 2, 5});
  b->DeriveProps();
  EXPECT_TRUE(b->props().sorted);
  EXPECT_FALSE(b->props().revsorted);
  EXPECT_FALSE(b->props().key);
}

TEST(BatTest, DerivePropsStrictlyDescending) {
  BatPtr b = MakeBat<int32_t>({9, 5, 1});
  b->DeriveProps();
  EXPECT_FALSE(b->props().sorted);
  EXPECT_TRUE(b->props().revsorted);
  EXPECT_TRUE(b->props().key);
}

TEST(BatTest, MutationInvalidatesProps) {
  BatPtr b = MakeBat<int32_t>({1, 2, 3});
  b->DeriveProps();
  ASSERT_TRUE(b->props().sorted);
  b->MutableTailData<int32_t>()[0] = 99;
  EXPECT_FALSE(b->props().sorted);
}

TEST(BatTest, CloneSharesHeapDeepCopiesTail) {
  BatPtr b = MakeStringBat({"ape", "bee"});
  BatPtr c = b->Clone();
  EXPECT_EQ(b->heap().get(), c->heap().get());
  EXPECT_EQ(c->StringAt(0), "ape");
}

TEST(StringBatTest, InterningDeduplicates) {
  BatPtr b = MakeStringBat({"john", "roger", "john", "john"});
  EXPECT_EQ(b->Count(), 4u);
  EXPECT_EQ(b->heap()->DistinctCount(), 2u);
  EXPECT_EQ(b->StringAt(0), "john");
  EXPECT_EQ(b->StringAt(2), "john");
  // Equal strings share the same offset.
  EXPECT_EQ(b->TailData<uint64_t>()[0], b->TailData<uint64_t>()[2]);
}

TEST(StringHeapTest, FindLocatesInterned) {
  StringHeap h;
  const uint64_t off = h.Put("walrus");
  uint64_t found = 0;
  EXPECT_TRUE(h.Find("walrus", &found));
  EXPECT_EQ(found, off);
  EXPECT_FALSE(h.Find("mammoth", &found));
}

TEST(StringHeapTest, RestoreRoundTrips) {
  StringHeap h;
  h.Put("alpha");
  h.Put("beta");
  StringHeap h2;
  h2.Restore(h.RawBytes(), h.ByteSize());
  EXPECT_EQ(h2.DistinctCount(), 2u);
  uint64_t off = 0;
  ASSERT_TRUE(h2.Find("beta", &off));
  EXPECT_EQ(h2.Get(off), "beta");
}

class PersistTest : public ::testing::Test {
 protected:
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_ = ::testing::TempDir() + "/mammoth_persist_test.mbat";
};

TEST_F(PersistTest, SaveLoadNumericRoundTrip) {
  BatPtr b = MakeBat<int64_t>({-5, 0, 7, 1LL << 40});
  b->DeriveProps();
  ASSERT_TRUE(SaveBat(*b, path_).ok());
  auto loaded = LoadBat(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->Count(), 4u);
  EXPECT_EQ((*loaded)->ValueAt<int64_t>(3), 1LL << 40);
  EXPECT_TRUE((*loaded)->props().sorted);
}

TEST_F(PersistTest, MapBatIsZeroCopyReadable) {
  BatPtr b = Bat::New(PhysType::kInt32);
  for (int32_t i = 0; i < 10000; ++i) b->Append<int32_t>(i);
  ASSERT_TRUE(SaveBat(*b, path_).ok());
  auto mapped = MapBat(path_);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_FALSE((*mapped)->tail().owns());
  EXPECT_EQ((*mapped)->ValueAt<int32_t>(9999), 9999);
}

TEST_F(PersistTest, SaveLoadStringRoundTrip) {
  BatPtr b = MakeStringBat({"john", "roger", "bob", "john"});
  ASSERT_TRUE(SaveBat(*b, path_).ok());
  auto loaded = LoadBat(path_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->Count(), 4u);
  EXPECT_EQ((*loaded)->StringAt(1), "roger");
  EXPECT_EQ((*loaded)->StringAt(3), "john");
}

TEST_F(PersistTest, LoadRejectsGarbage) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  std::fputs("not a bat file at all, sorry", f);
  std::fclose(f);
  EXPECT_FALSE(LoadBat(path_).ok());
}

TEST_F(PersistTest, DenseTailSavedMaterialized) {
  BatPtr b = Bat::NewDense(42, 8);
  ASSERT_TRUE(SaveBat(*b, path_).ok());
  auto loaded = LoadBat(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->OidAt(0), 42u);
  EXPECT_EQ((*loaded)->OidAt(7), 49u);
}

}  // namespace
}  // namespace mammoth
