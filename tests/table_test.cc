#include "core/table.h"

#include <gtest/gtest.h>

#include "core/catalog.h"
#include "core/select.h"

namespace mammoth {
namespace {

TablePtr MakePeople() {
  auto t = Table::Create(
      "people", {{"name", PhysType::kStr}, {"age", PhysType::kInt32}});
  EXPECT_TRUE(t.ok());
  TablePtr people = *t;
  // Figure 1's BATs: name/age of four actors.
  EXPECT_TRUE(
      people->Insert({Value::Str("John Wayne"), Value::Int(1907)}).ok());
  EXPECT_TRUE(
      people->Insert({Value::Str("Roger Moore"), Value::Int(1927)}).ok());
  EXPECT_TRUE(
      people->Insert({Value::Str("Bob Fosse"), Value::Int(1927)}).ok());
  EXPECT_TRUE(
      people->Insert({Value::Str("Will Smith"), Value::Int(1968)}).ok());
  return people;
}

TEST(TableTest, CreateValidatesSchema) {
  EXPECT_FALSE(Table::Create("t", {}).ok());
  EXPECT_FALSE(Table::Create("t", {{"a", PhysType::kInt32},
                                   {"a", PhysType::kInt32}})
                   .ok());
}

TEST(TableTest, InsertGoesToDelta) {
  TablePtr t = MakePeople();
  EXPECT_EQ(t->VisibleRowCount(), 4u);
  EXPECT_EQ(t->PendingInsertCount(), 4u);
  EXPECT_EQ(t->MainColumn(0)->Count(), 0u);  // main untouched until merge
}

TEST(TableTest, InsertValidatesArityAndTypes) {
  TablePtr t = MakePeople();
  EXPECT_FALSE(t->Insert({Value::Str("x")}).ok());
  EXPECT_FALSE(t->Insert({Value::Int(1), Value::Int(2)}).ok());
  EXPECT_FALSE(t->Insert({Value::Str("x"), Value::Str("y")}).ok());
}

TEST(TableTest, ScanSeesPendingInserts) {
  TablePtr t = MakePeople();
  auto age = t->ScanColumn("age");
  ASSERT_TRUE(age.ok());
  ASSERT_EQ((*age)->Count(), 4u);
  EXPECT_EQ((*age)->ValueAt<int32_t>(3), 1968);
}

TEST(TableTest, SelectOverScan) {
  TablePtr t = MakePeople();
  auto age = t->ScanColumn("age");
  ASSERT_TRUE(age.ok());
  auto r = algebra::ThetaSelect(*age, t->LiveCandidates(), Value::Int(1927),
                                CmpOp::kEq);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Count(), 2u);
}

TEST(TableTest, DeleteHidesRows) {
  TablePtr t = MakePeople();
  BatPtr dead = MakeBat<Oid>({Oid{1}});
  ASSERT_TRUE(t->Delete(dead).ok());
  EXPECT_EQ(t->VisibleRowCount(), 3u);
  BatPtr live = t->LiveCandidates();
  ASSERT_EQ(live->Count(), 3u);
  EXPECT_EQ(live->OidAt(0), 0u);
  EXPECT_EQ(live->OidAt(1), 2u);
}

TEST(TableTest, DeleteIsIdempotentPerOid) {
  TablePtr t = MakePeople();
  ASSERT_TRUE(t->Delete(MakeBat<Oid>({Oid{1}})).ok());
  ASSERT_TRUE(t->Delete(MakeBat<Oid>({Oid{1}, Oid{2}})).ok());
  EXPECT_EQ(t->DeletedCount(), 2u);
  EXPECT_EQ(t->VisibleRowCount(), 2u);
}

TEST(TableTest, DeleteOutOfRangeRejected) {
  TablePtr t = MakePeople();
  EXPECT_FALSE(t->Delete(MakeBat<Oid>({Oid{99}})).ok());
}

TEST(TableTest, MergeDeltasCompacts) {
  TablePtr t = MakePeople();
  ASSERT_TRUE(t->Delete(MakeBat<Oid>({Oid{0}, Oid{3}})).ok());
  ASSERT_TRUE(t->MergeDeltas().ok());
  EXPECT_EQ(t->VisibleRowCount(), 2u);
  EXPECT_EQ(t->PendingInsertCount(), 0u);
  EXPECT_EQ(t->DeletedCount(), 0u);
  auto name = t->ScanColumn("name");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ((*name)->StringAt(0), "Roger Moore");
  EXPECT_EQ((*name)->StringAt(1), "Bob Fosse");
}

TEST(TableTest, InsertAfterMergeAppends) {
  TablePtr t = MakePeople();
  ASSERT_TRUE(t->MergeDeltas().ok());
  EXPECT_EQ(t->MainColumn(0)->Count(), 4u);
  ASSERT_TRUE(t->Insert({Value::Str("Ada"), Value::Int(1815)}).ok());
  EXPECT_EQ(t->VisibleRowCount(), 5u);
  auto age = t->ScanColumn("age");
  ASSERT_TRUE(age.ok());
  EXPECT_EQ((*age)->ValueAt<int32_t>(4), 1815);
}

TEST(TableTest, SnapshotIsolatesDeltas) {
  TablePtr t = MakePeople();
  TablePtr snap = t->Snapshot();
  ASSERT_TRUE(t->Insert({Value::Str("New"), Value::Int(2000)}).ok());
  ASSERT_TRUE(snap->Delete(MakeBat<Oid>({Oid{0}})).ok());
  EXPECT_EQ(t->VisibleRowCount(), 5u);
  EXPECT_EQ(snap->VisibleRowCount(), 3u);
}

TEST(TableTest, ColumnIndexLookup) {
  TablePtr t = MakePeople();
  auto idx = t->ColumnIndex("age");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 1u);
  EXPECT_FALSE(t->ColumnIndex("salary").ok());
}

TEST(CatalogTest, RegisterGetDrop) {
  Catalog cat;
  ASSERT_TRUE(cat.Register(MakePeople()).ok());
  EXPECT_TRUE(cat.Contains("people"));
  EXPECT_FALSE(cat.Register(MakePeople()).ok());  // duplicate
  auto t = cat.Get("people");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "people");
  EXPECT_FALSE(cat.Get("nope").ok());
  ASSERT_TRUE(cat.Drop("people").ok());
  EXPECT_FALSE(cat.Contains("people"));
  EXPECT_FALSE(cat.Drop("people").ok());
}

TEST(CatalogTest, JoinIndexRegistry) {
  Catalog cat;
  ASSERT_TRUE(cat.Register(MakePeople()).ok());
  auto t2 = Table::Create("movies", {{"star", PhysType::kStr}});
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(cat.Register(*t2).ok());
  ASSERT_TRUE(cat.RegisterJoinIndex("people", "name", "movies", "star").ok());
  EXPECT_TRUE(cat.HasJoinIndex("people", "name", "movies", "star"));
  EXPECT_TRUE(cat.HasJoinIndex("movies", "star", "people", "name"));
  EXPECT_FALSE(cat.HasJoinIndex("people", "age", "movies", "star"));
  EXPECT_FALSE(
      cat.RegisterJoinIndex("people", "name", "ghosts", "boo").ok());
}

}  // namespace
}  // namespace mammoth
