#include "scan/shared_scan.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/select.h"
#include "core/table.h"
#include "parallel/task_pool.h"
#include "scan/cooperative.h"
#include "sql/engine.h"

namespace mammoth::scan {
namespace {

constexpr size_t kChunk = size_t{1} << 16;  // minimum (one morsel) grain

SharedScanConfig SmallConfig() {
  SharedScanConfig config;
  config.chunk_rows = kChunk;
  // These tests assert exact chunk counts at a fixed grain; the
  // byte-adaptive grain has its own tests below.
  config.chunk_bytes = 0;
  config.min_share_rows = kChunk;
  return config;
}

/// A random-valued int64 column of `n` rows (unsorted, so the shared path
/// is eligible).
BatPtr RandomColumn(size_t n, uint64_t seed, int64_t value_range) {
  BatPtr b = Bat::New(PhysType::kInt64);
  b->Resize(n);
  int64_t* data = b->MutableTailData<int64_t>();
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<int64_t>(rng.Uniform(
        static_cast<uint64_t>(value_range)));
  }
  return b;
}

/// Nearly-clustered but unsorted: consecutive pairs swapped, so zone maps
/// stay tight while props().sorted stays false.
BatPtr ClusteredColumn(size_t n) {
  BatPtr b = Bat::New(PhysType::kInt64);
  b->Resize(n);
  int64_t* data = b->MutableTailData<int64_t>();
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<int64_t>(i ^ 1);
  }
  return b;
}

void ExpectBitIdentical(const BatPtr& got, const BatPtr& want) {
  ASSERT_NE(got, nullptr);
  ASSERT_NE(want, nullptr);
  EXPECT_EQ(got->hseqbase(), want->hseqbase());
  EXPECT_EQ(got->props().sorted, want->props().sorted);
  EXPECT_EQ(got->props().revsorted, want->props().revsorted);
  EXPECT_EQ(got->props().key, want->props().key);
  ASSERT_EQ(got->Count(), want->Count());
  if (want->Count() == 0) return;
  ASSERT_FALSE(got->IsDenseTail());
  ASSERT_FALSE(want->IsDenseTail());
  EXPECT_EQ(std::memcmp(got->TailData<Oid>(), want->TailData<Oid>(),
                        want->Count() * sizeof(Oid)),
            0);
}

// ------------------------------------------------ policy cross-checks --

/// Simultaneous mixes: the scheduler's physical chunk loads must equal the
/// simulation's on the identical query mix — both implement the same
/// relevance policy, and with all arrivals at t=0 each needed chunk is
/// loaded exactly once (the union).
TEST(SharedScanPolicyTest, LoadsMatchSimulationForSimultaneousMixes) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed * 977);
    const size_t nchunks = 12 + seed;
    const size_t nqueries = 3 + seed % 4;

    std::vector<ScanQuery> mix;
    for (size_t q = 0; q < nqueries; ++q) {
      ScanQuery query;
      query.first_chunk = rng.Uniform(nchunks);
      query.last_chunk =
          query.first_chunk + rng.Uniform(nchunks - query.first_chunk);
      mix.push_back(query);  // arrival 0, no CPU cost
    }
    ScanConfig sim_config;
    sim_config.total_chunks = nchunks;
    sim_config.chunk_load_seconds = 1.0;
    sim_config.buffer_chunks = 4;
    const ScanStats sim = RunCooperative(sim_config, mix);

    SharedScanScheduler sched(SmallConfig());
    std::vector<SharedScanScheduler::Consumer*> consumers;
    std::vector<std::set<size_t>> got(nqueries);
    for (size_t q = 0; q < nqueries; ++q) {
      std::vector<bool> needed(nchunks, false);
      for (size_t c = mix[q].first_chunk; c <= mix[q].last_chunk; ++c) {
        needed[c] = true;
      }
      consumers.push_back(sched.Attach(
          "t", /*version=*/1, nchunks * kChunk, needed,
          [&got, q](size_t chunk, size_t, size_t, const ChunkBuffer&,
                    const parallel::ExecContext&) {
            got[q].insert(chunk);
            return Status::OK();
          }));
      ASSERT_NE(consumers.back(), nullptr);
    }
    for (auto* c : consumers) {
      ASSERT_TRUE(sched.Drain(c, parallel::ExecContext::Serial()).ok());
    }

    EXPECT_EQ(sched.stats().chunks_loaded, sim.chunk_loads)
        << "seed " << seed;
    for (size_t q = 0; q < nqueries; ++q) {
      EXPECT_EQ(got[q].size(),
                mix[q].last_chunk - mix[q].first_chunk + 1);
      for (size_t c : got[q]) {
        EXPECT_GE(c, mix[q].first_chunk);
        EXPECT_LE(c, mix[q].last_chunk);
      }
    }
  }
}

/// A late arrival attaches to the in-flight pass, receives the remaining
/// chunks with it, and circles back for the missed prefix — total loads
/// n + k, matching the simulation with the same staggered mix and no
/// buffer reuse.
TEST(SharedScanPolicyTest, LateAttachCirclesBackLikeSimulation) {
  const size_t nchunks = 8;
  const size_t kMissed = 3;  // second query arrives after 3 deliveries

  SharedScanScheduler sched(SmallConfig());
  std::set<size_t> first_got, second_got;
  SharedScanScheduler::Consumer* second = nullptr;
  size_t deliveries = 0;
  auto* first = sched.Attach(
      "t", 1, nchunks * kChunk, {},
      [&](size_t chunk, size_t, size_t, const ChunkBuffer&,
          const parallel::ExecContext&) {
        first_got.insert(chunk);
        if (++deliveries == kMissed) {
          // Mid-pass arrival: joins for the remaining chunks.
          second = sched.Attach("t", 1, nchunks * kChunk, {},
                                [&](size_t c, size_t, size_t,
                                    const ChunkBuffer&,
                                    const parallel::ExecContext&) {
                                  second_got.insert(c);
                                  return Status::OK();
                                });
          EXPECT_NE(second, nullptr);
        }
        return Status::OK();
      });
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(sched.Drain(first, parallel::ExecContext::Serial()).ok());
  ASSERT_NE(second, nullptr);
  ASSERT_TRUE(sched.Drain(second, parallel::ExecContext::Serial()).ok());

  EXPECT_EQ(first_got.size(), nchunks);
  EXPECT_EQ(second_got.size(), nchunks);  // circled back for 0..2
  EXPECT_EQ(sched.stats().chunks_loaded, nchunks + kMissed);

  // The simulation agrees: full scan at t=0, second arrival when 3 chunks
  // are done (1s loads), no buffer to serve the missed prefix from.
  ScanConfig sim_config;
  sim_config.total_chunks = nchunks;
  sim_config.chunk_load_seconds = 1.0;
  sim_config.buffer_chunks = 0;
  const ScanStats sim = RunCooperative(
      sim_config, {{0, nchunks - 1, 0.0, 0.0},
                   {0, nchunks - 1, static_cast<double>(kMissed), 0.0}});
  EXPECT_EQ(sim.chunk_loads, sched.stats().chunks_loaded);
}

/// A mismatched pass shape (different table version) refuses the attach
/// instead of mixing rows from different snapshots.
TEST(SharedScanPolicyTest, AttachRejectsMismatchedShape) {
  SharedScanScheduler sched(SmallConfig());
  auto ok = [](size_t, size_t, size_t, const ChunkBuffer&,
               const parallel::ExecContext&) {
    return Status::OK();
  };
  auto* a = sched.Attach("t", 1, 4 * kChunk, {}, ok);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(sched.Attach("t", 2, 4 * kChunk, {}, ok), nullptr);
  EXPECT_EQ(sched.Attach("t", 1, 5 * kChunk, {}, ok), nullptr);
  auto* b = sched.Attach("t", 1, 4 * kChunk, {}, ok);  // same shape: fine
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(sched.ActiveScans("t"), 2u);
  EXPECT_TRUE(sched.Drain(a, parallel::ExecContext::Serial()).ok());
  EXPECT_TRUE(sched.Drain(b, parallel::ExecContext::Serial()).ok());
  EXPECT_EQ(sched.ActiveScans("t"), 0u);
  // Idle group: a new shape may start a fresh pass.
  auto* c = sched.Attach("t", 2, 6 * kChunk, {}, ok);
  ASSERT_NE(c, nullptr);
  EXPECT_TRUE(sched.Drain(c, parallel::ExecContext::Serial()).ok());
}

// ------------------------------------------------------ routed selects --

/// Forces the shared path deterministically: a zero-needs consumer holds
/// the group "busy" so Select() must attach instead of going direct.
class BusyGroup {
 public:
  BusyGroup(SharedScanScheduler* sched, const std::string& table,
            uint64_t version, size_t nrows)
      : sched_(sched) {
    const size_t nchunks =
        (nrows + sched->chunk_rows() - 1) / sched->chunk_rows();
    holder_ = sched->Attach(table, version, nrows,
                            std::vector<bool>(nchunks, false),
                            [](size_t, size_t, size_t, const ChunkBuffer&,
                               const parallel::ExecContext&) {
                              return Status::OK();
                            });
    EXPECT_NE(holder_, nullptr);
  }
  ~BusyGroup() {
    EXPECT_TRUE(
        sched_->Drain(holder_, parallel::ExecContext::Serial()).ok());
  }

 private:
  SharedScanScheduler* sched_;
  SharedScanScheduler::Consumer* holder_;
};

TEST(SharedScanSelectTest, SharedSelectBitIdenticalToKernel) {
  const size_t n = 5 * kChunk + 1234;  // ragged final chunk
  const BatPtr col = RandomColumn(n, 42, 100000);
  SharedScanScheduler sched(SmallConfig());

  struct Case {
    ScanPredicate pred;
    const char* what;
  };
  const std::vector<Case> cases = {
      {ScanPredicate::Theta(Value::Int(50000), CmpOp::kLt), "lt"},
      {ScanPredicate::Theta(Value::Int(77), CmpOp::kEq), "eq"},
      {ScanPredicate::Theta(Value::Int(77), CmpOp::kNe), "ne"},
      {ScanPredicate::Range(Value::Int(1000), Value::Int(2000), false),
       "range"},
      {ScanPredicate::Range(Value::Int(1000), Value::Int(99000), true),
       "anti-range"},
      {ScanPredicate::Range(Value::Nil(), Value::Int(500), false),
       "open-low"},
  };
  uint64_t version = 1;
  for (const Case& c : cases) {
    Result<BatPtr> want =
        c.pred.kind == ScanPredicate::Kind::kTheta
            ? algebra::ThetaSelect(col, nullptr, c.pred.v, c.pred.op,
                                   parallel::ExecContext::Serial())
            : algebra::RangeSelect(col, nullptr, c.pred.lo, c.pred.hi, true,
                                   true, c.pred.anti,
                                   parallel::ExecContext::Serial());
    ASSERT_TRUE(want.ok()) << c.what;

    // Direct route (group idle).
    auto direct = sched.Select(col, "t", "v", version, c.pred,
                               parallel::ExecContext::Serial());
    ASSERT_TRUE(direct.ok()) << c.what;
    ExpectBitIdentical(*direct, *want);

    // Shared route (group held busy).
    {
      BusyGroup busy(&sched, "t", version, n);
      auto shared = sched.Select(col, "t", "v", version, c.pred,
                                 parallel::ExecContext::Serial());
      ASSERT_TRUE(shared.ok()) << c.what;
      ExpectBitIdentical(*shared, *want);
    }
    ++version;  // fresh zone map per case is irrelevant; vary for variety
  }
  EXPECT_GT(sched.stats().scans_attached, 0u);
  EXPECT_GT(sched.stats().scans_direct, 0u);
}

TEST(SharedScanSelectTest, ZoneMapSkipsProvablyEmptyChunks) {
  const size_t n = 6 * kChunk;
  const BatPtr col = ClusteredColumn(n);
  ASSERT_FALSE(col->props().sorted);
  SharedScanScheduler sched(SmallConfig());

  const auto pred =
      ScanPredicate::Range(Value::Int(10), Value::Int(20), false);
  const auto want = algebra::RangeSelect(col, nullptr, pred.lo, pred.hi,
                                         true, true, false,
                                         parallel::ExecContext::Serial());
  ASSERT_TRUE(want.ok());

  BusyGroup busy(&sched, "t", 1, n);
  auto shared =
      sched.Select(col, "t", "v", 1, pred, parallel::ExecContext::Serial());
  ASSERT_TRUE(shared.ok());
  ExpectBitIdentical(*shared, *want);
  EXPECT_EQ((*shared)->Count(), 11u);  // values 10..20 live in chunk 0
  // Only chunk 0 can contain [10, 20]; the other 5 were proven empty.
  EXPECT_EQ(sched.stats().chunks_skipped, 5u);
  EXPECT_EQ(sched.stats().chunks_loaded, 1u);
}

TEST(SharedScanSelectTest, IneligibleColumnsTakeKernelPath) {
  SharedScanScheduler sched(SmallConfig());
  // Short column: correct result, no registration at all.
  const BatPtr tiny = RandomColumn(1000, 7, 100);
  auto r = sched.Select(tiny, "t", "v", 1,
                        ScanPredicate::Theta(Value::Int(50), CmpOp::kLt),
                        parallel::ExecContext::Serial());
  ASSERT_TRUE(r.ok());
  const auto want =
      algebra::ThetaSelect(tiny, nullptr, Value::Int(50), CmpOp::kLt,
                           parallel::ExecContext::Serial());
  ASSERT_TRUE(want.ok());
  ExpectBitIdentical(*r, *want);
  EXPECT_EQ(sched.stats().scans_attached, 0u);
  EXPECT_EQ(sched.stats().scans_direct, 0u);
}

/// Concurrent Selects through one scheduler are each bit-identical to the
/// serial kernel, for worker pools of 1/2/4/8 — the tentpole correctness
/// guarantee under real concurrency (TSan covers the synchronization).
TEST(SharedScanSelectTest, ConcurrentSelectsBitIdenticalAcrossPools) {
  const size_t n = 4 * kChunk + 999;
  const BatPtr col = RandomColumn(n, 99, 50000);

  struct Query {
    int64_t lo, hi;
  };
  std::vector<Query> queries;
  for (int i = 0; i < 6; ++i) {
    queries.push_back({i * 5000, 20000 + i * 4000});  // overlapping ranges
  }
  std::vector<BatPtr> want(queries.size());
  for (size_t q = 0; q < queries.size(); ++q) {
    auto w = algebra::RangeSelect(col, nullptr, Value::Int(queries[q].lo),
                                  Value::Int(queries[q].hi), true, true,
                                  false, parallel::ExecContext::Serial());
    ASSERT_TRUE(w.ok());
    want[q] = *w;
  }

  for (int threads : {1, 2, 4, 8}) {
    parallel::TaskPool pool(threads);
    parallel::ExecContext ctx(&pool);
    SharedScanScheduler sched(SmallConfig());
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
      workers.emplace_back([&, t] {
        for (int round = 0; round < 3; ++round) {
          const size_t q = (t + round) % queries.size();
          auto r = sched.Select(
              col, "t", "v", 1,
              ScanPredicate::Range(Value::Int(queries[q].lo),
                                   Value::Int(queries[q].hi), false),
              ctx);
          ASSERT_TRUE(r.ok());
          ExpectBitIdentical(*r, want[q]);
        }
      });
    }
    for (auto& w : workers) w.join();
    const auto s = sched.stats();
    EXPECT_EQ(s.scans_attached + s.scans_direct, 12u) << threads;
  }
}

// -------------------------------------------- engine + recycler rides --

TablePtr MakeEngineTable(size_t nrows) {
  BatPtr id = Bat::New(PhysType::kInt64);
  id->Resize(nrows);
  int64_t* idp = id->MutableTailData<int64_t>();
  for (size_t i = 0; i < nrows; ++i) idp[i] = static_cast<int64_t>(i);
  BatPtr val = RandomColumn(nrows, 1234, 10000);
  auto t = Table::FromColumns(
      "metrics",
      {{"id", PhysType::kInt64}, {"val", PhysType::kInt64}},
      {id, val});
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return *t;
}

/// End-to-end: concurrent sessions through sql::Engine with an attached
/// scheduler return exactly what a plain engine returns serially.
TEST(SharedScanEngineTest, ConcurrentEngineSelectsMatchPlainEngine) {
  const size_t nrows = 3 * kChunk + 500;
  const std::vector<std::string> queries = {
      "SELECT id, val FROM metrics WHERE val >= 100 AND val <= 6000",
      "SELECT id FROM metrics WHERE val >= 2000 AND val <= 8000",
      "SELECT COUNT(*), SUM(val) FROM metrics WHERE val >= 500 AND "
      "val <= 9000",
      "SELECT val FROM metrics WHERE val >= 4000 AND val <= 4200",
  };

  sql::Engine plain;
  ASSERT_TRUE(plain.catalog()->Register(MakeEngineTable(nrows)).ok());
  std::vector<std::string> expected;
  for (const auto& q : queries) {
    auto r = plain.Execute(q, parallel::ExecContext::Serial());
    ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    expected.push_back(r->ToText(1 << 20));
  }

  for (int threads : {1, 2, 4, 8}) {
    sql::Engine engine;
    ASSERT_TRUE(engine.catalog()->Register(MakeEngineTable(nrows)).ok());
    SharedScanScheduler sched(SmallConfig());
    engine.AttachSharedScans(&sched);
    parallel::TaskPool pool(threads);
    parallel::ExecContext ctx(&pool);

    std::vector<std::thread> sessions;
    for (int s = 0; s < 6; ++s) {
      sessions.emplace_back([&, s] {
        for (int round = 0; round < 3; ++round) {
          const size_t q = (s + round) % queries.size();
          auto r = engine.Execute(queries[q], ctx);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          EXPECT_EQ(r->ToText(1 << 20), expected[q]) << queries[q];
        }
      });
    }
    for (auto& s : sessions) s.join();
    // Every query's WHERE is a full-column range scan of an eligible
    // column, so each one must have gone through the scheduler.
    const auto s = sched.stats();
    EXPECT_EQ(s.scans_attached + s.scans_direct, 18u) << threads;
  }
}

/// Satellite regression (MVCC): DML no longer wipes the recycler — bind
/// signatures key on the snapshot-visible version, so pre-DML entries
/// simply become unreachable for post-DML readers (never served stale)
/// while surviving in the cache for any snapshot that can still use them.
TEST(SharedScanEngineTest, RecyclerVersionKeyedAcrossDml) {
  sql::Engine engine;
  recycle::Recycler rec(size_t{1} << 24);
  engine.AttachRecycler(&rec);
  ASSERT_TRUE(engine
                  .ExecuteScript(
                      "CREATE TABLE kv (k INT, v INT);"
                      "INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30);")
                  .ok());

  const std::string q = "SELECT k, v FROM kv WHERE v >= 10 AND v <= 99";
  auto first = engine.Execute(q);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->RowCount(), 3u);
  EXPECT_GT(rec.stats().entries, 0u);  // SELECT populated the cache

  // Repeat: served (at least partly) from the recycler, same answer.
  auto repeat = engine.Execute(q);
  ASSERT_TRUE(repeat.ok());
  EXPECT_EQ(repeat->RowCount(), 3u);
  EXPECT_GT(rec.stats().hits, 0u);

  // DML bumps the visible version: entries survive (no wholesale Clear)
  // but the next SELECT keys differently and must see the new row.
  ASSERT_TRUE(engine.Execute("INSERT INTO kv VALUES (4, 40)").ok());
  EXPECT_GT(rec.stats().entries, 0u);
  auto after = engine.Execute(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->RowCount(), 4u);

  ASSERT_TRUE(engine.Execute("DELETE FROM kv WHERE v = 40").ok());
  auto gone = engine.Execute(q);
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->RowCount(), 3u);
}

/// Satellite (MVCC): scans inside an open transaction still ride the
/// shared pass — the pass sweeps the physical column, and each consumer
/// truncates deliveries to its own snapshot's dense visible prefix. A
/// pinned-snapshot reader and a latest-state reader share one scheduler
/// concurrently, and each gets exactly its own visibility, bit-identical
/// to a plain serial engine at the matching state.
TEST(SharedScanEngineTest, TxnReadersShareOnePassWithOwnSnapshots) {
  const size_t nrows = 3 * kChunk + 500;
  const std::string q =
      "SELECT COUNT(*), SUM(val) FROM metrics WHERE val >= 100 AND "
      "val <= 9000";

  // Reference answers from a plain serial engine: before and after the
  // extra row (MakeEngineTable is seed-deterministic).
  sql::Engine plain;
  ASSERT_TRUE(plain.catalog()->Register(MakeEngineTable(nrows)).ok());
  auto r_old = plain.Execute(q, parallel::ExecContext::Serial());
  ASSERT_TRUE(r_old.ok());
  const std::string expected_old = r_old->ToText(1 << 20);
  ASSERT_TRUE(plain.Execute("INSERT INTO metrics VALUES (777777, 5000)").ok());
  auto r_new = plain.Execute(q, parallel::ExecContext::Serial());
  ASSERT_TRUE(r_new.ok());
  const std::string expected_new = r_new->ToText(1 << 20);
  ASSERT_NE(expected_old, expected_new);

  for (int threads : {1, 4}) {
    sql::Engine engine;
    ASSERT_TRUE(engine.catalog()->Register(MakeEngineTable(nrows)).ok());
    SharedScanScheduler sched(SmallConfig());
    engine.AttachSharedScans(&sched);
    parallel::TaskPool pool(threads);
    parallel::ExecContext ctx(&pool);

    // Pin three snapshots before the write…
    std::vector<sql::SessionPtr> pinned;
    for (int i = 0; i < 3; ++i) {
      pinned.push_back(engine.CreateSession());
      ASSERT_TRUE(engine.ExecuteSession(pinned.back(), "BEGIN").ok());
      // First read pins the snapshot at BEGIN-time state.
      ASSERT_TRUE(
          engine.ExecuteSession(pinned.back(), "SELECT COUNT(*) FROM metrics")
              .ok());
    }
    // …then commit the extra row.
    ASSERT_TRUE(
        engine.Execute("INSERT INTO metrics VALUES (777777, 5000)").ok());

    // Snapshot readers and latest readers hammer the same scheduler.
    std::vector<std::thread> readers;
    for (int i = 0; i < 3; ++i) {
      readers.emplace_back([&, i] {
        for (int round = 0; round < 3; ++round) {
          auto r = engine.ExecuteSession(pinned[i], q, ctx);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          EXPECT_EQ(r->ToText(1 << 20), expected_old)
              << "snapshot reader leaked a later commit";
        }
      });
      readers.emplace_back([&] {
        for (int round = 0; round < 3; ++round) {
          auto r = engine.Execute(q, ctx);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          EXPECT_EQ(r->ToText(1 << 20), expected_new)
              << "latest reader missed the committed row";
        }
      });
    }
    for (auto& t : readers) t.join();
    for (auto& s : pinned) {
      ASSERT_TRUE(engine.ExecuteSession(s, "COMMIT").ok());
    }
  }
}

/// Satellite: one recycler shared by concurrent sessions (the engine now
/// guards it internally) — hammered from many threads under TSan.
TEST(SharedScanEngineTest, RecyclerSafeUnderConcurrentSessions) {
  sql::Engine engine;
  recycle::Recycler rec(size_t{1} << 22);
  engine.AttachRecycler(&rec);
  ASSERT_TRUE(engine.catalog()->Register(MakeEngineTable(kChunk)).ok());

  const std::vector<std::string> queries = {
      "SELECT id FROM metrics WHERE val >= 100 AND val <= 5000",
      "SELECT id FROM metrics WHERE val >= 1000 AND val <= 4000",
      "SELECT COUNT(*) FROM metrics WHERE val >= 100 AND val <= 5000",
  };
  std::vector<std::thread> sessions;
  for (int s = 0; s < 6; ++s) {
    sessions.emplace_back([&, s] {
      for (int round = 0; round < 8; ++round) {
        if (s == 5 && round % 4 == 3) {
          // One writer session mixes in DML (exclusive lock + Clear()).
          auto r = engine.Execute(
              "INSERT INTO metrics VALUES (999999, 2500)");
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          continue;
        }
        const auto& q = queries[(s + round) % queries.size()];
        auto r = engine.Execute(q, parallel::ExecContext::Serial());
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
    });
  }
  for (auto& s : sessions) s.join();
  const auto stats = rec.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
}

/// Direct hammering of the recycler API from many threads (Lookup,
/// Insert, range registration/subsumption, Clear) — TSan coverage for
/// the mutex added in this change.
TEST(SharedScanEngineTest, RecyclerApiThreadSafe) {
  recycle::Recycler rec(size_t{1} << 20, recycle::Policy::kRandom);
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < 300; ++i) {
        const uint64_t sig = rng.Uniform(64);
        std::vector<recycle::CachedVal> outs;
        if (rec.Lookup(sig, &outs)) continue;
        recycle::CachedVal v;
        v.bat = Bat::New(PhysType::kInt32);
        v.bat->Resize(64);
        rec.Insert(sig, {v}, 0.001);
        rec.RegisterRange(sig % 8, 0.0, static_cast<double>(sig), sig);
        BatPtr cands;
        rec.LookupRangeSuperset(sig % 8, 1.0, 2.0, &cands);
        if (i % 97 == 96) rec.Clear();
      }
    });
  }
  for (auto& t : threads) t.join();
}

// --------------------------------------------- byte-adaptive chunking --

/// The pass grain derives from chunk_bytes / width, morsel-aligned with a
/// one-morsel floor; chunk_bytes = 0 falls back to the fixed row grain.
TEST(SharedScanAdaptiveTest, RowsPerChunkScalesWithValueWidth) {
  SharedScanConfig config;  // default: chunk_bytes = 1 MiB
  SharedScanScheduler sched(config);
  EXPECT_EQ(sched.RowsPerChunk(4), size_t{1} << 18);  // int32
  EXPECT_EQ(sched.RowsPerChunk(8), size_t{1} << 17);  // int64/double
  EXPECT_EQ(sched.RowsPerChunk(2), size_t{1} << 19);  // int16
  // Very wide values clamp at one morsel, never below.
  EXPECT_EQ(sched.RowsPerChunk(size_t{1} << 10), size_t{1} << 16);
  // Non-power-of-two widths still come out morsel-aligned.
  EXPECT_EQ(sched.RowsPerChunk(3) % (size_t{1} << 16), 0u);

  SharedScanConfig fixed;
  fixed.chunk_bytes = 0;
  fixed.chunk_rows = 3 * kChunk;
  SharedScanScheduler fsched(fixed);
  EXPECT_EQ(fsched.RowsPerChunk(8), 3 * kChunk);
  EXPECT_EQ(fsched.RowsPerChunk(4), 3 * kChunk);
}

/// An int64 pass sweeps half the rows per chunk of an int32 pass (equal
/// chunk bytes), visible in the physical load count — and the result
/// stays bit-identical to the kernel at any grain.
TEST(SharedScanAdaptiveTest, PassGrainFollowsColumnWidth) {
  const size_t n = size_t{1} << 19;  // 512Ki rows, >= min_share_rows
  SharedScanConfig config;           // 1 MiB chunks
  SharedScanScheduler sched(config);
  const BatPtr col64 = RandomColumn(n, 11, 1000);
  const auto pred = ScanPredicate::Theta(Value::Int(500), CmpOp::kLt);

  auto got =
      sched.Select(col64, "t", "v", 1, pred, parallel::ExecContext::Serial());
  ASSERT_TRUE(got.ok());
  const auto want = algebra::ThetaSelect(col64, nullptr, pred.v, pred.op,
                                         parallel::ExecContext::Serial());
  ASSERT_TRUE(want.ok());
  ExpectBitIdentical(*got, *want);
  // 2^19 int64 rows at 2^17 rows/chunk = 4 loads (int32 would be 2).
  EXPECT_EQ(sched.stats().chunks_loaded, 4u);
}

/// A scan joining an in-flight pass adopts that pass's grain (the chunk
/// grid lives over row positions), keeping deliveries shareable across
/// columns instead of falling back.
TEST(SharedScanAdaptiveTest, JoinerAdoptsPassGrain) {
  const size_t n = size_t{1} << 19;
  SharedScanScheduler sched;  // adaptive default config
  const BatPtr col = RandomColumn(n, 13, 1000);
  const auto pred = ScanPredicate::Theta(Value::Int(100), CmpOp::kGe);

  // Pin a pass at the one-morsel grain via the low-level protocol...
  const size_t pinned = kChunk;
  auto* holder = sched.Attach(
      "t", 1, n, std::vector<bool>(n / pinned, false),
      [](size_t, size_t, size_t, const ChunkBuffer&,
         const parallel::ExecContext&) {
        return Status::OK();
      },
      pinned);
  ASSERT_NE(holder, nullptr);

  // ...then a routed Select must join it at that grain, not its own.
  auto got =
      sched.Select(col, "t", "v", 1, pred, parallel::ExecContext::Serial());
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(sched.Drain(holder, parallel::ExecContext::Serial()).ok());

  const auto want = algebra::ThetaSelect(col, nullptr, pred.v, pred.op,
                                         parallel::ExecContext::Serial());
  ASSERT_TRUE(want.ok());
  ExpectBitIdentical(*got, *want);
  EXPECT_EQ(sched.stats().scans_attached, 2u);  // holder + joiner
  EXPECT_EQ(sched.stats().chunks_loaded, n / pinned);  // pinned grain won
}

}  // namespace
}  // namespace mammoth::scan
