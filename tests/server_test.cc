#include "server/server.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/table.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/wire.h"
#include "sql/engine.h"

namespace mammoth {
namespace {

using server::AdmissionConfig;
using server::AdmissionController;
using server::Client;
using server::EncodeResult;
using server::Server;
using server::ServerConfig;

// Deterministic dataset shared by the server engine and the in-process
// reference engine; sized to stay quick under TSan.
constexpr int kRows = 2000;

std::string SetupScript() {
  std::string script =
      "CREATE TABLE sensors (id INT, temp INT, room VARCHAR(16));"
      "CREATE TABLE rooms (room VARCHAR(16), floor INT);"
      "INSERT INTO rooms VALUES ('lab', 1), ('office', 2), ('hall', 3);";
  script += "INSERT INTO sensors VALUES ";
  for (int i = 0; i < kRows; ++i) {
    if (i > 0) script += ", ";
    const char* room =
        i % 3 == 0 ? "lab" : (i % 3 == 1 ? "office" : "hall");
    script += "(" + std::to_string(i) + ", " +
              std::to_string((i * 37) % 500) + ", '" + room + "')";
  }
  script += ";";
  return script;
}

const std::vector<std::string>& Queries() {
  static const std::vector<std::string> queries = {
      "SELECT id, temp FROM sensors WHERE temp >= 100 AND temp <= 200",
      "SELECT room, COUNT(*), SUM(temp) FROM sensors GROUP BY room",
      "SELECT temp FROM sensors WHERE room = 'lab' ORDER BY temp DESC "
      "LIMIT 25",
      "SELECT MIN(temp), MAX(temp), COUNT(*) FROM sensors",
      "SELECT sensors.id, rooms.floor FROM sensors, rooms "
      "WHERE sensors.room = rooms.room AND sensors.temp < 40",
  };
  return queries;
}

/// Wire encodings of every query run on a fresh in-process engine — the
/// byte-exact yardstick remote sessions must reproduce.
std::vector<std::string> InProcessEncodings() {
  sql::Engine engine;
  auto setup = engine.ExecuteScript(SetupScript());
  EXPECT_TRUE(setup.ok()) << setup.status().ToString();
  std::vector<std::string> encodings;
  for (const std::string& q : Queries()) {
    auto result = engine.Execute(q);
    EXPECT_TRUE(result.ok()) << q << ": " << result.status().ToString();
    auto payload = EncodeResult(*result);
    EXPECT_TRUE(payload.ok());
    encodings.push_back(*payload);
  }
  return encodings;
}

class ServerTest : public ::testing::Test {
 protected:
  void StartServer(ServerConfig config = {}) {
    config.port = 0;  // ephemeral
    server_ = std::make_unique<Server>(config);
    auto setup = server_->engine()->ExecuteScript(SetupScript());
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
    ASSERT_TRUE(server_->Start().ok());
  }

  Client Connect() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  std::map<std::string, int64_t> ServerStatus(Client* client) {
    auto r = client->Query("SERVER STATUS");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    std::map<std::string, int64_t> counters;
    for (size_t i = 0; i < r->RowCount(); ++i) {
      counters[std::string(r->columns[0]->StringAt(i))] =
          r->columns[1]->ValueAt<int64_t>(i);
    }
    return counters;
  }

  std::unique_ptr<Server> server_;
};

// -------------------------------------------------- admission (direct) --

TEST(AdmissionTest, FifoGrantOrder) {
  AdmissionConfig config;
  config.max_inflight = 1;
  config.queue_timeout_ms = 5000;
  AdmissionController ctrl(config, nullptr);
  auto first = ctrl.Admit();
  ASSERT_TRUE(first.ok());

  std::vector<int> order;
  std::mutex order_mu;
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&, i] {
      // Stagger arrival so the FIFO queue order is deterministic.
      std::this_thread::sleep_for(std::chrono::milliseconds(30 * (i + 1)));
      auto t = ctrl.Admit();
      ASSERT_TRUE(t.ok());
      std::lock_guard<std::mutex> lock(order_mu);
      order.push_back(i);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  { auto release = std::move(*first); }  // frees the slot: waiter 0's turn
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  const auto s = ctrl.stats();
  EXPECT_EQ(s.admitted, 4u);
  EXPECT_EQ(s.queued_total, 3u);
  EXPECT_EQ(s.peak_inflight, 1);
  EXPECT_EQ(s.timed_out, 0u);
}

TEST(AdmissionTest, QueueTimeoutIsTyped) {
  AdmissionConfig config;
  config.max_inflight = 0;  // nothing ever admitted
  config.queue_timeout_ms = 20;
  AdmissionController ctrl(config, nullptr);
  auto t = ctrl.Admit();
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kTimedOut);
  EXPECT_EQ(ctrl.stats().timed_out, 1u);
  EXPECT_EQ(ctrl.stats().queued, 0);  // timed-out waiter unlinked itself
}

TEST(AdmissionTest, FullQueueRejectsImmediately) {
  AdmissionConfig config;
  config.max_inflight = 0;
  config.max_queue = 0;
  AdmissionController ctrl(config, nullptr);
  auto t = ctrl.Admit();
  ASSERT_FALSE(t.ok());
  EXPECT_EQ(t.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(ctrl.stats().rejected, 1u);
}

TEST(AdmissionTest, ShutdownAbandonsWaiters) {
  AdmissionConfig config;
  config.max_inflight = 0;
  config.queue_timeout_ms = 10000;
  AdmissionController ctrl(config, nullptr);
  std::thread waiter([&] {
    auto t = ctrl.Admit();
    ASSERT_FALSE(t.ok());
    EXPECT_EQ(t.status().code(), StatusCode::kUnavailable);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ctrl.Shutdown();
  waiter.join();
  EXPECT_FALSE(ctrl.Admit().ok());  // post-shutdown admits fail too
}

// ----------------------------------------------------- server sessions --

TEST_F(ServerTest, HelloHandshake) {
  StartServer();
  Client client = Connect();
  EXPECT_GT(client.hello().session_id, 0u);
  EXPECT_EQ(client.hello().server_name, "mammothdb");
}

TEST_F(ServerTest, SingleSessionMatchesInProcessBitForBit) {
  StartServer();
  const std::vector<std::string> expected = InProcessEncodings();
  Client client = Connect();
  for (size_t q = 0; q < Queries().size(); ++q) {
    auto remote = client.Query(Queries()[q]);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    auto encoded = EncodeResult(*remote);
    ASSERT_TRUE(encoded.ok());
    EXPECT_EQ(*encoded, expected[q]) << Queries()[q];
  }
  client.Close();
}

TEST_F(ServerTest, SqlErrorsAreTypedAndSessionSurvives) {
  StartServer();
  Client client = Connect();
  auto bad = client.Query("SELECT nope FROM sensors");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  auto good = client.Query("SELECT COUNT(*) FROM sensors");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->columns[0]->ValueAt<int64_t>(0), kRows);
}

TEST_F(ServerTest, SixteenConcurrentSessionsBitIdentical) {
  ServerConfig config;
  config.max_sessions = 24;
  config.admission.max_inflight = 8;
  StartServer(config);
  const std::vector<std::string> expected = InProcessEncodings();

  constexpr int kClients = 16;
  constexpr int kReps = 3;
  std::atomic<int> mismatches{0}, failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int rep = 0; rep < kReps; ++rep) {
        // Different clients walk the query list from different offsets.
        for (size_t q = 0; q < Queries().size(); ++q) {
          const size_t idx = (q + t) % Queries().size();
          auto remote = client->Query(Queries()[idx]);
          if (!remote.ok()) {
            ++failures;
            continue;
          }
          auto encoded = EncodeResult(*remote);
          if (!encoded.ok() || *encoded != expected[idx]) ++mismatches;
        }
      }
      client->Close();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);

  Client probe = Connect();
  auto counters = ServerStatus(&probe);
  EXPECT_EQ(counters["queries_ok"],
            kClients * kReps * static_cast<int64_t>(Queries().size()));
  EXPECT_EQ(counters["queries_failed"], 0);
  EXPECT_LE(counters["queries_peak_inflight"], 8);
  EXPECT_EQ(counters["sessions_total"], kClients + 1);
}

TEST_F(ServerTest, ConcurrentReadersAndWriters) {
  StartServer();
  // Writers build private tables while readers hammer the shared one:
  // exercises the engine's reader/writer lock under TSan.
  constexpr int kWriters = 3, kReaders = 5, kWriterRows = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      const std::string table = "w" + std::to_string(w);
      if (!client->Query("CREATE TABLE " + table + " (v INT)").ok()) {
        ++failures;
      }
      for (int i = 0; i < kWriterRows; ++i) {
        if (!client
                 ->Query("INSERT INTO " + table + " VALUES (" +
                         std::to_string(i) + ")")
                 .ok()) {
          ++failures;
        }
      }
      auto sum = client->Query("SELECT SUM(v) FROM " + table);
      if (!sum.ok() ||
          sum->columns[0]->ValueAt<int64_t>(0) !=
              kWriterRows * (kWriterRows - 1) / 2) {
        ++failures;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 10; ++i) {
        auto count = client->Query(
            "SELECT room, COUNT(*) FROM sensors GROUP BY room");
        if (!count.ok() || count->RowCount() != 3) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

// ------------------------------------------------ admission (over wire) --

TEST_F(ServerTest, AdmissionTimeoutSendsTypedErrorFrame) {
  ServerConfig config;
  config.admission.max_inflight = 0;  // every query must time out
  config.admission.queue_timeout_ms = 20;
  StartServer(config);
  Client client = Connect();
  auto r = client.Query("SELECT COUNT(*) FROM sensors");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimedOut);
  // SERVER STATUS bypasses admission, so the session can still report.
  auto counters = ServerStatus(&client);
  EXPECT_GE(counters["queries_timed_out"], 1);
  EXPECT_EQ(counters["queries_admitted"], 0);
}

TEST_F(ServerTest, InflightBoundHoldsUnderHammering) {
  ServerConfig config;
  config.admission.max_inflight = 2;
  config.admission.queue_timeout_ms = 30000;
  StartServer(config);
  constexpr int kClients = 8, kQueriesEach = 10;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kQueriesEach; ++i) {
        if (!client->Query("SELECT SUM(temp) FROM sensors").ok()) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  Client probe = Connect();
  auto counters = ServerStatus(&probe);
  EXPECT_EQ(counters["queries_admitted"], kClients * kQueriesEach);
  EXPECT_GE(counters["queries_peak_inflight"], 1);
  EXPECT_LE(counters["queries_peak_inflight"], 2);  // the enforced bound
  EXPECT_EQ(counters["queries_timed_out"], 0);
}

// ------------------------------------------------------------ shutdown --

TEST_F(ServerTest, SessionLimitRejectsWithErrorFrame) {
  ServerConfig config;
  config.max_sessions = 1;
  StartServer(config);
  Client first = Connect();
  ASSERT_TRUE(first.connected());
  auto second = Client::Connect("127.0.0.1", server_->port());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
}

TEST_F(ServerTest, DrainRejectsNewWorkAndStops) {
  StartServer();
  Client client = Connect();
  ASSERT_TRUE(client.Query("SELECT COUNT(*) FROM sensors").ok());

  server_->BeginDrain();
  // New connections bounce with a typed Error frame instead of hanging.
  auto late = Client::Connect("127.0.0.1", server_->port());
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kUnavailable);
  // The existing session is told off too (or, if the race goes the
  // other way, sees the connection close).
  auto r = client.Query("SELECT COUNT(*) FROM sensors");
  EXPECT_FALSE(r.ok());

  server_->Stop();  // must not hang; sessions all drained
  EXPECT_TRUE(server_->stats().draining);
  EXPECT_EQ(server_->stats().sessions_open, 0);
}

TEST_F(ServerTest, StopIsIdempotentAndDestructorSafe) {
  StartServer();
  { Client client = Connect(); }
  server_->Stop();
  server_->Stop();
  server_.reset();  // destructor Stop() on a stopped server
}

TEST_F(ServerTest, StatusCountersTrackBytes) {
  StartServer();
  Client client = Connect();
  ASSERT_TRUE(client.Query(Queries()[0]).ok());
  auto counters = ServerStatus(&client);
  EXPECT_EQ(counters["wire_version"], server::kWireVersion);
  EXPECT_EQ(counters["sessions_open"], 1);
  EXPECT_GT(counters["bytes_in"], 0);
  EXPECT_GT(counters["bytes_out"], 0);
  EXPECT_EQ(counters["draining"], 0);
}

/// SERVER STATUS row ordering is a machine-readable contract (see
/// DESIGN.md): rows keep their position across releases and new counters
/// only ever append. Scrapers may index rows positionally; this test is
/// the tripwire that turns a silent reorder into a red build.
TEST_F(ServerTest, StatusRowOrderingIsAStableContract) {
  StartServer();
  Client client = Connect();
  auto r = client.Query("SERVER STATUS");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->names.size(), 2u);
  EXPECT_EQ(r->names[0], "counter");
  EXPECT_EQ(r->names[1], "value");
  const std::vector<std::string> kCanonicalOrder = {
      "wire_version", "draining", "sessions_open", "sessions_total",
      "sessions_rejected", "queries_ok", "queries_failed",
      "queries_admitted", "queries_queued_total", "queries_queued_now",
      "queries_inflight", "queries_peak_inflight", "queries_timed_out",
      "queries_rejected", "bytes_in", "bytes_out",
      "shared_scans_attached", "shared_scans_direct",
      "shared_chunks_loaded", "shared_chunks_delivered",
      "shared_chunks_skipped", "shared_loads_saved",
      "shared_chunks_decompressed", "shared_bytes_loaded",
      "shared_bytes_delivered", "compressed_tables", "compressed_columns",
      "compressed_bytes", "compressed_logical_bytes",
      "wire_result_bytes_saved", "epoll_sessions", "pipelined_in_flight",
      "prepared_cache_entries", "prepared_cache_hits",
      "prepared_cache_misses", "prepared_cache_evictions", "durable",
      "wal_txns", "wal_commits_synced", "wal_fsyncs", "wal_bytes",
      "wal_checkpoints", "wal_durable_lsn", "wal_recovered_txns",
      "repl_role", "repl_replicas", "repl_shipped_lsn", "repl_acked_lsn",
      "repl_replayed_lsn", "repl_source_durable_lsn", "repl_lag_bytes",
      "repl_txns_applied", "repl_snapshots", "recycler_compressed_bytes",
      "compressed_kernel_selects", "compressed_kernel_select_fallbacks",
      "compressed_kernel_aggrs", "compressed_kernel_aggr_fallbacks",
      "compressed_project_bounded", "compressed_project_full",
      "compressed_cache_bytes", "txn_begun", "txn_committed",
      "txn_rolled_back", "txn_conflicts", "txn_active"};
  ASSERT_EQ(r->RowCount(), kCanonicalOrder.size());
  for (size_t i = 0; i < kCanonicalOrder.size(); ++i) {
    EXPECT_EQ(r->columns[0]->StringAt(i), kCanonicalOrder[i])
        << "row " << i << " moved: the ordering is a wire contract — "
        << "new counters must append, existing rows must not move";
  }
  // Every replication row is present (zeros) on a standalone server:
  // consumers need not probe for their existence.
  auto counters = ServerStatus(&client);
  EXPECT_EQ(counters["repl_role"], 0);
  EXPECT_EQ(counters["repl_replicas"], 0);
  EXPECT_EQ(counters["repl_lag_bytes"], 0);
}

/// Satellite: the kPrepared reply carries typed parameter metadata when
/// the client negotiated kWireCapParamTypes — placeholder types inferred
/// from the catalog (column comparisons, INSERT positions), exposed on
/// the client's PreparedHandle.
TEST_F(ServerTest, PreparedReplyCarriesParamTypeMetadata) {
  StartServer();
  Client client = Connect();
  ASSERT_NE(client.caps() & server::kWireCapParamTypes, 0u);

  // temp INT, room VARCHAR: one int and one string placeholder.
  auto where = client.Prepare(
      "SELECT id FROM sensors WHERE temp > ? AND room = ?");
  ASSERT_TRUE(where.ok()) << where.status().ToString();
  EXPECT_EQ(where->nparams, 2u);
  ASSERT_EQ(where->param_types.size(), 2u);
  EXPECT_EQ(where->param_types[0],
            static_cast<uint8_t>(server::ParamType::kInt));
  EXPECT_EQ(where->param_types[1],
            static_cast<uint8_t>(server::ParamType::kStr));

  // INSERT infers by column position: (INT, INT, VARCHAR).
  auto insert = client.Prepare("INSERT INTO sensors VALUES (?, ?, ?)");
  ASSERT_TRUE(insert.ok()) << insert.status().ToString();
  ASSERT_EQ(insert->param_types.size(), 3u);
  EXPECT_EQ(insert->param_types[0],
            static_cast<uint8_t>(server::ParamType::kInt));
  EXPECT_EQ(insert->param_types[1],
            static_cast<uint8_t>(server::ParamType::kInt));
  EXPECT_EQ(insert->param_types[2],
            static_cast<uint8_t>(server::ParamType::kStr));

  // No placeholders: no metadata, and execution still works.
  auto plain = client.Prepare("SELECT COUNT(*) FROM sensors");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->nparams, 0u);
  EXPECT_TRUE(plain->param_types.empty());
  auto run = client.ExecutePrepared(*where, {Value::Int(100),
                                             Value::Str("lab")});
  ASSERT_TRUE(run.ok()) << run.status().ToString();
}

/// The compression counters are part of the status relation from the
/// start (all zero on an uncompressed catalog) and move when a table is
/// compressed and compressible results ship to a caps-negotiated client.
TEST_F(ServerTest, StatusReportsCompressionCounters) {
  StartServer();
  Client client = Connect();
  auto counters = ServerStatus(&client);
  for (const char* key :
       {"compressed_tables", "compressed_columns", "compressed_bytes",
        "compressed_logical_bytes", "wire_result_bytes_saved",
        "shared_chunks_decompressed", "shared_bytes_loaded",
        "shared_bytes_delivered"}) {
    ASSERT_TRUE(counters.count(key) == 1) << key;
    EXPECT_EQ(counters[key], 0) << key;
  }

  // Compress a table with >= 1024 int32 rows and pull a run-friendly
  // result: the storage gauges and the wire-savings counter move.
  ASSERT_TRUE(client.Query("CREATE TABLE z (a INT, b INT)").ok());
  std::string ins = "INSERT INTO z VALUES ";
  for (int i = 0; i < 2048; ++i) {
    if (i > 0) ins += ", ";
    ins += "(" + std::to_string(i) + ", " + std::to_string(i / 256) + ")";
  }
  ASSERT_TRUE(client.Query(ins).ok());
  ASSERT_TRUE(client.Query("ALTER TABLE z COMPRESS").ok());
  auto r = client.Query("SELECT b FROM z WHERE a >= 0 AND a <= 100000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 2048u);

  counters = ServerStatus(&client);
  EXPECT_EQ(counters["compressed_tables"], 1);
  EXPECT_EQ(counters["compressed_columns"], 2);
  EXPECT_GT(counters["compressed_bytes"], 0);
  EXPECT_GT(counters["compressed_logical_bytes"],
            counters["compressed_bytes"]);
  EXPECT_GT(counters["wire_result_bytes_saved"], 0);
}

// ------------------------------------------------------- shared scans --

/// A table big enough to clear the sharing threshold of the shrunken
/// shared-scan config below (one 64K-row chunk).
TablePtr BigScanTable() {
  constexpr size_t kBigRows = 3 * (size_t{1} << 16) + 500;
  BatPtr id = Bat::New(PhysType::kInt64);
  BatPtr val = Bat::New(PhysType::kInt64);
  id->Resize(kBigRows);
  val->Resize(kBigRows);
  int64_t* idp = id->MutableTailData<int64_t>();
  int64_t* vp = val->MutableTailData<int64_t>();
  Rng rng(4242);
  for (size_t i = 0; i < kBigRows; ++i) {
    idp[i] = static_cast<int64_t>(i);
    vp[i] = static_cast<int64_t>(rng.Uniform(100000));
  }
  auto t = Table::FromColumns(
      "metrics_big",
      {{"id", PhysType::kInt64}, {"val", PhysType::kInt64}},
      {std::move(id), std::move(val)});
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return *t;
}

const std::vector<std::string>& ScanQueries() {
  static const std::vector<std::string> queries = {
      "SELECT id, val FROM metrics_big WHERE val >= 1000 AND val <= 60000",
      "SELECT id FROM metrics_big WHERE val >= 20000 AND val <= 80000",
      "SELECT COUNT(*), SUM(val) FROM metrics_big WHERE val >= 5000 AND "
      "val <= 95000",
      "SELECT val FROM metrics_big WHERE val >= 40000 AND val <= 41000",
  };
  return queries;
}

/// N wire sessions issuing overlapping range scans share physical passes
/// through the server's SharedScanScheduler and stay bit-identical to a
/// plain serial in-process engine, for worker pools of 1/2/4/8.
TEST_F(ServerTest, SharedScanSessionsBitIdenticalAcrossPools) {
  // Serial in-process yardstick: no scheduler, no pool.
  std::vector<std::string> expected;
  {
    sql::Engine plain;
    ASSERT_TRUE(plain.catalog()->Register(BigScanTable()).ok());
    for (const std::string& q : ScanQueries()) {
      auto r = plain.Execute(q, parallel::ExecContext::Serial());
      ASSERT_TRUE(r.ok()) << q << ": " << r.status().ToString();
      auto payload = EncodeResult(*r);
      ASSERT_TRUE(payload.ok());
      expected.push_back(*payload);
    }
  }

  for (int threads : {1, 2, 4, 8}) {
    ServerConfig config;
    config.threads = threads;
    config.max_sessions = 16;
    config.shared_scan.chunk_rows = size_t{1} << 16;
    config.shared_scan.min_share_rows = size_t{1} << 16;
    config.port = 0;
    server_ = std::make_unique<Server>(config);
    ASSERT_TRUE(server_->engine()->catalog()->Register(BigScanTable()).ok());
    ASSERT_TRUE(server_->Start().ok());

    constexpr int kClients = 8;
    constexpr int kReps = 2;
    std::atomic<int> mismatches{0}, failures{0};
    std::vector<std::thread> sessions;
    for (int t = 0; t < kClients; ++t) {
      sessions.emplace_back([&, t] {
        auto client = Client::Connect("127.0.0.1", server_->port());
        if (!client.ok()) {
          ++failures;
          return;
        }
        for (int rep = 0; rep < kReps; ++rep) {
          for (size_t q = 0; q < ScanQueries().size(); ++q) {
            const size_t idx = (q + t) % ScanQueries().size();
            auto remote = client->Query(ScanQueries()[idx]);
            if (!remote.ok()) {
              ++failures;
              continue;
            }
            auto encoded = EncodeResult(*remote);
            if (!encoded.ok() || *encoded != expected[idx]) ++mismatches;
          }
        }
        client->Close();
      });
    }
    for (std::thread& t : sessions) t.join();
    EXPECT_EQ(failures.load(), 0) << "pool " << threads;
    EXPECT_EQ(mismatches.load(), 0) << "pool " << threads;

    Client probe = Connect();
    auto counters = ServerStatus(&probe);
    // Every query scans metrics_big (eligible), so each one either
    // attached to a shared pass or ran registered-direct.
    const int64_t total_scans = counters["shared_scans_attached"] +
                                counters["shared_scans_direct"];
    EXPECT_GE(total_scans,
              static_cast<int64_t>(kClients * kReps *
                                   ScanQueries().size()))
        << "pool " << threads;
    EXPECT_EQ(counters["shared_loads_saved"],
              counters["shared_chunks_delivered"] -
                  counters["shared_chunks_loaded"]);
    EXPECT_GE(counters["shared_chunks_skipped"], 0);
    probe.Close();
    server_->Stop();
    server_.reset();
  }
}

// -------------------------------------- pipelining / prepared / compat --

/// A hand-rolled socket speaking raw frames: what a legacy (never sends
/// Caps) or hostile client looks like on the wire.
class RawConn {
 public:
  RawConn() = default;
  RawConn(RawConn&& o) noexcept : fd_(o.fd_), buf_(std::move(o.buf_)) {
    o.fd_ = -1;
  }
  ~RawConn() {
    if (fd_ >= 0) ::close(fd_);
  }

  static RawConn Open(uint16_t port) {
    RawConn c;
    c.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(c.fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(c.fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    return c;
  }

  void Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent,
                               bytes.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  Result<server::Frame> ReadFrame() {
    while (true) {
      server::Frame frame;
      MAMMOTH_ASSIGN_OR_RETURN(
          size_t consumed,
          server::DecodeFrame(buf_.data(), buf_.size(), &frame));
      if (consumed > 0) {
        buf_.erase(0, consumed);
        return frame;
      }
      char chunk[64 * 1024];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return Status::IOError("connection closed");
      buf_.append(chunk, static_cast<size_t>(n));
    }
  }

  /// Drains the socket; true when the server closed it (orderly EOF).
  bool ReadUntilEof() {
    char chunk[4096];
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

  /// Handshake half of Client::Connect, minus the Caps answer.
  void ExpectHello() {
    auto frame = ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, server::FrameType::kHello);
    auto hello = server::DecodeHello(frame->payload);
    ASSERT_TRUE(hello.ok());
    EXPECT_NE(hello->caps & server::kWireCapPipeline, 0u);
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

TEST_F(ServerTest, PipelinedQueriesCompleteOutOfOrder) {
  StartServer();
  const std::vector<std::string> expected = InProcessEncodings();
  Client client = Connect();
  ASSERT_NE(client.caps() & server::kWireCapPipeline, 0u);

  // Fire every query without reading a byte, then await them newest
  // first: responses land whenever their worker finishes and the client
  // stashes the overtakers.
  std::vector<uint32_t> seqs;
  for (const std::string& q : Queries()) {
    auto seq = client.QueryAsync(q);
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    seqs.push_back(*seq);
  }
  EXPECT_EQ(client.in_flight(), Queries().size());
  for (size_t i = seqs.size(); i-- > 0;) {
    auto remote = client.Await(seqs[i]);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    auto encoded = EncodeResult(*remote);
    ASSERT_TRUE(encoded.ok());
    EXPECT_EQ(*encoded, expected[i]) << Queries()[i];
  }
  EXPECT_EQ(client.in_flight(), 0u);

  // Awaiting a sequence number this client never sent is a client-side
  // protocol error, not a hang.
  auto unknown = client.Await(12345);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);

  // Errors come back tagged too, and the session survives them.
  auto bad_seq = client.QueryAsync("SELECT nope FROM sensors");
  ASSERT_TRUE(bad_seq.ok());
  auto bad = client.Await(*bad_seq);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
  auto good = client.Query("SELECT COUNT(*) FROM sensors");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->columns[0]->ValueAt<int64_t>(0), kRows);
}

/// The pipelined flavour of SixteenConcurrentSessionsBitIdentical: every
/// session keeps its whole query list in flight at once, across reactor
/// worker pools of 1/2/4/8.
TEST_F(ServerTest, SixteenPipelinedSessionsBitIdenticalAcrossPools) {
  const std::vector<std::string> expected = InProcessEncodings();
  for (int workers : {1, 2, 4, 8}) {
    ServerConfig config;
    config.workers = workers;
    config.max_sessions = 20;
    config.admission.max_inflight = 8;
    StartServer(config);

    constexpr int kClients = 16;
    constexpr int kReps = 2;
    std::atomic<int> mismatches{0}, failures{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < kClients; ++t) {
      threads.emplace_back([&, t] {
        auto client = Client::Connect("127.0.0.1", server_->port());
        if (!client.ok()) {
          ++failures;
          return;
        }
        for (int rep = 0; rep < kReps; ++rep) {
          std::vector<std::pair<uint32_t, size_t>> batch;
          for (size_t q = 0; q < Queries().size(); ++q) {
            const size_t idx = (q + t) % Queries().size();
            auto seq = client->QueryAsync(Queries()[idx]);
            if (!seq.ok()) {
              ++failures;
              continue;
            }
            batch.emplace_back(*seq, idx);
          }
          // Await in reverse submission order to force stashing.
          for (size_t i = batch.size(); i-- > 0;) {
            auto remote = client->Await(batch[i].first);
            if (!remote.ok()) {
              ++failures;
              continue;
            }
            auto encoded = EncodeResult(*remote);
            if (!encoded.ok() || *encoded != expected[batch[i].second]) {
              ++mismatches;
            }
          }
        }
        client->Close();
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0) << "workers " << workers;
    EXPECT_EQ(mismatches.load(), 0) << "workers " << workers;

    Client probe = Connect();
    auto counters = ServerStatus(&probe);
    EXPECT_EQ(counters["queries_ok"],
              kClients * kReps * static_cast<int64_t>(Queries().size()))
        << "workers " << workers;
    EXPECT_EQ(counters["pipelined_in_flight"], 0) << "workers " << workers;
    probe.Close();
    server_->Stop();
    server_.reset();
  }
}

TEST_F(ServerTest, HostileSequenceZeroIsSessionFatal) {
  StartServer();
  RawConn conn = RawConn::Open(server_->port());
  conn.ExpectHello();
  conn.Send(server::EncodeFrame(server::FrameType::kCaps,
                                server::EncodeCaps(server::kWireCapPipeline)));
  // Sequence number 0 is reserved: the server answers with one untagged
  // Error frame and drops the session.
  conn.Send(server::EncodeFrame(server::FrameType::kQuerySeq,
                                server::PrependSeq(0, "SELECT 1")));
  auto frame = conn.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->type, server::FrameType::kError);
  auto err = server::DecodeError(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, StatusCode::kInvalidArgument);
  EXPECT_TRUE(conn.ReadUntilEof());
}

TEST_F(ServerTest, DuplicateInFlightSequenceIsSessionFatal) {
  StartServer();
  RawConn conn = RawConn::Open(server_->port());
  conn.ExpectHello();
  conn.Send(server::EncodeFrame(server::FrameType::kCaps,
                                server::EncodeCaps(server::kWireCapPipeline)));
  // Both frames arrive in one segment, so the second is decoded while
  // the first is still in flight — an unambiguous duplicate.
  const std::string q = server::EncodeFrame(
      server::FrameType::kQuerySeq,
      server::PrependSeq(7, "SELECT COUNT(*) FROM sensors"));
  conn.Send(q + q);
  // The first query's tagged response may or may not arrive first; the
  // session must end with an untagged duplicate-seq error and a close.
  bool saw_duplicate_error = false;
  while (true) {
    auto frame = conn.ReadFrame();
    if (!frame.ok()) break;  // server closed the socket
    if (frame->type == server::FrameType::kError) {
      auto err = server::DecodeError(frame->payload);
      ASSERT_TRUE(err.ok());
      EXPECT_NE(err->message.find("duplicate"), std::string::npos)
          << err->message;
      saw_duplicate_error = true;
    }
  }
  EXPECT_TRUE(saw_duplicate_error);
}

/// A client that never sends a Caps frame gets the original protocol:
/// untagged frames, strictly ordered responses, raw result encodings —
/// bit-identical to the pre-pipelining wire image.
TEST_F(ServerTest, OldClientWithoutCapsKeepsWorking) {
  StartServer();
  const std::vector<std::string> expected = InProcessEncodings();
  RawConn conn = RawConn::Open(server_->port());
  conn.ExpectHello();
  // Two back-to-back plain queries in one segment: the reactor must run
  // them serially and answer in order, like the old front-end did.
  conn.Send(server::EncodeFrame(server::FrameType::kQuery, Queries()[0]) +
            server::EncodeFrame(server::FrameType::kQuery, Queries()[1]));
  for (size_t q = 0; q < 2; ++q) {
    auto frame = conn.ReadFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    ASSERT_EQ(frame->type, server::FrameType::kResult) << q;
    EXPECT_EQ(frame->payload, expected[q]) << Queries()[q];
  }
  conn.Send(server::EncodeFrame(server::FrameType::kClose, ""));
  EXPECT_TRUE(conn.ReadUntilEof());
}

TEST_F(ServerTest, PreparedOverWireMatchesAndInvalidates) {
  StartServer();
  const std::vector<std::string> expected = InProcessEncodings();
  Client client = Connect();
  ASSERT_NE(client.caps() & server::kWireCapPrepared, 0u);

  auto handle = client.Prepare(
      "SELECT id, temp FROM sensors WHERE temp >= ? AND temp <= ?");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_EQ(handle->nparams, 2u);
  for (int rep = 0; rep < 2; ++rep) {
    auto remote = client.ExecutePrepared(
        *handle, {Value::Int(100), Value::Int(200)});
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    auto encoded = EncodeResult(*remote);
    ASSERT_TRUE(encoded.ok());
    EXPECT_EQ(*encoded, expected[0]) << "rep " << rep;
  }
  auto counters = ServerStatus(&client);
  EXPECT_EQ(counters["prepared_cache_entries"], 1);
  EXPECT_GE(counters["prepared_cache_hits"], 1);   // second execution
  EXPECT_GE(counters["prepared_cache_misses"], 1); // prepare + compile
  const int64_t misses_before = counters["prepared_cache_misses"];

  // DML invalidates the cached plan; the next execution recompiles and
  // sees the new row, staying bit-identical to an unprepared query.
  ASSERT_TRUE(client.Query("INSERT INTO sensors VALUES (9999, 150, 'lab')")
                  .ok());
  auto direct = client.Query(Queries()[0]);
  ASSERT_TRUE(direct.ok());
  auto prepared = client.ExecutePrepared(
      *handle, {Value::Int(100), Value::Int(200)});
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  auto a = EncodeResult(*direct);
  auto b = EncodeResult(*prepared);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
  counters = ServerStatus(&client);
  EXPECT_GT(counters["prepared_cache_misses"], misses_before);

  // Executing an unknown statement id is a typed error; session survives.
  auto unknown = client.ExecutePrepared(
      server::PreparedHandle{0xDEAD, 0, {}}, {});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(client.Query("SELECT COUNT(*) FROM sensors").ok());
}

TEST_F(ServerTest, StatusReportsReactorAndPreparedRows) {
  StartServer();
  Client client = Connect();
  auto counters = ServerStatus(&client);
  for (const char* key :
       {"epoll_sessions", "pipelined_in_flight", "prepared_cache_entries",
        "prepared_cache_hits", "prepared_cache_misses",
        "prepared_cache_evictions"}) {
    ASSERT_EQ(counters.count(key), 1u) << key;
  }
  // The probing session itself is reactor-owned; nothing is pipelined
  // or prepared yet.
  EXPECT_EQ(counters["epoll_sessions"], 1);
  EXPECT_EQ(counters["pipelined_in_flight"], 0);
  EXPECT_EQ(counters["prepared_cache_entries"], 0);
  EXPECT_EQ(counters["prepared_cache_evictions"], 0);
}

/// The drain satellite on the epoll path: a pipelined client that fills
/// its pipeline and then never reads must not block Stop() beyond the
/// configured force deadline.
TEST_F(ServerTest, NonReadingPipelinedClientDoesNotBlockStop) {
  ServerConfig config;
  config.drain_force_millis = 300;
  StartServer(config);
  Client client = Connect();
  // Large results (full table scans) so the responses cannot all fit in
  // the kernel socket buffers of a non-reading client.
  for (int i = 0; i < 16; ++i) {
    auto seq = client.QueryAsync("SELECT id, temp, room FROM sensors");
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  const auto t0 = std::chrono::steady_clock::now();
  server_->Stop();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 5000) << "Stop() must be bounded";
  EXPECT_EQ(server_->stats().sessions_open, 0);
  EXPECT_EQ(server_->stats().epoll_sessions, 0u);
}

/// The legacy thread-per-connection front-end stays available (it is the
/// benchmark baseline) and speaks the full protocol, pipelining and
/// prepared statements included — just without overlap.
TEST_F(ServerTest, ThreadsFrontendStillServes) {
  ServerConfig config;
  config.frontend = ServerConfig::Frontend::kThreads;
  StartServer(config);
  const std::vector<std::string> expected = InProcessEncodings();
  Client client = Connect();
  auto remote = client.Query(Queries()[0]);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  auto encoded = EncodeResult(*remote);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(*encoded, expected[0]);

  auto seq = client.QueryAsync(Queries()[1]);
  ASSERT_TRUE(seq.ok());
  auto async = client.Await(*seq);
  ASSERT_TRUE(async.ok()) << async.status().ToString();
  auto handle = client.Prepare("SELECT COUNT(*) FROM sensors");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto prepared = client.ExecutePrepared(*handle, {});
  ASSERT_TRUE(prepared.ok());
  EXPECT_EQ(prepared->columns[0]->ValueAt<int64_t>(0), kRows);

  auto counters = ServerStatus(&client);
  EXPECT_EQ(counters["epoll_sessions"], 0);
}

// ------------------------------------------- transactions over the wire --

/// Each connection carries its own engine session: a transaction opened
/// with the client helpers stays invisible to other connections until
/// Commit(), and Rollback() leaves no trace.
TEST_F(ServerTest, TransactionsOverWire) {
  StartServer();
  Client writer = Connect();
  Client reader = Connect();

  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(
      writer.Query("INSERT INTO sensors VALUES (9000, 1, 'lab')").ok());
  auto own = writer.Query("SELECT COUNT(*) FROM sensors");
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own->columns[0]->ValueAt<int64_t>(0), kRows + 1);
  auto other = reader.Query("SELECT COUNT(*) FROM sensors");
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->columns[0]->ValueAt<int64_t>(0), kRows);
  ASSERT_TRUE(writer.Commit().ok());
  auto after = reader.Query("SELECT COUNT(*) FROM sensors");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->columns[0]->ValueAt<int64_t>(0), kRows + 1);

  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(writer.Query("DELETE FROM sensors WHERE id = 9000").ok());
  ASSERT_TRUE(writer.Rollback().ok());
  auto undone = reader.Query("SELECT COUNT(*) FROM sensors");
  ASSERT_TRUE(undone.ok());
  EXPECT_EQ(undone->columns[0]->ValueAt<int64_t>(0), kRows + 1);

  auto counters = ServerStatus(&reader);
  EXPECT_GE(counters["txn_begun"], 2);
  EXPECT_GE(counters["txn_committed"], 1);
  EXPECT_GE(counters["txn_rolled_back"], 1);
  EXPECT_EQ(counters["txn_active"], 0);
}

/// Hostile statement sequences are typed errors, never session-fatal:
/// COMMIT/ROLLBACK without BEGIN, and BEGIN inside an open transaction
/// (the original transaction stays open and intact).
TEST_F(ServerTest, HostileTransactionSequencesAreTypedErrors) {
  StartServer();
  Client client = Connect();
  EXPECT_EQ(client.Commit().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(client.Rollback().code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(client.Begin().ok());
  EXPECT_EQ(client.Begin().code(), StatusCode::kInvalidArgument);
  // The first transaction survived the rejected second BEGIN.
  ASSERT_TRUE(
      client.Query("INSERT INTO sensors VALUES (9100, 2, 'lab')").ok());
  ASSERT_TRUE(client.Commit().ok());
  auto r = client.Query("SELECT COUNT(*) FROM sensors WHERE id = 9100");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns[0]->ValueAt<int64_t>(0), 1);
}

/// Write-write conflicts surface over the wire as the typed kConflict —
/// distinguishable from parse/plan errors so drivers can auto-retry. The
/// losing connection survives and can retry after the winner commits.
TEST_F(ServerTest, WriteConflictIsTypedOverWire) {
  StartServer();
  Client a = Connect();
  Client b = Connect();
  ASSERT_TRUE(a.Begin().ok());
  ASSERT_TRUE(a.Query("INSERT INTO sensors VALUES (9200, 3, 'lab')").ok());
  auto clash = b.Query("INSERT INTO sensors VALUES (9201, 4, 'lab')");
  EXPECT_EQ(clash.status().code(), StatusCode::kConflict)
      << clash.status().ToString();
  ASSERT_TRUE(a.Commit().ok());
  // Retry after the winner committed: the claim is released.
  EXPECT_TRUE(b.Query("INSERT INTO sensors VALUES (9201, 4, 'lab')").ok());
  auto counters = ServerStatus(&b);
  EXPECT_GE(counters["txn_conflicts"], 1);
}

/// A connection dropped mid-transaction is auto-rolled back server-side:
/// pending rows vanish and the write claim is released, so other
/// connections are not wedged by a vanished client.
TEST_F(ServerTest, DisconnectMidTransactionAutoRollsBack) {
  StartServer();
  {
    Client doomed = Connect();
    ASSERT_TRUE(doomed.Begin().ok());
    ASSERT_TRUE(
        doomed.Query("INSERT INTO sensors VALUES (9300, 5, 'lab')").ok());
  }  // socket closes with the transaction open
  Client survivor = Connect();
  // The abort runs asynchronously after the disconnect; poll bounded.
  bool released = false;
  for (int i = 0; i < 500 && !released; ++i) {
    auto w = survivor.Query("INSERT INTO sensors VALUES (9301, 6, 'lab')");
    if (w.ok()) {
      released = true;
      break;
    }
    ASSERT_EQ(w.status().code(), StatusCode::kConflict);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(released) << "disconnect did not release the write claim";
  auto gone = survivor.Query("SELECT COUNT(*) FROM sensors WHERE id = 9300");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->columns[0]->ValueAt<int64_t>(0), 0);
  auto counters = ServerStatus(&survivor);
  EXPECT_GE(counters["txn_rolled_back"], 1);
}

/// caps=0 byte-compat: a client that never sends Caps can still drive
/// BEGIN/COMMIT through plain untagged kQuery frames — the transaction
/// surface needs no new frame types or capability bits.
TEST_F(ServerTest, OldClientRunsTransactionsWithPlainFrames) {
  StartServer();
  RawConn conn = RawConn::Open(server_->port());
  conn.ExpectHello();
  for (const char* sql :
       {"BEGIN", "INSERT INTO sensors VALUES (9400, 7, 'lab')", "COMMIT",
        "SELECT COUNT(*) FROM sensors WHERE id = 9400"}) {
    conn.Send(server::EncodeFrame(server::FrameType::kQuery, sql));
    auto frame = conn.ReadFrame();
    ASSERT_TRUE(frame.ok()) << sql << ": " << frame.status().ToString();
    EXPECT_EQ(frame->type, server::FrameType::kResult) << sql;
  }
  conn.Send(server::EncodeFrame(server::FrameType::kClose, ""));
  EXPECT_TRUE(conn.ReadUntilEof());
}

/// The thread-per-connection front-end carries per-connection transaction
/// state too (same engine-session plumbing as the reactor).
TEST_F(ServerTest, ThreadsFrontendCarriesTransactions) {
  ServerConfig config;
  config.frontend = ServerConfig::Frontend::kThreads;
  StartServer(config);
  Client writer = Connect();
  Client reader = Connect();
  ASSERT_TRUE(writer.Begin().ok());
  ASSERT_TRUE(
      writer.Query("INSERT INTO sensors VALUES (9500, 8, 'lab')").ok());
  auto hidden = reader.Query("SELECT COUNT(*) FROM sensors WHERE id = 9500");
  ASSERT_TRUE(hidden.ok());
  EXPECT_EQ(hidden->columns[0]->ValueAt<int64_t>(0), 0);
  ASSERT_TRUE(writer.Rollback().ok());
  auto still = reader.Query("SELECT COUNT(*) FROM sensors WHERE id = 9500");
  ASSERT_TRUE(still.ok());
  EXPECT_EQ(still->columns[0]->ValueAt<int64_t>(0), 0);
}

}  // namespace
}  // namespace mammoth
