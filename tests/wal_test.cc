// Durability tests: record framing, fault-injected crash points, group
// commit, checkpoints and recovery (src/wal/). The fork/kill -9 harness
// against a live server lives in wal_crash_test.cc; everything here
// crashes in-process via WalFaultInjector, which models a dying machine
// precisely: the file contents stop exactly where the fault hit, and the
// tests then recover the directory and check the committed prefix.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/catalog.h"
#include "core/table.h"
#include "sql/engine.h"
#include "wal/db.h"
#include "wal/record.h"
#include "wal/wal.h"
#include "wal/wal_file.h"

namespace mammoth::wal {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/mammoth_wal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// Path of the single segment file in dir_/wal (asserts there is one).
  std::string OnlySegment() {
    std::string found;
    size_t n = 0;
    for (const auto& e : fs::directory_iterator(WalSubdir(dir_))) {
      found = e.path().string();
      ++n;
    }
    EXPECT_EQ(n, 1u);
    return found;
  }

  std::string dir_;
};

const std::vector<ColumnDef> kSchema = {{"id", PhysType::kInt32},
                                        {"tag", PhysType::kStr},
                                        {"score", PhysType::kDouble}};

std::vector<std::vector<Value>> SomeRows(int base) {
  return {{Value::Int(base), Value::Str("tag_" + std::to_string(base)),
           Value::Real(base * 0.5)},
          {Value::Int(base + 1), Value::Str(""), Value::Real(-1.25)}};
}

// ------------------------------------------------------ record framing --

TEST(WalRecordTest, RoundTripsEveryRecordType) {
  auto begin = DecodeRecord(EncodeBegin(42));
  ASSERT_TRUE(begin.ok());
  EXPECT_EQ(begin->type, RecordType::kBegin);
  EXPECT_EQ(begin->txn_id, 42u);

  auto commit = DecodeRecord(EncodeCommit(43));
  ASSERT_TRUE(commit.ok());
  EXPECT_EQ(commit->type, RecordType::kCommit);
  EXPECT_EQ(commit->txn_id, 43u);

  auto create = DecodeRecord(EncodeCreateTable("t", kSchema));
  ASSERT_TRUE(create.ok());
  EXPECT_EQ(create->type, RecordType::kCreateTable);
  EXPECT_EQ(create->table, "t");
  ASSERT_EQ(create->schema.size(), kSchema.size());
  for (size_t i = 0; i < kSchema.size(); ++i) {
    EXPECT_EQ(create->schema[i].name, kSchema[i].name);
    EXPECT_EQ(create->schema[i].type, kSchema[i].type);
  }

  const auto rows = SomeRows(7);
  auto insert = DecodeRecord(EncodeInsertRows("t", kSchema, rows));
  ASSERT_TRUE(insert.ok());
  EXPECT_EQ(insert->type, RecordType::kInsertRows);
  ASSERT_EQ(insert->rows.size(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    ASSERT_EQ(insert->rows[r].size(), rows[r].size());
    for (size_t c = 0; c < rows[r].size(); ++c) {
      EXPECT_TRUE(insert->rows[r][c] == rows[r][c])
          << "row " << r << " col " << c;
    }
  }

  const BatPtr oids = MakeBat<Oid>({Oid{3}, Oid{0}, Oid{17}});
  auto del = DecodeRecord(EncodeDeletePositions("t", *oids));
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->type, RecordType::kDeletePositions);
  EXPECT_EQ(del->oids, (std::vector<Oid>{3, 0, 17}));

  auto upd = DecodeRecord(EncodeUpdateCells("t", kSchema, *oids, rows));
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->type, RecordType::kUpdateCells);
  EXPECT_EQ(upd->oids.size(), 3u);
  EXPECT_EQ(upd->rows.size(), rows.size());
}

TEST(WalRecordTest, DecodeRejectsGarbagePayload) {
  EXPECT_FALSE(DecodeRecord("").ok());
  EXPECT_FALSE(DecodeRecord("\xff").ok());  // unknown type tag
  // Truncated body after a valid type tag.
  std::string begin = EncodeBegin(1);
  EXPECT_FALSE(DecodeRecord(begin.substr(0, begin.size() - 1)).ok());
}

TEST(WalRecordTest, FrameStreamDistinguishesTornFromCorrupt) {
  std::string stream;
  AppendFrame(&stream, EncodeBegin(1));
  AppendFrame(&stream, EncodeInsertRows("t", kSchema, SomeRows(1)));
  AppendFrame(&stream, EncodeCommit(1));

  // Clean decode: every frame, LSNs chain through end_lsn.
  std::vector<Record> recs;
  size_t valid = 0;
  auto tail = DecodeFrames(stream, 100, true, &recs, &valid);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, TailState::kClean);
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(valid, stream.size());
  EXPECT_EQ(recs[0].lsn, 100u);
  EXPECT_EQ(recs[1].lsn, recs[0].end_lsn);
  EXPECT_EQ(recs[2].lsn, recs[1].end_lsn);
  EXPECT_EQ(recs[2].end_lsn, 100 + stream.size());

  // A truncated final frame is a torn tail in the last segment...
  const std::string torn = stream.substr(0, stream.size() - 3);
  recs.clear();
  tail = DecodeFrames(torn, 100, true, &recs, &valid);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, TailState::kTorn);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(100 + valid, recs[1].end_lsn);

  // ...but mid-log corruption in any earlier segment.
  recs.clear();
  auto bad = DecodeFrames(torn, 100, false, &recs, &valid);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);

  // A CRC-failed frame with valid frames after it is corruption even in
  // the last segment: crashes tear tails, they don't flip middles.
  std::string flipped = stream;
  flipped[kFrameHeaderBytes + 2] ^= 0x40;  // inside the Begin payload
  recs.clear();
  bad = DecodeFrames(flipped, 0, true, &recs, &valid);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);

  // A CRC-failed *final* frame ending at EOF is a torn tail.
  std::string tail_flip = stream;
  tail_flip.back() ^= 0x01;
  recs.clear();
  tail = DecodeFrames(tail_flip, 0, true, &recs, &valid);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(*tail, TailState::kTorn);
  EXPECT_EQ(recs.size(), 2u);
}

// -------------------------------------------------- wal_file injection --

TEST_F(WalTest, WalFileLatchesInjectedFaults) {
  fs::create_directories(dir_);
  auto fault = std::make_shared<WalFaultInjector>();
  bool tear = false;
  fault->clamp_write = [&](size_t len) { return tear ? len / 2 : len; };

  auto file = WalFile::OpenAppend(dir_ + "/f.log", fault);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append("0123456789").ok());
  EXPECT_EQ((*file)->size(), 10u);

  tear = true;
  const Status torn = (*file)->Append("abcdefgh");
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ((*file)->size(), 14u);  // half of the write landed
  // The failure latches: the file refuses everything afterwards, exactly
  // like a process that died mid-write.
  tear = false;
  EXPECT_FALSE((*file)->Append("more").ok());
  EXPECT_FALSE((*file)->Sync().ok());
  EXPECT_EQ(fs::file_size(dir_ + "/f.log"), 14u);

  auto fault2 = std::make_shared<WalFaultInjector>();
  fault2->fail_sync = [] { return true; };
  auto f2 = WalFile::OpenAppend(dir_ + "/g.log", fault2);
  ASSERT_TRUE(f2.ok());
  ASSERT_TRUE((*f2)->Append("x").ok());
  EXPECT_FALSE((*f2)->Sync().ok());
  EXPECT_FALSE((*f2)->Append("y").ok());  // latched
}

// ------------------------------------------------ append/recover basics --

TEST_F(WalTest, LogSyncRecoverRoundTrip) {
  WalOptions options;
  auto wal = Wal::Open(dir_, options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  TxnBuilder create;
  create.CreateTable("t", kSchema);
  auto lsn = (*wal)->LogTransaction(create.ops());
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());

  for (int i = 0; i < 3; ++i) {
    TxnBuilder ins;
    ins.InsertRows("t", kSchema, SomeRows(i * 10));
    lsn = (*wal)->LogTransaction(ins.ops());
    ASSERT_TRUE(lsn.ok());
    ASSERT_TRUE((*wal)->Sync(*lsn).ok());
  }
  const WalStats stats = (*wal)->stats();
  EXPECT_EQ(stats.txns_logged, 4u);
  EXPECT_EQ(stats.records_logged, 4u + 2 * 4u);  // Begin+op+Commit each
  EXPECT_EQ(stats.commits_synced, 4u);
  EXPECT_EQ(stats.durable_lsn, stats.next_lsn);
  EXPECT_GT(stats.bytes_logged, 0u);
  wal->reset();

  Catalog recovered;
  auto info = Recover(dir_, &recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->txns_applied, 4u);
  EXPECT_EQ(info->txns_uncommitted, 0u);
  EXPECT_FALSE(info->torn_tail);
  EXPECT_EQ(info->resume.next_txn_id, 5u);
  auto t = recovered.Get("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->VisibleRowCount(), 6u);
  auto tags = (*t)->ScanColumn("tag");
  ASSERT_TRUE(tags.ok());
  EXPECT_EQ((*tags)->StringAt(0), "tag_0");

  // Idempotence: a second replay of the same directory is bit-identical.
  Catalog again;
  ASSERT_TRUE(Recover(dir_, &again).ok());
  EXPECT_TRUE(CompareCatalogs(recovered, again).ok());
}

TEST_F(WalTest, ReopenedLogContinuesWhereRecoveryLeftOff) {
  WalOptions options;
  {
    auto wal = Wal::Open(dir_, options);
    ASSERT_TRUE(wal.ok());
    TxnBuilder txn;
    txn.CreateTable("t", kSchema);
    auto lsn = (*wal)->LogTransaction(txn.ops());
    ASSERT_TRUE((*wal)->Sync(*lsn).ok());
  }
  Catalog cat;
  auto info = Recover(dir_, &cat);
  ASSERT_TRUE(info.ok());
  {
    auto wal = Wal::Open(dir_, options, info->resume);
    ASSERT_TRUE(wal.ok());
    TxnBuilder txn;
    txn.InsertRows("t", kSchema, SomeRows(5));
    auto lsn = (*wal)->LogTransaction(txn.ops());
    ASSERT_TRUE((*wal)->Sync(*lsn).ok());
    // Resuming must not re-create a segment: the tail file is reused.
    EXPECT_EQ((*wal)->stats().segments_created, 0u);
  }
  Catalog cat2;
  info = Recover(dir_, &cat2);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->txns_applied, 2u);
  auto t = cat2.Get("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->VisibleRowCount(), 2u);
}

// ----------------------------------------------------- crash-point ends --

TEST_F(WalTest, TornWriteLosesOnlyTheTornTransaction) {
  auto fault = std::make_shared<WalFaultInjector>();
  bool armed = false;
  fault->clamp_write = [&](size_t len) {
    return armed && len > 5 ? len - 5 : len;
  };
  WalOptions options;
  options.fault = fault;
  auto wal = Wal::Open(dir_, options);
  ASSERT_TRUE(wal.ok());

  TxnBuilder create;
  create.CreateTable("t", kSchema);
  auto lsn = (*wal)->LogTransaction(create.ops());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());
  for (int i = 0; i < 2; ++i) {
    TxnBuilder ins;
    ins.InsertRows("t", kSchema, SomeRows(i));
    lsn = (*wal)->LogTransaction(ins.ops());
    ASSERT_TRUE((*wal)->Sync(*lsn).ok());
  }

  armed = true;  // the next physical write loses its last 5 bytes
  TxnBuilder doomed;
  doomed.InsertRows("t", kSchema, SomeRows(99));
  lsn = (*wal)->LogTransaction(doomed.ops());
  ASSERT_TRUE(lsn.ok());  // buffering can't fail
  EXPECT_FALSE((*wal)->Sync(*lsn).ok());
  // Poisoned: later commits are refused instead of pretending durability.
  TxnBuilder after;
  after.InsertRows("t", kSchema, SomeRows(100));
  EXPECT_FALSE((*wal)->LogTransaction(after.ops()).ok());
  wal->reset();

  Catalog recovered;
  auto info = Recover(dir_, &recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->torn_tail);
  EXPECT_EQ(info->txns_applied, 3u);  // create + 2 acked inserts
  auto t = recovered.Get("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->VisibleRowCount(), 4u);

  // Reopening truncates the torn bytes; new commits append cleanly and a
  // later recovery sees no corruption.
  auto wal2 = Wal::Open(dir_, WalOptions{}, info->resume);
  ASSERT_TRUE(wal2.ok());
  TxnBuilder more;
  more.InsertRows("t", kSchema, SomeRows(7));
  lsn = (*wal2)->LogTransaction(more.ops());
  ASSERT_TRUE((*wal2)->Sync(*lsn).ok());
  wal2->reset();

  Catalog cat2;
  info = Recover(dir_, &cat2);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_FALSE(info->torn_tail);
  EXPECT_EQ(info->txns_applied, 4u);
}

TEST_F(WalTest, FailedFsyncPoisonsTheLog) {
  auto fault = std::make_shared<WalFaultInjector>();
  std::atomic<bool> dying{false};
  fault->fail_sync = [&] { return dying.load(); };
  WalOptions options;
  options.fault = fault;
  auto wal = Wal::Open(dir_, options);
  ASSERT_TRUE(wal.ok());

  TxnBuilder ok_txn;
  ok_txn.CreateTable("t", kSchema);
  auto lsn = (*wal)->LogTransaction(ok_txn.ops());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());

  dying = true;
  TxnBuilder doomed;
  doomed.InsertRows("t", kSchema, SomeRows(1));
  lsn = (*wal)->LogTransaction(doomed.ops());
  const Status failed = (*wal)->Sync(*lsn);
  ASSERT_FALSE(failed.ok());
  // Every later commit reports the original failure.
  TxnBuilder after;
  after.InsertRows("t", kSchema, SomeRows(2));
  auto refused = (*wal)->LogTransaction(after.ops());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().ToString(), failed.ToString());
  wal->reset();

  // The un-fsynced transaction's bytes may or may not have reached the
  // disk image (here they did: the write itself succeeded). Recovery
  // accepts either ending — the guarantee is about *acked* commits.
  Catalog recovered;
  auto info = Recover(dir_, &recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_GE(info->txns_applied, 1u);
  EXPECT_TRUE(recovered.Contains("t"));
}

TEST_F(WalTest, SilentTailCorruptionDropsTheLastTransaction) {
  auto fault = std::make_shared<WalFaultInjector>();
  bool armed = false;
  fault->mutate_write = [&](std::string* bytes) {
    if (armed && !bytes->empty()) bytes->back() ^= 0x01;
  };
  WalOptions options;
  options.fault = fault;
  auto wal = Wal::Open(dir_, options);
  ASSERT_TRUE(wal.ok());

  TxnBuilder create;
  create.CreateTable("t", kSchema);
  auto lsn = (*wal)->LogTransaction(create.ops());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());

  armed = true;  // flip one bit of the next write's final byte
  TxnBuilder ins;
  ins.InsertRows("t", kSchema, SomeRows(1));
  lsn = (*wal)->LogTransaction(ins.ops());
  // Silent corruption: the write and fsync "succeed", the commit is
  // acked — the loss is only discoverable at recovery (CRC).
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());
  wal->reset();

  Catalog recovered;
  auto info = Recover(dir_, &recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_TRUE(info->torn_tail);
  EXPECT_EQ(info->txns_applied, 1u);  // the corrupted tail txn is gone
}

TEST_F(WalTest, MidLogCorruptionIsATypedError) {
  auto wal = Wal::Open(dir_, WalOptions{});
  ASSERT_TRUE(wal.ok());
  TxnBuilder create;
  create.CreateTable("t", kSchema);
  auto lsn = (*wal)->LogTransaction(create.ops());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());
  for (int i = 0; i < 3; ++i) {
    TxnBuilder ins;
    ins.InsertRows("t", kSchema, SomeRows(i));
    lsn = (*wal)->LogTransaction(ins.ops());
    ASSERT_TRUE((*wal)->Sync(*lsn).ok());
  }
  wal->reset();

  // Flip a byte inside the *first* frame: valid records follow, so this
  // is not a crash artefact and must be surfaced, not skipped.
  const std::string segment = OnlySegment();
  {
    std::fstream f(segment, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(static_cast<std::streamoff>(kSegmentHeaderBytes + 10));
    char c = 0;
    f.get(c);
    f.seekp(static_cast<std::streamoff>(kSegmentHeaderBytes + 10));
    f.put(static_cast<char>(c ^ 0x20));
  }
  Catalog cat;
  auto info = Recover(dir_, &cat);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kCorruption);
}

TEST_F(WalTest, TrailingUncommittedRecordsAreIgnoredAndTruncated) {
  auto wal = Wal::Open(dir_, WalOptions{});
  ASSERT_TRUE(wal.ok());
  TxnBuilder create;
  create.CreateTable("t", kSchema);
  auto lsn = (*wal)->LogTransaction(create.ops());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());
  wal->reset();

  // Hand-append a Begin with no Commit — the disk image of a process
  // that died between buffering and becoming durable.
  const std::string segment = OnlySegment();
  std::string dangling;
  AppendFrame(&dangling, EncodeBegin(999));
  {
    std::ofstream f(segment, std::ios::app | std::ios::binary);
    f.write(dangling.data(), static_cast<std::streamsize>(dangling.size()));
  }

  Catalog cat;
  auto info = Recover(dir_, &cat);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->txns_applied, 1u);
  EXPECT_EQ(info->txns_uncommitted, 1u);
  EXPECT_FALSE(info->torn_tail);  // the frames themselves are whole

  // Reopening truncates the dangling Begin, so appending a fresh
  // transaction cannot produce a nested-Begin stream.
  auto wal2 = Wal::Open(dir_, WalOptions{}, info->resume);
  ASSERT_TRUE(wal2.ok());
  TxnBuilder ins;
  ins.InsertRows("t", kSchema, SomeRows(1));
  lsn = (*wal2)->LogTransaction(ins.ops());
  ASSERT_TRUE((*wal2)->Sync(*lsn).ok());
  wal2->reset();

  Catalog cat2;
  info = Recover(dir_, &cat2);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->txns_applied, 2u);
  EXPECT_EQ(info->txns_uncommitted, 0u);
}

// -------------------------------------------------------- group commit --

TEST_F(WalTest, GroupCommitBatchesConcurrentFsyncs) {
  auto fault = std::make_shared<WalFaultInjector>();
  // Hold each fsync long enough for other committers to pile up behind
  // the leader — the batching this mode exists for.
  fault->before_sync = [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  };
  WalOptions options;
  options.fault = fault;
  auto wal = Wal::Open(dir_, options);
  ASSERT_TRUE(wal.ok());

  TxnBuilder create;
  create.CreateTable("t", kSchema);
  auto lsn = (*wal)->LogTransaction(create.ops());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());

  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kTxnsPerThread; ++j) {
        TxnBuilder ins;
        ins.InsertRows(
            "t", kSchema,
            {{Value::Int(t * 1000 + j), Value::Str("w"), Value::Real(0)}});
        auto commit_lsn = (*wal)->LogTransaction(ins.ops());
        if (!commit_lsn.ok() || !(*wal)->Sync(*commit_lsn).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const WalStats stats = (*wal)->stats();
  EXPECT_EQ(stats.txns_logged, 1u + kThreads * kTxnsPerThread);
  EXPECT_EQ(stats.commits_synced, 1u + kThreads * kTxnsPerThread);
  // The headline number: far fewer physical fsyncs than commits.
  EXPECT_LT(stats.fsyncs, stats.commits_synced);
  wal->reset();

  Catalog recovered;
  auto info = Recover(dir_, &recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->txns_applied, 1u + kThreads * kTxnsPerThread);
  auto t = recovered.Get("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->VisibleRowCount(),
            static_cast<size_t>(kThreads * kTxnsPerThread));
}

TEST_F(WalTest, GroupCommitOffForcesAnFsyncPerCommit) {
  WalOptions options;
  options.group_commit = false;
  auto wal = Wal::Open(dir_, options);
  ASSERT_TRUE(wal.ok());

  TxnBuilder create;
  create.CreateTable("t", kSchema);
  auto lsn = (*wal)->LogTransaction(create.ops());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());

  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 10;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kTxnsPerThread; ++j) {
        TxnBuilder ins;
        ins.InsertRows(
            "t", kSchema,
            {{Value::Int(t * 1000 + j), Value::Str("w"), Value::Real(0)}});
        auto commit_lsn = (*wal)->LogTransaction(ins.ops());
        if (!commit_lsn.ok() || !(*wal)->Sync(*commit_lsn).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  const WalStats stats = (*wal)->stats();
  // Every committer paid (at least) one fsync of its own.
  EXPECT_GE(stats.fsyncs, stats.commits_synced);
}

// ---------------------------------------------------- segment rotation --

/// Regression: a crash during Sync()'s segment rotation leaves the fresh
/// segment file with a torn 16-byte header (the only write it ever got).
/// Recovery used to reject the whole directory as corrupt; a torn header
/// on the *final* segment is a crash artefact and must be dropped like a
/// torn record tail — every acked commit lives in the earlier segments.
TEST_F(WalTest, TornSegmentHeaderAtRotationIsACrashArtifact) {
  auto fault = std::make_shared<WalFaultInjector>();
  std::atomic<int> headers{0};
  fault->clamp_write = [&](size_t len) -> size_t {
    // Segment headers are the only exactly-16-byte appends (every
    // transaction is three frames). Tear the third one: the header of
    // the segment the second rotation creates.
    if (len == kSegmentHeaderBytes && ++headers >= 3) return 7;
    return len;
  };
  WalOptions options;
  options.fault = fault;
  options.segment_bytes = 1;  // every commit crosses the rotation trigger
  auto wal = Wal::Open(dir_, options);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();

  // Commit 1: lands in segment 1, rotation creates segment 2 cleanly.
  TxnBuilder create;
  create.CreateTable("t", kSchema);
  auto lsn = (*wal)->LogTransaction(create.ops());
  ASSERT_TRUE(lsn.ok());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());

  // Commit 2: its bytes reach segment 2 and are fsynced, but the
  // rotation afterwards tears segment 3's header — the Sync fails, so
  // this commit is durable on disk yet never acked.
  TxnBuilder ins;
  ins.InsertRows("t", kSchema, SomeRows(1));
  lsn = (*wal)->LogTransaction(ins.ops());
  ASSERT_TRUE(lsn.ok());
  EXPECT_FALSE((*wal)->Sync(*lsn).ok());
  wal->reset();

  size_t segments = 0;
  for (const auto& e : fs::directory_iterator(WalSubdir(dir_))) {
    (void)e;
    ++segments;
  }
  EXPECT_EQ(segments, 3u);  // the torn-header file exists on disk

  // Recovery succeeds, applies both whole transactions, and deletes the
  // torn-header segment so a reopened WAL starts from a clean tail.
  Catalog recovered;
  auto info = Recover(dir_, &recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->txns_applied, 2u);
  auto t = recovered.Get("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->VisibleRowCount(), 2u);
  segments = 0;
  for (const auto& e : fs::directory_iterator(WalSubdir(dir_))) {
    (void)e;
    ++segments;
  }
  EXPECT_EQ(segments, 2u);

  // The directory stays writable: resume, commit, recover again.
  auto wal2 = Wal::Open(dir_, WalOptions{}, info->resume);
  ASSERT_TRUE(wal2.ok()) << wal2.status().ToString();
  TxnBuilder more;
  more.InsertRows("t", kSchema, SomeRows(5));
  lsn = (*wal2)->LogTransaction(more.ops());
  ASSERT_TRUE((*wal2)->Sync(*lsn).ok());
  wal2->reset();
  Catalog again;
  info = Recover(dir_, &again);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->txns_applied, 3u);
}

/// Rotation under concurrent group commit: with segments barely bigger
/// than one transaction, every leader round rotates while followers are
/// parked on the condition variable. No acked commit may be lost and no
/// Sync may fail — the race this guards is a follower whose LSN lands in
/// the fresh segment while the leader is still swapping files.
TEST_F(WalTest, GroupCommitRotationRaceLosesNoAckedCommit) {
  auto fault = std::make_shared<WalFaultInjector>();
  // Hold each fsync briefly so followers pile up behind the leader and
  // rotation happens with a non-empty wait queue.
  fault->before_sync = [] {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  };
  WalOptions options;
  options.fault = fault;
  options.segment_bytes = 512;  // a handful of commits per segment
  auto wal = Wal::Open(dir_, options);
  ASSERT_TRUE(wal.ok());

  TxnBuilder create;
  create.CreateTable("t", kSchema);
  auto lsn = (*wal)->LogTransaction(create.ops());
  ASSERT_TRUE((*wal)->Sync(*lsn).ok());

  constexpr int kThreads = 8;
  constexpr int kTxnsPerThread = 25;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int j = 0; j < kTxnsPerThread; ++j) {
        TxnBuilder ins;
        ins.InsertRows(
            "t", kSchema,
            {{Value::Int(t * 1000 + j), Value::Str("w"), Value::Real(0)}});
        auto commit_lsn = (*wal)->LogTransaction(ins.ops());
        if (!commit_lsn.ok() || !(*wal)->Sync(*commit_lsn).ok()) ++failures;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  const WalStats stats = (*wal)->stats();
  EXPECT_GT(stats.segments_created, 4u);  // rotation genuinely happened
  wal->reset();

  Catalog recovered;
  auto info = Recover(dir_, &recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->txns_applied, 1u + kThreads * kTxnsPerThread);
  auto t = recovered.Get("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->VisibleRowCount(),
            static_cast<size_t>(kThreads * kTxnsPerThread));
}

// --------------------------------------------------------- checkpoints --

TEST_F(WalTest, CheckpointTruncatesLogAndSurvivesRestart) {
  sql::Engine engine;
  auto db = OpenDatabase(dir_, &engine);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(
      engine.Execute("CREATE TABLE t (id INT, tag VARCHAR(16))").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine
                    .Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                             ", 'a')")
                    .ok());
  }
  ASSERT_TRUE(engine.Execute("DELETE FROM t WHERE id = 3").ok());

  auto cp = engine.Execute("  checkpoint  ");  // case/space-insensitive
  ASSERT_TRUE(cp.ok()) << cp.status().ToString();
  ASSERT_EQ(cp->names.size(), 1u);
  EXPECT_EQ(cp->names[0], "checkpoint_lsn");
  const WalStats stats = db->wal->stats();
  EXPECT_EQ(stats.checkpoints, 1u);
  EXPECT_GT(stats.checkpoint_lsn, 0u);
  // The log was rotated and pre-checkpoint segments deleted.
  EXPECT_EQ(OnlySegment(),
            WalSubdir(dir_) + "/" + SegmentFileName(stats.checkpoint_lsn));
  EXPECT_TRUE(fs::exists(fs::path(dir_) / "CURRENT"));
  EXPECT_TRUE(
      fs::exists(fs::path(dir_) / SnapshotDirName(stats.checkpoint_lsn)));

  // Post-checkpoint traffic lands in the fresh segment.
  for (int i = 10; i < 13; ++i) {
    ASSERT_TRUE(engine
                    .Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                             ", 'b')")
                    .ok());
  }
  db->wal.reset();

  sql::Engine reopened;
  auto db2 = OpenDatabase(dir_, &reopened);
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  EXPECT_FALSE(db2->info.snapshot_dir.empty());
  EXPECT_EQ(db2->info.txns_applied, 3u);  // only the post-checkpoint inserts
  EXPECT_TRUE(CompareCatalogs(*engine.catalog(), *reopened.catalog()).ok());
}

TEST_F(WalTest, LogSizeTriggerCheckpointsAutomatically) {
  sql::Engine engine;
  DbOptions options;
  options.wal.checkpoint_log_bytes = 1;  // every commit crosses the trigger
  auto db = OpenDatabase(dir_, &engine, options);
  ASSERT_TRUE(db.ok());
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (x INT)").ok());
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        engine.Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")")
            .ok());
  }
  EXPECT_GE(db->wal->stats().checkpoints, 3u);
  db->wal.reset();

  sql::Engine reopened;
  auto db2 = OpenDatabase(dir_, &reopened);
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  EXPECT_TRUE(CompareCatalogs(*engine.catalog(), *reopened.catalog()).ok());
}

TEST(WalEngineTest, CheckpointWithoutWalIsAnError) {
  sql::Engine engine;
  EXPECT_FALSE(engine.Execute("CHECKPOINT").ok());
}

// ------------------------------------------------- engine-level replay --

TEST_F(WalTest, EngineRoundTripCoversEveryStatementKind) {
  sql::Engine engine;
  auto db = OpenDatabase(dir_, &engine);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(engine
                  .ExecuteScript(
                      "CREATE TABLE t (id INT, tag VARCHAR(16), score "
                      "DOUBLE);"
                      "INSERT INTO t VALUES (1, 'one', 1.5), (2, 'two', "
                      "2.5), (3, 'three', 3.5);"
                      "UPDATE t SET score = 9.0 WHERE id = 2;"
                      "DELETE FROM t WHERE id = 1;"
                      "CREATE TABLE empty_t (x INT);")
                  .ok());
  // A no-effect statement must not log a transaction.
  const uint64_t logged_before = db->wal->stats().txns_logged;
  ASSERT_TRUE(engine.Execute("DELETE FROM t WHERE id = 12345").ok());
  EXPECT_EQ(db->wal->stats().txns_logged, logged_before);
  db->wal.reset();

  sql::Engine reopened;
  auto db2 = OpenDatabase(dir_, &reopened);
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  EXPECT_TRUE(CompareCatalogs(*engine.catalog(), *reopened.catalog()).ok());
  auto r = reopened.Execute("SELECT tag, score FROM t WHERE id = 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->RowCount(), 1u);
  EXPECT_EQ(r->columns[0]->StringAt(0), "two");
  EXPECT_DOUBLE_EQ(r->columns[1]->ValueAt<double>(0), 9.0);
}

/// The randomized crash harness: run a deterministic workload against a
/// database whose WAL dies after a pseudo-random number of bytes, then
/// recover and require that the surviving state is (a) exactly some
/// prefix of the executed statements, (b) a prefix covering every acked
/// statement, and (c) stable under double recovery. Odd seeds crash with
/// checkpointing and segment rotation in play.
TEST_F(WalTest, RandomizedCrashPointsRecoverTheCommittedPrefix) {
  const std::vector<std::string> stmts = [] {
    std::vector<std::string> s;
    s.push_back("CREATE TABLE t (id INT, tag VARCHAR(16), score DOUBLE)");
    for (int i = 1; i < 40; ++i) {
      if (i % 5 == 3) {
        s.push_back("DELETE FROM t WHERE id = " + std::to_string(i - 1));
      } else if (i % 7 == 4) {
        s.push_back("UPDATE t SET score = " + std::to_string(i) +
                    ".0 WHERE id >= 0");
      } else {
        s.push_back("INSERT INTO t VALUES (" + std::to_string(i) + ", 'g" +
                    std::to_string(i) + "', " + std::to_string(i) + ".5)");
      }
    }
    return s;
  }();

  // Deterministic: the seed set is fixed (CI can widen the matrix via
  // MAMMOTH_CRASH_SEEDS without touching the code).
  uint64_t nseeds = 8;
  if (const char* env = std::getenv("MAMMOTH_CRASH_SEEDS")) {
    nseeds = std::strtoull(env, nullptr, 10);
  }
  for (uint64_t seed = 1; seed <= nseeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const std::string dir = dir_ + "/crash_" + std::to_string(seed);
    fs::remove_all(dir);

    Rng rng(seed * 7919);
    auto remaining = std::make_shared<int64_t>(
        static_cast<int64_t>(200 + rng.Uniform(4000)));
    auto fault = std::make_shared<WalFaultInjector>();
    fault->clamp_write = [remaining](size_t len) -> size_t {
      if (*remaining >= static_cast<int64_t>(len)) {
        *remaining -= static_cast<int64_t>(len);
        return len;
      }
      const size_t landed = static_cast<size_t>(std::max<int64_t>(
          *remaining, 0));
      *remaining = 0;  // after the crash point nothing ever lands again
      return landed;
    };

    DbOptions options;
    options.wal.fault = fault;
    if (seed % 2 == 1) {
      options.wal.checkpoint_log_bytes = 1500;
      options.wal.segment_bytes = 1024;  // exercise rotation too
    }

    sql::Engine engine;
    auto db = OpenDatabase(dir, &engine, options);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    size_t acked = 0;
    for (const auto& stmt : stmts) {
      if (!engine.Execute(stmt).ok()) break;  // crashed: poison from here
      ++acked;
    }
    db->wal.reset();

    Catalog rec1, rec2;
    auto info1 = Recover(dir, &rec1);
    ASSERT_TRUE(info1.ok()) << info1.status().ToString();
    auto info2 = Recover(dir, &rec2);
    ASSERT_TRUE(info2.ok());
    EXPECT_TRUE(CompareCatalogs(rec1, rec2).ok());

    // Find the longest executed prefix matching the recovered image.
    sql::Engine ref;
    bool matched = false;
    size_t prefix = 0;
    for (size_t k = 0; k <= stmts.size(); ++k) {
      if (k > 0) ASSERT_TRUE(ref.Execute(stmts[k - 1]).ok());
      if (CompareCatalogs(*ref.catalog(), rec1).ok()) {
        matched = true;
        prefix = k;
      }
    }
    EXPECT_TRUE(matched) << "recovered state matches no executed prefix";
    EXPECT_GE(prefix, acked) << "an acknowledged statement was lost";
    fs::remove_all(dir);
  }
}

/// Compressed storage is durable: ALTER TABLE COMPRESS replays from the
/// log, survives a checkpoint round-trip (the snapshot persists the
/// compressed column images), and post-compress DML lands correctly in
/// both paths.
TEST_F(WalTest, CompressedTablesSurviveReplayAndCheckpoint) {
  sql::Engine engine;
  auto db = OpenDatabase(dir_, &engine);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE(engine.Execute("CREATE TABLE c (id INT, v INT)").ok());
  std::string ins = "INSERT INTO c VALUES ";
  for (int i = 0; i < 400; ++i) {
    if (i > 0) ins += ", ";
    ins += "(" + std::to_string(i) + ", " + std::to_string(i % 7) + ")";
  }
  ASSERT_TRUE(engine.Execute(ins).ok());
  ASSERT_TRUE(engine.Execute("ALTER TABLE c COMPRESS").ok());
  // DML on top of compressed mains, still WAL-logged.
  ASSERT_TRUE(engine.Execute("INSERT INTO c VALUES (1000, 3)").ok());
  ASSERT_TRUE(engine.Execute("DELETE FROM c WHERE id = 5").ok());
  {
    auto t = engine.catalog()->Get("c");
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE((*t)->compression_enabled());
    EXPECT_EQ((*t)->CompressedColumnCount(), 2u);
  }
  db->wal.reset();

  // Pure log replay (no checkpoint yet).
  sql::Engine replayed;
  auto db2 = OpenDatabase(dir_, &replayed);
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  EXPECT_TRUE(CompareCatalogs(*engine.catalog(), *replayed.catalog()).ok());
  {
    auto t = replayed.catalog()->Get("c");
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE((*t)->compression_enabled());
    EXPECT_EQ((*t)->CompressedColumnCount(), 2u);
    EXPECT_GT((*t)->CompressedBytesTotal(), 0u);
  }

  // Checkpoint: the snapshot must persist the compressed images and the
  // policy, and recovery must come back through Table::FromStorage.
  ASSERT_TRUE(replayed.Execute("CHECKPOINT").ok());
  ASSERT_TRUE(replayed.Execute("INSERT INTO c VALUES (1001, 4)").ok());
  db2->wal.reset();

  sql::Engine reopened;
  auto db3 = OpenDatabase(dir_, &reopened);
  ASSERT_TRUE(db3.ok()) << db3.status().ToString();
  EXPECT_FALSE(db3->info.snapshot_dir.empty());
  EXPECT_TRUE(
      CompareCatalogs(*replayed.catalog(), *reopened.catalog()).ok());
  {
    auto t = reopened.catalog()->Get("c");
    ASSERT_TRUE(t.ok());
    EXPECT_TRUE((*t)->compression_enabled());
    EXPECT_EQ((*t)->CompressedColumnCount(), 2u);
  }
  auto want = replayed.Execute("SELECT id, v FROM c WHERE v >= 2 AND v <= 5");
  auto got = reopened.Execute("SELECT id, v FROM c WHERE v >= 2 AND v <= 5");
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->ToText(1 << 20), want->ToText(1 << 20));

  // DECOMPRESS is durable too.
  ASSERT_TRUE(reopened.Execute("ALTER TABLE c DECOMPRESS").ok());
  db3->wal.reset();
  sql::Engine plain_again;
  auto db4 = OpenDatabase(dir_, &plain_again);
  ASSERT_TRUE(db4.ok()) << db4.status().ToString();
  auto t = plain_again.catalog()->Get("c");
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE((*t)->compression_enabled());
  EXPECT_EQ((*t)->CompressedColumnCount(), 0u);
}

// ------------------------------------------------- statement atomicity --

TEST(WalEngineTest, FailingMultiRowInsertLeavesNoTrace) {
  sql::Engine engine;
  ASSERT_TRUE(
      engine
          .ExecuteScript("CREATE TABLE t (x INT, s VARCHAR(8));"
                         "INSERT INTO t VALUES (1, 'a')")
          .ok());
  auto t = engine.catalog()->Get("t");
  ASSERT_TRUE(t.ok());
  const uint64_t version = (*t)->version();
  const size_t visible = (*t)->VisibleRowCount();
  const size_t pending = (*t)->PendingInsertCount();

  // Row 2 fails the type check after row 1 already appended: the
  // statement must roll its partial effect back.
  EXPECT_FALSE(
      engine.Execute("INSERT INTO t VALUES (2, 'b'), ('oops', 3), (4, 'd')")
          .ok());
  EXPECT_EQ((*t)->version(), version);
  EXPECT_EQ((*t)->VisibleRowCount(), visible);
  EXPECT_EQ((*t)->PendingInsertCount(), pending);
  auto r = engine.Execute("SELECT x FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->RowCount(), 1u);
}

TEST(WalEngineTest, TableRollbackRestoresInsertAndDeleteDeltas) {
  auto created = Table::Create("t", {{"x", PhysType::kInt64}});
  ASSERT_TRUE(created.ok());
  TablePtr t = *created;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t->Insert({Value::Int(i)}).ok());
  }
  const Table::DeltaMark mark = t->Mark();
  const uint64_t version = t->version();

  ASSERT_TRUE(t->Insert({Value::Int(100)}).ok());
  ASSERT_TRUE(t->Insert({Value::Int(101)}).ok());
  ASSERT_TRUE(t->Delete(MakeBat<Oid>({Oid{0}, Oid{2}})).ok());
  EXPECT_EQ(t->VisibleRowCount(), 4u);
  EXPECT_EQ(t->DeletedCount(), 2u);

  t->Rollback(mark);
  EXPECT_EQ(t->VisibleRowCount(), 4u);
  EXPECT_EQ(t->PendingInsertCount(), 4u);
  EXPECT_EQ(t->DeletedCount(), 0u);
  EXPECT_EQ(t->version(), version);
  auto col = t->ScanColumn("x");
  ASSERT_TRUE(col.ok());
  EXPECT_EQ((*col)->ValueAt<int64_t>(3), 3);
}

}  // namespace
}  // namespace mammoth::wal
