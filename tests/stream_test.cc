#include "stream/datacell.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"

namespace mammoth::stream {
namespace {

std::vector<Event> MakeEvents(size_t n, uint64_t seed, int keys = 8) {
  Rng rng(seed);
  std::vector<Event> events(n);
  for (size_t i = 0; i < n; ++i) {
    events[i].ts = static_cast<int64_t>(i);
    events[i].key = static_cast<int32_t>(rng.Uniform(keys));
    events[i].value = rng.NextDouble() * 100.0;
  }
  return events;
}

std::map<int32_t, WindowRow> ByKey(const std::vector<WindowRow>& rows) {
  std::map<int32_t, WindowRow> m;
  for (const WindowRow& r : rows) m[r.key] = r;
  return m;
}

TEST(BasketTest, AppendSliceConsume) {
  Basket b;
  auto events = MakeEvents(100, 1);
  b.AppendBatch(events.data(), events.size());
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.Pending(), 100u);
  BatPtr keys = b.SliceKey(10, 20);
  ASSERT_EQ(keys->Count(), 10u);
  EXPECT_EQ(keys->ValueAt<int32_t>(0), events[10].key);
  b.Consume(50);
  EXPECT_EQ(b.Pending(), 50u);
  BatPtr vals = b.SliceValue(0, 5);
  EXPECT_DOUBLE_EQ(vals->ValueAt<double>(0), events[50].value);
  b.Compact();
  EXPECT_EQ(b.Pending(), 50u);
  BatPtr vals2 = b.SliceValue(0, 5);
  EXPECT_DOUBLE_EQ(vals2->ValueAt<double>(0), events[50].value);
}

TEST(WindowTest, BulkMatchesEventAtATime) {
  auto events = MakeEvents(10000, 7, 16);
  Basket b;
  b.AppendBatch(events.data(), events.size());
  auto bulk = BulkWindow(b.SliceKey(0, events.size()),
                         b.SliceValue(0, events.size()),
                         /*filtered=*/false, 0, 0);
  ASSERT_TRUE(bulk.ok());
  auto naive = EventAtATimeWindow(events.data(), events.size(), false, 0, 0);
  auto mb = ByKey(*bulk);
  auto mn = ByKey(naive);
  ASSERT_EQ(mb.size(), mn.size());
  for (const auto& [key, want] : mn) {
    ASSERT_TRUE(mb.count(key) == 1) << key;
    const WindowRow& got = mb[key];
    EXPECT_NEAR(got.sum, want.sum, 1e-6);
    EXPECT_EQ(got.count, want.count);
    EXPECT_DOUBLE_EQ(got.min, want.min);
    EXPECT_DOUBLE_EQ(got.max, want.max);
  }
}

TEST(WindowTest, FilteredBulkMatchesEventAtATime) {
  auto events = MakeEvents(5000, 9, 4);
  Basket b;
  b.AppendBatch(events.data(), events.size());
  auto bulk = BulkWindow(b.SliceKey(0, events.size()),
                         b.SliceValue(0, events.size()),
                         /*filtered=*/true, 25.0, 75.0);
  ASSERT_TRUE(bulk.ok());
  auto naive =
      EventAtATimeWindow(events.data(), events.size(), true, 25.0, 75.0);
  auto mb = ByKey(*bulk);
  auto mn = ByKey(naive);
  ASSERT_EQ(mb.size(), mn.size());
  for (const auto& [key, want] : mn) {
    EXPECT_NEAR(mb[key].sum, want.sum, 1e-6);
    EXPECT_EQ(mb[key].count, want.count);
  }
}

TEST(DataCellTest, PumpsCompleteWindowsOnly) {
  DataCell cell;
  size_t windows_seen = 0;
  size_t rows_seen = 0;
  ContinuousQuery q;
  q.window = 256;
  q.emit = [&](int64_t, const std::vector<WindowRow>& rows) {
    ++windows_seen;
    rows_seen += rows.size();
  };
  cell.Register(q);

  auto events = MakeEvents(1000, 11);
  cell.basket().AppendBatch(events.data(), events.size());
  auto pumped = cell.Pump();
  ASSERT_TRUE(pumped.ok());
  EXPECT_EQ(*pumped, 3u);  // 3 complete windows of 256, 232 pending
  EXPECT_EQ(windows_seen, 3u);
  EXPECT_GT(rows_seen, 0u);
  EXPECT_EQ(cell.basket().Pending(), 1000u - 3 * 256);

  // More events complete the fourth window.
  auto more = MakeEvents(100, 12);
  cell.basket().AppendBatch(more.data(), more.size());
  pumped = cell.Pump();
  ASSERT_TRUE(pumped.ok());
  EXPECT_EQ(*pumped, 1u);
  EXPECT_EQ(cell.windows_emitted(), 4);
}

TEST(DataCellTest, MultipleQueriesShareWindows) {
  DataCell cell;
  double sum_all = 0, sum_filtered = 0;
  ContinuousQuery q1;
  q1.window = 100;
  q1.emit = [&](int64_t, const std::vector<WindowRow>& rows) {
    for (const auto& r : rows) sum_all += r.sum;
  };
  ContinuousQuery q2;
  q2.window = 100;
  q2.filtered = true;
  q2.lo = 0.0;
  q2.hi = 50.0;
  q2.emit = [&](int64_t, const std::vector<WindowRow>& rows) {
    for (const auto& r : rows) sum_filtered += r.sum;
  };
  cell.Register(q1);
  cell.Register(q2);
  auto events = MakeEvents(100, 13);
  cell.basket().AppendBatch(events.data(), events.size());
  ASSERT_TRUE(cell.Pump().ok());
  EXPECT_GT(sum_all, sum_filtered);
  EXPECT_GT(sum_filtered, 0.0);
}

TEST(DataCellTest, ZeroWindowRejected) {
  DataCell cell;
  ContinuousQuery q;
  q.window = 0;
  cell.Register(q);
  auto events = MakeEvents(10, 14);
  cell.basket().AppendBatch(events.data(), events.size());
  EXPECT_FALSE(cell.Pump().ok());
}

}  // namespace
}  // namespace mammoth::stream
