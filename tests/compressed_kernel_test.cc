/// Bit-identity suite for the compressed-direct kernels (DESIGN.md §13):
/// RLE/PDICT selects and aggregate folds, dictionary string predicates,
/// bounded projection, recycler compressed admission — each checked
/// against decode-then-stock-kernel on adversarial data shapes, through
/// the shared-scan scheduler at pools of 1/2/4/8, over the wire, and
/// across a checkpoint → kill → recover cycle for dictionary-compressed
/// string columns. Style follows compressed_query_test.cc.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "compress/compressed_bat.h"
#include "compress/compressed_exec.h"
#include "compress/compressed_kernels.h"
#include "compress/dict_str.h"
#include "core/group.h"
#include "core/persist.h"
#include "core/project.h"
#include "core/select.h"
#include "core/table.h"
#include "parallel/task_pool.h"
#include "recycle/recycler.h"
#include "scan/shared_scan.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/engine.h"
#include "wal/db.h"

namespace mammoth {
namespace {

namespace fs = std::filesystem;

using compress::Codec;
using compress::CompressedBat;
using compress::StrDict;
using server::Client;
using server::EncodeResult;
using server::Server;
using server::ServerConfig;

// ------------------------------------------------------------ data shapes --

BatPtr I32FromFn(size_t n, int32_t (*fn)(size_t, Rng&), uint64_t seed) {
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(n);
  int32_t* p = b->MutableTailData<int32_t>();
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) p[i] = fn(i, rng);
  return b;
}

/// Long runs of random length 1..300, values 0..9 (RLE's home turf).
BatPtr RunHeavyI32(size_t n) {
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(n);
  int32_t* p = b->MutableTailData<int32_t>();
  Rng rng(11);
  size_t i = 0;
  while (i < n) {
    const int32_t v = static_cast<int32_t>(rng.Uniform(10));
    size_t len = 1 + rng.Uniform(300);
    for (; len > 0 && i < n; --len, ++i) p[i] = v;
  }
  return b;
}

/// Low cardinality, no run structure (PDICT's home turf).
BatPtr LowCardI32(size_t n) {
  return I32FromFn(
      n, [](size_t, Rng& r) { return static_cast<int32_t>(r.Uniform(8)); },
      22);
}

/// Adversarial for RLE: alternating values with occasional spikes, so the
/// run list is nearly one run per row (plus singleton runs at the spikes).
BatPtr AdversarialI32(size_t n) {
  return I32FromFn(
      n,
      [](size_t i, Rng& r) {
        if (r.Uniform(97) == 0) return static_cast<int32_t>(9);
        return static_cast<int32_t>(i % 2);
      },
      33);
}

BatPtr AllEqualI32(size_t n) {
  return I32FromFn(n, [](size_t, Rng&) { return int32_t{7}; }, 44);
}

Oid OidAt(const BatPtr& b, size_t i) {
  return b->IsDenseTail() ? b->tseqbase() + static_cast<Oid>(i)
                          : b->ValueAt<Oid>(i);
}

void ExpectSameOids(const BatPtr& got, const BatPtr& want,
                    const std::string& what) {
  ASSERT_EQ(got->Count(), want->Count()) << what;
  for (size_t i = 0; i < want->Count(); ++i) {
    ASSERT_EQ(OidAt(got, i), OidAt(want, i)) << what << " at row " << i;
  }
  EXPECT_EQ(got->props().sorted, want->props().sorted) << what;
  EXPECT_EQ(got->props().key, want->props().key) << what;
}

// -------------------------------------------------------- select kernels --

constexpr size_t kShapeRows = 70001;  // crosses a stat-block boundary

struct Shape {
  const char* name;
  BatPtr bat;
};

std::vector<Shape> SelectShapes() {
  return {{"runs", RunHeavyI32(kShapeRows)},
          {"lowcard", LowCardI32(kShapeRows)},
          {"adversarial", AdversarialI32(kShapeRows)},
          {"allequal", AllEqualI32(kShapeRows)}};
}

TEST(CompressedKernelTest, ThetaSelectBitIdenticalAcrossShapesOpsAndChunks) {
  const std::vector<CmpOp> ops = {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq,
                                  CmpOp::kNe, CmpOp::kGe, CmpOp::kGt};
  const std::vector<int64_t> probes = {-1, 0, 5, 9, 100};  // absent + edges
  size_t eligible = 0;
  for (const Shape& shape : SelectShapes()) {
    for (const Codec codec : {Codec::kRle, Codec::kPdict}) {
      auto comp = CompressedBat::Compress(shape.bat, codec);
      if (!comp.ok()) continue;  // codec not applicable to this shape
      auto decoded = comp->DecodedBat();
      ASSERT_TRUE(decoded.ok());
      const size_t n = comp->Count();
      const size_t cut = n / 3 + 7;
      for (const CmpOp op : ops) {
        for (const int64_t pv : probes) {
          const Value v = Value::Int(pv);
          const std::string what = std::string(shape.name) + "/" +
                                   compress::CodecName(codec) + " op " +
                                   std::to_string(static_cast<int>(op)) +
                                   " v=" + std::to_string(pv);
          if (!compress::ThetaSelectableOnCompressed(*comp, v, op)) continue;
          ++eligible;
          auto want = algebra::ThetaSelect(*decoded, nullptr, v, op,
                                           parallel::ExecContext::Serial());
          ASSERT_TRUE(want.ok()) << what;
          auto got = compress::CompressedThetaSelectRange(*comp, v, op, 0, n,
                                                          /*hseq=*/0);
          ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();
          ExpectSameOids(*got, *want, what);

          // Chunked evaluation ([0,cut) ++ [cut,n)) concatenates to the
          // whole-column answer — the shared-scan delivery contract.
          auto lo = compress::CompressedThetaSelectRange(*comp, v, op, 0, cut,
                                                         /*hseq=*/0);
          auto hi = compress::CompressedThetaSelectRange(*comp, v, op, cut, n,
                                                         /*hseq=*/0);
          ASSERT_TRUE(lo.ok() && hi.ok()) << what;
          ASSERT_EQ((*lo)->Count() + (*hi)->Count(), (*want)->Count()) << what;
          for (size_t i = 0; i < (*lo)->Count(); ++i) {
            ASSERT_EQ(OidAt(*lo, i), OidAt(*want, i)) << what;
          }
          for (size_t i = 0; i < (*hi)->Count(); ++i) {
            ASSERT_EQ(OidAt(*hi, i), OidAt(*want, (*lo)->Count() + i)) << what;
          }
        }
      }
    }
  }
  // The matrix must actually exercise the direct path, not skip it all.
  EXPECT_GT(eligible, 50u);
}

TEST(CompressedKernelTest, RangeSelectBitIdenticalIncludingAntiAndOpenEnds) {
  struct RangeCase {
    int64_t lo, hi;
    bool lo_incl, hi_incl, anti;
  };
  const std::vector<RangeCase> cases = {
      {2, 7, true, true, false},   {2, 7, false, false, false},
      {2, 7, true, false, false},  {2, 7, true, true, true},
      {0, 9, true, true, false},   {100, 200, true, true, false},
      {-5, -1, true, true, false}, {5, 5, true, true, false},
  };
  size_t eligible = 0;
  for (const Shape& shape : SelectShapes()) {
    for (const Codec codec : {Codec::kRle, Codec::kPdict}) {
      auto comp = CompressedBat::Compress(shape.bat, codec);
      if (!comp.ok()) continue;
      auto decoded = comp->DecodedBat();
      ASSERT_TRUE(decoded.ok());
      const size_t n = comp->Count();
      for (const RangeCase& c : cases) {
        const Value lo = Value::Int(c.lo);
        const Value hi = Value::Int(c.hi);
        if (!compress::RangeSelectableOnCompressed(*comp, lo, hi)) continue;
        ++eligible;
        const std::string what = std::string(shape.name) + "/" +
                                 compress::CodecName(codec) + " [" +
                                 std::to_string(c.lo) + "," +
                                 std::to_string(c.hi) + "] anti=" +
                                 std::to_string(c.anti);
        auto want = algebra::RangeSelect(*decoded, nullptr, lo, hi, c.lo_incl,
                                         c.hi_incl, c.anti,
                                         parallel::ExecContext::Serial());
        ASSERT_TRUE(want.ok()) << what;
        auto got = compress::CompressedRangeSelectRange(
            *comp, lo, hi, c.lo_incl, c.hi_incl, c.anti, 0, n, /*hseq=*/0);
        ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();
        ExpectSameOids(*got, *want, what);
      }
    }
  }
  EXPECT_GT(eligible, 20u);
}

TEST(CompressedKernelTest, SortedColumnsAreNotEligible) {
  // The plain path answers sorted selects with a binary search returning a
  // *dense* result; a materializing kernel cannot match that bit-for-bit,
  // so eligibility must say no.
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(kShapeRows);
  int32_t* p = b->MutableTailData<int32_t>();
  for (size_t i = 0; i < kShapeRows; ++i) {
    p[i] = static_cast<int32_t>(i / 1000);
  }
  b->mutable_props().sorted = true;
  auto comp = CompressedBat::Compress(b, Codec::kRle);
  ASSERT_TRUE(comp.ok());
  EXPECT_FALSE(compress::ThetaSelectableOnCompressed(*comp, Value::Int(5),
                                                     CmpOp::kEq));
  EXPECT_FALSE(compress::RangeSelectableOnCompressed(*comp, Value::Int(2),
                                                     Value::Int(7)));
}

// ----------------------------------------------------- aggregate kernels --

TEST(CompressedKernelTest, AggregateFoldsBitIdentical) {
  std::vector<Shape> shapes = SelectShapes();
  // An int64 RLE shape with values far above 2^32, so the fold exercises
  // the wide accumulator path too.
  BatPtr big = Bat::New(PhysType::kInt64);
  big->Resize(kShapeRows);
  int64_t* bp = big->MutableTailData<int64_t>();
  for (size_t i = 0; i < kShapeRows; ++i) {
    bp[i] = (int64_t{1} << 40) + static_cast<int64_t>(i / 5000);
  }
  shapes.push_back({"bigruns", big});

  size_t eligible = 0;
  for (const Shape& shape : shapes) {
    for (const Codec codec : {Codec::kRle, Codec::kPdict}) {
      auto comp = CompressedBat::Compress(shape.bat, codec);
      if (!comp.ok()) continue;
      if (!compress::AggregatableOnCompressed(*comp)) continue;
      ++eligible;
      auto decoded = comp->DecodedBat();
      ASSERT_TRUE(decoded.ok());
      const std::string what =
          std::string(shape.name) + "/" + compress::CodecName(codec);

      auto want_sum = algebra::AggrSum(*decoded, nullptr, 1,
                                       parallel::ExecContext::Serial());
      auto got_sum = compress::CompressedAggrSum(*comp);
      ASSERT_TRUE(want_sum.ok() && got_sum.ok()) << what;
      ASSERT_EQ((*got_sum)->Count(), 1u) << what;
      EXPECT_EQ((*got_sum)->ValueAt<int64_t>(0), (*want_sum)->ValueAt<int64_t>(0))
          << what;

      auto want_min = algebra::AggrMin(*decoded, nullptr, 1,
                                       parallel::ExecContext::Serial());
      auto got_min = compress::CompressedAggrMin(*comp);
      ASSERT_TRUE(want_min.ok() && got_min.ok()) << what;
      ASSERT_EQ((*got_min)->type(), (*want_min)->type()) << what;
      auto want_max = algebra::AggrMax(*decoded, nullptr, 1,
                                       parallel::ExecContext::Serial());
      auto got_max = compress::CompressedAggrMax(*comp);
      ASSERT_TRUE(want_max.ok() && got_max.ok()) << what;
      if ((*got_min)->type() == PhysType::kInt64) {
        EXPECT_EQ((*got_min)->ValueAt<int64_t>(0),
                  (*want_min)->ValueAt<int64_t>(0))
            << what;
        EXPECT_EQ((*got_max)->ValueAt<int64_t>(0),
                  (*want_max)->ValueAt<int64_t>(0))
            << what;
      } else {
        EXPECT_EQ((*got_min)->ValueAt<int32_t>(0),
                  (*want_min)->ValueAt<int32_t>(0))
            << what;
        EXPECT_EQ((*got_max)->ValueAt<int32_t>(0),
                  (*want_max)->ValueAt<int32_t>(0))
            << what;
      }
    }
  }
  EXPECT_GT(eligible, 3u);
}

// ------------------------------------------------- string dictionary ----

BatPtr WordsBat(size_t n, size_t vocab, uint64_t seed) {
  BatPtr b = Bat::NewString(nullptr);
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    b->AppendString("w" + std::to_string(rng.Uniform(vocab)));
  }
  return b;
}

TEST(CompressedKernelTest, DictStrSelectBitIdenticalAcrossOpsAndProbes) {
  const size_t n = 50000;
  BatPtr plain = WordsBat(n, 30, 55);
  auto dict_r = StrDict::Encode(plain);
  ASSERT_TRUE(dict_r.ok()) << dict_r.status().ToString();
  const StrDict dict = *dict_r;
  EXPECT_LT(dict.CompressedBytes(), dict.LogicalBytes());

  const std::vector<CmpOp> ops = {CmpOp::kEq, CmpOp::kNe, CmpOp::kLt,
                                  CmpOp::kLe, CmpOp::kGe, CmpOp::kGt};
  // Present, absent-in-range, below-all, above-all.
  const std::vector<std::string> probes = {"w12", "w12x", "a", "zzz", "w0",
                                           "w9"};
  const size_t cut = n / 2 + 13;
  for (const CmpOp op : ops) {
    for (const std::string& s : probes) {
      const Value v = Value::Str(s);
      ASSERT_TRUE(compress::StrSelectableOnDict(v, op));
      const std::string what =
          "op " + std::to_string(static_cast<int>(op)) + " '" + s + "'";
      auto want = algebra::ThetaSelect(plain, nullptr, v, op,
                                       parallel::ExecContext::Serial());
      ASSERT_TRUE(want.ok()) << what;
      auto got = compress::DictStrSelectRange(dict, v, op, 0, n, /*hseq=*/0);
      ASSERT_TRUE(got.ok()) << what << ": " << got.status().ToString();
      ExpectSameOids(*got, *want, what);

      auto lo = compress::DictStrSelectRange(dict, v, op, 0, cut, 0);
      auto hi = compress::DictStrSelectRange(dict, v, op, cut, n, 0);
      ASSERT_TRUE(lo.ok() && hi.ok()) << what;
      ASSERT_EQ((*lo)->Count() + (*hi)->Count(), (*want)->Count()) << what;
    }
  }
}

TEST(CompressedKernelTest, DictStrLikeBitIdenticalIncludingEmptyAndAllMatch) {
  const size_t n = 40000;
  BatPtr plain = WordsBat(n, 25, 66);
  auto dict = StrDict::Encode(plain);
  ASSERT_TRUE(dict.ok());
  const std::vector<std::string> patterns = {
      "w1%",       // prefix: one code interval
      "%",         // all-match
      "w7",        // no wildcard: equality
      "%3",        // suffix: per-word LUT
      "w_",        // underscore
      "%never%",   // empty selection
      "w%2%",      // general multi-wildcard
  };
  for (const std::string& pat : patterns) {
    const Value v = Value::Str(pat);
    ASSERT_TRUE(compress::StrSelectableOnDict(v, CmpOp::kLike)) << pat;
    auto want = algebra::ThetaSelect(plain, nullptr, v, CmpOp::kLike,
                                     parallel::ExecContext::Serial());
    ASSERT_TRUE(want.ok()) << pat;
    auto got =
        compress::DictStrSelectRange(*dict, v, CmpOp::kLike, 0, n, /*hseq=*/0);
    ASSERT_TRUE(got.ok()) << pat << ": " << got.status().ToString();
    ExpectSameOids(*got, *want, "LIKE '" + pat + "'");
  }
  // The adversarial patterns above must include both extremes.
  auto none = compress::DictStrSelectRange(*dict, Value::Str("%never%"),
                                           CmpOp::kLike, 0, n, 0);
  EXPECT_EQ((*none)->Count(), 0u);
  auto all =
      compress::DictStrSelectRange(*dict, Value::Str("%"), CmpOp::kLike, 0, n, 0);
  EXPECT_EQ((*all)->Count(), n);
}

TEST(CompressedKernelTest, StrDictSerializeRoundTrips) {
  BatPtr plain = WordsBat(12345, 40, 77);
  auto dict = StrDict::Encode(plain);
  ASSERT_TRUE(dict.ok());
  std::string image;
  dict->Serialize(&image);
  auto back = StrDict::Deserialize(image);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ASSERT_EQ(back->Count(), plain->Count());
  ASSERT_EQ(back->dsize(), dict->dsize());
  auto decoded = back->Decode();
  ASSERT_TRUE(decoded.ok());
  for (size_t i = 0; i < plain->Count(); ++i) {
    ASSERT_EQ((*decoded)->StringAt(i), plain->StringAt(i)) << i;
  }
}

// ------------------------------------------------------ engine-level ----

constexpr size_t kChunk = size_t{1} << 16;
constexpr size_t kRows = 3 * kChunk + 500;  // shared-scan eligible, ragged

/// A table whose columns hit every direct path: `id` sorted ints, `val`
/// random ints, `grp` long runs (RLE aggregate fold), `tag` a
/// low-cardinality string column (dictionary code space).
TablePtr LogsTable() {
  BatPtr id = Bat::New(PhysType::kInt32);
  BatPtr val = Bat::New(PhysType::kInt32);
  BatPtr grp = Bat::New(PhysType::kInt32);
  id->Resize(kRows);
  val->Resize(kRows);
  grp->Resize(kRows);
  int32_t* idp = id->MutableTailData<int32_t>();
  int32_t* vp = val->MutableTailData<int32_t>();
  int32_t* gp = grp->MutableTailData<int32_t>();
  BatPtr tag = Bat::NewString(nullptr);
  Rng rng(888);
  for (size_t i = 0; i < kRows; ++i) {
    idp[i] = static_cast<int32_t>(i);
    vp[i] = static_cast<int32_t>(rng.Uniform(10000));
    gp[i] = static_cast<int32_t>(i / 1000);
    tag->AppendString("w" + std::to_string((i / 500) % 40));
  }
  auto t = Table::FromColumns("logs",
                              {{"id", PhysType::kInt32},
                               {"val", PhysType::kInt32},
                               {"grp", PhysType::kInt32},
                               {"tag", PhysType::kStr}},
                              {id, val, grp, tag});
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return *t;
}

const std::vector<std::string>& StringQueries() {
  static const std::vector<std::string> queries = {
      "SELECT id FROM logs WHERE tag = 'w7'",
      "SELECT id, tag FROM logs WHERE tag LIKE 'w1%'",
      "SELECT COUNT(*), SUM(val) FROM logs WHERE tag <> 'w5'",
      "SELECT SUM(grp), MIN(grp), MAX(grp) FROM logs",
      "SELECT id FROM logs WHERE tag >= 'w35'",
      "SELECT COUNT(*) FROM logs WHERE tag < 'w1'",
      "SELECT COUNT(*) FROM logs WHERE tag LIKE '%9'",
  };
  return queries;
}

std::vector<std::string> PlainLogEncodings() {
  sql::Engine plain;
  EXPECT_TRUE(plain.catalog()->Register(LogsTable()).ok());
  std::vector<std::string> encodings;
  for (const std::string& q : StringQueries()) {
    auto r = plain.Execute(q, parallel::ExecContext::Serial());
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    auto payload = EncodeResult(*r);
    EXPECT_TRUE(payload.ok());
    encodings.push_back(*payload);
  }
  return encodings;
}

TEST(CompressedKernelTest, StringAndAggregateQueriesBitIdenticalDirect) {
  const std::vector<std::string> expected = PlainLogEncodings();

  sql::Engine engine;
  ASSERT_TRUE(engine.catalog()->Register(LogsTable()).ok());
  ASSERT_TRUE(engine.Execute("ALTER TABLE logs COMPRESS").ok());

  // The string column carries a dictionary after the policy flip.
  auto t = engine.catalog()->Get("logs");
  ASSERT_TRUE(t.ok());
  EXPECT_NE((*t)->StringDictColumn(3), nullptr);

  const auto before = compress::GetKernelStats();
  for (size_t q = 0; q < StringQueries().size(); ++q) {
    auto r = engine.Execute(StringQueries()[q], parallel::ExecContext::Serial());
    ASSERT_TRUE(r.ok()) << StringQueries()[q] << ": " << r.status().ToString();
    auto payload = EncodeResult(*r);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ(*payload, expected[q]) << StringQueries()[q];
  }
  const auto after = compress::GetKernelStats();
  // The workload stays in code space: dictionary string selects and the
  // RLE aggregate folds both route direct.
  EXPECT_GT(after.selects_direct, before.selects_direct);
  EXPECT_GT(after.aggrs_direct, before.aggrs_direct);
}

TEST(CompressedKernelTest, StringQueriesSharedScansBitIdenticalAcrossPools) {
  const std::vector<std::string> expected = PlainLogEncodings();

  for (int threads : {1, 2, 4, 8}) {
    sql::Engine engine;
    ASSERT_TRUE(engine.catalog()->Register(LogsTable()).ok());
    ASSERT_TRUE(engine.Execute("ALTER TABLE logs COMPRESS").ok());

    scan::SharedScanConfig config;
    config.chunk_rows = kChunk;
    config.chunk_bytes = 0;
    config.min_share_rows = kChunk;
    scan::SharedScanScheduler sched(config);
    engine.AttachSharedScans(&sched);
    parallel::TaskPool pool(threads);
    parallel::ExecContext ctx(&pool);

    std::vector<std::thread> sessions;
    for (int s = 0; s < 6; ++s) {
      sessions.emplace_back([&, s] {
        for (int round = 0; round < 3; ++round) {
          const size_t q = (s + round) % StringQueries().size();
          auto r = engine.Execute(StringQueries()[q], ctx);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          auto payload = EncodeResult(*r);
          ASSERT_TRUE(payload.ok());
          EXPECT_EQ(*payload, expected[q]) << StringQueries()[q];
        }
      });
    }
    for (auto& s : sessions) s.join();

    const auto stats = sched.stats();
    EXPECT_GT(stats.scans_attached + stats.scans_direct, 0u) << threads;
    EXPECT_GT(stats.bytes_loaded, 0u) << threads;
  }
}

std::map<std::string, int64_t> StatusCounters(Client* client) {
  auto r = client->Query("SERVER STATUS");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::map<std::string, int64_t> counters;
  for (size_t i = 0; i < r->RowCount(); ++i) {
    counters[std::string(r->columns[0]->StringAt(i))] =
        r->columns[1]->ValueAt<int64_t>(i);
  }
  return counters;
}

TEST(CompressedKernelTest, WireStringResultsBitIdenticalWithKernelCounters) {
  const std::vector<std::string> expected = PlainLogEncodings();

  ServerConfig config;
  config.port = 0;
  auto server = std::make_unique<Server>(config);
  ASSERT_TRUE(server->engine()->catalog()->Register(LogsTable()).ok());
  ASSERT_TRUE(server->engine()->Execute("ALTER TABLE logs COMPRESS").ok());
  ASSERT_TRUE(server->Start().ok());

  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  for (size_t q = 0; q < StringQueries().size(); ++q) {
    auto remote = client->Query(StringQueries()[q]);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    auto encoded = EncodeResult(*remote);
    ASSERT_TRUE(encoded.ok());
    EXPECT_EQ(*encoded, expected[q]) << StringQueries()[q];
  }

  auto counters = StatusCounters(&*client);
  // The compressed-execution rows joined the frozen status contract.
  for (const char* key :
       {"recycler_compressed_bytes", "compressed_kernel_selects",
        "compressed_kernel_select_fallbacks", "compressed_kernel_aggrs",
        "compressed_kernel_aggr_fallbacks", "compressed_project_bounded",
        "compressed_project_full", "compressed_cache_bytes"}) {
    EXPECT_EQ(counters.count(key), 1u) << key;
  }
  EXPECT_GT(counters["compressed_kernel_selects"], 0);
  EXPECT_GT(counters["compressed_kernel_aggrs"], 0);

  client->Close();
  server->Stop();
}

// ----------------------------------------------------- bounded project --

TEST(CompressedKernelTest, ProjectDecodesOnlyTheTouchedRangeWhenDense) {
  BatPtr col = LowCardI32(200000);
  auto comp_r = CompressedBat::Compress(col, Codec::kPfor);
  ASSERT_TRUE(comp_r.ok());
  auto comp = std::make_shared<const CompressedBat>(*std::move(comp_r));

  const auto before = compress::GetKernelStats();
  BatPtr dense = Bat::NewDense(/*tseqbase=*/70000, /*count=*/600);
  auto got = compress::CompressedProject(dense, comp,
                                         parallel::ExecContext::Serial());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto want = algebra::Project(dense, col, parallel::ExecContext::Serial());
  ASSERT_TRUE(want.ok());
  ASSERT_EQ((*got)->Count(), (*want)->Count());
  for (size_t i = 0; i < (*want)->Count(); ++i) {
    ASSERT_EQ((*got)->ValueAt<int32_t>(i), (*want)->ValueAt<int32_t>(i)) << i;
  }
  const auto mid = compress::GetKernelStats();
  EXPECT_GT(mid.project_bounded, before.project_bounded);
  EXPECT_GT(mid.project_bounded_bytes, before.project_bounded_bytes);
  // A narrow dense projection must not have pinned the whole-column cache.
  EXPECT_EQ(comp->DecodedCacheBytes(), 0u);

  // An arbitrary (non-dense) OID list falls back to the cached full decode.
  BatPtr scattered = Bat::New(PhysType::kOid);
  for (Oid o : {Oid{3}, Oid{100000}, Oid{199999}, Oid{7}}) {
    scattered->Append<Oid>(o);
  }
  auto got2 = compress::CompressedProject(scattered, comp,
                                          parallel::ExecContext::Serial());
  ASSERT_TRUE(got2.ok());
  auto want2 = algebra::Project(scattered, col, parallel::ExecContext::Serial());
  ASSERT_TRUE(want2.ok());
  for (size_t i = 0; i < (*want2)->Count(); ++i) {
    ASSERT_EQ((*got2)->ValueAt<int32_t>(i), (*want2)->ValueAt<int32_t>(i));
  }
  const auto after = compress::GetKernelStats();
  EXPECT_GT(after.project_full, mid.project_full);
  EXPECT_GT(comp->DecodedCacheBytes(), 0u);
}

// -------------------------------------------------- recycler economics --

TEST(CompressedKernelTest, RecyclerChargesCompressedFootprint) {
  BatPtr col = RunHeavyI32(100000);
  auto comp_r = CompressedBat::Compress(col, Codec::kRle);
  ASSERT_TRUE(comp_r.ok());
  auto comp = std::make_shared<const CompressedBat>(*std::move(comp_r));
  ASSERT_LT(comp->CompressedBytes(), comp->LogicalBytes());

  recycle::Recycler rec(size_t{1} << 20);
  std::vector<recycle::CachedVal> outs;
  outs.push_back({nullptr, comp, Value()});
  rec.Insert(42, std::move(outs), 0.01);

  auto st = rec.stats();
  EXPECT_EQ(st.entries, 1u);
  EXPECT_EQ(st.compressed_bytes, comp->CompressedBytes());
  // Admission charged the compressed footprint (plus the fixed per-entry
  // bookkeeping overhead), not the decoded bytes.
  EXPECT_EQ(st.bytes, st.compressed_bytes + 64);
  EXPECT_LT(st.bytes, comp->LogicalBytes());

  std::vector<recycle::CachedVal> got;
  ASSERT_TRUE(rec.Lookup(42, &got));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].cbat.get(), comp.get());
  EXPECT_EQ(got[0].bat, nullptr);

  rec.Clear();
  EXPECT_EQ(rec.stats().compressed_bytes, 0u);
  EXPECT_EQ(rec.stats().bytes, 0u);
}

TEST(CompressedKernelTest, RecycledCompressedResultsServeRepeatedQueries) {
  sql::Engine engine;
  ASSERT_TRUE(engine.catalog()->Register(LogsTable()).ok());
  ASSERT_TRUE(engine.Execute("ALTER TABLE logs COMPRESS").ok());
  recycle::Recycler rec(size_t{64} << 20);
  engine.AttachRecycler(&rec);

  const std::string q = "SELECT SUM(grp), MIN(grp) FROM logs";
  auto first = engine.Execute(q, parallel::ExecContext::Serial());
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = engine.Execute(q, parallel::ExecContext::Serial());
  ASSERT_TRUE(second.ok());
  auto e1 = EncodeResult(*first);
  auto e2 = EncodeResult(*second);
  ASSERT_TRUE(e1.ok() && e2.ok());
  EXPECT_EQ(*e1, *e2);

  const auto st = rec.stats();
  EXPECT_GT(st.hits, 0u);
  // The cached pass-through of the compressed column was admitted at its
  // compressed footprint.
  EXPECT_GT(st.compressed_bytes, 0u);
  EXPECT_LE(st.compressed_bytes, st.bytes);
}

// --------------------------------------------- persistence + recovery --

class CompressedPersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/mammoth_ckpt_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  std::string dir_;
};

TEST_F(CompressedPersistTest, StringDictSurvivesSaveLoadRoundTrip) {
  sql::Engine engine;
  ASSERT_TRUE(engine.catalog()->Register(LogsTable()).ok());
  ASSERT_TRUE(engine.Execute("ALTER TABLE logs COMPRESS").ok());
  auto t = engine.catalog()->Get("logs");
  ASSERT_TRUE(t.ok());
  ASSERT_NE((*t)->StringDictColumn(3), nullptr);

  ASSERT_TRUE(SaveCatalog(*engine.catalog(), dir_).ok());
  // The manifest persists the dictionary image, not a plain string BAT.
  EXPECT_TRUE(fs::exists(dir_ + "/logs/col_3.sdict"));
  EXPECT_FALSE(fs::exists(dir_ + "/logs/col_3.mbat"));

  auto loaded = LoadCatalog(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_TRUE(wal::CompareCatalogs(*engine.catalog(), **loaded).ok());
  auto lt = (*loaded)->Get("logs");
  ASSERT_TRUE(lt.ok());
  EXPECT_NE((*lt)->StringDictColumn(3), nullptr);

  // Queries over the reloaded catalog stay bit-identical.
  sql::Engine reloaded;
  for (const auto& name : (*loaded)->TableNames()) {
    auto lt2 = (*loaded)->Get(name);
    ASSERT_TRUE(lt2.ok());
    ASSERT_TRUE(reloaded.catalog()->Register(*lt2).ok());
  }
  for (const std::string& q : StringQueries()) {
    auto a = engine.Execute(q, parallel::ExecContext::Serial());
    auto b = reloaded.Execute(q, parallel::ExecContext::Serial());
    ASSERT_TRUE(a.ok() && b.ok()) << q;
    auto ea = EncodeResult(*a);
    auto eb = EncodeResult(*b);
    ASSERT_TRUE(ea.ok() && eb.ok());
    EXPECT_EQ(*ea, *eb) << q;
  }
}

TEST_F(CompressedPersistTest, StringDictSurvivesCheckpointKillRecover) {
  std::string expect_q3;
  const std::string probe = "SELECT id FROM logs WHERE tag = 'w3'";
  {
    sql::Engine engine;
    auto db = wal::OpenDatabase(dir_, &engine);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE(
        engine.Execute("CREATE TABLE logs (id INT, tag TEXT) COMPRESSED")
            .ok());
    int id = 0;
    for (int stmt = 0; stmt < 12; ++stmt) {
      std::string ins = "INSERT INTO logs VALUES ";
      for (int r = 0; r < 50; ++r, ++id) {
        if (r > 0) ins += ", ";
        ins += "(" + std::to_string(id) + ", 'w" + std::to_string(id % 10) +
               "')";
      }
      ASSERT_TRUE(engine.Execute(ins).ok());
    }
    ASSERT_TRUE(engine.Execute("CHECKPOINT").ok());

    // The checkpoint merged deltas and encoded the dictionary.
    auto t = engine.catalog()->Get("logs");
    ASSERT_TRUE(t.ok());
    EXPECT_NE((*t)->StringDictColumn(1), nullptr);

    // Post-checkpoint tail, replayed from the log on recovery.
    ASSERT_TRUE(
        engine.Execute("INSERT INTO logs VALUES (600, 'w3'), (601, 'w4')")
            .ok());
    auto r = engine.Execute(probe, parallel::ExecContext::Serial());
    ASSERT_TRUE(r.ok());
    auto enc = EncodeResult(*r);
    ASSERT_TRUE(enc.ok());
    expect_q3 = *enc;
    db->wal.reset();  // "kill": drop the log handle, keep the files
  }

  sql::Engine recovered;
  auto db2 = wal::OpenDatabase(dir_, &recovered);
  ASSERT_TRUE(db2.ok()) << db2.status().ToString();
  EXPECT_FALSE(db2->info.snapshot_dir.empty());

  auto t = recovered.catalog()->Get("logs");
  ASSERT_TRUE(t.ok());
  // The dictionary came back from the snapshot's .sdict image.
  EXPECT_NE((*t)->StringDictColumn(1), nullptr);

  auto r = recovered.Execute(probe, parallel::ExecContext::Serial());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto enc = EncodeResult(*r);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(*enc, expect_q3);

  // The recovered table still accepts DML and re-encodes at checkpoint.
  ASSERT_TRUE(
      recovered.Execute("INSERT INTO logs VALUES (700, 'w7')").ok());
  ASSERT_TRUE(recovered.Execute("CHECKPOINT").ok());
  auto count =
      recovered.Execute("SELECT COUNT(*) FROM logs WHERE tag = 'w7'");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->columns[0]->ValueAt<int64_t>(0), 61);
}

}  // namespace
}  // namespace mammoth
