#include "volcano/operators.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/table.h"

namespace mammoth::volcano {
namespace {

using algebra::ArithOp;

BatPtr IntBat(std::initializer_list<int32_t> v) { return MakeBat<int32_t>(v); }

TEST(VolcanoScanTest, ProducesOneTuplePerRow) {
  auto it = MakeScan({IntBat({1, 2, 3}), MakeStringBat({"a", "b", "c"})});
  auto rows = Collect(it.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[1][0].i, 2);
  EXPECT_EQ(rows[1][1].s, "b");
}

TEST(VolcanoFilterTest, PredicateInterpretation) {
  auto it = MakeFilter(MakeScan({IntBat({5, 10, 15, 20})}),
                       Cmp(CmpOp::kGt, ColumnRef(0), Const(Value::Int(10))));
  auto rows = Collect(it.get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].i, 15);
  EXPECT_EQ(rows[1][0].i, 20);
}

TEST(VolcanoFilterTest, ConjunctionShortCircuits) {
  auto pred = And(Cmp(CmpOp::kGe, ColumnRef(0), Const(Value::Int(10))),
                  Cmp(CmpOp::kLt, ColumnRef(0), Const(Value::Int(20))));
  auto it = MakeFilter(MakeScan({IntBat({5, 10, 15, 20, 25})}), pred);
  auto rows = Collect(it.get());
  ASSERT_EQ(rows.size(), 2u);
}

TEST(VolcanoMapTest, ArithmeticExpressions) {
  auto it = MakeMap(
      MakeScan({IntBat({1, 2}), IntBat({10, 20})}),
      {Arith(ArithOp::kAdd, ColumnRef(0), ColumnRef(1)),
       Arith(ArithOp::kMul, ColumnRef(1), Const(Value::Real(0.5)))});
  auto rows = Collect(it.get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].i, 11);
  EXPECT_DOUBLE_EQ(rows[0][1].d, 5.0);
  EXPECT_EQ(rows[1][0].i, 22);
}

TEST(VolcanoJoinTest, MatchesExpectedPairs) {
  auto l = MakeScan({IntBat({1, 2, 3}), IntBat({100, 200, 300})});
  auto r = MakeScan({IntBat({2, 3, 2})});
  auto it = MakeHashJoin(std::move(l), std::move(r), 0, 0);
  auto rows = Collect(it.get());
  ASSERT_EQ(rows.size(), 3u);  // 2 matches twice, 3 once
  for (const Tuple& t : rows) {
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t[0].i, t[2].i);  // join keys equal
  }
}

TEST(VolcanoJoinTest, StringKeys) {
  auto l = MakeScan({MakeStringBat({"ape", "bee"})});
  auto r = MakeScan({MakeStringBat({"bee", "cow", "bee"})});
  auto it = MakeHashJoin(std::move(l), std::move(r), 0, 0);
  auto rows = Collect(it.get());
  ASSERT_EQ(rows.size(), 2u);
}

TEST(VolcanoAggregateTest, GroupedSumCountMinMaxAvg) {
  // key: 1,2,1,2,1  val: 10,20,30,40,50
  auto it = MakeAggregate(
      MakeScan({IntBat({1, 2, 1, 2, 1}), IntBat({10, 20, 30, 40, 50})}), {0},
      {{AggSpec::Fn::kSum, 1},
       {AggSpec::Fn::kCount, 0},
       {AggSpec::Fn::kMin, 1},
       {AggSpec::Fn::kMax, 1},
       {AggSpec::Fn::kAvg, 1}});
  auto rows = Collect(it.get());
  ASSERT_EQ(rows.size(), 2u);
  std::sort(rows.begin(), rows.end(),
            [](const Tuple& a, const Tuple& b) { return a[0].i < b[0].i; });
  EXPECT_EQ(rows[0][0].i, 1);
  EXPECT_EQ(rows[0][1].i, 90);
  EXPECT_EQ(rows[0][2].i, 3);
  EXPECT_EQ(rows[0][3].i, 10);
  EXPECT_EQ(rows[0][4].i, 50);
  EXPECT_DOUBLE_EQ(rows[0][5].d, 30.0);
  EXPECT_EQ(rows[1][1].i, 60);
}

TEST(VolcanoAggregateTest, GlobalAggregate) {
  auto it = MakeAggregate(MakeScan({IntBat({1, 2, 3})}), {},
                          {{AggSpec::Fn::kSum, 0}});
  auto rows = Collect(it.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].i, 6);
}

TEST(VolcanoLimitTest, StopsEarly) {
  auto it = MakeLimit(MakeScan({IntBat({1, 2, 3, 4, 5})}), 2);
  auto rows = Collect(it.get());
  ASSERT_EQ(rows.size(), 2u);
}

TEST(VolcanoTableScanTest, SkipsDeletedSeesInserts) {
  auto t = Table::Create("t", {{"x", PhysType::kInt32}});
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*t)->Insert({Value::Int(i)}).ok());
  }
  ASSERT_TRUE((*t)->Delete(MakeBat<Oid>({Oid{1}, Oid{3}})).ok());
  auto it = MakeTableScan(*t);
  auto rows = Collect(it.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0][0].i, 0);
  EXPECT_EQ(rows[1][0].i, 2);
  EXPECT_EQ(rows[2][0].i, 4);
}

TEST(VolcanoPipelineTest, SelectProjectAggregateEndToEnd) {
  // SELECT sum(b*2) FROM t WHERE a >= 2 AND a <= 4  over a=1..5, b=10x.
  auto scan = MakeScan({IntBat({1, 2, 3, 4, 5}),
                        IntBat({10, 20, 30, 40, 50})});
  auto filt = MakeFilter(
      std::move(scan),
      And(Cmp(CmpOp::kGe, ColumnRef(0), Const(Value::Int(2))),
          Cmp(CmpOp::kLe, ColumnRef(0), Const(Value::Int(4)))));
  auto map = MakeMap(std::move(filt),
                     {Arith(ArithOp::kMul, ColumnRef(1),
                            Const(Value::Int(2)))});
  auto agg = MakeAggregate(std::move(map), {}, {{AggSpec::Fn::kSum, 0}});
  auto rows = Collect(agg.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].i, (20 + 30 + 40) * 2);
}

}  // namespace
}  // namespace mammoth::volcano
