#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/bat.h"
#include "core/sort.h"
#include "parallel/exec_context.h"
#include "parallel/task_pool.h"

namespace mammoth {
namespace {

using algebra::RefineSort;
using algebra::Sort;
using algebra::TopN;
using parallel::ExecContext;
using parallel::TaskPool;

// Acceptance bar for the parallel ordering layer: Sort (radix and merge
// paths), TopN and RefineSort must be *byte-identical* — values, hseqbase,
// density, properties — to the serial schedule for thread counts 1, 2, 4
// and 8. Inputs are sized past the 2*64K parallel threshold so the pool
// path actually runs, plus one sub-threshold size for the inline fallback.

void ExpectBatsIdentical(const BatPtr& serial, const BatPtr& par) {
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(par, nullptr);
  ASSERT_EQ(serial->type(), par->type());
  ASSERT_EQ(serial->Count(), par->Count());
  EXPECT_EQ(serial->hseqbase(), par->hseqbase());
  ASSERT_EQ(serial->IsDenseTail(), par->IsDenseTail());
  EXPECT_EQ(serial->props().sorted, par->props().sorted);
  EXPECT_EQ(serial->props().revsorted, par->props().revsorted);
  EXPECT_EQ(serial->props().key, par->props().key);
  if (serial->IsDenseTail()) {
    EXPECT_EQ(serial->tseqbase(), par->tseqbase());
    return;
  }
  if (serial->Count() == 0) return;
  EXPECT_EQ(std::memcmp(serial->tail().raw_data(), par->tail().raw_data(),
                        serial->Count() * serial->tail().width()),
            0);
}

constexpr size_t kRows = 300000;  // past the 2*64K parallel threshold
constexpr int kThreadCounts[] = {1, 2, 4, 8};

template <typename T>
BatPtr RandomNumeric(size_t n, uint64_t seed, uint64_t bound = 0) {
  Rng rng(seed);
  BatPtr b = Bat::New(TypeTraits<T>::kType);
  b->Resize(n);
  T* v = b->MutableTailData<T>();
  for (size_t i = 0; i < n; ++i) {
    if constexpr (std::is_floating_point_v<T>) {
      v[i] = static_cast<T>(rng.NextDouble() - 0.5);
    } else if (bound != 0) {
      v[i] = static_cast<T>(rng.Uniform(bound));
    } else {
      v[i] = static_cast<T>(rng.Next());  // full width, incl. negatives
    }
  }
  return b;
}

BatPtr RandomStrings(size_t n, uint64_t seed, size_t vocab) {
  Rng rng(seed);
  BatPtr b = Bat::NewString(nullptr);
  for (size_t i = 0; i < n; ++i) {
    b->AppendString("w" + std::to_string(rng.Uniform(vocab)));
  }
  return b;
}

/// Runs `fn(ctx)` serially and under pools of 1/2/4/8 threads and checks
/// every parallel schedule reproduces the serial result byte for byte.
template <typename Fn>
void CrossCheck(Fn fn) {
  auto serial = fn(ExecContext::Serial());
  for (int t : kThreadCounts) {
    TaskPool pool(t);
    ExecContext par(&pool);
    auto with_pool = fn(par);
    ASSERT_EQ(serial.size(), with_pool.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(t) + " bat#" +
                   std::to_string(i));
      ExpectBatsIdentical(serial[i], with_pool[i]);
    }
  }
}

// ------------------------------------------------------------------ Sort --

TEST(ParallelSortTest, Int32RadixMatchesSerial) {
  for (uint64_t seed : {1u, 2u}) {
    BatPtr b = RandomNumeric<int32_t>(kRows, seed);
    for (bool desc : {false, true}) {
      CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
        auto s = Sort(b, desc, ctx);
        MAMMOTH_CHECK(s.ok(), "sort failed");
        return {s->sorted, s->order};
      });
    }
  }
}

TEST(ParallelSortTest, Int32HeavyDuplicatesMatchesSerial) {
  // Bound 100: each radix bucket and merge run is packed with ties, so any
  // stability slip between schedules would surface in the order BAT.
  BatPtr b = RandomNumeric<int32_t>(kRows, 3, /*bound=*/100);
  for (bool desc : {false, true}) {
    CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
      auto s = Sort(b, desc, ctx);
      MAMMOTH_CHECK(s.ok(), "sort failed");
      return {s->sorted, s->order};
    });
  }
}

TEST(ParallelSortTest, AllEqualKeysMatchesSerial) {
  BatPtr b = RandomNumeric<int32_t>(kRows, 4, /*bound=*/1);
  CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
    auto s = Sort(b, false, ctx);
    MAMMOTH_CHECK(s.ok(), "sort failed");
    // All-equal stable sort is the identity permutation.
    for (size_t i = 0; i < kRows; ++i) {
      MAMMOTH_CHECK(s->order->OidAt(i) == i, "stability violated");
    }
    return {s->sorted, s->order};
  });
}

TEST(ParallelSortTest, Int64RadixMatchesSerial) {
  BatPtr b = RandomNumeric<int64_t>(kRows, 5);
  for (bool desc : {false, true}) {
    CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
      auto s = Sort(b, desc, ctx);
      MAMMOTH_CHECK(s.ok(), "sort failed");
      return {s->sorted, s->order};
    });
  }
}

TEST(ParallelSortTest, DoubleMergePathMatchesSerial) {
  BatPtr b = RandomNumeric<double>(kRows, 6);
  for (bool desc : {false, true}) {
    CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
      auto s = Sort(b, desc, ctx);
      MAMMOTH_CHECK(s.ok(), "sort failed");
      return {s->sorted, s->order};
    });
  }
}

TEST(ParallelSortTest, StringMergePathMatchesSerial) {
  BatPtr b = RandomStrings(kRows, 7, /*vocab=*/1000);
  for (bool desc : {false, true}) {
    CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
      auto s = Sort(b, desc, ctx);
      MAMMOTH_CHECK(s.ok(), "sort failed");
      return {s->sorted, s->order};
    });
  }
}

TEST(ParallelSortTest, SubThresholdInputMatchesSerial) {
  BatPtr b = RandomNumeric<int32_t>(1000, 8, /*bound=*/50);
  CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
    auto s = Sort(b, false, ctx);
    MAMMOTH_CHECK(s.ok(), "sort failed");
    return {s->sorted, s->order};
  });
}

TEST(ParallelSortTest, NonZeroHseqbaseMatchesSerial) {
  BatPtr b = RandomNumeric<int32_t>(kRows, 9, /*bound=*/5000);
  b->set_hseqbase(1 << 20);
  CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
    auto s = Sort(b, false, ctx);
    MAMMOTH_CHECK(s.ok(), "sort failed");
    return {s->sorted, s->order};
  });
}

// ------------------------------------------------------------------ TopN --

TEST(ParallelTopNTest, MatchesSerialAcrossKSweep) {
  BatPtr b = RandomNumeric<int32_t>(kRows, 10, /*bound=*/10000);
  for (size_t k : {size_t{0}, size_t{1}, size_t{100}, size_t{4096},
                   kRows, kRows + 7}) {
    for (bool desc : {false, true}) {
      CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
        auto top = TopN(b, k, desc, ctx);
        MAMMOTH_CHECK(top.ok(), "topn failed");
        return {*top};
      });
    }
  }
}

TEST(ParallelTopNTest, EqualsSortPrefix) {
  BatPtr b = RandomNumeric<int32_t>(kRows, 11, /*bound=*/300);  // heavy ties
  TaskPool pool(4);
  ExecContext par(&pool);
  for (bool desc : {false, true}) {
    auto s = Sort(b, desc, ExecContext::Serial());
    auto top = TopN(b, 257, desc, par);
    ASSERT_TRUE(s.ok() && top.ok());
    ASSERT_EQ((*top)->Count(), 257u);
    for (size_t i = 0; i < 257; ++i) {
      ASSERT_EQ((*top)->OidAt(i), s->order->OidAt(i)) << "desc=" << desc;
    }
  }
}

TEST(ParallelTopNTest, StringsMatchSerial) {
  BatPtr b = RandomStrings(kRows, 12, /*vocab=*/500);
  CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
    auto top = TopN(b, 100, false, ctx);
    MAMMOTH_CHECK(top.ok(), "topn failed");
    return {*top};
  });
}

// ------------------------------------------------------------ RefineSort --

TEST(ParallelRefineSortTest, ChainMatchesSerialAndOracle) {
  const size_t n = kRows;
  BatPtr major = RandomNumeric<int32_t>(n, 13, /*bound=*/100);
  BatPtr minor = RandomNumeric<int32_t>(n, 14, /*bound=*/50);
  const int32_t* a = major->TailData<int32_t>();
  const int32_t* c = minor->TailData<int32_t>();

  std::vector<uint32_t> oracle(n);
  std::iota(oracle.begin(), oracle.end(), 0u);
  std::stable_sort(oracle.begin(), oracle.end(), [&](uint32_t x, uint32_t y) {
    if (a[x] != a[y]) return a[x] < a[y];
    if (c[x] != c[y]) return c[y] < c[x];  // minor key descending
    return false;
  });

  CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
    auto r1 = RefineSort(major, nullptr, nullptr, false, ctx);
    MAMMOTH_CHECK(r1.ok(), "refine #1 failed");
    auto r2 = RefineSort(minor, r1->order, r1->tie_groups, true, ctx);
    MAMMOTH_CHECK(r2.ok(), "refine #2 failed");
    for (size_t i = 0; i < n; ++i) {
      MAMMOTH_CHECK(r2->order->OidAt(i) == oracle[i], "oracle mismatch");
    }
    return {r1->order, r1->tie_groups, r2->order, r2->tie_groups};
  });
}

TEST(ParallelRefineSortTest, StringMinorKeyMatchesSerial) {
  BatPtr major = RandomNumeric<int32_t>(kRows, 15, /*bound=*/64);
  BatPtr minor = RandomStrings(kRows, 16, /*vocab=*/200);
  CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
    auto r1 = RefineSort(major, nullptr, nullptr, false, ctx);
    MAMMOTH_CHECK(r1.ok(), "refine #1 failed");
    auto r2 = RefineSort(minor, r1->order, r1->tie_groups, false, ctx);
    MAMMOTH_CHECK(r2.ok(), "refine #2 failed");
    return {r2->order, r2->tie_groups};
  });
}

TEST(ParallelRefineSortTest, HighCardinalityFirstKeyMatchesSerial) {
  // Nearly every row its own tie group after key #1: stresses the
  // per-group fan-out with tiny groups.
  BatPtr major = RandomNumeric<int32_t>(kRows, 17);
  BatPtr minor = RandomNumeric<int32_t>(kRows, 18, /*bound=*/10);
  CrossCheck([&](const ExecContext& ctx) -> std::vector<BatPtr> {
    auto r1 = RefineSort(major, nullptr, nullptr, false, ctx);
    MAMMOTH_CHECK(r1.ok(), "refine #1 failed");
    auto r2 = RefineSort(minor, r1->order, r1->tie_groups, false, ctx);
    MAMMOTH_CHECK(r2.ok(), "refine #2 failed");
    return {r2->order, r2->tie_groups};
  });
}

}  // namespace
}  // namespace mammoth
