#include "compress/compressed_bat.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mammoth::compress {
namespace {

BatPtr SmallRangeColumn(size_t n, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kInt32);
  for (size_t i = 0; i < n; ++i) {
    b->Append<int32_t>(static_cast<int32_t>(rng.Uniform(500)));
  }
  return b;
}

BatPtr SortedColumn(size_t n, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kInt32);
  int32_t cur = 0;
  for (size_t i = 0; i < n; ++i) {
    cur += static_cast<int32_t>(rng.Uniform(4));
    b->Append<int32_t>(cur);
  }
  return b;
}

class CompressedBatCodecTest : public ::testing::TestWithParam<Codec> {};

TEST_P(CompressedBatCodecTest, FullRoundTrip) {
  const Codec codec = GetParam();
  BatPtr b = codec == Codec::kPdict ? SmallRangeColumn(5000, 1)
                                    : SortedColumn(5000, 1);
  auto cb = CompressedBat::Compress(b, codec);
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  EXPECT_EQ(cb->Count(), 5000u);
  auto back = cb->Decode();
  ASSERT_TRUE(back.ok());
  ASSERT_EQ((*back)->Count(), b->Count());
  for (size_t i = 0; i < b->Count(); ++i) {
    ASSERT_EQ((*back)->ValueAt<int32_t>(i), b->ValueAt<int32_t>(i)) << i;
  }
}

TEST_P(CompressedBatCodecTest, RangeDecodeMatchesFull) {
  const Codec codec = GetParam();
  BatPtr b = codec == Codec::kPdict ? SmallRangeColumn(5000, 2)
                                    : SortedColumn(5000, 2);
  auto cb = CompressedBat::Compress(b, codec);
  ASSERT_TRUE(cb.ok());
  Rng rng(3);
  std::vector<int32_t> out(1024);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + rng.Uniform(1024);
    const size_t start = rng.Uniform(5000 - n);
    ASSERT_TRUE(cb->DecodeRange(start, n, out.data()).ok());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], b->ValueAt<int32_t>(start + i))
          << CodecName(codec) << " start=" << start << " i=" << i;
    }
  }
  // Edges.
  ASSERT_TRUE(cb->DecodeRange(0, 1, out.data()).ok());
  EXPECT_EQ(out[0], b->ValueAt<int32_t>(0));
  ASSERT_TRUE(cb->DecodeRange(4999, 1, out.data()).ok());
  EXPECT_EQ(out[0], b->ValueAt<int32_t>(4999));
  EXPECT_FALSE(cb->DecodeRange(4999, 2, out.data()).ok());
}

INSTANTIATE_TEST_SUITE_P(Codecs, CompressedBatCodecTest,
                         ::testing::Values(Codec::kPfor, Codec::kPforDelta,
                                           Codec::kPdict, Codec::kRle));

TEST(CompressedBatTest, CompressBestPicksSmallest) {
  BatPtr sorted = SortedColumn(10000, 5);
  auto best = CompressedBat::CompressBest(sorted);
  ASSERT_TRUE(best.ok());
  // Sorted data: delta coding should win (or at least match).
  auto pfor = CompressedBat::Compress(sorted, Codec::kPfor);
  ASSERT_TRUE(pfor.ok());
  EXPECT_LE(best->CompressedBytes(), pfor->CompressedBytes());
  EXPECT_GT(best->Ratio(), 1.0);
}

TEST(CompressedBatTest, RejectsNonIntColumns) {
  BatPtr d = MakeBat<double>({1.0});
  EXPECT_FALSE(CompressedBat::Compress(d, Codec::kPfor).ok());
}

}  // namespace
}  // namespace mammoth::compress
