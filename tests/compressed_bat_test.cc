#include "compress/compressed_bat.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/rng.h"

namespace mammoth::compress {
namespace {

BatPtr SmallRangeColumn(size_t n, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kInt32);
  for (size_t i = 0; i < n; ++i) {
    b->Append<int32_t>(static_cast<int32_t>(rng.Uniform(500)));
  }
  return b;
}

BatPtr SortedColumn(size_t n, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kInt32);
  int32_t cur = 0;
  for (size_t i = 0; i < n; ++i) {
    cur += static_cast<int32_t>(rng.Uniform(4));
    b->Append<int32_t>(cur);
  }
  return b;
}

class CompressedBatCodecTest : public ::testing::TestWithParam<Codec> {};

TEST_P(CompressedBatCodecTest, FullRoundTrip) {
  const Codec codec = GetParam();
  BatPtr b = codec == Codec::kPdict ? SmallRangeColumn(5000, 1)
                                    : SortedColumn(5000, 1);
  auto cb = CompressedBat::Compress(b, codec);
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  EXPECT_EQ(cb->Count(), 5000u);
  auto back = cb->Decode();
  ASSERT_TRUE(back.ok());
  ASSERT_EQ((*back)->Count(), b->Count());
  for (size_t i = 0; i < b->Count(); ++i) {
    ASSERT_EQ((*back)->ValueAt<int32_t>(i), b->ValueAt<int32_t>(i)) << i;
  }
}

TEST_P(CompressedBatCodecTest, RangeDecodeMatchesFull) {
  const Codec codec = GetParam();
  BatPtr b = codec == Codec::kPdict ? SmallRangeColumn(5000, 2)
                                    : SortedColumn(5000, 2);
  auto cb = CompressedBat::Compress(b, codec);
  ASSERT_TRUE(cb.ok());
  Rng rng(3);
  std::vector<int32_t> out(1024);
  for (int round = 0; round < 50; ++round) {
    const size_t n = 1 + rng.Uniform(1024);
    const size_t start = rng.Uniform(5000 - n);
    ASSERT_TRUE(cb->DecodeRange(start, n, out.data()).ok());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], b->ValueAt<int32_t>(start + i))
          << CodecName(codec) << " start=" << start << " i=" << i;
    }
  }
  // Edges.
  ASSERT_TRUE(cb->DecodeRange(0, 1, out.data()).ok());
  EXPECT_EQ(out[0], b->ValueAt<int32_t>(0));
  ASSERT_TRUE(cb->DecodeRange(4999, 1, out.data()).ok());
  EXPECT_EQ(out[0], b->ValueAt<int32_t>(4999));
  EXPECT_FALSE(cb->DecodeRange(4999, 2, out.data()).ok());
}

INSTANTIATE_TEST_SUITE_P(Codecs, CompressedBatCodecTest,
                         ::testing::Values(Codec::kPfor, Codec::kPforDelta,
                                           Codec::kPdict, Codec::kRle));

TEST(CompressedBatTest, CompressBestPicksSmallest) {
  BatPtr sorted = SortedColumn(10000, 5);
  auto best = CompressedBat::CompressBest(sorted);
  ASSERT_TRUE(best.ok());
  // Sorted data: delta coding should win (or at least match).
  auto pfor = CompressedBat::Compress(sorted, Codec::kPfor);
  ASSERT_TRUE(pfor.ok());
  EXPECT_LE(best->CompressedBytes(), pfor->CompressedBytes());
  EXPECT_GT(best->Ratio(), 1.0);
}

TEST(CompressedBatTest, RejectsNonIntColumns) {
  BatPtr d = MakeBat<double>({1.0});
  EXPECT_FALSE(CompressedBat::Compress(d, Codec::kPfor).ok());
}

/// Unsupported tail types fail with the typed code, not a crash, on every
/// entry point (satellite b).
TEST(CompressedBatTest, UnsupportedTypeIsTypedError) {
  BatPtr d = MakeBat<double>({1.0, 2.0, 3.0});
  for (Codec c : {Codec::kPfor, Codec::kPforDelta, Codec::kPdict,
                  Codec::kRle}) {
    auto r = CompressedBat::Compress(d, c);
    ASSERT_FALSE(r.ok()) << CodecName(c);
    EXPECT_EQ(r.status().code(), StatusCode::kUnsupported) << CodecName(c);
  }
  auto best = CompressedBat::CompressBest(d);
  ASSERT_FALSE(best.ok());
  EXPECT_EQ(best.status().code(), StatusCode::kUnsupported);
}

// ------------------------------------------------------- int64 codecs --

BatPtr SortedColumn64(size_t n, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kInt64);
  int64_t cur = int64_t{1} << 33;  // values beyond int32 range
  for (size_t i = 0; i < n; ++i) {
    cur += static_cast<int64_t>(rng.Uniform(16));
    b->Append<int64_t>(cur);
  }
  return b;
}

class CompressedBat64Test : public ::testing::TestWithParam<Codec> {};

TEST_P(CompressedBat64Test, FullRoundTrip64) {
  const Codec codec = GetParam();
  BatPtr b = SortedColumn64(5000, 21);
  auto cb = CompressedBat::Compress(b, codec);
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  EXPECT_EQ(cb->type(), PhysType::kInt64);
  EXPECT_EQ(cb->width(), 8u);
  auto back = cb->Decode();
  ASSERT_TRUE(back.ok());
  ASSERT_EQ((*back)->Count(), b->Count());
  for (size_t i = 0; i < b->Count(); ++i) {
    ASSERT_EQ((*back)->ValueAt<int64_t>(i), b->ValueAt<int64_t>(i)) << i;
  }
  // Random range decodes through the typed int64 overload.
  Rng rng(22);
  std::vector<int64_t> out(512);
  for (int round = 0; round < 20; ++round) {
    const size_t n = 1 + rng.Uniform(512);
    const size_t start = rng.Uniform(5000 - n);
    ASSERT_TRUE(cb->DecodeRange(start, n, out.data()).ok());
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], b->ValueAt<int64_t>(start + i)) << start + i;
    }
  }
  // The int32 overload must refuse an int64 column.
  std::vector<int32_t> wrong(4);
  EXPECT_FALSE(cb->DecodeRange(0, 4, wrong.data()).ok());
}

INSTANTIATE_TEST_SUITE_P(Codecs64, CompressedBat64Test,
                         ::testing::Values(Codec::kPfor, Codec::kPforDelta,
                                           Codec::kRle));

TEST(CompressedBat64Test, PdictRejectsInt64) {
  BatPtr b = SortedColumn64(100, 23);
  auto r = CompressedBat::Compress(b, Codec::kPdict);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(CompressedBat64Test, CompressBestPicksPerType) {
  BatPtr b = SortedColumn64(10000, 24);
  auto best = CompressedBat::CompressBest(b);
  ASSERT_TRUE(best.ok()) << best.status().ToString();
  EXPECT_EQ(best->type(), PhysType::kInt64);
  EXPECT_GT(best->Ratio(), 1.0);
  // Best must not exceed any individually applicable codec.
  for (Codec c : {Codec::kPfor, Codec::kPforDelta, Codec::kRle}) {
    auto one = CompressedBat::Compress(b, c);
    ASSERT_TRUE(one.ok()) << CodecName(c);
    EXPECT_LE(best->CompressedBytes(), one->CompressedBytes())
        << CodecName(c);
  }
}

// --------------------------------------------- DecodeRange edge cases --

/// Satellite c: empty range, range ending exactly on a stat/codec block
/// boundary, full-column range, and start beyond Count() — per codec,
/// on a column wide enough to span multiple kStatBlockRows blocks.
class DecodeRangeEdgeTest : public ::testing::TestWithParam<Codec> {};

TEST_P(DecodeRangeEdgeTest, EdgeRanges) {
  const Codec codec = GetParam();
  const size_t n = 2 * CompressedBat::kStatBlockRows + 777;
  BatPtr b = codec == Codec::kPdict ? SmallRangeColumn(n, 31)
                                    : SortedColumn(n, 31);
  auto cb = CompressedBat::Compress(b, codec);
  ASSERT_TRUE(cb.ok()) << cb.status().ToString();
  ASSERT_EQ(cb->NumStatBlocks(), 3u);
  std::vector<int32_t> out(n);

  // Empty range: OK, touches nothing (any start value, even past the end).
  out[0] = -12345;
  EXPECT_TRUE(cb->DecodeRange(0, 0, out.data()).ok());
  EXPECT_TRUE(cb->DecodeRange(n, 0, out.data()).ok());
  EXPECT_TRUE(cb->DecodeRange(n + 100, 0, out.data()).ok());
  EXPECT_EQ(out[0], -12345);

  // Range ending exactly on a block boundary.
  const size_t block = CompressedBat::kStatBlockRows;
  ASSERT_TRUE(cb->DecodeRange(block - 100, 100, out.data()).ok());
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_EQ(out[i], b->ValueAt<int32_t>(block - 100 + i)) << i;
  }
  // Range starting exactly on a block boundary.
  ASSERT_TRUE(cb->DecodeRange(block, 64, out.data()).ok());
  for (size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(out[i], b->ValueAt<int32_t>(block + i)) << i;
  }
  // Range covering a whole block exactly.
  ASSERT_TRUE(cb->DecodeRange(block, block, out.data()).ok());
  for (size_t i = 0; i < block; i += 997) {
    ASSERT_EQ(out[i], b->ValueAt<int32_t>(block + i)) << i;
  }

  // Full-column range.
  ASSERT_TRUE(cb->DecodeRange(0, n, out.data()).ok());
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], b->ValueAt<int32_t>(i)) << i;
  }

  // Start beyond Count(): typed out-of-range, never a crash.
  EXPECT_FALSE(cb->DecodeRange(n, 1, out.data()).ok());
  EXPECT_FALSE(cb->DecodeRange(n + 1, 1, out.data()).ok());
  EXPECT_FALSE(cb->DecodeRange(n - 1, 2, out.data()).ok());
}

INSTANTIATE_TEST_SUITE_P(Codecs, DecodeRangeEdgeTest,
                         ::testing::Values(Codec::kPfor, Codec::kPforDelta,
                                           Codec::kPdict, Codec::kRle));

// ----------------------------------------------------- concurrency (a) --

/// Satellite a: the lazily-filled decode cache is race-free. PFOR-DELTA
/// and RLE serve DecodeRange from the shared cache, so concurrent first
/// touches exercise the call_once fill; run under TSan this is the proof
/// for the old mutable-vector data race.
TEST(CompressedBatTest, ConcurrentDecodeRangeIsRaceFree) {
  for (Codec codec : {Codec::kPforDelta, Codec::kRle, Codec::kPfor}) {
    const size_t n = CompressedBat::kStatBlockRows + 4321;
    BatPtr b = SortedColumn(n, 41);
    auto cb = CompressedBat::Compress(b, codec);
    ASSERT_TRUE(cb.ok());
    std::vector<std::thread> threads;
    for (int t = 0; t < 8; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(static_cast<uint64_t>(t) + 1);
        std::vector<int32_t> out(256);
        for (int i = 0; i < 64; ++i) {
          const size_t len = 1 + rng.Uniform(256);
          const size_t start = rng.Uniform(n - len);
          ASSERT_TRUE(cb->DecodeRange(start, len, out.data()).ok());
          for (size_t k = 0; k < len; k += 37) {
            ASSERT_EQ(out[k], b->ValueAt<int32_t>(start + k));
          }
        }
        // Mix in whole-column consumers sharing the same cache.
        auto whole = cb->DecodedBat();
        ASSERT_TRUE(whole.ok());
        ASSERT_EQ((*whole)->Count(), n);
      });
    }
    for (auto& th : threads) th.join();
  }
}

}  // namespace
}  // namespace mammoth::compress
