#include <gtest/gtest.h>

#include <filesystem>

#include "core/catalog.h"
#include "core/persist.h"
#include "core/table.h"
#include "sql/engine.h"
#include "wal/db.h"

namespace mammoth {
namespace {

class TablePersistTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/mammoth_db_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string dir_;
};

TablePtr MakeTable() {
  auto t = Table::Create("animals", {{"name", PhysType::kStr},
                                     {"legs", PhysType::kInt32},
                                     {"mass", PhysType::kDouble}});
  EXPECT_TRUE(t.ok());
  const struct {
    const char* name;
    int legs;
    double mass;
  } rows[] = {{"mammoth", 4, 6000.0},
              {"tyrannosaurus", 2, 7000.0},
              {"human", 2, 70.0},
              {"spider", 8, 0.01}};
  for (const auto& r : rows) {
    EXPECT_TRUE((*t)->Insert({Value::Str(r.name), Value::Int(r.legs),
                              Value::Real(r.mass)})
                    .ok());
  }
  return *t;
}

TEST_F(TablePersistTest, SaveLoadRoundTrip) {
  TablePtr t = MakeTable();
  ASSERT_TRUE(SaveTable(*t, dir_).ok());
  auto loaded = LoadTable(dir_);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->name(), "animals");
  EXPECT_EQ((*loaded)->VisibleRowCount(), 4u);
  auto name = (*loaded)->ScanColumn("name");
  auto mass = (*loaded)->ScanColumn("mass");
  ASSERT_TRUE(name.ok() && mass.ok());
  EXPECT_EQ((*name)->StringAt(0), "mammoth");
  EXPECT_DOUBLE_EQ((*mass)->ValueAt<double>(3), 0.01);
}

TEST_F(TablePersistTest, SaveWritesVisibleImage) {
  TablePtr t = MakeTable();
  ASSERT_TRUE(t->Delete(MakeBat<Oid>({Oid{1}})).ok());  // extinct
  ASSERT_TRUE(SaveTable(*t, dir_).ok());
  // The original is untouched (delta state preserved)...
  EXPECT_EQ(t->DeletedCount(), 1u);
  EXPECT_EQ(t->PendingInsertCount(), 4u);
  // ...while the saved image is merged and compacted.
  auto loaded = LoadTable(dir_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->VisibleRowCount(), 3u);
  auto name = (*loaded)->ScanColumn("name");
  ASSERT_TRUE(name.ok());
  EXPECT_EQ((*name)->StringAt(1), "human");
}

TEST_F(TablePersistTest, MmapLoadIsReadableAndUpdatable) {
  TablePtr t = MakeTable();
  ASSERT_TRUE(SaveTable(*t, dir_).ok());
  auto loaded = LoadTable(dir_, /*use_mmap=*/true);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  auto legs = (*loaded)->ScanColumn("legs");
  ASSERT_TRUE(legs.ok());
  EXPECT_EQ((*legs)->ValueAt<int32_t>(3), 8);
  // Updates must still work (copy-on-write off the mapping).
  ASSERT_TRUE((*loaded)
                  ->Insert({Value::Str("ant"), Value::Int(6),
                            Value::Real(0.000003)})
                  .ok());
  ASSERT_TRUE((*loaded)->MergeDeltas().ok());
  EXPECT_EQ((*loaded)->VisibleRowCount(), 5u);
}

TEST_F(TablePersistTest, LoadMissingDirFails) {
  EXPECT_FALSE(LoadTable(dir_ + "/nope").ok());
}

TEST_F(TablePersistTest, CatalogRoundTripThroughSql) {
  sql::Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(
                      "CREATE TABLE a (x INT);"
                      "INSERT INTO a VALUES (1), (2);"
                      "CREATE TABLE b (y VARCHAR(8));"
                      "INSERT INTO b VALUES ('hi');")
                  .ok());
  ASSERT_TRUE(SaveCatalog(*engine.catalog(), dir_).ok());

  auto catalog = LoadCatalog(dir_);
  ASSERT_TRUE(catalog.ok()) << catalog.status().ToString();
  EXPECT_TRUE((*catalog)->Contains("a"));
  EXPECT_TRUE((*catalog)->Contains("b"));
  auto a = (*catalog)->Get("a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ((*a)->VisibleRowCount(), 2u);
}

/// Edge shapes through a full catalog round trip, with and without mmap:
/// a table with uncompacted deletes, a delta-only table (all rows still
/// pending in insert deltas) and an empty table.
TEST_F(TablePersistTest, CatalogEdgeShapesRoundTripWithAndWithoutMmap) {
  sql::Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(
                      "CREATE TABLE holed (x INT, s VARCHAR(8));"
                      "INSERT INTO holed VALUES (1, 'a'), (2, 'b'), "
                      "(3, 'c'), (4, 'd');"
                      "DELETE FROM holed WHERE x = 2;"
                      "CREATE TABLE delta_only (y DOUBLE);"
                      "INSERT INTO delta_only VALUES (0.5), (1.5);"
                      "CREATE TABLE never_used (z BIGINT)")
                  .ok());
  // The shapes are what the test claims: nothing has been compacted.
  auto holed = engine.catalog()->Get("holed");
  ASSERT_TRUE(holed.ok());
  ASSERT_EQ((*holed)->DeletedCount(), 1u);
  auto delta_only = engine.catalog()->Get("delta_only");
  ASSERT_TRUE(delta_only.ok());
  ASSERT_EQ((*delta_only)->PendingInsertCount(), 2u);
  ASSERT_EQ((*delta_only)->MainColumn(0)->Count(), 0u);

  ASSERT_TRUE(SaveCatalog(*engine.catalog(), dir_).ok());

  for (const bool use_mmap : {false, true}) {
    SCOPED_TRACE(use_mmap ? "mmap" : "copy");
    auto loaded = LoadCatalog(dir_, use_mmap);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_TRUE(wal::CompareCatalogs(*engine.catalog(), **loaded).ok());

    // The hole was compacted away on disk.
    auto h = (*loaded)->Get("holed");
    ASSERT_TRUE(h.ok());
    EXPECT_EQ((*h)->VisibleRowCount(), 3u);
    EXPECT_EQ((*h)->DeletedCount(), 0u);
    auto x = (*h)->ScanColumn("x");
    ASSERT_TRUE(x.ok());
    EXPECT_EQ((*x)->ValueAt<int32_t>(1), 3);

    // An empty table must load empty and still accept DML.
    auto e = (*loaded)->Get("never_used");
    ASSERT_TRUE(e.ok());
    EXPECT_EQ((*e)->VisibleRowCount(), 0u);
    ASSERT_TRUE((*e)->Insert({Value::Int(9)}).ok());
    EXPECT_EQ((*e)->VisibleRowCount(), 1u);
  }
}

TEST_F(TablePersistTest, EmptyTableSurvivesDirectSaveLoad) {
  auto created = Table::Create(
      "empty", {{"n", PhysType::kInt64}, {"s", PhysType::kStr}});
  ASSERT_TRUE(created.ok());
  ASSERT_TRUE(SaveTable(**created, dir_).ok());
  for (const bool use_mmap : {false, true}) {
    SCOPED_TRACE(use_mmap ? "mmap" : "copy");
    auto loaded = LoadTable(dir_, use_mmap);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ((*loaded)->VisibleRowCount(), 0u);
    EXPECT_EQ((*loaded)->NumColumns(), 2u);
  }
}

TEST_F(TablePersistTest, FromColumnsValidates) {
  BatPtr ints = MakeBat<int32_t>({1, 2});
  BatPtr longs = MakeBat<int64_t>({1});
  EXPECT_FALSE(
      Table::FromColumns("t", {{"x", PhysType::kInt32}}, {}).ok());
  EXPECT_FALSE(Table::FromColumns("t", {{"x", PhysType::kInt32}}, {longs})
                   .ok());
  EXPECT_FALSE(Table::FromColumns("t",
                                  {{"x", PhysType::kInt32},
                                   {"y", PhysType::kInt64}},
                                  {ints, longs})
                   .ok());  // lengths differ
  auto ok = Table::FromColumns("t", {{"x", PhysType::kInt32}}, {ints});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->VisibleRowCount(), 2u);
}

}  // namespace
}  // namespace mammoth
