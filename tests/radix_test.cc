#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/join.h"
#include "join/partitioned_hash_join.h"
#include "join/radix_cluster.h"
#include "join/radix_decluster.h"

namespace mammoth::radix {
namespace {

using ::mammoth::algebra::HashJoin;

TEST(SplitBitsTest, EvenAndRemainder) {
  EXPECT_EQ(SplitBits(6, 2), (std::vector<int>{3, 3}));
  EXPECT_EQ(SplitBits(7, 2), (std::vector<int>{4, 3}));
  EXPECT_EQ(SplitBits(8, 3), (std::vector<int>{3, 3, 2}));
  EXPECT_EQ(SplitBits(2, 5), (std::vector<int>{1, 1}));  // clamps passes
}

TEST(SplitBitsTest, ClampedPlanIsTheRealFanout) {
  // When passes > total_bits the plan is clamped; plan.size() — not the
  // requested pass count — is the authoritative fan-out, every pass moves
  // at least one bit, and the bits always sum to total_bits. The parallel
  // join sizes its per-pass state off this contract.
  for (int total_bits = 1; total_bits <= 16; ++total_bits) {
    for (int passes = 1; passes <= 20; ++passes) {
      const std::vector<int> plan = SplitBits(total_bits, passes);
      EXPECT_EQ(static_cast<int>(plan.size()),
                std::min(passes, total_bits));
      int sum = 0;
      for (int b : plan) {
        EXPECT_GE(b, 1);
        sum += b;
      }
      EXPECT_EQ(sum, total_bits);
    }
  }
}

TEST(SplitBitsTest, JoinStatsReportEffectivePasses) {
  Rng rng(5);
  BatPtr l = Bat::New(PhysType::kInt32);
  BatPtr r = Bat::New(PhysType::kInt32);
  for (int i = 0; i < 4096; ++i) {
    l->Append<int32_t>(static_cast<int32_t>(rng.Uniform(512)));
    r->Append<int32_t>(static_cast<int32_t>(rng.Uniform(512)));
  }
  PartitionedJoinOptions opt;
  opt.bits = 2;
  opt.passes = 8;  // more passes than bits: must clamp to 2
  PartitionedJoinStats stats;
  auto res = PartitionedHashJoin(l, r, opt, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(stats.bits, 2);
  EXPECT_EQ(stats.passes, 2);
}

RadixTable<int32_t> FigureTwoRelationL() {
  // The L column of Figure 2 (low-3-bit patterns in parentheses in the
  // paper): 57(001) 17(001) 81(001) 66(010) 06(110) 96(000) 75(011)
  // 03(011) 20(100) 37(101) 47(111) 92(100).
  RadixTable<int32_t> t;
  const int32_t keys[] = {57, 17, 81, 66, 6, 96, 75, 3, 20, 37, 47, 92};
  for (size_t i = 0; i < std::size(keys); ++i) {
    t.entries.push_back({static_cast<uint32_t>(i), keys[i]});
  }
  return t;
}

std::vector<int32_t> KeysIn(const RadixTable<int32_t>& t, size_t from,
                            size_t to) {
  std::vector<int32_t> out;
  for (size_t i = from; i < to; ++i) out.push_back(t.entries[i].key);
  return out;
}

TEST(RadixClusterTest, FigureTwoTwoPassCluster) {
  // Reproduce Figure 2: a 2-pass radix-cluster into H=8 clusters (B=3),
  // first pass on the 2 leftmost of the lower 3 bits, second pass on the
  // remaining bit. Clustering is on raw values (kUseHash=false) as in the
  // figure.
  RadixTable<int32_t> t = FigureTwoRelationL();
  RadixCluster<int32_t, /*kUseHash=*/false>(&t, {2, 1});
  ASSERT_EQ(t.NumClusters(), 8u);
  ASSERT_EQ(t.bounds.size(), 9u);
  // Every cluster c contains exactly the values with low-3-bits == c,
  // consecutively.
  for (size_t c = 0; c < 8; ++c) {
    for (size_t i = t.bounds[c]; i < t.bounds[c + 1]; ++i) {
      EXPECT_EQ(static_cast<uint32_t>(t.entries[i].key) & 7u, c)
          << "value " << t.entries[i].key << " in cluster " << c;
    }
  }
  // Spot-check the figure: cluster 001 holds {57,17,81}, cluster 100 holds
  // {20,92}, cluster 110 holds {06}.
  EXPECT_EQ(KeysIn(t, t.bounds[1], t.bounds[2]),
            (std::vector<int32_t>{57, 17, 81}));
  EXPECT_EQ(KeysIn(t, t.bounds[4], t.bounds[5]),
            (std::vector<int32_t>{20, 92}));
  EXPECT_EQ(KeysIn(t, t.bounds[6], t.bounds[7]),
            (std::vector<int32_t>{6}));
}

TEST(RadixClusterTest, MultiPassEqualsSinglePass) {
  Rng rng(3);
  RadixTable<int32_t> one, two, three;
  for (uint32_t i = 0; i < 10000; ++i) {
    const auto v = static_cast<int32_t>(rng.Next());
    one.entries.push_back({i, v});
  }
  two = one;
  three = one;
  RadixCluster<int32_t>(&one, {6});
  RadixCluster<int32_t>(&two, {3, 3});
  RadixCluster<int32_t>(&three, {2, 2, 2});
  // Leftmost-bits-first multi-pass clustering is stable per pass, so the
  // final layout is identical to the single-pass one.
  EXPECT_EQ(one.entries, two.entries);
  EXPECT_EQ(one.bounds, two.bounds);
  EXPECT_EQ(one.entries, three.entries);
  EXPECT_EQ(one.bounds, three.bounds);
}

TEST(RadixClusterTest, BoundsPartitionAndClustersHomogeneous) {
  Rng rng(11);
  RadixTable<int64_t> t;
  std::vector<int64_t> original_keys;
  for (uint32_t i = 0; i < 5000; ++i) {
    const auto v = static_cast<int64_t>(rng.Uniform(1u << 20));
    t.entries.push_back({i, v});
    original_keys.push_back(v);
  }
  RadixCluster<int64_t>(&t, {4, 3});
  ASSERT_EQ(t.bounds.front(), 0u);
  ASSERT_EQ(t.bounds.back(), t.size());
  for (size_t c = 0; c + 1 < t.bounds.size(); ++c) {
    ASSERT_LE(t.bounds[c], t.bounds[c + 1]);
    for (size_t i = t.bounds[c]; i < t.bounds[c + 1]; ++i) {
      EXPECT_EQ(RadixBits<int64_t>(t.entries[i].key) & 127u, c);
    }
  }
  // Clustering is a permutation: same multiset of keys.
  auto a = original_keys;
  std::vector<int64_t> b;
  for (const auto& e : t.entries) b.push_back(e.key);
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  // OIDs still pair with their keys.
  for (size_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(original_keys[t.entries[i].oid], t.entries[i].key);
  }
}

TEST(SuggestRadixBitsTest, GrowsWithInnerSize) {
  const int small = SuggestRadixBits(1000, 12, 256 << 10);
  const int large = SuggestRadixBits(8 << 20, 12, 256 << 10);
  EXPECT_EQ(small, 0);
  EXPECT_GT(large, 5);
  EXPECT_LE(large, 20);
}

// Parameterized equivalence: PartitionedHashJoin must produce exactly the
// pair set of the simple hash join for any (bits, passes) configuration.
class PartitionedJoinParamTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionedJoinParamTest, MatchesSimpleHashJoin) {
  const auto [bits, passes] = GetParam();
  Rng rng(bits * 31 + passes);
  BatPtr l = Bat::New(PhysType::kInt32);
  BatPtr r = Bat::New(PhysType::kInt32);
  for (int i = 0; i < 4000; ++i) {
    l->Append<int32_t>(static_cast<int32_t>(rng.Uniform(500)));
  }
  for (int i = 0; i < 3000; ++i) {
    r->Append<int32_t>(static_cast<int32_t>(rng.Uniform(500)));
  }
  PartitionedJoinOptions opt;
  opt.bits = bits;
  opt.passes = passes;
  PartitionedJoinStats stats;
  auto pj = PartitionedHashJoin(l, r, opt, &stats);
  ASSERT_TRUE(pj.ok()) << pj.status().ToString();
  auto hj = HashJoin(l, r);
  ASSERT_TRUE(hj.ok());

  auto pair_set = [](const algebra::JoinResult& jr) {
    std::set<std::pair<Oid, Oid>> s;
    for (size_t i = 0; i < jr.Count(); ++i) {
      s.emplace(jr.left->OidAt(i), jr.right->OidAt(i));
    }
    return s;
  };
  EXPECT_EQ(pj->Count(), hj->Count());
  EXPECT_EQ(pair_set(*pj), pair_set(*hj));
  EXPECT_EQ(stats.bits, bits);
}

INSTANTIATE_TEST_SUITE_P(
    BitsAndPasses, PartitionedJoinParamTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(4, 1),
                      std::make_tuple(4, 2), std::make_tuple(6, 2),
                      std::make_tuple(6, 3), std::make_tuple(9, 3),
                      std::make_tuple(12, 2)));

TEST(PartitionedJoinTest, DefaultBitsAutoTunes) {
  Rng rng(5);
  BatPtr l = Bat::New(PhysType::kInt64);
  BatPtr r = Bat::New(PhysType::kInt64);
  for (int i = 0; i < 20000; ++i) {
    l->Append<int64_t>(static_cast<int64_t>(rng.Uniform(10000)));
    r->Append<int64_t>(static_cast<int64_t>(rng.Uniform(10000)));
  }
  PartitionedJoinStats stats;
  auto pj = PartitionedHashJoin(l, r, {}, &stats);
  ASSERT_TRUE(pj.ok());
  auto hj = HashJoin(l, r);
  ASSERT_TRUE(hj.ok());
  EXPECT_EQ(pj->Count(), hj->Count());
}

TEST(PartitionedJoinTest, RejectsMixedTypes) {
  BatPtr l = MakeBat<int32_t>({1});
  BatPtr r = MakeBat<int64_t>({1});
  EXPECT_FALSE(PartitionedHashJoin(l, r).ok());
}

// ------------------------------------------------------------ Decluster --

class DeclusterParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(DeclusterParamTest, MatchesNaiveFetch) {
  const size_t n = GetParam();
  Rng rng(n);
  const size_t nvalues = 10000;
  std::vector<int32_t> values(nvalues);
  for (size_t i = 0; i < nvalues; ++i) {
    values[i] = static_cast<int32_t>(rng.Next());
  }
  std::vector<Oid> positions(n);
  for (size_t i = 0; i < n; ++i) positions[i] = rng.Uniform(nvalues);

  DeclusterOptions opt;
  opt.cache_bytes = 16 << 10;  // tiny cache to force many clusters
  const auto fast = RadixDeclusterProject<int32_t>(positions, values.data(),
                                                   nvalues, opt);
  const auto slow = NaiveFetchProject<int32_t>(positions, values.data());
  EXPECT_EQ(fast, slow);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeclusterParamTest,
                         ::testing::Values(0, 1, 7, 100, 4096, 50000));

TEST(DeclusterTest, BatWrapperRespectsHseqbase) {
  BatPtr values = MakeBat<int32_t>({10, 20, 30, 40});
  values->set_hseqbase(100);
  BatPtr pos = MakeBat<Oid>({Oid{103}, Oid{100}, Oid{102}});
  auto r = DeclusterProject(pos, values);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ((*r)->Count(), 3u);
  EXPECT_EQ((*r)->ValueAt<int32_t>(0), 40);
  EXPECT_EQ((*r)->ValueAt<int32_t>(1), 10);
  EXPECT_EQ((*r)->ValueAt<int32_t>(2), 30);
}

TEST(DeclusterTest, OutOfRangeRejected) {
  BatPtr values = MakeBat<int32_t>({1, 2});
  BatPtr pos = MakeBat<Oid>({Oid{7}});
  EXPECT_FALSE(DeclusterProject(pos, values).ok());
}

TEST(DeclusterTest, MaxTuplesMatchesPaperShape) {
  // Paper: 512KB cache, 4-byte values -> up to half a billion tuples, and
  // the bound scales quadratically with cache size.
  const size_t p4 = MaxDeclusterTuples(512 << 10, 4);
  EXPECT_GE(p4, 500u << 20);  // >= ~0.5 billion
  const size_t big = MaxDeclusterTuples(1 << 20, 4);
  EXPECT_EQ(big, p4 * 4);  // doubling cache quadruples the bound
}

}  // namespace
}  // namespace mammoth::radix
