#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>

#include "core/bat.h"
#include "server/wire.h"

namespace mammoth {
namespace {

using server::DecodeError;
using server::DecodeFrame;
using server::DecodeHello;
using server::DecodeResult;
using server::EncodeError;
using server::EncodeFrame;
using server::EncodeHello;
using server::EncodeResult;
using server::DecodeCaps;
using server::EncodeCaps;
using server::Frame;
using server::FrameType;
using server::HelloInfo;
using server::kHeaderBytes;
using server::kWireCapCompressedResults;
using server::WireError;

// ------------------------------------------------------------- framing --

TEST(WireFrameTest, RoundTripEveryType) {
  for (FrameType type :
       {FrameType::kHello, FrameType::kQuery, FrameType::kResult,
        FrameType::kError, FrameType::kClose, FrameType::kCaps}) {
    const std::string payload = "payload for type " +
                                std::to_string(static_cast<int>(type));
    const std::string bytes = EncodeFrame(type, payload);
    ASSERT_EQ(bytes.size(), kHeaderBytes + payload.size());
    Frame frame;
    auto consumed = DecodeFrame(bytes.data(), bytes.size(), &frame);
    ASSERT_TRUE(consumed.ok()) << consumed.status().ToString();
    EXPECT_EQ(*consumed, bytes.size());
    EXPECT_EQ(frame.type, type);
    EXPECT_EQ(frame.payload, payload);
  }
}

TEST(WireFrameTest, EmptyPayload) {
  const std::string bytes = EncodeFrame(FrameType::kClose, "");
  Frame frame;
  auto consumed = DecodeFrame(bytes.data(), bytes.size(), &frame);
  ASSERT_TRUE(consumed.ok());
  EXPECT_EQ(*consumed, kHeaderBytes);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(WireFrameTest, TruncationReportsIncompleteNotError) {
  const std::string bytes = EncodeFrame(FrameType::kQuery, "SELECT 1;");
  // Every strict prefix — including a partial header — must decode to
  // "0 bytes consumed, no error": the frame is simply not complete yet.
  for (size_t n = 0; n < bytes.size(); ++n) {
    Frame frame;
    auto consumed = DecodeFrame(bytes.data(), n, &frame);
    ASSERT_TRUE(consumed.ok()) << "prefix " << n;
    EXPECT_EQ(*consumed, 0u) << "prefix " << n;
  }
}

TEST(WireFrameTest, TwoFramesBackToBack) {
  const std::string a = EncodeFrame(FrameType::kQuery, "first");
  const std::string b = EncodeFrame(FrameType::kClose, "");
  std::string stream = a + b;
  Frame frame;
  auto c1 = DecodeFrame(stream.data(), stream.size(), &frame);
  ASSERT_TRUE(c1.ok());
  EXPECT_EQ(*c1, a.size());
  EXPECT_EQ(frame.payload, "first");
  stream.erase(0, *c1);
  auto c2 = DecodeFrame(stream.data(), stream.size(), &frame);
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(*c2, b.size());
  EXPECT_EQ(frame.type, FrameType::kClose);
}

TEST(WireFrameTest, GarbageMagicIsError) {
  std::string bytes = EncodeFrame(FrameType::kQuery, "x");
  bytes[0] = 'z';
  Frame frame;
  auto consumed = DecodeFrame(bytes.data(), bytes.size(), &frame);
  ASSERT_FALSE(consumed.ok());
  EXPECT_EQ(consumed.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireFrameTest, WrongVersionIsError) {
  std::string bytes = EncodeFrame(FrameType::kQuery, "x");
  bytes[4] = static_cast<char>(server::kWireVersion + 1);
  Frame frame;
  auto consumed = DecodeFrame(bytes.data(), bytes.size(), &frame);
  ASSERT_FALSE(consumed.ok());
  EXPECT_NE(consumed.status().message().find("version"), std::string::npos);
}

TEST(WireFrameTest, UnknownTypeAndReservedByteAreErrors) {
  std::string bytes = EncodeFrame(FrameType::kQuery, "x");
  bytes[6] = 99;  // type
  Frame frame;
  EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame).ok());
  bytes = EncodeFrame(FrameType::kQuery, "x");
  bytes[7] = 1;  // reserved
  EXPECT_FALSE(DecodeFrame(bytes.data(), bytes.size(), &frame).ok());
}

TEST(WireFrameTest, OversizedLengthIsError) {
  std::string bytes = EncodeFrame(FrameType::kQuery, "x");
  const uint32_t huge = server::kMaxPayloadBytes + 1;
  std::memcpy(bytes.data() + 8, &huge, sizeof(huge));
  Frame frame;
  auto consumed = DecodeFrame(bytes.data(), bytes.size(), &frame);
  ASSERT_FALSE(consumed.ok());
  EXPECT_NE(consumed.status().message().find("oversized"), std::string::npos);
}

// ------------------------------------------------------- hello / error --

TEST(WireHelloTest, RoundTrip) {
  HelloInfo hello;
  hello.session_id = 42;
  hello.server_name = "mammothdb-test";
  auto decoded = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->session_id, 42u);
  EXPECT_EQ(decoded->server_name, "mammothdb-test");
}

TEST(WireHelloTest, TruncatedPayloadIsError) {
  HelloInfo hello;
  hello.server_name = "mammothdb";
  std::string payload = EncodeHello(hello);
  payload.resize(payload.size() - 3);
  EXPECT_FALSE(DecodeHello(payload).ok());
}

TEST(WireHelloTest, CapsRoundTripAndOldHelloTolerated) {
  HelloInfo hello;
  hello.session_id = 7;
  hello.server_name = "mammothdb";
  hello.caps = kWireCapCompressedResults;
  const std::string payload = EncodeHello(hello);
  auto decoded = DecodeHello(payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->caps, kWireCapCompressedResults);

  // A pre-caps server's Hello ends right after the name; the decoder
  // must tolerate it and report zero capabilities.
  const std::string old_format =
      payload.substr(0, payload.size() - sizeof(uint32_t));
  auto old_decoded = DecodeHello(old_format);
  ASSERT_TRUE(old_decoded.ok()) << old_decoded.status().ToString();
  EXPECT_EQ(old_decoded->session_id, 7u);
  EXPECT_EQ(old_decoded->caps, 0u);
}

TEST(WireCapsTest, RoundTripAndGarbage) {
  auto caps = DecodeCaps(EncodeCaps(kWireCapCompressedResults));
  ASSERT_TRUE(caps.ok());
  EXPECT_EQ(*caps, kWireCapCompressedResults);
  auto none = DecodeCaps(EncodeCaps(0));
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(*none, 0u);
  EXPECT_FALSE(DecodeCaps("").ok());
  EXPECT_FALSE(DecodeCaps("ab").ok());             // truncated u32
  EXPECT_FALSE(DecodeCaps("abcdetc").ok());        // trailing junk
}

TEST(WireErrorTest, RoundTripPreservesTypedCode) {
  for (const Status& error :
       {Status::TimedOut("queued too long"), Status::Unavailable("draining"),
        Status::NotFound("no table t"), Status::InvalidArgument("parse")}) {
    auto decoded = DecodeError(EncodeError(error));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->code, error.code());
    EXPECT_EQ(decoded->message, error.message());
    EXPECT_EQ(decoded->ToStatus().ToString(), error.ToString());
  }
}

TEST(WireErrorTest, GarbageIsError) {
  EXPECT_FALSE(DecodeError("").ok());
  EXPECT_FALSE(DecodeError("\xff\xff\xff").ok());
}

// ------------------------------------------------------------- results --

mal::QueryResult SampleResult() {
  mal::QueryResult result;
  result.names = {"i32", "i64", "dbl", "city", "oids"};
  result.columns.push_back(MakeBat<int32_t>({1, -2, 3, 2000000000}));
  result.columns.push_back(
      MakeBat<int64_t>({int64_t{1} << 40, -5, 0, 7}));
  result.columns.push_back(MakeBat<double>({0.5, -1.25, 3.75, 1e300}));
  result.columns.push_back(
      MakeStringBat({"amsterdam", "tokyo", "amsterdam", ""}));
  BatPtr oids = Bat::New(PhysType::kOid);
  for (Oid o : {Oid{3}, Oid{1}, Oid{4}, Oid{1}}) oids->Append<Oid>(o);
  result.columns.push_back(std::move(oids));
  return result;
}

void ExpectSameResult(const mal::QueryResult& a, const mal::QueryResult& b) {
  ASSERT_EQ(a.names, b.names);
  ASSERT_EQ(a.columns.size(), b.columns.size());
  ASSERT_EQ(a.RowCount(), b.RowCount());
  for (size_t c = 0; c < a.columns.size(); ++c) {
    const Bat& x = *a.columns[c];
    const Bat& y = *b.columns[c];
    ASSERT_EQ(x.type(), y.type()) << "column " << c;
    ASSERT_EQ(x.Count(), y.Count()) << "column " << c;
    for (size_t i = 0; i < x.Count(); ++i) {
      switch (x.type()) {
        case PhysType::kStr:
          EXPECT_EQ(x.StringAt(i), y.StringAt(i)) << c << "/" << i;
          break;
        case PhysType::kOid:
          EXPECT_EQ(x.OidAt(i), y.OidAt(i)) << c << "/" << i;
          break;
        case PhysType::kDouble:
          EXPECT_EQ(x.ValueAt<double>(i), y.ValueAt<double>(i));
          break;
        case PhysType::kInt64:
          EXPECT_EQ(x.ValueAt<int64_t>(i), y.ValueAt<int64_t>(i));
          break;
        case PhysType::kInt32:
          EXPECT_EQ(x.ValueAt<int32_t>(i), y.ValueAt<int32_t>(i));
          break;
        default:
          FAIL() << "unexpected type in sample";
      }
    }
  }
}

TEST(WireResultTest, ColumnarRoundTrip) {
  const mal::QueryResult original = SampleResult();
  auto payload = EncodeResult(original);
  ASSERT_TRUE(payload.ok()) << payload.status().ToString();
  auto decoded = DecodeResult(*payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectSameResult(original, *decoded);
}

TEST(WireResultTest, EncodingIsDeterministic) {
  // Byte-identical re-encoding is what the server tests lean on to
  // prove remote results match in-process execution bit-for-bit.
  auto a = EncodeResult(SampleResult());
  auto b = EncodeResult(SampleResult());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(WireResultTest, DenseOidColumnStaysVirtual) {
  mal::QueryResult result;
  result.names = {"cands"};
  result.columns = {Bat::NewDense(100, 5)};
  auto payload = EncodeResult(result);
  ASSERT_TRUE(payload.ok());
  auto decoded = DecodeResult(*payload);
  ASSERT_TRUE(decoded.ok());
  const Bat& col = *decoded->columns[0];
  ASSERT_TRUE(col.IsDenseTail());  // no materialization on the wire
  ASSERT_EQ(col.Count(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(col.OidAt(i), 100 + i);
}

TEST(WireResultTest, EmptyResultRoundTrip) {
  mal::QueryResult empty;  // what DDL/DML answer with
  auto payload = EncodeResult(empty);
  ASSERT_TRUE(payload.ok());
  auto decoded = DecodeResult(*payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->names.empty());
  EXPECT_EQ(decoded->RowCount(), 0u);
}

TEST(WireResultTest, StringHeapSliceIsCompact) {
  // A result column re-interns into a per-column heap: the slice must
  // carry each distinct string once, not the source table's whole heap.
  auto heap = std::make_shared<StringHeap>();
  heap->Put("unrelated-giant-string-that-must-not-ship");
  BatPtr col = Bat::NewString(heap);
  col->AppendString("a");
  col->AppendString("b");
  col->AppendString("a");
  mal::QueryResult result;
  result.names = {"s"};
  result.columns = {col};
  auto payload = EncodeResult(result);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(payload->find("unrelated-giant-string"), std::string::npos);
  auto decoded = DecodeResult(*payload);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->columns[0]->StringAt(2), "a");
  EXPECT_EQ(decoded->columns[0]->heap()->DistinctCount(), 2u);
}

TEST(WireResultTest, TruncatedAndGarbagePayloadsAreErrors) {
  auto payload = EncodeResult(SampleResult());
  ASSERT_TRUE(payload.ok());
  for (size_t cut : {size_t{0}, size_t{3}, size_t{11}, payload->size() / 2,
                     payload->size() - 1}) {
    EXPECT_FALSE(DecodeResult(std::string_view(*payload).substr(0, cut)).ok())
        << "cut at " << cut;
  }
  // Trailing junk after a well-formed result is also rejected.
  EXPECT_FALSE(DecodeResult(*payload + "junk").ok());
  EXPECT_FALSE(DecodeResult("\xff\xfe\xfd\xfc garbage").ok());
}

TEST(WireResultTest, WireSuppliedRowCountIsBounded) {
  // Patch the nrows field of a valid payload to hostile values: the
  // decoder must reject them cleanly instead of overflowing its byte
  // arithmetic (2^61 * 8 wraps to 0) or attempting a giant allocation.
  auto payload = EncodeResult(SampleResult());
  ASSERT_TRUE(payload.ok());
  for (uint64_t hostile :
       {uint64_t{1} << 61, std::numeric_limits<uint64_t>::max(),
        uint64_t{server::kMaxPayloadBytes} + 1}) {
    std::string patched = *payload;
    std::memcpy(patched.data() + sizeof(uint32_t), &hostile, sizeof(hostile));
    auto decoded = DecodeResult(patched);
    ASSERT_FALSE(decoded.ok()) << "nrows " << hostile;
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }
  // Plausible-but-wrong nrows (within the cap, beyond the bytes that
  // actually follow) is a plain truncation error, not a crash.
  std::string patched = *payload;
  const uint64_t too_many = 1000000;
  std::memcpy(patched.data() + sizeof(uint32_t), &too_many, sizeof(too_many));
  EXPECT_FALSE(DecodeResult(patched).ok());
}

TEST(WireResultTest, OverlongColumnNameClampedButDecodable) {
  // Names beyond the u16 length prefix are clamped (length and bytes
  // together); the payload must stay well-formed.
  mal::QueryResult result;
  result.names = {std::string(70000, 'n')};
  result.columns = {MakeBat<int32_t>({1, 2})};
  auto payload = EncodeResult(result);
  ASSERT_TRUE(payload.ok());
  auto decoded = DecodeResult(*payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->names[0], std::string(65535, 'n'));
  EXPECT_EQ(decoded->columns[0]->ValueAt<int32_t>(1), 2);
}

TEST(WireResultTest, MisalignedColumnsRejectedAtEncode) {
  mal::QueryResult result;
  result.names = {"a", "b"};
  result.columns = {MakeBat<int32_t>({1, 2, 3}), MakeBat<int32_t>({1})};
  EXPECT_FALSE(EncodeResult(result).ok());
}

// ------------------------------------------------- compressed shipping --

/// >= 1024 rows so the compressed probes engage.
mal::QueryResult RunHeavyResult(size_t nrows) {
  mal::QueryResult result;
  result.names = {"runs32", "runs64", "uniq32"};
  BatPtr r32 = Bat::New(PhysType::kInt32);
  BatPtr r64 = Bat::New(PhysType::kInt64);
  BatPtr u32 = Bat::New(PhysType::kInt32);
  r32->Resize(nrows);
  r64->Resize(nrows);
  u32->Resize(nrows);
  int32_t* a = r32->MutableTailData<int32_t>();
  int64_t* b = r64->MutableTailData<int64_t>();
  int32_t* c = u32->MutableTailData<int32_t>();
  for (size_t i = 0; i < nrows; ++i) {
    a[i] = static_cast<int32_t>(i / 100);           // RLE-friendly
    b[i] = static_cast<int64_t>(i / 200) << 33;     // RLE-friendly int64
    c[i] = static_cast<int32_t>(i * 2654435761u);   // incompressible
  }
  result.columns = {r32, r64, u32};
  return result;
}

TEST(WireResultTest, CompressedResultsRoundTripAndSaveBytes) {
  const mal::QueryResult result = RunHeavyResult(8192);
  auto raw = EncodeResult(result);
  ASSERT_TRUE(raw.ok());
  uint64_t saved = 0;
  auto compressed =
      EncodeResult(result, kWireCapCompressedResults, &saved);
  ASSERT_TRUE(compressed.ok());
  // The run-heavy columns shipped compressed; the frame shrank by
  // exactly the bytes the counter reports.
  EXPECT_LT(compressed->size(), raw->size());
  EXPECT_GT(saved, 0u);
  EXPECT_EQ(raw->size() - compressed->size(), saved);

  // Both images decode to the same values.
  auto from_raw = DecodeResult(*raw);
  auto from_comp = DecodeResult(*compressed);
  ASSERT_TRUE(from_raw.ok());
  ASSERT_TRUE(from_comp.ok()) << from_comp.status().ToString();
  ExpectSameResult(*from_raw, *from_comp);
  // And re-encoding a decoded compressed result raw is byte-identical
  // to the original raw image (bit-exactness across the wire).
  auto reencoded = EncodeResult(*from_comp);
  ASSERT_TRUE(reencoded.ok());
  EXPECT_EQ(*reencoded, *raw);
}

TEST(WireResultTest, NoCapsMeansRawEvenWhenCompressible) {
  const mal::QueryResult result = RunHeavyResult(4096);
  uint64_t saved = 0;
  auto without = EncodeResult(result, 0, &saved);
  auto plain = EncodeResult(result);
  ASSERT_TRUE(without.ok());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(*without, *plain);
  EXPECT_EQ(saved, 0u);
}

TEST(WireResultTest, SmallResultsNeverCompressed) {
  // Below the row threshold the probe is skipped: byte-identical frames
  // with and without the capability, so tiny results pay zero overhead.
  const mal::QueryResult result = RunHeavyResult(1023);
  uint64_t saved = 0;
  auto with = EncodeResult(result, kWireCapCompressedResults, &saved);
  auto without = EncodeResult(result);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(*with, *without);
  EXPECT_EQ(saved, 0u);
}

// ------------------------------------------- seq / prepare / execute --

TEST(WireSeqTest, PrependSplitRoundTrip) {
  const std::string tagged = server::PrependSeq(0xDEADBEEF, "SELECT 1");
  auto sp = server::SplitSeq(tagged);
  ASSERT_TRUE(sp.ok()) << sp.status().ToString();
  EXPECT_EQ(sp->seq, 0xDEADBEEFu);
  EXPECT_EQ(sp->rest, "SELECT 1");
  // Empty rest is fine — kExecute-style bodies may legally be longer,
  // but a bare sequence number is a complete payload.
  const std::string bare_payload = server::PrependSeq(7, "");
  auto bare = server::SplitSeq(bare_payload);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->seq, 7u);
  EXPECT_TRUE(bare->rest.empty());
}

TEST(WireSeqTest, SeqZeroAndTruncationRejected) {
  // 0 is the reserved "not a pipelined request" value; a frame carrying
  // it is hostile and must be rejected centrally.
  EXPECT_FALSE(server::SplitSeq(server::PrependSeq(0, "x")).ok());
  // Fewer than 4 bytes cannot hold the prefix.
  EXPECT_FALSE(server::SplitSeq("").ok());
  EXPECT_FALSE(server::SplitSeq("abc").ok());
}

TEST(WirePreparedTest, RoundTrip) {
  server::PreparedReply reply;
  reply.stmt_id = uint64_t{1} << 40;
  reply.nparams = 3;
  // EncodePrepared emits the seq-prefixed payload: peel the prefix the
  // way a client would, then decode the body. (SplitSeq views into the
  // payload, so keep it alive.)
  const std::string payload = server::EncodePrepared(9, reply);
  auto sp = server::SplitSeq(payload);
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->seq, 9u);
  auto decoded = server::DecodePrepared(sp->rest);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->stmt_id, reply.stmt_id);
  EXPECT_EQ(decoded->nparams, 3u);
}

TEST(WirePreparedTest, TruncatedAndTrailingJunkRejected) {
  const std::string payload = server::EncodePrepared(1, {42, 1});
  auto sp = server::SplitSeq(payload);
  ASSERT_TRUE(sp.ok());
  const std::string body(sp->rest);
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(server::DecodePrepared(body.substr(0, cut)).ok())
        << "cut " << cut;
  }
  EXPECT_FALSE(server::DecodePrepared(body + "x").ok());
}

TEST(WireExecuteTest, RoundTripAllParamKinds) {
  const std::vector<Value> params = {
      Value::Int(-5), Value::Real(2.5), Value::Str("o'hare"),
      Value::Str(""), Value::Int(std::numeric_limits<int64_t>::min())};
  const std::string payload =
      server::EncodeExecute(31, uint64_t{7} << 33, params);
  auto sp = server::SplitSeq(payload);
  ASSERT_TRUE(sp.ok());
  EXPECT_EQ(sp->seq, 31u);
  auto req = server::DecodeExecute(sp->rest);
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->stmt_id, uint64_t{7} << 33);
  ASSERT_EQ(req->params.size(), params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    EXPECT_EQ(req->params[i], params[i]) << "param " << i;
  }
}

TEST(WireExecuteTest, HostileExecuteBodiesRejected) {
  const std::string payload =
      server::EncodeExecute(1, 99, {Value::Int(1), Value::Str("abc")});
  auto sp = server::SplitSeq(payload);
  ASSERT_TRUE(sp.ok());
  const std::string body(sp->rest);
  // Every strict prefix is a typed truncation error, never a crash.
  for (size_t cut = 0; cut < body.size(); ++cut) {
    auto r = server::DecodeExecute(body.substr(0, cut));
    ASSERT_FALSE(r.ok()) << "cut " << cut;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument) << cut;
  }
  // Trailing junk after a well-formed request.
  EXPECT_FALSE(server::DecodeExecute(body + "z").ok());
  // Unknown parameter-kind byte (first param's kind lives right after
  // u64 stmt_id + u16 nparams).
  std::string patched = body;
  patched[8 + 2] = 9;
  EXPECT_FALSE(server::DecodeExecute(patched).ok());
}

TEST(WireResultTest, HostileEncodingBytesRejected) {
  // A double column never ships compressed; flipping its encoding byte
  // to RLE (or garbage) must be a typed decode error, not a crash.
  mal::QueryResult result;
  result.names = {"d"};
  BatPtr col = Bat::New(PhysType::kDouble);
  for (int i = 0; i < 4; ++i) col->Append<double>(i * 0.5);
  result.columns = {col};
  auto payload = EncodeResult(result);
  ASSERT_TRUE(payload.ok());
  // Layout: u32 ncols, u64 nrows, u16 name_len, "d", u8 type, u8 enc.
  const size_t enc_off = 4 + 8 + 2 + 1 + 1;
  ASSERT_EQ((*payload)[enc_off], 0);  // kRaw
  for (uint8_t hostile : {uint8_t{2}, uint8_t{3}, uint8_t{9}}) {
    std::string patched = *payload;
    patched[enc_off] = static_cast<char>(hostile);
    EXPECT_FALSE(DecodeResult(patched).ok()) << int(hostile);
  }
}

}  // namespace
}  // namespace mammoth
