#include "core/setops.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"

namespace mammoth::algebra {
namespace {

BatPtr Cands(std::initializer_list<Oid> oids) {
  BatPtr b = MakeBat<Oid>(oids);
  b->mutable_props().sorted = true;
  b->mutable_props().key = true;
  return b;
}

std::vector<Oid> OidsOf(const BatPtr& b) {
  std::vector<Oid> out;
  for (size_t i = 0; i < b->Count(); ++i) out.push_back(b->OidAt(i));
  return out;
}

TEST(OidSetOpsTest, UnionMergesSorted) {
  auto r = OidUnion(Cands({1, 3, 5}), Cands({2, 3, 6}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(OidsOf(*r), (std::vector<Oid>{1, 2, 3, 5, 6}));
  EXPECT_TRUE((*r)->props().sorted);
  EXPECT_TRUE((*r)->props().key);
}

TEST(OidSetOpsTest, IntersectKeepsCommon) {
  auto r = OidIntersect(Cands({1, 3, 5, 7}), Cands({3, 4, 7, 9}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(OidsOf(*r), (std::vector<Oid>{3, 7}));
}

TEST(OidSetOpsTest, DiffRemoves) {
  auto r = OidDiff(Cands({1, 2, 3, 4}), Cands({2, 4, 6}));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(OidsOf(*r), (std::vector<Oid>{1, 3}));
}

TEST(OidSetOpsTest, DenseInputsAndDenseResults) {
  BatPtr a = Bat::NewDense(10, 10);  // 10..19
  BatPtr b = Bat::NewDense(15, 10);  // 15..24
  auto u = OidUnion(a, b);
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE((*u)->IsDenseTail());  // 10..24 is contiguous
  EXPECT_EQ((*u)->Count(), 15u);
  auto i = OidIntersect(a, b);
  ASSERT_TRUE(i.ok());
  EXPECT_TRUE((*i)->IsDenseTail());  // 15..19
  EXPECT_EQ((*i)->OidAt(0), 15u);
  EXPECT_EQ((*i)->Count(), 5u);
  auto d = OidDiff(a, b);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(OidsOf(*d), (std::vector<Oid>{10, 11, 12, 13, 14}));
}

TEST(OidSetOpsTest, EmptyOperands) {
  BatPtr empty = Bat::New(PhysType::kOid);
  empty->mutable_props().sorted = true;
  auto u = OidUnion(empty, Cands({1, 2}));
  ASSERT_TRUE(u.ok());
  EXPECT_EQ((*u)->Count(), 2u);
  auto i = OidIntersect(Cands({1, 2}), empty);
  ASSERT_TRUE(i.ok());
  EXPECT_EQ((*i)->Count(), 0u);
  auto d = OidDiff(Cands({1, 2}), empty);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->Count(), 2u);
}

TEST(OidSetOpsTest, UnsortedRejected) {
  BatPtr unsorted = MakeBat<Oid>({Oid{5}, Oid{1}});
  EXPECT_FALSE(OidUnion(unsorted, Cands({1})).ok());
  EXPECT_FALSE(OidIntersect(Cands({1}), unsorted).ok());
}

TEST(OidSetOpsTest, RandomizedAgainstStdSet) {
  Rng rng(17);
  for (int round = 0; round < 20; ++round) {
    std::set<Oid> sa, sb;
    for (int i = 0; i < 200; ++i) {
      sa.insert(rng.Uniform(300));
      sb.insert(rng.Uniform(300));
    }
    BatPtr a = Bat::New(PhysType::kOid);
    BatPtr b = Bat::New(PhysType::kOid);
    for (Oid o : sa) a->Append<Oid>(o);
    for (Oid o : sb) b->Append<Oid>(o);
    a->mutable_props().sorted = true;
    b->mutable_props().sorted = true;

    std::vector<Oid> want_u, want_i, want_d;
    std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                   std::back_inserter(want_u));
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(want_i));
    std::set_difference(sa.begin(), sa.end(), sb.begin(), sb.end(),
                        std::back_inserter(want_d));
    auto u = OidUnion(a, b);
    auto i = OidIntersect(a, b);
    auto d = OidDiff(a, b);
    ASSERT_TRUE(u.ok() && i.ok() && d.ok());
    EXPECT_EQ(OidsOf(*u), want_u);
    EXPECT_EQ(OidsOf(*i), want_i);
    EXPECT_EQ(OidsOf(*d), want_d);
  }
}

TEST(SemiJoinTest, KeepsMatchingRows) {
  BatPtr l = MakeBat<int32_t>({5, 7, 9, 7, 11});
  BatPtr r = MakeBat<int32_t>({7, 11, 13});
  auto s = SemiJoin(l, r);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(OidsOf(*s), (std::vector<Oid>{1, 3, 4}));
  auto a = AntiJoin(l, r);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(OidsOf(*a), (std::vector<Oid>{0, 2}));
}

TEST(SemiJoinTest, StringKeysAcrossHeaps) {
  BatPtr l = MakeStringBat({"ape", "bee", "cat"});
  BatPtr r = MakeStringBat({"cat", "ape", "dog"});
  auto s = SemiJoin(l, r);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(OidsOf(*s), (std::vector<Oid>{0, 2}));
  auto a = AntiJoin(l, r);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(OidsOf(*a), (std::vector<Oid>{1}));
}

TEST(SemiJoinTest, HseqbaseRespected) {
  BatPtr l = MakeBat<int32_t>({1, 2});
  l->set_hseqbase(100);
  BatPtr r = MakeBat<int32_t>({2});
  auto s = SemiJoin(l, r);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(OidsOf(*s), (std::vector<Oid>{101}));
}

TEST(SemiJoinTest, TypeChecks) {
  BatPtr l = MakeBat<int32_t>({1});
  BatPtr r = MakeBat<int64_t>({1});
  EXPECT_FALSE(SemiJoin(l, r).ok());
  BatPtr f = MakeBat<double>({1.0});
  EXPECT_FALSE(SemiJoin(f, f).ok());
}

}  // namespace
}  // namespace mammoth::algebra
