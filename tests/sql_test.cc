#include "sql/engine.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace mammoth::sql {
namespace {

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .Execute("CREATE TABLE people (name VARCHAR(32), "
                             "age INT, salary DOUBLE)")
                    .ok());
    const char* inserts =
        "INSERT INTO people VALUES "
        "('John Wayne', 1907, 10.0), ('Roger Moore', 1927, 20.0), "
        "('Bob Fosse', 1927, 30.0), ('Will Smith', 1968, 40.0), "
        "('Ada Lovelace', 1815, 50.0)";
    ASSERT_TRUE(engine_.Execute(inserts).ok());
  }
  Engine engine_;
};

TEST_F(SqlEngineTest, SelectWhereEquality) {
  auto r = engine_.Execute("SELECT name FROM people WHERE age = 1927");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 2u);
  EXPECT_EQ(r->columns[0]->StringAt(0), "Roger Moore");
  EXPECT_EQ(r->columns[0]->StringAt(1), "Bob Fosse");
}

TEST_F(SqlEngineTest, SelectStar) {
  auto r = engine_.Execute("SELECT * FROM people LIMIT 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->names.size(), 3u);
  EXPECT_EQ(r->RowCount(), 2u);
  EXPECT_EQ(r->names[0], "name");
  EXPECT_EQ(r->names[2], "salary");
}

TEST_F(SqlEngineTest, RangePredicatesGetFused) {
  auto r = engine_.Execute(
      "SELECT name FROM people WHERE age >= 1900 AND age <= 1930");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->RowCount(), 3u);
  EXPECT_GE(engine_.last_opt_report().fused, 1u);
  EXPECT_NE(engine_.last_plan_text().find("algebra.select"),
            std::string::npos);
}

TEST_F(SqlEngineTest, StringPredicate) {
  auto r = engine_.Execute(
      "SELECT age FROM people WHERE name = 'Ada Lovelace'");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->RowCount(), 1u);
  EXPECT_EQ(r->columns[0]->ValueAt<int32_t>(0), 1815);
}

TEST_F(SqlEngineTest, GlobalAggregates) {
  auto r = engine_.Execute(
      "SELECT count(*), sum(salary), min(age), max(age), avg(salary) "
      "FROM people");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 1u);
  EXPECT_EQ(r->columns[0]->ValueAt<int64_t>(0), 5);
  EXPECT_DOUBLE_EQ(r->columns[1]->ValueAt<double>(0), 150.0);
  EXPECT_EQ(r->columns[2]->ValueAt<int32_t>(0), 1815);
  EXPECT_EQ(r->columns[3]->ValueAt<int32_t>(0), 1968);
  EXPECT_DOUBLE_EQ(r->columns[4]->ValueAt<double>(0), 30.0);
}

TEST_F(SqlEngineTest, GroupByWithAggregates) {
  auto r = engine_.Execute(
      "SELECT age, count(*), sum(salary) FROM people GROUP BY age "
      "ORDER BY age");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 4u);
  // Sorted by age: 1815, 1907, 1927, 1968.
  EXPECT_EQ(r->columns[0]->ValueAt<int32_t>(0), 1815);
  EXPECT_EQ(r->columns[0]->ValueAt<int32_t>(2), 1927);
  EXPECT_EQ(r->columns[1]->ValueAt<int64_t>(2), 2);
  EXPECT_DOUBLE_EQ(r->columns[2]->ValueAt<double>(2), 50.0);
}

TEST_F(SqlEngineTest, OrderByDescAndLimit) {
  auto r = engine_.Execute(
      "SELECT name, salary FROM people ORDER BY salary DESC LIMIT 2");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->RowCount(), 2u);
  EXPECT_EQ(r->columns[0]->StringAt(0), "Ada Lovelace");
  EXPECT_EQ(r->columns[0]->StringAt(1), "Will Smith");
}

TEST_F(SqlEngineTest, DeleteWithPredicate) {
  ASSERT_TRUE(engine_.Execute("DELETE FROM people WHERE age < 1900").ok());
  auto r = engine_.Execute("SELECT count(*) FROM people");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns[0]->ValueAt<int64_t>(0), 4);
}

TEST_F(SqlEngineTest, DeleteAll) {
  ASSERT_TRUE(engine_.Execute("DELETE FROM people").ok());
  auto r = engine_.Execute("SELECT count(*) FROM people");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns[0]->ValueAt<int64_t>(0), 0);
}

TEST_F(SqlEngineTest, InsertThenQuerySeesDelta) {
  ASSERT_TRUE(
      engine_.Execute("INSERT INTO people VALUES ('New Kid', 2000, 1.0)")
          .ok());
  auto r = engine_.Execute("SELECT name FROM people WHERE age > 1990");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->RowCount(), 1u);
  EXPECT_EQ(r->columns[0]->StringAt(0), "New Kid");
}

TEST_F(SqlEngineTest, UpdateRewritesMatchingRows) {
  ASSERT_TRUE(
      engine_.Execute("UPDATE people SET salary = 99.0 WHERE age = 1927")
          .ok());
  auto r = engine_.Execute(
      "SELECT sum(salary) FROM people WHERE age = 1927");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->columns[0]->ValueAt<double>(0), 198.0);
  // Unmatched rows untouched; total row count preserved.
  r = engine_.Execute("SELECT count(*), sum(salary) FROM people");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns[0]->ValueAt<int64_t>(0), 5);
  EXPECT_DOUBLE_EQ(r->columns[1]->ValueAt<double>(0),
                   10.0 + 99.0 + 99.0 + 40.0 + 50.0);
}

TEST_F(SqlEngineTest, UpdateMultipleColumnsNoWhere) {
  ASSERT_TRUE(
      engine_.Execute("UPDATE people SET age = 2000, salary = 1.0").ok());
  auto r = engine_.Execute(
      "SELECT min(age), max(age), sum(salary) FROM people");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns[0]->ValueAt<int32_t>(0), 2000);
  EXPECT_EQ(r->columns[1]->ValueAt<int32_t>(0), 2000);
  EXPECT_DOUBLE_EQ(r->columns[2]->ValueAt<double>(0), 5.0);
}

TEST_F(SqlEngineTest, UpdateValidates) {
  EXPECT_FALSE(engine_.Execute("UPDATE people SET ghost = 1").ok());
  EXPECT_FALSE(engine_.Execute("UPDATE people SET name = 5").ok());
  EXPECT_FALSE(engine_.Execute("UPDATE ghosts SET x = 1").ok());
}

TEST_F(SqlEngineTest, HavingFiltersGroups) {
  auto r = engine_.Execute(
      "SELECT age, count(*) FROM people GROUP BY age "
      "HAVING count(*) >= 2");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 1u);
  EXPECT_EQ(r->columns[0]->ValueAt<int32_t>(0), 1927);
  r = engine_.Execute(
      "SELECT age, sum(salary) FROM people GROUP BY age "
      "HAVING sum(salary) > 20 AND age < 1960 ORDER BY age");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 2u);  // 1815 (50), 1927 (50)
  EXPECT_FALSE(
      engine_.Execute("SELECT age FROM people GROUP BY age "
                      "HAVING sum(salary) > 1")
          .ok());  // label not in select list
}

TEST_F(SqlEngineTest, MultiKeyOrderBy) {
  ASSERT_TRUE(engine_
                  .Execute("INSERT INTO people VALUES "
                           "('Zed', 1927, 5.0), ('Amy', 1907, 60.0)")
                  .ok());
  auto r = engine_.Execute(
      "SELECT age, salary, name FROM people ORDER BY age, salary DESC");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 7u);
  // age ascending (major); within equal ages salary descending (minor).
  EXPECT_EQ(r->columns[0]->ValueAt<int32_t>(0), 1815);
  EXPECT_EQ(r->columns[2]->StringAt(1), "Amy");         // 1907, 60
  EXPECT_EQ(r->columns[2]->StringAt(2), "John Wayne");  // 1907, 10
  EXPECT_EQ(r->columns[2]->StringAt(3), "Bob Fosse");   // 1927, 30
  EXPECT_EQ(r->columns[2]->StringAt(4), "Roger Moore");  // 1927, 20
  EXPECT_EQ(r->columns[2]->StringAt(5), "Zed");          // 1927, 5
}

TEST_F(SqlEngineTest, ErrorsAreStatusNotCrash) {
  EXPECT_FALSE(engine_.Execute("SELECT nosuch FROM people").ok());
  EXPECT_FALSE(engine_.Execute("SELECT name FROM ghosts").ok());
  EXPECT_FALSE(engine_.Execute("SELECT name, sum(age) FROM people").ok());
  EXPECT_FALSE(
      engine_.Execute("SELECT name, age FROM people GROUP BY age").ok());
  EXPECT_FALSE(engine_.Execute("SELEC name FROM people").ok());
  EXPECT_FALSE(engine_.Execute("SELECT name FROM people ORDER BY salary")
                   .ok());  // not in select list
  EXPECT_FALSE(
      engine_.Execute("CREATE TABLE people (x INT)").ok());  // exists
  EXPECT_FALSE(
      engine_.Execute("INSERT INTO people VALUES (1)").ok());  // arity
}

TEST_F(SqlEngineTest, ExecuteScriptReturnsLastSelect) {
  auto r = engine_.ExecuteScript(
      "CREATE TABLE t2 (x INT);"
      "INSERT INTO t2 VALUES (1), (2), (3);"
      "SELECT sum(x) FROM t2;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->columns[0]->ValueAt<int64_t>(0), 6);
}

TEST_F(SqlEngineTest, RecyclerSpeedsRepeatedQueries) {
  recycle::Recycler rec(16 << 20);
  engine_.AttachRecycler(&rec);
  ASSERT_TRUE(
      engine_.Execute("SELECT sum(salary) FROM people WHERE age >= 1900")
          .ok());
  ASSERT_TRUE(
      engine_.Execute("SELECT sum(salary) FROM people WHERE age >= 1900")
          .ok());
  EXPECT_GT(engine_.last_run_stats().recycled, 0u);
}

// ----------------------------------------------------------- Parser-only --

TEST(SqlParserTest, ParsesCreateTypes) {
  auto s = Parse(
      "CREATE TABLE t (a TINYINT, b SMALLINT, c INT, d BIGINT, e DOUBLE, "
      "f VARCHAR(10), g TEXT)");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const auto& c = std::get<CreateStmt>(*s);
  ASSERT_EQ(c.columns.size(), 7u);
  EXPECT_EQ(c.columns[0].type, PhysType::kInt8);
  EXPECT_EQ(c.columns[3].type, PhysType::kInt64);
  EXPECT_EQ(c.columns[5].type, PhysType::kStr);
}

TEST(SqlParserTest, CaseInsensitiveKeywords) {
  auto s = Parse("select name from People where AGE >= 10");
  ASSERT_TRUE(s.ok());
  const auto& sel = std::get<SelectStmt>(*s);
  ASSERT_EQ(sel.tables.size(), 1u);
  EXPECT_EQ(sel.tables[0], "people");
  EXPECT_EQ(sel.where[0].column.column, "age");
  EXPECT_EQ(sel.where[0].op, CmpOp::kGe);
}

TEST(SqlParserTest, QualifiedRefsAndJoinPredicates) {
  auto s = Parse(
      "SELECT o.total, c.name FROM orders, customers "
      "WHERE o.cid = c.id AND c.age > 30");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const auto& sel = std::get<SelectStmt>(*s);
  ASSERT_EQ(sel.tables.size(), 2u);
  EXPECT_EQ(sel.items[0].column.table, "o");
  EXPECT_EQ(sel.items[0].column.column, "total");
  ASSERT_EQ(sel.where.size(), 2u);
  EXPECT_TRUE(sel.where[0].is_join);
  EXPECT_EQ(sel.where[0].rhs_column.table, "c");
  EXPECT_FALSE(sel.where[1].is_join);
}

TEST(SqlParserTest, NonEquiJoinPredicateRejected) {
  EXPECT_FALSE(Parse("SELECT a FROM t, u WHERE t.a < u.b").ok());
}

TEST(SqlParserTest, NegativeAndRealLiterals) {
  auto s = Parse("SELECT x FROM t WHERE x > -5 AND x < 2.75");
  ASSERT_TRUE(s.ok());
  const auto& sel = std::get<SelectStmt>(*s);
  EXPECT_EQ(sel.where[0].literal.AsInt(), -5);
  EXPECT_DOUBLE_EQ(sel.where[1].literal.AsReal(), 2.75);
}

class SqlJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .ExecuteScript(
                        "CREATE TABLE customers (id INT, name VARCHAR(16), "
                        "age INT);"
                        "INSERT INTO customers VALUES (1, 'ada', 36), "
                        "(2, 'bob', 50), (3, 'cyd', 19);"
                        "CREATE TABLE orders (oid INT, cid INT, "
                        "total DOUBLE);"
                        "INSERT INTO orders VALUES (100, 1, 10.0), "
                        "(101, 2, 20.0), (102, 1, 30.0), (103, 3, 40.0), "
                        "(104, 9, 50.0);")
                    .ok());
  }
  Engine engine_;
};

TEST_F(SqlJoinTest, EquiJoinProjectsBothSides) {
  auto r = engine_.Execute(
      "SELECT name, total FROM customers, orders "
      "WHERE id = cid ORDER BY total");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 4u);  // order 104 has no customer
  EXPECT_EQ(r->columns[0]->StringAt(0), "ada");
  EXPECT_DOUBLE_EQ(r->columns[1]->ValueAt<double>(0), 10.0);
  EXPECT_EQ(r->columns[0]->StringAt(3), "cyd");
}

TEST_F(SqlJoinTest, FiltersPushedBelowJoin) {
  auto r = engine_.Execute(
      "SELECT name, total FROM customers, orders "
      "WHERE id = cid AND age >= 30 AND total > 15 ORDER BY total");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 2u);  // (bob, 20), (ada, 30)
  EXPECT_EQ(r->columns[0]->StringAt(0), "bob");
  EXPECT_EQ(r->columns[0]->StringAt(1), "ada");
}

TEST_F(SqlJoinTest, JoinWithGroupByAndAggregates) {
  auto r = engine_.Execute(
      "SELECT name, count(*), sum(total) FROM customers, orders "
      "WHERE id = cid GROUP BY name ORDER BY name");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 3u);
  EXPECT_EQ(r->columns[0]->StringAt(0), "ada");
  EXPECT_EQ(r->columns[1]->ValueAt<int64_t>(0), 2);
  EXPECT_DOUBLE_EQ(r->columns[2]->ValueAt<double>(0), 40.0);
}

TEST_F(SqlJoinTest, GlobalAggregateOverJoin) {
  auto r = engine_.Execute(
      "SELECT count(*), sum(total) FROM customers, orders WHERE id = cid");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->columns[0]->ValueAt<int64_t>(0), 4);
  EXPECT_DOUBLE_EQ(r->columns[1]->ValueAt<double>(0), 100.0);
}

TEST_F(SqlJoinTest, QualifiedStarExpansion) {
  auto r = engine_.Execute(
      "SELECT * FROM customers, orders WHERE id = cid LIMIT 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->names.size(), 6u);
  EXPECT_EQ(r->names[0], "customers.id");
  EXPECT_EQ(r->names[5], "orders.total");
}

TEST_F(SqlJoinTest, JoinErrorCases) {
  // No join predicate: cross products are rejected.
  EXPECT_FALSE(
      engine_.Execute("SELECT name FROM customers, orders").ok());
  // Ambiguity in unqualified names when both tables have the column.
  ASSERT_TRUE(engine_
                  .Execute("CREATE TABLE dup (id INT, total DOUBLE)")
                  .ok());
  EXPECT_FALSE(engine_
                   .Execute("SELECT total FROM orders, dup "
                            "WHERE orders.oid = dup.id")
                   .ok());
  // Unknown qualifier.
  EXPECT_FALSE(engine_
                   .Execute("SELECT ghosts.x FROM customers, orders "
                            "WHERE id = cid")
                   .ok());
  // Join predicate within one table.
  EXPECT_FALSE(engine_
                   .Execute("SELECT name FROM customers, orders "
                            "WHERE customers.id = customers.age")
                   .ok());
}

TEST(SqlParserTest, RejectsGarbage) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t LIMIT -3").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES (1,)").ok());
  EXPECT_FALSE(Parse("CREATE TABLE t (a BLOB)").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE s = 'unterminated").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t; DROP TABLE t").ok());
}

}  // namespace
}  // namespace mammoth::sql
