#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "core/group.h"
#include "core/join.h"
#include "core/project.h"
#include "core/select.h"
#include "join/partitioned_hash_join.h"
#include "join/radix_cluster.h"
#include "parallel/exec_context.h"
#include "parallel/stitch.h"
#include "parallel/task_pool.h"

namespace mammoth {
namespace {

using algebra::AggrCount;
using algebra::AggrMax;
using algebra::AggrMin;
using algebra::AggrSum;
using algebra::Group;
using algebra::GroupResult;
using algebra::Project;
using algebra::RangeSelect;
using algebra::ThetaSelect;
using parallel::ExecContext;
using parallel::ParseThreadCount;
using parallel::TaskPool;

// ------------------------------------------------------------ TaskPool --

TEST(TaskPoolTest, CoversEveryIndexExactlyOnce) {
  TaskPool pool(4);
  const size_t n = 100000;
  std::vector<int> hits(n, 0);  // morsels are disjoint: plain ints are safe
  std::atomic<uint64_t> sum{0};
  Status s = pool.ParallelFor(n, 1024, [&](size_t b, size_t e, int) {
    uint64_t local = 0;
    for (size_t i = b; i < e; ++i) {
      ++hits[i];
      local += i;
    }
    sum += local;
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  for (size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i], 1) << i;
  EXPECT_EQ(sum.load(), uint64_t{n} * (n - 1) / 2);
}

TEST(TaskPoolTest, PropagatesFirstError) {
  TaskPool pool(4);
  Status s = pool.ParallelFor(10000, 100, [&](size_t b, size_t e, int) {
    if (b <= 7777 && 7777 < e) {
      return Status::Internal("morsel failed");
    }
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "morsel failed");
}

TEST(TaskPoolTest, ErrorCancelsRemainingMorsels) {
  TaskPool pool(2);
  std::atomic<int> ran{0};
  Status s = pool.ParallelFor(1u << 20, 1, [&](size_t b, size_t, int) {
    ran.fetch_add(1);
    if (b == 0) return Status::Internal("stop");
    return Status::OK();
  });
  EXPECT_FALSE(s.ok());
  // Cancellation is best-effort, but with 2^20 single-index morsels an
  // early error must leave almost all of them unclaimed.
  EXPECT_LT(ran.load(), 1 << 19);
}

TEST(TaskPoolTest, SingleThreadPoolRunsInline) {
  TaskPool pool(1);
  std::vector<int> workers;
  Status s = pool.ParallelFor(1000, 100, [&](size_t, size_t, int w) {
    workers.push_back(w);  // inline: no concurrency, push_back is safe
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(workers.size(), 10u);
  for (int w : workers) EXPECT_EQ(w, 0);
}

TEST(TaskPoolTest, SingleMorselRunsInline) {
  TaskPool pool(8);
  int calls = 0;
  Status s = pool.ParallelFor(50, 100, [&](size_t b, size_t e, int w) {
    ++calls;  // inline path: safe
    EXPECT_EQ(b, 0u);
    EXPECT_EQ(e, 50u);
    EXPECT_EQ(w, 0);
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
}

TEST(TaskPoolTest, OversubscribedPoolStillCorrect) {
  TaskPool pool(16);  // far more workers than cores
  std::atomic<uint64_t> sum{0};
  Status s = pool.ParallelFor(500000, 777, [&](size_t b, size_t e, int) {
    uint64_t local = 0;
    for (size_t i = b; i < e; ++i) local += i;
    sum += local;
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(sum.load(), uint64_t{500000} * 499999 / 2);
}

TEST(TaskPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  TaskPool pool(4);
  std::atomic<uint64_t> inner_total{0};
  Status s = pool.ParallelFor(8192, 1024, [&](size_t, size_t, int) {
    // A kernel invoked from inside a morsel must not re-enter the pool.
    return pool.ParallelFor(100, 10, [&](size_t b, size_t e, int w) {
      EXPECT_EQ(w, 0);  // inline execution
      inner_total += e - b;
      return Status::OK();
    });
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(inner_total.load(), uint64_t{8} * 100);
}

TEST(TaskPoolTest, ReusableAcrossManyParallelFors) {
  TaskPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> count{0};
    Status s = pool.ParallelFor(10000, 64, [&](size_t b, size_t e, int) {
      count += e - b;
      return Status::OK();
    });
    ASSERT_TRUE(s.ok());
    ASSERT_EQ(count.load(), 10000u);
  }
}

// --------------------------------------------------------- ExecContext --

TEST(ExecContextTest, SerialHasOneThread) {
  EXPECT_EQ(ExecContext::Serial().threads(), 1);
}

TEST(ExecContextTest, ParseThreadCount) {
  EXPECT_EQ(ParseThreadCount(nullptr, 3), 3);
  EXPECT_EQ(ParseThreadCount("", 3), 3);
  EXPECT_EQ(ParseThreadCount("8", 3), 8);
  EXPECT_EQ(ParseThreadCount("1", 3), 1);
  EXPECT_EQ(ParseThreadCount("0", 3), 3);    // non-positive -> fallback
  EXPECT_EQ(ParseThreadCount("-4", 3), 3);
  EXPECT_EQ(ParseThreadCount("abc", 3), 3);
  EXPECT_EQ(ParseThreadCount("4x", 3), 3);
  EXPECT_EQ(ParseThreadCount("999999", 3), 3);  // absurd -> fallback
}

TEST(ExecContextTest, NoPoolParallelForRunsInline) {
  ExecContext ctx;
  size_t covered = 0;
  Status s = ctx.ParallelFor(1000, 128, [&](size_t b, size_t e, int w) {
    EXPECT_EQ(w, 0);
    covered += e - b;
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(covered, 1000u);
}

// ----------------------------------------------------- MorselCollector --

TEST(MorselCollectorTest, StitchesRunsInMorselOrder) {
  TaskPool pool(4);
  const size_t n = 100000, grain = 1000;
  parallel::MorselCollector<uint64_t> collect(pool.threads(), n, grain);
  Status s = pool.ParallelFor(n, grain, [&](size_t b, size_t e, int w) {
    auto sink = collect.BeginMorsel(b, w);
    for (size_t i = b; i < e; ++i) {
      if (i % 3 == 0) sink.Append(i);
    }
    return Status::OK();
  });
  ASSERT_TRUE(s.ok());
  std::vector<uint64_t> out(collect.Total());
  collect.Stitch(out.data());
  std::vector<uint64_t> expect;
  for (size_t i = 0; i < n; i += 3) expect.push_back(i);
  EXPECT_EQ(out, expect);
}

// ------------------------------------------------- Kernel cross-checks --
//
// Every parallel kernel must produce a byte-identical BAT — values,
// hseqbase, density, properties — to its serial schedule. Inputs are sized
// past the parallel thresholds (> 128K rows) so the pool path actually
// runs.

void ExpectBatsIdentical(const BatPtr& serial, const BatPtr& par) {
  ASSERT_NE(serial, nullptr);
  ASSERT_NE(par, nullptr);
  ASSERT_EQ(serial->type(), par->type());
  ASSERT_EQ(serial->Count(), par->Count());
  EXPECT_EQ(serial->hseqbase(), par->hseqbase());
  ASSERT_EQ(serial->IsDenseTail(), par->IsDenseTail());
  EXPECT_EQ(serial->props().sorted, par->props().sorted);
  EXPECT_EQ(serial->props().revsorted, par->props().revsorted);
  EXPECT_EQ(serial->props().key, par->props().key);
  if (serial->IsDenseTail()) {
    EXPECT_EQ(serial->tseqbase(), par->tseqbase());
    return;
  }
  if (serial->Count() == 0) return;
  EXPECT_EQ(std::memcmp(serial->tail().raw_data(), par->tail().raw_data(),
                        serial->Count() * serial->tail().width()),
            0);
}

BatPtr RandomInt32(size_t n, uint64_t bound, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(n);
  int32_t* v = b->MutableTailData<int32_t>();
  for (size_t i = 0; i < n; ++i) {
    v[i] = static_cast<int32_t>(rng.Uniform(bound));
  }
  return b;
}

constexpr size_t kRows = 300000;  // past the 2*64K parallel threshold

class ParallelKernelTest : public ::testing::Test {
 protected:
  TaskPool pool_{4};
  ExecContext par_{&pool_};
  const ExecContext& ser_ = ExecContext::Serial();
};

TEST_F(ParallelKernelTest, ThetaSelectMatchesSerial) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    BatPtr b = RandomInt32(kRows, 1000, seed);
    for (CmpOp op : {CmpOp::kLt, CmpOp::kLe, CmpOp::kEq, CmpOp::kNe,
                     CmpOp::kGe, CmpOp::kGt}) {
      auto s = ThetaSelect(b, nullptr, Value::Int(500), op, ser_);
      auto p = ThetaSelect(b, nullptr, Value::Int(500), op, par_);
      ASSERT_TRUE(s.ok() && p.ok());
      ExpectBatsIdentical(*s, *p);
    }
  }
}

TEST_F(ParallelKernelTest, ThetaSelectWithCandidatesMatchesSerial) {
  BatPtr b = RandomInt32(kRows, 100, 7);
  BatPtr cands = Bat::New(PhysType::kOid);
  cands->Reserve(kRows / 2);
  for (size_t i = 0; i < kRows; i += 2) cands->Append<Oid>(i);
  cands->mutable_props().sorted = true;
  cands->mutable_props().key = true;
  auto s = ThetaSelect(b, cands, Value::Int(42), CmpOp::kEq, ser_);
  auto p = ThetaSelect(b, cands, Value::Int(42), CmpOp::kEq, par_);
  ASSERT_TRUE(s.ok() && p.ok());
  ExpectBatsIdentical(*s, *p);

  // Dense candidate list over a sub-range.
  BatPtr dense = Bat::NewDense(1000, kRows - 2000);
  auto sd = ThetaSelect(b, dense, Value::Int(42), CmpOp::kEq, ser_);
  auto pd = ThetaSelect(b, dense, Value::Int(42), CmpOp::kEq, par_);
  ASSERT_TRUE(sd.ok() && pd.ok());
  ExpectBatsIdentical(*sd, *pd);
}

TEST_F(ParallelKernelTest, RangeSelectMatchesSerialIncludingAnti) {
  for (uint64_t seed : {11u, 12u}) {
    BatPtr b = RandomInt32(kRows, 10000, seed);
    struct Case {
      Value lo, hi;
      bool anti;
    };
    const Case cases[] = {
        {Value::Int(100), Value::Int(5000), false},
        {Value::Int(100), Value::Int(5000), true},
        {Value::Nil(), Value::Int(5000), false},
        {Value::Int(100), Value::Nil(), true},
        {Value::Nil(), Value::Nil(), false},
        {Value::Nil(), Value::Nil(), true},
    };
    for (const Case& c : cases) {
      auto s = RangeSelect(b, nullptr, c.lo, c.hi, true, false, c.anti, ser_);
      auto p = RangeSelect(b, nullptr, c.lo, c.hi, true, false, c.anti, par_);
      ASSERT_TRUE(s.ok() && p.ok());
      ExpectBatsIdentical(*s, *p);
    }
  }
}

TEST_F(ParallelKernelTest, ProjectMatchesSerial) {
  Rng rng(99);
  BatPtr values = Bat::New(PhysType::kInt64);
  values->Resize(kRows);
  int64_t* v = values->MutableTailData<int64_t>();
  for (size_t i = 0; i < kRows; ++i) v[i] = static_cast<int64_t>(rng.Next());
  BatPtr oids = Bat::New(PhysType::kOid);
  oids->Resize(kRows);
  Oid* o = oids->MutableTailData<Oid>();
  for (size_t i = 0; i < kRows; ++i) o[i] = rng.Uniform(kRows);

  auto s = Project(oids, values, ser_);
  auto p = Project(oids, values, par_);
  ASSERT_TRUE(s.ok() && p.ok());
  ExpectBatsIdentical(*s, *p);
}

TEST_F(ParallelKernelTest, ProjectReportsOutOfRangeFromAnyMorsel) {
  BatPtr values = RandomInt32(kRows, 100, 5);
  BatPtr oids = Bat::New(PhysType::kOid);
  oids->Resize(kRows);
  Oid* o = oids->MutableTailData<Oid>();
  for (size_t i = 0; i < kRows; ++i) o[i] = i;
  o[kRows - 3] = kRows + 17;  // out of range near the tail
  auto s = Project(oids, values, ser_);
  auto p = Project(oids, values, par_);
  EXPECT_FALSE(s.ok());
  EXPECT_FALSE(p.ok());
  EXPECT_EQ(p.status().code(), StatusCode::kOutOfRange);
}

TEST_F(ParallelKernelTest, ProjectStringsMatchesSerial) {
  BatPtr values = Bat::NewString(nullptr);
  const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon"};
  Rng rng(21);
  for (size_t i = 0; i < kRows; ++i) values->AppendString(words[rng.Uniform(5)]);
  BatPtr oids = Bat::New(PhysType::kOid);
  oids->Resize(kRows);
  Oid* o = oids->MutableTailData<Oid>();
  for (size_t i = 0; i < kRows; ++i) o[i] = rng.Uniform(kRows);
  auto s = Project(oids, values, ser_);
  auto p = Project(oids, values, par_);
  ASSERT_TRUE(s.ok() && p.ok());
  ExpectBatsIdentical(*s, *p);
  EXPECT_EQ((*s)->heap(), (*p)->heap());
}

TEST_F(ParallelKernelTest, GroupMatchesSerial) {
  for (uint64_t seed : {31u, 32u}) {
    BatPtr b = RandomInt32(kRows, 97, seed);
    auto s = Group(b, nullptr, 0, ser_);
    auto p = Group(b, nullptr, 0, par_);
    ASSERT_TRUE(s.ok() && p.ok());
    EXPECT_EQ(s->ngroups, p->ngroups);
    ExpectBatsIdentical(s->groups, p->groups);
    ExpectBatsIdentical(s->extents, p->extents);

    // Refinement (multi-column GROUP BY) over a second column.
    BatPtr b2 = RandomInt32(kRows, 13, seed + 100);
    auto s2 = Group(b2, s->groups, s->ngroups, ser_);
    auto p2 = Group(b2, p->groups, p->ngroups, par_);
    ASSERT_TRUE(s2.ok() && p2.ok());
    EXPECT_EQ(s2->ngroups, p2->ngroups);
    ExpectBatsIdentical(s2->groups, p2->groups);
    ExpectBatsIdentical(s2->extents, p2->extents);
  }
}

TEST_F(ParallelKernelTest, GroupHighCardinalityMatchesSerial) {
  // Nearly every row its own group: stresses the renumber pass.
  BatPtr b = RandomInt32(kRows, 10 * kRows, 77);
  auto s = Group(b, nullptr, 0, ser_);
  auto p = Group(b, nullptr, 0, par_);
  ASSERT_TRUE(s.ok() && p.ok());
  EXPECT_EQ(s->ngroups, p->ngroups);
  ExpectBatsIdentical(s->groups, p->groups);
  ExpectBatsIdentical(s->extents, p->extents);
}

TEST_F(ParallelKernelTest, AggregatesMatchSerial) {
  BatPtr values = RandomInt32(kRows, 1000000, 51);
  auto g = Group(RandomInt32(kRows, 64, 52), nullptr, 0, ser_);
  ASSERT_TRUE(g.ok());
  const BatPtr& groups = g->groups;
  const size_t ngroups = g->ngroups;

  auto ss = AggrSum(values, groups, ngroups, ser_);
  auto sp = AggrSum(values, groups, ngroups, par_);
  ASSERT_TRUE(ss.ok() && sp.ok());
  ExpectBatsIdentical(*ss, *sp);

  auto cs = AggrCount(groups, ngroups, kRows, ser_);
  auto cp = AggrCount(groups, ngroups, kRows, par_);
  ASSERT_TRUE(cs.ok() && cp.ok());
  ExpectBatsIdentical(*cs, *cp);

  auto ms = AggrMin(values, groups, ngroups, ser_);
  auto mp = AggrMin(values, groups, ngroups, par_);
  ASSERT_TRUE(ms.ok() && mp.ok());
  ExpectBatsIdentical(*ms, *mp);

  auto xs = AggrMax(values, groups, ngroups, ser_);
  auto xp = AggrMax(values, groups, ngroups, par_);
  ASSERT_TRUE(xs.ok() && xp.ok());
  ExpectBatsIdentical(*xs, *xp);
}

TEST_F(ParallelKernelTest, AggrMinMaxDoubleMatchesSerial) {
  Rng rng(61);
  BatPtr values = Bat::New(PhysType::kDouble);
  values->Resize(kRows);
  double* v = values->MutableTailData<double>();
  for (size_t i = 0; i < kRows; ++i) v[i] = rng.NextDouble() - 0.5;
  auto g = Group(RandomInt32(kRows, 32, 62), nullptr, 0, ser_);
  ASSERT_TRUE(g.ok());
  auto ms = AggrMin(values, g->groups, g->ngroups, ser_);
  auto mp = AggrMin(values, g->groups, g->ngroups, par_);
  ASSERT_TRUE(ms.ok() && mp.ok());
  ExpectBatsIdentical(*ms, *mp);
  auto xs = AggrMax(values, g->groups, g->ngroups, ser_);
  auto xp = AggrMax(values, g->groups, g->ngroups, par_);
  ASSERT_TRUE(xs.ok() && xp.ok());
  ExpectBatsIdentical(*xs, *xp);
}

TEST_F(ParallelKernelTest, RadixClusterMatchesSerial) {
  Rng rng(71);
  radix::RadixTable<int32_t> ser_table, par_table;
  const size_t n = kRows;
  ser_table.entries.resize(n);
  for (size_t i = 0; i < n; ++i) {
    ser_table.entries[i] = {static_cast<uint32_t>(i),
                            static_cast<int32_t>(rng.Uniform(1u << 20))};
  }
  par_table.entries = ser_table.entries;
  const std::vector<int> plan = radix::SplitBits(8, 2);
  radix::RadixCluster<int32_t>(&ser_table, plan);
  radix::RadixCluster<int32_t>(&par_table, plan, par_);
  EXPECT_EQ(ser_table.bounds, par_table.bounds);
  EXPECT_EQ(ser_table.bits, par_table.bits);
  ASSERT_EQ(ser_table.entries.size(), par_table.entries.size());
  EXPECT_EQ(ser_table.entries, par_table.entries);
}

TEST_F(ParallelKernelTest, PartitionedHashJoinMatchesSerial) {
  for (uint64_t seed : {81u, 82u}) {
    auto MakePair = [&](BatPtr* l, BatPtr* r) {
      Rng rng(seed);
      *r = Bat::New(PhysType::kInt32);
      (*r)->Resize(100000);
      int32_t* rv = (*r)->MutableTailData<int32_t>();
      for (size_t i = 0; i < 100000; ++i) {
        rv[i] = static_cast<int32_t>(rng.Uniform(120000));
      }
      *l = Bat::New(PhysType::kInt32);
      (*l)->Resize(200000);
      int32_t* lv = (*l)->MutableTailData<int32_t>();
      for (size_t i = 0; i < 200000; ++i) {
        lv[i] = static_cast<int32_t>(rng.Uniform(120000));
      }
    };
    BatPtr l, r;
    MakePair(&l, &r);

    radix::PartitionedJoinOptions sopt;
    sopt.bits = 6;
    sopt.ctx = &ser_;
    radix::PartitionedJoinOptions popt = sopt;
    popt.ctx = &par_;
    auto sres = radix::PartitionedHashJoin(l, r, sopt);
    auto pres = radix::PartitionedHashJoin(l, r, popt);
    ASSERT_TRUE(sres.ok() && pres.ok());
    ExpectBatsIdentical(sres->left, pres->left);
    ExpectBatsIdentical(sres->right, pres->right);
    // Sanity: the parallel join agrees with the simple hash join on size.
    auto simple = algebra::HashJoin(l, r);
    ASSERT_TRUE(simple.ok());
    EXPECT_EQ(pres->Count(), simple->Count());
  }
}

}  // namespace
}  // namespace mammoth
