// End-to-end crash-recovery harness: forks a real mammoth_server on a
// durable directory, drives a concurrent commit storm over the wire,
// SIGKILLs the server mid-storm, then recovers the directory in-process
// and verifies that every acknowledged commit survived — the durability
// contract, checked against an actual dead process rather than an
// injected fault. A second server launch on the same directory then
// proves the recovery path of the binary itself.
//
// The server binary is located via $MAMMOTH_SERVER_BIN or the standard
// build layout; the suite skips (not fails) when it isn't built.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/table.h"
#include "server/client.h"
#include "wal/db.h"

namespace mammoth::wal {
namespace {

namespace fs = std::filesystem;

std::string FindServerBinary() {
  if (const char* env = std::getenv("MAMMOTH_SERVER_BIN")) {
    if (fs::exists(env)) return env;
  }
  // ctest runs from build/tests; a manual run may sit in build/ or the
  // repo root.
  for (const char* candidate :
       {"../examples/mammoth_server", "examples/mammoth_server",
        "build/examples/mammoth_server"}) {
    if (fs::exists(candidate)) return candidate;
  }
  return "";
}

struct ServerProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
  uint16_t port = 0;
};

/// Forks + execs the server on `db_dir` with an ephemeral port, reads
/// its stdout until the listening line reveals the port. Returns a
/// default ServerProcess (pid -1) on any failure.
ServerProcess LaunchServer(const std::string& binary,
                           const std::string& db_dir) {
  ServerProcess proc;
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return proc;
  const pid_t pid = fork();
  if (pid < 0) {
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    return proc;
  }
  if (pid == 0) {
    dup2(pipe_fds[1], STDOUT_FILENO);
    dup2(pipe_fds[1], STDERR_FILENO);
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    // Small checkpoint trigger so the storm crosses checkpoints too.
    execl(binary.c_str(), binary.c_str(), "--db-dir", db_dir.c_str(),
          "--port", "0", "--checkpoint-bytes", "65536",
          static_cast<char*>(nullptr));
    std::perror("exec mammoth_server");
    _exit(127);
  }
  close(pipe_fds[1]);
  proc.pid = pid;
  proc.stdout_fd = pipe_fds[0];

  // Read the startup banner line by line until the port shows up.
  std::string acc;
  char buf[256];
  while (acc.find("listening on") == std::string::npos) {
    const ssize_t n = read(proc.stdout_fd, buf, sizeof buf);
    if (n <= 0) {  // died before listening
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      close(proc.stdout_fd);
      return {};
    }
    acc.append(buf, static_cast<size_t>(n));
  }
  const size_t at = acc.find("listening on ");
  unsigned port = 0;
  if (std::sscanf(acc.c_str() + at, "listening on %*[^:]:%u", &port) != 1 ||
      port == 0) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    close(proc.stdout_fd);
    return {};
  }
  proc.port = static_cast<uint16_t>(port);
  return proc;
}

void ReapServer(ServerProcess* proc) {
  if (proc->pid > 0) {
    waitpid(proc->pid, nullptr, 0);
    proc->pid = -1;
  }
  if (proc->stdout_fd >= 0) {
    close(proc->stdout_fd);
    proc->stdout_fd = -1;
  }
}

TEST(WalCrashTest, Kill9MidCommitStormKeepsEveryAckedCommit) {
  const std::string binary = FindServerBinary();
  if (binary.empty()) {
    GTEST_SKIP() << "mammoth_server binary not found "
                    "(set MAMMOTH_SERVER_BIN)";
  }
  const std::string dir = ::testing::TempDir() + "/mammoth_crash_storm";
  fs::remove_all(dir);

  ServerProcess proc = LaunchServer(binary, dir);
  ASSERT_GT(proc.pid, 0) << "server failed to launch";
  ASSERT_GT(proc.port, 0);

  {
    auto admin = server::Client::Connect("127.0.0.1", proc.port);
    ASSERT_TRUE(admin.ok()) << admin.status().ToString();
    ASSERT_TRUE(admin->Query("CREATE TABLE t (v BIGINT)").ok());
  }

  // The storm: every thread streams single-row inserts of unique values
  // and records which ones the server acknowledged, until the kill -9
  // severs its connection.
  constexpr int kThreads = 6;
  std::vector<std::thread> writers;
  std::vector<std::vector<int64_t>> acked(kThreads);
  std::atomic<uint64_t> total_acked{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      auto client = server::Client::Connect("127.0.0.1", proc.port);
      if (!client.ok()) return;
      for (int64_t j = 0;; ++j) {
        const int64_t v = static_cast<int64_t>(t) * 1000000 + j;
        auto r = client->Query("INSERT INTO t VALUES (" +
                               std::to_string(v) + ")");
        if (!r.ok()) return;  // the server is gone
        acked[t].push_back(v);
        ++total_acked;
      }
    });
  }

  // Let commits (and at least one checkpoint, usually) accumulate, then
  // pull the plug with no chance to flush anything.
  while (total_acked.load() < 200) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(kill(proc.pid, SIGKILL), 0);
  for (auto& w : writers) w.join();
  ReapServer(&proc);

  // Recover in-process: every acked value must be there, exactly once,
  // and nothing that was never inserted may appear.
  Catalog recovered;
  auto info = Recover(dir, &recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto table = recovered.Get("t");
  ASSERT_TRUE(table.ok());
  auto col = (*table)->ScanColumn("v");
  ASSERT_TRUE(col.ok());
  const BatPtr live = (*table)->LiveCandidates();

  std::set<int64_t> present;
  const size_t nrows = (*table)->VisibleRowCount();
  for (size_t i = 0; i < nrows; ++i) {
    const size_t pos = live ? static_cast<size_t>(live->OidAt(i)) : i;
    const int64_t v = (*col)->ValueAt<int64_t>(pos);
    EXPECT_TRUE(present.insert(v).second) << "duplicate row " << v;
  }
  size_t acked_total = 0;
  for (int t = 0; t < kThreads; ++t) {
    acked_total += acked[t].size();
    for (int64_t v : acked[t]) {
      EXPECT_TRUE(present.count(v)) << "acked commit lost: " << v;
    }
  }
  // Unacked in-flight inserts may legitimately have reached the disk;
  // anything recovered must at least be a value some thread attempted.
  EXPECT_GE(present.size(), acked_total);
  for (int64_t v : present) {
    const int64_t t = v / 1000000;
    ASSERT_TRUE(t >= 0 && t < kThreads) << "impossible value " << v;
    EXPECT_LT(v % 1000000, static_cast<int64_t>(acked[t].size()) + 2)
        << "value " << v << " was never attempted";
  }

  // Double recovery is bit-identical (replay idempotence).
  Catalog again;
  ASSERT_TRUE(Recover(dir, &again).ok());
  EXPECT_TRUE(CompareCatalogs(recovered, again).ok());

  // Finally, the binary itself must come back up on the scarred
  // directory and serve the recovered rows.
  ServerProcess proc2 = LaunchServer(binary, dir);
  ASSERT_GT(proc2.pid, 0) << "server failed to restart after crash";
  {
    auto client = server::Client::Connect("127.0.0.1", proc2.port);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    auto r = client->Query("SELECT v FROM t");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->RowCount(), present.size());
  }
  kill(proc2.pid, SIGTERM);
  ReapServer(&proc2);
  fs::remove_all(dir);
}

// Multi-statement transaction storm under kill -9: each writer runs
// BEGIN / three INSERTs / COMMIT batches on its own table (one WAL
// Begin…Commit batch per transaction). The recovery contract is
// atomicity on top of durability: every acked COMMIT is fully present,
// every recovered batch is complete (never a partial transaction), and
// transactions still open at the kill — inserts done, COMMIT never
// issued — are fully absent, because nothing of a transaction reaches
// the log before COMMIT.
TEST(WalCrashTest, Kill9MidTxnStormCommitsAreAtomic) {
  const std::string binary = FindServerBinary();
  if (binary.empty()) {
    GTEST_SKIP() << "mammoth_server binary not found "
                    "(set MAMMOTH_SERVER_BIN)";
  }
  const std::string dir = ::testing::TempDir() + "/mammoth_crash_txn";
  fs::remove_all(dir);

  ServerProcess proc = LaunchServer(binary, dir);
  ASSERT_GT(proc.pid, 0) << "server failed to launch";
  ASSERT_GT(proc.port, 0);

  constexpr int kThreads = 4;
  constexpr int kBatch = 3;  // statements per transaction
  {
    auto admin = server::Client::Connect("127.0.0.1", proc.port);
    ASSERT_TRUE(admin.ok()) << admin.status().ToString();
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(admin
                      ->Query("CREATE TABLE w" + std::to_string(t) +
                              " (v BIGINT)")
                      .ok());
    }
  }

  // Per thread: batches are numbered 0.. and acked as a prefix; a batch
  // counts as "commit sent" the moment Commit() goes on the wire (it may
  // then land fully or not at all, never partially) and as "acked" when
  // the COMMIT response came back ok.
  std::vector<std::thread> writers;
  std::vector<int64_t> commit_sent(kThreads, 0);
  std::vector<int64_t> commit_acked(kThreads, 0);
  std::atomic<uint64_t> total_acked{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      auto client = server::Client::Connect("127.0.0.1", proc.port);
      if (!client.ok()) return;
      const std::string table = "w" + std::to_string(t);
      for (int64_t j = 0;; ++j) {
        if (!client->Begin().ok()) return;
        for (int i = 0; i < kBatch; ++i) {
          const int64_t v = j * kBatch + i;
          if (!client->Query("INSERT INTO " + table + " VALUES (" +
                             std::to_string(v) + ")")
                   .ok()) {
            return;  // killed mid-transaction: batch j must not survive
          }
        }
        commit_sent[t] = j + 1;
        if (!client->Commit().ok()) return;  // batch j is now ambiguous
        commit_acked[t] = j + 1;
        ++total_acked;
      }
    });
  }

  while (total_acked.load() < 80) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(kill(proc.pid, SIGKILL), 0);
  for (auto& w : writers) w.join();
  ReapServer(&proc);

  Catalog recovered;
  auto info = Recover(dir, &recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  size_t total_rows = 0;
  for (int t = 0; t < kThreads; ++t) {
    auto table = recovered.Get("w" + std::to_string(t));
    ASSERT_TRUE(table.ok());
    auto col = (*table)->ScanColumn("v");
    ASSERT_TRUE(col.ok());
    const BatPtr live = (*table)->LiveCandidates();
    std::set<int64_t> present;
    const size_t nrows = (*table)->VisibleRowCount();
    total_rows += nrows;
    for (size_t i = 0; i < nrows; ++i) {
      const size_t pos = live ? static_cast<size_t>(live->OidAt(i)) : i;
      const int64_t v = (*col)->ValueAt<int64_t>(pos);
      EXPECT_TRUE(present.insert(v).second)
          << "duplicate row " << v << " in w" << t;
    }
    // Acked transactions: fully present.
    for (int64_t j = 0; j < commit_acked[t]; ++j) {
      for (int i = 0; i < kBatch; ++i) {
        EXPECT_TRUE(present.count(j * kBatch + i))
            << "acked txn " << j << " lost row " << i << " in w" << t;
      }
    }
    // Atomicity: whatever is present forms complete transactions whose
    // COMMIT was at least sent; an open transaction left nothing.
    for (int64_t v : present) {
      const int64_t j = v / kBatch;
      EXPECT_LT(j, commit_sent[t])
          << "row " << v << " of w" << t << " from a txn never committed";
      for (int i = 0; i < kBatch; ++i) {
        EXPECT_TRUE(present.count(j * kBatch + i))
            << "partial txn " << j << " recovered in w" << t;
      }
    }
  }
  ASSERT_GT(total_rows, 0u);

  // Replay idempotence, then the binary itself on the scarred directory.
  Catalog again;
  ASSERT_TRUE(Recover(dir, &again).ok());
  EXPECT_TRUE(CompareCatalogs(recovered, again).ok());
  ServerProcess proc2 = LaunchServer(binary, dir);
  ASSERT_GT(proc2.pid, 0) << "server failed to restart after crash";
  {
    auto client = server::Client::Connect("127.0.0.1", proc2.port);
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    size_t served = 0;
    for (int t = 0; t < kThreads; ++t) {
      auto r = client->Query("SELECT v FROM w" + std::to_string(t));
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      served += r->RowCount();
    }
    EXPECT_EQ(served, total_rows);
  }
  kill(proc2.pid, SIGTERM);
  ReapServer(&proc2);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mammoth::wal
