#include "recycle/recycler.h"

#include <gtest/gtest.h>

#include "mal/interpreter.h"
#include "sql/engine.h"

namespace mammoth::recycle {
namespace {

using mal::Interpreter;
using mal::OpCode;
using mal::Program;

CachedVal MakeVal(size_t n) {
  CachedVal v;
  v.bat = Bat::New(PhysType::kInt32);
  v.bat->Resize(n);
  return v;
}

TEST(RecyclerTest, ExactHitAfterInsert) {
  Recycler rec(1 << 20);
  std::vector<CachedVal> outs;
  EXPECT_FALSE(rec.Lookup(42, &outs));
  rec.Insert(42, {MakeVal(10)}, 0.001);
  ASSERT_TRUE(rec.Lookup(42, &outs));
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0].bat->Count(), 10u);
  EXPECT_EQ(rec.stats().hits, 1u);
  EXPECT_EQ(rec.stats().misses, 1u);
}

TEST(RecyclerTest, CapacityEvicts) {
  Recycler rec(4096, Policy::kLru);
  // Each 256-int entry is ~1KB; a 4KB budget holds only a few.
  for (uint64_t sig = 0; sig < 32; ++sig) {
    rec.Insert(sig, {MakeVal(256)}, 0.001);
  }
  EXPECT_GT(rec.stats().evictions, 20u);
  EXPECT_LE(rec.stats().bytes, 4096u);
}

TEST(RecyclerTest, LruKeepsRecentlyUsed) {
  Recycler rec(3000, Policy::kLru);  // fits two ~1KB entries
  rec.Insert(1, {MakeVal(256)}, 0.1);
  rec.Insert(2, {MakeVal(256)}, 0.1);
  std::vector<CachedVal> outs;
  ASSERT_TRUE(rec.Lookup(1, &outs));  // touch 1 so 2 becomes LRU
  rec.Insert(3, {MakeVal(256)}, 0.1);  // evicts 2
  EXPECT_TRUE(rec.Lookup(1, &outs));
  EXPECT_FALSE(rec.Lookup(2, &outs));
  EXPECT_TRUE(rec.Lookup(3, &outs));
}

TEST(RecyclerTest, BenefitKeepsExpensiveEntries) {
  Recycler rec(3000, Policy::kBenefit);
  rec.Insert(1, {MakeVal(256)}, 10.0);   // expensive to recompute
  rec.Insert(2, {MakeVal(256)}, 0.0001);  // cheap
  rec.Insert(3, {MakeVal(256)}, 1.0);    // evicts the cheap one
  std::vector<CachedVal> outs;
  EXPECT_TRUE(rec.Lookup(1, &outs));
  EXPECT_FALSE(rec.Lookup(2, &outs));
}

TEST(RecyclerTest, OversizedEntryNotCached) {
  Recycler rec(128);
  rec.Insert(7, {MakeVal(10000)}, 1.0);
  std::vector<CachedVal> outs;
  EXPECT_FALSE(rec.Lookup(7, &outs));
  EXPECT_EQ(rec.stats().entries, 0u);
}

TEST(RecyclerTest, RangeSubsumption) {
  Recycler rec(1 << 20);
  CachedVal wide = MakeVal(100);
  rec.Insert(99, {wide}, 0.5);
  rec.RegisterRange(/*base_sig=*/7, 0.0, 100.0, /*sig=*/99);
  BatPtr cands;
  EXPECT_TRUE(rec.LookupRangeSuperset(7, 10.0, 50.0, &cands));
  EXPECT_EQ(cands.get(), wide.bat.get());
  // Not covered: outside or different base.
  EXPECT_FALSE(rec.LookupRangeSuperset(7, -5.0, 50.0, &cands));
  EXPECT_FALSE(rec.LookupRangeSuperset(8, 10.0, 50.0, &cands));
  EXPECT_EQ(rec.stats().subsumption_hits, 1u);
}

TEST(RecyclerTest, TightestSupersetPreferred) {
  Recycler rec(1 << 20);
  CachedVal wide = MakeVal(100);
  CachedVal narrow = MakeVal(10);
  rec.Insert(1, {wide}, 0.5);
  rec.Insert(2, {narrow}, 0.5);
  rec.RegisterRange(7, 0.0, 1000.0, 1);
  rec.RegisterRange(7, 0.0, 100.0, 2);
  BatPtr cands;
  ASSERT_TRUE(rec.LookupRangeSuperset(7, 10.0, 50.0, &cands));
  EXPECT_EQ(cands.get(), narrow.bat.get());
}

TEST(RecyclerTest, ClearDropsEverything) {
  Recycler rec(1 << 20);
  rec.Insert(1, {MakeVal(10)}, 0.1);
  rec.RegisterRange(7, 0, 10, 1);
  rec.Clear();
  std::vector<CachedVal> outs;
  EXPECT_FALSE(rec.Lookup(1, &outs));
  BatPtr cands;
  EXPECT_FALSE(rec.LookupRangeSuperset(7, 1, 2, &cands));
  EXPECT_EQ(rec.stats().bytes, 0u);
}

// ------------------------------------------- Integration with the MAL VM --

std::shared_ptr<Catalog> BigCatalog() {
  auto catalog = std::make_shared<Catalog>();
  auto t = Table::Create("facts", {{"k", PhysType::kInt32},
                                   {"v", PhysType::kDouble}});
  EXPECT_TRUE(t.ok());
  for (int i = 0; i < 20000; ++i) {
    EXPECT_TRUE(
        (*t)->Insert({Value::Int(i % 1000), Value::Real(i * 0.5)}).ok());
  }
  EXPECT_TRUE(catalog->Register(*t).ok());
  return catalog;
}

Program SumWhereK(int lo, int hi) {
  Program p;
  const int k = p.Bind("facts", "k");
  const int cands = p.BindCandidates("facts");
  const int sel = p.RangeSelect(k, cands, Value::Int(lo), Value::Int(hi));
  const int v = p.Bind("facts", "v");
  const int proj = p.Project(sel, v);
  const int sum = p.Aggr(OpCode::kAggrSum, proj, -1, -1);
  p.Result(sum, "sum");
  return p;
}

TEST(RecyclerIntegrationTest, RepeatedQueryServedFromCache) {
  auto catalog = BigCatalog();
  Recycler rec(64 << 20);
  Interpreter interp(catalog.get(), &rec);

  Program p1 = SumWhereK(100, 200);
  mal::RunStats s1, s2;
  auto r1 = interp.Run(p1, &s1);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(s1.recycled, 0u);

  Program p2 = SumWhereK(100, 200);
  auto r2 = interp.Run(p2, &s2);
  ASSERT_TRUE(r2.ok());
  EXPECT_GT(s2.recycled, 0u);
  EXPECT_DOUBLE_EQ(r1->columns[0]->ValueAt<double>(0),
                   r2->columns[0]->ValueAt<double>(0));
}

TEST(RecyclerIntegrationTest, SubsumptionAnswersNarrowerRange) {
  auto catalog = BigCatalog();
  Recycler rec(64 << 20);
  Interpreter interp(catalog.get(), &rec);

  auto wide = interp.Run(SumWhereK(0, 999));
  ASSERT_TRUE(wide.ok());
  const size_t subs_before = rec.stats().subsumption_hits;
  auto narrow = interp.Run(SumWhereK(300, 310));
  ASSERT_TRUE(narrow.ok());
  EXPECT_GT(rec.stats().subsumption_hits, subs_before);

  // And the subsumed answer matches a recycler-free run.
  Interpreter plain(catalog.get());
  auto want = plain.Run(SumWhereK(300, 310));
  ASSERT_TRUE(want.ok());
  EXPECT_DOUBLE_EQ(narrow->columns[0]->ValueAt<double>(0),
                   want->columns[0]->ValueAt<double>(0));
}

TEST(RecyclerIntegrationTest, UpdateInvalidatesViaVersion) {
  auto catalog = BigCatalog();
  Recycler rec(64 << 20);
  Interpreter interp(catalog.get(), &rec);

  auto r1 = interp.Run(SumWhereK(100, 200));
  ASSERT_TRUE(r1.ok());
  // Mutate the table: bind signatures change, cache entries become
  // unreachable (stale results are never served).
  auto t = catalog->Get("facts");
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE((*t)->Insert({Value::Int(150), Value::Real(1e6)}).ok());

  mal::RunStats s2;
  auto r2 = interp.Run(SumWhereK(100, 200), &s2);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(s2.recycled, 0u);  // nothing stale reused
  EXPECT_NEAR(r2->columns[0]->ValueAt<double>(0),
              r1->columns[0]->ValueAt<double>(0) + 1e6, 1e-3);
}

// ------------------------------------- MVCC keying through the SQL engine --

// Since visibility moved into bind signatures (VisibleStateKey), DML no
// longer flushes the recycler wholesale: a writer on one table must not
// evict a reader's cached intermediates on an unrelated table.
TEST(RecyclerMvccTest, WriterDoesNotEvictUnrelatedTableEntries) {
  sql::Engine engine;
  Recycler rec(64 << 20);
  engine.AttachRecycler(&rec);
  ASSERT_TRUE(engine.Execute("CREATE TABLE hot (k INT, v DOUBLE)").ok());
  ASSERT_TRUE(engine.Execute("CREATE TABLE churn (k INT)").ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(engine
                    .Execute("INSERT INTO hot VALUES (" +
                             std::to_string(i % 100) + ", " +
                             std::to_string(i * 0.5) + ")")
                    .ok());
  }
  const std::string q = "SELECT sum(v) FROM hot WHERE k >= 10 AND k <= 50";
  ASSERT_TRUE(engine.Execute(q).ok());  // warm the cache
  const uint64_t hits_before = engine.recycler_stats().hits;
  ASSERT_TRUE(engine.Execute(q).ok());
  const uint64_t hits_warm = engine.recycler_stats().hits;
  EXPECT_GT(hits_warm, hits_before) << "repeat query not served from cache";
  // A writer churns the *other* table…
  ASSERT_TRUE(engine.Execute("INSERT INTO churn VALUES (1)").ok());
  ASSERT_TRUE(engine.Execute("DELETE FROM churn WHERE k = 1").ok());
  // …and the hot table's entries are still reusable.
  ASSERT_TRUE(engine.Execute(q).ok());
  EXPECT_GT(engine.recycler_stats().hits, hits_warm)
      << "unrelated DML evicted the reader's cache entries";
}

// Pending (uncommitted) rows change only the writing session's bind
// signature: the writer never reuses pre-write entries for its own reads,
// other sessions never see entries polluted by pending rows, and after
// COMMIT the new version gets fresh signatures (stale results unreachable).
TEST(RecyclerMvccTest, SnapshotsKeyCacheEntriesSeparately) {
  sql::Engine engine;
  Recycler rec(64 << 20);
  engine.AttachRecycler(&rec);
  ASSERT_TRUE(engine.Execute("CREATE TABLE t (k INT, v BIGINT)").ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(engine
                    .Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                             ", 1)")
                    .ok());
  }
  const std::string q = "SELECT sum(v) FROM t WHERE k >= 0";
  auto base = engine.Execute(q);
  ASSERT_TRUE(base.ok());
  EXPECT_EQ(base->columns[0]->ValueAt<int64_t>(0), 100);

  sql::SessionPtr writer = engine.CreateSession();
  ASSERT_TRUE(engine.ExecuteSession(writer, "BEGIN").ok());
  ASSERT_TRUE(
      engine.ExecuteSession(writer, "INSERT INTO t VALUES (100, 1)").ok());
  // The writer's own read reflects its pending row (not the cached 100)…
  auto own = engine.ExecuteSession(writer, q);
  ASSERT_TRUE(own.ok());
  EXPECT_EQ(own->columns[0]->ValueAt<int64_t>(0), 101);
  // …while an auto-commit reader still gets the committed image, and may
  // reuse the pre-write cache entry (same visible version).
  auto other = engine.Execute(q);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(other->columns[0]->ValueAt<int64_t>(0), 100);
  ASSERT_TRUE(engine.ExecuteSession(writer, "COMMIT").ok());
  // Post-commit: new version, no stale reuse.
  auto after = engine.Execute(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->columns[0]->ValueAt<int64_t>(0), 101);
}

}  // namespace
}  // namespace mammoth::recycle
