// Optimizer soundness fuzz: random (but type-correct) MAL programs must
// produce bit-identical results with and without the optimizer pipeline.
// This catches unsound rewrites (bad fusion, wrong CSE aliasing, overeager
// DCE) far beyond what the hand-written cases cover.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "mal/interpreter.h"
#include "mal/optimizer.h"
#include "mal/parser.h"

namespace mammoth::mal {
namespace {

std::shared_ptr<Catalog> FuzzCatalog() {
  auto catalog = std::make_shared<Catalog>();
  auto t = Table::Create("t", {{"a", PhysType::kInt32},
                               {"b", PhysType::kInt32},
                               {"c", PhysType::kDouble}});
  EXPECT_TRUE(t.ok());
  Rng rng(1234);
  for (int i = 0; i < 3000; ++i) {
    EXPECT_TRUE((*t)
                    ->Insert({Value::Int(rng.Uniform(100)),
                              Value::Int(rng.Uniform(1000)),
                              Value::Real(rng.NextDouble())})
                    .ok());
  }
  EXPECT_TRUE(catalog->Register(*t).ok());
  return catalog;
}

/// Builds a random type-correct program. Variables are tracked by kind so
/// every generated instruction is valid.
Program RandomProgram(uint64_t seed) {
  Rng rng(seed);
  Program p;

  std::vector<int> cands;    // oid bats usable as candidates
  std::vector<int> aligned;  // value bats aligned with their own head
  std::vector<std::pair<int, std::pair<int, int>>> grouped;  // (g,(e,n))

  const char* columns[] = {"a", "b", "c"};
  // Seed pool: a few binds and candidate lists with selections.
  const int tid = p.BindCandidates("t");
  cands.push_back(tid);
  int col_a = p.Bind("t", "a");
  int col_b = p.Bind("t", "b");
  int col_c = p.Bind("t", "c");
  aligned.push_back(col_a);
  aligned.push_back(col_b);
  aligned.push_back(col_c);

  const size_t steps = 4 + rng.Uniform(12);
  for (size_t s = 0; s < steps; ++s) {
    switch (rng.Uniform(7)) {
      case 0: {  // theta select over a bound column
        const int col = p.Bind("t", columns[rng.Uniform(3)]);
        const int base = cands[rng.Uniform(cands.size())];
        const auto op = static_cast<CmpOp>(rng.Uniform(6));
        cands.push_back(p.ThetaSelect(
            col, base, Value::Int(static_cast<int64_t>(rng.Uniform(800))),
            op));
        break;
      }
      case 1: {  // range select
        const int col = p.Bind("t", columns[rng.Uniform(2)]);  // int cols
        const int base = cands[rng.Uniform(cands.size())];
        const int64_t lo = static_cast<int64_t>(rng.Uniform(500));
        cands.push_back(p.RangeSelect(
            col, base, Value::Int(lo),
            Value::Int(lo + static_cast<int64_t>(rng.Uniform(400)))));
        break;
      }
      case 2: {  // ge+le pair (fusion bait), sometimes sharing the first
        const int col = p.Bind("t", columns[rng.Uniform(2)]);
        const int base = cands[rng.Uniform(cands.size())];
        const int64_t lo = static_cast<int64_t>(rng.Uniform(500));
        const int ge = p.ThetaSelect(col, base, Value::Int(lo), CmpOp::kGe);
        const int le = p.ThetaSelect(
            col, ge, Value::Int(lo + static_cast<int64_t>(rng.Uniform(300))),
            CmpOp::kLe);
        cands.push_back(le);
        if (rng.Uniform(2) == 0) cands.push_back(ge);  // extra consumer
        break;
      }
      case 3: {  // projection through candidates
        const int col = p.Bind("t", columns[rng.Uniform(3)]);
        const int base = cands[rng.Uniform(cands.size())];
        aligned.push_back(p.Project(base, col));
        break;
      }
      case 4: {  // arithmetic on a projected/bound value bat
        const int v = aligned[rng.Uniform(aligned.size())];
        const auto op = static_cast<algebra::ArithOp>(rng.Uniform(3));
        aligned.push_back(p.CalcConst(
            op, v, Value::Int(1 + static_cast<int64_t>(rng.Uniform(9)))));
        break;
      }
      case 5: {  // grouping over a value bat
        const int v = aligned[rng.Uniform(aligned.size())];
        auto [g, e, n] = p.Group(v);
        grouped.push_back({g, {e, n}});
        break;
      }
      case 6: {  // duplicate an existing instruction shape (CSE bait)
        const int col = p.Bind("t", "a");
        const int base = cands[rng.Uniform(cands.size())];
        cands.push_back(
            p.ThetaSelect(col, base, Value::Int(50), CmpOp::kLt));
        break;
      }
    }
  }

  // Sinks: a few value bats, an aggregate if grouping happened.
  const size_t nresults = 1 + rng.Uniform(3);
  for (size_t r = 0; r < nresults; ++r) {
    p.Result(aligned[rng.Uniform(aligned.size())],
             "col" + std::to_string(r));
  }
  if (!grouped.empty()) {
    const auto& [g, en] = grouped[rng.Uniform(grouped.size())];
    const int v = aligned[rng.Uniform(aligned.size())];
    // Aggregate over a value bat aligned with the grouped one only when
    // lengths match; kAggrCount over the groups var is always safe.
    (void)v;
    p.Result(p.Aggr(OpCode::kAggrCount, g, g, en.second), "counts");
  }
  return p;
}

class OptimizerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OptimizerFuzzTest, OptimizedEqualsPlain) {
  auto catalog = FuzzCatalog();
  Program plain = RandomProgram(GetParam());
  // Round-trip through the MAL text form too: parse(print(p)) must behave
  // identically.
  auto reparsed = ParseMal(plain.ToString());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  Program optimized = *reparsed;
  OptimizePipeline(&optimized);

  Interpreter interp(catalog.get());
  auto r1 = interp.Run(plain);
  auto r2 = interp.Run(optimized);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  ASSERT_EQ(r1->names, r2->names);
  ASSERT_EQ(r1->columns.size(), r2->columns.size());
  for (size_t c = 0; c < r1->columns.size(); ++c) {
    const BatPtr& a = r1->columns[c];
    const BatPtr& b = r2->columns[c];
    ASSERT_EQ(a->Count(), b->Count()) << "column " << c;
    ASSERT_EQ(a->type(), b->type()) << "column " << c;
    for (size_t i = 0; i < a->Count(); ++i) {
      switch (a->type()) {
        case PhysType::kOid:
          ASSERT_EQ(a->OidAt(i), b->OidAt(i)) << c << ":" << i;
          break;
        case PhysType::kDouble:
          ASSERT_DOUBLE_EQ(a->ValueAt<double>(i), b->ValueAt<double>(i))
              << c << ":" << i;
          break;
        case PhysType::kInt64:
          ASSERT_EQ(a->ValueAt<int64_t>(i), b->ValueAt<int64_t>(i))
              << c << ":" << i;
          break;
        case PhysType::kInt32:
          ASSERT_EQ(a->ValueAt<int32_t>(i), b->ValueAt<int32_t>(i))
              << c << ":" << i;
          break;
        default:
          break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizerFuzzTest,
                         ::testing::Range(uint64_t{1}, uint64_t{41}));

}  // namespace
}  // namespace mammoth::mal
