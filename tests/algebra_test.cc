#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "core/calc.h"
#include "core/group.h"
#include "core/join.h"
#include "core/project.h"
#include "core/select.h"
#include "core/sort.h"

namespace mammoth::algebra {
namespace {

std::vector<Oid> OidsOf(const BatPtr& b) {
  std::vector<Oid> out;
  out.reserve(b->Count());
  for (size_t i = 0; i < b->Count(); ++i) out.push_back(b->OidAt(i));
  return out;
}

// ---------------------------------------------------------------- Select --

TEST(SelectTest, PaperExampleSelectEq1927) {
  // Figure 1 of the paper: select(age, 1927) over {1907,1927,1927,1968}
  // yields head oids {1,2}.
  BatPtr age = MakeBat<int32_t>({1907, 1927, 1927, 1968});
  auto r = ThetaSelect(age, nullptr, Value::Int(1927), CmpOp::kEq);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(OidsOf(*r), (std::vector<Oid>{1, 2}));
  EXPECT_TRUE((*r)->props().sorted);
  EXPECT_TRUE((*r)->props().key);
}

TEST(SelectTest, AllCmpOps) {
  BatPtr b = MakeBat<int32_t>({5, 1, 3, 5, 9});
  struct Case {
    CmpOp op;
    std::vector<Oid> expect;
  };
  const Case cases[] = {
      {CmpOp::kLt, {1, 2}},       {CmpOp::kLe, {0, 1, 2, 3}},
      {CmpOp::kEq, {0, 3}},       {CmpOp::kNe, {1, 2, 4}},
      {CmpOp::kGe, {0, 3, 4}},    {CmpOp::kGt, {4}},
  };
  for (const Case& c : cases) {
    auto r = ThetaSelect(b, nullptr, Value::Int(5), c.op);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(OidsOf(*r), c.expect) << CmpOpName(c.op);
  }
}

TEST(SelectTest, SortedInputUsesDenseResult) {
  BatPtr b = MakeBat<int32_t>({1, 3, 5, 7, 9, 11});
  b->DeriveProps();
  ASSERT_TRUE(b->props().sorted);
  auto r = RangeSelect(b, nullptr, Value::Int(4), Value::Int(10));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->IsDenseTail()) << "sorted select should be dense";
  EXPECT_EQ(OidsOf(*r), (std::vector<Oid>{2, 3, 4}));
}

TEST(SelectTest, SortedThetaGtBinarySearch) {
  BatPtr b = MakeBat<int32_t>({1, 3, 5, 7});
  b->DeriveProps();
  auto r = ThetaSelect(b, nullptr, Value::Int(3), CmpOp::kGt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(OidsOf(*r), (std::vector<Oid>{2, 3}));
}

TEST(SelectTest, CandidateListRestricts) {
  BatPtr b = MakeBat<int32_t>({5, 5, 5, 5, 5});
  BatPtr cands = MakeBat<Oid>({Oid{1}, Oid{3}});
  cands->mutable_props().sorted = true;
  auto r = ThetaSelect(b, cands, Value::Int(5), CmpOp::kEq);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(OidsOf(*r), (std::vector<Oid>{1, 3}));
}

TEST(SelectTest, DenseCandidateListRestricts) {
  BatPtr b = MakeBat<int32_t>({7, 7, 7, 7, 7, 7});
  BatPtr cands = Bat::NewDense(2, 3);  // positions 2,3,4
  auto r = ThetaSelect(b, cands, Value::Int(7), CmpOp::kEq);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(OidsOf(*r), (std::vector<Oid>{2, 3, 4}));
}

TEST(SelectTest, RangeAntiSelect) {
  BatPtr b = MakeBat<int32_t>({1, 5, 10, 15, 20});
  auto r = RangeSelect(b, nullptr, Value::Int(5), Value::Int(15), true, true,
                       /*anti=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(OidsOf(*r), (std::vector<Oid>{0, 4}));
}

TEST(SelectTest, EmptyCandidateListYieldsEmptyResult) {
  BatPtr b = MakeBat<int32_t>({1, 2, 3, 4});
  BatPtr cands = Bat::New(PhysType::kOid);  // empty candidate list
  cands->mutable_props().sorted = true;
  cands->mutable_props().key = true;
  auto r = ThetaSelect(b, cands, Value::Int(2), CmpOp::kGe);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->Count(), 0u);
  EXPECT_TRUE((*r)->props().sorted);
  EXPECT_TRUE((*r)->props().key);
  auto rr = RangeSelect(b, cands, Value::Int(1), Value::Int(4));
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ((*rr)->Count(), 0u);
}

TEST(SelectTest, AntiRangeWithNilBounds) {
  BatPtr b = MakeBat<int32_t>({1, 5, 10, 15, 20});
  // anti with both bounds nil: nothing is outside (-inf, +inf).
  auto none = RangeSelect(b, nullptr, Value::Nil(), Value::Nil(), true, true,
                          /*anti=*/true);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ((*none)->Count(), 0u);
  // anti with nil hi: complement of x >= 5 is x < 5.
  auto below = RangeSelect(b, nullptr, Value::Int(5), Value::Nil(), true,
                           true, /*anti=*/true);
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(OidsOf(*below), (std::vector<Oid>{0}));
  // anti with nil lo: complement of x <= 15 is x > 15.
  auto above = RangeSelect(b, nullptr, Value::Nil(), Value::Int(15), true,
                           true, /*anti=*/true);
  ASSERT_TRUE(above.ok());
  EXPECT_EQ(OidsOf(*above), (std::vector<Oid>{4}));
}

TEST(SelectTest, SortedTailFastPathReturnsDenseOidBat) {
  BatPtr b = MakeBat<int32_t>({2, 4, 6, 8, 10, 12});
  b->DeriveProps();
  ASSERT_TRUE(b->props().sorted);
  // Theta ops on a sorted tail come from two binary searches; the result
  // carries no payload at all.
  auto ge = ThetaSelect(b, nullptr, Value::Int(6), CmpOp::kGe);
  ASSERT_TRUE(ge.ok());
  EXPECT_TRUE((*ge)->IsDenseTail());
  EXPECT_EQ((*ge)->PayloadBytes(), 0u);
  EXPECT_EQ((*ge)->tseqbase(), Oid{2});
  EXPECT_EQ(OidsOf(*ge), (std::vector<Oid>{2, 3, 4, 5}));
  // A miss inside the domain still returns a (zero-length) dense BAT.
  auto miss = ThetaSelect(b, nullptr, Value::Int(7), CmpOp::kEq);
  ASSERT_TRUE(miss.ok());
  EXPECT_TRUE((*miss)->IsDenseTail());
  EXPECT_EQ((*miss)->Count(), 0u);
  // Range over a non-zero hseqbase keeps OIDs in head space.
  b->set_hseqbase(100);
  auto range = RangeSelect(b, nullptr, Value::Int(4), Value::Int(9));
  ASSERT_TRUE(range.ok());
  EXPECT_TRUE((*range)->IsDenseTail());
  EXPECT_EQ(OidsOf(*range), (std::vector<Oid>{101, 102, 103}));
}

TEST(SelectTest, RangeOpenBounds) {
  BatPtr b = MakeBat<int32_t>({1, 5, 10});
  auto lo_only = RangeSelect(b, nullptr, Value::Int(5), Value::Nil());
  ASSERT_TRUE(lo_only.ok());
  EXPECT_EQ(OidsOf(*lo_only), (std::vector<Oid>{1, 2}));
  auto hi_only = RangeSelect(b, nullptr, Value::Nil(), Value::Int(5), true,
                             /*hi_incl=*/false);
  ASSERT_TRUE(hi_only.ok());
  EXPECT_EQ(OidsOf(*hi_only), (std::vector<Oid>{0}));
}

TEST(SelectTest, StringEqualityViaInterning) {
  BatPtr names = MakeStringBat({"john", "roger", "bob", "john"});
  auto r = ThetaSelect(names, nullptr, Value::Str("john"), CmpOp::kEq);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(OidsOf(*r), (std::vector<Oid>{0, 3}));
  auto missing =
      ThetaSelect(names, nullptr, Value::Str("nosuch"), CmpOp::kEq);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ((*missing)->Count(), 0u);
}

TEST(SelectTest, StringOrdering) {
  BatPtr names = MakeStringBat({"ape", "zebra", "mole"});
  auto r = ThetaSelect(names, nullptr, Value::Str("mole"), CmpOp::kLe);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(OidsOf(*r), (std::vector<Oid>{0, 2}));
}

TEST(SelectTest, TypeMismatchIsError) {
  BatPtr b = MakeBat<int32_t>({1});
  EXPECT_FALSE(ThetaSelect(b, nullptr, Value::Str("x"), CmpOp::kEq).ok());
  BatPtr s = MakeStringBat({"x"});
  EXPECT_FALSE(ThetaSelect(s, nullptr, Value::Int(1), CmpOp::kEq).ok());
}

TEST(SelectTest, NonZeroHseqbaseOffsetsResults) {
  BatPtr b = MakeBat<int32_t>({4, 8, 4});
  b->set_hseqbase(100);
  auto r = ThetaSelect(b, nullptr, Value::Int(4), CmpOp::kEq);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(OidsOf(*r), (std::vector<Oid>{100, 102}));
}

// --------------------------------------------------------------- Project --

TEST(ProjectTest, FetchValuesByOid) {
  BatPtr values = MakeBat<int32_t>({10, 20, 30, 40});
  BatPtr oids = MakeBat<Oid>({Oid{3}, Oid{0}, Oid{3}});
  auto r = Project(oids, values);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ((*r)->Count(), 3u);
  EXPECT_EQ((*r)->ValueAt<int32_t>(0), 40);
  EXPECT_EQ((*r)->ValueAt<int32_t>(1), 10);
  EXPECT_EQ((*r)->ValueAt<int32_t>(2), 40);
}

TEST(ProjectTest, DenseOverDenseStaysDense) {
  BatPtr values = Bat::NewDense(1000, 100);
  BatPtr oids = Bat::NewDense(10, 5);
  auto r = Project(oids, values);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->IsDenseTail());
  EXPECT_EQ((*r)->OidAt(0), 1010u);
}

TEST(ProjectTest, StringsShareHeap) {
  BatPtr names = MakeStringBat({"a", "b", "c"});
  BatPtr oids = MakeBat<Oid>({Oid{2}, Oid{0}});
  auto r = Project(oids, names);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->heap().get(), names->heap().get());
  EXPECT_EQ((*r)->StringAt(0), "c");
  EXPECT_EQ((*r)->StringAt(1), "a");
}

TEST(ProjectTest, OutOfRangeOidRejected) {
  BatPtr values = MakeBat<int32_t>({1, 2});
  BatPtr oids = MakeBat<Oid>({Oid{5}});
  EXPECT_FALSE(Project(oids, values).ok());
}

TEST(ProjectTest, RespectsValueHseqbase) {
  BatPtr values = MakeBat<int32_t>({10, 20, 30});
  values->set_hseqbase(50);
  BatPtr oids = MakeBat<Oid>({Oid{51}});
  auto r = Project(oids, values);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->ValueAt<int32_t>(0), 20);
}

// ------------------------------------------------------------------ Join --

TEST(JoinTest, HashJoinBasic) {
  BatPtr l = MakeBat<int32_t>({1, 2, 3, 2});
  BatPtr r = MakeBat<int32_t>({2, 4, 1});
  auto jr = HashJoin(l, r);
  ASSERT_TRUE(jr.ok());
  // Matches: l0-r2 (1), l1-r0 (2), l3-r0 (2).
  ASSERT_EQ(jr->Count(), 3u);
  std::vector<std::pair<Oid, Oid>> pairs;
  for (size_t i = 0; i < jr->Count(); ++i) {
    pairs.emplace_back(jr->left->OidAt(i), jr->right->OidAt(i));
  }
  std::sort(pairs.begin(), pairs.end());
  EXPECT_EQ(pairs, (std::vector<std::pair<Oid, Oid>>{{0, 2}, {1, 0}, {3, 0}}));
}

TEST(JoinTest, MergeJoinMatchesHashJoinOnSortedData) {
  BatPtr l = MakeBat<int32_t>({1, 2, 2, 5, 9});
  BatPtr r = MakeBat<int32_t>({2, 2, 5, 7});
  l->DeriveProps();
  r->DeriveProps();
  auto mj = MergeJoin(l, r);
  ASSERT_TRUE(mj.ok());
  auto hj = HashJoin(l, r);
  ASSERT_TRUE(hj.ok());
  ASSERT_EQ(mj->Count(), hj->Count());
  EXPECT_EQ(mj->Count(), 5u);  // 2x2 cross product + one 5-match
}

TEST(JoinTest, StringJoinAcrossDifferentHeaps) {
  BatPtr l = MakeStringBat({"ape", "bee", "cat"});
  BatPtr r = MakeStringBat({"cat", "dog", "ape"});
  auto jr = HashJoin(l, r);
  ASSERT_TRUE(jr.ok());
  ASSERT_EQ(jr->Count(), 2u);
}

TEST(JoinTest, EmptyInputsYieldEmptyResult) {
  BatPtr l = Bat::New(PhysType::kInt32);
  BatPtr r = MakeBat<int32_t>({1, 2});
  auto jr = HashJoin(l, r);
  ASSERT_TRUE(jr.ok());
  EXPECT_EQ(jr->Count(), 0u);
}

TEST(JoinTest, TypeMismatchRejected) {
  BatPtr l = MakeBat<int32_t>({1});
  BatPtr r = MakeBat<int64_t>({1});
  EXPECT_FALSE(HashJoin(l, r).ok());
}

TEST(JoinTest, RandomizedHashVsMergeAgreeOnPairCount) {
  Rng rng(7);
  BatPtr l = Bat::New(PhysType::kInt32);
  BatPtr r = Bat::New(PhysType::kInt32);
  for (int i = 0; i < 2000; ++i) {
    l->Append<int32_t>(static_cast<int32_t>(rng.Uniform(100)));
  }
  for (int i = 0; i < 1500; ++i) {
    r->Append<int32_t>(static_cast<int32_t>(rng.Uniform(100)));
  }
  auto hj = HashJoin(l, r);
  ASSERT_TRUE(hj.ok());
  auto ls = Sort(l);
  auto rs = Sort(r);
  ASSERT_TRUE(ls.ok() && rs.ok());
  auto mj = MergeJoin(ls->sorted, rs->sorted);
  ASSERT_TRUE(mj.ok());
  EXPECT_EQ(hj->Count(), mj->Count());
}

// ----------------------------------------------------------------- Group --

TEST(GroupTest, SingleColumnGrouping) {
  BatPtr b = MakeBat<int32_t>({7, 3, 7, 3, 9});
  auto g = Group(b);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ngroups, 3u);
  ASSERT_EQ(g->groups->Count(), 5u);
  EXPECT_EQ(g->groups->OidAt(0), g->groups->OidAt(2));
  EXPECT_EQ(g->groups->OidAt(1), g->groups->OidAt(3));
  EXPECT_NE(g->groups->OidAt(0), g->groups->OidAt(4));
  // extents point at first member rows 0,1,4
  EXPECT_EQ(OidsOf(g->extents), (std::vector<Oid>{0, 1, 4}));
}

TEST(GroupTest, SubgroupRefinement) {
  // Two columns: (a, b) pairs (1,x),(1,y),(2,x),(1,x)
  BatPtr a = MakeBat<int32_t>({1, 1, 2, 1});
  BatPtr b = MakeStringBat({"x", "y", "x", "x"});
  auto ga = Group(a);
  ASSERT_TRUE(ga.ok());
  EXPECT_EQ(ga->ngroups, 2u);
  auto gab = Group(b, ga->groups, ga->ngroups);
  ASSERT_TRUE(gab.ok());
  EXPECT_EQ(gab->ngroups, 3u);  // (1,x),(1,y),(2,x)
  EXPECT_EQ(gab->groups->OidAt(0), gab->groups->OidAt(3));
}

TEST(GroupTest, AggregatesPerGroup) {
  BatPtr key = MakeBat<int32_t>({1, 2, 1, 2, 1});
  BatPtr val = MakeBat<int32_t>({10, 20, 30, 40, 50});
  auto g = Group(key);
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->ngroups, 2u);
  auto sum = AggrSum(val, g->groups, g->ngroups);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ((*sum)->ValueAt<int64_t>(0), 90);  // 10+30+50
  EXPECT_EQ((*sum)->ValueAt<int64_t>(1), 60);  // 20+40
  auto cnt = AggrCount(g->groups, g->ngroups, 5);
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ((*cnt)->ValueAt<int64_t>(0), 3);
  EXPECT_EQ((*cnt)->ValueAt<int64_t>(1), 2);
  auto mn = AggrMin(val, g->groups, g->ngroups);
  auto mx = AggrMax(val, g->groups, g->ngroups);
  ASSERT_TRUE(mn.ok() && mx.ok());
  EXPECT_EQ((*mn)->ValueAt<int32_t>(0), 10);
  EXPECT_EQ((*mx)->ValueAt<int32_t>(0), 50);
  auto avg = AggrAvg(val, g->groups, g->ngroups);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ((*avg)->ValueAt<double>(0), 30.0);
}

TEST(GroupTest, GlobalAggregates) {
  BatPtr val = MakeBat<double>({1.5, 2.5, 3.0});
  auto sum = AggrSum(val, nullptr, 1);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ((*sum)->ValueAt<double>(0), 7.0);
  auto cnt = AggrCount(nullptr, 1, 3);
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ((*cnt)->ValueAt<int64_t>(0), 3);
}

TEST(GroupTest, ManyGroupsForceTableGrowth) {
  // Regression: the group hash table must rehash past its initial 128
  // slots (found by optimizer_fuzz_test hanging on >128 distinct values).
  BatPtr b = Bat::New(PhysType::kInt32);
  for (int32_t i = 0; i < 5000; ++i) b->Append<int32_t>(i % 1733);
  auto g = Group(b);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->ngroups, 1733u);
  auto cnt = AggrCount(g->groups, g->ngroups, 5000);
  ASSERT_TRUE(cnt.ok());
  int64_t total = 0;
  for (size_t i = 0; i < g->ngroups; ++i) {
    total += (*cnt)->ValueAt<int64_t>(i);
  }
  EXPECT_EQ(total, 5000);
}

TEST(GroupTest, DistinctPreservesFirstAppearance) {
  BatPtr b = MakeBat<int32_t>({5, 1, 5, 2, 1});
  auto d = Distinct(b);
  ASSERT_TRUE(d.ok());
  ASSERT_EQ((*d)->Count(), 3u);
  EXPECT_EQ((*d)->ValueAt<int32_t>(0), 5);
  EXPECT_EQ((*d)->ValueAt<int32_t>(1), 1);
  EXPECT_EQ((*d)->ValueAt<int32_t>(2), 2);
}

// ------------------------------------------------------------------ Sort --

TEST(SortTest, SortsAndProducesOrderIndex) {
  BatPtr b = MakeBat<int32_t>({30, 10, 20});
  auto s = Sort(b);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->sorted->ValueAt<int32_t>(0), 10);
  EXPECT_EQ(s->sorted->ValueAt<int32_t>(1), 20);
  EXPECT_EQ(s->sorted->ValueAt<int32_t>(2), 30);
  EXPECT_EQ(OidsOf(s->order), (std::vector<Oid>{1, 2, 0}));
  EXPECT_TRUE(s->sorted->props().sorted);
}

TEST(SortTest, RadixPathMatchesComparisonPath) {
  Rng rng(13);
  BatPtr a = Bat::New(PhysType::kInt32);
  for (int i = 0; i < 5000; ++i) {
    a->Append<int32_t>(static_cast<int32_t>(rng.Next()));  // incl. negatives
  }
  auto s = Sort(a);  // radix path (int32 ascending)
  ASSERT_TRUE(s.ok());
  const int32_t* v = s->sorted->TailData<int32_t>();
  for (size_t i = 1; i < s->sorted->Count(); ++i) {
    ASSERT_LE(v[i - 1], v[i]) << "at " << i;
  }
}

TEST(SortTest, DescendingSort) {
  BatPtr b = MakeBat<int32_t>({1, 3, 2});
  auto s = Sort(b, /*descending=*/true);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->sorted->ValueAt<int32_t>(0), 3);
  EXPECT_EQ(s->sorted->ValueAt<int32_t>(2), 1);
  EXPECT_TRUE(s->sorted->props().revsorted);
}

TEST(SortTest, StringSortLexicographic) {
  BatPtr b = MakeStringBat({"mole", "ape", "zebra"});
  auto s = Sort(b);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->sorted->StringAt(0), "ape");
  EXPECT_EQ(s->sorted->StringAt(2), "zebra");
}

TEST(SortTest, TopN) {
  BatPtr b = MakeBat<int32_t>({50, 10, 40, 20, 30});
  auto top2 = TopN(b, 2);
  ASSERT_TRUE(top2.ok());
  EXPECT_EQ(OidsOf(*top2), (std::vector<Oid>{1, 3}));  // values 10, 20
  auto bottom2 = TopN(b, 2, /*descending=*/true);
  ASSERT_TRUE(bottom2.ok());
  EXPECT_EQ(OidsOf(*bottom2), (std::vector<Oid>{0, 2}));  // values 50, 40
}

TEST(SortTest, StableForEqualKeys) {
  BatPtr b = MakeBat<int64_t>({2, 1, 2, 1});
  auto s = Sort(b);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(OidsOf(s->order), (std::vector<Oid>{1, 3, 0, 2}));
}

// ------------------------------------------------------------------ Calc --

TEST(CalcTest, BinaryArithmetic) {
  BatPtr a = MakeBat<int32_t>({1, 2, 3});
  BatPtr b = MakeBat<int32_t>({10, 20, 30});
  auto add = CalcBinary(ArithOp::kAdd, a, b);
  ASSERT_TRUE(add.ok());
  EXPECT_EQ((*add)->type(), PhysType::kInt32);
  EXPECT_EQ((*add)->ValueAt<int32_t>(2), 33);
  auto mul = CalcBinary(ArithOp::kMul, a, b);
  ASSERT_TRUE(mul.ok());
  EXPECT_EQ((*mul)->ValueAt<int32_t>(1), 40);
}

TEST(CalcTest, PromotionToDouble) {
  BatPtr a = MakeBat<int32_t>({1, 2});
  BatPtr b = MakeBat<double>({0.5, 0.25});
  auto r = CalcBinary(ArithOp::kMul, a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), PhysType::kDouble);
  EXPECT_DOUBLE_EQ((*r)->ValueAt<double>(0), 0.5);
}

TEST(CalcTest, PromotionToInt64) {
  BatPtr a = MakeBat<int32_t>({1 << 30});
  BatPtr b = MakeBat<int64_t>({int64_t{1} << 40});
  auto r = CalcBinary(ArithOp::kAdd, a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->type(), PhysType::kInt64);
  EXPECT_EQ((*r)->ValueAt<int64_t>(0), (int64_t{1} << 40) + (1 << 30));
}

TEST(CalcTest, IntegerDivisionByZeroIsError) {
  BatPtr a = MakeBat<int32_t>({1});
  BatPtr b = MakeBat<int32_t>({0});
  EXPECT_FALSE(CalcBinary(ArithOp::kDiv, a, b).ok());
}

TEST(CalcTest, ScalarOps) {
  BatPtr a = MakeBat<int32_t>({10, 20});
  auto r = CalcScalar(ArithOp::kSub, a, Value::Int(5));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->ValueAt<int32_t>(0), 5);
  auto d = CalcScalar(ArithOp::kMul, a, Value::Real(0.5));
  ASSERT_TRUE(d.ok());
  EXPECT_EQ((*d)->type(), PhysType::kDouble);
  EXPECT_DOUBLE_EQ((*d)->ValueAt<double>(1), 10.0);
}

TEST(CalcTest, CompareProducesBitmask) {
  BatPtr a = MakeBat<int32_t>({1, 5, 3});
  BatPtr b = MakeBat<int32_t>({2, 2, 3});
  auto r = CalcCompare(CmpOp::kLt, a, b);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->ValueAt<int8_t>(0), 1);
  EXPECT_EQ((*r)->ValueAt<int8_t>(1), 0);
  EXPECT_EQ((*r)->ValueAt<int8_t>(2), 0);
}

TEST(CalcTest, MisalignedInputsRejected) {
  BatPtr a = MakeBat<int32_t>({1, 2});
  BatPtr b = MakeBat<int32_t>({1});
  EXPECT_FALSE(CalcBinary(ArithOp::kAdd, a, b).ok());
}

}  // namespace
}  // namespace mammoth::algebra
