// Cross-engine consistency: the same query evaluated by all three
// execution architectures the paper discusses — tuple-at-a-time Volcano,
// operator-at-a-time BAT algebra (through SQL/MAL), and the vectorized
// pipeline — must agree bit-for-bit on counts and to rounding on sums.
// This is the repository's strongest end-to-end invariant.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "sql/engine.h"
#include "vector/pipeline.h"
#include "volcano/operators.h"

namespace mammoth {
namespace {

constexpr size_t kRows = 20000;
constexpr int kGroups = 8;
constexpr int kDomain = 1000;

struct Dataset {
  BatPtr g, k, v;  // group (int32 [0,kGroups)), key (int32), value (double)
};

Dataset MakeData(uint64_t seed) {
  Rng rng(seed);
  Dataset d;
  d.g = Bat::New(PhysType::kInt32);
  d.k = Bat::New(PhysType::kInt32);
  d.v = Bat::New(PhysType::kDouble);
  for (size_t i = 0; i < kRows; ++i) {
    d.g->Append<int32_t>(static_cast<int32_t>(rng.Uniform(kGroups)));
    d.k->Append<int32_t>(static_cast<int32_t>(rng.Uniform(kDomain)));
    d.v->Append<double>(rng.NextDouble() * 100.0);
  }
  return d;
}

struct GroupRow {
  int64_t count = 0;
  double sum = 0;
};

using Answer = std::map<int32_t, GroupRow>;

// Reference: straight loops.
Answer Reference(const Dataset& d, int lo, int hi) {
  Answer out;
  for (size_t i = 0; i < kRows; ++i) {
    const int32_t k = d.k->ValueAt<int32_t>(i);
    if (k < lo || k > hi) continue;
    GroupRow& row = out[d.g->ValueAt<int32_t>(i)];
    row.count += 1;
    row.sum += d.v->ValueAt<double>(i);
  }
  return out;
}

Answer ViaVolcano(const Dataset& d, int lo, int hi) {
  using namespace volcano;
  auto scan = MakeScan({d.g, d.k, d.v});
  auto filt = MakeFilter(
      std::move(scan),
      And(Cmp(CmpOp::kGe, ColumnRef(1), Const(Value::Int(lo))),
          Cmp(CmpOp::kLe, ColumnRef(1), Const(Value::Int(hi)))));
  auto agg = MakeAggregate(std::move(filt), {0},
                           {{AggSpec::Fn::kCount, 0}, {AggSpec::Fn::kSum, 2}});
  Answer out;
  for (const Tuple& t : Collect(agg.get())) {
    out[static_cast<int32_t>(t[0].i)] = {t[1].i, t[2].d};
  }
  return out;
}

Answer ViaSql(const Dataset& d, int lo, int hi) {
  sql::Engine engine;
  auto created = engine.Execute(
      "CREATE TABLE t (g INT, k INT, v DOUBLE)");
  EXPECT_TRUE(created.ok());
  auto table = engine.catalog()->Get("t");
  EXPECT_TRUE(table.ok());
  for (size_t i = 0; i < kRows; ++i) {
    EXPECT_TRUE((*table)
                    ->Insert({Value::Int(d.g->ValueAt<int32_t>(i)),
                              Value::Int(d.k->ValueAt<int32_t>(i)),
                              Value::Real(d.v->ValueAt<double>(i))})
                    .ok());
  }
  auto r = engine.Execute("SELECT g, count(*), sum(v) FROM t WHERE k >= " +
                          std::to_string(lo) + " AND k <= " +
                          std::to_string(hi) + " GROUP BY g");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  Answer out;
  for (size_t i = 0; i < r->RowCount(); ++i) {
    out[r->columns[0]->ValueAt<int32_t>(i)] = {
        r->columns[1]->ValueAt<int64_t>(i),
        r->columns[2]->ValueAt<double>(i)};
  }
  return out;
}

Answer ViaVectorized(const Dataset& d, int lo, int hi) {
  vec::Pipeline p({d.g, d.k, d.v}, 1024);
  EXPECT_TRUE(p.AddSelectRange(1, lo, hi).ok());
  EXPECT_TRUE(
      p.SetAggregate(0, kGroups, {{vec::AggFn::kCount, 0},
                                  {vec::AggFn::kSum, 2}})
          .ok());
  auto r = p.Run();
  EXPECT_TRUE(r.ok());
  Answer out;
  for (int g = 0; g < kGroups; ++g) {
    const auto count = static_cast<int64_t>(r->aggregates[0][g]);
    if (count > 0) out[g] = {count, r->aggregates[1][g]};
  }
  return out;
}

void ExpectSame(const Answer& want, const Answer& got, const char* engine) {
  ASSERT_EQ(want.size(), got.size()) << engine;
  for (const auto& [g, row] : want) {
    ASSERT_TRUE(got.count(g) == 1) << engine << " missing group " << g;
    EXPECT_EQ(got.at(g).count, row.count) << engine << " group " << g;
    EXPECT_NEAR(got.at(g).sum, row.sum, 1e-6) << engine << " group " << g;
  }
}

class CrossEngineTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CrossEngineTest, AllEnginesAgree) {
  const uint64_t seed = GetParam();
  Rng rng(seed * 77 + 1);
  const Dataset d = MakeData(seed);
  const int lo = static_cast<int>(rng.Uniform(kDomain / 2));
  const int hi = lo + static_cast<int>(rng.Uniform(kDomain / 2));

  const Answer want = Reference(d, lo, hi);
  ExpectSame(want, ViaVolcano(d, lo, hi), "volcano");
  ExpectSame(want, ViaSql(d, lo, hi), "sql/mal");
  ExpectSame(want, ViaVectorized(d, lo, hi), "vectorized");
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossEngineTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace mammoth
