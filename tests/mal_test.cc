#include "mal/interpreter.h"

#include <gtest/gtest.h>

#include "mal/optimizer.h"

namespace mammoth::mal {
namespace {

std::shared_ptr<Catalog> MakeCatalog() {
  auto catalog = std::make_shared<Catalog>();
  auto t = Table::Create("people", {{"name", PhysType::kStr},
                                    {"age", PhysType::kInt32},
                                    {"salary", PhysType::kDouble}});
  EXPECT_TRUE(t.ok());
  const struct {
    const char* name;
    int age;
    double salary;
  } rows[] = {
      {"John Wayne", 1907, 10.0},  {"Roger Moore", 1927, 20.0},
      {"Bob Fosse", 1927, 30.0},   {"Will Smith", 1968, 40.0},
      {"Ada Lovelace", 1815, 50.0},
  };
  for (const auto& r : rows) {
    EXPECT_TRUE((*t)->Insert({Value::Str(r.name), Value::Int(r.age),
                              Value::Real(r.salary)})
                    .ok());
  }
  EXPECT_TRUE(catalog->Register(*t).ok());
  return catalog;
}

TEST(MalProgramTest, RendersReadableListing) {
  Program p;
  const int col = p.Bind("people", "age");
  const int cands = p.BindCandidates("people");
  const int sel = p.ThetaSelect(col, cands, Value::Int(1927), CmpOp::kEq);
  p.Result(sel, "hits");
  const std::string text = p.ToString();
  EXPECT_NE(text.find("sql.bind"), std::string::npos);
  EXPECT_NE(text.find("algebra.thetaselect"), std::string::npos);
  EXPECT_NE(text.find("1927"), std::string::npos);
  EXPECT_NE(text.find("=="), std::string::npos);
}

TEST(MalInterpreterTest, Figure1SelectAge1927) {
  auto catalog = MakeCatalog();
  Program p;
  const int age = p.Bind("people", "age");
  const int cands = p.BindCandidates("people");
  const int sel = p.ThetaSelect(age, cands, Value::Int(1927), CmpOp::kEq);
  const int names = p.Bind("people", "name");
  const int out = p.Project(sel, names);
  p.Result(out, "name");

  Interpreter interp(catalog.get());
  auto r = interp.Run(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 2u);
  EXPECT_EQ(r->columns[0]->StringAt(0), "Roger Moore");
  EXPECT_EQ(r->columns[0]->StringAt(1), "Bob Fosse");
}

TEST(MalInterpreterTest, GroupAggregate) {
  auto catalog = MakeCatalog();
  Program p;
  const int age = p.Bind("people", "age");
  const int cands = p.BindCandidates("people");
  const int aproj = p.Project(cands, age);
  auto [groups, extents, n] = p.Group(aproj);
  const int sal = p.Bind("people", "salary");
  const int sproj = p.Project(cands, sal);
  const int sums = p.Aggr(OpCode::kAggrSum, sproj, groups, n);
  const int keys = p.Project(extents, aproj);
  p.Result(keys, "age");
  p.Result(sums, "sum");

  Interpreter interp(catalog.get());
  auto r = interp.Run(p);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 4u);  // ages 1907, 1927, 1968, 1815
  // Find 1927's sum.
  double sum_1927 = -1;
  for (size_t i = 0; i < r->RowCount(); ++i) {
    if (r->columns[0]->ValueAt<int32_t>(i) == 1927) {
      sum_1927 = r->columns[1]->ValueAt<double>(i);
    }
  }
  EXPECT_DOUBLE_EQ(sum_1927, 50.0);
}

TEST(MalInterpreterTest, CalcAndSort) {
  auto catalog = MakeCatalog();
  Program p;
  const int sal = p.Bind("people", "salary");
  const int cands = p.BindCandidates("people");
  const int sproj = p.Project(cands, sal);
  const int doubled = p.CalcConst(algebra::ArithOp::kMul, sproj,
                                  Value::Real(2.0));
  auto [sorted, order] = p.Sort(doubled, /*desc=*/true);
  p.Result(sorted, "x");
  Interpreter interp(catalog.get());
  auto r = interp.Run(p);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->columns[0]->ValueAt<double>(0), 100.0);
  EXPECT_DOUBLE_EQ(r->columns[0]->ValueAt<double>(4), 20.0);
}

TEST(MalInterpreterTest, ErrorsPropagate) {
  auto catalog = MakeCatalog();
  Program p;
  p.Bind("ghosts", "boo");
  Interpreter interp(catalog.get());
  EXPECT_FALSE(interp.Run(p).ok());
}

TEST(MalInterpreterTest, ToTextRenders) {
  auto catalog = MakeCatalog();
  Program p;
  const int names = p.Bind("people", "name");
  const int cands = p.BindCandidates("people");
  p.Result(p.Project(cands, names), "name");
  Interpreter interp(catalog.get());
  auto r = interp.Run(p);
  ASSERT_TRUE(r.ok());
  const std::string text = r->ToText(3);
  EXPECT_NE(text.find("John Wayne"), std::string::npos);
  EXPECT_NE(text.find("(5 rows)"), std::string::npos);
}

// ----------------------------------------------------------- Optimizer --

TEST(OptimizerTest, DeadCodeEliminationDropsUnusedBinds) {
  Program p;
  p.Bind("people", "age");     // dead
  p.Bind("people", "salary");  // dead
  const int names = p.Bind("people", "name");
  const int cands = p.BindCandidates("people");
  p.Result(p.Project(cands, names), "name");
  const size_t before = p.instrs().size();
  const size_t removed = DeadCodeElimination(&p);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(p.instrs().size(), before - 2);
}

TEST(OptimizerTest, CseDeduplicatesBindsAndSelects) {
  Program p;
  const int a1 = p.Bind("people", "age");
  const int a2 = p.Bind("people", "age");  // duplicate
  const int cands = p.BindCandidates("people");
  const int s1 = p.ThetaSelect(a1, cands, Value::Int(1927), CmpOp::kEq);
  const int s2 = p.ThetaSelect(a2, cands, Value::Int(1927), CmpOp::kEq);
  p.Result(s1, "a");
  p.Result(s2, "b");
  const size_t replaced = CommonSubexpressionElimination(&p);
  EXPECT_EQ(replaced, 2u);  // the second bind and the second select
  // Both results now reference the same variable.
  const auto& instrs = p.instrs();
  const Instr& r1 = instrs[instrs.size() - 2];
  const Instr& r2 = instrs[instrs.size() - 1];
  EXPECT_EQ(r1.inputs[0], r2.inputs[0]);
}

TEST(OptimizerTest, SelectFusionMergesRangePairs) {
  Program p;
  const int age = p.Bind("people", "age");
  const int cands = p.BindCandidates("people");
  const int ge = p.ThetaSelect(age, cands, Value::Int(1900), CmpOp::kGe);
  const int le = p.ThetaSelect(age, ge, Value::Int(1930), CmpOp::kLe);
  p.Result(le, "hits");
  const size_t fused = SelectFusion(&p);
  EXPECT_EQ(fused, 1u);
  bool has_range = false;
  for (const Instr& ins : p.instrs()) {
    if (ins.op == OpCode::kRangeSelect) {
      has_range = true;
      EXPECT_EQ(ins.consts[0].AsInt(), 1900);
      EXPECT_EQ(ins.consts[1].AsInt(), 1930);
    }
  }
  EXPECT_TRUE(has_range);
}

TEST(OptimizerTest, FusedPlanGivesSameAnswer) {
  auto catalog = MakeCatalog();
  auto build = [&] {
    Program p;
    const int age = p.Bind("people", "age");
    const int cands = p.BindCandidates("people");
    const int ge = p.ThetaSelect(age, cands, Value::Int(1900), CmpOp::kGe);
    const int le = p.ThetaSelect(age, ge, Value::Int(1930), CmpOp::kLe);
    const int names = p.Bind("people", "name");
    p.Result(p.Project(le, names), "name");
    return p;
  };
  Program plain = build();
  Program optimized = build();
  const PipelineReport report = OptimizePipeline(&optimized);
  EXPECT_GE(report.fused, 1u);
  EXPECT_GE(report.dce, 1u);
  EXPECT_LT(optimized.instrs().size(), plain.instrs().size());

  Interpreter interp(catalog.get());
  auto r1 = interp.Run(plain);
  auto r2 = interp.Run(optimized);
  ASSERT_TRUE(r1.ok() && r2.ok());
  ASSERT_EQ(r1->RowCount(), r2->RowCount());
  for (size_t i = 0; i < r1->RowCount(); ++i) {
    EXPECT_EQ(r1->columns[0]->StringAt(i), r2->columns[0]->StringAt(i));
  }
}

TEST(OptimizerTest, PipelineReachesFixpoint) {
  Program p;
  const int names = p.Bind("people", "name");
  const int cands = p.BindCandidates("people");
  p.Result(p.Project(cands, names), "name");
  const PipelineReport report = OptimizePipeline(&p);
  EXPECT_LE(report.rounds, 2u);
  EXPECT_FALSE(report.ToString().empty());
}

}  // namespace
}  // namespace mammoth::mal
