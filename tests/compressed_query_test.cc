/// Cross-checks for compression as an execution path: query results over
/// compressed tables must be bit-identical to the uncompressed path —
/// direct (no scheduler), through shared scans at pools of 1/2/4/8, and
/// over the wire protocol. Style follows shared_scan_test.cc.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "core/table.h"
#include "parallel/task_pool.h"
#include "scan/shared_scan.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "sql/engine.h"

namespace mammoth {
namespace {

using server::Client;
using server::EncodeResult;
using server::Server;
using server::ServerConfig;

constexpr size_t kChunk = size_t{1} << 16;
constexpr size_t kRows = 3 * kChunk + 500;  // eligible, ragged tail

/// An int32-heavy table whose columns favour different codecs: `id`
/// sorted (PFOR-DELTA), `val` random small-range (PDICT/PFOR), `tag`
/// long runs (RLE) — so ALTER TABLE COMPRESS exercises CompressBest's
/// per-column choices and the wire probes have an RLE winner.
TablePtr EventsTable() {
  BatPtr id = Bat::New(PhysType::kInt32);
  BatPtr val = Bat::New(PhysType::kInt32);
  BatPtr tag = Bat::New(PhysType::kInt32);
  BatPtr big = Bat::New(PhysType::kInt64);
  id->Resize(kRows);
  val->Resize(kRows);
  tag->Resize(kRows);
  big->Resize(kRows);
  int32_t* idp = id->MutableTailData<int32_t>();
  int32_t* vp = val->MutableTailData<int32_t>();
  int32_t* tp = tag->MutableTailData<int32_t>();
  int64_t* bp = big->MutableTailData<int64_t>();
  Rng rng(777);
  for (size_t i = 0; i < kRows; ++i) {
    idp[i] = static_cast<int32_t>(i);
    vp[i] = static_cast<int32_t>(rng.Uniform(10000));
    tp[i] = static_cast<int32_t>(i / 1000);  // runs of 1000
    bp[i] = (int64_t{1} << 34) + static_cast<int64_t>(rng.Uniform(512));
  }
  auto t = Table::FromColumns("events",
                              {{"id", PhysType::kInt32},
                               {"val", PhysType::kInt32},
                               {"tag", PhysType::kInt32},
                               {"big", PhysType::kInt64}},
                              {id, val, tag, big});
  EXPECT_TRUE(t.ok()) << t.status().ToString();
  return *t;
}

const std::vector<std::string>& CrossQueries() {
  static const std::vector<std::string> queries = {
      // Range select on a compressed column + compressed projections.
      "SELECT id, val FROM events WHERE val >= 100 AND val <= 2000",
      // Theta-ish narrow range; tag projection decodes RLE blocks.
      "SELECT id, tag FROM events WHERE val >= 5000 AND val <= 5100",
      // Aggregate over a compressed projection.
      "SELECT COUNT(*), SUM(val) FROM events WHERE val >= 500 AND "
      "val <= 9000",
      // int64 compressed column as both predicate and output.
      "SELECT big FROM events WHERE big >= 17179869184 AND "
      "big <= 17179869284",
      // Full sweep: every row qualifies (wire-compressible tag output).
      "SELECT tag FROM events WHERE val >= 0 AND val <= 10000",
  };
  return queries;
}

/// The serial, uncompressed yardstick: wire encodings (caps=0) of every
/// query on a plain engine.
std::vector<std::string> PlainEncodings() {
  sql::Engine plain;
  EXPECT_TRUE(plain.catalog()->Register(EventsTable()).ok());
  std::vector<std::string> encodings;
  for (const std::string& q : CrossQueries()) {
    auto r = plain.Execute(q, parallel::ExecContext::Serial());
    EXPECT_TRUE(r.ok()) << q << ": " << r.status().ToString();
    auto payload = EncodeResult(*r);
    EXPECT_TRUE(payload.ok());
    encodings.push_back(*payload);
  }
  return encodings;
}

// ----------------------------------------------------------- direct path --

TEST(CompressedQueryTest, AlterCompressBitIdenticalDirect) {
  const std::vector<std::string> expected = PlainEncodings();

  sql::Engine engine;
  ASSERT_TRUE(engine.catalog()->Register(EventsTable()).ok());
  ASSERT_TRUE(engine.Execute("ALTER TABLE events COMPRESS").ok());

  const auto cs = engine.compression_stats();
  EXPECT_EQ(cs.compressed_tables, 1u);
  EXPECT_EQ(cs.compressed_columns, 4u);  // three int32 + one int64
  EXPECT_GT(cs.logical_bytes, cs.compressed_bytes);

  for (size_t q = 0; q < CrossQueries().size(); ++q) {
    auto r = engine.Execute(CrossQueries()[q], parallel::ExecContext::Serial());
    ASSERT_TRUE(r.ok()) << CrossQueries()[q] << ": " << r.status().ToString();
    auto payload = EncodeResult(*r);
    ASSERT_TRUE(payload.ok());
    EXPECT_EQ(*payload, expected[q]) << CrossQueries()[q];
  }

  // DECOMPRESS restores plain storage and the same answers.
  ASSERT_TRUE(engine.Execute("ALTER TABLE events DECOMPRESS").ok());
  EXPECT_EQ(engine.compression_stats().compressed_columns, 0u);
  auto r = engine.Execute(CrossQueries()[0], parallel::ExecContext::Serial());
  ASSERT_TRUE(r.ok());
  auto payload = EncodeResult(*r);
  ASSERT_TRUE(payload.ok());
  EXPECT_EQ(*payload, expected[0]);
}

TEST(CompressedQueryTest, CreateCompressedTableDmlAndSelect) {
  // The DDL path: CREATE ... COMPRESSED, then INSERT (delta on top of
  // compressed mains) and DELETE, checked against a plain twin.
  const std::string create = " (k INT, v INT)";
  const std::string rows =
      "INSERT INTO t VALUES (1, 10), (2, 20), (3, 30), (4, 20), (5, 10)";
  sql::Engine plain, comp;
  ASSERT_TRUE(plain.Execute("CREATE TABLE t" + create).ok());
  ASSERT_TRUE(comp.Execute("CREATE TABLE t" + create + " COMPRESSED").ok());
  for (sql::Engine* e : {&plain, &comp}) {
    ASSERT_TRUE(e->Execute(rows).ok());
    ASSERT_TRUE(e->Execute("DELETE FROM t WHERE v = 30").ok());
  }
  EXPECT_EQ(comp.compression_stats().compressed_tables, 1u);
  const std::string q = "SELECT k, v FROM t WHERE v >= 10 AND v <= 20";
  auto want = plain.Execute(q);
  auto got = comp.Execute(q);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto we = EncodeResult(*want);
  auto ge = EncodeResult(*got);
  ASSERT_TRUE(we.ok());
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(*ge, *we);
}

// ----------------------------------------------------------- shared path --

/// Concurrent sessions over a compressed table through the shared-scan
/// scheduler: bit-identical to the plain serial engine at every pool
/// size, with the pass decompressing chunks once into shared buffers.
TEST(CompressedQueryTest, SharedScansOverCompressedBitIdenticalAcrossPools) {
  const std::vector<std::string> expected = PlainEncodings();

  for (int threads : {1, 2, 4, 8}) {
    sql::Engine engine;
    ASSERT_TRUE(engine.catalog()->Register(EventsTable()).ok());
    ASSERT_TRUE(engine.Execute("ALTER TABLE events COMPRESS").ok());

    scan::SharedScanConfig config;
    config.chunk_rows = kChunk;
    config.chunk_bytes = 0;
    config.min_share_rows = kChunk;
    scan::SharedScanScheduler sched(config);
    engine.AttachSharedScans(&sched);
    parallel::TaskPool pool(threads);
    parallel::ExecContext ctx(&pool);

    std::vector<std::thread> sessions;
    for (int s = 0; s < 6; ++s) {
      sessions.emplace_back([&, s] {
        for (int round = 0; round < 3; ++round) {
          const size_t q = (s + round) % CrossQueries().size();
          auto r = engine.Execute(CrossQueries()[q], ctx);
          ASSERT_TRUE(r.ok()) << r.status().ToString();
          auto payload = EncodeResult(*r);
          ASSERT_TRUE(payload.ok());
          EXPECT_EQ(*payload, expected[q]) << CrossQueries()[q];
        }
      });
    }
    for (auto& s : sessions) s.join();

    const auto stats = sched.stats();
    EXPECT_GT(stats.scans_attached + stats.scans_direct, 0u) << threads;
    // The compressed pass decompressed chunks into shared buffers (each
    // chunk once per pass, however many consumers were attached).
    EXPECT_GT(stats.chunks_decompressed, 0u) << threads;
    EXPECT_GT(stats.bytes_delivered, 0u) << threads;
    // Compressed loads account fewer bytes than the logical delivery.
    EXPECT_LT(stats.bytes_loaded, stats.bytes_delivered) << threads;
  }
}

// ------------------------------------------------------------- wire path --

std::map<std::string, int64_t> StatusCounters(Client* client) {
  auto r = client->Query("SERVER STATUS");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  std::map<std::string, int64_t> counters;
  for (size_t i = 0; i < r->RowCount(); ++i) {
    counters[std::string(r->columns[0]->StringAt(i))] =
        r->columns[1]->ValueAt<int64_t>(i);
  }
  return counters;
}

/// Remote sessions against a compressed table — with compressed result
/// shipping negotiated — decode to exactly the plain in-process bytes,
/// and the server's saved-bytes counter shows the wire win.
TEST(CompressedQueryTest, WireResultsBitIdenticalAndCompressed) {
  const std::vector<std::string> expected = PlainEncodings();

  ServerConfig config;
  config.port = 0;
  auto server = std::make_unique<Server>(config);
  ASSERT_TRUE(server->engine()->catalog()->Register(EventsTable()).ok());
  ASSERT_TRUE(server->engine()->Execute("ALTER TABLE events COMPRESS").ok());
  ASSERT_TRUE(server->Start().ok());

  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  // The server advertises compressed shipping; the client negotiated it.
  EXPECT_NE(client->hello().caps & server::kWireCapCompressedResults, 0u);

  for (size_t q = 0; q < CrossQueries().size(); ++q) {
    auto remote = client->Query(CrossQueries()[q]);
    ASSERT_TRUE(remote.ok()) << remote.status().ToString();
    auto encoded = EncodeResult(*remote);
    ASSERT_TRUE(encoded.ok());
    EXPECT_EQ(*encoded, expected[q]) << CrossQueries()[q];
  }

  auto counters = StatusCounters(&*client);
  EXPECT_EQ(counters["compressed_tables"], 1);
  EXPECT_EQ(counters["compressed_columns"], 4);
  EXPECT_GT(counters["compressed_logical_bytes"],
            counters["compressed_bytes"]);
  // The full-sweep tag query ships ~197K run-heavy int32 values: RLE
  // must have beaten the raw tail on the wire.
  EXPECT_GT(counters["wire_result_bytes_saved"], 0);

  client->Close();
  server->Stop();
}

}  // namespace
}  // namespace mammoth
