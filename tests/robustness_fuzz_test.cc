// Robustness fuzzing: malformed inputs must come back as Status errors,
// never as crashes or sanitizer findings. Three surfaces:
//   - the SQL parser/engine on mutated query strings,
//   - the MAL text parser on mutated listings,
//   - the compression decoders on corrupted byte streams.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.h"
#include "compress/pdict.h"
#include "compress/pfor.h"
#include "compress/rle.h"
#include "core/persist.h"
#include "mal/parser.h"
#include "sql/engine.h"

namespace mammoth {
namespace {

std::string Mutate(const std::string& base, Rng* rng, int edits) {
  std::string s = base;
  for (int e = 0; e < edits; ++e) {
    if (s.empty()) break;
    const size_t pos = rng->Uniform(s.size());
    switch (rng->Uniform(3)) {
      case 0:  // flip to a random printable char
        s[pos] = static_cast<char>(32 + rng->Uniform(95));
        break;
      case 1:  // delete
        s.erase(pos, 1 + rng->Uniform(3));
        break;
      case 2:  // duplicate a slice
        s.insert(pos, s.substr(pos, 1 + rng->Uniform(5)));
        break;
    }
  }
  return s;
}

TEST(SqlFuzzTest, MutatedQueriesNeverCrash) {
  sql::Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript("CREATE TABLE t (a INT, b DOUBLE, "
                                 "c VARCHAR(8));"
                                 "INSERT INTO t VALUES (1, 1.5, 'x');")
                  .ok());
  const std::string bases[] = {
      "SELECT a, sum(b) FROM t WHERE a >= 1 AND a <= 5 GROUP BY a "
      "HAVING sum(b) > 0 ORDER BY a DESC LIMIT 3",
      "INSERT INTO t VALUES (2, 2.5, 'y'), (3, 3.5, 'z')",
      "UPDATE t SET b = 9.0, c = 'w' WHERE a != 1",
      "DELETE FROM t WHERE c = 'x'",
      "CREATE TABLE u (p BIGINT, q TEXT)",
  };
  Rng rng(42);
  size_t ok_count = 0;
  for (int round = 0; round < 2000; ++round) {
    const std::string& base = bases[rng.Uniform(std::size(bases))];
    const std::string q = Mutate(base, &rng, 1 + rng.Uniform(6));
    auto r = engine.Execute(q);  // must not crash; errors are fine
    if (r.ok()) ++ok_count;
  }
  // Some mutations stay valid; most should not. Either way: no crash.
  SUCCEED() << ok_count << " mutated statements still executed";
}

TEST(MalFuzzTest, MutatedListingsNeverCrash) {
  const std::string base =
      "(v0) := sql.bind(\"t\", \"a\");\n"
      "(v1) := sql.tid(\"t\");\n"
      "(v2) := algebra.thetaselect(v0, v1, 1927, ==);\n"
      "(v3) := algebra.projection(v2, v0);\n"
      "(v4, v5, v6) := group.subgroup(v3, nil, nil);\n"
      "(v7) := aggr.sum(v3, v4, v6);\n"
      "sql.resultSet(\"x\", v7);\n";
  Rng rng(43);
  for (int round = 0; round < 2000; ++round) {
    const std::string text = Mutate(base, &rng, 1 + rng.Uniform(8));
    auto p = mal::ParseMal(text);
    (void)p;  // ok or error — just no crash
  }
  SUCCEED();
}

TEST(CompressFuzzTest, CorruptedStreamsNeverCrash) {
  Rng rng(44);
  std::vector<int32_t> data(5000);
  for (auto& v : data) v = static_cast<int32_t>(rng.Uniform(100000));
  std::vector<uint8_t> pfor_buf, pdict_buf, rle_buf;
  ASSERT_TRUE(compress::PforEncode(data.data(), data.size(), &pfor_buf).ok());
  ASSERT_TRUE(
      compress::PdictEncode(data.data(), 100, &pdict_buf).ok());
  ASSERT_TRUE(compress::RleEncode(data.data(), data.size(), &rle_buf).ok());

  std::vector<int32_t> out;
  for (int round = 0; round < 500; ++round) {
    for (auto* buf : {&pfor_buf, &pdict_buf, &rle_buf}) {
      std::vector<uint8_t> corrupted = *buf;
      // Corrupt a few bytes and often truncate.
      for (int e = 0; e < 4; ++e) {
        corrupted[rng.Uniform(corrupted.size())] =
            static_cast<uint8_t>(rng.Next());
      }
      if (rng.Uniform(2) == 0) {
        corrupted.resize(rng.Uniform(corrupted.size()) + 1);
      }
      (void)compress::PforDecode(corrupted, &out);
      (void)compress::PdictDecode(corrupted, &out);
      (void)compress::RleDecode(corrupted, &out);
      int32_t range_out[64];
      (void)compress::PforDecodeRange(corrupted, 0, 64, range_out);
      (void)compress::PdictDecodeRange(corrupted, 0, 64, range_out);
    }
  }
  SUCCEED();
}

TEST(PersistFuzzTest, RandomBatsRoundTripAllTypes) {
  Rng rng(45);
  const std::string dir = ::testing::TempDir();
  for (int round = 0; round < 20; ++round) {
    const auto type = static_cast<PhysType>(rng.Uniform(9));
    BatPtr b;
    const size_t n = rng.Uniform(3000);
    if (type == PhysType::kStr) {
      b = Bat::NewString(nullptr);
      for (size_t i = 0; i < n; ++i) {
        b->AppendString("s" + std::to_string(rng.Uniform(50)));
      }
    } else {
      b = Bat::New(type);
      for (size_t i = 0; i < n; ++i) {
        // Raw random bits are valid for every numeric width.
        const uint64_t bits = rng.Next();
        b->AppendRaw(&bits, 1);
      }
    }
    b->set_hseqbase(rng.Uniform(1000));
    const std::string path =
        dir + "/fuzz_bat_" + std::to_string(round) + ".mbat";
    ASSERT_TRUE(SaveBat(*b, path).ok());
    for (bool mmap : {false, true}) {
      auto back = mmap ? MapBat(path) : LoadBat(path);
      ASSERT_TRUE(back.ok()) << back.status().ToString();
      ASSERT_EQ((*back)->Count(), b->Count());
      ASSERT_EQ((*back)->type(), b->type());
      ASSERT_EQ((*back)->hseqbase(), b->hseqbase());
      for (size_t i = 0; i < n; ++i) {
        if (type == PhysType::kStr) {
          ASSERT_EQ((*back)->StringAt(i), b->StringAt(i));
        } else {
          ASSERT_EQ(std::memcmp(static_cast<const char*>(
                                    (*back)->tail().raw_data()) +
                                    i * TypeWidth(type),
                                static_cast<const char*>(
                                    b->tail().raw_data()) +
                                    i * TypeWidth(type),
                                TypeWidth(type)),
                    0)
              << "round " << round << " i " << i;
        }
      }
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace mammoth
