#include "server/client.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "server/wire.h"

namespace mammoth::server {
namespace {

/// A scripted single-accept "server": binds an ephemeral loopback port
/// and runs `script` against the first accepted socket. Lets the tests
/// control exactly how response bytes hit the wire — half-written
/// frames, byte-at-a-time writes, mid-frame hangups.
class FakeServer {
 public:
  explicit FakeServer(std::function<void(int fd)> script) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                            &len),
              0);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(listen_fd_, 1), 0);
    thread_ = std::thread([this, script = std::move(script)] {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd >= 0) {
        script(fd);
        ::close(fd);
      }
    });
  }

  ~FakeServer() {
    thread_.join();
    ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }

  static void WriteAll(int fd, std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      if (n <= 0) return;
      sent += static_cast<size_t>(n);
    }
  }

  /// Drip-feeds `bytes` one at a time — the worst-case segmentation a
  /// client's reassembly loop must survive.
  static void WriteByteByByte(int fd, std::string_view bytes) {
    for (const char c : bytes) {
      WriteAll(fd, std::string_view(&c, 1));
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  }

  static std::string HelloBytes() {
    HelloInfo hello;
    hello.session_id = 1;
    hello.server_name = "fake";
    return EncodeFrame(FrameType::kHello, EncodeHello(hello));
  }

  static std::string EmptyResultBytes() {
    auto payload = EncodeResult(mal::QueryResult{});
    EXPECT_TRUE(payload.ok());
    return EncodeFrame(FrameType::kResult, *payload);
  }

  /// Blocks until at least one byte of the client's query arrives.
  static void AwaitRequest(int fd) {
    char sink[4096];
    (void)!::recv(fd, sink, sizeof(sink), 0);
  }

 private:
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

TEST(ClientTimeoutTest, HalfWrittenFrameTimesOutInsteadOfHanging) {
  FakeServer fake([](int fd) {
    FakeServer::WriteAll(fd, FakeServer::HelloBytes());
    FakeServer::AwaitRequest(fd);
    // Half a response: a valid header promising bytes that never come.
    const std::string result = FakeServer::EmptyResultBytes();
    FakeServer::WriteAll(fd, result.substr(0, kHeaderBytes + 2));
    // Stall past the client's timeout, then hang up.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
  });
  ClientOptions options;
  options.recv_timeout_ms = 150;
  auto client = Client::Connect("127.0.0.1", fake.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  const auto t0 = std::chrono::steady_clock::now();
  auto r = client->Query("SELECT 1");
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - t0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimedOut)
      << r.status().ToString();
  // Returned promptly — near the configured timeout, not the stall.
  EXPECT_LT(elapsed.count(), 500);
}

TEST(ClientTimeoutTest, SlowButSteadyServerDoesNotTimeOut) {
  // SO_RCVTIMEO is per-recv: a server that trickles bytes slower than a
  // frame but faster than the timeout must still complete the query.
  FakeServer fake([](int fd) {
    FakeServer::WriteAll(fd, FakeServer::HelloBytes());
    FakeServer::AwaitRequest(fd);
    FakeServer::WriteByteByByte(fd, FakeServer::EmptyResultBytes());
  });
  ClientOptions options;
  options.recv_timeout_ms = 250;
  auto client = Client::Connect("127.0.0.1", fake.port(), options);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto r = client->Query("SELECT 1");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
}

TEST(ClientShortReadTest, ByteAtATimeHelloAndResultReassemble) {
  // The whole conversation dripped one byte at a time: the reassembly
  // loops in Connect() and Query() see maximally fragmented reads.
  FakeServer fake([](int fd) {
    FakeServer::WriteByteByByte(fd, FakeServer::HelloBytes());
    FakeServer::AwaitRequest(fd);
    FakeServer::WriteByteByByte(fd, FakeServer::EmptyResultBytes());
  });
  auto client = Client::Connect("127.0.0.1", fake.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client->hello().server_name, "fake");
  auto r = client->Query("SELECT 1");
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->RowCount(), 0u);
}

TEST(ClientShortReadTest, HangupMidFrameIsIOErrorNotTimeout) {
  FakeServer fake([](int fd) {
    FakeServer::WriteAll(fd, FakeServer::HelloBytes());
    FakeServer::AwaitRequest(fd);
    const std::string result = FakeServer::EmptyResultBytes();
    FakeServer::WriteAll(fd, result.substr(0, result.size() - 1));
    // close() from the destructor cuts the frame short.
  });
  auto client = Client::Connect("127.0.0.1", fake.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto r = client->Query("SELECT 1");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

TEST(ClientShortWriteTest, QueryLargerThanSocketBuffersIsSentWhole) {
  // A query body far larger than any socket buffer forces send() to
  // return short; the client's write loop must deliver every byte. The
  // fake echoes the byte count back as an error message so the test can
  // verify nothing was truncated.
  static constexpr size_t kQueryBytes = 8u << 20;
  FakeServer fake([](int fd) {
    FakeServer::WriteAll(fd, FakeServer::HelloBytes());
    std::string got;
    char chunk[64 * 1024];
    Frame frame;
    while (true) {
      auto consumed = DecodeFrame(got.data(), got.size(), &frame);
      ASSERT_TRUE(consumed.ok());
      if (*consumed > 0) break;
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      ASSERT_GT(n, 0);
      got.append(chunk, static_cast<size_t>(n));
      // Read deliberately slowly so the client's send buffer fills.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(frame.payload.size(), kQueryBytes);
    FakeServer::WriteAll(
        fd, EncodeFrame(FrameType::kError,
                        EncodeError(Status::InvalidArgument(
                            std::to_string(frame.payload.size())))));
  });
  auto client = Client::Connect("127.0.0.1", fake.port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto r = client->Query(std::string(kQueryBytes, 'x'));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().message(), std::to_string(kQueryBytes));
}

}  // namespace
}  // namespace mammoth::server
