#include "scan/cooperative.h"

#include <gtest/gtest.h>

namespace mammoth::scan {
namespace {

ScanConfig SmallConfig() {
  ScanConfig c;
  c.total_chunks = 64;
  c.chunk_load_seconds = 0.001;
  c.buffer_chunks = 8;
  return c;
}

std::vector<ScanQuery> FullScans(size_t n, double stagger,
                                 size_t total_chunks) {
  std::vector<ScanQuery> qs(n);
  for (size_t i = 0; i < n; ++i) {
    qs[i].first_chunk = 0;
    qs[i].last_chunk = total_chunks - 1;
    qs[i].arrival_time = stagger * static_cast<double>(i);
  }
  return qs;
}

TEST(CooperativeScanTest, SingleQueryLoadsEachChunkOnce) {
  const ScanConfig c = SmallConfig();
  const auto qs = FullScans(1, 0, c.total_chunks);
  const ScanStats coop = RunCooperative(c, qs);
  const ScanStats ind = RunIndependent(c, qs);
  EXPECT_EQ(coop.chunk_loads, c.total_chunks);
  EXPECT_EQ(ind.chunk_loads, c.total_chunks);
  EXPECT_FALSE(coop.ToString().empty());
}

TEST(CooperativeScanTest, SimultaneousScansShareEveryChunk) {
  const ScanConfig c = SmallConfig();
  const auto qs = FullScans(8, 0, c.total_chunks);
  const ScanStats coop = RunCooperative(c, qs);
  // Eight concurrent full scans: one shared pass suffices.
  EXPECT_EQ(coop.chunk_loads, c.total_chunks);
}

TEST(CooperativeScanTest, StaggeredScansCreateSynergy) {
  ScanConfig c = SmallConfig();
  // Each query arrives mid-way through the previous one's scan — the
  // pattern where independent scans thrash the buffer.
  const double stagger = c.chunk_load_seconds * 24;
  const auto qs = FullScans(6, stagger, c.total_chunks);
  const ScanStats coop = RunCooperative(c, qs);
  const ScanStats ind = RunIndependent(c, qs);
  EXPECT_LT(coop.chunk_loads, ind.chunk_loads / 2)
      << "coop=" << coop.ToString() << " ind=" << ind.ToString();
  EXPECT_LT(coop.makespan, ind.makespan);
}

TEST(CooperativeScanTest, DisjointRangesNoFalseSharing) {
  const ScanConfig c = SmallConfig();
  std::vector<ScanQuery> qs(2);
  qs[0].first_chunk = 0;
  qs[0].last_chunk = 31;
  qs[1].first_chunk = 32;
  qs[1].last_chunk = 63;
  const ScanStats coop = RunCooperative(c, qs);
  EXPECT_EQ(coop.chunk_loads, 64u);
}

TEST(CooperativeScanTest, LateQueryStillCompletes) {
  const ScanConfig c = SmallConfig();
  std::vector<ScanQuery> qs(2);
  qs[0].first_chunk = 0;
  qs[0].last_chunk = 63;
  qs[1].first_chunk = 10;
  qs[1].last_chunk = 20;
  qs[1].arrival_time = 1.0;  // long after the first finished
  const ScanStats coop = RunCooperative(c, qs);
  EXPECT_GE(coop.makespan, 1.0);
  EXPECT_GT(coop.avg_latency, 0.0);
  // The late query reloads its 11 chunks (buffer moved on) minus any
  // still-buffered tail.
  EXPECT_GE(coop.chunk_loads, 64u + 3u);
}

TEST(CooperativeScanTest, CpuBoundQueryDominatedByCpu) {
  const ScanConfig c = SmallConfig();
  std::vector<ScanQuery> qs(1);
  qs[0].first_chunk = 0;
  qs[0].last_chunk = 63;
  qs[0].process_seconds_per_chunk = 1.0;  // CPU far exceeds I/O
  const ScanStats coop = RunCooperative(c, qs);
  EXPECT_NEAR(coop.makespan, 64.0, 1.0);
}

}  // namespace
}  // namespace mammoth::scan
