#include "vector/pipeline.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace mammoth::vec {
namespace {

BatPtr UniformInts(size_t n, uint64_t bound, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    b->Append<int32_t>(static_cast<int32_t>(rng.Uniform(bound)));
  }
  return b;
}

BatPtr UniformDoubles(size_t n, uint64_t seed) {
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kDouble);
  b->Reserve(n);
  for (size_t i = 0; i < n; ++i) b->Append<double>(rng.NextDouble());
  return b;
}

TEST(PipelineTest, GlobalSum) {
  BatPtr col = MakeBat<int32_t>({1, 2, 3, 4});
  Pipeline p({col}, 2);
  ASSERT_TRUE(p.SetAggregate(Pipeline::kNoGroup, 1,
                             {{AggFn::kSum, 0}, {AggFn::kCount, 0}})
                  .ok());
  auto r = p.Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->aggregates[0][0], 10.0);
  EXPECT_DOUBLE_EQ(r->aggregates[1][0], 4.0);
}

TEST(PipelineTest, SelectThenSum) {
  BatPtr col = MakeBat<int32_t>({1, 5, 10, 15, 20});
  Pipeline p({col}, 3);
  ASSERT_TRUE(p.AddSelectRange(0, 5, 15).ok());
  ASSERT_TRUE(p.SetAggregate(Pipeline::kNoGroup, 1, {{AggFn::kSum, 0}}).ok());
  auto r = p.Run();
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->aggregates[0][0], 30.0);  // 5+10+15
}

TEST(PipelineTest, ConjunctiveSelects) {
  BatPtr a = MakeBat<int32_t>({1, 2, 3, 4, 5});
  BatPtr b = MakeBat<int32_t>({5, 4, 3, 2, 1});
  Pipeline p({a, b}, 2);
  ASSERT_TRUE(p.AddSelectRange(0, 2, 5).ok());  // rows 1..4
  ASSERT_TRUE(p.AddSelectRange(1, 3, 5).ok());  // rows 0..2
  ASSERT_TRUE(p.SetAggregate(Pipeline::kNoGroup, 1, {{AggFn::kCount, 0}}).ok());
  auto r = p.Run();
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->aggregates[0][0], 2.0);  // rows 1,2
}

TEST(PipelineTest, MapChainsAndGroups) {
  // Mini Q1: group by flag in {0,1,2}, sum(qty * (1 - disc)).
  BatPtr flag = MakeBat<int32_t>({0, 1, 2, 0, 1});
  BatPtr qty = MakeBat<double>({10, 20, 30, 40, 50});
  BatPtr disc = MakeBat<double>({0.5, 0.0, 0.1, 0.25, 1.0});
  Pipeline p({flag, qty, disc}, 2);
  auto one_minus = p.AddMapColConst(BinOp::kSub, 2, 1.0);  // disc - 1
  ASSERT_TRUE(one_minus.ok());
  auto neg = p.AddMapColConst(BinOp::kMul, *one_minus, -1.0);  // 1 - disc
  ASSERT_TRUE(neg.ok());
  auto revenue = p.AddMapColCol(BinOp::kMul, 1, *neg);
  ASSERT_TRUE(revenue.ok());
  ASSERT_TRUE(p.SetAggregate(0, 3, {{AggFn::kSum, *revenue}}).ok());
  auto r = p.Run();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(r->aggregates[0][0], 10 * 0.5 + 40 * 0.75);
  EXPECT_DOUBLE_EQ(r->aggregates[0][1], 20 * 1.0 + 50 * 0.0);
  EXPECT_DOUBLE_EQ(r->aggregates[0][2], 30 * 0.9);
}

TEST(PipelineTest, MinMaxAggregates) {
  BatPtr g = MakeBat<int32_t>({0, 0, 1, 1});
  BatPtr v = MakeBat<int32_t>({7, 3, 10, 20});
  Pipeline p({g, v}, 4);
  ASSERT_TRUE(
      p.SetAggregate(0, 2, {{AggFn::kMin, 1}, {AggFn::kMax, 1}}).ok());
  auto r = p.Run();
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->aggregates[0][0], 3.0);
  EXPECT_DOUBLE_EQ(r->aggregates[1][0], 7.0);
  EXPECT_DOUBLE_EQ(r->aggregates[0][1], 10.0);
  EXPECT_DOUBLE_EQ(r->aggregates[1][1], 20.0);
}

TEST(PipelineTest, CastWidens) {
  BatPtr a = MakeBat<int32_t>({1, 2, 3});
  Pipeline p({a}, 2);
  auto d = p.AddCast(0, PhysType::kDouble);
  ASSERT_TRUE(d.ok());
  auto half = p.AddMapColConst(BinOp::kDiv, *d, 2.0);
  ASSERT_TRUE(half.ok());
  ASSERT_TRUE(p.SetAggregate(Pipeline::kNoGroup, 1, {{AggFn::kSum, *half}}).ok());
  auto r = p.Run();
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->aggregates[0][0], 3.0);  // 0.5+1+1.5
}

TEST(PipelineTest, RunMaterializeSelectedLanes) {
  BatPtr a = MakeBat<int32_t>({1, 5, 10, 15});
  Pipeline p({a}, 2);
  ASSERT_TRUE(p.AddSelectRange(0, 5, 10).ok());
  auto doubled = p.AddMapColConst(BinOp::kMul, 0, 2);
  ASSERT_TRUE(doubled.ok());
  auto out = p.RunMaterialize(*doubled);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ((*out)->Count(), 2u);
  EXPECT_EQ((*out)->ValueAt<int32_t>(0), 10);
  EXPECT_EQ((*out)->ValueAt<int32_t>(1), 20);
}

TEST(PipelineTest, GroupIdOutOfRangeRejected) {
  BatPtr g = MakeBat<int32_t>({0, 7});
  Pipeline p({g}, 2);
  ASSERT_TRUE(p.SetAggregate(0, 2, {{AggFn::kCount, 0}}).ok());
  EXPECT_FALSE(p.Run().ok());
}

TEST(PipelineTest, MixedTypeMapRejected) {
  BatPtr a = MakeBat<int32_t>({1});
  BatPtr b = MakeBat<double>({1.0});
  Pipeline p({a, b}, 1);
  EXPECT_FALSE(p.AddMapColCol(BinOp::kAdd, 0, 1).ok());
}

TEST(PipelineTest, CompressedColumnSourceMatchesPlain) {
  // A compressed :int column decompressed vector-at-a-time must yield the
  // same aggregates as the plain column (§5's compressed scan).
  const size_t n = 20000;
  BatPtr flag = UniformInts(n, 4, 31);
  BatPtr key = UniformInts(n, 1000, 32);
  auto compressed = compress::CompressedBat::Compress(
      key, compress::Codec::kPfor);
  ASSERT_TRUE(compressed.ok());

  auto run = [&](std::vector<PipelineColumn> cols) {
    Pipeline p(std::move(cols), 777);
    EXPECT_TRUE(p.AddSelectRange(1, 100, 800).ok());
    EXPECT_TRUE(
        p.SetAggregate(0, 4, {{AggFn::kSum, 1}, {AggFn::kCount, 0}}).ok());
    auto r = p.Run();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return *r;
  };
  const AggResult plain = run({flag, key});
  const AggResult packed = run({flag, &*compressed});
  for (size_t a = 0; a < plain.aggregates.size(); ++a) {
    for (size_t g = 0; g < plain.ngroups; ++g) {
      EXPECT_DOUBLE_EQ(packed.aggregates[a][g], plain.aggregates[a][g]);
    }
  }
}

TEST(PipelineTest, CompressedColumnLengthMismatchRejected) {
  BatPtr flag = UniformInts(100, 4, 1);
  BatPtr other = UniformInts(50, 10, 2);
  auto compressed =
      compress::CompressedBat::Compress(other, compress::Codec::kPfor);
  ASSERT_TRUE(compressed.ok());
  Pipeline p({flag, &*compressed}, 8);
  ASSERT_TRUE(p.SetAggregate(Pipeline::kNoGroup, 1, {{AggFn::kCount, 0}}).ok());
  EXPECT_FALSE(p.Run().ok());
}

// Property: the result must not depend on the vector size.
class VectorSizeInvarianceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(VectorSizeInvarianceTest, SameResultAnyVectorSize) {
  const size_t n = 10001;  // deliberately not a multiple of any vector size
  BatPtr flag = UniformInts(n, 4, 1);
  BatPtr key = UniformInts(n, 1000, 2);
  BatPtr val = UniformDoubles(n, 3);

  auto run = [&](size_t vsize) {
    Pipeline p({flag, key, val}, vsize);
    EXPECT_TRUE(p.AddSelectRange(1, 100, 800).ok());
    auto scaled = p.AddMapColConst(BinOp::kMul, 2, 3.5);
    EXPECT_TRUE(scaled.ok());
    EXPECT_TRUE(p.SetAggregate(0, 4,
                               {{AggFn::kSum, *scaled},
                                {AggFn::kCount, 0},
                                {AggFn::kMax, 2}})
                    .ok());
    auto r = p.Run();
    EXPECT_TRUE(r.ok());
    return *r;
  };

  const AggResult reference = run(n);  // operator-at-a-time
  const AggResult got = run(GetParam());
  for (size_t a = 0; a < reference.aggregates.size(); ++a) {
    for (size_t g = 0; g < reference.ngroups; ++g) {
      EXPECT_NEAR(got.aggregates[a][g], reference.aggregates[a][g], 1e-6)
          << "agg " << a << " group " << g;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(VectorSizes, VectorSizeInvarianceTest,
                         ::testing::Values(1, 2, 7, 64, 100, 1000, 4096,
                                           100000));

}  // namespace
}  // namespace mammoth::vec
