#include "index/zonemap.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "core/select.h"

namespace mammoth::index {
namespace {

BatPtr ClusteredInts(size_t n, uint64_t seed) {
  // Nearly sorted (timestamps-like): value grows with position plus noise.
  Rng rng(seed);
  BatPtr b = Bat::New(PhysType::kInt32);
  for (size_t i = 0; i < n; ++i) {
    b->Append<int32_t>(static_cast<int32_t>(i * 4 + rng.Uniform(16)));
  }
  return b;
}

TEST(ZoneMapTest, MatchesKernelRangeSelect) {
  Rng rng(3);
  BatPtr b = Bat::New(PhysType::kInt32);
  for (int i = 0; i < 20000; ++i) {
    b->Append<int32_t>(static_cast<int32_t>(rng.Uniform(100000)));
  }
  auto zm = ZoneMap::Build(b, 512);
  ASSERT_TRUE(zm.ok());
  for (int q = 0; q < 30; ++q) {
    const int64_t lo = static_cast<int64_t>(rng.Uniform(90000));
    const int64_t hi = lo + static_cast<int64_t>(rng.Uniform(10000));
    auto got = zm->RangeSelect(Value::Int(lo), Value::Int(hi));
    ASSERT_TRUE(got.ok());
    auto want =
        algebra::RangeSelect(b, nullptr, Value::Int(lo), Value::Int(hi));
    ASSERT_TRUE(want.ok());
    ASSERT_EQ((*got)->Count(), (*want)->Count()) << "query " << q;
    for (size_t i = 0; i < (*got)->Count(); ++i) {
      ASSERT_EQ((*got)->OidAt(i), (*want)->OidAt(i));
    }
  }
}

TEST(ZoneMapTest, SkipsBlocksOnClusteredData) {
  BatPtr b = ClusteredInts(100000, 5);
  auto zm = ZoneMap::Build(b, 1024);
  ASSERT_TRUE(zm.ok());
  EXPECT_EQ(zm->NumBlocks(), (100000 + 1023) / 1024);
  // A narrow range on clustered data touches very few blocks.
  const size_t touched = zm->BlocksTouched(Value::Int(200000),
                                           Value::Int(201000));
  EXPECT_LE(touched, 2u);
  // Results still exact.
  auto got = zm->RangeSelect(Value::Int(200000), Value::Int(201000));
  auto want = algebra::RangeSelect(b, nullptr, Value::Int(200000),
                                   Value::Int(201000));
  ASSERT_TRUE(got.ok() && want.ok());
  EXPECT_EQ((*got)->Count(), (*want)->Count());
}

TEST(ZoneMapTest, RandomDataTouchesEverything) {
  Rng rng(9);
  BatPtr b = Bat::New(PhysType::kInt32);
  for (int i = 0; i < 50000; ++i) {
    b->Append<int32_t>(static_cast<int32_t>(rng.Next()));
  }
  auto zm = ZoneMap::Build(b, 1024);
  ASSERT_TRUE(zm.ok());
  // A wide range over random data: no skipping possible.
  EXPECT_EQ(zm->BlocksTouched(Value::Int(INT32_MIN / 2),
                              Value::Int(INT32_MAX / 2)),
            zm->NumBlocks());
}

TEST(ZoneMapTest, EmptyRangeAndEdges) {
  BatPtr b = ClusteredInts(5000, 7);
  auto zm = ZoneMap::Build(b, 128);
  ASSERT_TRUE(zm.ok());
  auto none = zm->RangeSelect(Value::Int(-100), Value::Int(-1));
  ASSERT_TRUE(none.ok());
  EXPECT_EQ((*none)->Count(), 0u);
  auto all = zm->RangeSelect(Value::Int(0), Value::Int(1 << 30));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ((*all)->Count(), 5000u);
  // Out-of-domain bounds beyond int32: no false positives.
  auto big = zm->RangeSelect(Value::Int(int64_t{1} << 40),
                             Value::Int(int64_t{1} << 41));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ((*big)->Count(), 0u);
}

TEST(ZoneMapTest, Int64Columns) {
  BatPtr b = Bat::New(PhysType::kInt64);
  for (int i = 0; i < 10000; ++i) {
    b->Append<int64_t>(static_cast<int64_t>(i) << 33);
  }
  auto zm = ZoneMap::Build(b, 256);
  ASSERT_TRUE(zm.ok());
  auto got = zm->RangeSelect(Value::Int(int64_t{100} << 33),
                             Value::Int(int64_t{200} << 33));
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->Count(), 101u);
}

TEST(ZoneMapTest, Validation) {
  BatPtr s = MakeStringBat({"a"});
  EXPECT_FALSE(ZoneMap::Build(s).ok());
  BatPtr b = MakeBat<int32_t>({1});
  EXPECT_FALSE(ZoneMap::Build(b, 0).ok());
}

}  // namespace
}  // namespace mammoth::index
