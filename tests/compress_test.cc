#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "common/rng.h"
#include "compress/bitpack.h"
#include "compress/pdict.h"
#include "compress/pfor.h"
#include "compress/rle.h"

namespace mammoth::compress {
namespace {

TEST(BitpackTest, RoundTripAllWidths) {
  Rng rng(1);
  for (int bits = 0; bits <= 32; ++bits) {
    const size_t n = 333;
    std::vector<uint32_t> values(n);
    const uint64_t mask =
        bits == 0 ? 0 : (bits == 32 ? 0xffffffffull : ((1ull << bits) - 1));
    for (auto& v : values) v = static_cast<uint32_t>(rng.Next() & mask);
    std::vector<uint8_t> packed;
    PackBits(values.data(), n, bits, &packed);
    EXPECT_EQ(packed.size(), PackedBytes(n, bits)) << bits;
    packed.resize(packed.size() + 8);  // unpack slack
    std::vector<uint32_t> back(n);
    UnpackBits(packed.data(), n, bits, back.data());
    ASSERT_EQ(back, values) << "bits=" << bits;
  }
}

std::vector<int32_t> MakeData(const std::string& kind, size_t n,
                              uint64_t seed) {
  Rng rng(seed);
  std::vector<int32_t> v(n);
  if (kind == "small_range") {
    for (auto& x : v) x = static_cast<int32_t>(rng.Uniform(1000));
  } else if (kind == "skewed_outliers") {
    for (auto& x : v) {
      x = static_cast<int32_t>(rng.Uniform(64));
      if (rng.Uniform(100) < 3) x = static_cast<int32_t>(rng.Next());
    }
  } else if (kind == "sorted") {
    int32_t cur = -1000;
    for (auto& x : v) {
      cur += static_cast<int32_t>(rng.Uniform(5));
      x = cur;
    }
  } else if (kind == "constant") {
    for (auto& x : v) x = 42;
  } else if (kind == "random_full") {
    for (auto& x : v) x = static_cast<int32_t>(rng.Next());
  } else if (kind == "low_cardinality") {
    for (auto& x : v) {
      x = static_cast<int32_t>(rng.Uniform(16)) * 1000003;
    }
  } else if (kind == "runs") {
    int32_t cur = 0;
    size_t i = 0;
    while (i < n) {
      cur = static_cast<int32_t>(rng.Uniform(10));
      size_t run = 1 + rng.Uniform(50);
      for (size_t j = 0; j < run && i < n; ++j) v[i++] = cur;
    }
  }
  return v;
}

class CompressionRoundTripTest
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {};

TEST_P(CompressionRoundTripTest, PforRoundTrips) {
  const auto& [kind, n] = GetParam();
  const auto data = MakeData(kind, n, 7);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(PforEncode(data.data(), data.size(), &buf).ok());
  std::vector<int32_t> back;
  ASSERT_TRUE(PforDecode(buf, &back).ok());
  EXPECT_EQ(back, data);
}

TEST_P(CompressionRoundTripTest, PforDeltaRoundTrips) {
  const auto& [kind, n] = GetParam();
  const auto data = MakeData(kind, n, 11);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(PforDeltaEncode(data.data(), data.size(), &buf).ok());
  std::vector<int32_t> back;
  ASSERT_TRUE(PforDeltaDecode(buf, &back).ok());
  EXPECT_EQ(back, data);
}

TEST_P(CompressionRoundTripTest, RleRoundTrips) {
  const auto& [kind, n] = GetParam();
  const auto data = MakeData(kind, n, 13);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(RleEncode(data.data(), data.size(), &buf).ok());
  std::vector<int32_t> back;
  ASSERT_TRUE(RleDecode(buf, &back).ok());
  EXPECT_EQ(back, data);
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, CompressionRoundTripTest,
    ::testing::Combine(::testing::Values("small_range", "skewed_outliers",
                                         "sorted", "constant", "random_full",
                                         "low_cardinality", "runs"),
                       ::testing::Values(size_t{0}, size_t{1}, size_t{127},
                                         size_t{128}, size_t{129},
                                         size_t{10000})));

TEST(PdictTest, RoundTripsLowCardinality) {
  const auto data = MakeData("low_cardinality", 5000, 17);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(PdictEncode(data.data(), data.size(), &buf).ok());
  std::vector<int32_t> back;
  ASSERT_TRUE(PdictDecode(buf, &back).ok());
  EXPECT_EQ(back, data);
  // 16 distinct values -> 4 bits/code: compression must be strong.
  EXPECT_LT(buf.size(), data.size() * 4 / 4);
}

TEST(PdictTest, RejectsHighCardinality) {
  std::vector<int32_t> data(100000);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<int32_t>(i);
  std::vector<uint8_t> buf;
  EXPECT_FALSE(PdictEncode(data.data(), data.size(), &buf).ok());
}

TEST(PdictTest, ConstantColumnUsesZeroBits) {
  const auto data = MakeData("constant", 10000, 1);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(PdictEncode(data.data(), data.size(), &buf).ok());
  EXPECT_LT(buf.size(), 64u);  // header + 1 dict entry + no payload
  std::vector<int32_t> back;
  ASSERT_TRUE(PdictDecode(buf, &back).ok());
  EXPECT_EQ(back, data);
}

TEST(PforTest, CompressesSmallRangeWell) {
  const auto data = MakeData("small_range", 100000, 5);  // values < 1000
  std::vector<uint8_t> buf;
  ASSERT_TRUE(PforEncode(data.data(), data.size(), &buf).ok());
  // 10 bits/value vs 32 -> better than 2.5x.
  EXPECT_LT(buf.size(), data.size() * 4 / 2);
}

TEST(PforTest, OutliersBecomeExceptionsNotWidth) {
  // 97% tiny values + 3% huge: PFOR should stay near the tiny width.
  const auto data = MakeData("skewed_outliers", 100000, 3);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(PforEncode(data.data(), data.size(), &buf).ok());
  EXPECT_LT(buf.size(), data.size() * 4 / 2);
}

TEST(PforDeltaTest, SortedCompressesBetterThanPlainPfor) {
  const auto data = MakeData("sorted", 100000, 9);
  std::vector<uint8_t> plain, delta;
  ASSERT_TRUE(PforEncode(data.data(), data.size(), &plain).ok());
  ASSERT_TRUE(PforDeltaEncode(data.data(), data.size(), &delta).ok());
  EXPECT_LT(delta.size(), plain.size());
}

TEST(PforDeltaTest, HandlesExtremeValues) {
  std::vector<int32_t> data = {std::numeric_limits<int32_t>::min(),
                               std::numeric_limits<int32_t>::max(),
                               std::numeric_limits<int32_t>::min(), 0, -1, 1};
  std::vector<uint8_t> buf;
  ASSERT_TRUE(PforDeltaEncode(data.data(), data.size(), &buf).ok());
  std::vector<int32_t> back;
  ASSERT_TRUE(PforDeltaDecode(buf, &back).ok());
  EXPECT_EQ(back, data);
}

TEST(CompressErrorsTest, GarbageRejected) {
  std::vector<uint8_t> junk = {1, 2, 3};
  std::vector<int32_t> out;
  EXPECT_FALSE(PforDecode(junk, &out).ok());
  EXPECT_FALSE(PdictDecode(junk, &out).ok());
  EXPECT_FALSE(RleDecode(junk, &out).ok());
  // Wrong-codec streams are rejected by magic.
  std::vector<int32_t> data = {1, 2, 3};
  std::vector<uint8_t> pfor_buf;
  ASSERT_TRUE(PforEncode(data.data(), 3, &pfor_buf).ok());
  EXPECT_FALSE(PdictDecode(pfor_buf, &out).ok());
  EXPECT_FALSE(PforDeltaDecode(pfor_buf, &out).ok());
}

TEST(RleTest, RunsCompress) {
  const auto data = MakeData("runs", 100000, 19);
  std::vector<uint8_t> buf;
  ASSERT_TRUE(RleEncode(data.data(), data.size(), &buf).ok());
  EXPECT_LT(buf.size(), data.size() * 4 / 3);
}

}  // namespace
}  // namespace mammoth::compress
