#include "cost/model.h"

#include <gtest/gtest.h>

#include "cost/calibrator.h"

namespace mammoth::cost {
namespace {

HardwareProfile Hw() { return HardwareProfile::Default(); }

TEST(HardwareProfileTest, DefaultIsOrdered) {
  const HardwareProfile hw = Hw();
  ASSERT_GE(hw.levels.size(), 2u);
  for (size_t i = 1; i < hw.levels.size(); ++i) {
    EXPECT_GT(hw.levels[i].capacity_bytes, hw.levels[i - 1].capacity_bytes);
    EXPECT_GE(hw.levels[i].rand_miss_ns, hw.levels[i - 1].rand_miss_ns);
  }
  EXPECT_FALSE(hw.ToString().empty());
}

TEST(AccessPatternTest, SeqTraversalLinearInBytes) {
  const HardwareProfile hw = Hw();
  const double one = ScoreNs(hw, SeqTraversal(hw, 1 << 20));
  const double two = ScoreNs(hw, SeqTraversal(hw, 2 << 20));
  EXPECT_NEAR(two / one, 2.0, 0.01);
}

TEST(AccessPatternTest, RandomAccessCheapWhileCacheResident) {
  const HardwareProfile hw = Hw();
  const size_t accesses = 1 << 20;
  // Region within L1 vs region far beyond L3.
  const double small = ScoreNs(hw, RandomAccess(hw, 16 << 10, accesses));
  const double large = ScoreNs(hw, RandomAccess(hw, 256 << 20, accesses));
  EXPECT_GT(large / small, 20.0);
}

TEST(AccessPatternTest, RandomAccessMonotoneInRegion) {
  const HardwareProfile hw = Hw();
  const size_t accesses = 1 << 18;
  double prev = 0;
  for (size_t bytes = 16 << 10; bytes <= (64 << 20); bytes *= 4) {
    const double ns = ScoreNs(hw, RandomAccess(hw, bytes, accesses));
    EXPECT_GE(ns, prev * 0.999) << bytes;
    prev = ns;
  }
}

TEST(AccessPatternTest, ScatterThrashesBeyondLineBudget) {
  const HardwareProfile hw = Hw();
  const size_t bytes = 64 << 20;
  // 2^6 regions: fine. 2^16 regions: way past L1/L2 lines and TLB entries.
  const double few = ScoreNs(hw, ScatterRegions(hw, bytes, 1u << 6));
  const double many = ScoreNs(hw, ScatterRegions(hw, bytes, 1u << 16));
  EXPECT_GT(many / few, 5.0);
}

TEST(OperatorModelTest, HashJoinDegradesWithInnerSize) {
  const HardwareProfile hw = Hw();
  // Per-probe cost should rise sharply once the inner table leaves cache.
  const double fits =
      HashJoinCostNs(hw, 1 << 20, 1 << 12, 12) / static_cast<double>(1 << 20);
  const double spills =
      HashJoinCostNs(hw, 1 << 20, 1 << 22, 12) / static_cast<double>(1 << 20);
  EXPECT_GT(spills / fits, 3.0);
}

TEST(OperatorModelTest, MultiPassClusterBeatsSinglePassAtHighBits) {
  const HardwareProfile hw = Hw();
  const size_t n = 8 << 20;
  const double one_pass = RadixClusterCostNs(hw, n, 12, {14});
  const double two_pass = RadixClusterCostNs(hw, n, 12, {7, 7});
  EXPECT_LT(two_pass, one_pass);
  // And at low bits a single pass is not worse than two.
  const double low_one = RadixClusterCostNs(hw, n, 12, {4});
  const double low_two = RadixClusterCostNs(hw, n, 12, {2, 2});
  EXPECT_LE(low_one, low_two * 1.05);
}

TEST(OperatorModelTest, PartitionedBeatsSimpleJoinForLargeInputs) {
  // The order-of-magnitude claim is from hardware with no memory-level
  // parallelism; evaluate the model under the paper-era profile.
  const HardwareProfile hw = HardwareProfile::Pentium4Era();
  const size_t n = 8 << 20;
  const double simple = PartitionedJoinCostNs(hw, n, n, 12, 0, 1);
  const RadixPlan plan = PlanRadixJoin(hw, n, n, 12);
  EXPECT_GT(plan.bits, 0);
  EXPECT_LT(plan.predicted_ns, simple);
  // The planned partition should make the inner side cache-resident-ish.
  const size_t part_bytes = (n >> plan.bits) * (12 + 8);
  EXPECT_LT(part_bytes, 4 * hw.levels.back().capacity_bytes);
}

TEST(OperatorModelTest, MlpShrinksThePartitioningWin) {
  // On a deep-MLP machine the same join gains much less from partitioning
  // — the modern-hardware effect the measured E4 numbers show.
  const size_t n = 8 << 20;
  HardwareProfile modern = HardwareProfile::Default();
  modern.mlp = 8.0;
  const double simple_modern = PartitionedJoinCostNs(modern, n, n, 12, 0, 1);
  const RadixPlan plan_modern = PlanRadixJoin(modern, n, n, 12);
  const double gain_modern = simple_modern / plan_modern.predicted_ns;

  const HardwareProfile old_hw = HardwareProfile::Pentium4Era();
  const double simple_old = PartitionedJoinCostNs(old_hw, n, n, 12, 0, 1);
  const RadixPlan plan_old = PlanRadixJoin(old_hw, n, n, 12);
  const double gain_old = simple_old / plan_old.predicted_ns;
  EXPECT_GT(gain_old, gain_modern);
  EXPECT_GT(gain_old, 3.0);  // paper-era: large multiple
}

TEST(OperatorModelTest, PlanPrefersNoClusteringForTinyInputs) {
  const HardwareProfile hw = Hw();
  const RadixPlan plan = PlanRadixJoin(hw, 1000, 1000, 12);
  EXPECT_EQ(plan.bits, 0);
}

TEST(OperatorModelTest, ScanCostLinear) {
  const HardwareProfile hw = Hw();
  EXPECT_NEAR(ScanCostNs(hw, 2000, 4) / ScanCostNs(hw, 1000, 4), 2.0, 0.05);
}

TEST(OperatorModelTest, EraDecidesProjectionStrategy) {
  // On the paper's hardware the cost model must prefer radix-decluster; on
  // a modern deep-MLP machine it must prefer the naive gather (see E5 in
  // EXPERIMENTS.md).
  const size_t n = 32 << 20, nvalues = 128 << 20;
  const HardwareProfile old_hw = HardwareProfile::Pentium4Era();
  EXPECT_LT(DeclusterProjectionCostNs(old_hw, n, nvalues, 4),
            NaiveProjectionCostNs(old_hw, n, nvalues, 4));
  HardwareProfile modern = HardwareProfile::Default();
  modern.mlp = 10.0;
  modern.levels[2].capacity_bytes = 256 << 20;  // this host's giant LLC
  EXPECT_GT(DeclusterProjectionCostNs(modern, n, nvalues, 4),
            NaiveProjectionCostNs(modern, n, nvalues, 4));
}

TEST(OperatorModelTest, MlpDiscountsIndependentAccesses) {
  HardwareProfile hw = HardwareProfile::Default();
  hw.mlp = 1.0;
  const double serial = ScoreNs(hw, RandomAccess(hw, 1 << 30, 1 << 20));
  hw.mlp = 8.0;
  const double overlapped = ScoreNs(hw, RandomAccess(hw, 1 << 30, 1 << 20));
  EXPECT_NEAR(serial / overlapped, 8.0, 0.01);
}

TEST(CalibratorTest, MlpAtLeastOne) {
  const double chase = MeasureRandomLatencyNs(64 << 20, 1 << 15);
  const double gather = MeasureGatherLatencyNs(64 << 20, 1 << 15);
  EXPECT_GT(chase, 0.0);
  EXPECT_GT(gather, 0.0);
  // Modern OoO cores overlap independent misses: gather must be faster.
  EXPECT_LT(gather, chase);
}

TEST(CalibratorTest, RandomLatencyGrowsWithWorkingSet) {
  // Keep iterations small: this is a smoke test, not a benchmark.
  const double small = MeasureRandomLatencyNs(16 << 10, 1 << 16);
  const double large = MeasureRandomLatencyNs(32 << 20, 1 << 16);
  EXPECT_GT(small, 0.0);
  EXPECT_GT(large, small);  // RAM must be slower than L1
}

TEST(CalibratorTest, SequentialFasterThanRandom) {
  const double seq = MeasureSequentialLatencyNs(32 << 20, 1 << 20);
  const double rnd = MeasureRandomLatencyNs(32 << 20, 1 << 16);
  EXPECT_GT(rnd / seq, 4.0);
}

}  // namespace
}  // namespace mammoth::cost
