#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.h"
#include "layout/nsm.h"
#include "layout/pax.h"

namespace mammoth::layout {
namespace {

RowSchema Schema8() {
  // 8 int32 columns = 32B rows.
  return RowSchema(std::vector<PhysType>(8, PhysType::kInt32));
}

struct Row8 {
  int32_t f[8];
};

template <typename Store>
Store FillStore(size_t nrows, uint64_t seed) {
  Store store(Schema8());
  Rng rng(seed);
  for (size_t r = 0; r < nrows; ++r) {
    Row8 row;
    for (int c = 0; c < 8; ++c) {
      row.f[c] = static_cast<int32_t>(r * 8 + c);
    }
    store.AppendRow(&row);
  }
  return store;
}

TEST(RowSchemaTest, OffsetsAndWidth) {
  RowSchema s({PhysType::kInt32, PhysType::kInt64, PhysType::kInt8,
               PhysType::kDouble});
  EXPECT_EQ(s.row_width(), 4u + 8 + 1 + 8);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 4u);
  EXPECT_EQ(s.offset(2), 12u);
  EXPECT_EQ(s.offset(3), 13u);
}

TEST(NsmStoreTest, FieldsReadBack) {
  auto store = FillStore<NsmStore>(10000, 1);
  EXPECT_EQ(store.RowCount(), 10000u);
  EXPECT_GT(store.PageCount(), 1u);
  for (size_t r : {size_t{0}, size_t{255}, size_t{256}, size_t{9999}}) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(store.Field<int32_t>(r, c), static_cast<int32_t>(r * 8 + c));
    }
  }
}

TEST(NsmStoreTest, ReadRowReconstructs) {
  auto store = FillStore<NsmStore>(1000, 2);
  Row8 row;
  store.ReadRow(777, &row);
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(row.f[c], static_cast<int32_t>(777 * 8 + c));
  }
}

TEST(PaxStoreTest, FieldsReadBack) {
  auto store = FillStore<PaxStore>(10000, 3);
  EXPECT_EQ(store.RowCount(), 10000u);
  for (size_t r : {size_t{0}, size_t{255}, size_t{256}, size_t{9999}}) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(store.Field<int32_t>(r, c), static_cast<int32_t>(r * 8 + c));
    }
  }
}

TEST(PaxStoreTest, ReadRowReconstructs) {
  auto store = FillStore<PaxStore>(1000, 4);
  Row8 row;
  store.ReadRow(513, &row);
  for (int c = 0; c < 8; ++c) {
    EXPECT_EQ(row.f[c], static_cast<int32_t>(513 * 8 + c));
  }
}

TEST(PaxStoreTest, MinipagesAreContiguousPerColumn) {
  PaxStore store(Schema8());
  const size_t rpp = store.rows_per_page();
  // Fill exactly one page.
  for (size_t r = 0; r < rpp; ++r) {
    Row8 row;
    for (int c = 0; c < 8; ++c) row.f[c] = static_cast<int32_t>(c);
    store.AppendRow(&row);
  }
  // Within a page, consecutive rows of one column are adjacent in memory.
  const uint8_t* p0 = store.FieldPtr(0, 3);
  const uint8_t* p1 = store.FieldPtr(1, 3);
  EXPECT_EQ(p1 - p0, 4);
  // While in NSM they are a full row apart.
  NsmStore nsm(Schema8());
  Row8 row{};
  nsm.AppendRow(&row);
  nsm.AppendRow(&row);
  EXPECT_EQ(nsm.FieldPtr(1, 3) - nsm.FieldPtr(0, 3), 32);
}

TEST(StoresAgreeTest, NsmAndPaxSameLogicalContent) {
  auto nsm = FillStore<NsmStore>(5000, 5);
  auto pax = FillStore<PaxStore>(5000, 5);
  Rng rng(6);
  for (int probe = 0; probe < 500; ++probe) {
    const size_t r = rng.Uniform(5000);
    const size_t c = rng.Uniform(8);
    EXPECT_EQ(nsm.Field<int32_t>(r, c), pax.Field<int32_t>(r, c));
  }
}

}  // namespace
}  // namespace mammoth::layout
