#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "core/bat.h"
#include "core/sort.h"
#include "parallel/exec_context.h"

namespace mammoth {
namespace {

using algebra::RefineSort;
using algebra::RefineSortResult;
using algebra::Sort;
using algebra::SortResult;
using algebra::TopN;
using parallel::ExecContext;

std::vector<Oid> OidsOf(const BatPtr& b) {
  std::vector<Oid> out;
  out.reserve(b->Count());
  for (size_t i = 0; i < b->Count(); ++i) out.push_back(b->OidAt(i));
  return out;
}

// ------------------------------------------------- trivial-size properties --
// A 0/1-row result is both sorted and reverse-sorted; the old kernel set
// only one flag depending on the requested direction.

TEST(SortPropsTest, EmptySortSetsBothOrderFlags) {
  for (bool desc : {false, true}) {
    BatPtr b = Bat::New(PhysType::kInt32);
    auto s = Sort(b, desc, ExecContext::Serial());
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s->sorted->Count(), 0u);
    EXPECT_TRUE(s->sorted->props().sorted) << "desc=" << desc;
    EXPECT_TRUE(s->sorted->props().revsorted) << "desc=" << desc;
    EXPECT_TRUE(s->sorted->props().key);
    EXPECT_EQ(s->order->Count(), 0u);
  }
}

TEST(SortPropsTest, SingleRowSortSetsBothOrderFlags) {
  for (bool desc : {false, true}) {
    BatPtr b = MakeBat<int32_t>({42});
    auto s = Sort(b, desc, ExecContext::Serial());
    ASSERT_TRUE(s.ok());
    ASSERT_EQ(s->sorted->Count(), 1u);
    EXPECT_EQ(s->sorted->ValueAt<int32_t>(0), 42);
    EXPECT_TRUE(s->sorted->props().sorted) << "desc=" << desc;
    EXPECT_TRUE(s->sorted->props().revsorted) << "desc=" << desc;
    EXPECT_TRUE(s->sorted->props().key);
    EXPECT_EQ(OidsOf(s->order), (std::vector<Oid>{0}));
  }
}

// --------------------------------------------------- property fast paths --

TEST(SortFastPathTest, SortedInputYieldsDenseIdentityOrder) {
  BatPtr b = MakeBat<int32_t>({1, 3, 3, 7});
  b->mutable_props().sorted = true;
  auto s = Sort(b, /*descending=*/false, ExecContext::Serial());
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->order->IsDenseTail()) << "fast path must not materialize";
  EXPECT_EQ(OidsOf(s->order), (std::vector<Oid>{0, 1, 2, 3}));
  EXPECT_EQ(s->sorted->ValueAt<int32_t>(0), 1);
  EXPECT_EQ(s->sorted->ValueAt<int32_t>(3), 7);
  EXPECT_TRUE(s->sorted->props().sorted);
}

TEST(SortFastPathTest, RevsortedInputYieldsDenseIdentityOrderDescending) {
  BatPtr b = MakeBat<int32_t>({7, 3, 3, 1});
  b->mutable_props().revsorted = true;
  auto s = Sort(b, /*descending=*/true, ExecContext::Serial());
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->order->IsDenseTail());
  EXPECT_EQ(OidsOf(s->order), (std::vector<Oid>{0, 1, 2, 3}));
  EXPECT_TRUE(s->sorted->props().revsorted);
}

TEST(SortFastPathTest, FastPathRespectsHseqbase) {
  BatPtr b = MakeBat<int32_t>({1, 2, 3});
  b->set_hseqbase(100);
  b->mutable_props().sorted = true;
  auto s = Sort(b, /*descending=*/false, ExecContext::Serial());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(OidsOf(s->order), (std::vector<Oid>{100, 101, 102}));
}

TEST(SortFastPathTest, KeyedSortedInputReversesForDescending) {
  BatPtr b = MakeBat<int32_t>({1, 3, 5, 7});
  b->mutable_props().sorted = true;
  b->mutable_props().key = true;
  auto s = Sort(b, /*descending=*/true, ExecContext::Serial());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(OidsOf(s->order), (std::vector<Oid>{3, 2, 1, 0}));
  EXPECT_EQ(s->sorted->ValueAt<int32_t>(0), 7);
  EXPECT_EQ(s->sorted->ValueAt<int32_t>(3), 1);
  EXPECT_TRUE(s->sorted->props().revsorted);
  EXPECT_TRUE(s->sorted->props().key);
}

TEST(SortFastPathTest, SortedInputWithTiesIsNotBlindlyReversed) {
  // sorted (not key): a descending ask must keep head order inside each
  // tie group — plain reversal would flip it.
  BatPtr b = MakeBat<int32_t>({1, 3, 3, 7});
  b->mutable_props().sorted = true;
  auto s = Sort(b, /*descending=*/true, ExecContext::Serial());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(OidsOf(s->order), (std::vector<Oid>{3, 1, 2, 0}));
}

TEST(SortFastPathTest, DenseTailInputSortsWithoutMaterializing) {
  BatPtr b = Bat::NewDense(50, 4, /*hseqbase=*/10);
  auto s = Sort(b, /*descending=*/false, ExecContext::Serial());
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(s->order->IsDenseTail());
  EXPECT_EQ(OidsOf(s->order), (std::vector<Oid>{10, 11, 12, 13}));
  EXPECT_EQ(s->sorted->OidAt(0), 50u);
  EXPECT_EQ(s->sorted->OidAt(3), 53u);
}

// ----------------------------------------------------------- correctness --

TEST(SortKernelTest, StableForAllEqualKeysIsIdentity) {
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(1000);
  int32_t* v = b->MutableTailData<int32_t>();
  for (size_t i = 0; i < 1000; ++i) v[i] = 7;
  for (bool desc : {false, true}) {
    auto s = Sort(b, desc, ExecContext::Serial());
    ASSERT_TRUE(s.ok());
    for (size_t i = 0; i < 1000; ++i) {
      ASSERT_EQ(s->order->OidAt(i), i) << "desc=" << desc;
    }
  }
}

TEST(SortKernelTest, DescendingStrings) {
  BatPtr b = MakeStringBat({"mole", "ape", "zebra", "ape"});
  auto s = Sort(b, /*descending=*/true, ExecContext::Serial());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->sorted->StringAt(0), "zebra");
  EXPECT_EQ(s->sorted->StringAt(1), "mole");
  EXPECT_EQ(s->sorted->StringAt(2), "ape");
  EXPECT_EQ(s->sorted->StringAt(3), "ape");
  // Stability: the two "ape" rows keep head order.
  EXPECT_EQ(OidsOf(s->order), (std::vector<Oid>{2, 0, 1, 3}));
  EXPECT_TRUE(s->sorted->props().revsorted);
}

/// Oracle: the stable sort permutation computed the textbook way.
template <typename T>
std::vector<uint32_t> StableSortOracle(const BatPtr& b, bool desc) {
  const T* v = b->TailData<T>();
  std::vector<uint32_t> perm(b->Count());
  std::iota(perm.begin(), perm.end(), 0u);
  std::stable_sort(perm.begin(), perm.end(), [&](uint32_t a, uint32_t c) {
    return desc ? v[c] < v[a] : v[a] < v[c];
  });
  return perm;
}

TEST(SortKernelTest, Int64RadixMatchesStableSortOracle) {
  Rng rng(5);
  BatPtr b = Bat::New(PhysType::kInt64);
  b->Resize(5000);
  int64_t* v = b->MutableTailData<int64_t>();
  for (size_t i = 0; i < 5000; ++i) {
    v[i] = static_cast<int64_t>(rng.Next());  // incl. negatives
  }
  for (bool desc : {false, true}) {
    auto s = Sort(b, desc, ExecContext::Serial());
    ASSERT_TRUE(s.ok());
    const std::vector<uint32_t> oracle = StableSortOracle<int64_t>(b, desc);
    for (size_t i = 0; i < 5000; ++i) {
      ASSERT_EQ(s->order->OidAt(i), oracle[i]) << "desc=" << desc;
    }
  }
}

TEST(SortKernelTest, Int32DescendingRadixMatchesStableSortOracle) {
  Rng rng(6);
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(5000);
  int32_t* v = b->MutableTailData<int32_t>();
  for (size_t i = 0; i < 5000; ++i) {
    v[i] = static_cast<int32_t>(rng.Uniform(100));  // heavy duplicates
  }
  auto s = Sort(b, /*descending=*/true, ExecContext::Serial());
  ASSERT_TRUE(s.ok());
  const std::vector<uint32_t> oracle = StableSortOracle<int32_t>(b, true);
  for (size_t i = 0; i < 5000; ++i) {
    ASSERT_EQ(s->order->OidAt(i), oracle[i]);
  }
}

TEST(SortKernelTest, DoubleSortMatchesStableSortOracle) {
  Rng rng(7);
  BatPtr b = Bat::New(PhysType::kDouble);
  b->Resize(4000);
  double* v = b->MutableTailData<double>();
  for (size_t i = 0; i < 4000; ++i) v[i] = rng.NextDouble() - 0.5;
  for (bool desc : {false, true}) {
    auto s = Sort(b, desc, ExecContext::Serial());
    ASSERT_TRUE(s.ok());
    const std::vector<uint32_t> oracle = StableSortOracle<double>(b, desc);
    for (size_t i = 0; i < 4000; ++i) {
      ASSERT_EQ(s->order->OidAt(i), oracle[i]) << "desc=" << desc;
    }
  }
}

// ------------------------------------------------------------------ TopN --

TEST(TopNTest, KLargerThanInputClampsToFullOrder) {
  BatPtr b = MakeBat<int32_t>({50, 10, 40, 20, 30});
  auto top = TopN(b, 99, /*descending=*/false, ExecContext::Serial());
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(OidsOf(*top), (std::vector<Oid>{1, 3, 4, 2, 0}));
}

TEST(TopNTest, KZeroYieldsEmpty) {
  BatPtr b = MakeBat<int32_t>({3, 1, 2});
  auto top = TopN(b, 0, /*descending=*/false, ExecContext::Serial());
  ASSERT_TRUE(top.ok());
  EXPECT_EQ((*top)->Count(), 0u);
  EXPECT_TRUE((*top)->props().key);
}

TEST(TopNTest, EmptyInput) {
  BatPtr b = Bat::New(PhysType::kInt32);
  auto top = TopN(b, 5, /*descending=*/false, ExecContext::Serial());
  ASSERT_TRUE(top.ok());
  EXPECT_EQ((*top)->Count(), 0u);
}

TEST(TopNTest, TiesAtTheBoundaryResolveByHeadOrder) {
  // Three 2s straddle k=2: the stable order keeps the earliest heads.
  BatPtr b = MakeBat<int32_t>({2, 1, 2, 2, 3});
  auto top = TopN(b, 3, /*descending=*/false, ExecContext::Serial());
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(OidsOf(*top), (std::vector<Oid>{1, 0, 2}));
}

TEST(TopNTest, MatchesSortPrefixOnRandomInput) {
  Rng rng(11);
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(10000);
  int32_t* v = b->MutableTailData<int32_t>();
  for (size_t i = 0; i < 10000; ++i) {
    v[i] = static_cast<int32_t>(rng.Uniform(500));
  }
  for (bool desc : {false, true}) {
    auto s = Sort(b, desc, ExecContext::Serial());
    auto top = TopN(b, 137, desc, ExecContext::Serial());
    ASSERT_TRUE(s.ok() && top.ok());
    ASSERT_EQ((*top)->Count(), 137u);
    for (size_t i = 0; i < 137; ++i) {
      ASSERT_EQ((*top)->OidAt(i), s->order->OidAt(i)) << "desc=" << desc;
    }
  }
}

TEST(TopNTest, SortedInputFastPathIsDensePrefix) {
  BatPtr b = MakeBat<int32_t>({1, 2, 3, 4, 5});
  b->mutable_props().sorted = true;
  auto top = TopN(b, 2, /*descending=*/false, ExecContext::Serial());
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE((*top)->IsDenseTail());
  EXPECT_EQ(OidsOf(*top), (std::vector<Oid>{0, 1}));
}

TEST(TopNTest, KeyedSortedInputDescendingTakesTailReversed) {
  BatPtr b = MakeBat<int32_t>({1, 2, 3, 4, 5});
  b->mutable_props().sorted = true;
  b->mutable_props().key = true;
  auto top = TopN(b, 2, /*descending=*/true, ExecContext::Serial());
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(OidsOf(*top), (std::vector<Oid>{4, 3}));
}

TEST(TopNTest, Strings) {
  BatPtr b = MakeStringBat({"mole", "ape", "zebra", "bison"});
  auto top = TopN(b, 2, /*descending=*/false, ExecContext::Serial());
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(OidsOf(*top), (std::vector<Oid>{1, 3}));  // ape, bison
}

// ------------------------------------------------------------ RefineSort --

TEST(RefineSortTest, FirstKeyMatchesSort) {
  Rng rng(21);
  BatPtr b = Bat::New(PhysType::kInt32);
  b->Resize(3000);
  int32_t* v = b->MutableTailData<int32_t>();
  for (size_t i = 0; i < 3000; ++i) {
    v[i] = static_cast<int32_t>(rng.Uniform(50));
  }
  for (bool desc : {false, true}) {
    auto s = Sort(b, desc, ExecContext::Serial());
    auto r = RefineSort(b, nullptr, nullptr, desc, ExecContext::Serial());
    ASSERT_TRUE(s.ok() && r.ok());
    ASSERT_EQ(r->order->Count(), 3000u);
    for (size_t i = 0; i < 3000; ++i) {
      ASSERT_EQ(r->order->OidAt(i), s->order->OidAt(i)) << "desc=" << desc;
    }
    // Tie ids are non-decreasing and count the distinct values.
    EXPECT_TRUE(r->tie_groups->props().sorted);
    size_t distinct = 1;
    for (size_t i = 1; i < 3000; ++i) {
      const Oid prev = r->tie_groups->OidAt(i - 1);
      const Oid cur = r->tie_groups->OidAt(i);
      ASSERT_LE(prev, cur);
      ASSERT_LE(cur - prev, 1u);
      distinct += cur != prev;
    }
    EXPECT_EQ(r->ngroups, distinct);
  }
}

TEST(RefineSortTest, TwoKeysMatchLexicographicOracle) {
  Rng rng(22);
  const size_t n = 4000;
  BatPtr major = Bat::New(PhysType::kInt32);
  BatPtr minor = Bat::New(PhysType::kInt32);
  major->Resize(n);
  minor->Resize(n);
  int32_t* a = major->MutableTailData<int32_t>();
  int32_t* c = minor->MutableTailData<int32_t>();
  for (size_t i = 0; i < n; ++i) {
    a[i] = static_cast<int32_t>(rng.Uniform(20));  // many ties
    c[i] = static_cast<int32_t>(rng.Uniform(1000));
  }
  for (bool desc_minor : {false, true}) {
    auto r1 = RefineSort(major, nullptr, nullptr, false,
                         ExecContext::Serial());
    ASSERT_TRUE(r1.ok());
    auto r2 = RefineSort(minor, r1->order, r1->tie_groups, desc_minor,
                         ExecContext::Serial());
    ASSERT_TRUE(r2.ok());

    std::vector<uint32_t> oracle(n);
    std::iota(oracle.begin(), oracle.end(), 0u);
    std::stable_sort(oracle.begin(), oracle.end(),
                     [&](uint32_t x, uint32_t y) {
                       if (a[x] != a[y]) return a[x] < a[y];
                       if (c[x] != c[y]) {
                         return desc_minor ? c[y] < c[x] : c[x] < c[y];
                       }
                       return false;
                     });
    for (size_t i = 0; i < n; ++i) {
      ASSERT_EQ(r2->order->OidAt(i), oracle[i]) << "desc_minor=" << desc_minor;
    }
    // Refined groups: one per distinct (major, minor) pair in the output.
    for (size_t i = 1; i < n; ++i) {
      const uint32_t x = oracle[i - 1], y = oracle[i];
      const bool same = a[x] == a[y] && c[x] == c[y];
      ASSERT_EQ(r2->tie_groups->OidAt(i) == r2->tie_groups->OidAt(i - 1),
                same)
          << i;
    }
  }
}

TEST(RefineSortTest, StringMinorKey) {
  BatPtr major = MakeBat<int32_t>({1, 0, 1, 0, 1});
  BatPtr minor = MakeStringBat({"b", "z", "a", "z", "a"});
  auto r1 = RefineSort(major, nullptr, nullptr, false, ExecContext::Serial());
  ASSERT_TRUE(r1.ok());
  auto r2 = RefineSort(minor, r1->order, r1->tie_groups, false,
                       ExecContext::Serial());
  ASSERT_TRUE(r2.ok());
  // (0,"z")@1, (0,"z")@3, (1,"a")@2, (1,"a")@4, (1,"b")@0
  EXPECT_EQ(OidsOf(r2->order), (std::vector<Oid>{1, 3, 2, 4, 0}));
  EXPECT_EQ(r2->ngroups, 3u);
}

TEST(RefineSortTest, TotalOrderShortCircuitKeepsOrder) {
  // When every tie group is a singleton, refinement must be the identity.
  BatPtr key_col = MakeBat<int32_t>({5, 1, 3});
  auto r1 = RefineSort(key_col, nullptr, nullptr, false,
                       ExecContext::Serial());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->ngroups, 3u);
  EXPECT_TRUE(r1->tie_groups->props().key);
  BatPtr next = MakeBat<int32_t>({9, 9, 9});
  auto r2 = RefineSort(next, r1->order, r1->tie_groups, true,
                       ExecContext::Serial());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(OidsOf(r2->order), OidsOf(r1->order));
  EXPECT_EQ(r2->ngroups, 3u);
}

TEST(RefineSortTest, EmptyInput) {
  BatPtr b = Bat::New(PhysType::kInt32);
  auto r = RefineSort(b, nullptr, nullptr, false, ExecContext::Serial());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->order->Count(), 0u);
  EXPECT_EQ(r->tie_groups->Count(), 0u);
  EXPECT_EQ(r->ngroups, 0u);
}

TEST(RefineSortTest, RejectsMisalignedTieGroups) {
  BatPtr b = MakeBat<int32_t>({1, 2, 3});
  BatPtr order = Bat::NewDense(0, 3);
  BatPtr ties = Bat::NewDense(0, 2);  // wrong length
  auto r = RefineSort(b, order, ties, false, ExecContext::Serial());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(RefineSortTest, RejectsOutOfRangeOrder) {
  BatPtr b = MakeBat<int32_t>({1, 2, 3});
  BatPtr order = Bat::New(PhysType::kOid);
  order->Append<Oid>(0);
  order->Append<Oid>(7);  // beyond the column
  auto r = RefineSort(b, order, nullptr, false, ExecContext::Serial());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace mammoth
