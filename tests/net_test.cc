#include "net/datacyclotron.h"

#include <gtest/gtest.h>

namespace mammoth::net {
namespace {

RingConfig BaseConfig() {
  RingConfig c;
  c.nodes = 4;
  c.partitions = 16;
  c.hop_seconds = 0.0001;
  c.process_seconds = 0.002;
  c.num_queries = 2000;
  c.arrival_rate = 1e9;  // effectively all-at-once: saturation test
  c.seed = 1;
  c.link_bytes_per_second = 0;  // pure-latency hops for deterministic math
  return c;
}

TEST(DataCyclotronTest, BandwidthTermGrowsWithHotSet) {
  RingConfig c = BaseConfig();
  c.link_bytes_per_second = 1.25e9;  // 10 Gbit
  c.partition_bytes = 1 << 20;
  c.partitions = 16;
  const double small = c.EffectiveHopSeconds();
  c.partitions = 256;
  const double large = c.EffectiveHopSeconds();
  EXPECT_GT(large, small * 8.0);
  // And a bigger hot set costs wait time under light load.
  c.arrival_rate = 50;
  c.num_queries = 300;
  c.partitions = 16;
  const double wait_small = SimulateRing(c).avg_wait;
  c.partitions = 256;
  const double wait_large = SimulateRing(c).avg_wait;
  EXPECT_GT(wait_large, wait_small * 2.0);
}

TEST(DataCyclotronTest, StatsAreConsistent) {
  const RingStats s = SimulateRing(BaseConfig());
  EXPECT_GT(s.makespan, 0.0);
  EXPECT_GT(s.throughput, 0.0);
  EXPECT_GE(s.avg_latency, 0.0);
  EXPECT_GE(s.avg_wait, 0.0);
  EXPECT_GT(s.cpu_utilization, 0.0);
  EXPECT_LE(s.cpu_utilization, 1.0 + 1e-9);
  EXPECT_FALSE(s.ToString().empty());
}

TEST(DataCyclotronTest, Deterministic) {
  const RingStats a = SimulateRing(BaseConfig());
  const RingStats b = SimulateRing(BaseConfig());
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_DOUBLE_EQ(a.avg_latency, b.avg_latency);
}

TEST(DataCyclotronTest, ThroughputScalesWithNodes) {
  RingConfig c = BaseConfig();
  c.nodes = 1;
  const double t1 = SimulateRing(c).throughput;
  c.nodes = 4;
  const double t4 = SimulateRing(c).throughput;
  c.nodes = 8;
  const double t8 = SimulateRing(c).throughput;
  EXPECT_GT(t4, t1 * 2.0);
  EXPECT_GT(t8, t4 * 1.3);
}

TEST(DataCyclotronTest, RingBeatsCentralizedUnderLoad) {
  RingConfig c = BaseConfig();
  c.nodes = 8;
  const RingStats ring = SimulateRing(c);
  const RingStats central = SimulateCentralized(c);
  EXPECT_GT(ring.throughput, central.throughput * 3.0);
}

TEST(DataCyclotronTest, SlowerHopsIncreaseWait) {
  RingConfig c = BaseConfig();
  c.arrival_rate = 100;  // light load: wait dominated by data arrival
  c.num_queries = 500;
  c.hop_seconds = 0.0001;
  const double fast_wait = SimulateRing(c).avg_wait;
  c.hop_seconds = 0.01;
  const double slow_wait = SimulateRing(c).avg_wait;
  EXPECT_GT(slow_wait, fast_wait * 5.0);
}

TEST(DataCyclotronTest, CentralizedSaturatesAtSingleCpu) {
  RingConfig c = BaseConfig();
  const RingStats s = SimulateCentralized(c);
  // Saturated single CPU: throughput ~= 1/process_seconds.
  EXPECT_NEAR(s.throughput, 1.0 / c.process_seconds,
              0.05 / c.process_seconds);
}

}  // namespace
}  // namespace mammoth::net
