// Engine paths not covered by sql_test: optimizer-off equivalence, empty
// inputs, string grouping, degenerate LIMIT, COUNT(col), and the
// introspection accessors.

#include <gtest/gtest.h>

#include "sql/engine.h"

namespace mammoth::sql {
namespace {

class EngineExtraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .ExecuteScript(
                        "CREATE TABLE pets (species VARCHAR(16), legs INT, "
                        "mass DOUBLE);"
                        "INSERT INTO pets VALUES ('dog', 4, 12.0), "
                        "('cat', 4, 4.5), ('parrot', 2, 0.4), "
                        "('dog', 4, 30.0), ('snake', 0, 2.0);")
                    .ok());
  }
  Engine engine_;
};

TEST_F(EngineExtraTest, OptimizerOffGivesSameAnswer) {
  const std::string q =
      "SELECT species, count(*), sum(mass) FROM pets "
      "WHERE legs >= 1 AND legs <= 4 GROUP BY species ORDER BY species";
  auto on = engine_.Execute(q);
  ASSERT_TRUE(on.ok());
  const size_t optimized_instrs = engine_.last_run_stats().instructions;

  engine_.EnableOptimizer(false);
  auto off = engine_.Execute(q);
  ASSERT_TRUE(off.ok());
  EXPECT_GT(engine_.last_run_stats().instructions, optimized_instrs);
  EXPECT_EQ(engine_.last_opt_report().fused, 0u);

  ASSERT_EQ(on->RowCount(), off->RowCount());
  for (size_t i = 0; i < on->RowCount(); ++i) {
    EXPECT_EQ(on->columns[0]->StringAt(i), off->columns[0]->StringAt(i));
    EXPECT_EQ(on->columns[1]->ValueAt<int64_t>(i),
              off->columns[1]->ValueAt<int64_t>(i));
    EXPECT_DOUBLE_EQ(on->columns[2]->ValueAt<double>(i),
                     off->columns[2]->ValueAt<double>(i));
  }
}

TEST_F(EngineExtraTest, GroupByStringColumn) {
  auto r = engine_.Execute(
      "SELECT species, count(*) FROM pets GROUP BY species "
      "ORDER BY species");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 4u);
  EXPECT_EQ(r->columns[0]->StringAt(1), "dog");
  EXPECT_EQ(r->columns[1]->ValueAt<int64_t>(1), 2);
}

TEST_F(EngineExtraTest, CountColumnEqualsCountStar) {
  auto r = engine_.Execute("SELECT count(legs), count(*) FROM pets");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns[0]->ValueAt<int64_t>(0), 5);
  EXPECT_EQ(r->columns[1]->ValueAt<int64_t>(0), 5);
}

TEST_F(EngineExtraTest, LimitZeroAndBeyondRowCount) {
  auto zero = engine_.Execute("SELECT species FROM pets LIMIT 0");
  ASSERT_TRUE(zero.ok());
  EXPECT_EQ(zero->RowCount(), 0u);
  auto big = engine_.Execute("SELECT species FROM pets LIMIT 99");
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->RowCount(), 5u);
}

TEST_F(EngineExtraTest, EmptyTableQueries) {
  ASSERT_TRUE(engine_.Execute("CREATE TABLE void (x INT)").ok());
  auto scan = engine_.Execute("SELECT x FROM void");
  ASSERT_TRUE(scan.ok());
  EXPECT_EQ(scan->RowCount(), 0u);
  auto agg = engine_.Execute("SELECT count(*), sum(x) FROM void");
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->columns[0]->ValueAt<int64_t>(0), 0);
  EXPECT_EQ(agg->columns[1]->ValueAt<int64_t>(0), 0);
  auto grouped = engine_.Execute("SELECT x, count(*) FROM void GROUP BY x");
  ASSERT_TRUE(grouped.ok());
  EXPECT_EQ(grouped->RowCount(), 0u);
}

TEST_F(EngineExtraTest, SelectAfterEveryMutationKind) {
  ASSERT_TRUE(
      engine_.Execute("UPDATE pets SET mass = 1.0 WHERE species = 'snake'")
          .ok());
  ASSERT_TRUE(engine_.Execute("DELETE FROM pets WHERE legs = 2").ok());
  ASSERT_TRUE(
      engine_.Execute("INSERT INTO pets VALUES ('gecko', 4, 0.05)").ok());
  auto r = engine_.Execute(
      "SELECT count(*), min(mass), max(legs) FROM pets");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->columns[0]->ValueAt<int64_t>(0), 5);  // 5 -1 +1
  EXPECT_DOUBLE_EQ(r->columns[1]->ValueAt<double>(0), 0.05);
  EXPECT_EQ(r->columns[2]->ValueAt<int32_t>(0), 4);
}

TEST_F(EngineExtraTest, HavingOnStringLabel) {
  auto r = engine_.Execute(
      "SELECT species, count(*) FROM pets GROUP BY species "
      "HAVING species != 'dog' ORDER BY species");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->RowCount(), 3u);
  for (size_t i = 0; i < r->RowCount(); ++i) {
    EXPECT_NE(r->columns[0]->StringAt(i), "dog");
  }
}

TEST_F(EngineExtraTest, PlanTextExposesPipeline) {
  ASSERT_TRUE(
      engine_.Execute("SELECT sum(mass) FROM pets WHERE legs = 4").ok());
  EXPECT_NE(engine_.last_plan_text().find("aggr.sum"), std::string::npos);
  EXPECT_NE(engine_.last_plan_text().find("sql.tid"), std::string::npos);
}

}  // namespace
}  // namespace mammoth::sql
