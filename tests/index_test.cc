#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/select.h"
#include "index/btree.h"
#include "index/cracking.h"
#include "index/css_tree.h"
#include "index/hash_index.h"

namespace mammoth::index {
namespace {

// ------------------------------------------------------------- Cracking --

std::multiset<int32_t> ScanRange(const std::vector<int32_t>& data, int32_t lo,
                                 int32_t hi) {
  std::multiset<int32_t> out;
  for (int32_t v : data) {
    if (v >= lo && v <= hi) out.insert(v);
  }
  return out;
}

TEST(CrackingTest, FirstQueryCracksColumn) {
  std::vector<int32_t> data = {13, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8};
  CrackerIndex<int32_t> idx(data.data(), data.size());
  EXPECT_EQ(idx.PieceCount(), 1u);
  auto oids = idx.RangeSelect(5, 12);
  EXPECT_EQ(idx.PieceCount(), 3u);  // cracks at 5 and 13
  EXPECT_TRUE(idx.CheckInvariant());
  std::multiset<int32_t> got;
  for (Oid o : oids) got.insert(data[o]);
  EXPECT_EQ(got, ScanRange(data, 5, 12));
}

TEST(CrackingTest, RepeatedQueriesRefine) {
  Rng rng(99);
  std::vector<int32_t> data(5000);
  for (auto& v : data) v = static_cast<int32_t>(rng.Uniform(10000));
  CrackerIndex<int32_t> idx(data.data(), data.size());
  size_t prev_pieces = idx.PieceCount();
  for (int q = 0; q < 50; ++q) {
    const int32_t lo = static_cast<int32_t>(rng.Uniform(9000));
    const int32_t hi = lo + static_cast<int32_t>(rng.Uniform(1000));
    auto oids = idx.RangeSelect(lo, hi);
    std::multiset<int32_t> got;
    for (Oid o : oids) got.insert(data[o]);
    ASSERT_EQ(got, ScanRange(data, lo, hi)) << "query " << q;
    ASSERT_TRUE(idx.CheckInvariant()) << "query " << q;
    ASSERT_GE(idx.PieceCount(), prev_pieces);
    prev_pieces = idx.PieceCount();
  }
  EXPECT_GT(idx.PieceCount(), 10u);
}

TEST(CrackingTest, ExclusiveBounds) {
  std::vector<int32_t> data = {1, 2, 3, 4, 5};
  CrackerIndex<int32_t> idx(data.data(), data.size());
  auto oids = idx.RangeSelect(2, 4, /*lo_incl=*/false, /*hi_incl=*/false);
  ASSERT_EQ(oids.size(), 1u);
  EXPECT_EQ(data[oids[0]], 3);
}

TEST(CrackingTest, EmptyAndInvertedRanges) {
  std::vector<int32_t> data = {5, 1, 9};
  CrackerIndex<int32_t> idx(data.data(), data.size());
  EXPECT_TRUE(idx.RangeSelect(7, 3).empty());
  EXPECT_TRUE(idx.RangeSelect(3, 3, false, true).empty());
  EXPECT_TRUE(idx.RangeSelect(100, 200).empty());
}

TEST(CrackingTest, FullDomainQuery) {
  std::vector<int32_t> data = {5, 1, 9};
  CrackerIndex<int32_t> idx(data.data(), data.size());
  auto oids = idx.RangeSelect(std::numeric_limits<int32_t>::min(),
                              std::numeric_limits<int32_t>::max());
  EXPECT_EQ(oids.size(), 3u);
}

TEST(CrackingTest, PendingInsertsVisible) {
  std::vector<int32_t> data = {10, 20, 30};
  CrackerIndex<int32_t> idx(data.data(), data.size());
  idx.Insert(15, 100);
  idx.Insert(25, 101);
  auto oids = idx.RangeSelect(12, 22);
  std::set<Oid> got(oids.begin(), oids.end());
  EXPECT_EQ(got, (std::set<Oid>{1, 100}));  // stored 20 plus pending 15
}

TEST(CrackingTest, DeletesHidden) {
  std::vector<int32_t> data = {10, 20, 30};
  CrackerIndex<int32_t> idx(data.data(), data.size());
  idx.Delete(1);
  auto oids = idx.RangeSelect(0, 100);
  std::set<Oid> got(oids.begin(), oids.end());
  EXPECT_EQ(got, (std::set<Oid>{0, 2}));
}

TEST(CrackingTest, ConsolidateFoldsPendingAndKeepsInvariant) {
  Rng rng(7);
  std::vector<int32_t> data(2000);
  for (auto& v : data) v = static_cast<int32_t>(rng.Uniform(1000));
  CrackerIndex<int32_t> idx(data.data(), data.size());
  // Crack a few times first.
  idx.RangeSelect(100, 300);
  idx.RangeSelect(500, 700);
  ASSERT_TRUE(idx.CheckInvariant());
  // Queue updates.
  std::vector<int32_t> extra;
  for (int i = 0; i < 100; ++i) {
    const int32_t v = static_cast<int32_t>(rng.Uniform(1000));
    idx.Insert(v, 10000 + i);
    extra.push_back(v);
  }
  idx.Delete(0);
  idx.Delete(1);
  idx.ConsolidatePending();
  EXPECT_EQ(idx.PendingInsertCount(), 0u);
  EXPECT_EQ(idx.PendingDeleteCount(), 0u);
  EXPECT_TRUE(idx.CheckInvariant());
  EXPECT_EQ(idx.size(), 2000u - 2 + 100);

  // Counts must match a scan of the merged logical content.
  auto oids = idx.RangeSelect(200, 600);
  size_t expect = 0;
  for (size_t i = 2; i < data.size(); ++i) {  // oids 0,1 deleted
    if (data[i] >= 200 && data[i] <= 600) ++expect;
  }
  for (int32_t v : extra) {
    if (v >= 200 && v <= 600) ++expect;
  }
  EXPECT_EQ(oids.size(), expect);
  ASSERT_TRUE(idx.CheckInvariant());
}

TEST(CrackedBatTest, WrapperMatchesAlgebraSelect) {
  Rng rng(21);
  BatPtr b = Bat::New(PhysType::kInt64);
  for (int i = 0; i < 3000; ++i) {
    b->Append<int64_t>(static_cast<int64_t>(rng.Uniform(500)));
  }
  auto cracked = CrackedBat::Make(b);
  ASSERT_TRUE(cracked.ok());
  for (int q = 0; q < 20; ++q) {
    const int64_t lo = static_cast<int64_t>(rng.Uniform(400));
    const int64_t hi = lo + static_cast<int64_t>(rng.Uniform(100));
    auto got = cracked->RangeSelect(Value::Int(lo), Value::Int(hi));
    ASSERT_TRUE(got.ok());
    auto want =
        algebra::RangeSelect(b, nullptr, Value::Int(lo), Value::Int(hi));
    ASSERT_TRUE(want.ok());
    std::set<Oid> sg, sw;
    for (size_t i = 0; i < (*got)->Count(); ++i) sg.insert((*got)->OidAt(i));
    for (size_t i = 0; i < (*want)->Count(); ++i) {
      sw.insert((*want)->OidAt(i));
    }
    ASSERT_EQ(sg, sw) << "query " << q;
  }
}

TEST(CrackedBatTest, RejectsUnsupportedTypes) {
  BatPtr s = MakeStringBat({"a"});
  EXPECT_FALSE(CrackedBat::Make(s).ok());
  BatPtr d = MakeBat<double>({1.0});
  EXPECT_FALSE(CrackedBat::Make(d).ok());
}

// ---------------------------------------------------------------- BTree --

TEST(BPlusTreeTest, InsertLookupSmall) {
  BPlusTree t;
  t.Insert(5, 50);
  t.Insert(3, 30);
  t.Insert(9, 90);
  EXPECT_EQ(t.LookupFirst(3), 30u);
  EXPECT_EQ(t.LookupFirst(5), 50u);
  EXPECT_EQ(t.LookupFirst(9), 90u);
  EXPECT_EQ(t.LookupFirst(4), kOidNil);
  EXPECT_EQ(t.size(), 3u);
}

TEST(BPlusTreeTest, ManyKeysSplitAndStayFindable) {
  BPlusTree t;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    t.Insert((i * 2654435761LL) % 1000003, static_cast<Oid>(i));
  }
  EXPECT_GT(t.height(), 2);
  Rng rng(5);
  for (int q = 0; q < 1000; ++q) {
    const int i = static_cast<int>(rng.Uniform(n));
    const int64_t key = (i * 2654435761LL) % 1000003;
    auto hits = t.Lookup(key);
    EXPECT_FALSE(hits.empty()) << key;
    EXPECT_TRUE(std::find(hits.begin(), hits.end(), static_cast<Oid>(i)) !=
                hits.end());
  }
}

TEST(BPlusTreeTest, DuplicateKeysAllReturned) {
  BPlusTree t;
  for (int i = 0; i < 500; ++i) t.Insert(42, static_cast<Oid>(i));
  for (int i = 0; i < 500; ++i) t.Insert(7, static_cast<Oid>(1000 + i));
  auto hits = t.Lookup(42);
  EXPECT_EQ(hits.size(), 500u);
  EXPECT_EQ(t.Lookup(7).size(), 500u);
  EXPECT_TRUE(t.Lookup(8).empty());
}

TEST(BPlusTreeTest, RangeScan) {
  BPlusTree t;
  for (int i = 0; i < 1000; ++i) t.Insert(i, static_cast<Oid>(i));
  auto hits = t.Range(100, 199);
  ASSERT_EQ(hits.size(), 100u);
  EXPECT_EQ(hits.front(), 100u);
  EXPECT_EQ(hits.back(), 199u);
  EXPECT_TRUE(t.Range(5000, 6000).empty());
  EXPECT_TRUE(t.Range(10, 5).empty());
}

TEST(BPlusTreeTest, SortedInsertionOrderWorks) {
  BPlusTree t;
  for (int i = 0; i < 10000; ++i) t.Insert(i, static_cast<Oid>(i * 10));
  EXPECT_EQ(t.LookupFirst(9999), 99990u);
  EXPECT_EQ(t.LookupFirst(0), 0u);
  EXPECT_EQ(t.Range(0, 9999).size(), 10000u);
}

// ------------------------------------------------------------- CSS-tree --

TEST(CssTreeTest, LowerBoundMatchesStd) {
  Rng rng(31);
  std::vector<int64_t> keys(10000);
  for (auto& k : keys) k = static_cast<int64_t>(rng.Uniform(100000));
  std::sort(keys.begin(), keys.end());
  CssTree t(keys.data(), keys.size());
  EXPECT_GT(t.levels(), 1);
  for (int q = 0; q < 2000; ++q) {
    const int64_t probe = static_cast<int64_t>(rng.Uniform(110000));
    const size_t want = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
    ASSERT_EQ(t.LowerBound(probe), want) << probe;
  }
}

TEST(CssTreeTest, FindExact) {
  std::vector<int64_t> keys = {2, 4, 6, 8, 10};
  CssTree t(keys.data(), keys.size());
  EXPECT_EQ(t.Find(6), 2u);
  EXPECT_EQ(t.Find(7), std::numeric_limits<size_t>::max());
  EXPECT_EQ(t.Find(2), 0u);
  EXPECT_EQ(t.Find(10), 4u);
}

TEST(CssTreeTest, RangePositions) {
  std::vector<int64_t> keys;
  for (int i = 0; i < 1000; ++i) keys.push_back(i * 3);
  CssTree t(keys.data(), keys.size());
  auto [first, last] = t.Range(30, 60);
  EXPECT_EQ(first, 10u);
  EXPECT_EQ(last, 21u);  // 30,33,...,60 inclusive
  auto [e1, e2] = t.Range(10000, 20000);
  EXPECT_EQ(e1, e2);
}

TEST(CssTreeTest, EmptyAndTiny) {
  std::vector<int64_t> none;
  CssTree t0(none.data(), 0);
  EXPECT_EQ(t0.LowerBound(5), 0u);
  std::vector<int64_t> one = {7};
  CssTree t1(one.data(), 1);
  EXPECT_EQ(t1.LowerBound(3), 0u);
  EXPECT_EQ(t1.LowerBound(7), 0u);
  EXPECT_EQ(t1.LowerBound(9), 1u);
}

// ----------------------------------------------------------- Hash index --

TEST(HashIndexTest, LookupAllDuplicates) {
  std::vector<int64_t> keys = {5, 7, 5, 9, 5};
  HashIndex h(keys.data(), keys.size());
  auto hits = h.Lookup(5);
  std::set<Oid> got(hits.begin(), hits.end());
  EXPECT_EQ(got, (std::set<Oid>{0, 2, 4}));
  EXPECT_TRUE(h.Lookup(6).empty());
  EXPECT_EQ(h.LookupFirst(6), kOidNil);
  EXPECT_NE(h.LookupFirst(9), kOidNil);
}

TEST(HashIndexTest, HseqbaseOffsets) {
  std::vector<int64_t> keys = {1, 2};
  HashIndex h(keys.data(), keys.size(), 100);
  EXPECT_EQ(h.LookupFirst(2), 101u);
}

}  // namespace
}  // namespace mammoth::index
