#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/bitutil.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/timer.h"

namespace mammoth {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "Ok");
  const Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: thing");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTypeMismatch), "TypeMismatch");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  MAMMOTH_ASSIGN_OR_RETURN(int h, Half(x));
  MAMMOTH_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(ResultTest, ValueAndErrorPropagation) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto second_fails = Quarter(6);  // 6/2=3 is odd
  ASSERT_FALSE(second_fails.ok());
  EXPECT_EQ(second_fails.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformBoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(13), 13u);
    const int64_t v = rng.UniformRange(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(11);
  std::vector<int> hist(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++hist[rng.Uniform(10)];
  for (int count : hist) {
    EXPECT_NEAR(count, n / 10, n / 100);  // within 10% relative
  }
}

TEST(ZipfTest, RankZeroDominates) {
  ZipfGenerator zipf(1000, 1.0, 3);
  std::map<uint64_t, int> hist;
  for (int i = 0; i < 20000; ++i) ++hist[zipf.Next()];
  EXPECT_GT(hist[0], hist[10] * 2);
  EXPECT_GT(hist[0], 1000);
  // All ranks in range.
  for (const auto& [rank, count] : hist) EXPECT_LT(rank, 1000u);
}

TEST(ZipfTest, ThetaZeroIsUniformish) {
  ZipfGenerator zipf(10, 0.0, 5);
  std::map<uint64_t, int> hist;
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++hist[zipf.Next()];
  for (const auto& [rank, count] : hist) {
    EXPECT_NEAR(count, n / 10, n / 50);
  }
}

TEST(BitutilTest, NextPow2) {
  EXPECT_EQ(NextPow2(0), 1u);
  EXPECT_EQ(NextPow2(1), 1u);
  EXPECT_EQ(NextPow2(2), 2u);
  EXPECT_EQ(NextPow2(3), 4u);
  EXPECT_EQ(NextPow2(1024), 1024u);
  EXPECT_EQ(NextPow2(1025), 2048u);
}

TEST(BitutilTest, Logs) {
  EXPECT_EQ(FloorLog2(1), 0u);
  EXPECT_EQ(FloorLog2(7), 2u);
  EXPECT_EQ(FloorLog2(8), 3u);
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(7), 3u);
  EXPECT_EQ(CeilLog2(8), 3u);
  EXPECT_EQ(CeilLog2(9), 4u);
  EXPECT_EQ(BitWidth(0), 0u);
  EXPECT_EQ(BitWidth(255), 8u);
}

TEST(BitutilTest, AlignUp) {
  EXPECT_EQ(AlignUp(0, 64), 0u);
  EXPECT_EQ(AlignUp(1, 64), 64u);
  EXPECT_EQ(AlignUp(64, 64), 64u);
  EXPECT_EQ(AlignUp(65, 64), 128u);
}

TEST(HashTest, DistinctInputsRarelyCollide) {
  std::map<uint64_t, int> seen;
  for (uint64_t i = 0; i < 100000; ++i) {
    ++seen[HashInt(i)];
  }
  EXPECT_EQ(seen.size(), 100000u);  // 64-bit: collisions ~impossible here
}

TEST(HashTest, LowBitsWellDistributed) {
  // The radix algorithms take the LOW bits of HashInt: sequential keys must
  // spread evenly over 2^8 buckets.
  std::vector<int> hist(256, 0);
  const int n = 1 << 16;
  for (int i = 0; i < n; ++i) ++hist[HashInt(uint64_t(i)) & 255];
  for (int count : hist) EXPECT_NEAR(count, n / 256, n / 256 / 2);
}

TEST(HashTest, StringsAndCombine) {
  EXPECT_EQ(HashString("mammoth"), HashString("mammoth"));
  EXPECT_NE(HashString("mammoth"), HashString("mammotH"));
  EXPECT_NE(HashCombine(1, 2), HashCombine(2, 1));
  EXPECT_NE(HashDouble(1.0), HashDouble(-1.0));
}

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer t;
  volatile uint64_t x = 0;
  for (int i = 0; i < 1000000; ++i) x += i;
  EXPECT_GT(t.ElapsedSeconds(), 0.0);
  EXPECT_GT(t.ElapsedMicros(), t.ElapsedSeconds());  // unit sanity
}

TEST(TimerTest, CycleCounterMonotoneAndCalibrated) {
  const uint64_t a = ReadCycleCounter();
  volatile uint64_t x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  const uint64_t b = ReadCycleCounter();
  EXPECT_GT(b, a);
  const double hz = CyclesPerSecond();
  EXPECT_GT(hz, 1e8);   // >100 MHz
  EXPECT_LT(hz, 1e11);  // <100 GHz
}

}  // namespace
}  // namespace mammoth
