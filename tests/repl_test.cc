// Replication tests: the repl wire codecs (round trips and hostile
// inputs — truncation and CRC mutation are typed errors, never crashes),
// and in-process primary/replica pairs: WAL shipping end to end, lag
// draining to zero, bit-identical SELECTs, read-only enforcement for
// every write shape, snapshot bootstrap past a checkpoint, and PROMOTE
// turning a replica into a (durable) writable primary. The fork-based
// kill -9 failover harness lives in repl_failover_test.cc.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "core/table.h"
#include "repl/repl_wire.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "sql/engine.h"
#include "wal/db.h"
#include "wal/record.h"

namespace mammoth::repl {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------- wire codecs --

TEST(ReplWireTest, SubscribeAndAckRoundTrip) {
  auto sub = DecodeSubscribe(EncodeSubscribe({12345}));
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->start_lsn, 12345u);

  auto ack = DecodeAck(EncodeAck({987654321}));
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(ack->replayed_lsn, 987654321u);
}

TEST(ReplWireTest, RecordsBatchRoundTrip) {
  std::string frames;
  wal::AppendFrame(&frames, wal::EncodeBegin(7));
  wal::AppendFrame(&frames, wal::EncodeCommit(7));
  const std::string payload = EncodeRecords(4096, 8192, frames);
  auto batch = DecodeRecords(payload);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  EXPECT_EQ(batch->base_lsn, 4096u);
  EXPECT_EQ(batch->source_durable_lsn, 8192u);
  EXPECT_EQ(batch->bytes, frames);

  // An empty batch is a legal heartbeat.
  const std::string heartbeat = EncodeRecords(100, 200, "");
  auto hb = DecodeRecords(heartbeat);
  ASSERT_TRUE(hb.ok());
  EXPECT_TRUE(hb->bytes.empty());
}

TEST(ReplWireTest, SnapshotFramesRoundTrip) {
  auto begin = DecodeSnapBegin(EncodeSnapBegin({777, 42, 3}));
  ASSERT_TRUE(begin.ok());
  EXPECT_EQ(begin->snapshot_lsn, 777u);
  EXPECT_EQ(begin->next_txn_id, 42u);
  EXPECT_EQ(begin->nfiles, 3u);

  // FileChunk decodes to zero-copy views: the payload must outlive them.
  const std::string payload =
      EncodeFileChunk("cols/t.id.bin", 8192, true, "payload-bytes");
  auto chunk = DecodeFileChunk(payload);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->name, "cols/t.id.bin");
  EXPECT_EQ(chunk->offset, 8192u);
  EXPECT_EQ(chunk->last, 1u);
  EXPECT_EQ(chunk->data, "payload-bytes");

  auto end = DecodeSnapEnd(EncodeSnapEnd({777}));
  ASSERT_TRUE(end.ok());
  EXPECT_EQ(end->snapshot_lsn, 777u);
}

/// Hostility: every decoder rejects a truncated payload with a typed
/// error instead of reading out of bounds. Fixed-shape codecs reject
/// every strict prefix and any trailing garbage; the two codecs with a
/// variable byte tail (Records, FileChunk) reject every cut inside
/// their fixed header.
TEST(ReplWireTest, DecodersRejectTruncatedAndOversizedPayloads) {
  struct Probe {
    std::string valid;
    size_t header;  ///< bytes of fixed header (== valid.size(): no tail)
    std::function<Status(std::string_view)> decode;
  };
  const std::string chunk = EncodeFileChunk("f", 0, false, "xyz");
  const std::vector<Probe> codecs = {
      {EncodeSubscribe({1}), 8,
       [](std::string_view p) { return DecodeSubscribe(p).status(); }},
      {EncodeAck({2}), 8,
       [](std::string_view p) { return DecodeAck(p).status(); }},
      {EncodeRecords(1, 2, "abc"), 16,
       [](std::string_view p) { return DecodeRecords(p).status(); }},
      {EncodeSnapBegin({1, 2, 3}), 20,
       [](std::string_view p) { return DecodeSnapBegin(p).status(); }},
      {chunk, chunk.size() - 3,
       [](std::string_view p) { return DecodeFileChunk(p).status(); }},
      {EncodeSnapEnd({9}), 8,
       [](std::string_view p) { return DecodeSnapEnd(p).status(); }},
  };
  for (size_t c = 0; c < codecs.size(); ++c) {
    const auto& [valid, header, decode] = codecs[c];
    ASSERT_TRUE(decode(valid).ok()) << "codec " << c;
    for (size_t cut = 0; cut < header; ++cut) {
      const Status st = decode(std::string_view(valid).substr(0, cut));
      EXPECT_FALSE(st.ok()) << "codec " << c << " accepted a " << cut
                            << "-byte prefix";
    }
    if (header == valid.size()) {  // fixed shape: no byte tail to hide in
      EXPECT_FALSE(decode(valid + "x").ok())
          << "codec " << c << " accepted trailing garbage";
    }
  }
}

/// A shipped file name is a path *inside* the snapshot inbox: absolute
/// paths and `..` components would let a hostile primary write anywhere
/// on the replica's disk.
TEST(ReplWireTest, FileChunkRejectsPathTraversal) {
  for (const char* evil :
       {"../evil", "a/../../evil", "/etc/passwd", "a/./../b", ".."}) {
    auto chunk = DecodeFileChunk(EncodeFileChunk(evil, 0, true, "x"));
    EXPECT_FALSE(chunk.ok()) << evil;
  }
  // Benign relative paths (including dots in file names) stay legal.
  for (const char* fine : {"snap/cols.bin", "t.id.bin", "a/b/c"}) {
    EXPECT_TRUE(DecodeFileChunk(EncodeFileChunk(fine, 0, true, "x")).ok())
        << fine;
  }
}

TEST(ReplWireTest, ShippedBatchVerifiesCrcAndAlignment) {
  std::string f1, f2, f3;
  wal::AppendFrame(&f1, wal::EncodeBegin(3));
  wal::AppendFrame(&f2, wal::EncodeCreateTable("t", {{"x", PhysType::kInt64}}));
  wal::AppendFrame(&f3, wal::EncodeCommit(3));
  const std::string frames = f1 + f2 + f3;

  auto records = DecodeShippedBatch(frames, 500);
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].lsn, 500u);
  EXPECT_EQ((*records)[2].end_lsn, 500 + frames.size());

  // Unlike a recovered tail segment, a shipped batch has no licence to
  // be torn: the primary only ships whole frames, so any cut NOT on a
  // frame boundary is typed corruption.
  const std::vector<size_t> boundaries = {0, f1.size(), f1.size() + f2.size(),
                                          frames.size()};
  for (size_t keep = 1; keep < frames.size(); keep += 3) {
    if (std::find(boundaries.begin(), boundaries.end(), keep) !=
        boundaries.end()) {
      continue;  // a boundary cut is a legal (shorter) batch
    }
    auto torn =
        DecodeShippedBatch(std::string_view(frames).substr(0, keep), 500);
    EXPECT_FALSE(torn.ok()) << "keep " << keep;
    EXPECT_EQ(torn.status().code(), StatusCode::kCorruption)
        << "keep " << keep;
  }

  // A flipped bit anywhere fails some frame's CRC.
  for (size_t at : {size_t{9}, frames.size() / 2, frames.size() - 1}) {
    std::string mutated = frames;
    mutated[at] ^= 0x10;
    auto bad = DecodeShippedBatch(mutated, 0);
    EXPECT_FALSE(bad.ok()) << "flip at " << at;
    EXPECT_EQ(bad.status().code(), StatusCode::kCorruption)
        << "flip at " << at;
  }
}

TEST(ReplWireTest, FrameAlignedPrefixStopsAtTornTailButNotAtBadCrc) {
  std::string one, two;
  wal::AppendFrame(&one, wal::EncodeBegin(1));
  wal::AppendFrame(&two, wal::EncodeCommit(1));
  const std::string both = one + two;

  auto whole = FrameAlignedPrefix(both, both.size());
  ASSERT_TRUE(whole.ok());
  EXPECT_EQ(*whole, both.size());

  // A byte budget inside frame 2 stops at the frame-1 boundary.
  auto partial = FrameAlignedPrefix(both, one.size() + 3);
  ASSERT_TRUE(partial.ok());
  EXPECT_EQ(*partial, one.size());

  // An incomplete final frame ends the prefix (the rest ships later)...
  auto torn =
      FrameAlignedPrefix(std::string_view(both).substr(0, both.size() - 2),
                         both.size());
  ASSERT_TRUE(torn.ok());
  EXPECT_EQ(*torn, one.size());

  // ...but a complete frame failing its CRC is typed corruption.
  std::string mutated = both;
  mutated[mutated.size() - 1] ^= 0x01;
  auto bad = FrameAlignedPrefix(mutated, mutated.size());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kCorruption);
}

// ------------------------------------------- primary/replica pairs ----

using server::Client;
using server::Server;
using server::ServerConfig;

class ReplTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/mammoth_repl_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    fs::remove_all(dir_);
  }
  void TearDown() override {
    for (auto it = servers_.rbegin(); it != servers_.rend(); ++it) {
      (*it)->Stop();
    }
    servers_.clear();
    fs::remove_all(dir_);
  }

  Server* StartPrimary() {
    ServerConfig config;
    config.port = 0;
    config.db_dir = dir_ + "/primary";
    auto server = std::make_unique<Server>(config);
    EXPECT_TRUE(server->Start().ok());
    servers_.push_back(std::move(server));
    return servers_.back().get();
  }

  Server* StartReplica(uint16_t primary_port, const std::string& db_dir = "") {
    ServerConfig config;
    config.port = 0;
    config.db_dir = db_dir;
    config.replicate_from = "127.0.0.1:" + std::to_string(primary_port);
    auto server = std::make_unique<Server>(config);
    EXPECT_TRUE(server->Start().ok());
    servers_.push_back(std::move(server));
    return servers_.back().get();
  }

  Client Connect(Server* server) {
    auto client = Client::Connect("127.0.0.1", server->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  /// Polls until `pred` holds; returns false after ~5s.
  bool WaitUntil(const std::function<bool()>& pred) {
    for (int i = 0; i < 500; ++i) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return pred();
  }

  /// Fully caught up: replayed to the primary's durable LSN *and* the
  /// acks made it back (the ack frame trails replay by one round trip,
  /// so lag is briefly nonzero even on a drained stream).
  bool WaitForCatchUp(Server* primary, Server* replica) {
    return WaitUntil([&] {
      const auto p = primary->stats();
      const auto r = replica->stats();
      return r.repl_replayed_lsn == p.wal.durable_lsn &&
             p.wal.durable_lsn > 0 && p.repl_lag_bytes == 0;
    });
  }

  /// Bit-identical SELECT contract: both sides' results encode to the
  /// same wire bytes.
  void ExpectIdentical(Client* a, Client* b, const std::string& sql) {
    auto ra = a->Query(sql);
    auto rb = b->Query(sql);
    ASSERT_TRUE(ra.ok()) << sql << ": " << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << sql << ": " << rb.status().ToString();
    auto ea = server::EncodeResult(*ra);
    auto eb = server::EncodeResult(*rb);
    ASSERT_TRUE(ea.ok());
    ASSERT_TRUE(eb.ok());
    EXPECT_EQ(*ea, *eb) << sql;
  }

  std::string dir_;
  std::vector<std::unique_ptr<Server>> servers_;
};

TEST_F(ReplTest, ReplicaStreamsCatchesUpAndServesIdenticalSelects) {
  Server* primary = StartPrimary();
  Client pc = Connect(primary);
  ASSERT_TRUE(
      pc.Query("CREATE TABLE t (id INT, tag VARCHAR(16), score DOUBLE)")
          .ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(pc.Query("INSERT INTO t VALUES (" + std::to_string(i) +
                         ", 'pre', " + std::to_string(i) + ".5)")
                    .ok());
  }

  Server* replica = StartReplica(primary->port());
  ASSERT_TRUE(WaitForCatchUp(primary, replica));

  // Writes after the replica subscribed flow through the live stream
  // (and, with semi-sync on by default, are replayed by ack time).
  for (int i = 20; i < 40; ++i) {
    ASSERT_TRUE(pc.Query("INSERT INTO t VALUES (" + std::to_string(i) +
                         ", 'post', " + std::to_string(i) + ".5)")
                    .ok());
  }
  ASSERT_TRUE(pc.Query("UPDATE t SET score = 0.0 WHERE id = 7").ok());
  ASSERT_TRUE(pc.Query("DELETE FROM t WHERE id = 13").ok());
  ASSERT_TRUE(WaitForCatchUp(primary, replica));

  Client rc = Connect(replica);
  ExpectIdentical(&pc, &rc, "SELECT id, tag, score FROM t");
  ExpectIdentical(&pc, &rc, "SELECT tag, COUNT(*), SUM(score) FROM t "
                            "GROUP BY tag");
  ExpectIdentical(&pc, &rc, "SELECT id FROM t WHERE score >= 10.0 "
                            "ORDER BY id DESC LIMIT 5");

  // Both roles report replication through SERVER STATUS.
  const auto p = primary->stats();
  EXPECT_EQ(p.repl_role, 0u);
  EXPECT_EQ(p.repl_replicas, 1u);
  EXPECT_EQ(p.repl_acked_lsn, p.wal.durable_lsn);
  EXPECT_EQ(p.repl_lag_bytes, 0u);
  const auto r = replica->stats();
  EXPECT_EQ(r.repl_role, 1u);
  EXPECT_EQ(r.repl_replayed_lsn, p.wal.durable_lsn);
  EXPECT_EQ(r.repl_lag_bytes, 0u);
  EXPECT_GT(r.repl_txns_applied, 40u);
}

TEST_F(ReplTest, ReplicaRejectsEveryWriteShapeWithTypedReadOnly) {
  Server* primary = StartPrimary();
  Client pc = Connect(primary);
  ASSERT_TRUE(pc.Query("CREATE TABLE t (id INT, tag VARCHAR(16))").ok());
  ASSERT_TRUE(pc.Query("INSERT INTO t VALUES (1, 'a'), (2, 'b')").ok());

  Server* replica = StartReplica(primary->port());
  ASSERT_TRUE(WaitForCatchUp(primary, replica));
  Client rc = Connect(replica);

  // Every DML/DDL shape bounces with kReadOnly over the wire; the
  // session survives each rejection.
  for (const char* sql : {
           "CREATE TABLE nope (x INT)",
           "INSERT INTO t VALUES (3, 'c')",
           "UPDATE t SET tag = 'z' WHERE id = 1",
           "DELETE FROM t WHERE id = 2",
           "ALTER TABLE t COMPRESS",
           "ALTER TABLE t DECOMPRESS",
       }) {
    auto r = rc.Query(sql);
    ASSERT_FALSE(r.ok()) << sql << " succeeded on a replica";
    EXPECT_EQ(r.status().code(), StatusCode::kReadOnly) << sql;
  }

  // The prepared path hits the same gate at EXECUTE time.
  auto ins = rc.Prepare("INSERT INTO t VALUES (?, ?)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  auto run = rc.ExecutePrepared(*ins, {Value::Int(9), Value::Str("x")});
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kReadOnly);

  // Reads keep working after all those rejections, and none of the
  // writes took effect anywhere.
  auto count = rc.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->columns[0]->ValueAt<int64_t>(0), 2);
  ExpectIdentical(&pc, &rc, "SELECT id, tag FROM t");
}

TEST_F(ReplTest, SnapshotBootstrapsAReplicaPastCheckpointGc) {
  Server* primary = StartPrimary();
  Client pc = Connect(primary);
  ASSERT_TRUE(pc.Query("CREATE TABLE t (id INT, v INT)").ok());
  std::string ins = "INSERT INTO t VALUES ";
  for (int i = 0; i < 500; ++i) {
    if (i > 0) ins += ", ";
    ins += "(" + std::to_string(i) + ", " + std::to_string(i % 9) + ")";
  }
  ASSERT_TRUE(pc.Query(ins).ok());
  // The checkpoint GCs the pre-checkpoint segments: a fresh subscriber's
  // LSN 0 now predates the oldest retained log byte, forcing a snapshot
  // bootstrap instead of log shipping from the beginning.
  ASSERT_TRUE(pc.Query("CHECKPOINT").ok());
  ASSERT_TRUE(pc.Query("INSERT INTO t VALUES (1000, 1)").ok());

  Server* replica = StartReplica(primary->port());
  ASSERT_TRUE(WaitForCatchUp(primary, replica));
  EXPECT_GE(replica->stats().repl_snapshots, 1u);
  EXPECT_GE(primary->stats().repl_snapshots, 1u);

  Client rc = Connect(replica);
  ExpectIdentical(&pc, &rc, "SELECT id, v FROM t");
  ExpectIdentical(&pc, &rc, "SELECT v, COUNT(*) FROM t GROUP BY v");

  // Post-bootstrap DML streams normally.
  ASSERT_TRUE(pc.Query("DELETE FROM t WHERE v = 3").ok());
  ASSERT_TRUE(WaitForCatchUp(primary, replica));
  ExpectIdentical(&pc, &rc, "SELECT id, v FROM t");
}

TEST_F(ReplTest, PromoteTurnsTheReplicaIntoADurableWritablePrimary) {
  Server* primary = StartPrimary();
  Client pc = Connect(primary);
  ASSERT_TRUE(pc.Query("CREATE TABLE t (id INT, tag VARCHAR(16))").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(pc.Query("INSERT INTO t VALUES (" + std::to_string(i) +
                         ", 'old')")
                    .ok());
  }

  const std::string promoted_dir = dir_ + "/promoted";
  Server* replica = StartReplica(primary->port(), promoted_dir);
  ASSERT_TRUE(WaitForCatchUp(primary, replica));

  // The old primary dies (gracefully here; repl_failover_test does it
  // with SIGKILL). PROMOTE must then succeed even though the replica's
  // applier has lost its source.
  pc.Close();
  servers_.front()->Stop();

  Client rc = Connect(replica);
  auto promoted = rc.Query("PROMOTE");
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  ASSERT_EQ(promoted->names.size(), 1u);
  EXPECT_EQ(promoted->names[0], "promoted_lsn");
  EXPECT_GT(promoted->columns[0]->ValueAt<int64_t>(0), 0);

  // PROMOTE is idempotent-hostile: a second call is a typed error, not a
  // second role change.
  EXPECT_FALSE(rc.Query("PROMOTE").ok());

  // Writable now — and still serving the replicated history.
  ASSERT_TRUE(rc.Query("INSERT INTO t VALUES (100, 'new')").ok());
  auto all = rc.Query("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->columns[0]->ValueAt<int64_t>(0), 11);
  EXPECT_EQ(replica->stats().repl_role, 0u);

  // The promoted primary re-anchored durably in its own directory: a
  // recovery of that directory sees the full history, replicated rows
  // and post-promotion writes alike.
  servers_.back()->Stop();
  Catalog recovered;
  auto info = wal::Recover(promoted_dir, &recovered);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  auto t = recovered.Get("t");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->VisibleRowCount(), 11u);
}

TEST_F(ReplTest, TwoReplicasBothDrainAndServeTheSameBytes) {
  Server* primary = StartPrimary();
  Client pc = Connect(primary);
  ASSERT_TRUE(pc.Query("CREATE TABLE t (id INT, v INT)").ok());

  Server* r1 = StartReplica(primary->port());
  Server* r2 = StartReplica(primary->port());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(pc.Query("INSERT INTO t VALUES (" + std::to_string(i) +
                         ", " + std::to_string(i * i) + ")")
                    .ok());
  }
  ASSERT_TRUE(WaitForCatchUp(primary, r1));
  ASSERT_TRUE(WaitForCatchUp(primary, r2));
  EXPECT_EQ(primary->stats().repl_replicas, 2u);
  EXPECT_EQ(primary->stats().repl_lag_bytes, 0u);

  Client c1 = Connect(r1);
  Client c2 = Connect(r2);
  ExpectIdentical(&pc, &c1, "SELECT id, v FROM t");
  ExpectIdentical(&c1, &c2, "SELECT id, v FROM t");
}

}  // namespace
}  // namespace mammoth::repl
