#include "sql/prepared.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "server/wire.h"
#include "sql/engine.h"

namespace mammoth::sql {
namespace {

class PreparedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .Execute("CREATE TABLE items (id INT, price INT, "
                             "tag VARCHAR(16))")
                    .ok());
    std::string ins = "INSERT INTO items VALUES ";
    for (int i = 0; i < 500; ++i) {
      if (i > 0) ins += ", ";
      ins += "(" + std::to_string(i) + ", " + std::to_string((i * 13) % 97) +
             ", '" + (i % 2 == 0 ? "even" : "odd") + "')";
    }
    ASSERT_TRUE(engine_.Execute(ins).ok());
  }
  Engine engine_;
};

// ------------------------------------------------------ cache plumbing --

TEST_F(PreparedTest, PrepareReturnsIdAndParamCount) {
  auto entry = engine_.Prepare(
      "SELECT id FROM items WHERE price >= ? AND price <= ?");
  ASSERT_TRUE(entry.ok()) << entry.status().ToString();
  EXPECT_GT((*entry)->id, 0u);
  EXPECT_EQ((*entry)->nparams, 2u);
}

TEST_F(PreparedTest, NormalizationDedupesEquivalentText) {
  auto a = engine_.Prepare("SELECT id FROM items WHERE price = ?");
  auto b = engine_.Prepare("select  ID   from ITEMS where PRICE = ?;");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ((*a)->id, (*b)->id);  // one cache entry, second was a hit
  const PreparedStats s = engine_.prepared_stats();
  EXPECT_EQ(s.entries, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  // Case inside string literals is significant: different statement.
  auto c = engine_.Prepare("SELECT id FROM items WHERE tag = 'even'");
  auto d = engine_.Prepare("SELECT id FROM items WHERE tag = 'EVEN'");
  ASSERT_TRUE(c.ok() && d.ok());
  EXPECT_NE((*c)->id, (*d)->id);
}

TEST_F(PreparedTest, ExecuteMatchesUnpreparedBitForBit) {
  const std::string raw =
      "SELECT id, price FROM items WHERE price >= 10 AND price <= 40";
  auto expected = engine_.Execute(raw);
  ASSERT_TRUE(expected.ok());
  auto expected_bytes = server::EncodeResult(*expected);
  ASSERT_TRUE(expected_bytes.ok());

  auto entry = engine_.Prepare(
      "SELECT id, price FROM items WHERE price >= ? AND price <= ?");
  ASSERT_TRUE(entry.ok());
  for (int rep = 0; rep < 3; ++rep) {
    auto got = engine_.ExecutePrepared((*entry)->id,
                                       {Value::Int(10), Value::Int(40)});
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    auto got_bytes = server::EncodeResult(*got);
    ASSERT_TRUE(got_bytes.ok());
    EXPECT_EQ(*got_bytes, *expected_bytes) << "rep " << rep;
  }
}

TEST_F(PreparedTest, PlanCacheHitsSkipRecompilation) {
  auto entry = engine_.Prepare("SELECT COUNT(*) FROM items WHERE price = ?");
  ASSERT_TRUE(entry.ok());
  const PreparedStats before = engine_.prepared_stats();
  ASSERT_TRUE(engine_.ExecutePrepared((*entry)->id, {Value::Int(5)}).ok());
  ASSERT_TRUE(engine_.ExecutePrepared((*entry)->id, {Value::Int(6)}).ok());
  ASSERT_TRUE(engine_.ExecutePrepared((*entry)->id, {Value::Int(7)}).ok());
  const PreparedStats after = engine_.prepared_stats();
  // First execution compiles (miss); the rest reuse the cached plan.
  EXPECT_EQ(after.misses - before.misses, 1u);
  EXPECT_EQ(after.hits - before.hits, 2u);
}

TEST_F(PreparedTest, DdlAndDmlInvalidateCachedPlans) {
  auto entry = engine_.Prepare("SELECT COUNT(*) FROM items WHERE price = ?");
  ASSERT_TRUE(entry.ok());
  ASSERT_TRUE(engine_.ExecutePrepared((*entry)->id, {Value::Int(5)}).ok());
  const PreparedStats warm = engine_.prepared_stats();

  // Any mutation bumps the engine's catalog version: the next execution
  // must recompile against the new state (a plan-cache miss), exactly
  // like the recycler drops its cached intermediates.
  ASSERT_TRUE(engine_.Execute("INSERT INTO items VALUES (9999, 5, 'odd')")
                  .ok());
  auto r = engine_.ExecutePrepared((*entry)->id, {Value::Int(5)});
  ASSERT_TRUE(r.ok());
  const PreparedStats after = engine_.prepared_stats();
  EXPECT_EQ(after.misses - warm.misses, 1u);
  // The recompiled plan sees the new row.
  auto direct = engine_.Execute("SELECT COUNT(*) FROM items WHERE price = 5");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(r->columns[0]->ValueAt<int64_t>(0),
            direct->columns[0]->ValueAt<int64_t>(0));

  // And the plan stays cached again afterwards.
  ASSERT_TRUE(engine_.ExecutePrepared((*entry)->id, {Value::Int(5)}).ok());
  EXPECT_EQ(engine_.prepared_stats().misses, after.misses);
}

TEST_F(PreparedTest, LruEvictionIsCountedAndBounded) {
  engine_.set_prepared_capacity(4);
  for (int i = 0; i < 10; ++i) {
    auto e = engine_.Prepare("SELECT id FROM items WHERE price = " +
                             std::to_string(i));
    ASSERT_TRUE(e.ok()) << i;
  }
  const PreparedStats s = engine_.prepared_stats();
  EXPECT_EQ(s.entries, 4u);
  EXPECT_EQ(s.evictions, 6u);
  // An evicted id is gone; executing it is a typed NotFound, the
  // wire-level equivalent of "please re-prepare".
  auto first = engine_.Prepare("SELECT id FROM items WHERE price = 99");
  ASSERT_TRUE(first.ok());
  engine_.set_prepared_capacity(0);
  auto gone = engine_.ExecutePrepared((*first)->id, {});
  ASSERT_FALSE(gone.ok());
  EXPECT_EQ(gone.status().code(), StatusCode::kNotFound);
}

TEST_F(PreparedTest, EvictionMidExecutionIsSafe) {
  // The shared_ptr entry keeps an in-flight execution alive even when
  // the cache evicts it concurrently.
  auto entry = engine_.Prepare("SELECT SUM(price) FROM items");
  ASSERT_TRUE(entry.ok());
  std::shared_ptr<PreparedStatement> held = *entry;
  engine_.set_prepared_capacity(0);  // evicts everything
  EXPECT_EQ(engine_.prepared_stats().entries, 0u);
  EXPECT_EQ(held->nparams, 0u);  // the held entry is still intact
}

TEST_F(PreparedTest, ParameterCountAndNilAreTypedErrors) {
  auto entry = engine_.Prepare("SELECT id FROM items WHERE price = ?");
  ASSERT_TRUE(entry.ok());
  auto too_few = engine_.ExecutePrepared((*entry)->id, {});
  ASSERT_FALSE(too_few.ok());
  EXPECT_EQ(too_few.status().code(), StatusCode::kInvalidArgument);
  auto too_many = engine_.ExecutePrepared(
      (*entry)->id, {Value::Int(1), Value::Int(2)});
  ASSERT_FALSE(too_many.ok());
  auto nil = engine_.ExecutePrepared((*entry)->id, {Value::Nil()});
  ASSERT_FALSE(nil.ok());
  EXPECT_EQ(nil.status().code(), StatusCode::kInvalidArgument);
  auto unknown = engine_.ExecutePrepared(0xDEAD, {});
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

TEST_F(PreparedTest, StrayPlaceholderOutsidePrepareIsRejected) {
  // `?` only means "parameter" under PREPARE; a plain query using it is
  // a parse error, not a silent nil.
  auto r = engine_.Execute("SELECT id FROM items WHERE price = ?");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(PreparedTest, PreparedDmlBindsParameters) {
  auto ins = engine_.Prepare("INSERT INTO items VALUES (?, ?, ?)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ((*ins)->nparams, 3u);
  ASSERT_TRUE(engine_
                  .ExecutePrepared((*ins)->id, {Value::Int(7777),
                                                Value::Int(4242),
                                                Value::Str("even")})
                  .ok());
  auto check = engine_.Execute("SELECT tag FROM items WHERE id = 7777");
  ASSERT_TRUE(check.ok());
  ASSERT_EQ(check->RowCount(), 1u);
  EXPECT_EQ(check->columns[0]->StringAt(0), "even");

  auto del = engine_.Prepare("DELETE FROM items WHERE id = ?");
  ASSERT_TRUE(del.ok());
  ASSERT_TRUE(engine_.ExecutePrepared((*del)->id, {Value::Int(7777)}).ok());
  auto gone = engine_.Execute("SELECT tag FROM items WHERE id = 7777");
  ASSERT_TRUE(gone.ok());
  EXPECT_EQ(gone->RowCount(), 0u);
}

TEST_F(PreparedTest, ConcurrentSessionsPreparingSameStatementShareEntry) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::vector<uint64_t> ids(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto e = engine_.Prepare(
          "SELECT id FROM items WHERE price >= ? AND price <= ?");
      if (!e.ok()) {
        ++failures;
        return;
      }
      ids[t] = (*e)->id;
      for (int rep = 0; rep < 4; ++rep) {
        auto r = engine_.ExecutePrepared(
            (*e)->id, {Value::Int(t), Value::Int(t + 20)});
        if (!r.ok()) ++failures;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(ids[t], ids[0]);
  EXPECT_EQ(engine_.prepared_stats().entries, 1u);
}

// --------------------------------------------------------- SQL surface --

TEST_F(PreparedTest, SqlPrepareExecuteRoundTrip) {
  auto prep = engine_.Execute(
      "PREPARE cheap AS SELECT id FROM items WHERE price <= ?");
  ASSERT_TRUE(prep.ok()) << prep.status().ToString();
  ASSERT_EQ(prep->names, (std::vector<std::string>{"stmt_id", "nparams"}));
  EXPECT_EQ(prep->columns[1]->ValueAt<int64_t>(0), 1);

  auto direct = engine_.Execute("SELECT id FROM items WHERE price <= 3");
  ASSERT_TRUE(direct.ok());
  auto got = engine_.Execute("EXECUTE cheap (3)");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  auto a = server::EncodeResult(*direct);
  auto b = server::EncodeResult(*got);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);

  // Names are case-insensitive like the rest of the surface; negative
  // and string literals bind too.
  ASSERT_TRUE(engine_
                  .Execute("PREPARE tagq AS "
                           "SELECT COUNT(*) FROM items WHERE tag = ?")
                  .ok());
  auto tagged = engine_.Execute("EXECUTE TAGQ ('even')");
  ASSERT_TRUE(tagged.ok()) << tagged.status().ToString();
  EXPECT_EQ(tagged->columns[0]->ValueAt<int64_t>(0), 250);
}

TEST_F(PreparedTest, SqlSurfaceErrorsAreTyped) {
  EXPECT_FALSE(engine_.Execute("PREPARE AS SELECT 1").ok());
  EXPECT_FALSE(engine_.Execute("PREPARE p2").ok());
  auto unknown = engine_.Execute("EXECUTE nosuch (1)");
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(engine_
                  .Execute("PREPARE one AS "
                           "SELECT id FROM items WHERE price = ?")
                  .ok());
  EXPECT_FALSE(engine_.Execute("EXECUTE one (1, 2)").ok());   // arity
  EXPECT_FALSE(engine_.Execute("EXECUTE one (1) junk").ok()); // trailing
}

}  // namespace
}  // namespace mammoth::sql
