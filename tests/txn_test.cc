// Multi-statement transactions (§14): MVCC snapshot isolation over the
// delta-BAT storage, BEGIN/COMMIT/ROLLBACK through the SQL engine, and
// first-writer-wins write-write conflict detection.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/catalog.h"
#include "parallel/exec_context.h"
#include "parallel/task_pool.h"
#include "sql/engine.h"
#include "txn/txn.h"
#include "wal/db.h"

namespace mammoth::sql {
namespace {

int64_t ScalarInt(const mal::QueryResult& r) {
  EXPECT_EQ(r.RowCount(), 1u);
  return r.columns[0]->ValueAt<int64_t>(0);
}

class TxnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_.Execute("CREATE TABLE t (k INT, v BIGINT)").ok());
    ASSERT_TRUE(engine_
                    .Execute("INSERT INTO t VALUES (1, 10), (2, 20), "
                             "(3, 30), (4, 40)")
                    .ok());
  }

  Result<mal::QueryResult> Run(const SessionPtr& s, const std::string& sql) {
    return engine_.ExecuteSession(s, sql);
  }
  int64_t Sum(const SessionPtr& s) {
    auto r = Run(s, "SELECT sum(v) FROM t");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->RowCount(), 1u);
    return r->columns[0]->ValueAt<int64_t>(0);
  }
  int64_t Count(const SessionPtr& s) {
    auto r = Run(s, "SELECT count(*) FROM t");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return ScalarInt(*r);
  }

  Engine engine_;
};

// --- Statement surface -----------------------------------------------------

TEST_F(TxnTest, BeginCommitRollbackParse) {
  SessionPtr s = engine_.CreateSession();
  EXPECT_TRUE(Run(s, "BEGIN").ok());
  EXPECT_TRUE(Run(s, "COMMIT").ok());
  EXPECT_TRUE(Run(s, "BEGIN TRANSACTION").ok());
  EXPECT_TRUE(Run(s, "ROLLBACK").ok());
  EXPECT_TRUE(Run(s, "START TRANSACTION").ok());
  EXPECT_TRUE(Run(s, "COMMIT WORK").ok());
  EXPECT_TRUE(Run(s, "begin work").ok());
  EXPECT_TRUE(Run(s, "rollback transaction").ok());
  // START alone is not a statement; trailing garbage is rejected.
  EXPECT_FALSE(Run(s, "START").ok());
  EXPECT_FALSE(Run(s, "BEGIN EXTRA").ok());
}

TEST_F(TxnTest, CommitWithoutBeginFails) {
  SessionPtr s = engine_.CreateSession();
  auto r = Run(s, "COMMIT");
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Run(s, "ROLLBACK").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(TxnTest, DoubleBeginFails) {
  SessionPtr s = engine_.CreateSession();
  ASSERT_TRUE(Run(s, "BEGIN").ok());
  EXPECT_FALSE(Run(s, "BEGIN").ok());
  // The original transaction is still open and functional.
  EXPECT_TRUE(s->in_transaction());
  EXPECT_TRUE(Run(s, "COMMIT").ok());
}

// --- Snapshot isolation ----------------------------------------------------

TEST_F(TxnTest, ReaderDoesNotSeeUncommittedWrites) {
  SessionPtr writer = engine_.CreateSession();
  SessionPtr reader = engine_.CreateSession();
  ASSERT_TRUE(Run(writer, "BEGIN").ok());
  ASSERT_TRUE(Run(writer, "INSERT INTO t VALUES (5, 50)").ok());
  // Plain (auto-commit) reader: pending rows are invisible.
  EXPECT_EQ(Count(reader), 4);
  EXPECT_EQ(Sum(reader), 100);
  // The writer itself sees its own pending rows.
  EXPECT_EQ(Count(writer), 5);
  EXPECT_EQ(Sum(writer), 150);
  ASSERT_TRUE(Run(writer, "COMMIT").ok());
  EXPECT_EQ(Count(reader), 5);
}

TEST_F(TxnTest, SnapshotReaderDoesNotSeeLaterCommits) {
  SessionPtr writer = engine_.CreateSession();
  SessionPtr reader = engine_.CreateSession();
  ASSERT_TRUE(Run(reader, "BEGIN").ok());
  EXPECT_EQ(Count(reader), 4);  // snapshot pinned here
  // A whole transaction commits elsewhere…
  ASSERT_TRUE(Run(writer, "BEGIN").ok());
  ASSERT_TRUE(Run(writer, "INSERT INTO t VALUES (6, 60)").ok());
  ASSERT_TRUE(Run(writer, "DELETE FROM t WHERE k = 1").ok());
  ASSERT_TRUE(Run(writer, "COMMIT").ok());
  // …and an auto-commit statement too.
  ASSERT_TRUE(engine_.Execute("INSERT INTO t VALUES (7, 70)").ok());
  // The open snapshot still reads the BEGIN-time state, repeatably.
  EXPECT_EQ(Count(reader), 4);
  EXPECT_EQ(Sum(reader), 100);
  auto row = Run(reader, "SELECT v FROM t WHERE k = 1");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->RowCount(), 1u);
  ASSERT_TRUE(Run(reader, "COMMIT").ok());
  // After the transaction, the latest state appears.
  EXPECT_EQ(Count(reader), 5);  // 4 - 1 deleted + 2 inserted
}

TEST_F(TxnTest, UpdateVisibilityIsTransactional) {
  SessionPtr writer = engine_.CreateSession();
  SessionPtr reader = engine_.CreateSession();
  ASSERT_TRUE(Run(writer, "BEGIN").ok());
  ASSERT_TRUE(Run(writer, "UPDATE t SET v = 1000 WHERE k = 2").ok());
  // Reader sees the old image; writer sees the new one.
  auto old_img = Run(reader, "SELECT v FROM t WHERE k = 2");
  ASSERT_TRUE(old_img.ok());
  EXPECT_EQ(old_img->columns[0]->ValueAt<int64_t>(0), 20);
  auto new_img = Run(writer, "SELECT v FROM t WHERE k = 2");
  ASSERT_TRUE(new_img.ok());
  EXPECT_EQ(new_img->columns[0]->ValueAt<int64_t>(0), 1000);
  ASSERT_TRUE(Run(writer, "COMMIT").ok());
  auto committed = Run(reader, "SELECT v FROM t WHERE k = 2");
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed->columns[0]->ValueAt<int64_t>(0), 1000);
}

TEST_F(TxnTest, ReadersDoNotBlockBehindStalledWriter) {
  SessionPtr writer = engine_.CreateSession();
  ASSERT_TRUE(Run(writer, "BEGIN").ok());
  ASSERT_TRUE(Run(writer, "INSERT INTO t VALUES (9, 90)").ok());
  // The writer now sits mid-transaction holding t's *write* claim but no
  // engine lock. Readers on other sessions must complete regardless;
  // a a regression here deadlocks the test (guarded by a watchdog).
  std::atomic<bool> done{false};
  std::thread watchdog([&] {
    for (int i = 0; i < 10000 && !done.load(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_TRUE(done.load()) << "reader blocked behind a stalled writer";
  });
  SessionPtr reader = engine_.CreateSession();
  EXPECT_EQ(Count(reader), 4);
  done.store(true);
  watchdog.join();
  ASSERT_TRUE(Run(writer, "ROLLBACK").ok());
}

// --- Conflicts -------------------------------------------------------------

TEST_F(TxnTest, WriteWriteConflictIsTyped) {
  SessionPtr a = engine_.CreateSession();
  SessionPtr b = engine_.CreateSession();
  ASSERT_TRUE(Run(a, "BEGIN").ok());
  ASSERT_TRUE(Run(a, "UPDATE t SET v = 11 WHERE k = 1").ok());
  // First writer wins: the second transaction's write is refused with
  // the typed kConflict, not a generic error.
  ASSERT_TRUE(Run(b, "BEGIN").ok());
  auto clash = Run(b, "UPDATE t SET v = 12 WHERE k = 1");
  EXPECT_EQ(clash.status().code(), StatusCode::kConflict)
      << clash.status().ToString();
  // The losing transaction is poisoned: COMMIT rolls back and surfaces
  // the conflict.
  auto commit_b = Run(b, "COMMIT");
  EXPECT_EQ(commit_b.status().code(), StatusCode::kConflict);
  EXPECT_FALSE(b->in_transaction());
  // The winner commits fine.
  EXPECT_TRUE(Run(a, "COMMIT").ok());
  EXPECT_GE(engine_.txn_stats().conflicts, 1u);
}

TEST_F(TxnTest, AutoCommitConflictsWithOpenTransaction) {
  SessionPtr a = engine_.CreateSession();
  ASSERT_TRUE(Run(a, "BEGIN").ok());
  ASSERT_TRUE(Run(a, "INSERT INTO t VALUES (5, 50)").ok());
  // Auto-commit DML on another session hits the table claim.
  auto clash = engine_.Execute("INSERT INTO t VALUES (6, 60)");
  EXPECT_EQ(clash.status().code(), StatusCode::kConflict);
  ASSERT_TRUE(Run(a, "COMMIT").ok());
  // Claim released: auto-commit works again.
  EXPECT_TRUE(engine_.Execute("INSERT INTO t VALUES (6, 60)").ok());
}

TEST_F(TxnTest, PoisonedTransactionRejectsStatements) {
  SessionPtr a = engine_.CreateSession();
  SessionPtr b = engine_.CreateSession();
  ASSERT_TRUE(Run(a, "BEGIN").ok());
  ASSERT_TRUE(Run(a, "DELETE FROM t WHERE k = 3").ok());
  ASSERT_TRUE(Run(b, "BEGIN").ok());
  EXPECT_EQ(Run(b, "DELETE FROM t WHERE k = 3").status().code(),
            StatusCode::kConflict);
  // Everything after the failure is refused until ROLLBACK.
  EXPECT_FALSE(Run(b, "SELECT count(*) FROM t").ok());
  EXPECT_FALSE(Run(b, "INSERT INTO t VALUES (8, 80)").ok());
  EXPECT_TRUE(Run(b, "ROLLBACK").ok());
  EXPECT_TRUE(Run(b, "SELECT count(*) FROM t").ok());
  ASSERT_TRUE(Run(a, "ROLLBACK").ok());
}

// --- Rollback --------------------------------------------------------------

TEST_F(TxnTest, RollbackLeavesTableByteIdentical) {
  // Reference image of the table before the transaction.
  Catalog before;
  {
    auto t = engine_.catalog()->Get("t");
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(before.Register((*t)->Snapshot()).ok());
  }
  SessionPtr s = engine_.CreateSession();
  ASSERT_TRUE(Run(s, "BEGIN").ok());
  ASSERT_TRUE(Run(s, "INSERT INTO t VALUES (5, 50), (6, 60)").ok());
  ASSERT_TRUE(Run(s, "DELETE FROM t WHERE k = 2").ok());
  ASSERT_TRUE(Run(s, "UPDATE t SET v = 999 WHERE k = 1").ok());
  ASSERT_TRUE(Run(s, "ROLLBACK").ok());
  // Physical truncation: the live table matches the pre-BEGIN image
  // cell for cell.
  EXPECT_TRUE(wal::CompareCatalogs(before, *engine_.catalog()).ok());
  EXPECT_EQ(Count(s), 4);
  EXPECT_EQ(Sum(s), 100);
}

TEST_F(TxnTest, AbortSessionRollsBackOpenTransaction) {
  SessionPtr s = engine_.CreateSession();
  ASSERT_TRUE(Run(s, "BEGIN").ok());
  ASSERT_TRUE(Run(s, "INSERT INTO t VALUES (5, 50)").ok());
  engine_.AbortSession(s);  // the disconnect path
  EXPECT_FALSE(s->in_transaction());
  EXPECT_EQ(Count(s), 4);
  // The write claim is gone: other writers proceed.
  EXPECT_TRUE(engine_.Execute("INSERT INTO t VALUES (9, 90)").ok());
  EXPECT_GE(engine_.txn_stats().rolled_back, 1u);
}

// --- DDL and admin interactions -------------------------------------------

TEST_F(TxnTest, DdlInsideTransactionRefused) {
  SessionPtr s = engine_.CreateSession();
  ASSERT_TRUE(Run(s, "BEGIN").ok());
  EXPECT_FALSE(Run(s, "CREATE TABLE u (x INT)").ok());
  // The refusal poisons the transaction (uniform abort-on-error).
  EXPECT_FALSE(Run(s, "SELECT count(*) FROM t").ok());
  EXPECT_TRUE(Run(s, "ROLLBACK").ok());
  EXPECT_TRUE(engine_.Execute("CREATE TABLE u (x INT)").ok());
}

TEST_F(TxnTest, AlterWaitsForTransactionQuiescence) {
  SessionPtr s = engine_.CreateSession();
  ASSERT_TRUE(Run(s, "BEGIN").ok());
  auto alter = engine_.Execute("ALTER TABLE t COMPRESS");
  EXPECT_EQ(alter.status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(Run(s, "COMMIT").ok());
  EXPECT_TRUE(engine_.Execute("ALTER TABLE t COMPRESS").ok());
}

TEST_F(TxnTest, TxnStatsCount) {
  SessionPtr s = engine_.CreateSession();
  ASSERT_TRUE(Run(s, "BEGIN").ok());
  ASSERT_TRUE(Run(s, "INSERT INTO t VALUES (5, 50)").ok());
  EXPECT_EQ(engine_.txn_stats().active, 1u);
  ASSERT_TRUE(Run(s, "COMMIT").ok());
  ASSERT_TRUE(Run(s, "BEGIN").ok());
  ASSERT_TRUE(Run(s, "ROLLBACK").ok());
  const txn::TxnStats stats = engine_.txn_stats();
  EXPECT_GE(stats.begun, 2u);
  EXPECT_GE(stats.committed, 1u);
  EXPECT_GE(stats.rolled_back, 1u);
  EXPECT_EQ(stats.active, 0u);
}

// --- Prepared statements join the session's transaction --------------------

TEST_F(TxnTest, PreparedStatementsUseSessionSnapshot) {
  SessionPtr writer = engine_.CreateSession();
  SessionPtr reader = engine_.CreateSession();
  auto count_stmt = engine_.Prepare("SELECT count(*) FROM t");
  ASSERT_TRUE(count_stmt.ok());
  auto ins_stmt = engine_.Prepare("INSERT INTO t VALUES (?, ?)");
  ASSERT_TRUE(ins_stmt.ok());
  ASSERT_TRUE(Run(reader, "BEGIN").ok());
  auto before = engine_.ExecutePreparedSession(reader, (*count_stmt)->id, {});
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(ScalarInt(*before), 4);
  // Prepared DML inside the writer's transaction stays pending…
  ASSERT_TRUE(Run(writer, "BEGIN").ok());
  ASSERT_TRUE(engine_
                  .ExecutePreparedSession(writer, (*ins_stmt)->id,
                                          {Value::Int(5), Value::Int(50)})
                  .ok());
  ASSERT_TRUE(Run(writer, "COMMIT").ok());
  // …and the reader's prepared SELECT still reads its pinned snapshot.
  auto after = engine_.ExecutePreparedSession(reader, (*count_stmt)->id, {});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(ScalarInt(*after), 4);
  ASSERT_TRUE(Run(reader, "COMMIT").ok());
  auto latest = engine_.ExecutePreparedSession(reader, (*count_stmt)->id, {});
  ASSERT_TRUE(latest.ok());
  EXPECT_EQ(ScalarInt(*latest), 5);
}

// --- Determinism across pool sizes ----------------------------------------

TEST(TxnDeterminismTest, SnapshotReadsBitIdenticalAcrossPools) {
  // One engine, one open reader snapshot with concurrent committed noise;
  // the same SELECT must come back bit-identical under pools 1/2/4/8.
  Engine engine;
  ASSERT_TRUE(engine.Execute("CREATE TABLE d (k INT, v BIGINT)").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine
                    .Execute("INSERT INTO d VALUES (" + std::to_string(i) +
                             ", " + std::to_string(i * 7) + ")")
                    .ok());
  }
  SessionPtr reader = engine.CreateSession();
  ASSERT_TRUE(engine.ExecuteSession(reader, "BEGIN").ok());
  // Pin the snapshot, then mutate underneath it.
  ASSERT_TRUE(engine.ExecuteSession(reader, "SELECT count(*) FROM d").ok());
  ASSERT_TRUE(engine.Execute("DELETE FROM d WHERE k < 10").ok());
  ASSERT_TRUE(engine.Execute("INSERT INTO d VALUES (100, 700)").ok());

  const std::string q =
      "SELECT k, v FROM d WHERE v >= 70 ORDER BY k";
  std::vector<std::vector<int64_t>> images;
  for (int threads : {1, 2, 4, 8}) {
    parallel::TaskPool pool(threads);
    parallel::ExecContext ctx(&pool);
    auto r = engine.ExecuteSession(reader, q, ctx);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    std::vector<int64_t> img;
    for (size_t i = 0; i < r->RowCount(); ++i) {
      img.push_back(r->columns[0]->ValueAt<int32_t>(i));
      img.push_back(r->columns[1]->ValueAt<int64_t>(i));
    }
    images.push_back(std::move(img));
  }
  for (size_t i = 1; i < images.size(); ++i) {
    EXPECT_EQ(images[i], images[0]) << "pool size diverged";
  }
  // The snapshot ignored the concurrent DML entirely.
  ASSERT_FALSE(images[0].empty());
  EXPECT_EQ(images[0].size(), 2u * 40u);  // k in [10,50): v >= 70
  ASSERT_TRUE(engine.ExecuteSession(reader, "COMMIT").ok());
}

// --- Concurrency storm (ASan/TSan fodder) ----------------------------------

TEST(TxnConcurrencyTest, WritersAndReadersRace) {
  Engine engine;
  ASSERT_TRUE(engine.Execute("CREATE TABLE s (k INT, v BIGINT)").ok());
  ASSERT_TRUE(engine.Execute("INSERT INTO s VALUES (0, 0)").ok());
  constexpr int kWriters = 8;
  constexpr int kReaders = 8;
  constexpr int kRounds = 25;
  std::atomic<int> committed{0};
  std::atomic<int> conflicted{0};
  std::vector<std::thread> threads;
  threads.reserve(kWriters + kReaders);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      SessionPtr s = engine.CreateSession();
      for (int i = 0; i < kRounds; ++i) {
        ASSERT_TRUE(engine.ExecuteSession(s, "BEGIN").ok());
        auto ins = engine.ExecuteSession(
            s, "INSERT INTO s VALUES (" + std::to_string(w) + ", " +
                   std::to_string(i) + ")");
        if (!ins.ok()) {
          ASSERT_EQ(ins.status().code(), StatusCode::kConflict)
              << ins.status().ToString();
          ++conflicted;
          ASSERT_TRUE(engine.ExecuteSession(s, "ROLLBACK").ok());
          continue;
        }
        auto commit = engine.ExecuteSession(s, "COMMIT");
        if (commit.ok()) {
          ++committed;
        } else {
          ASSERT_EQ(commit.status().code(), StatusCode::kConflict);
          ++conflicted;
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      SessionPtr s = engine.CreateSession();
      for (int i = 0; i < kRounds; ++i) {
        ASSERT_TRUE(engine.ExecuteSession(s, "BEGIN").ok());
        auto c1 = engine.ExecuteSession(s, "SELECT count(*) FROM s");
        ASSERT_TRUE(c1.ok()) << c1.status().ToString();
        auto c2 = engine.ExecuteSession(s, "SELECT count(*) FROM s");
        ASSERT_TRUE(c2.ok()) << c2.status().ToString();
        // Repeatable read inside the transaction.
        ASSERT_EQ(c1->columns[0]->ValueAt<int64_t>(0),
                  c2->columns[0]->ValueAt<int64_t>(0));
        ASSERT_TRUE(engine.ExecuteSession(s, "COMMIT").ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // Every commit that was acknowledged is visible; conflicted rounds
  // left nothing behind.
  auto final_count = engine.Execute("SELECT count(*) FROM s");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->columns[0]->ValueAt<int64_t>(0),
            1 + committed.load());
  EXPECT_EQ(engine.txn_stats().active, 0u);
}

}  // namespace
}  // namespace mammoth::sql
