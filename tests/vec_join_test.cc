#include "vector/vec_join.h"

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "core/group.h"
#include "core/join.h"
#include "core/project.h"
#include "core/select.h"
#include "vector/pipeline.h"

namespace mammoth::vec {
namespace {

TEST(VecHashJoinTest, BuildRejectsDuplicatesAndWrongTypes) {
  BatPtr dup = MakeBat<int32_t>({1, 2, 1});
  EXPECT_FALSE(VecHashJoin::Build(dup).ok());
  BatPtr lng = MakeBat<int64_t>({1});
  EXPECT_FALSE(VecHashJoin::Build(lng).ok());
}

TEST(VecHashJoinTest, ProbeFindsMatchesAndDropsMisses) {
  BatPtr build = MakeBat<int32_t>({10, 20, 30, 40});
  auto join = VecHashJoin::Build(build);
  ASSERT_TRUE(join.ok());
  const int32_t probes[] = {20, 5, 40, 40, 99, 10};
  uint32_t sel[6], rows[6];
  const size_t k = join->ProbeVector(probes, 6, nullptr, 0, sel, rows);
  ASSERT_EQ(k, 4u);
  EXPECT_EQ(sel[0], 0u);  // lane of 20
  EXPECT_EQ(rows[0], 1u);
  EXPECT_EQ(sel[1], 2u);  // first 40
  EXPECT_EQ(rows[1], 3u);
  EXPECT_EQ(sel[3], 5u);  // 10
  EXPECT_EQ(rows[3], 0u);
}

TEST(VecHashJoinTest, ProbeHonorsSelectionVector) {
  BatPtr build = MakeBat<int32_t>({1, 2, 3});
  auto join = VecHashJoin::Build(build);
  ASSERT_TRUE(join.ok());
  const int32_t probes[] = {1, 2, 3, 1};
  const uint32_t sel_in[] = {1, 3};  // only lanes 1 and 3 active
  uint32_t sel[4], rows[4];
  const size_t k = join->ProbeVector(probes, 4, sel_in, 2, sel, rows);
  ASSERT_EQ(k, 2u);
  EXPECT_EQ(sel[0], 1u);
  EXPECT_EQ(rows[0], 1u);
  EXPECT_EQ(sel[1], 3u);
  EXPECT_EQ(rows[1], 0u);
}

TEST(VecJoinPipelineTest, StarQueryMatchesBatAlgebra) {
  // fact(key fk -> dim.id, measure) joined with dim(id, weight):
  //   SELECT sum(measure * weight) WHERE measure in range
  Rng rng(5);
  const size_t dim_n = 500, fact_n = 30000;
  BatPtr dim_id = Bat::New(PhysType::kInt32);
  BatPtr dim_weight = Bat::New(PhysType::kDouble);
  for (size_t i = 0; i < dim_n; ++i) {
    dim_id->Append<int32_t>(static_cast<int32_t>(i * 3));  // sparse ids
    dim_weight->Append<double>(rng.NextDouble());
  }
  BatPtr fact_key = Bat::New(PhysType::kInt32);
  BatPtr fact_measure = Bat::New(PhysType::kDouble);
  for (size_t i = 0; i < fact_n; ++i) {
    // ~2/3 of the keys hit the dimension.
    fact_key->Append<int32_t>(static_cast<int32_t>(rng.Uniform(dim_n * 2)));
    fact_measure->Append<double>(rng.NextDouble() * 10);
  }

  // Vectorized: probe-filter + gather + multiply + sum.
  auto join = VecHashJoin::Build(dim_id);
  ASSERT_TRUE(join.ok());
  Pipeline p({fact_key, fact_measure}, 512);
  ASSERT_TRUE(p.AddSelectRange(1, 2.0, 8.0).ok());
  auto weight_reg = p.AddHashProbe(0, &*join, dim_weight);
  ASSERT_TRUE(weight_reg.ok()) << weight_reg.status().ToString();
  auto product = p.AddMapColCol(BinOp::kMul, 1, *weight_reg);
  ASSERT_TRUE(product.ok());
  ASSERT_TRUE(p.SetAggregate(Pipeline::kNoGroup, 1,
                             {{AggFn::kSum, *product}, {AggFn::kCount, 0}})
                  .ok());
  auto got = p.Run();
  ASSERT_TRUE(got.ok()) << got.status().ToString();

  // Reference: BAT algebra (select, join, projections, sum).
  auto sel = algebra::RangeSelect(fact_measure, nullptr, mammoth::Value::Real(2.0),
                                  mammoth::Value::Real(8.0));
  ASSERT_TRUE(sel.ok());
  auto keys = algebra::Project(*sel, fact_key);
  auto measures = algebra::Project(*sel, fact_measure);
  ASSERT_TRUE(keys.ok() && measures.ok());
  auto jr = algebra::HashJoin(*keys, dim_id);
  ASSERT_TRUE(jr.ok());
  auto m = algebra::Project(jr->left, *measures);
  auto w = algebra::Project(jr->right, dim_weight);
  ASSERT_TRUE(m.ok() && w.ok());
  double want_sum = 0;
  for (size_t i = 0; i < (*m)->Count(); ++i) {
    want_sum += (*m)->ValueAt<double>(i) * (*w)->ValueAt<double>(i);
  }
  EXPECT_NEAR(got->aggregates[0][0], want_sum, 1e-6);
  EXPECT_DOUBLE_EQ(got->aggregates[1][0],
                   static_cast<double>((*m)->Count()));
}

TEST(VecJoinPipelineTest, ProbeValidation) {
  BatPtr keys = MakeBat<int32_t>({1, 2});
  BatPtr build = MakeBat<int32_t>({1});
  BatPtr payload = MakeBat<double>({0.5});
  BatPtr wrong_len = MakeBat<double>({0.5, 0.6});
  auto join = VecHashJoin::Build(build);
  ASSERT_TRUE(join.ok());
  Pipeline p({keys}, 4);
  EXPECT_FALSE(p.AddHashProbe(0, nullptr, payload).ok());
  EXPECT_FALSE(p.AddHashProbe(0, &*join, wrong_len).ok());
  EXPECT_FALSE(p.AddHashProbe(5, &*join, payload).ok());
  EXPECT_TRUE(p.AddHashProbe(0, &*join, payload).ok());
}

TEST(VecJoinPipelineTest, VectorSizeInvariantWithProbe) {
  Rng rng(9);
  BatPtr dim_id = Bat::New(PhysType::kInt32);
  BatPtr dim_val = Bat::New(PhysType::kInt32);
  for (int i = 0; i < 100; ++i) {
    dim_id->Append<int32_t>(i);
    dim_val->Append<int32_t>(i * 10);
  }
  BatPtr fact = Bat::New(PhysType::kInt32);
  for (int i = 0; i < 9973; ++i) {  // prime: exercises partial batches
    fact->Append<int32_t>(static_cast<int32_t>(rng.Uniform(150)));
  }
  auto join = VecHashJoin::Build(dim_id);
  ASSERT_TRUE(join.ok());
  auto run = [&](size_t vsize) {
    Pipeline p({fact}, vsize);
    auto v = p.AddHashProbe(0, &*join, dim_val);
    EXPECT_TRUE(v.ok());
    EXPECT_TRUE(p.SetAggregate(Pipeline::kNoGroup, 1,
                               {{AggFn::kSum, *v}, {AggFn::kCount, 0}})
                    .ok());
    auto r = p.Run();
    EXPECT_TRUE(r.ok());
    return *r;
  };
  const AggResult a = run(1);
  const AggResult b = run(128);
  const AggResult c = run(9973);
  EXPECT_DOUBLE_EQ(a.aggregates[0][0], b.aggregates[0][0]);
  EXPECT_DOUBLE_EQ(a.aggregates[1][0], b.aggregates[1][0]);
  EXPECT_DOUBLE_EQ(a.aggregates[0][0], c.aggregates[0][0]);
}

}  // namespace
}  // namespace mammoth::vec
