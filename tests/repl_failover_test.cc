// Failover harness: forks a real primary mammoth_server on a durable
// directory plus two replica servers, drives a concurrent write storm
// over the wire, SIGKILLs the primary mid-storm, promotes the
// most-caught-up replica with PROMOTE, and verifies on the promoted
// node that every acknowledged write survived exactly once — the
// semi-sync replication contract, checked against an actual dead
// process. Binaries are located like in wal_crash_test.cc; the suite
// skips (not fails) when the server isn't built.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"

namespace mammoth::repl {
namespace {

namespace fs = std::filesystem;

std::string FindServerBinary() {
  if (const char* env = std::getenv("MAMMOTH_SERVER_BIN")) {
    if (fs::exists(env)) return env;
  }
  for (const char* candidate :
       {"../examples/mammoth_server", "examples/mammoth_server",
        "build/examples/mammoth_server"}) {
    if (fs::exists(candidate)) return candidate;
  }
  return "";
}

struct ServerProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
  uint16_t port = 0;
};

/// Forks + execs a server with `extra_args`, reads stdout until the
/// listening banner reveals the ephemeral port.
ServerProcess LaunchServer(const std::string& binary,
                           const std::vector<std::string>& extra_args) {
  ServerProcess proc;
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return proc;
  const pid_t pid = fork();
  if (pid < 0) {
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    return proc;
  }
  if (pid == 0) {
    dup2(pipe_fds[1], STDOUT_FILENO);
    dup2(pipe_fds[1], STDERR_FILENO);
    close(pipe_fds[0]);
    close(pipe_fds[1]);
    std::vector<const char*> argv = {binary.c_str(), "--port", "0"};
    for (const std::string& a : extra_args) argv.push_back(a.c_str());
    argv.push_back(nullptr);
    execv(binary.c_str(), const_cast<char* const*>(argv.data()));
    std::perror("exec mammoth_server");
    _exit(127);
  }
  close(pipe_fds[1]);
  proc.pid = pid;
  proc.stdout_fd = pipe_fds[0];

  std::string acc;
  char buf[256];
  while (acc.find("listening on") == std::string::npos) {
    const ssize_t n = read(proc.stdout_fd, buf, sizeof buf);
    if (n <= 0) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      close(proc.stdout_fd);
      return {};
    }
    acc.append(buf, static_cast<size_t>(n));
  }
  const size_t at = acc.find("listening on ");
  unsigned port = 0;
  if (std::sscanf(acc.c_str() + at, "listening on %*[^:]:%u", &port) != 1 ||
      port == 0) {
    kill(pid, SIGKILL);
    waitpid(pid, nullptr, 0);
    close(proc.stdout_fd);
    return {};
  }
  proc.port = static_cast<uint16_t>(port);
  return proc;
}

void KillAndReap(ServerProcess* proc, int sig) {
  if (proc->pid > 0) {
    kill(proc->pid, sig);
    waitpid(proc->pid, nullptr, 0);
    proc->pid = -1;
  }
  if (proc->stdout_fd >= 0) {
    close(proc->stdout_fd);
    proc->stdout_fd = -1;
  }
}

/// Reads one named counter from SERVER STATUS (-1 on any failure).
int64_t StatusCounter(uint16_t port, const std::string& name) {
  auto client = server::Client::Connect("127.0.0.1", port);
  if (!client.ok()) return -1;
  auto r = client->Query("SERVER STATUS");
  if (!r.ok()) return -1;
  for (size_t i = 0; i < r->RowCount(); ++i) {
    if (r->columns[0]->StringAt(i) == name) {
      return r->columns[1]->ValueAt<int64_t>(i);
    }
  }
  return -1;
}

TEST(ReplFailoverTest, Kill9ThenPromoteLosesNoAckedWrite) {
  const std::string binary = FindServerBinary();
  if (binary.empty()) {
    GTEST_SKIP() << "mammoth_server binary not found "
                    "(set MAMMOTH_SERVER_BIN)";
  }
  const std::string dir = ::testing::TempDir() + "/mammoth_failover";
  fs::remove_all(dir);

  // Primary: durable, small checkpoint trigger so the storm crosses
  // checkpoints (and late subscribers may bootstrap via snapshot).
  ServerProcess primary = LaunchServer(
      binary, {"--db-dir", dir + "/primary", "--checkpoint-bytes", "65536"});
  ASSERT_GT(primary.pid, 0) << "primary failed to launch";
  const std::string primary_addr =
      "127.0.0.1:" + std::to_string(primary.port);

  {
    auto admin = server::Client::Connect("127.0.0.1", primary.port);
    ASSERT_TRUE(admin.ok()) << admin.status().ToString();
    ASSERT_TRUE(admin->Query("CREATE TABLE t (v BIGINT)").ok());
  }

  ServerProcess replica_a =
      LaunchServer(binary, {"--replicate-from", primary_addr, "--db-dir",
                            dir + "/replica_a"});
  ServerProcess replica_b =
      LaunchServer(binary, {"--replicate-from", primary_addr, "--db-dir",
                            dir + "/replica_b"});
  ASSERT_GT(replica_a.pid, 0) << "replica A failed to launch";
  ASSERT_GT(replica_b.pid, 0) << "replica B failed to launch";

  // The storm: unique values per thread, recording every acked insert,
  // until the SIGKILL severs the connections.
  constexpr int kThreads = 4;
  std::vector<std::thread> writers;
  std::vector<std::vector<int64_t>> acked(kThreads);
  std::atomic<uint64_t> total_acked{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      auto client = server::Client::Connect("127.0.0.1", primary.port);
      if (!client.ok()) return;
      for (int64_t j = 0;; ++j) {
        const int64_t v = static_cast<int64_t>(t) * 1000000 + j;
        auto r = client->Query("INSERT INTO t VALUES (" +
                               std::to_string(v) + ")");
        if (!r.ok()) return;  // the primary is gone
        acked[t].push_back(v);
        ++total_acked;
      }
    });
  }

  while (total_acked.load() < 300) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(kill(primary.pid, SIGKILL), 0);
  for (auto& w : writers) w.join();
  KillAndReap(&primary, SIGKILL);

  // Pick the most-caught-up replica (with semi-sync every acked write is
  // on at least one of them; promoting the max-LSN one covers all).
  const int64_t lsn_a = StatusCounter(replica_a.port, "repl_replayed_lsn");
  const int64_t lsn_b = StatusCounter(replica_b.port, "repl_replayed_lsn");
  ASSERT_GE(lsn_a, 0);
  ASSERT_GE(lsn_b, 0);
  ServerProcess* winner = lsn_a >= lsn_b ? &replica_a : &replica_b;
  ServerProcess* loser = lsn_a >= lsn_b ? &replica_b : &replica_a;

  auto client = server::Client::Connect("127.0.0.1", winner->port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto promoted = client->Query("PROMOTE");
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();

  // Exactly-once: every acked write present, no duplicates, nothing
  // invented. Unacked in-flight inserts may legitimately have replicated.
  auto rows = client->Query("SELECT v FROM t");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  std::set<int64_t> present;
  for (size_t i = 0; i < rows->RowCount(); ++i) {
    const int64_t v = rows->columns[0]->ValueAt<int64_t>(i);
    EXPECT_TRUE(present.insert(v).second) << "duplicate row " << v;
  }
  size_t acked_total = 0;
  for (int t = 0; t < kThreads; ++t) {
    acked_total += acked[t].size();
    for (int64_t v : acked[t]) {
      EXPECT_TRUE(present.count(v)) << "acked write lost: " << v;
    }
  }
  EXPECT_GE(present.size(), acked_total);
  for (int64_t v : present) {
    const int64_t t = v / 1000000;
    ASSERT_TRUE(t >= 0 && t < kThreads) << "impossible value " << v;
    EXPECT_LT(v % 1000000, static_cast<int64_t>(acked[t].size()) + 2)
        << "value " << v << " was never attempted";
  }

  // The promoted node accepts writes and reports itself as a primary.
  ASSERT_TRUE(client->Query("INSERT INTO t VALUES (424242424242)").ok());
  EXPECT_EQ(StatusCounter(winner->port, "repl_role"), 0);

  KillAndReap(loser, SIGTERM);
  KillAndReap(winner, SIGTERM);
  fs::remove_all(dir);
}

// Multi-statement transactions across failover: writers run BEGIN /
// three INSERTs / COMMIT batches (one shipped Begin…Commit WAL batch per
// transaction), the primary dies mid-storm, a replica is promoted. The
// promoted node must hold transactions atomically — every acked COMMIT
// fully present, never a partial batch, open transactions absent —
// because replicas replay whole transaction batches, not single records.
TEST(ReplFailoverTest, Kill9ThenPromoteKeepsTxnsAtomic) {
  const std::string binary = FindServerBinary();
  if (binary.empty()) {
    GTEST_SKIP() << "mammoth_server binary not found "
                    "(set MAMMOTH_SERVER_BIN)";
  }
  const std::string dir = ::testing::TempDir() + "/mammoth_failover_txn";
  fs::remove_all(dir);

  ServerProcess primary = LaunchServer(
      binary, {"--db-dir", dir + "/primary", "--checkpoint-bytes", "65536"});
  ASSERT_GT(primary.pid, 0) << "primary failed to launch";
  const std::string primary_addr =
      "127.0.0.1:" + std::to_string(primary.port);

  constexpr int kThreads = 4;
  constexpr int kBatch = 3;
  {
    auto admin = server::Client::Connect("127.0.0.1", primary.port);
    ASSERT_TRUE(admin.ok()) << admin.status().ToString();
    for (int t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(admin
                      ->Query("CREATE TABLE w" + std::to_string(t) +
                              " (v BIGINT)")
                      .ok());
    }
  }
  ServerProcess replica = LaunchServer(
      binary,
      {"--replicate-from", primary_addr, "--db-dir", dir + "/replica"});
  ASSERT_GT(replica.pid, 0) << "replica failed to launch";

  std::vector<std::thread> writers;
  std::vector<int64_t> commit_sent(kThreads, 0);
  std::vector<int64_t> commit_acked(kThreads, 0);
  std::atomic<uint64_t> total_acked{0};
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      auto client = server::Client::Connect("127.0.0.1", primary.port);
      if (!client.ok()) return;
      const std::string table = "w" + std::to_string(t);
      for (int64_t j = 0;; ++j) {
        if (!client->Begin().ok()) return;
        for (int i = 0; i < kBatch; ++i) {
          if (!client->Query("INSERT INTO " + table + " VALUES (" +
                             std::to_string(j * kBatch + i) + ")")
                   .ok()) {
            return;
          }
        }
        commit_sent[t] = j + 1;
        if (!client->Commit().ok()) return;
        commit_acked[t] = j + 1;
        ++total_acked;
      }
    });
  }

  while (total_acked.load() < 60) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(kill(primary.pid, SIGKILL), 0);
  for (auto& w : writers) w.join();
  KillAndReap(&primary, SIGKILL);

  auto client = server::Client::Connect("127.0.0.1", replica.port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto promoted = client->Query("PROMOTE");
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();

  for (int t = 0; t < kThreads; ++t) {
    auto rows = client->Query("SELECT v FROM w" + std::to_string(t));
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    std::set<int64_t> present;
    for (size_t i = 0; i < rows->RowCount(); ++i) {
      const int64_t v = rows->columns[0]->ValueAt<int64_t>(i);
      EXPECT_TRUE(present.insert(v).second)
          << "duplicate row " << v << " in w" << t;
    }
    for (int64_t j = 0; j < commit_acked[t]; ++j) {
      for (int i = 0; i < kBatch; ++i) {
        EXPECT_TRUE(present.count(j * kBatch + i))
            << "acked txn " << j << " lost row " << i << " on promoted w"
            << t;
      }
    }
    for (int64_t v : present) {
      const int64_t j = v / kBatch;
      EXPECT_LT(j, commit_sent[t])
          << "row " << v << " of w" << t << " from a txn never committed";
      for (int i = 0; i < kBatch; ++i) {
        EXPECT_TRUE(present.count(j * kBatch + i))
            << "partial txn " << j << " replicated to w" << t;
      }
    }
  }

  // The promoted node runs transactions of its own.
  ASSERT_TRUE(client->Begin().ok());
  ASSERT_TRUE(client->Query("INSERT INTO w0 VALUES (424242)").ok());
  ASSERT_TRUE(client->Commit().ok());
  auto check = client->Query("SELECT COUNT(*) FROM w0 WHERE v = 424242");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->columns[0]->ValueAt<int64_t>(0), 1);
  EXPECT_EQ(StatusCounter(replica.port, "repl_role"), 0);

  KillAndReap(&replica, SIGTERM);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace mammoth::repl
