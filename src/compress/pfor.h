#ifndef MAMMOTH_COMPRESS_PFOR_H_
#define MAMMOTH_COMPRESS_PFOR_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mammoth::compress {

/// PFOR — Patched Frame-Of-Reference ([44], §5). Values are encoded in
/// blocks of 128 as small offsets from a per-block base, bit-packed at a
/// width chosen to minimize size; outliers become *exceptions* patched back
/// in after the tight unpack loop, so the decoder's hot path stays a
/// branch-free shift-and-mask per value.
Status PforEncode(const int32_t* values, size_t n, std::vector<uint8_t>* out);

/// Decodes a PforEncode stream; `out` is resized to the original count.
Status PforDecode(const std::vector<uint8_t>& in, std::vector<int32_t>* out);

/// Decodes values [start, start+n) from a PforEncode stream without
/// touching other blocks (blocks are 128 values; the block headers are
/// walked to locate the range — an O(#blocks) pointer walk, no payload
/// reads). Enables vector-at-a-time consumption of compressed columns.
Status PforDecodeRange(const std::vector<uint8_t>& in, size_t start,
                       size_t n, int32_t* out);

/// Byte offsets of every block in a PforEncode stream (one O(#blocks) walk).
/// Feeding the index into PforDecodeRangeIndexed makes range decodes O(1)
/// in the number of preceding blocks — required for vector-at-a-time scans.
Result<std::vector<uint32_t>> PforBuildBlockIndex(
    const std::vector<uint8_t>& in);

/// PforDecodeRange with a prebuilt block index.
Status PforDecodeRangeIndexed(const std::vector<uint8_t>& in,
                              const std::vector<uint32_t>& block_index,
                              size_t start, size_t n, int32_t* out);

/// PFOR-DELTA: zig-zag delta encoding chained into PFOR — the variant for
/// sorted or slowly-varying columns ([44]).
Status PforDeltaEncode(const int32_t* values, size_t n,
                       std::vector<uint8_t>* out);
Status PforDeltaDecode(const std::vector<uint8_t>& in,
                       std::vector<int32_t>* out);

/// Values per PFOR block.
inline constexpr size_t kPforBlock = 128;

}  // namespace mammoth::compress

#endif  // MAMMOTH_COMPRESS_PFOR_H_
