#include "compress/compressed_kernels.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <limits>
#include <vector>

namespace mammoth::compress {

namespace {

/// Same guarantees ScanThetaSelect stamps on its results: ascending OIDs,
/// pairwise distinct.
void StampSelectResult(const BatPtr& r) {
  r->mutable_props().sorted = true;
  r->mutable_props().key = true;
  r->mutable_props().revsorted = r->Count() <= 1;
}

struct Counters {
  std::atomic<uint64_t> selects_direct{0};
  std::atomic<uint64_t> selects_fallback{0};
  std::atomic<uint64_t> aggrs_direct{0};
  std::atomic<uint64_t> aggrs_fallback{0};
  std::atomic<uint64_t> project_bounded{0};
  std::atomic<uint64_t> project_bounded_bytes{0};
  std::atomic<uint64_t> project_full{0};
};

Counters& C() {
  static Counters c;
  return c;
}

bool NumericOperand(const Value& v) { return v.is_numeric(); }

bool CodecSelectable(const CompressedBat& comp) {
  // PFOR and PFOR-DELTA carry no exploitable structure — their only play
  // is decoding, which the fallback already does (into the shared cache).
  return comp.codec() == Codec::kRle || comp.codec() == Codec::kPdict;
}

/// Streaming unpack of `n` fixed-width codes starting at row `from` into
/// `out`: a 64-bit reservoir refilled byte-aligned, so each load yields
/// floor((64 - 7) / bits) codes instead of CodeAt's one load per row.
/// Requires the packed stream's 8-byte slack (both encoders provide it).
void UnpackCodes(const uint8_t* codes, uint32_t bits, size_t from, size_t n,
                 uint32_t* out) {
  if (bits == 0) {
    std::fill(out, out + n, 0u);
    return;
  }
  if (bits == 8) {  // byte-aligned: plain widening copy
    const uint8_t* p = codes + from;
    for (size_t i = 0; i < n; ++i) out[i] = p[i];
    return;
  }
  if (bits == 16) {
    const uint8_t* p = codes + from * 2;
    for (size_t i = 0; i < n; ++i) {
      uint16_t c;
      std::memcpy(&c, p + i * 2, sizeof(c));
      out[i] = c;
    }
    return;
  }
  const uint64_t mask = (uint64_t{1} << bits) - 1;
  size_t bitpos = from * bits;
  size_t i = 0;
  while (i < n) {
    uint64_t w;
    std::memcpy(&w, codes + (bitpos >> 3), sizeof(w));
    const uint32_t off = static_cast<uint32_t>(bitpos & 7);
    w >>= off;
    uint32_t avail = 64 - off;
    while (avail >= bits && i < n) {
      out[i++] = static_cast<uint32_t>(w & mask);
      w >>= bits;
      avail -= bits;
      bitpos += bits;
    }
  }
}

/// Batch grain for code-space scans: fits L1 alongside the output.
constexpr size_t kCodeBatch = 4096;

/// Emits OIDs [hseq+lo, hseq+hi) into r.
void AppendRange(const BatPtr& r, Oid hseq, size_t lo, size_t hi) {
  for (size_t i = lo; i < hi; ++i) r->Append<Oid>(hseq + i);
}

/// RLE select: walk the run list, test each run's value once, and emit the
/// run's row range clipped to [begin, end). O(runs + matches).
template <typename KeepFn>
Result<BatPtr> RleSelect(const CompressedBat& comp, size_t begin, size_t end,
                         Oid hseq, const KeepFn& keep) {
  MAMMOTH_ASSIGN_OR_RETURN(const CompressedBat::RleRuns* runs,
                           comp.RunsView());
  BatPtr r = Bat::New(PhysType::kOid);
  if (begin < end) {
    // Last run whose start is <= begin.
    size_t idx = static_cast<size_t>(
        std::upper_bound(runs->starts.begin(), runs->starts.end(), begin) -
        runs->starts.begin());
    idx = idx == 0 ? 0 : idx - 1;
    for (; idx < runs->NumRuns() && runs->starts[idx] < end; ++idx) {
      if (!keep(runs->values[idx])) continue;
      AppendRange(r, hseq,
                  std::max<size_t>(runs->starts[idx], begin),
                  std::min<size_t>(runs->starts[idx + 1], end));
    }
  }
  StampSelectResult(r);
  return r;
}

/// PDICT select: evaluate the predicate once per dictionary entry, then
/// scan the packed codes. When the surviving codes form one contiguous
/// interval (the common case with the sorted dictionary) the row test is
/// two compares; otherwise a byte LUT.
template <typename KeepFn>
Result<BatPtr> PdictSelect(const CompressedBat& comp, size_t begin,
                           size_t end, Oid hseq, const KeepFn& keep) {
  MAMMOTH_ASSIGN_OR_RETURN(CompressedBat::DictView view, comp.PdictView());
  BatPtr r = Bat::New(PhysType::kOid);
  if (begin >= end) {
    StampSelectResult(r);
    return r;
  }
  if (view.dsize <= 1) {
    if (view.dsize == 1 && keep(static_cast<int64_t>(view.dict[0]))) {
      AppendRange(r, hseq, begin, end);
    }
    StampSelectResult(r);
    return r;
  }
  std::vector<uint8_t> lut(view.dsize);
  uint32_t lo = view.dsize, hi = 0;
  size_t nkeep = 0;
  for (uint32_t c = 0; c < view.dsize; ++c) {
    lut[c] = keep(static_cast<int64_t>(view.dict[c])) ? 1 : 0;
    if (lut[c]) {
      lo = std::min(lo, c);
      hi = c + 1;
      ++nkeep;
    }
  }
  const bool interval = nkeep == 0 || hi - lo == nkeep;
  uint32_t buf[kCodeBatch];
  for (size_t base = begin; base < end; base += kCodeBatch) {
    const size_t n = std::min(kCodeBatch, end - base);
    UnpackCodes(view.codes, view.bits, base, n, buf);
    if (interval) {
      for (size_t i = 0; i < n; ++i) {
        if (buf[i] >= lo && buf[i] < hi) r->Append<Oid>(hseq + base + i);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (lut[buf[i]]) r->Append<Oid>(hseq + base + i);
      }
    }
  }
  StampSelectResult(r);
  return r;
}

template <typename KeepFn>
Result<BatPtr> SelectDispatch(const CompressedBat& comp, size_t begin,
                              size_t end, Oid hseq, const KeepFn& keep) {
  if (end > comp.Count() || begin > end) {
    return Status::OutOfRange("compressed select: range beyond column");
  }
  switch (comp.codec()) {
    case Codec::kRle:
      return RleSelect(comp, begin, end, hseq, keep);
    case Codec::kPdict:
      return PdictSelect(comp, begin, end, hseq, keep);
    default:
      return Status::Unsupported("compressed select: codec has no kernel");
  }
}

/// Builds the narrowed keep() for a theta predicate; `v64` values arrive
/// widened from the run list / dictionary and are narrowed back to the
/// column type, so compares match the plain kernel exactly.
template <typename T>
auto ThetaKeep(const Value& v, CmpOp op) {
  const T tv = v.As<T>();
  return [tv, op](int64_t x) { return ApplyCmp(op, static_cast<T>(x), tv); };
}

template <typename T>
auto RangeKeep(const Value& lo, const Value& hi, bool lo_incl, bool hi_incl,
               bool anti) {
  const bool has_lo = !lo.is_nil();
  const bool has_hi = !hi.is_nil();
  const T tlo = has_lo ? lo.As<T>() : T{};
  const T thi = has_hi ? hi.As<T>() : T{};
  return [=](int64_t x64) {
    const T x = static_cast<T>(x64);
    bool in = true;
    if (has_lo) in = lo_incl ? (x >= tlo) : (x > tlo);
    if (in && has_hi) in = hi_incl ? (x <= thi) : (x < thi);
    return in != anti;
  };
}

}  // namespace

bool ThetaSelectableOnCompressed(const CompressedBat& comp, const Value& v,
                                 CmpOp op) {
  return CodecSelectable(comp) && !comp.props().sorted &&
         NumericOperand(v) && op != CmpOp::kLike;
}

bool RangeSelectableOnCompressed(const CompressedBat& comp, const Value& lo,
                                 const Value& hi) {
  const bool lo_ok = lo.is_nil() || lo.is_numeric();
  const bool hi_ok = hi.is_nil() || hi.is_numeric();
  return CodecSelectable(comp) && !comp.props().sorted && lo_ok && hi_ok;
}

bool AggregatableOnCompressed(const CompressedBat& comp) {
  return comp.codec() == Codec::kRle || comp.codec() == Codec::kPdict;
}

bool StrSelectableOnDict(const Value& v, CmpOp op) {
  (void)op;  // the sorted dictionary answers every string-shaped op
  return v.is_str();
}

Result<BatPtr> CompressedThetaSelectRange(const CompressedBat& comp,
                                          const Value& v, CmpOp op,
                                          size_t begin, size_t end,
                                          Oid hseq) {
  if (!v.is_numeric()) {
    return Status::TypeMismatch("select: numeric column vs non-numeric value");
  }
  if (op == CmpOp::kLike) {
    return Status::TypeMismatch("select: LIKE on numeric column");
  }
  if (comp.type() == PhysType::kInt32) {
    return SelectDispatch(comp, begin, end, hseq, ThetaKeep<int32_t>(v, op));
  }
  return SelectDispatch(comp, begin, end, hseq, ThetaKeep<int64_t>(v, op));
}

Result<BatPtr> CompressedRangeSelectRange(const CompressedBat& comp,
                                          const Value& lo, const Value& hi,
                                          bool lo_incl, bool hi_incl,
                                          bool anti, size_t begin, size_t end,
                                          Oid hseq) {
  if ((!lo.is_nil() && !lo.is_numeric()) ||
      (!hi.is_nil() && !hi.is_numeric())) {
    return Status::TypeMismatch("range select: non-numeric bound");
  }
  if (comp.type() == PhysType::kInt32) {
    return SelectDispatch(comp, begin, end, hseq,
                          RangeKeep<int32_t>(lo, hi, lo_incl, hi_incl, anti));
  }
  return SelectDispatch(comp, begin, end, hseq,
                        RangeKeep<int64_t>(lo, hi, lo_incl, hi_incl, anti));
}

Result<BatPtr> DictStrSelectRange(const StrDict& dict, const Value& v,
                                  CmpOp op, size_t begin, size_t end,
                                  Oid hseq) {
  if (!v.is_str()) {
    return Status::TypeMismatch("select: string column vs non-string value");
  }
  if (end > dict.Count() || begin > end) {
    return Status::OutOfRange("compressed select: range beyond column");
  }
  const std::string& pat = v.AsStr();
  const uint32_t dsize = dict.dsize();
  BatPtr r = Bat::New(PhysType::kOid);
  if (begin >= end) {
    StampSelectResult(r);
    return r;
  }
  // Rewrite the predicate into one code interval where the sorted
  // dictionary allows (eq, ordered ops, LIKE 'lit%'); general patterns and
  // != fall to a per-code LUT built from ONE evaluation per distinct word.
  uint32_t lo = 0, hi = 0;
  bool use_interval = true, invert = false;
  std::string_view prefix;
  switch (op) {
    case CmpOp::kEq: {
      uint32_t code = 0;
      if (dict.FindCode(pat, &code)) {
        lo = code;
        hi = code + 1;
      }
      break;
    }
    case CmpOp::kNe: {
      uint32_t code = 0;
      if (dict.FindCode(pat, &code)) {
        lo = code;
        hi = code + 1;
      } else {
        lo = hi = 0;  // empty interval, inverted -> everything
      }
      invert = true;
      break;
    }
    case CmpOp::kLt:
      lo = 0;
      hi = dict.LowerBound(pat);
      break;
    case CmpOp::kLe:
      lo = 0;
      hi = dict.UpperBound(pat);
      break;
    case CmpOp::kGe:
      lo = dict.LowerBound(pat);
      hi = dsize;
      break;
    case CmpOp::kGt:
      lo = dict.UpperBound(pat);
      hi = dsize;
      break;
    case CmpOp::kLike:
      if (LikePrefix(pat, &prefix)) {
        dict.PrefixCodeRange(prefix, &lo, &hi);
      } else {
        use_interval = false;
      }
      break;
  }
  std::vector<uint8_t> lut;
  if (!use_interval) {
    lut.assign(std::max<uint32_t>(dsize, 1), 0);
    for (uint32_t c = 0; c < dsize; ++c) {
      lut[c] = LikeMatch(dict.Word(c), pat) ? 1 : 0;
    }
  }
  uint32_t buf[kCodeBatch];
  for (size_t base = begin; base < end; base += kCodeBatch) {
    const size_t n = std::min(kCodeBatch, end - base);
    UnpackCodes(dict.code_data(), dict.bits(), base, n, buf);
    if (use_interval) {
      for (size_t i = 0; i < n; ++i) {
        const uint32_t c = buf[i];
        if ((c >= lo && c < hi) != invert) r->Append<Oid>(hseq + base + i);
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        if (lut[buf[i]]) r->Append<Oid>(hseq + base + i);
      }
    }
  }
  StampSelectResult(r);
  return r;
}

Result<BatPtr> CompressedAggrSum(const CompressedBat& comp) {
  // Unsigned fold: two's-complement addition is associative, so
  // value*run_length accumulates to exactly the serial int64 sum.
  uint64_t acc = 0;
  switch (comp.codec()) {
    case Codec::kRle: {
      MAMMOTH_ASSIGN_OR_RETURN(const CompressedBat::RleRuns* runs,
                               comp.RunsView());
      for (size_t i = 0; i < runs->NumRuns(); ++i) {
        const uint64_t len = runs->starts[i + 1] - runs->starts[i];
        acc += static_cast<uint64_t>(runs->values[i]) * len;
      }
      break;
    }
    case Codec::kPdict: {
      MAMMOTH_ASSIGN_OR_RETURN(CompressedBat::DictView view,
                               comp.PdictView());
      std::vector<uint64_t> cnt(std::max<uint32_t>(view.dsize, 1), 0);
      const size_t n = comp.Count();
      if (view.bits == 0) {
        cnt[0] = n;
      } else {
        uint32_t buf[kCodeBatch];
        for (size_t base = 0; base < n; base += kCodeBatch) {
          const size_t m = std::min(kCodeBatch, n - base);
          UnpackCodes(view.codes, view.bits, base, m, buf);
          for (size_t i = 0; i < m; ++i) ++cnt[buf[i]];
        }
      }
      for (uint32_t c = 0; c < view.dsize; ++c) {
        acc += static_cast<uint64_t>(
                   static_cast<int64_t>(view.dict[c])) *
               cnt[c];
      }
      break;
    }
    default:
      return Status::Unsupported("compressed sum: codec has no fold");
  }
  BatPtr r = Bat::New(PhysType::kInt64);
  r->Append<int64_t>(static_cast<int64_t>(acc));
  return r;
}

namespace {

template <bool kMin>
Result<BatPtr> CompressedAggrMinMax(const CompressedBat& comp) {
  int64_t acc = comp.type() == PhysType::kInt32
                    ? (kMin ? std::numeric_limits<int32_t>::max()
                            : std::numeric_limits<int32_t>::lowest())
                    : (kMin ? std::numeric_limits<int64_t>::max()
                            : std::numeric_limits<int64_t>::lowest());
  switch (comp.codec()) {
    case Codec::kRle: {
      MAMMOTH_ASSIGN_OR_RETURN(const CompressedBat::RleRuns* runs,
                               comp.RunsView());
      for (int64_t v : runs->values) {
        if (kMin ? v < acc : v > acc) acc = v;
      }
      break;
    }
    case Codec::kPdict: {
      // Every dictionary entry appears in the column at least once by
      // construction, so the fold over the dictionary IS the column fold.
      MAMMOTH_ASSIGN_OR_RETURN(CompressedBat::DictView view,
                               comp.PdictView());
      if (comp.Count() > 0) {
        if (view.sorted) {
          acc = kMin ? view.dict[0] : view.dict[view.dsize - 1];
        } else {
          for (uint32_t c = 0; c < view.dsize; ++c) {
            const int64_t v = view.dict[c];
            if (kMin ? v < acc : v > acc) acc = v;
          }
        }
      }
      break;
    }
    default:
      return Status::Unsupported("compressed min/max: codec has no fold");
  }
  BatPtr r = Bat::New(comp.type());
  if (comp.type() == PhysType::kInt32) {
    r->Append<int32_t>(static_cast<int32_t>(acc));
  } else {
    r->Append<int64_t>(acc);
  }
  return r;
}

}  // namespace

Result<BatPtr> CompressedAggrMin(const CompressedBat& comp) {
  return CompressedAggrMinMax<true>(comp);
}

Result<BatPtr> CompressedAggrMax(const CompressedBat& comp) {
  return CompressedAggrMinMax<false>(comp);
}

KernelStats GetKernelStats() {
  Counters& c = C();
  KernelStats s;
  s.selects_direct = c.selects_direct.load(std::memory_order_relaxed);
  s.selects_fallback = c.selects_fallback.load(std::memory_order_relaxed);
  s.aggrs_direct = c.aggrs_direct.load(std::memory_order_relaxed);
  s.aggrs_fallback = c.aggrs_fallback.load(std::memory_order_relaxed);
  s.project_bounded = c.project_bounded.load(std::memory_order_relaxed);
  s.project_bounded_bytes =
      c.project_bounded_bytes.load(std::memory_order_relaxed);
  s.project_full = c.project_full.load(std::memory_order_relaxed);
  return s;
}

void ResetKernelStats() {
  Counters& c = C();
  c.selects_direct.store(0, std::memory_order_relaxed);
  c.selects_fallback.store(0, std::memory_order_relaxed);
  c.aggrs_direct.store(0, std::memory_order_relaxed);
  c.aggrs_fallback.store(0, std::memory_order_relaxed);
  c.project_bounded.store(0, std::memory_order_relaxed);
  c.project_bounded_bytes.store(0, std::memory_order_relaxed);
  c.project_full.store(0, std::memory_order_relaxed);
}

namespace stats {
void SelectDirect() {
  C().selects_direct.fetch_add(1, std::memory_order_relaxed);
}
void SelectFallback() {
  C().selects_fallback.fetch_add(1, std::memory_order_relaxed);
}
void AggrDirect() {
  C().aggrs_direct.fetch_add(1, std::memory_order_relaxed);
}
void AggrFallback() {
  C().aggrs_fallback.fetch_add(1, std::memory_order_relaxed);
}
void ProjectBounded(uint64_t bytes) {
  C().project_bounded.fetch_add(1, std::memory_order_relaxed);
  C().project_bounded_bytes.fetch_add(bytes, std::memory_order_relaxed);
}
void ProjectFull() {
  C().project_full.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace stats

}  // namespace mammoth::compress
