#include "compress/compressed_exec.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "compress/compressed_kernels.h"
#include "core/project.h"

namespace mammoth::compress {

Result<BatPtr> CompressedProject(
    const BatPtr& oids, const std::shared_ptr<const CompressedBat>& values,
    const parallel::ExecContext& ctx) {
  if (oids == nullptr || values == nullptr) {
    return Status::InvalidArgument("project: null input");
  }
  if (oids->type() != PhysType::kOid) {
    return Status::TypeMismatch("project: oid list must be bat[:oid]");
  }
  const size_t n = oids->Count();
  if (oids->IsDenseTail()) {
    // Contiguous positions: decode exactly [tseqbase, tseqbase + n).
    const size_t start = oids->tseqbase();
    if (start + n > values->Count()) {
      return Status::OutOfRange("project: oid beyond value BAT");
    }
    BatPtr r = Bat::New(values->type());
    r->Resize(n);
    MAMMOTH_RETURN_IF_ERROR(
        values->DecodeRangeRaw(start, n, r->tail().raw_data()));
    r->mutable_props() = BatProperties{};
    r->set_hseqbase(oids->hseqbase());
    if (n < values->Count()) stats::ProjectBounded(n * values->width());
    return r;
  }
  if (n == 0) {
    BatPtr r = Bat::New(values->type());
    r->set_hseqbase(oids->hseqbase());
    return r;
  }
  // Arbitrary OID list. When the list is narrow and the codec has random
  // access, decode only the touched row span into a transient buffer
  // instead of materializing (and permanently caching) the whole column.
  const Oid* os = oids->TailData<Oid>();
  if (values->codec() == Codec::kPfor || values->codec() == Codec::kPdict) {
    Oid lo = os[0], hi = os[0];
    for (size_t i = 1; i < n; ++i) {
      lo = std::min(lo, os[i]);
      hi = std::max(hi, os[i]);
    }
    if (hi >= values->Count()) {
      return Status::OutOfRange("project: oid beyond value BAT");
    }
    const size_t span = static_cast<size_t>(hi - lo) + 1;
    if (span <= values->Count() / 2) {
      const size_t w = values->width();
      std::vector<uint8_t> tmp(span * w);
      MAMMOTH_RETURN_IF_ERROR(values->DecodeRangeRaw(lo, span, tmp.data()));
      BatPtr r = Bat::New(values->type());
      r->Resize(n);
      if (values->type() == PhysType::kInt32) {
        const int32_t* in = reinterpret_cast<const int32_t*>(tmp.data());
        int32_t* out = r->MutableTailData<int32_t>();
        for (size_t i = 0; i < n; ++i) out[i] = in[os[i] - lo];
      } else {
        const int64_t* in = reinterpret_cast<const int64_t*>(tmp.data());
        int64_t* out = r->MutableTailData<int64_t>();
        for (size_t i = 0; i < n; ++i) out[i] = in[os[i] - lo];
      }
      r->set_hseqbase(oids->hseqbase());
      stats::ProjectBounded(span * w);
      return r;
    }
  }
  // Wide or stream-coded: gather from the shared whole-column decode.
  stats::ProjectFull();
  MAMMOTH_ASSIGN_OR_RETURN(BatPtr full, values->DecodedBat());
  return algebra::Project(oids, full, ctx);
}

}  // namespace mammoth::compress
