#include "compress/compressed_exec.h"

#include "core/project.h"

namespace mammoth::compress {

Result<BatPtr> CompressedProject(
    const BatPtr& oids, const std::shared_ptr<const CompressedBat>& values,
    const parallel::ExecContext& ctx) {
  if (oids == nullptr || values == nullptr) {
    return Status::InvalidArgument("project: null input");
  }
  if (oids->type() != PhysType::kOid) {
    return Status::TypeMismatch("project: oid list must be bat[:oid]");
  }
  const size_t n = oids->Count();
  if (oids->IsDenseTail()) {
    // Contiguous positions: decode exactly [tseqbase, tseqbase + n).
    const size_t start = oids->tseqbase();
    if (start + n > values->Count()) {
      return Status::OutOfRange("project: oid beyond value BAT");
    }
    BatPtr r = Bat::New(values->type());
    r->Resize(n);
    MAMMOTH_RETURN_IF_ERROR(
        values->DecodeRangeRaw(start, n, r->tail().raw_data()));
    r->mutable_props() = BatProperties{};
    r->set_hseqbase(oids->hseqbase());
    return r;
  }
  // Arbitrary OID list: gather from the shared whole-column decode.
  MAMMOTH_ASSIGN_OR_RETURN(BatPtr full, values->DecodedBat());
  return algebra::Project(oids, full, ctx);
}

}  // namespace mammoth::compress
