#ifndef MAMMOTH_COMPRESS_RLE_H_
#define MAMMOTH_COMPRESS_RLE_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mammoth::compress {

/// Run-length encoding: (value, run) pairs. The win case is sorted or
/// low-cardinality clustered columns; the pathological case (no runs)
/// doubles the size, which the compression benchmark (E8) reports honestly.
Status RleEncode(const int32_t* values, size_t n, std::vector<uint8_t>* out);
Status RleDecode(const std::vector<uint8_t>& in, std::vector<int32_t>* out);

/// 64-bit variant: (i64 value, u32 run) pairs under a distinct magic.
Status Rle64Encode(const int64_t* values, size_t n, std::vector<uint8_t>* out);
Status Rle64Decode(const std::vector<uint8_t>& in, std::vector<int64_t>* out);

}  // namespace mammoth::compress

#endif  // MAMMOTH_COMPRESS_RLE_H_
