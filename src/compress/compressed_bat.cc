#include "compress/compressed_bat.h"

#include <cstring>

#include "compress/pdict.h"
#include "compress/pfor.h"
#include "compress/rle.h"

namespace mammoth::compress {

const char* CodecName(Codec c) {
  switch (c) {
    case Codec::kPfor:
      return "pfor";
    case Codec::kPforDelta:
      return "pfor-delta";
    case Codec::kPdict:
      return "pdict";
    case Codec::kRle:
      return "rle";
  }
  return "?";
}

Result<CompressedBat> CompressedBat::Compress(const BatPtr& b, Codec codec) {
  if (b == nullptr || b->type() != PhysType::kInt32) {
    return Status::TypeMismatch("compress: need a bat[:int]");
  }
  CompressedBat out;
  out.codec_ = codec;
  out.count_ = b->Count();
  const int32_t* v = b->TailData<int32_t>();
  switch (codec) {
    case Codec::kPfor: {
      MAMMOTH_RETURN_IF_ERROR(PforEncode(v, out.count_, &out.bytes_));
      MAMMOTH_ASSIGN_OR_RETURN(out.block_index_,
                               PforBuildBlockIndex(out.bytes_));
      break;
    }
    case Codec::kPforDelta:
      MAMMOTH_RETURN_IF_ERROR(PforDeltaEncode(v, out.count_, &out.bytes_));
      break;
    case Codec::kPdict:
      MAMMOTH_RETURN_IF_ERROR(PdictEncode(v, out.count_, &out.bytes_));
      break;
    case Codec::kRle:
      MAMMOTH_RETURN_IF_ERROR(RleEncode(v, out.count_, &out.bytes_));
      break;
  }
  return out;
}

Result<CompressedBat> CompressedBat::CompressBest(const BatPtr& b) {
  Result<CompressedBat> best = Status::Internal("no codec succeeded");
  for (Codec c : {Codec::kPfor, Codec::kPforDelta, Codec::kPdict,
                  Codec::kRle}) {
    Result<CompressedBat> attempt = Compress(b, c);
    if (!attempt.ok()) continue;  // e.g. pdict on high cardinality
    if (!best.ok() ||
        attempt->CompressedBytes() < best->CompressedBytes()) {
      best = std::move(attempt);
    }
  }
  return best;
}

Result<BatPtr> CompressedBat::Decode() const {
  std::vector<int32_t> values;
  switch (codec_) {
    case Codec::kPfor:
      MAMMOTH_RETURN_IF_ERROR(PforDecode(bytes_, &values));
      break;
    case Codec::kPforDelta:
      MAMMOTH_RETURN_IF_ERROR(PforDeltaDecode(bytes_, &values));
      break;
    case Codec::kPdict:
      MAMMOTH_RETURN_IF_ERROR(PdictDecode(bytes_, &values));
      break;
    case Codec::kRle:
      MAMMOTH_RETURN_IF_ERROR(RleDecode(bytes_, &values));
      break;
  }
  BatPtr b = Bat::New(PhysType::kInt32);
  b->AppendRaw(values.data(), values.size());
  return b;
}

Status CompressedBat::DecodeRange(size_t start, size_t n,
                                  int32_t* out) const {
  if (start + n > count_) {
    return Status::OutOfRange("decode range beyond column");
  }
  switch (codec_) {
    case Codec::kPfor:
      return PforDecodeRangeIndexed(bytes_, block_index_, start, n, out);
    case Codec::kPdict:
      return PdictDecodeRange(bytes_, start, n, out);
    case Codec::kPforDelta:
    case Codec::kRle: {
      // No random access (running prefix / variable-length runs): decode
      // once, cache, and serve ranges from the cache.
      if (decoded_cache_.empty() && count_ > 0) {
        if (codec_ == Codec::kPforDelta) {
          MAMMOTH_RETURN_IF_ERROR(PforDeltaDecode(bytes_, &decoded_cache_));
        } else {
          MAMMOTH_RETURN_IF_ERROR(RleDecode(bytes_, &decoded_cache_));
        }
      }
      std::memcpy(out, decoded_cache_.data() + start, n * sizeof(int32_t));
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace mammoth::compress
