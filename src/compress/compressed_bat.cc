#include "compress/compressed_bat.h"

#include <algorithm>
#include <cstring>

#include "compress/pdict.h"
#include "compress/pfor.h"
#include "compress/pfor64.h"
#include "compress/rle.h"

namespace mammoth::compress {

namespace {

template <typename T>
void BlockStats(const T* v, size_t n, std::vector<int64_t>* mins,
                std::vector<int64_t>* maxes) {
  mins->clear();
  maxes->clear();
  for (size_t start = 0; start < n; start += CompressedBat::kStatBlockRows) {
    const size_t bn = std::min(CompressedBat::kStatBlockRows, n - start);
    T lo = v[start], hi = v[start];
    for (size_t i = 1; i < bn; ++i) {
      lo = std::min(lo, v[start + i]);
      hi = std::max(hi, v[start + i]);
    }
    mins->push_back(static_cast<int64_t>(lo));
    maxes->push_back(static_cast<int64_t>(hi));
  }
}

void PutBytes(std::string* out, const void* p, size_t n) {
  out->append(static_cast<const char*>(p), n);
}

template <typename T>
void PutInt(std::string* out, T v) {
  PutBytes(out, &v, sizeof(v));
}

struct ByteReader {
  const uint8_t* p;
  const uint8_t* end;
  explicit ByteReader(std::string_view s)
      : p(reinterpret_cast<const uint8_t*>(s.data())),
        end(reinterpret_cast<const uint8_t*>(s.data()) + s.size()) {}
  template <typename T>
  bool Read(T* v) {
    if (end - p < static_cast<ptrdiff_t>(sizeof(T))) return false;
    std::memcpy(v, p, sizeof(T));
    p += sizeof(T);
    return true;
  }
};

constexpr uint32_t kCbatMagic = 0x31544243;  // "CBT1"

}  // namespace

const char* CodecName(Codec c) {
  switch (c) {
    case Codec::kPfor:
      return "pfor";
    case Codec::kPforDelta:
      return "pfor-delta";
    case Codec::kPdict:
      return "pdict";
    case Codec::kRle:
      return "rle";
  }
  return "?";
}

Result<CompressedBat> CompressedBat::Compress(const BatPtr& b, Codec codec) {
  if (b == nullptr) {
    return Status::InvalidArgument("compress: null input BAT");
  }
  if (b->type() != PhysType::kInt32 && b->type() != PhysType::kInt64) {
    return Status::Unsupported(std::string("compress: bat[:") +
                               TypeName(b->type()) +
                               "] has no codec (int/bigint only)");
  }
  if (b->IsDenseTail()) {
    return Status::Unsupported("compress: dense virtual tail");
  }
  CompressedBat out;
  out.codec_ = codec;
  out.type_ = b->type();
  out.count_ = b->Count();
  out.props_ = b->props();
  if (out.type_ == PhysType::kInt32) {
    const int32_t* v = b->TailData<int32_t>();
    switch (codec) {
      case Codec::kPfor: {
        MAMMOTH_RETURN_IF_ERROR(PforEncode(v, out.count_, &out.bytes_));
        MAMMOTH_ASSIGN_OR_RETURN(out.block_index_,
                                 PforBuildBlockIndex(out.bytes_));
        break;
      }
      case Codec::kPforDelta:
        MAMMOTH_RETURN_IF_ERROR(PforDeltaEncode(v, out.count_, &out.bytes_));
        break;
      case Codec::kPdict:
        MAMMOTH_RETURN_IF_ERROR(PdictEncode(v, out.count_, &out.bytes_));
        break;
      case Codec::kRle:
        MAMMOTH_RETURN_IF_ERROR(RleEncode(v, out.count_, &out.bytes_));
        break;
    }
    BlockStats(v, out.count_, &out.stat_min_, &out.stat_max_);
  } else {
    const int64_t* v = b->TailData<int64_t>();
    switch (codec) {
      case Codec::kPfor: {
        MAMMOTH_RETURN_IF_ERROR(Pfor64Encode(v, out.count_, &out.bytes_));
        MAMMOTH_ASSIGN_OR_RETURN(out.block_index_,
                                 Pfor64BuildBlockIndex(out.bytes_));
        break;
      }
      case Codec::kPforDelta:
        MAMMOTH_RETURN_IF_ERROR(Pfor64DeltaEncode(v, out.count_, &out.bytes_));
        break;
      case Codec::kPdict:
        return Status::Unsupported("compress: pdict has no int64 variant");
      case Codec::kRle:
        MAMMOTH_RETURN_IF_ERROR(Rle64Encode(v, out.count_, &out.bytes_));
        break;
    }
    BlockStats(v, out.count_, &out.stat_min_, &out.stat_max_);
  }
  return out;
}

Result<CompressedBat> CompressedBat::CompressBest(const BatPtr& b) {
  Result<CompressedBat> best = Status::Internal("no codec succeeded");
  for (Codec c : {Codec::kPfor, Codec::kPforDelta, Codec::kPdict,
                  Codec::kRle}) {
    Result<CompressedBat> attempt = Compress(b, c);
    if (!attempt.ok()) {
      // Unsupported *types* fail every codec identically — surface that
      // instead of "no codec succeeded".
      if (attempt.status().code() == StatusCode::kUnsupported &&
          c == Codec::kPfor) {
        return attempt;
      }
      continue;  // e.g. pdict on high cardinality
    }
    if (!best.ok() ||
        attempt->CompressedBytes() < best->CompressedBytes()) {
      best = std::move(attempt);
    }
  }
  return best;
}

Result<BatPtr> CompressedBat::Decode() const {
  BatPtr b = Bat::New(type_);
  if (type_ == PhysType::kInt32) {
    std::vector<int32_t> values;
    switch (codec_) {
      case Codec::kPfor:
        MAMMOTH_RETURN_IF_ERROR(PforDecode(bytes_, &values));
        break;
      case Codec::kPforDelta:
        MAMMOTH_RETURN_IF_ERROR(PforDeltaDecode(bytes_, &values));
        break;
      case Codec::kPdict:
        MAMMOTH_RETURN_IF_ERROR(PdictDecode(bytes_, &values));
        break;
      case Codec::kRle:
        MAMMOTH_RETURN_IF_ERROR(RleDecode(bytes_, &values));
        break;
    }
    if (values.size() != count_) {
      return Status::Corruption("compressed bat: count drifted on decode");
    }
    b->AppendRaw(values.data(), values.size());
  } else {
    std::vector<int64_t> values;
    switch (codec_) {
      case Codec::kPfor:
        MAMMOTH_RETURN_IF_ERROR(Pfor64Decode(bytes_, &values));
        break;
      case Codec::kPforDelta:
        MAMMOTH_RETURN_IF_ERROR(Pfor64DeltaDecode(bytes_, &values));
        break;
      case Codec::kPdict:
        return Status::Unsupported("compress: pdict has no int64 variant");
      case Codec::kRle:
        MAMMOTH_RETURN_IF_ERROR(Rle64Decode(bytes_, &values));
        break;
    }
    if (values.size() != count_) {
      return Status::Corruption("compressed bat: count drifted on decode");
    }
    b->AppendRaw(values.data(), values.size());
  }
  b->mutable_props() = props_;
  return b;
}

Status CompressedBat::FillCache() const {
  std::call_once(cache_->once, [this] {
    Result<BatPtr> full = Decode();
    if (full.ok()) {
      cache_->bat = *std::move(full);
      cache_->bytes.store(count_ * width(), std::memory_order_relaxed);
    } else {
      cache_->status = full.status();
    }
  });
  return cache_->status;
}

Result<const CompressedBat::RleRuns*> CompressedBat::RunsView() const {
  if (codec_ != Codec::kRle) {
    return Status::Unsupported("runs view: column is not RLE");
  }
  std::call_once(runs_cache_->once, [this] {
    // Walk the (value, run) pairs once; the view replaces O(rows) decodes
    // with O(runs) folds in the compressed kernels.
    const std::vector<uint8_t>& in = bytes_;
    const size_t vw = type_ == PhysType::kInt32 ? 4 : 8;
    if (in.size() < 8) {
      runs_cache_->status = Status::IOError("rle: truncated header");
      return;
    }
    uint32_t count = 0;
    std::memcpy(&count, in.data() + 4, 4);
    RleRuns& runs = runs_cache_->runs;
    uint64_t row = 0;
    size_t off = 8;
    while (row < count) {
      if (off + vw + 4 > in.size()) {
        runs_cache_->status = Status::IOError("rle: truncated run");
        return;
      }
      int64_t v = 0;
      if (vw == 4) {
        int32_t v32;
        std::memcpy(&v32, in.data() + off, 4);
        v = v32;
      } else {
        std::memcpy(&v, in.data() + off, 8);
      }
      uint32_t run = 0;
      std::memcpy(&run, in.data() + off + vw, 4);
      off += vw + 4;
      if (row + run > count) {
        runs_cache_->status = Status::IOError("rle: run overflow");
        return;
      }
      runs.values.push_back(v);
      runs.starts.push_back(row);
      row += run;
    }
    runs.starts.push_back(row);
  });
  MAMMOTH_RETURN_IF_ERROR(runs_cache_->status);
  return &runs_cache_->runs;
}

Result<CompressedBat::DictView> CompressedBat::PdictView() const {
  if (codec_ != Codec::kPdict) {
    return Status::Unsupported("dict view: column is not PDICT");
  }
  if (bytes_.size() < 16) return Status::IOError("pdict: truncated header");
  DictView view;
  uint32_t magic = 0, count = 0;
  std::memcpy(&magic, bytes_.data(), 4);
  std::memcpy(&count, bytes_.data() + 4, 4);
  std::memcpy(&view.dsize, bytes_.data() + 8, 4);
  std::memcpy(&view.bits, bytes_.data() + 12, 4);
  if (magic != 0x31434450 || count != count_ || view.bits > 32) {
    return Status::IOError("pdict: bad header");
  }
  const size_t dict_end = 16 + static_cast<size_t>(view.dsize) * 4;
  if (bytes_.size() < dict_end) return Status::IOError("pdict: truncated");
  view.dict = reinterpret_cast<const int32_t*>(bytes_.data() + 16);
  view.codes = bytes_.data() + dict_end;
  view.sorted = std::is_sorted(view.dict, view.dict + view.dsize);
  return view;
}

Result<BatPtr> CompressedBat::DecodedBat() const {
  MAMMOTH_RETURN_IF_ERROR(FillCache());
  return cache_->bat;
}

Status CompressedBat::DecodeRange(size_t start, size_t n,
                                  int32_t* out) const {
  if (type_ != PhysType::kInt32) {
    return Status::TypeMismatch("decode range: column is not bat[:int]");
  }
  if (n == 0) return Status::OK();  // empty range: no-op at any start
  if (start >= count_ || n > count_ - start) {
    return Status::OutOfRange("decode range beyond column");
  }
  switch (codec_) {
    case Codec::kPfor:
      return PforDecodeRangeIndexed(bytes_, block_index_, start, n, out);
    case Codec::kPdict:
      return PdictDecodeRange(bytes_, start, n, out);
    case Codec::kPforDelta:
    case Codec::kRle: {
      // No random access (running prefix / variable-length runs): decode
      // once into the shared cache and serve ranges from it.
      MAMMOTH_RETURN_IF_ERROR(FillCache());
      std::memcpy(out, cache_->bat->TailData<int32_t>() + start,
                  n * sizeof(int32_t));
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Status CompressedBat::DecodeRange(size_t start, size_t n,
                                  int64_t* out) const {
  if (type_ != PhysType::kInt64) {
    return Status::TypeMismatch("decode range: column is not bat[:long]");
  }
  if (n == 0) return Status::OK();  // empty range: no-op at any start
  if (start >= count_ || n > count_ - start) {
    return Status::OutOfRange("decode range beyond column");
  }
  switch (codec_) {
    case Codec::kPfor:
      return Pfor64DecodeRangeIndexed(bytes_, block_index_, start, n, out);
    case Codec::kPdict:
      return Status::Unsupported("compress: pdict has no int64 variant");
    case Codec::kPforDelta:
    case Codec::kRle: {
      MAMMOTH_RETURN_IF_ERROR(FillCache());
      std::memcpy(out, cache_->bat->TailData<int64_t>() + start,
                  n * sizeof(int64_t));
      return Status::OK();
    }
  }
  return Status::Internal("unreachable");
}

Status CompressedBat::DecodeRangeRaw(size_t start, size_t n,
                                     void* out) const {
  return type_ == PhysType::kInt32
             ? DecodeRange(start, n, static_cast<int32_t*>(out))
             : DecodeRange(start, n, static_cast<int64_t*>(out));
}

void CompressedBat::Serialize(std::string* out) const {
  PutInt<uint32_t>(out, kCbatMagic);
  PutInt<uint8_t>(out, static_cast<uint8_t>(codec_));
  PutInt<uint8_t>(out, static_cast<uint8_t>(type_));
  const uint8_t props = (props_.sorted ? 1 : 0) | (props_.revsorted ? 2 : 0) |
                        (props_.key ? 4 : 0);
  PutInt<uint8_t>(out, props);
  PutInt<uint8_t>(out, 0);  // reserved
  PutInt<uint64_t>(out, count_);
  PutInt<uint32_t>(out, static_cast<uint32_t>(stat_min_.size()));
  for (size_t i = 0; i < stat_min_.size(); ++i) {
    PutInt<int64_t>(out, stat_min_[i]);
    PutInt<int64_t>(out, stat_max_[i]);
  }
  PutInt<uint64_t>(out, bytes_.size());
  PutBytes(out, bytes_.data(), bytes_.size());
}

Result<CompressedBat> CompressedBat::Deserialize(std::string_view in) {
  ByteReader r(in);
  uint32_t magic = 0;
  uint8_t codec = 0, type = 0, props = 0, reserved = 0;
  uint64_t count = 0, stream_bytes = 0;
  uint32_t nstats = 0;
  if (!r.Read(&magic) || magic != kCbatMagic) {
    return Status::Corruption("compressed bat: bad magic");
  }
  if (!r.Read(&codec) || codec > static_cast<uint8_t>(Codec::kRle) ||
      !r.Read(&type) || !r.Read(&props) || !r.Read(&reserved) ||
      !r.Read(&count) || !r.Read(&nstats)) {
    return Status::Corruption("compressed bat: truncated header");
  }
  const PhysType t = static_cast<PhysType>(type);
  if (t != PhysType::kInt32 && t != PhysType::kInt64) {
    return Status::Corruption("compressed bat: bad column type");
  }
  const uint64_t want_stats =
      (count + CompressedBat::kStatBlockRows - 1) /
      CompressedBat::kStatBlockRows;
  if (nstats != want_stats) {
    return Status::Corruption("compressed bat: stat block count mismatch");
  }
  CompressedBat out;
  out.codec_ = static_cast<Codec>(codec);
  out.type_ = t;
  out.count_ = count;
  out.props_.sorted = (props & 1) != 0;
  out.props_.revsorted = (props & 2) != 0;
  out.props_.key = (props & 4) != 0;
  out.stat_min_.resize(nstats);
  out.stat_max_.resize(nstats);
  for (uint32_t i = 0; i < nstats; ++i) {
    if (!r.Read(&out.stat_min_[i]) || !r.Read(&out.stat_max_[i])) {
      return Status::Corruption("compressed bat: truncated stats");
    }
  }
  if (!r.Read(&stream_bytes) ||
      stream_bytes > static_cast<uint64_t>(r.end - r.p)) {
    return Status::Corruption("compressed bat: truncated stream");
  }
  out.bytes_.assign(r.p, r.p + stream_bytes);
  MAMMOTH_RETURN_IF_ERROR(out.RebuildIndexes());
  return out;
}

Status CompressedBat::RebuildIndexes() {
  if (codec_ != Codec::kPfor) return Status::OK();
  if (type_ == PhysType::kInt32) {
    MAMMOTH_ASSIGN_OR_RETURN(block_index_, PforBuildBlockIndex(bytes_));
  } else {
    MAMMOTH_ASSIGN_OR_RETURN(block_index_, Pfor64BuildBlockIndex(bytes_));
  }
  return Status::OK();
}

}  // namespace mammoth::compress
