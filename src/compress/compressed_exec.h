#ifndef MAMMOTH_COMPRESS_COMPRESSED_EXEC_H_
#define MAMMOTH_COMPRESS_COMPRESSED_EXEC_H_

#include <memory>

#include "common/result.h"
#include "compress/compressed_bat.h"
#include "core/bat.h"
#include "parallel/exec_context.h"

namespace mammoth::compress {

/// algebra::Project over a compressed value column: out[i] = value at the
/// position named by oids[i]. Semantics match the uncompressed kernel
/// bit-for-bit (result hseqbase = oids->hseqbase(), same bounds error).
///
/// Dense OID lists (the common shape: a contiguous select result) decode
/// exactly the touched range; arbitrary OID lists fall back to the shared
/// whole-column decode (cached — at most one decompression per column
/// lifetime) and the stock gather kernel.
Result<BatPtr> CompressedProject(
    const BatPtr& oids, const std::shared_ptr<const CompressedBat>& values,
    const parallel::ExecContext& ctx);

}  // namespace mammoth::compress

#endif  // MAMMOTH_COMPRESS_COMPRESSED_EXEC_H_
