#include "compress/pfor.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "compress/bitpack.h"

namespace mammoth::compress {

namespace {

constexpr uint32_t kPforMagic = 0x31524650;   // "PFR1"
constexpr uint32_t kPforDMagic = 0x31444650;  // "PFD1"

struct BlockHeader {
  int32_t base;
  uint8_t bits;
  uint8_t n_exceptions;
  uint16_t payload_bytes;
};
static_assert(sizeof(BlockHeader) == 8);

void Append(std::vector<uint8_t>* out, const void* p, size_t n) {
  const auto* b = static_cast<const uint8_t*>(p);
  out->insert(out->end(), b, b + n);
}

/// Picks the (base, bits) frame minimizing block bytes (payload +
/// 5B/exception). Unlike naive FOR (base = min), the frame is the *densest*
/// value window, so outliers on either side become exceptions instead of
/// widening every slot — the "patched" part of PFOR.
void ChooseFrame(const int32_t* v, size_t n, int32_t* base_out,
                 int* bits_out) {
  int32_t sorted[kPforBlock];
  std::copy(v, v + n, sorted);
  std::sort(sorted, sorted + n);

  size_t best_cost = std::numeric_limits<size_t>::max();
  int best_bits = 32;
  int32_t best_base = sorted[0];
  for (int b = 0; b <= 32; ++b) {
    const uint64_t span = b == 32 ? ~uint64_t{0} : (uint64_t{1} << b);
    // Widest coverage window of width `span` over the sorted values.
    size_t covered = 0;
    size_t base_idx = 0;
    size_t j = 0;
    for (size_t i = 0; i < n; ++i) {
      if (j < i) j = i;
      while (j < n &&
             static_cast<uint64_t>(static_cast<uint32_t>(sorted[j]) -
                                   static_cast<uint32_t>(sorted[i])) < span) {
        ++j;
      }
      if (j - i > covered) {
        covered = j - i;
        base_idx = i;
      }
    }
    const size_t exceptions = n - covered;
    if (exceptions > 255) continue;
    const size_t cost = PackedBytes(n, b) + exceptions * 5;
    if (cost < best_cost) {
      best_cost = cost;
      best_bits = b;
      best_base = sorted[base_idx];
    }
  }
  *base_out = best_base;
  *bits_out = best_bits;
}

Status EncodeStream(uint32_t magic, const int32_t* values, size_t n,
                    std::vector<uint8_t>* out) {
  out->clear();
  Append(out, &magic, 4);
  const uint32_t count = static_cast<uint32_t>(n);
  Append(out, &count, 4);

  uint32_t deltas[kPforBlock];
  for (size_t start = 0; start < n; start += kPforBlock) {
    const size_t bn = std::min(kPforBlock, n - start);
    const int32_t* v = values + start;
    int32_t base;
    int bits;
    ChooseFrame(v, bn, &base, &bits);
    // Modular deltas: values below the base wrap to huge offsets and are
    // caught as exceptions like values above the frame.
    for (size_t i = 0; i < bn; ++i) {
      deltas[i] = static_cast<uint32_t>(v[i]) - static_cast<uint32_t>(base);
    }
    const uint64_t limit =
        bits == 32 ? ~uint64_t{0} : (uint64_t{1} << bits);

    // Exceptions keep a packed slot of 0 and are patched after unpack.
    uint8_t ex_pos[kPforBlock];
    int32_t ex_val[kPforBlock];
    size_t n_ex = 0;
    uint32_t packed[kPforBlock];
    for (size_t i = 0; i < bn; ++i) {
      if (deltas[i] >= limit) {
        ex_pos[n_ex] = static_cast<uint8_t>(i);
        ex_val[n_ex] = v[i];
        ++n_ex;
        packed[i] = 0;
      } else {
        packed[i] = deltas[i];
      }
    }

    BlockHeader hdr;
    hdr.base = base;
    hdr.bits = static_cast<uint8_t>(bits);
    hdr.n_exceptions = static_cast<uint8_t>(n_ex);
    hdr.payload_bytes = static_cast<uint16_t>(PackedBytes(bn, bits));
    Append(out, &hdr, sizeof(hdr));
    PackBits(packed, bn, bits, out);
    for (size_t e = 0; e < n_ex; ++e) {
      Append(out, &ex_pos[e], 1);
      Append(out, &ex_val[e], 4);
    }
  }
  // Slack so UnpackBits' 8-byte loads never read past the buffer.
  out->resize(out->size() + 8, 0);
  return Status::OK();
}

Status DecodeStream(uint32_t magic, const std::vector<uint8_t>& in,
                    std::vector<int32_t>* out) {
  if (in.size() < 8) return Status::IOError("pfor: truncated header");
  uint32_t got_magic, count;
  std::memcpy(&got_magic, in.data(), 4);
  std::memcpy(&count, in.data() + 4, 4);
  if (got_magic != magic) return Status::IOError("pfor: bad magic");
  // Sanity: every block of up to 128 values needs at least an 8-byte
  // header, so a corrupted count cannot force an implausible allocation.
  if (static_cast<uint64_t>(count) >
      (in.size() / sizeof(BlockHeader) + 1) * kPforBlock) {
    return Status::IOError("pfor: implausible count");
  }
  out->resize(count);

  size_t off = 8;
  uint32_t unpacked[kPforBlock];
  for (size_t start = 0; start < count; start += kPforBlock) {
    const size_t bn = std::min(kPforBlock, count - start);
    if (off + sizeof(BlockHeader) > in.size()) {
      return Status::IOError("pfor: truncated block header");
    }
    BlockHeader hdr;
    std::memcpy(&hdr, in.data() + off, sizeof(hdr));
    off += sizeof(hdr);
    if (hdr.bits > 32) return Status::IOError("pfor: bad block width");
    // The encoder writes exactly PackedBytes(bn, bits); any other value
    // means corruption (and would desynchronize UnpackBits' reads).
    if (hdr.payload_bytes != PackedBytes(bn, hdr.bits)) {
      return Status::IOError("pfor: inconsistent block header");
    }
    // +8: UnpackBits issues 8-byte loads; the encoder always leaves that
    // much slack, so anything tighter is a corrupted stream.
    if (off + hdr.payload_bytes + hdr.n_exceptions * 5 + 8 > in.size()) {
      return Status::IOError("pfor: truncated block payload");
    }
    // Hot path: unpack + add base.
    UnpackBits(in.data() + off, bn, hdr.bits, unpacked);
    off += hdr.payload_bytes;
    int32_t* dst = out->data() + start;
    for (size_t i = 0; i < bn; ++i) {
      // Modular add mirrors the encoder's modular delta.
      dst[i] = static_cast<int32_t>(static_cast<uint32_t>(hdr.base) +
                                    unpacked[i]);
    }
    // Patch exceptions.
    for (size_t e = 0; e < hdr.n_exceptions; ++e) {
      const uint8_t pos = in[off];
      int32_t val;
      std::memcpy(&val, in.data() + off + 1, 4);
      off += 5;
      if (pos >= bn) return Status::IOError("pfor: bad exception slot");
      dst[pos] = val;
    }
  }
  return Status::OK();
}

inline uint32_t ZigZag(int32_t v) {
  return (static_cast<uint32_t>(v) << 1) ^
         static_cast<uint32_t>(v >> 31);
}

inline int32_t UnZigZag(uint32_t z) {
  return static_cast<int32_t>((z >> 1) ^ (~(z & 1) + 1));
}

}  // namespace

Status PforEncode(const int32_t* values, size_t n, std::vector<uint8_t>* out) {
  return EncodeStream(kPforMagic, values, n, out);
}

Status PforDecode(const std::vector<uint8_t>& in, std::vector<int32_t>* out) {
  return DecodeStream(kPforMagic, in, out);
}

namespace {

/// Decodes the block at byte `off` (covering rows [block_start,
/// block_start+bn)) and copies the slice overlapping [start, start+n).
Status DecodeBlockSlice(const std::vector<uint8_t>& in, size_t off,
                        size_t block_start, size_t bn, size_t start,
                        size_t n, int32_t* out) {
  if (off + sizeof(BlockHeader) > in.size()) {
    return Status::IOError("pfor: truncated block header");
  }
  BlockHeader hdr;
  std::memcpy(&hdr, in.data() + off, sizeof(hdr));
  if (hdr.bits > 32) return Status::IOError("pfor: bad block width");
  if (hdr.payload_bytes != PackedBytes(bn, hdr.bits)) {
    return Status::IOError("pfor: inconsistent block header");
  }
  const size_t body = sizeof(hdr) + hdr.payload_bytes +
                      static_cast<size_t>(hdr.n_exceptions) * 5;
  // +8: UnpackBits issues 8-byte loads into the encoder-guaranteed slack.
  if (off + body + 8 > in.size()) {
    return Status::IOError("pfor: truncated block payload");
  }
  uint32_t unpacked[kPforBlock];
  UnpackBits(in.data() + off + sizeof(hdr), bn, hdr.bits, unpacked);
  int32_t block_vals[kPforBlock];
  for (size_t i = 0; i < bn; ++i) {
    block_vals[i] = static_cast<int32_t>(static_cast<uint32_t>(hdr.base) +
                                         unpacked[i]);
  }
  const uint8_t* ex = in.data() + off + sizeof(hdr) + hdr.payload_bytes;
  for (size_t e = 0; e < hdr.n_exceptions; ++e) {
    const uint8_t pos = ex[e * 5];
    if (pos >= bn) return Status::IOError("pfor: bad exception slot");
    std::memcpy(&block_vals[pos], ex + e * 5 + 1, 4);
  }
  const size_t lo = std::max(start, block_start);
  const size_t hi = std::min(start + n, block_start + bn);
  for (size_t i = lo; i < hi; ++i) {
    out[i - start] = block_vals[i - block_start];
  }
  return Status::OK();
}

}  // namespace

Status PforDecodeRange(const std::vector<uint8_t>& in, size_t start,
                       size_t n, int32_t* out) {
  if (in.size() < 8) return Status::IOError("pfor: truncated header");
  uint32_t magic, count;
  std::memcpy(&magic, in.data(), 4);
  std::memcpy(&count, in.data() + 4, 4);
  if (magic != kPforMagic) return Status::IOError("pfor: bad magic");
  if (start + n > count) return Status::OutOfRange("pfor: range beyond column");
  if (n == 0) return Status::OK();

  // Walk block headers to the first covering block.
  size_t off = 8;
  size_t block_start = 0;
  while (block_start < count) {
    const size_t bn = std::min(kPforBlock, count - block_start);
    if (off + sizeof(BlockHeader) > in.size()) {
      return Status::IOError("pfor: truncated block header");
    }
    BlockHeader hdr;
    std::memcpy(&hdr, in.data() + off, sizeof(hdr));
    const size_t body = sizeof(hdr) + hdr.payload_bytes +
                        static_cast<size_t>(hdr.n_exceptions) * 5;
    if (block_start + bn <= start) {
      off += body;  // entirely before the range: skip without decoding
      block_start += bn;
      continue;
    }
    if (block_start >= start + n) break;
    MAMMOTH_RETURN_IF_ERROR(
        DecodeBlockSlice(in, off, block_start, bn, start, n, out));
    off += body;
    block_start += bn;
  }
  return Status::OK();
}

Result<std::vector<uint32_t>> PforBuildBlockIndex(
    const std::vector<uint8_t>& in) {
  if (in.size() < 8) return Status::IOError("pfor: truncated header");
  uint32_t magic, count;
  std::memcpy(&magic, in.data(), 4);
  std::memcpy(&count, in.data() + 4, 4);
  if (magic != kPforMagic) return Status::IOError("pfor: bad magic");
  std::vector<uint32_t> offsets;
  size_t off = 8;
  for (size_t block_start = 0; block_start < count;
       block_start += kPforBlock) {
    if (off + sizeof(BlockHeader) > in.size()) {
      return Status::IOError("pfor: truncated block header");
    }
    offsets.push_back(static_cast<uint32_t>(off));
    BlockHeader hdr;
    std::memcpy(&hdr, in.data() + off, sizeof(hdr));
    off += sizeof(hdr) + hdr.payload_bytes +
           static_cast<size_t>(hdr.n_exceptions) * 5;
  }
  return offsets;
}

Status PforDecodeRangeIndexed(const std::vector<uint8_t>& in,
                              const std::vector<uint32_t>& block_index,
                              size_t start, size_t n, int32_t* out) {
  if (in.size() < 8) return Status::IOError("pfor: truncated header");
  uint32_t count;
  std::memcpy(&count, in.data() + 4, 4);
  if (start + n > count) return Status::OutOfRange("pfor: range beyond column");
  if (n == 0) return Status::OK();
  const size_t first_block = start / kPforBlock;
  const size_t last_block = (start + n - 1) / kPforBlock;
  if (last_block >= block_index.size()) {
    return Status::IOError("pfor: block index too short");
  }
  for (size_t b = first_block; b <= last_block; ++b) {
    const size_t block_start = b * kPforBlock;
    const size_t bn = std::min(kPforBlock, count - block_start);
    MAMMOTH_RETURN_IF_ERROR(DecodeBlockSlice(in, block_index[b], block_start,
                                             bn, start, n, out));
  }
  return Status::OK();
}

Status PforDeltaEncode(const int32_t* values, size_t n,
                       std::vector<uint8_t>* out) {
  std::vector<int32_t> zz(n);
  uint32_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    // Modular difference: wraparound-safe for arbitrary int32 inputs.
    const uint32_t d = static_cast<uint32_t>(values[i]) - prev;
    zz[i] = static_cast<int32_t>(ZigZag(static_cast<int32_t>(d)));
    prev = static_cast<uint32_t>(values[i]);
  }
  return EncodeStream(kPforDMagic, zz.data(), n, out);
}

Status PforDeltaDecode(const std::vector<uint8_t>& in,
                       std::vector<int32_t>* out) {
  MAMMOTH_RETURN_IF_ERROR(DecodeStream(kPforDMagic, in, out));
  uint32_t prev = 0;
  for (int32_t& v : *out) {
    prev += static_cast<uint32_t>(UnZigZag(static_cast<uint32_t>(v)));
    v = static_cast<int32_t>(prev);
  }
  return Status::OK();
}

}  // namespace mammoth::compress
