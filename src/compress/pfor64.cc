#include "compress/pfor64.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "compress/bitpack.h"
#include "compress/pfor.h"  // kPforBlock

namespace mammoth::compress {

namespace {

constexpr uint32_t kPfor64Magic = 0x38524650;   // "PFR8"
constexpr uint32_t kPfor64DMagic = 0x38444650;  // "PFD8"

/// 64-bit frames need a wider base and may pack up to 64 bits per value,
/// so payload_bytes grows to 16 bits and exceptions to 1 + 8 bytes.
struct BlockHeader64 {
  int64_t base;
  uint16_t payload_bytes;
  uint8_t bits;
  uint8_t n_exceptions;
  uint32_t pad;
};
static_assert(sizeof(BlockHeader64) == 16);

constexpr size_t kExceptionBytes64 = 9;  // u8 slot + i64 value

void Append(std::vector<uint8_t>* out, const void* p, size_t n) {
  const auto* b = static_cast<const uint8_t*>(p);
  out->insert(out->end(), b, b + n);
}

/// Densest-window frame selection, as in the 32-bit ChooseFrame but over
/// modular uint64 distances.
void ChooseFrame64(const int64_t* v, size_t n, int64_t* base_out,
                   int* bits_out) {
  int64_t sorted[kPforBlock];
  std::copy(v, v + n, sorted);
  std::sort(sorted, sorted + n);

  size_t best_cost = std::numeric_limits<size_t>::max();
  int best_bits = 64;
  int64_t best_base = sorted[0];
  for (int b = 0; b <= 64; ++b) {
    size_t covered = 0;
    size_t base_idx = 0;
    if (b == 64) {
      covered = n;  // everything fits a 64-bit frame
    } else {
      const uint64_t span = uint64_t{1} << b;
      size_t j = 0;
      for (size_t i = 0; i < n; ++i) {
        if (j < i) j = i;
        while (j < n && static_cast<uint64_t>(sorted[j]) -
                                static_cast<uint64_t>(sorted[i]) <
                            span) {
          ++j;
        }
        if (j - i > covered) {
          covered = j - i;
          base_idx = i;
        }
      }
    }
    const size_t exceptions = n - covered;
    if (exceptions > 255) continue;
    const size_t cost = PackedBytes(n, b) + exceptions * kExceptionBytes64;
    if (cost < best_cost) {
      best_cost = cost;
      best_bits = b;
      best_base = sorted[base_idx];
    }
  }
  *base_out = best_base;
  *bits_out = best_bits;
}

Status EncodeStream64(uint32_t magic, const int64_t* values, size_t n,
                      std::vector<uint8_t>* out) {
  out->clear();
  Append(out, &magic, 4);
  const uint32_t count = static_cast<uint32_t>(n);
  Append(out, &count, 4);

  for (size_t start = 0; start < n; start += kPforBlock) {
    const size_t bn = std::min(kPforBlock, n - start);
    const int64_t* v = values + start;
    int64_t base;
    int bits;
    ChooseFrame64(v, bn, &base, &bits);
    const uint64_t limit =
        bits == 64 ? ~uint64_t{0} : (uint64_t{1} << bits);

    uint8_t ex_pos[kPforBlock];
    int64_t ex_val[kPforBlock];
    size_t n_ex = 0;
    uint64_t packed[kPforBlock];
    for (size_t i = 0; i < bn; ++i) {
      // Modular delta: values below the base wrap high and become
      // exceptions, exactly like values above the frame.
      const uint64_t d =
          static_cast<uint64_t>(v[i]) - static_cast<uint64_t>(base);
      if (bits < 64 && d >= limit) {
        ex_pos[n_ex] = static_cast<uint8_t>(i);
        ex_val[n_ex] = v[i];
        ++n_ex;
        packed[i] = 0;
      } else {
        packed[i] = d;
      }
    }

    BlockHeader64 hdr;
    hdr.base = base;
    hdr.payload_bytes = static_cast<uint16_t>(PackedBytes(bn, bits));
    hdr.bits = static_cast<uint8_t>(bits);
    hdr.n_exceptions = static_cast<uint8_t>(n_ex);
    hdr.pad = 0;
    Append(out, &hdr, sizeof(hdr));
    PackBits64(packed, bn, bits, out);
    for (size_t e = 0; e < n_ex; ++e) {
      Append(out, &ex_pos[e], 1);
      Append(out, &ex_val[e], 8);
    }
  }
  // Slack so UnpackBits64's straddling loads never read past the buffer.
  out->resize(out->size() + 16, 0);
  return Status::OK();
}

/// Decodes the block at byte `off` (rows [block_start, block_start+bn))
/// and copies the slice overlapping [start, start+n).
Status DecodeBlockSlice64(const std::vector<uint8_t>& in, size_t off,
                          size_t block_start, size_t bn, size_t start,
                          size_t n, int64_t* out) {
  if (off + sizeof(BlockHeader64) > in.size()) {
    return Status::IOError("pfor64: truncated block header");
  }
  BlockHeader64 hdr;
  std::memcpy(&hdr, in.data() + off, sizeof(hdr));
  if (hdr.bits > 64) return Status::IOError("pfor64: bad block width");
  if (hdr.payload_bytes != PackedBytes(bn, hdr.bits)) {
    return Status::IOError("pfor64: inconsistent block header");
  }
  const size_t body = sizeof(hdr) + hdr.payload_bytes +
                      static_cast<size_t>(hdr.n_exceptions) * kExceptionBytes64;
  // +16: UnpackBits64 loads into the encoder-guaranteed slack.
  if (off + body + 16 > in.size()) {
    return Status::IOError("pfor64: truncated block payload");
  }
  uint64_t unpacked[kPforBlock];
  UnpackBits64(in.data() + off + sizeof(hdr), bn, hdr.bits, unpacked);
  int64_t block_vals[kPforBlock];
  for (size_t i = 0; i < bn; ++i) {
    block_vals[i] = static_cast<int64_t>(static_cast<uint64_t>(hdr.base) +
                                         unpacked[i]);
  }
  const uint8_t* ex = in.data() + off + sizeof(hdr) + hdr.payload_bytes;
  for (size_t e = 0; e < hdr.n_exceptions; ++e) {
    const uint8_t pos = ex[e * kExceptionBytes64];
    if (pos >= bn) return Status::IOError("pfor64: bad exception slot");
    std::memcpy(&block_vals[pos], ex + e * kExceptionBytes64 + 1, 8);
  }
  const size_t lo = std::max(start, block_start);
  const size_t hi = std::min(start + n, block_start + bn);
  for (size_t i = lo; i < hi; ++i) {
    out[i - start] = block_vals[i - block_start];
  }
  return Status::OK();
}

Status DecodeStream64(uint32_t magic, const std::vector<uint8_t>& in,
                      std::vector<int64_t>* out) {
  if (in.size() < 8) return Status::IOError("pfor64: truncated header");
  uint32_t got_magic, count;
  std::memcpy(&got_magic, in.data(), 4);
  std::memcpy(&count, in.data() + 4, 4);
  if (got_magic != magic) return Status::IOError("pfor64: bad magic");
  if (static_cast<uint64_t>(count) >
      (in.size() / sizeof(BlockHeader64) + 1) * kPforBlock) {
    return Status::IOError("pfor64: implausible count");
  }
  out->resize(count);
  size_t off = 8;
  for (size_t start = 0; start < count; start += kPforBlock) {
    const size_t bn = std::min(kPforBlock, count - start);
    MAMMOTH_RETURN_IF_ERROR(
        DecodeBlockSlice64(in, off, start, bn, start, bn, out->data() + start));
    BlockHeader64 hdr;
    std::memcpy(&hdr, in.data() + off, sizeof(hdr));
    off += sizeof(hdr) + hdr.payload_bytes +
           static_cast<size_t>(hdr.n_exceptions) * kExceptionBytes64;
  }
  return Status::OK();
}

inline uint64_t ZigZag64(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^
         static_cast<uint64_t>(v >> 63);
}

inline int64_t UnZigZag64(uint64_t z) {
  return static_cast<int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

}  // namespace

Status Pfor64Encode(const int64_t* values, size_t n,
                    std::vector<uint8_t>* out) {
  return EncodeStream64(kPfor64Magic, values, n, out);
}

Status Pfor64Decode(const std::vector<uint8_t>& in,
                    std::vector<int64_t>* out) {
  return DecodeStream64(kPfor64Magic, in, out);
}

Result<std::vector<uint32_t>> Pfor64BuildBlockIndex(
    const std::vector<uint8_t>& in) {
  if (in.size() < 8) return Status::IOError("pfor64: truncated header");
  uint32_t magic, count;
  std::memcpy(&magic, in.data(), 4);
  std::memcpy(&count, in.data() + 4, 4);
  if (magic != kPfor64Magic) return Status::IOError("pfor64: bad magic");
  std::vector<uint32_t> offsets;
  size_t off = 8;
  for (size_t block_start = 0; block_start < count;
       block_start += kPforBlock) {
    if (off + sizeof(BlockHeader64) > in.size()) {
      return Status::IOError("pfor64: truncated block header");
    }
    offsets.push_back(static_cast<uint32_t>(off));
    BlockHeader64 hdr;
    std::memcpy(&hdr, in.data() + off, sizeof(hdr));
    off += sizeof(hdr) + hdr.payload_bytes +
           static_cast<size_t>(hdr.n_exceptions) * kExceptionBytes64;
  }
  return offsets;
}

Status Pfor64DecodeRangeIndexed(const std::vector<uint8_t>& in,
                                const std::vector<uint32_t>& block_index,
                                size_t start, size_t n, int64_t* out) {
  if (in.size() < 8) return Status::IOError("pfor64: truncated header");
  uint32_t count;
  std::memcpy(&count, in.data() + 4, 4);
  if (start + n > count) {
    return Status::OutOfRange("pfor64: range beyond column");
  }
  if (n == 0) return Status::OK();
  const size_t first_block = start / kPforBlock;
  const size_t last_block = (start + n - 1) / kPforBlock;
  if (last_block >= block_index.size()) {
    return Status::IOError("pfor64: block index too short");
  }
  for (size_t b = first_block; b <= last_block; ++b) {
    const size_t block_start = b * kPforBlock;
    const size_t bn = std::min(kPforBlock, count - block_start);
    MAMMOTH_RETURN_IF_ERROR(DecodeBlockSlice64(in, block_index[b], block_start,
                                               bn, start, n, out));
  }
  return Status::OK();
}

Status Pfor64DeltaEncode(const int64_t* values, size_t n,
                         std::vector<uint8_t>* out) {
  std::vector<int64_t> zz(n);
  uint64_t prev = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t d = static_cast<uint64_t>(values[i]) - prev;
    zz[i] = static_cast<int64_t>(ZigZag64(static_cast<int64_t>(d)));
    prev = static_cast<uint64_t>(values[i]);
  }
  return EncodeStream64(kPfor64DMagic, zz.data(), n, out);
}

Status Pfor64DeltaDecode(const std::vector<uint8_t>& in,
                         std::vector<int64_t>* out) {
  MAMMOTH_RETURN_IF_ERROR(DecodeStream64(kPfor64DMagic, in, out));
  uint64_t prev = 0;
  for (int64_t& v : *out) {
    prev += static_cast<uint64_t>(UnZigZag64(static_cast<uint64_t>(v)));
    v = static_cast<int64_t>(prev);
  }
  return Status::OK();
}

}  // namespace mammoth::compress
