#ifndef MAMMOTH_COMPRESS_PFOR64_H_
#define MAMMOTH_COMPRESS_PFOR64_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mammoth::compress {

/// 64-bit PFOR — the int64 counterpart of pfor.h, same block structure
/// (128 values, densest-window frame, patched exceptions) with wider
/// headers (16 bytes) and 9-byte exceptions. Stream magics differ so a
/// 32-bit decoder can never misread a 64-bit stream.
Status Pfor64Encode(const int64_t* values, size_t n,
                    std::vector<uint8_t>* out);
Status Pfor64Decode(const std::vector<uint8_t>& in, std::vector<int64_t>* out);

/// Byte offsets of every block (one O(#blocks) walk), for O(1) range
/// decodes via Pfor64DecodeRangeIndexed.
Result<std::vector<uint32_t>> Pfor64BuildBlockIndex(
    const std::vector<uint8_t>& in);

Status Pfor64DecodeRangeIndexed(const std::vector<uint8_t>& in,
                                const std::vector<uint32_t>& block_index,
                                size_t start, size_t n, int64_t* out);

/// PFOR-DELTA over int64: zig-zag modular deltas chained into Pfor64.
Status Pfor64DeltaEncode(const int64_t* values, size_t n,
                         std::vector<uint8_t>* out);
Status Pfor64DeltaDecode(const std::vector<uint8_t>& in,
                         std::vector<int64_t>* out);

}  // namespace mammoth::compress

#endif  // MAMMOTH_COMPRESS_PFOR64_H_
