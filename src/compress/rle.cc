#include "compress/rle.h"

#include <cstring>

namespace mammoth::compress {

namespace {
constexpr uint32_t kMagic = 0x31454C52;    // "RLE1"
constexpr uint32_t kMagic64 = 0x38454C52;  // "RLE8"
}  // namespace

Status RleEncode(const int32_t* values, size_t n, std::vector<uint8_t>* out) {
  out->clear();
  const uint32_t count = static_cast<uint32_t>(n);
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&kMagic),
              reinterpret_cast<const uint8_t*>(&kMagic) + 4);
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&count),
              reinterpret_cast<const uint8_t*>(&count) + 4);
  size_t i = 0;
  while (i < n) {
    const int32_t v = values[i];
    uint32_t run = 1;
    while (i + run < n && values[i + run] == v) ++run;
    out->insert(out->end(), reinterpret_cast<const uint8_t*>(&v),
                reinterpret_cast<const uint8_t*>(&v) + 4);
    out->insert(out->end(), reinterpret_cast<const uint8_t*>(&run),
                reinterpret_cast<const uint8_t*>(&run) + 4);
    i += run;
  }
  return Status::OK();
}

Status RleDecode(const std::vector<uint8_t>& in, std::vector<int32_t>* out) {
  if (in.size() < 8) return Status::IOError("rle: truncated header");
  uint32_t magic, count;
  std::memcpy(&magic, in.data(), 4);
  std::memcpy(&count, in.data() + 4, 4);
  if (magic != kMagic) return Status::IOError("rle: bad magic");
  // Sanity cap: protects against corrupted counts demanding multi-GB
  // allocations (a legitimate column in this library is far smaller).
  if (count > (1u << 28)) return Status::IOError("rle: implausible count");
  out->clear();
  out->reserve(count);
  size_t off = 8;
  while (out->size() < count) {
    if (off + 8 > in.size()) return Status::IOError("rle: truncated run");
    int32_t v;
    uint32_t run;
    std::memcpy(&v, in.data() + off, 4);
    std::memcpy(&run, in.data() + off + 4, 4);
    off += 8;
    if (out->size() + run > count) return Status::IOError("rle: run overflow");
    out->insert(out->end(), run, v);
  }
  return Status::OK();
}

Status Rle64Encode(const int64_t* values, size_t n,
                   std::vector<uint8_t>* out) {
  out->clear();
  const uint32_t count = static_cast<uint32_t>(n);
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&kMagic64),
              reinterpret_cast<const uint8_t*>(&kMagic64) + 4);
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&count),
              reinterpret_cast<const uint8_t*>(&count) + 4);
  size_t i = 0;
  while (i < n) {
    const int64_t v = values[i];
    uint32_t run = 1;
    while (i + run < n && values[i + run] == v) ++run;
    out->insert(out->end(), reinterpret_cast<const uint8_t*>(&v),
                reinterpret_cast<const uint8_t*>(&v) + 8);
    out->insert(out->end(), reinterpret_cast<const uint8_t*>(&run),
                reinterpret_cast<const uint8_t*>(&run) + 4);
    i += run;
  }
  return Status::OK();
}

Status Rle64Decode(const std::vector<uint8_t>& in,
                   std::vector<int64_t>* out) {
  if (in.size() < 8) return Status::IOError("rle64: truncated header");
  uint32_t magic, count;
  std::memcpy(&magic, in.data(), 4);
  std::memcpy(&count, in.data() + 4, 4);
  if (magic != kMagic64) return Status::IOError("rle64: bad magic");
  if (count > (1u << 28)) return Status::IOError("rle64: implausible count");
  out->clear();
  out->reserve(count);
  size_t off = 8;
  while (out->size() < count) {
    if (off + 12 > in.size()) return Status::IOError("rle64: truncated run");
    int64_t v;
    uint32_t run;
    std::memcpy(&v, in.data() + off, 8);
    std::memcpy(&run, in.data() + off + 8, 4);
    off += 12;
    if (out->size() + run > count) {
      return Status::IOError("rle64: run overflow");
    }
    out->insert(out->end(), run, v);
  }
  return Status::OK();
}

}  // namespace mammoth::compress
