#include "compress/pdict.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/bitutil.h"
#include "compress/bitpack.h"

namespace mammoth::compress {

namespace {

constexpr uint32_t kMagic = 0x31434450;  // "PDC1"

}  // namespace

Status PdictEncode(const int32_t* values, size_t n,
                   std::vector<uint8_t>* out) {
  std::unordered_map<int32_t, uint32_t> dict;
  std::vector<int32_t> dict_values;
  std::vector<uint32_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    auto [it, fresh] =
        dict.try_emplace(values[i], static_cast<uint32_t>(dict.size()));
    if (fresh) {
      dict_values.push_back(values[i]);
      if (dict_values.size() > (1u << 16)) {
        return Status::InvalidArgument(
            "pdict: more than 2^16 distinct values");
      }
    }
    codes[i] = it->second;
  }
  // Emit the dictionary in ascending value order and remap codes: with a
  // sorted dictionary, constant comparisons against the column rewrite to a
  // single contiguous code interval (compressed_kernels), while decode stays
  // a plain gather. Old first-appearance images still decode unchanged.
  std::vector<int32_t> sorted_vals = dict_values;
  std::sort(sorted_vals.begin(), sorted_vals.end());
  std::vector<uint32_t> remap(dict_values.size());
  for (size_t c = 0; c < dict_values.size(); ++c) {
    remap[c] = static_cast<uint32_t>(
        std::lower_bound(sorted_vals.begin(), sorted_vals.end(),
                         dict_values[c]) -
        sorted_vals.begin());
  }
  for (size_t i = 0; i < n; ++i) codes[i] = remap[codes[i]];
  dict_values = std::move(sorted_vals);
  const int bits =
      dict_values.size() <= 1
          ? 0
          : static_cast<int>(CeilLog2(dict_values.size()));

  out->clear();
  const uint32_t count = static_cast<uint32_t>(n);
  const uint32_t dsize = static_cast<uint32_t>(dict_values.size());
  const uint32_t bits32 = static_cast<uint32_t>(bits);
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&kMagic),
              reinterpret_cast<const uint8_t*>(&kMagic) + 4);
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&count),
              reinterpret_cast<const uint8_t*>(&count) + 4);
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&dsize),
              reinterpret_cast<const uint8_t*>(&dsize) + 4);
  out->insert(out->end(), reinterpret_cast<const uint8_t*>(&bits32),
              reinterpret_cast<const uint8_t*>(&bits32) + 4);
  out->insert(out->end(),
              reinterpret_cast<const uint8_t*>(dict_values.data()),
              reinterpret_cast<const uint8_t*>(dict_values.data()) +
                  dict_values.size() * 4);
  PackBits(codes.data(), n, bits, out);
  out->resize(out->size() + 8, 0);  // unpack slack
  return Status::OK();
}

Status PdictDecodeRange(const std::vector<uint8_t>& in, size_t start,
                        size_t n, int32_t* out) {
  if (in.size() < 16) return Status::IOError("pdict: truncated header");
  uint32_t magic, count, dsize, bits;
  std::memcpy(&magic, in.data(), 4);
  std::memcpy(&count, in.data() + 4, 4);
  std::memcpy(&dsize, in.data() + 8, 4);
  std::memcpy(&bits, in.data() + 12, 4);
  if (magic != kMagic) return Status::IOError("pdict: bad magic");
  if (bits > 32) return Status::IOError("pdict: bad code width");
  if (start + n > count) {
    return Status::OutOfRange("pdict: range beyond column");
  }
  if (n == 0) return Status::OK();
  const size_t dict_end = 16 + static_cast<size_t>(dsize) * 4;
  // +8: the unpack loop issues 8-byte loads into the encoder's slack.
  if (in.size() < dict_end + PackedBytes(count, static_cast<int>(bits)) + 8 ||
      in.size() < dict_end) {
    return Status::IOError("pdict: truncated payload");
  }
  const int32_t* dict = reinterpret_cast<const int32_t*>(in.data() + 16);
  const uint8_t* codes = in.data() + dict_end;
  const uint64_t mask =
      bits == 0 ? 0 : ((bits >= 64 ? ~uint64_t{0} : (uint64_t{1} << bits) - 1));
  for (size_t i = 0; i < n; ++i) {
    uint32_t code = 0;
    if (bits > 0) {
      const size_t bitpos = (start + i) * bits;
      uint64_t word;
      std::memcpy(&word, codes + bitpos / 8, sizeof(word));
      code = static_cast<uint32_t>((word >> (bitpos % 8)) & mask);
    }
    if (code >= dsize) return Status::IOError("pdict: bad code");
    out[i] = dict[code];
  }
  return Status::OK();
}

Status PdictDecode(const std::vector<uint8_t>& in,
                   std::vector<int32_t>* out) {
  if (in.size() < 16) return Status::IOError("pdict: truncated header");
  uint32_t magic, count, dsize, bits;
  std::memcpy(&magic, in.data(), 4);
  std::memcpy(&count, in.data() + 4, 4);
  std::memcpy(&dsize, in.data() + 8, 4);
  std::memcpy(&bits, in.data() + 12, 4);
  if (magic != kMagic) return Status::IOError("pdict: bad magic");
  if (bits > 32) return Status::IOError("pdict: bad code width");
  if (count > (1u << 28)) return Status::IOError("pdict: implausible count");
  const size_t dict_end = 16 + static_cast<size_t>(dsize) * 4;
  // +8: UnpackBits issues 8-byte loads into the encoder's slack.
  if (in.size() < dict_end + PackedBytes(count, static_cast<int>(bits)) + 8) {
    return Status::IOError("pdict: truncated payload");
  }
  const int32_t* dict = reinterpret_cast<const int32_t*>(in.data() + 16);
  std::vector<uint32_t> codes(count);
  UnpackBits(in.data() + dict_end, count, static_cast<int>(bits),
             codes.data());
  out->resize(count);
  int32_t* dst = out->data();
  for (size_t i = 0; i < count; ++i) {
    if (codes[i] >= dsize) return Status::IOError("pdict: bad code");
    dst[i] = dict[codes[i]];
  }
  return Status::OK();
}

}  // namespace mammoth::compress
