#ifndef MAMMOTH_COMPRESS_DICT_STR_H_
#define MAMMOTH_COMPRESS_DICT_STR_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/bat.h"

namespace mammoth::compress {

/// A dictionary-compressed string column: the distinct strings of the heap,
/// sorted lexicographically, plus one bit-packed code per row. Because the
/// dictionary is sorted, every string predicate rewrites into code space —
/// equality is a binary-search probe, ordered comparisons and LIKE-prefix
/// patterns become one contiguous code interval, and arbitrary LIKE
/// patterns evaluate once per *distinct* word into a small LUT — so scans
/// touch only the packed codes, never the heap.
///
/// The dictionary is immutable once encoded; Table re-encodes at
/// MergeDeltas (the same lifecycle as integer CompressedBat columns).
/// Instances are shared via shared_ptr<const StrDict>.
class StrDict {
 public:
  /// Dictionaries beyond 2^16 distinct words stop paying for themselves
  /// (same bound as PDICT); Encode fails and the column stays plain.
  static constexpr size_t kMaxDistinct = size_t{1} << 16;

  /// Encodes a kStr BAT (offset tail + heap). Fails with InvalidArgument
  /// on cardinality above kMaxDistinct, Unsupported on non-string input.
  static Result<StrDict> Encode(const BatPtr& b);

  size_t Count() const { return count_; }
  uint32_t dsize() const { return static_cast<uint32_t>(offsets_.size() - 1); }
  uint32_t bits() const { return bits_; }
  const BatProperties& props() const { return props_; }

  /// The dictionary word for `code` (codes are in sorted word order).
  std::string_view Word(uint32_t code) const {
    return std::string_view(chars_.data() + offsets_[code],
                            offsets_[code + 1] - offsets_[code]);
  }

  /// The code at row i — one unaligned load, shift, mask.
  uint32_t CodeAt(size_t i) const {
    if (bits_ == 0) return 0;
    const size_t bitpos = i * bits_;
    uint64_t word;
    std::memcpy(&word, codes_.data() + bitpos / 8, sizeof(word));
    return static_cast<uint32_t>((word >> (bitpos % 8)) &
                                 ((uint64_t{1} << bits_) - 1));
  }

  /// The bit-packed code stream (8 bytes of slack past the last code), for
  /// kernels that unpack codes in batches instead of per-row CodeAt.
  const uint8_t* code_data() const { return codes_.data(); }

  /// Code of `s` if present (binary search over the sorted dictionary).
  bool FindCode(std::string_view s, uint32_t* code) const;

  /// First code whose word is >= `s` / > `s` (dsize() when none).
  uint32_t LowerBound(std::string_view s) const;
  uint32_t UpperBound(std::string_view s) const;

  /// Codes [lo, hi) of dictionary words starting with `prefix` (an empty
  /// interval when no word matches). Drives LIKE-'lit%' in code space.
  void PrefixCodeRange(std::string_view prefix, uint32_t* lo,
                       uint32_t* hi) const;

  /// Rebuilds the plain string BAT (fresh private heap, original props).
  Result<BatPtr> Decode() const;

  /// Footprint of the encoded image (dictionary + packed codes).
  size_t CompressedBytes() const {
    return chars_.size() + offsets_.size() * sizeof(uint32_t) + codes_.size();
  }
  /// Bytes the plain representation pays: 8-byte offset tail per row plus
  /// the heap (words + terminators).
  size_t LogicalBytes() const {
    return count_ * sizeof(uint64_t) + chars_.size() + dsize();
  }

  /// Self-describing byte image, persisted as a catalog `col_<i>.sdict`.
  void Serialize(std::string* out) const;
  static Result<StrDict> Deserialize(std::string_view in);

 private:
  size_t count_ = 0;
  uint32_t bits_ = 0;
  BatProperties props_;
  std::vector<char> chars_;        // concatenated sorted words
  std::vector<uint32_t> offsets_;  // dsize+1 boundaries into chars_
  std::vector<uint8_t> codes_;     // bit-packed, +8 bytes slack
};

}  // namespace mammoth::compress

#endif  // MAMMOTH_COMPRESS_DICT_STR_H_
