#ifndef MAMMOTH_COMPRESS_COMPRESSED_BAT_H_
#define MAMMOTH_COMPRESS_COMPRESSED_BAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/bat.h"

namespace mammoth::compress {

/// Codec choices for CompressedBat.
enum class Codec : uint8_t { kPfor, kPforDelta, kPdict, kRle };

const char* CodecName(Codec c);

/// A compressed :int column in the X100 storage style (§5): the column is
/// held in its compressed form and decompressed on demand — either wholly
/// (operator-at-a-time consumers) or vector-at-a-time via DecodeRange
/// (pipelined consumers decompress into a cache-resident vector right
/// before use, keeping scans CPU- rather than bandwidth-bound).
class CompressedBat {
 public:
  /// Compresses `b` (must be kInt32) with the chosen codec, or with the
  /// smallest of all codecs when `codec` is unset.
  static Result<CompressedBat> Compress(const BatPtr& b, Codec codec);
  static Result<CompressedBat> CompressBest(const BatPtr& b);

  /// Decompresses the whole column back into a BAT.
  Result<BatPtr> Decode() const;

  /// Decompresses values [start, start+n) into `out` (vector-at-a-time
  /// consumption). Codecs here are block- or stream-oriented, so the range
  /// decode works from an internal block map where available (PFOR family)
  /// or from a bounded backward scan (RLE).
  Status DecodeRange(size_t start, size_t n, int32_t* out) const;

  size_t Count() const { return count_; }
  size_t CompressedBytes() const { return bytes_.size(); }
  double Ratio() const {
    return bytes_.empty()
               ? 0
               : static_cast<double>(count_ * 4) /
                     static_cast<double>(bytes_.size());
  }
  Codec codec() const { return codec_; }

 private:
  Codec codec_ = Codec::kPfor;
  size_t count_ = 0;
  std::vector<uint8_t> bytes_;
  std::vector<uint32_t> block_index_;  // kPfor: byte offset per block
  // Dense cache for codecs without random access (kPforDelta needs the
  // running prefix; kRle has variable-length runs): decoded lazily on the
  // first DecodeRange and kept.
  mutable std::vector<int32_t> decoded_cache_;
};

}  // namespace mammoth::compress

#endif  // MAMMOTH_COMPRESS_COMPRESSED_BAT_H_
