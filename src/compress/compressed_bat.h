#ifndef MAMMOTH_COMPRESS_COMPRESSED_BAT_H_
#define MAMMOTH_COMPRESS_COMPRESSED_BAT_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "core/bat.h"

namespace mammoth::compress {

/// Codec choices for CompressedBat.
enum class Codec : uint8_t { kPfor, kPforDelta, kPdict, kRle };

const char* CodecName(Codec c);

/// A compressed integer column in the X100 storage style (§5): the column
/// is held in its compressed form and decompressed on demand — either
/// wholly (operator-at-a-time consumers) or vector-at-a-time via
/// DecodeRange (pipelined consumers decompress into a cache-resident
/// vector right before use, keeping scans CPU- rather than bandwidth-bound).
///
/// Supported tail types: kInt32 (all codecs) and kInt64 (PFOR,
/// PFOR-DELTA, RLE). Anything else yields a typed kUnsupported error.
///
/// Alongside the byte stream the column keeps per-block min/max statistics
/// (blocks of kStatBlockRows rows, aligned with the shared-scan morsel
/// grain) that double as a zone map: block skipping over a compressed
/// column never needs to decompress the skipped blocks.
///
/// Instances are cheaply copyable; copies share the compressed bytes and
/// the lazily-decoded cache (both immutable after construction, the cache
/// filled exactly once under std::call_once — safe for concurrent
/// DecodeRange callers).
class CompressedBat {
 public:
  /// Rows per statistics block. Matches TaskPool::kDefaultGrain so a
  /// morsel-aligned scan chunk covers whole stat blocks.
  static constexpr size_t kStatBlockRows = size_t{1} << 16;

  /// Compresses `b` (kInt32 or kInt64) with the chosen codec, or with the
  /// smallest of the codecs applicable to the type when unset.
  static Result<CompressedBat> Compress(const BatPtr& b, Codec codec);
  static Result<CompressedBat> CompressBest(const BatPtr& b);

  /// Decompresses the whole column into a fresh BAT (tail properties are
  /// the ones captured at compression time).
  Result<BatPtr> Decode() const;

  /// Whole-column decode backed by the shared cache: the first caller
  /// decodes, every later caller gets the same immutable BAT. This is the
  /// operator-at-a-time entry point (ScanColumn, fallback kernels).
  Result<BatPtr> DecodedBat() const;

  /// Decompresses values [start, start+n) into `out` (vector-at-a-time
  /// consumption). PFOR and PDICT decode only the touched blocks; the
  /// stream codecs without random access (PFOR-DELTA's running prefix,
  /// RLE's variable-length runs) serve ranges from the shared decoded
  /// cache. The overload must match the column type.
  Status DecodeRange(size_t start, size_t n, int32_t* out) const;
  Status DecodeRange(size_t start, size_t n, int64_t* out) const;
  /// Type-erased range decode into a buffer of `width()`-sized slots.
  Status DecodeRangeRaw(size_t start, size_t n, void* out) const;

  size_t Count() const { return count_; }
  PhysType type() const { return type_; }
  size_t width() const { return TypeWidth(type_); }
  size_t CompressedBytes() const { return bytes_.size(); }
  /// Bytes of the uncompressed tail this column stands for.
  size_t LogicalBytes() const { return count_ * width(); }
  double Ratio() const {
    return bytes_.empty() ? 0
                          : static_cast<double>(LogicalBytes()) /
                                static_cast<double>(bytes_.size());
  }
  Codec codec() const { return codec_; }
  /// Tail properties of the column at compression time.
  const BatProperties& props() const { return props_; }

  /// --- Per-block statistics (zone map) --------------------------------
  size_t NumStatBlocks() const { return stat_min_.size(); }
  int64_t StatMin(size_t block) const { return stat_min_[block]; }
  int64_t StatMax(size_t block) const { return stat_max_[block]; }

  /// Bytes currently pinned by the shared whole-column decode cache (0
  /// until some caller forces a full decode). Feeds the engine's
  /// compression stats so the "hidden" decoded footprint is visible.
  size_t DecodedCacheBytes() const {
    return cache_->bytes.load(std::memory_order_relaxed);
  }

  /// --- Compressed-direct kernel views ---------------------------------
  /// Parsed run list of an RLE column: values[r] repeats over rows
  /// [starts[r], starts[r+1]); starts has nruns+1 entries, the last equal
  /// to Count(). Values are widened to int64 regardless of column type.
  /// Lazily parsed once and shared by copies; error on non-RLE columns.
  struct RleRuns {
    std::vector<int64_t> values;
    std::vector<uint64_t> starts;
    size_t NumRuns() const { return values.size(); }
  };
  Result<const RleRuns*> RunsView() const;

  /// Zero-copy view into a PDICT column's dictionary and packed codes.
  /// Valid only while this CompressedBat instance is alive. `sorted` is
  /// true when the dictionary is ascending (every image written since the
  /// sorted-dict encoder; legacy first-appearance images scan via a LUT).
  struct DictView {
    const int32_t* dict = nullptr;
    uint32_t dsize = 0;
    uint32_t bits = 0;
    const uint8_t* codes = nullptr;  ///< bit-packed stream (+8B slack)
    bool sorted = false;
    /// Code of row i; callers special-case bits == 0 (dsize <= 1).
    uint32_t CodeAt(size_t i) const {
      const size_t bitpos = i * bits;
      uint64_t word;
      std::memcpy(&word, codes + bitpos / 8, sizeof(word));
      return static_cast<uint32_t>((word >> (bitpos % 8)) &
                                   ((uint64_t{1} << bits) - 1));
    }
  };
  Result<DictView> PdictView() const;

  /// --- Persistence ----------------------------------------------------
  /// Self-describing byte image (codec, type, props, stats, stream); the
  /// catalog snapshot writes one per compressed column.
  void Serialize(std::string* out) const;
  static Result<CompressedBat> Deserialize(std::string_view in);

 private:
  /// Fill-once decode cache shared by copies; call_once makes concurrent
  /// lazy fills race-free (the fix for the old mutable vector).
  struct DecodedCache {
    std::once_flag once;
    Status status = Status::OK();
    BatPtr bat;
    std::atomic<size_t> bytes{0};  ///< logical bytes held once filled
  };

  /// Fill-once parsed run list for RLE columns (same sharing rules as
  /// DecodedCache; the vectors own their storage so sharing across copies
  /// never dangles).
  struct RunsCache {
    std::once_flag once;
    Status status = Status::OK();
    RleRuns runs;
  };

  Status FillCache() const;
  Status RebuildIndexes();

  Codec codec_ = Codec::kPfor;
  PhysType type_ = PhysType::kInt32;
  size_t count_ = 0;
  std::vector<uint8_t> bytes_;
  std::vector<uint32_t> block_index_;  // kPfor: byte offset per codec block
  std::vector<int64_t> stat_min_;      // per kStatBlockRows block
  std::vector<int64_t> stat_max_;
  BatProperties props_;
  std::shared_ptr<DecodedCache> cache_ = std::make_shared<DecodedCache>();
  std::shared_ptr<RunsCache> runs_cache_ = std::make_shared<RunsCache>();
};

}  // namespace mammoth::compress

#endif  // MAMMOTH_COMPRESS_COMPRESSED_BAT_H_
