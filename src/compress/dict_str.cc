#include "compress/dict_str.h"

#include <algorithm>
#include <unordered_map>

#include "common/bitutil.h"
#include "compress/bitpack.h"

namespace mammoth::compress {

namespace {
constexpr uint32_t kMagic = 0x31434453;  // "SDC1"
}  // namespace

Result<StrDict> StrDict::Encode(const BatPtr& b) {
  if (b == nullptr) return Status::InvalidArgument("strdict: null input BAT");
  if (b->type() != PhysType::kStr) {
    return Status::Unsupported("strdict: input is not bat[:str]");
  }
  const size_t n = b->Count();
  const uint64_t* offs = b->TailData<uint64_t>();
  // The heap deduplicates, so distinct offsets are exactly the distinct
  // strings; map each to a provisional id, then remap into sorted order.
  std::unordered_map<uint64_t, uint32_t> ids;
  std::vector<std::string_view> words;
  std::vector<uint32_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    auto [it, fresh] =
        ids.try_emplace(offs[i], static_cast<uint32_t>(ids.size()));
    if (fresh) {
      words.push_back(b->heap()->Get(offs[i]));
      if (words.size() > kMaxDistinct) {
        return Status::InvalidArgument(
            "strdict: more than 2^16 distinct strings");
      }
    }
    codes[i] = it->second;
  }
  std::vector<uint32_t> order(words.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t c) {
    return words[a] < words[c];
  });
  std::vector<uint32_t> remap(words.size());
  for (uint32_t rank = 0; rank < order.size(); ++rank) {
    remap[order[rank]] = rank;
  }
  for (size_t i = 0; i < n; ++i) codes[i] = remap[codes[i]];

  StrDict out;
  out.count_ = n;
  out.props_ = b->props();
  out.offsets_.reserve(words.size() + 1);
  out.offsets_.push_back(0);
  for (uint32_t rank = 0; rank < order.size(); ++rank) {
    std::string_view w = words[order[rank]];
    out.chars_.insert(out.chars_.end(), w.begin(), w.end());
    out.offsets_.push_back(static_cast<uint32_t>(out.chars_.size()));
  }
  out.bits_ = words.size() <= 1
                  ? 0
                  : static_cast<uint32_t>(CeilLog2(words.size()));
  PackBits(codes.data(), n, static_cast<int>(out.bits_), &out.codes_);
  out.codes_.resize(out.codes_.size() + 8, 0);  // unpack slack
  return out;
}

bool StrDict::FindCode(std::string_view s, uint32_t* code) const {
  const uint32_t lo = LowerBound(s);
  if (lo < dsize() && Word(lo) == s) {
    *code = lo;
    return true;
  }
  return false;
}

uint32_t StrDict::LowerBound(std::string_view s) const {
  uint32_t lo = 0, hi = dsize();
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (Word(mid) < s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint32_t StrDict::UpperBound(std::string_view s) const {
  uint32_t lo = 0, hi = dsize();
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo) / 2;
    if (Word(mid) <= s) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void StrDict::PrefixCodeRange(std::string_view prefix, uint32_t* lo,
                              uint32_t* hi) const {
  *lo = LowerBound(prefix);
  uint32_t h = *lo;
  // Words with the prefix are contiguous from *lo; advance past them by
  // binary search on "still has the prefix".
  uint32_t bound = dsize();
  while (h < bound) {
    const uint32_t mid = h + (bound - h) / 2;
    std::string_view w = Word(mid);
    if (w.size() >= prefix.size() && w.substr(0, prefix.size()) == prefix) {
      h = mid + 1;
    } else {
      bound = mid;
    }
  }
  *hi = h;
}

Result<BatPtr> StrDict::Decode() const {
  BatPtr b = Bat::NewString(nullptr);
  // Intern each distinct word once, then append raw offsets per row — the
  // per-row cost is a shift-mask plus an 8-byte store, no hashing.
  std::vector<uint64_t> word_off(dsize());
  for (uint32_t c = 0; c < dsize(); ++c) {
    word_off[c] = b->heap()->Put(Word(c));
  }
  std::vector<uint64_t> offs(count_);
  for (size_t i = 0; i < count_; ++i) offs[i] = word_off[CodeAt(i)];
  b->AppendRaw(offs.data(), offs.size());
  b->mutable_props() = props_;
  return b;
}

void StrDict::Serialize(std::string* out) const {
  const auto put = [out](const void* p, size_t n) {
    out->append(static_cast<const char*>(p), n);
  };
  const uint64_t count = count_;
  const uint32_t dsz = dsize();
  const uint8_t props = (props_.sorted ? 1 : 0) | (props_.revsorted ? 2 : 0) |
                        (props_.key ? 4 : 0);
  const uint8_t pad[3] = {0, 0, 0};
  const uint64_t chars_bytes = chars_.size();
  const uint64_t code_bytes = codes_.size();
  put(&kMagic, 4);
  put(&count, 8);
  put(&dsz, 4);
  put(&bits_, 4);
  put(&props, 1);
  put(pad, 3);
  put(&chars_bytes, 8);
  put(chars_.data(), chars_.size());
  put(offsets_.data(), offsets_.size() * sizeof(uint32_t));
  put(&code_bytes, 8);
  put(codes_.data(), codes_.size());
}

Result<StrDict> StrDict::Deserialize(std::string_view in) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(in.data());
  const uint8_t* end = p + in.size();
  const auto get = [&p, end](void* dst, size_t n) {
    if (static_cast<size_t>(end - p) < n) return false;
    std::memcpy(dst, p, n);
    p += n;
    return true;
  };
  uint32_t magic = 0, dsz = 0;
  uint64_t count = 0, chars_bytes = 0, code_bytes = 0;
  uint8_t props = 0, pad[3];
  StrDict out;
  if (!get(&magic, 4) || magic != kMagic) {
    return Status::Corruption("strdict: bad magic");
  }
  if (!get(&count, 8) || !get(&dsz, 4) || !get(&out.bits_, 4) ||
      !get(&props, 1) || !get(pad, 3) || !get(&chars_bytes, 8)) {
    return Status::Corruption("strdict: truncated header");
  }
  if (count > (uint64_t{1} << 40) || dsz > kMaxDistinct ||
      out.bits_ > 16 || chars_bytes > static_cast<uint64_t>(end - p) ||
      (count > 0 && dsz == 0)) {
    return Status::Corruption("strdict: implausible header");
  }
  out.count_ = count;
  out.props_.sorted = (props & 1) != 0;
  out.props_.revsorted = (props & 2) != 0;
  out.props_.key = (props & 4) != 0;
  out.chars_.resize(chars_bytes);
  if (!get(out.chars_.data(), chars_bytes)) {
    return Status::Corruption("strdict: truncated chars");
  }
  out.offsets_.resize(static_cast<size_t>(dsz) + 1);
  if (!get(out.offsets_.data(), out.offsets_.size() * sizeof(uint32_t))) {
    return Status::Corruption("strdict: truncated offsets");
  }
  if (out.offsets_.front() != 0 || out.offsets_.back() != chars_bytes ||
      !std::is_sorted(out.offsets_.begin(), out.offsets_.end())) {
    return Status::Corruption("strdict: bad offsets");
  }
  if (!get(&code_bytes, 8) ||
      code_bytes != static_cast<uint64_t>(end - p)) {
    return Status::Corruption("strdict: truncated codes");
  }
  if (code_bytes <
      PackedBytes(count, static_cast<int>(out.bits_)) + 8) {
    return Status::Corruption("strdict: code stream too short");
  }
  out.codes_.assign(p, p + code_bytes);
  // Reject out-of-range codes up front so CodeAt never indexes past the
  // dictionary at scan time.
  for (size_t i = 0; i < out.count_; ++i) {
    if (out.CodeAt(i) >= std::max<uint32_t>(dsz, 1)) {
      return Status::Corruption("strdict: bad code");
    }
  }
  return out;
}

}  // namespace mammoth::compress
