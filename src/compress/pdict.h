#ifndef MAMMOTH_COMPRESS_PDICT_H_
#define MAMMOTH_COMPRESS_PDICT_H_

#include <cstdint>
#include <vector>

#include "common/result.h"

namespace mammoth::compress {

/// PDICT — dictionary compression ([44], §5): distinct values go into a
/// per-stream dictionary; the column becomes bit-packed codes. Decode is a
/// shift-mask plus a gather from a (usually cache-resident) dictionary.
/// Fails with InvalidArgument when the column has more than 2^16 distinct
/// values (not dictionary-compressible at a useful ratio). The dictionary is
/// emitted in ascending value order, so code order equals value order and
/// constant predicates rewrite to code intervals; decoders accept both sorted
/// and legacy first-appearance dictionaries.
Status PdictEncode(const int32_t* values, size_t n,
                   std::vector<uint8_t>* out);
Status PdictDecode(const std::vector<uint8_t>& in, std::vector<int32_t>* out);

/// Decodes values [start, start+n): codes are fixed-width, so the range is
/// unpacked directly (true random access).
Status PdictDecodeRange(const std::vector<uint8_t>& in, size_t start,
                        size_t n, int32_t* out);

}  // namespace mammoth::compress

#endif  // MAMMOTH_COMPRESS_PDICT_H_
