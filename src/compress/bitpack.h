#ifndef MAMMOTH_COMPRESS_BITPACK_H_
#define MAMMOTH_COMPRESS_BITPACK_H_

#include <cstdint>
#include <cstring>
#include <vector>

namespace mammoth::compress {

/// Width-parameterized bit packing: the workhorse under PFOR and PDICT
/// (§5, [44]). Packs `n` values of `bits` significant bits each into a
/// little-endian bit stream. `bits` in [0, 32]; bits == 0 encodes a stream
/// of zeros in zero bytes.
inline void PackBits(const uint32_t* values, size_t n, int bits,
                     std::vector<uint8_t>* out) {
  if (bits == 0) return;
  const size_t start = out->size();
  out->resize(start + (n * bits + 7) / 8 + 8, 0);  // +8 slack for u64 writes
  uint8_t* base = out->data() + start;
  for (size_t i = 0; i < n; ++i) {
    const size_t bitpos = i * bits;
    uint64_t word;
    std::memcpy(&word, base + bitpos / 8, sizeof(word));
    word |= static_cast<uint64_t>(values[i]) << (bitpos % 8);
    std::memcpy(base + bitpos / 8, &word, sizeof(word));
  }
  out->resize(start + (n * bits + 7) / 8);
}

/// Unpacks `n` values of `bits` bits each. The source buffer must be
/// readable up to 8 bytes past the last touched bit (callers append blocks
/// into one buffer, so slack is naturally present; the final block's
/// decoder copies into a padded scratch first).
///
/// This is the hot loop the "<5 cycles per value" claim is about: one
/// unaligned load, one shift, one mask per value.
inline void UnpackBits(const uint8_t* src, size_t n, int bits,
                       uint32_t* out) {
  if (bits == 0) {
    std::memset(out, 0, n * sizeof(uint32_t));
    return;
  }
  const uint64_t mask =
      bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  for (size_t i = 0; i < n; ++i) {
    const size_t bitpos = i * bits;
    uint64_t word;
    std::memcpy(&word, src + bitpos / 8, sizeof(word));
    out[i] = static_cast<uint32_t>((word >> (bitpos % 8)) & mask);
  }
}

/// Bytes PackBits will produce for (n, bits).
inline size_t PackedBytes(size_t n, int bits) {
  return (n * static_cast<size_t>(bits) + 7) / 8;
}

/// 64-bit variant: packs `n` values of `bits` significant bits each,
/// `bits` in [0, 64]. A value can straddle the 8-byte window a single
/// unaligned u64 access covers, so writes and reads spill the ninth byte
/// explicitly when `bitpos % 8 + bits > 64`.
inline void PackBits64(const uint64_t* values, size_t n, int bits,
                       std::vector<uint8_t>* out) {
  if (bits == 0) return;
  const size_t start = out->size();
  out->resize(start + (n * bits + 7) / 8 + 16, 0);  // +16 slack for u64 writes
  uint8_t* base = out->data() + start;
  for (size_t i = 0; i < n; ++i) {
    const size_t bitpos = i * static_cast<size_t>(bits);
    const size_t byte = bitpos / 8;
    const int shift = static_cast<int>(bitpos % 8);
    const uint64_t v =
        bits == 64 ? values[i]
                   : values[i] & ((uint64_t{1} << bits) - 1);
    uint64_t word;
    std::memcpy(&word, base + byte, sizeof(word));
    word |= v << shift;
    std::memcpy(base + byte, &word, sizeof(word));
    if (shift + bits > 64) {
      base[byte + 8] |= static_cast<uint8_t>(v >> (64 - shift));
    }
  }
  out->resize(start + (n * bits + 7) / 8);
}

/// Unpacks `n` values of `bits` (in [0, 64]) bits each; the source must be
/// readable 9 bytes past the last touched bit (encoders leave slack).
inline void UnpackBits64(const uint8_t* src, size_t n, int bits,
                         uint64_t* out) {
  if (bits == 0) {
    std::memset(out, 0, n * sizeof(uint64_t));
    return;
  }
  const uint64_t mask =
      bits == 64 ? ~uint64_t{0} : ((uint64_t{1} << bits) - 1);
  for (size_t i = 0; i < n; ++i) {
    const size_t bitpos = i * static_cast<size_t>(bits);
    const size_t byte = bitpos / 8;
    const int shift = static_cast<int>(bitpos % 8);
    uint64_t word;
    std::memcpy(&word, src + byte, sizeof(word));
    uint64_t v = word >> shift;
    if (shift + bits > 64) {
      v |= static_cast<uint64_t>(src[byte + 8]) << (64 - shift);
    }
    out[i] = v & mask;
  }
}

}  // namespace mammoth::compress

#endif  // MAMMOTH_COMPRESS_BITPACK_H_
