#ifndef MAMMOTH_COMPRESS_COMPRESSED_KERNELS_H_
#define MAMMOTH_COMPRESS_COMPRESSED_KERNELS_H_

#include <cstdint>

#include "common/result.h"
#include "compress/compressed_bat.h"
#include "compress/dict_str.h"
#include "core/value.h"

namespace mammoth::compress {

/// Kernels that consume compressed blocks directly (Vertica-style "operate
/// on encoded data", PAPERS.md): RLE selects walk the run list and emit
/// whole candidate ranges, RLE aggregates fold value*run in O(runs), PDICT
/// predicates are rewritten into code space once and evaluated per packed
/// code, and dictionary-compressed string columns answer =, !=, <, <=, >,
/// >=, and LIKE without touching a heap.
///
/// Every kernel is bit-identical to decode-then-stock-kernel: same OIDs in
/// the same order, same result properties, same accumulator arithmetic
/// (integer sums fold in two's-complement exactly like the serial loop).
/// Callers test eligibility first and fall back to the decode path when a
/// kernel reports unsupported — the *Selectable* predicates below encode
/// the exact fallback matrix (DESIGN.md §13).

/// --- Eligibility -------------------------------------------------------
/// Sorted columns are excluded on purpose: the plain path answers them
/// with a binary search returning *dense* (payload-free) results, which a
/// materializing kernel cannot reproduce bit-identically, and which is
/// already faster than any run walk.
bool ThetaSelectableOnCompressed(const CompressedBat& comp, const Value& v,
                                 CmpOp op);
bool RangeSelectableOnCompressed(const CompressedBat& comp, const Value& lo,
                                 const Value& hi);
/// Global SUM/MIN/MAX folds: RLE (both widths) and PDICT.
bool AggregatableOnCompressed(const CompressedBat& comp);
/// String predicate shapes a sorted dictionary answers in code space
/// (everything ThetaSelect accepts on strings, including LIKE).
bool StrSelectableOnDict(const Value& v, CmpOp op);

/// --- Selects -----------------------------------------------------------
/// Evaluates the predicate over rows [begin, end) of the column and
/// returns the matching OIDs (`hseq` + row) ascending, stamped exactly
/// like a scan select result. `begin`/`end` let shared-scan chunks run the
/// kernel per chunk; whole-column callers pass (0, comp.Count()).
Result<BatPtr> CompressedThetaSelectRange(const CompressedBat& comp,
                                          const Value& v, CmpOp op,
                                          size_t begin, size_t end, Oid hseq);
Result<BatPtr> CompressedRangeSelectRange(const CompressedBat& comp,
                                          const Value& lo, const Value& hi,
                                          bool lo_incl, bool hi_incl,
                                          bool anti, size_t begin, size_t end,
                                          Oid hseq);
/// String select on a dictionary-compressed column, same contract.
Result<BatPtr> DictStrSelectRange(const StrDict& dict, const Value& v,
                                  CmpOp op, size_t begin, size_t end,
                                  Oid hseq);

/// --- Aggregates --------------------------------------------------------
/// Global (ungrouped) folds matching AggrSum/AggrMin/AggrMax output shapes
/// (SUM: one int64 row; MIN/MAX: one row of the column type, the
/// numeric_limits identity when the column is empty). COUNT needs no
/// kernel — it is Count().
Result<BatPtr> CompressedAggrSum(const CompressedBat& comp);
Result<BatPtr> CompressedAggrMin(const CompressedBat& comp);
Result<BatPtr> CompressedAggrMax(const CompressedBat& comp);

/// --- Stats -------------------------------------------------------------
/// Process-wide monotonic counters: how often execution stayed in
/// compressed space vs decoded, plus the bounded-project accounting
/// (SERVER STATUS rows; bench_compression reads them too).
struct KernelStats {
  uint64_t selects_direct = 0;    ///< selects answered on compressed data
  uint64_t selects_fallback = 0;  ///< selects that decoded first
  uint64_t aggrs_direct = 0;
  uint64_t aggrs_fallback = 0;
  uint64_t project_bounded = 0;        ///< bounded partial decodes
  uint64_t project_bounded_bytes = 0;  ///< bytes those decodes produced
  uint64_t project_full = 0;           ///< whole-column cache decodes
};
KernelStats GetKernelStats();
void ResetKernelStats();

/// Internal: counter bump points shared with compressed_exec.cc and the
/// interpreter's routing.
namespace stats {
void SelectDirect();
void SelectFallback();
void AggrDirect();
void AggrFallback();
void ProjectBounded(uint64_t bytes);
void ProjectFull();
}  // namespace stats

}  // namespace mammoth::compress

#endif  // MAMMOTH_COMPRESS_COMPRESSED_KERNELS_H_
