#ifndef MAMMOTH_STREAM_DATACELL_H_
#define MAMMOTH_STREAM_DATACELL_H_

#include <functional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/bat.h"
#include "core/value.h"

namespace mammoth::stream {

/// One stream event. The DataCell substrate fixes a simple sensor-style
/// schema (timestamp, key, value) — the paper's claim (§6.2) is about
/// *incremental bulk-event processing* on the relational kernel, not about
/// stream schemas.
struct Event {
  int64_t ts = 0;
  int32_t key = 0;
  double value = 0;
};

/// A basket ([21,23]): the append-only columnar staging area events land
/// in. Internally three BATs, so continuous queries run the ordinary bulk
/// kernels over basket slices.
class Basket {
 public:
  Basket();

  void Append(const Event& e);
  void AppendBatch(const Event* events, size_t n);

  size_t size() const { return ts_->Count(); }

  const BatPtr& ts() const { return ts_; }
  const BatPtr& key() const { return key_; }
  const BatPtr& value() const { return value_; }

  /// Drops the first `n` events (consumed by all queries). Cheap shift-free
  /// implementation: a start offset; Compact() reclaims memory.
  void Consume(size_t n) { start_ += n; }
  size_t consumed() const { return start_; }
  void Compact();

  /// Materialized BAT slice [from, to) of a field column (for the bulk
  /// kernels), relative to unconsumed events.
  BatPtr SliceTs(size_t from, size_t to) const;
  BatPtr SliceKey(size_t from, size_t to) const;
  BatPtr SliceValue(size_t from, size_t to) const;

  /// Unconsumed (pending) event count.
  size_t Pending() const { return ts_->Count() - start_; }

 private:
  BatPtr Slice(const BatPtr& col, size_t from, size_t to) const;
  BatPtr ts_, key_, value_;
  size_t start_ = 0;
};

/// Result row of a window evaluation.
struct WindowRow {
  int32_t key = 0;
  double sum = 0;
  int64_t count = 0;
  double min = 0;
  double max = 0;
};

/// A registered continuous query: over every tumbling count-window of
/// `window` events, filter value to [lo, hi] and aggregate per key.
/// `emit` is called once per completed window.
struct ContinuousQuery {
  size_t window = 1024;
  bool filtered = false;
  double lo = 0, hi = 0;
  std::function<void(int64_t window_id, const std::vector<WindowRow>&)> emit;
};

/// The DataCell engine (§6.2): events gather in the basket; Pump() drains
/// complete windows *in bulk* through the columnar kernels — the
/// "incremental bulk-event processing using the binary relational algebra
/// engine" the paper describes. Returns the number of windows emitted.
class DataCell {
 public:
  /// Registers a query; all queries share the basket (and its windows).
  void Register(ContinuousQuery query);

  Basket& basket() { return basket_; }

  /// Processes as many complete windows as are pending.
  Result<size_t> Pump();

  /// Total windows emitted so far.
  int64_t windows_emitted() const { return next_window_; }

 private:
  Basket basket_;
  std::vector<ContinuousQuery> queries_;
  int64_t next_window_ = 0;
};

/// Ground-truth reference: the same window aggregation computed one event
/// at a time with direct map updates. Used by tests to validate BulkWindow
/// and as the *lower bound* for any event-at-a-time engine.
std::vector<WindowRow> EventAtATimeWindow(const Event* events, size_t n,
                                          bool filtered, double lo,
                                          double hi);

/// Baseline for E11: a conventional stream engine's per-event path — every
/// event traverses a chain of virtual operators with an interpreted filter
/// predicate before reaching the aggregation state, the per-tuple overhead
/// the DataCell amortizes away by processing baskets in bulk (§6.2).
std::vector<WindowRow> InterpretedEventAtATimeWindow(const Event* events,
                                                     size_t n, bool filtered,
                                                     double lo, double hi);

/// The bulk implementation on BAT kernels, shared by DataCell::Pump.
Result<std::vector<WindowRow>> BulkWindow(const BatPtr& keys,
                                          const BatPtr& values, bool filtered,
                                          double lo, double hi);

}  // namespace mammoth::stream

#endif  // MAMMOTH_STREAM_DATACELL_H_
