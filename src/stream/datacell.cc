#include "stream/datacell.h"

#include <map>
#include <memory>

#include "core/group.h"
#include "core/project.h"
#include "core/select.h"

namespace mammoth::stream {

Basket::Basket() {
  ts_ = Bat::New(PhysType::kInt64);
  key_ = Bat::New(PhysType::kInt32);
  value_ = Bat::New(PhysType::kDouble);
}

void Basket::Append(const Event& e) {
  ts_->Append<int64_t>(e.ts);
  key_->Append<int32_t>(e.key);
  value_->Append<double>(e.value);
}

void Basket::AppendBatch(const Event* events, size_t n) {
  ts_->Reserve(ts_->Count() + n);
  key_->Reserve(key_->Count() + n);
  value_->Reserve(value_->Count() + n);
  for (size_t i = 0; i < n; ++i) Append(events[i]);
}

void Basket::Compact() {
  if (start_ == 0) return;
  auto compact = [&](BatPtr& col) {
    BatPtr fresh = Bat::New(col->type());
    const size_t remaining = col->Count() - start_;
    if (remaining > 0) {
      fresh->AppendRaw(
          static_cast<const uint8_t*>(col->tail().raw_data()) +
              start_ * col->tail().width(),
          remaining);
    }
    col = fresh;
  };
  compact(ts_);
  compact(key_);
  compact(value_);
  start_ = 0;
}

BatPtr Basket::Slice(const BatPtr& col, size_t from, size_t to) const {
  BatPtr out = Bat::New(col->type());
  const size_t begin = start_ + from;
  const size_t end = start_ + to;
  MAMMOTH_DCHECK(end <= col->Count(), "basket slice out of range");
  out->AppendRaw(static_cast<const uint8_t*>(col->tail().raw_data()) +
                     begin * col->tail().width(),
                 end - begin);
  return out;
}

BatPtr Basket::SliceTs(size_t from, size_t to) const {
  return Slice(ts_, from, to);
}
BatPtr Basket::SliceKey(size_t from, size_t to) const {
  return Slice(key_, from, to);
}
BatPtr Basket::SliceValue(size_t from, size_t to) const {
  return Slice(value_, from, to);
}

Result<std::vector<WindowRow>> BulkWindow(const BatPtr& keys,
                                          const BatPtr& values, bool filtered,
                                          double lo, double hi) {
  BatPtr k = keys, v = values;
  if (filtered) {
    MAMMOTH_ASSIGN_OR_RETURN(
        BatPtr hits, algebra::RangeSelect(values, nullptr, Value::Real(lo),
                                          Value::Real(hi)));
    MAMMOTH_ASSIGN_OR_RETURN(k, algebra::Project(hits, keys));
    MAMMOTH_ASSIGN_OR_RETURN(v, algebra::Project(hits, values));
  }
  MAMMOTH_ASSIGN_OR_RETURN(algebra::GroupResult g, algebra::Group(k));
  MAMMOTH_ASSIGN_OR_RETURN(BatPtr sums,
                           algebra::AggrSum(v, g.groups, g.ngroups));
  MAMMOTH_ASSIGN_OR_RETURN(BatPtr counts,
                           algebra::AggrCount(g.groups, g.ngroups, v->Count()));
  MAMMOTH_ASSIGN_OR_RETURN(BatPtr mins,
                           algebra::AggrMin(v, g.groups, g.ngroups));
  MAMMOTH_ASSIGN_OR_RETURN(BatPtr maxs,
                           algebra::AggrMax(v, g.groups, g.ngroups));
  MAMMOTH_ASSIGN_OR_RETURN(BatPtr gkeys, algebra::Project(g.extents, k));

  std::vector<WindowRow> rows(g.ngroups);
  for (size_t i = 0; i < g.ngroups; ++i) {
    rows[i].key = gkeys->ValueAt<int32_t>(i);
    rows[i].sum = sums->ValueAt<double>(i);
    rows[i].count = counts->ValueAt<int64_t>(i);
    rows[i].min = mins->ValueAt<double>(i);
    rows[i].max = maxs->ValueAt<double>(i);
  }
  return rows;
}

std::vector<WindowRow> EventAtATimeWindow(const Event* events, size_t n,
                                          bool filtered, double lo,
                                          double hi) {
  // Deliberately tuple-at-a-time: one ordered-map probe per event.
  std::map<int32_t, WindowRow> acc;
  for (size_t i = 0; i < n; ++i) {
    const Event& e = events[i];
    if (filtered && (e.value < lo || e.value > hi)) continue;
    auto [it, fresh] = acc.try_emplace(e.key);
    WindowRow& row = it->second;
    if (fresh) {
      row.key = e.key;
      row.min = e.value;
      row.max = e.value;
    }
    row.sum += e.value;
    row.count += 1;
    if (e.value < row.min) row.min = e.value;
    if (e.value > row.max) row.max = e.value;
  }
  std::vector<WindowRow> rows;
  rows.reserve(acc.size());
  for (auto& [key, row] : acc) rows.push_back(row);
  return rows;
}

namespace {

/// Minimal per-event operator chain of a conventional DSMS: each event is
/// dispatched through virtual Process() calls, with the filter predicate
/// evaluated by a tiny interpreted expression tree. This is the per-tuple
/// machinery the DataCell eliminates by processing baskets in bulk.
class EventOperator {
 public:
  virtual ~EventOperator() = default;
  virtual bool Process(const Event& e) = 0;
};

class EventPredicate {
 public:
  virtual ~EventPredicate() = default;
  virtual bool Eval(const Event& e) const = 0;
};

class RangePredicate final : public EventPredicate {
 public:
  RangePredicate(double lo, double hi) : lo_(lo), hi_(hi) {}
  bool Eval(const Event& e) const override {
    return e.value >= lo_ && e.value <= hi_;
  }

 private:
  double lo_, hi_;
};

class TruePredicate final : public EventPredicate {
 public:
  bool Eval(const Event&) const override { return true; }
};

class FilterOperator final : public EventOperator {
 public:
  FilterOperator(std::unique_ptr<EventPredicate> pred, EventOperator* next)
      : pred_(std::move(pred)), next_(next) {}
  bool Process(const Event& e) override {
    if (!pred_->Eval(e)) return false;
    return next_->Process(e);
  }

 private:
  std::unique_ptr<EventPredicate> pred_;
  EventOperator* next_;
};

class GroupAggOperator final : public EventOperator {
 public:
  bool Process(const Event& e) override {
    auto [it, fresh] = acc_.try_emplace(e.key);
    WindowRow& row = it->second;
    if (fresh) {
      row.key = e.key;
      row.min = e.value;
      row.max = e.value;
    }
    row.sum += e.value;
    row.count += 1;
    if (e.value < row.min) row.min = e.value;
    if (e.value > row.max) row.max = e.value;
    return true;
  }

  std::vector<WindowRow> Rows() const {
    std::vector<WindowRow> rows;
    rows.reserve(acc_.size());
    for (const auto& [key, row] : acc_) rows.push_back(row);
    return rows;
  }

 private:
  std::map<int32_t, WindowRow> acc_;
};

}  // namespace

std::vector<WindowRow> InterpretedEventAtATimeWindow(const Event* events,
                                                     size_t n, bool filtered,
                                                     double lo, double hi) {
  GroupAggOperator agg;
  std::unique_ptr<EventPredicate> pred;
  if (filtered) {
    pred = std::make_unique<RangePredicate>(lo, hi);
  } else {
    pred = std::make_unique<TruePredicate>();
  }
  FilterOperator filter(std::move(pred), &agg);
  EventOperator* root = &filter;
  for (size_t i = 0; i < n; ++i) root->Process(events[i]);
  return agg.Rows();
}

void DataCell::Register(ContinuousQuery query) {
  queries_.push_back(std::move(query));
}

Result<size_t> DataCell::Pump() {
  if (queries_.empty()) return size_t{0};
  // All queries share one window size in this engine version: the smallest
  // registered window drives consumption.
  size_t window = queries_[0].window;
  for (const ContinuousQuery& q : queries_) {
    window = std::min(window, q.window);
  }
  if (window == 0) return Status::InvalidArgument("window must be > 0");

  size_t emitted = 0;
  while (basket_.Pending() >= window) {
    const BatPtr keys = basket_.SliceKey(0, window);
    const BatPtr values = basket_.SliceValue(0, window);
    for (const ContinuousQuery& q : queries_) {
      MAMMOTH_ASSIGN_OR_RETURN(
          std::vector<WindowRow> rows,
          BulkWindow(keys, values, q.filtered, q.lo, q.hi));
      if (q.emit) q.emit(next_window_, rows);
    }
    basket_.Consume(window);
    ++next_window_;
    ++emitted;
  }
  basket_.Compact();
  return emitted;
}

}  // namespace mammoth::stream
