#ifndef MAMMOTH_REPL_SOURCE_H_
#define MAMMOTH_REPL_SOURCE_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "wal/wal.h"

namespace mammoth::repl {

/// Primary-side replication: tails the committed WAL and streams it to
/// subscribed replicas.
///
/// A replica connects to the normal query port, negotiates
/// kWireCapReplication, and sends kReplSubscribe; the front-end (epoll
/// reactor or thread-per-connection loop) then *detaches* the socket and
/// hands it to Adopt(). From there one sender thread per replica owns the
/// fd:
///
///   - it reads bytes [cursor, durable_lsn) straight from the segment
///     files (safe concurrently with the writer: the durable LSN only
///     covers fsynced bytes and always lands on frame boundaries),
///     re-verifies every CRC, and ships frame-aligned batches;
///   - when the subscriber's cursor predates the oldest retained segment
///     (a checkpoint GC'd it), it first ships the checkpoint snapshot
///     directory (kReplSnapBegin/kReplFile/kReplSnapEnd) and resumes
///     streaming from the checkpoint LSN;
///   - it drains kReplAck frames between sends, maintaining the
///     replica's acked LSN.
///
/// ### Semi-synchronous commits
///
/// With `semi_sync` (default on), WaitForAck(lsn) blocks a committing
/// session until at least one connected replica has *replayed* through
/// `lsn` — so killing the primary and promoting the most-caught-up
/// replica loses no acknowledged write. Zero connected replicas waive
/// the barrier (a dead replica must not wedge the primary), as does
/// `semi_sync_timeout_ms` against a subscriber that reads but never acks.
class ReplicationSource {
 public:
  struct Options {
    std::string dir;                    ///< the database directory
    size_t max_batch_bytes = 1u << 20;  ///< records per kReplRecords frame
    size_t snapshot_chunk_bytes = 4u << 20;
    bool semi_sync = true;
    int semi_sync_timeout_ms = 10000;
    int send_timeout_ms = 5000;  ///< SO_SNDTIMEO: drop wedged subscribers
  };

  ReplicationSource(wal::Wal* wal, Options options);
  ~ReplicationSource();
  ReplicationSource(const ReplicationSource&) = delete;
  ReplicationSource& operator=(const ReplicationSource&) = delete;

  /// Takes ownership of a subscribed socket (already past Hello/Caps/
  /// kReplSubscribe) and starts its sender thread. `leftover` is any
  /// bytes the front-end had read past the subscribe frame.
  Status Adopt(int fd, uint64_t start_lsn, std::string leftover);

  /// Semi-sync barrier (see class comment). Returns OK when the commit
  /// may be acknowledged. No-op when semi_sync is off.
  Status WaitForAck(uint64_t lsn);

  /// Disconnects every replica and joins the sender threads.
  void Stop();

  struct Stats {
    uint64_t replicas = 0;
    uint64_t min_shipped_lsn = 0;  ///< laggiest send cursor (0: none)
    uint64_t min_acked_lsn = 0;    ///< laggiest replayed ack (0: none)
    uint64_t lag_bytes = 0;        ///< durable_lsn - min acked (0: none)
    uint64_t snapshots_served = 0;
  };
  Stats stats() const;

 private:
  struct Replica {
    int fd = -1;
    uint64_t cursor = 0;  ///< next LSN to ship
    uint64_t acked = 0;   ///< replica's replayed LSN
    std::string inbuf;    ///< partial incoming ack frames
    bool gone = false;
    std::thread thread;
  };

  void SenderLoop(const std::shared_ptr<Replica>& rep);
  Status ShipBatch(const std::shared_ptr<Replica>& rep, uint64_t durable);
  Status ShipSnapshot(const std::shared_ptr<Replica>& rep);
  Status DrainAcks(const std::shared_ptr<Replica>& rep, int timeout_ms);

  wal::Wal* const wal_;
  const Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< acks + membership changes
  std::vector<std::shared_ptr<Replica>> replicas_;
  bool stopping_ = false;
  uint64_t snapshots_served_ = 0;
};

}  // namespace mammoth::repl

#endif  // MAMMOTH_REPL_SOURCE_H_
