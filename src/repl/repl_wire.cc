#include "repl/repl_wire.h"

#include <cstring>

namespace mammoth::repl {

namespace {

// Little-endian primitives, same wire discipline as server/wire.cc.

template <typename T>
void AppendInt(std::string* out, T v) {
  char buf[sizeof(T)];
  for (size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<char>((static_cast<uint64_t>(v) >> (8 * i)) & 0xff);
  }
  out->append(buf, sizeof(T));
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  template <typename T>
  bool ReadInt(T* v) {
    if (data_.size() - pos_ < sizeof(T)) return false;
    uint64_t acc = 0;
    for (size_t i = 0; i < sizeof(T); ++i) {
      acc |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
             << (8 * i);
    }
    pos_ += sizeof(T);
    *v = static_cast<T>(acc);
    return true;
  }

  bool ReadBytes(size_t n, std::string_view* out) {
    if (data_.size() - pos_ < n) return false;
    *out = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool done() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

Status Truncated(const char* what) {
  return Status::InvalidArgument(std::string("repl: truncated ") + what);
}

}  // namespace

// --- Subscribe ---------------------------------------------------------------

std::string EncodeSubscribe(const SubscribeRequest& req) {
  std::string out;
  AppendInt<uint64_t>(&out, req.start_lsn);
  return out;
}

Result<SubscribeRequest> DecodeSubscribe(std::string_view payload) {
  Reader r(payload);
  SubscribeRequest req;
  if (!r.ReadInt(&req.start_lsn) || !r.done()) return Truncated("subscribe");
  return req;
}

// --- Records -----------------------------------------------------------------

std::string EncodeRecords(uint64_t base_lsn, uint64_t source_durable_lsn,
                          std::string_view bytes) {
  std::string out;
  out.reserve(2 * sizeof(uint64_t) + bytes.size());
  AppendInt<uint64_t>(&out, base_lsn);
  AppendInt<uint64_t>(&out, source_durable_lsn);
  out.append(bytes);
  return out;
}

Result<RecordsBatch> DecodeRecords(std::string_view payload) {
  Reader r(payload);
  RecordsBatch batch;
  if (!r.ReadInt(&batch.base_lsn) || !r.ReadInt(&batch.source_durable_lsn)) {
    return Truncated("records batch");
  }
  batch.bytes = payload.substr(2 * sizeof(uint64_t));
  return batch;
}

// --- Ack ---------------------------------------------------------------------

std::string EncodeAck(const Ack& ack) {
  std::string out;
  AppendInt<uint64_t>(&out, ack.replayed_lsn);
  return out;
}

Result<Ack> DecodeAck(std::string_view payload) {
  Reader r(payload);
  Ack ack;
  if (!r.ReadInt(&ack.replayed_lsn) || !r.done()) return Truncated("ack");
  return ack;
}

// --- Snapshot transfer -------------------------------------------------------

std::string EncodeSnapBegin(const SnapBegin& begin) {
  std::string out;
  AppendInt<uint64_t>(&out, begin.snapshot_lsn);
  AppendInt<uint64_t>(&out, begin.next_txn_id);
  AppendInt<uint32_t>(&out, begin.nfiles);
  return out;
}

Result<SnapBegin> DecodeSnapBegin(std::string_view payload) {
  Reader r(payload);
  SnapBegin begin;
  if (!r.ReadInt(&begin.snapshot_lsn) || !r.ReadInt(&begin.next_txn_id) ||
      !r.ReadInt(&begin.nfiles) || !r.done()) {
    return Truncated("snapshot begin");
  }
  return begin;
}

std::string EncodeFileChunk(std::string_view name, uint64_t offset,
                            bool last, std::string_view data) {
  std::string out;
  out.reserve(sizeof(uint16_t) + name.size() + sizeof(uint64_t) + 1 +
              data.size());
  if (name.size() > UINT16_MAX) name = name.substr(0, UINT16_MAX);
  AppendInt<uint16_t>(&out, static_cast<uint16_t>(name.size()));
  out.append(name);
  AppendInt<uint64_t>(&out, offset);
  AppendInt<uint8_t>(&out, last ? 1 : 0);
  out.append(data);
  return out;
}

Result<FileChunk> DecodeFileChunk(std::string_view payload) {
  Reader r(payload);
  FileChunk chunk;
  uint16_t name_len = 0;
  if (!r.ReadInt(&name_len) || !r.ReadBytes(name_len, &chunk.name) ||
      !r.ReadInt(&chunk.offset) || !r.ReadInt(&chunk.last)) {
    return Truncated("file chunk");
  }
  const size_t header = sizeof(uint16_t) + name_len + sizeof(uint64_t) + 1;
  chunk.data = payload.substr(header);
  // Reject path traversal: snapshot file names are relative paths the
  // replica writes to its own disk.
  if (chunk.name.empty() || chunk.name.front() == '/' ||
      chunk.name.find("..") != std::string_view::npos) {
    return Status::InvalidArgument("repl: hostile snapshot file name");
  }
  return chunk;
}

std::string EncodeSnapEnd(const SnapEnd& end) {
  std::string out;
  AppendInt<uint64_t>(&out, end.snapshot_lsn);
  return out;
}

Result<SnapEnd> DecodeSnapEnd(std::string_view payload) {
  Reader r(payload);
  SnapEnd end;
  if (!r.ReadInt(&end.snapshot_lsn) || !r.done()) {
    return Truncated("snapshot end");
  }
  return end;
}

// --- WAL stream helpers -----------------------------------------------------

Result<size_t> FrameAlignedPrefix(std::string_view bytes, size_t max_bytes) {
  size_t pos = 0;
  while (bytes.size() - pos >= wal::kFrameHeaderBytes) {
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, bytes.data() + pos, sizeof(len));
    std::memcpy(&crc, bytes.data() + pos + sizeof(len), sizeof(crc));
    if (len > wal::kMaxRecordBytes) {
      return Status::Corruption("repl: implausible WAL frame length " +
                                std::to_string(len));
    }
    const size_t frame = wal::kFrameHeaderBytes + len;
    if (pos + frame > max_bytes) break;       // would exceed the budget
    if (pos + frame > bytes.size()) break;    // incomplete final frame
    const uint32_t actual =
        wal::Crc32(bytes.data() + pos + wal::kFrameHeaderBytes, len);
    if (actual != crc) {
      return Status::Corruption("repl: WAL frame CRC mismatch at offset " +
                                std::to_string(pos));
    }
    pos += frame;
  }
  return pos;
}

Result<std::vector<wal::Record>> DecodeShippedBatch(std::string_view bytes,
                                                    uint64_t base_lsn) {
  std::vector<wal::Record> records;
  size_t valid = 0;
  MAMMOTH_ASSIGN_OR_RETURN(
      wal::TailState tail,
      wal::DecodeFrames(bytes, base_lsn, /*last_segment=*/false, &records,
                        &valid));
  if (tail != wal::TailState::kClean || valid != bytes.size()) {
    // DecodeFrames only reports torn tails for last_segment; belt and
    // braces in case that contract ever loosens.
    return Status::Corruption("repl: shipped batch does not end on a frame");
  }
  return records;
}

}  // namespace mammoth::repl
