#ifndef MAMMOTH_REPL_REPL_WIRE_H_
#define MAMMOTH_REPL_REPL_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "wal/record.h"

namespace mammoth::repl {

/// Payload codecs for the replication frame types (FrameType::kReplSubscribe
/// .. kReplSnapEnd in server/wire.h). The framing layer (12-byte headers)
/// is shared with the query protocol; what ships inside kReplRecords is the
/// WAL's own byte stream — the same `[u32 len][u32 crc][payload]` frames
/// the primary fsynced, so the replica re-verifies every CRC and replays
/// through the identical wal::DecodeFrames / ApplyRecord machinery that
/// crash recovery uses.
///
/// All decoders are hostile-input safe: truncated or trailing bytes are
/// typed kInvalidArgument errors, a CRC-mutated record stream is typed
/// kCorruption — never a crash.

/// --- kReplSubscribe: replica -> primary -----------------------------------
/// Sent once after caps negotiation; the socket then belongs to the
/// primary's ReplicationSource. `start_lsn` is the replica's replayed LSN
/// (0 for a fresh replica): shipping resumes there, or a snapshot
/// bootstrap runs first when the primary has already GC'd that far back.
struct SubscribeRequest {
  uint64_t start_lsn = 0;
};
std::string EncodeSubscribe(const SubscribeRequest& req);
Result<SubscribeRequest> DecodeSubscribe(std::string_view payload);

/// --- kReplRecords: primary -> replica --------------------------------------
/// One frame-aligned byte range of the committed WAL stream.
///   base_lsn            logical offset of bytes[0]
///   source_durable_lsn  primary's durable LSN when the batch was cut
///                       (lets the replica report its own lag)
///   bytes               whole `[len][crc][payload]` WAL frames; may be
///                       empty (heartbeat carrying a fresher durable LSN)
struct RecordsBatch {
  uint64_t base_lsn = 0;
  uint64_t source_durable_lsn = 0;
  std::string_view bytes;  ///< view into the decoded payload
};
std::string EncodeRecords(uint64_t base_lsn, uint64_t source_durable_lsn,
                          std::string_view bytes);
Result<RecordsBatch> DecodeRecords(std::string_view payload);

/// --- kReplAck: replica -> primary ------------------------------------------
/// The replica's replayed LSN: every transaction whose commit record ends
/// at or below it has been applied. Drives the primary's acked-LSN
/// tracking and the semi-sync commit barrier.
struct Ack {
  uint64_t replayed_lsn = 0;
};
std::string EncodeAck(const Ack& ack);
Result<Ack> DecodeAck(std::string_view payload);

/// --- kReplSnapBegin / kReplFile / kReplSnapEnd ------------------------------
/// Snapshot bootstrap: when a subscriber's start LSN predates the oldest
/// retained segment, the primary ships its checkpoint snapshot directory
/// file-by-file; the replica loads it as its catalog and streaming
/// resumes at `snapshot_lsn`.
struct SnapBegin {
  uint64_t snapshot_lsn = 0;
  uint64_t next_txn_id = 1;  ///< CURRENT's txn counter (survives promote)
  uint32_t nfiles = 0;
};
std::string EncodeSnapBegin(const SnapBegin& begin);
Result<SnapBegin> DecodeSnapBegin(std::string_view payload);

struct FileChunk {
  std::string_view name;  ///< path relative to the snapshot directory
  uint64_t offset = 0;    ///< byte offset of `data` within the file
  uint8_t last = 0;       ///< 1 on the file's final chunk
  std::string_view data;
};
std::string EncodeFileChunk(std::string_view name, uint64_t offset,
                            bool last, std::string_view data);
Result<FileChunk> DecodeFileChunk(std::string_view payload);

struct SnapEnd {
  uint64_t snapshot_lsn = 0;
};
std::string EncodeSnapEnd(const SnapEnd& end);
Result<SnapEnd> DecodeSnapEnd(std::string_view payload);

/// --- WAL stream helpers -----------------------------------------------------

/// Returns the length of the longest prefix of `bytes` that is whole,
/// CRC-valid WAL frames and does not exceed `max_bytes`. A frame that is
/// completely present but fails its CRC (or claims an absurd length) is
/// typed kCorruption; an incomplete final frame simply ends the prefix.
Result<size_t> FrameAlignedPrefix(std::string_view bytes, size_t max_bytes);

/// Decodes a shipped batch into records. Unlike recovery of a tail
/// segment, a shipped batch has no licence to be torn: the primary only
/// ships whole frames, so truncation or a failed CRC anywhere is typed
/// kCorruption (satellite hostility contract: typed errors, no crashes).
Result<std::vector<wal::Record>> DecodeShippedBatch(std::string_view bytes,
                                                    uint64_t base_lsn);

}  // namespace mammoth::repl

#endif  // MAMMOTH_REPL_REPL_WIRE_H_
