#include "repl/source.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "repl/repl_wire.h"
#include "server/wire.h"

namespace mammoth::repl {

namespace fs = std::filesystem;

namespace {

Status SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("repl send: ") + strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SendFrame(int fd, server::FrameType type, std::string_view payload) {
  return SendAll(fd, server::EncodeFrame(type, payload));
}

/// One WAL segment file on disk, identified by the start LSN its
/// fixed-width filename encodes.
struct SegmentRef {
  uint64_t start_lsn = 0;
  std::string path;
};

std::vector<SegmentRef> ListSegments(const std::string& dir) {
  std::vector<SegmentRef> segs;
  std::error_code ec;
  fs::directory_iterator it(wal::WalSubdir(dir), ec);
  if (ec) return segs;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal_", 0) != 0 || name.size() < 24) continue;
    segs.push_back({std::strtoull(name.c_str() + 4, nullptr, 10),
                    entry.path().string()});
  }
  std::sort(segs.begin(), segs.end(),
            [](const SegmentRef& a, const SegmentRef& b) {
              return a.start_lsn < b.start_lsn;
            });
  return segs;
}

Result<std::string> ReadFileRange(const std::string& path, uint64_t offset,
                                  size_t n) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IOError("repl: open " + path);
  in.seekg(static_cast<std::streamoff>(offset));
  std::string bytes(n, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(n));
  if (in.gcount() != static_cast<std::streamsize>(n)) {
    return Status::IOError("repl: short read from " + path);
  }
  return bytes;
}

/// Minimal CURRENT parse (the full one lives in wal/db.cc's recovery).
struct CheckpointRef {
  uint64_t checkpoint_lsn = 0;
  std::string snapshot_dir;
  uint64_t next_txn_id = 1;
};

Result<CheckpointRef> ReadCheckpointRef(const std::string& dir) {
  std::ifstream in(wal::CurrentFilePath(dir));
  if (!in.is_open()) {
    return Status::Unavailable("repl: no checkpoint to bootstrap from");
  }
  CheckpointRef ref;
  std::string snap_name;
  if (!(in >> ref.checkpoint_lsn >> snap_name >> ref.next_txn_id)) {
    return Status::Corruption("repl: malformed CURRENT file in " + dir);
  }
  ref.snapshot_dir = dir + "/" + snap_name;
  return ref;
}

}  // namespace

ReplicationSource::ReplicationSource(wal::Wal* wal, Options options)
    : wal_(wal), options_(std::move(options)) {}

ReplicationSource::~ReplicationSource() { Stop(); }

Status ReplicationSource::Adopt(int fd, uint64_t start_lsn,
                                std::string leftover) {
  auto rep = std::make_shared<Replica>();
  rep->fd = fd;
  rep->cursor = start_lsn;
  rep->acked = start_lsn;
  rep->inbuf = std::move(leftover);

  // The epoll front-end hands the socket over non-blocking; the sender
  // thread uses plain blocking sends bounded by SO_SNDTIMEO instead.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0 && (flags & O_NONBLOCK) != 0) {
    ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);
  }
  struct timeval tv {};
  tv.tv_sec = options_.send_timeout_ms / 1000;
  tv.tv_usec = (options_.send_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) {
    ::close(fd);
    return Status::Unavailable("repl: source is stopping");
  }
  // Reap finished senders so a churning subscriber doesn't grow the list.
  for (auto it = replicas_.begin(); it != replicas_.end();) {
    if ((*it)->gone) {
      if ((*it)->thread.joinable()) (*it)->thread.join();
      it = replicas_.erase(it);
    } else {
      ++it;
    }
  }
  rep->thread = std::thread([this, rep] { SenderLoop(rep); });
  replicas_.push_back(rep);
  return Status::OK();
}

void ReplicationSource::Stop() {
  std::vector<std::shared_ptr<Replica>> reps;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    reps = replicas_;
    cv_.notify_all();
  }
  for (const auto& rep : reps) {
    ::shutdown(rep->fd, SHUT_RDWR);  // breaks a blocked poll/send
  }
  for (const auto& rep : reps) {
    if (rep->thread.joinable()) rep->thread.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  replicas_.clear();
}

Status ReplicationSource::WaitForAck(uint64_t lsn) {
  if (!options_.semi_sync) return Status::OK();
  std::unique_lock<std::mutex> lock(mu_);
  const auto satisfied = [&] {
    if (stopping_) return true;
    uint64_t best = 0;
    bool any = false;
    for (const auto& rep : replicas_) {
      if (rep->gone) continue;
      any = true;
      best = std::max(best, rep->acked);
    }
    // Zero live replicas waive the barrier: a dead replica must not
    // wedge the primary's commits.
    return !any || best >= lsn;
  };
  // A subscriber that reads but never acks is dropped by the send
  // timeout; the barrier timeout is the second line of defense, after
  // which the commit proceeds un-replicated rather than wedging.
  cv_.wait_for(lock, std::chrono::milliseconds(options_.semi_sync_timeout_ms),
               satisfied);
  return Status::OK();
}

ReplicationSource::Stats ReplicationSource::stats() const {
  Stats s;
  const uint64_t durable = wal_->stats().durable_lsn;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& rep : replicas_) {
    if (rep->gone) continue;
    ++s.replicas;
    s.min_shipped_lsn =
        s.replicas == 1 ? rep->cursor : std::min(s.min_shipped_lsn, rep->cursor);
    s.min_acked_lsn =
        s.replicas == 1 ? rep->acked : std::min(s.min_acked_lsn, rep->acked);
  }
  if (s.replicas > 0 && durable > s.min_acked_lsn) {
    s.lag_bytes = durable - s.min_acked_lsn;
  }
  s.snapshots_served = snapshots_served_;
  return s;
}

Status ReplicationSource::DrainAcks(const std::shared_ptr<Replica>& rep,
                                    int timeout_ms) {
  struct pollfd pfd {};
  pfd.fd = rep->fd;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0 && errno != EINTR) {
    return Status::IOError(std::string("repl poll: ") + strerror(errno));
  }
  if (ready > 0) {
    char buf[4096];
    for (;;) {
      const ssize_t n = ::recv(rep->fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n > 0) {
        rep->inbuf.append(buf, static_cast<size_t>(n));
        if (static_cast<size_t>(n) == sizeof(buf)) continue;
        break;
      }
      if (n == 0) return Status::Unavailable("repl: subscriber hung up");
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
      return Status::IOError(std::string("repl recv: ") + strerror(errno));
    }
  }
  // Decode every complete frame buffered so far.
  size_t off = 0;
  for (;;) {
    server::Frame frame;
    MAMMOTH_ASSIGN_OR_RETURN(
        size_t used, server::DecodeFrame(rep->inbuf.data() + off,
                                         rep->inbuf.size() - off, &frame));
    if (used == 0) break;
    off += used;
    if (frame.type == server::FrameType::kClose) {
      return Status::Unavailable("repl: subscriber closed the session");
    }
    if (frame.type != server::FrameType::kReplAck) {
      return Status::InvalidArgument("repl: unexpected frame from subscriber");
    }
    MAMMOTH_ASSIGN_OR_RETURN(Ack ack, DecodeAck(frame.payload));
    std::lock_guard<std::mutex> lock(mu_);
    if (ack.replayed_lsn > rep->acked) {
      rep->acked = ack.replayed_lsn;
      cv_.notify_all();
    }
  }
  if (off > 0) rep->inbuf.erase(0, off);
  return Status::OK();
}

Status ReplicationSource::ShipBatch(const std::shared_ptr<Replica>& rep,
                                    uint64_t durable) {
  const std::vector<SegmentRef> segs = ListSegments(options_.dir);
  if (segs.empty()) return Status::OK();
  if (rep->cursor < segs.front().start_lsn) {
    // The segment holding the cursor was GC'd by a checkpoint: the
    // subscriber needs a snapshot bootstrap first.
    return Status::NotFound("repl: cursor predates retained segments");
  }
  // The segment holding the cursor: greatest start <= cursor, or — when
  // the cursor sits exactly at that segment's end — its successor.
  size_t idx = segs.size();
  for (size_t i = 0; i < segs.size(); ++i) {
    if (segs[i].start_lsn <= rep->cursor) idx = i;
  }
  if (idx == segs.size()) return Status::OK();  // defensive
  for (; idx < segs.size(); ++idx) {
    std::error_code ec;
    const uint64_t file_size = fs::file_size(segs[idx].path, ec);
    if (ec) return Status::IOError("repl: stat " + segs[idx].path);
    const uint64_t in_seg = rep->cursor - segs[idx].start_lsn;
    const uint64_t payload =
        file_size > wal::kSegmentHeaderBytes
            ? file_size - wal::kSegmentHeaderBytes
            : 0;
    if (in_seg < payload) break;  // bytes available here
    if (idx + 1 == segs.size() || segs[idx + 1].start_lsn != rep->cursor) {
      return Status::OK();  // nothing durable to ship yet
    }
  }
  if (idx == segs.size()) return Status::OK();

  const SegmentRef& seg = segs[idx];
  const uint64_t in_seg = rep->cursor - seg.start_lsn;
  std::error_code ec;
  const uint64_t file_size = fs::file_size(seg.path, ec);
  if (ec) return Status::IOError("repl: stat " + seg.path);
  const uint64_t avail = file_size - wal::kSegmentHeaderBytes - in_seg;
  uint64_t want = std::min<uint64_t>(
      {avail, durable - rep->cursor, options_.max_batch_bytes});
  if (want == 0) return Status::OK();
  MAMMOTH_ASSIGN_OR_RETURN(
      std::string bytes,
      ReadFileRange(seg.path, wal::kSegmentHeaderBytes + in_seg, want));
  MAMMOTH_ASSIGN_OR_RETURN(size_t aligned,
                           FrameAlignedPrefix(bytes, bytes.size()));
  if (aligned == 0) {
    // A single record larger than the batch budget: ship it whole.
    if (bytes.size() < wal::kFrameHeaderBytes) return Status::OK();
    uint32_t len = 0;
    std::memcpy(&len, bytes.data(), sizeof(len));
    const uint64_t frame = wal::kFrameHeaderBytes + static_cast<uint64_t>(len);
    if (len > wal::kMaxRecordBytes ||
        frame > std::min<uint64_t>(avail, durable - rep->cursor)) {
      return Status::Corruption("repl: unframeable WAL range at lsn " +
                                std::to_string(rep->cursor));
    }
    MAMMOTH_ASSIGN_OR_RETURN(
        bytes,
        ReadFileRange(seg.path, wal::kSegmentHeaderBytes + in_seg, frame));
    MAMMOTH_ASSIGN_OR_RETURN(aligned, FrameAlignedPrefix(bytes, bytes.size()));
    if (aligned != bytes.size()) {
      return Status::Corruption("repl: oversized record failed verification");
    }
  }
  MAMMOTH_RETURN_IF_ERROR(
      SendFrame(rep->fd, server::FrameType::kReplRecords,
                EncodeRecords(rep->cursor, durable,
                              std::string_view(bytes).substr(0, aligned))));
  std::lock_guard<std::mutex> lock(mu_);
  rep->cursor += aligned;
  return Status::OK();
}

Status ReplicationSource::ShipSnapshot(const std::shared_ptr<Replica>& rep) {
  MAMMOTH_ASSIGN_OR_RETURN(CheckpointRef ref, ReadCheckpointRef(options_.dir));
  if (ref.checkpoint_lsn < rep->cursor) {
    return Status::Internal("repl: checkpoint older than subscriber cursor");
  }
  std::vector<std::string> files;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(ref.snapshot_dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->is_regular_file(ec)) {
      files.push_back(
          it->path().lexically_relative(ref.snapshot_dir).string());
    }
  }
  if (ec) {
    return Status::IOError("repl: walk " + ref.snapshot_dir + ": " +
                           ec.message());
  }
  SnapBegin begin;
  begin.snapshot_lsn = ref.checkpoint_lsn;
  begin.next_txn_id = ref.next_txn_id;
  begin.nfiles = static_cast<uint32_t>(files.size());
  MAMMOTH_RETURN_IF_ERROR(SendFrame(rep->fd, server::FrameType::kReplSnapBegin,
                                    EncodeSnapBegin(begin)));
  for (const std::string& name : files) {
    const std::string path = ref.snapshot_dir + "/" + name;
    const uint64_t size = fs::file_size(path, ec);
    if (ec) {
      // A newer checkpoint GC'd the snapshot mid-transfer; drop the
      // subscriber, it reconnects and bootstraps from the new one.
      return Status::IOError("repl: snapshot vanished mid-transfer: " + path);
    }
    uint64_t offset = 0;
    do {
      const size_t n = static_cast<size_t>(std::min<uint64_t>(
          size - offset, options_.snapshot_chunk_bytes));
      MAMMOTH_ASSIGN_OR_RETURN(std::string data,
                               ReadFileRange(path, offset, n));
      const bool last = offset + n == size;
      MAMMOTH_RETURN_IF_ERROR(
          SendFrame(rep->fd, server::FrameType::kReplFile,
                    EncodeFileChunk(name, offset, last, data)));
      offset += n;
    } while (offset < size);
  }
  SnapEnd end;
  end.snapshot_lsn = ref.checkpoint_lsn;
  MAMMOTH_RETURN_IF_ERROR(
      SendFrame(rep->fd, server::FrameType::kReplSnapEnd, EncodeSnapEnd(end)));
  std::lock_guard<std::mutex> lock(mu_);
  rep->cursor = ref.checkpoint_lsn;
  ++snapshots_served_;
  return Status::OK();
}

void ReplicationSource::SenderLoop(const std::shared_ptr<Replica>& rep) {
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) break;
    }
    if (!DrainAcks(rep, 0).ok()) break;
    const uint64_t durable = wal_->stats().durable_lsn;
    uint64_t cursor, acked;
    {
      std::lock_guard<std::mutex> lock(mu_);
      cursor = rep->cursor;
      acked = rep->acked;
    }
    if (cursor < durable) {
      Status st = ShipBatch(rep, durable);
      if (st.code() == StatusCode::kNotFound) st = ShipSnapshot(rep);
      if (!st.ok()) break;
    } else if (acked < cursor) {
      // Fully shipped but not fully replayed: block on the socket so an
      // ack releases the semi-sync barrier with no polling delay.
      if (!DrainAcks(rep, 50).ok()) break;
    } else {
      // Idle: wake as soon as a commit makes new bytes durable.
      (void)wal_->WaitDurablePast(cursor, 100);
    }
  }
  ::close(rep->fd);
  std::lock_guard<std::mutex> lock(mu_);
  rep->gone = true;
  cv_.notify_all();  // a vanished replica may release the commit barrier
}

}  // namespace mammoth::repl
