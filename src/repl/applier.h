#ifndef MAMMOTH_REPL_APPLIER_H_
#define MAMMOTH_REPL_APPLIER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "wal/record.h"

namespace mammoth::sql {
class Engine;
}

namespace mammoth::repl {

/// Replica-side replication: connects to a primary (`--replicate-from
/// host:port`), subscribes at its replayed LSN, and continuously replays
/// the shipped WAL stream into a live engine.
///
/// Replay goes through the same machinery as crash recovery: shipped
/// bytes are CRC-verified and decoded by wal::DecodeFrames, buffered per
/// transaction, and applied atomically under the engine's exclusive lock
/// when the commit record arrives (wal::ApplyRecord per op) — SELECTs
/// running on the replica see whole transactions or nothing. After each
/// applied batch the replica acks its replayed LSN, which feeds the
/// primary's semi-sync commit barrier.
///
/// When the primary has already GC'd the subscriber's LSN, the session
/// starts with a snapshot bootstrap: checkpoint files stream into
/// `scratch_dir`, are loaded with LoadCatalog, and atomically replace
/// the engine's catalog; streaming resumes at the checkpoint LSN.
///
/// The connection self-heals: any session error closes the socket and
/// reconnects (resubscribing at the replayed LSN) until Stop().
class ReplicaApplier {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    std::string scratch_dir;  ///< snapshot inbox (empty: under /tmp)
    int reconnect_ms = 200;
    int recv_timeout_ms = 500;
  };

  ReplicaApplier(sql::Engine* engine, Options options);
  ~ReplicaApplier();
  ReplicaApplier(const ReplicaApplier&) = delete;
  ReplicaApplier& operator=(const ReplicaApplier&) = delete;

  /// Marks the engine read-only and starts the apply thread.
  Status Start();

  /// Stops replication at a transaction boundary (transactions apply
  /// atomically, so joining the thread is one). Idempotent. The engine
  /// stays read-only: promotion is the server's business.
  void Stop();

  /// The LSN through which every committed transaction has been applied.
  uint64_t replayed_lsn() const {
    return replayed_lsn_.load(std::memory_order_acquire);
  }

  /// First unused transaction id (for the WAL a promoted primary opens).
  uint64_t next_txn_id() const {
    return next_txn_id_.load(std::memory_order_acquire);
  }

  struct Stats {
    bool connected = false;
    uint64_t replayed_lsn = 0;
    uint64_t source_durable_lsn = 0;  ///< primary's durable LSN, last seen
    uint64_t txns_applied = 0;
    uint64_t snapshots_received = 0;
  };
  Stats stats() const;

 private:
  void Run();
  Status Session();
  Status HandleRecords(std::string_view payload);
  Status ReceiveSnapshot(std::string_view begin_payload);
  Result<int> ConnectAndSubscribe();
  /// Reads one frame from fd_ (blocking, bounded by recv_timeout_ms per
  /// recv so Stop() is noticed); payload lands in *payload.
  Status ReadFrame(uint8_t* type, std::string* payload);

  sql::Engine* const engine_;
  const Options options_;

  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> connected_{false};
  std::atomic<uint64_t> replayed_lsn_{0};
  std::atomic<uint64_t> source_durable_lsn_{0};
  std::atomic<uint64_t> txns_applied_{0};
  std::atomic<uint64_t> snapshots_received_{0};
  std::atomic<uint64_t> next_txn_id_{1};

  // Session state (touched only by the apply thread; fd_ is atomic so
  // Stop() can shutdown() a blocked recv from outside).
  std::atomic<int> fd_{-1};
  std::string inbuf_;
  uint64_t recv_cursor_ = 0;          ///< next byte LSN expected
  bool in_txn_ = false;
  uint64_t txn_id_ = 0;
  std::vector<wal::Record> txn_ops_;  ///< ops of the open transaction

  mutable std::mutex stop_mu_;  ///< serializes Start/Stop
};

}  // namespace mammoth::repl

#endif  // MAMMOTH_REPL_APPLIER_H_
