#include "repl/applier.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "core/catalog.h"
#include "core/persist.h"
#include "repl/repl_wire.h"
#include "server/wire.h"
#include "sql/engine.h"

namespace mammoth::repl {

namespace fs = std::filesystem;

namespace {

Status SendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("repl send: ") + strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status SendFrame(int fd, server::FrameType type, std::string_view payload) {
  return SendAll(fd, server::EncodeFrame(type, payload));
}

}  // namespace

ReplicaApplier::ReplicaApplier(sql::Engine* engine, Options options)
    : engine_(engine), options_(std::move(options)) {}

ReplicaApplier::~ReplicaApplier() { Stop(); }

Status ReplicaApplier::Start() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  if (thread_.joinable()) return Status::OK();
  engine_->set_read_only(true);
  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Run(); });
  return Status::OK();
}

void ReplicaApplier::Stop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  stop_.store(true, std::memory_order_release);
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);  // break a blocked recv
  if (thread_.joinable()) thread_.join();
}

ReplicaApplier::Stats ReplicaApplier::stats() const {
  Stats s;
  s.connected = connected_.load(std::memory_order_acquire);
  s.replayed_lsn = replayed_lsn_.load(std::memory_order_acquire);
  s.source_durable_lsn = source_durable_lsn_.load(std::memory_order_acquire);
  s.txns_applied = txns_applied_.load(std::memory_order_acquire);
  s.snapshots_received = snapshots_received_.load(std::memory_order_acquire);
  return s;
}

void ReplicaApplier::Run() {
  while (!stop_.load(std::memory_order_acquire)) {
    Status st = Session();
    connected_.store(false, std::memory_order_release);
    const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) ::close(fd);
    // Half-applied transaction from a dropped session: resubscribing at
    // the replayed LSN re-ships it from its Begin record.
    in_txn_ = false;
    txn_ops_.clear();
    inbuf_.clear();
    if (stop_.load(std::memory_order_acquire)) break;
    (void)st;  // retry every failure; the primary may simply be restarting
    struct timespec tick {options_.reconnect_ms / 1000,
                          (options_.reconnect_ms % 1000) * 1000000};
    nanosleep(&tick, nullptr);
  }
}

Result<int> ReplicaApplier::ConnectAndSubscribe() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IOError("repl: socket() failed");
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("repl: bad primary address " +
                                   options_.host);
  }
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable(std::string("repl: connect: ") +
                               strerror(errno));
  }
  struct timeval tv {};
  tv.tv_sec = options_.recv_timeout_ms / 1000;
  tv.tv_usec = (options_.recv_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status ReplicaApplier::ReadFrame(uint8_t* type, std::string* payload) {
  for (;;) {
    server::Frame frame;
    MAMMOTH_ASSIGN_OR_RETURN(
        size_t used,
        server::DecodeFrame(inbuf_.data(), inbuf_.size(), &frame));
    if (used > 0) {
      inbuf_.erase(0, used);
      *type = static_cast<uint8_t>(frame.type);
      *payload = std::move(frame.payload);
      return Status::OK();
    }
    if (stop_.load(std::memory_order_acquire)) {
      return Status::Unavailable("repl: applier stopping");
    }
    char buf[64 * 1024];
    const ssize_t n =
        ::recv(fd_.load(std::memory_order_acquire), buf, sizeof(buf), 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) return Status::Unavailable("repl: primary hung up");
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      continue;  // recv timeout tick: lets the stop flag be noticed
    }
    return Status::IOError(std::string("repl recv: ") + strerror(errno));
  }
}

Status ReplicaApplier::Session() {
  MAMMOTH_ASSIGN_OR_RETURN(const int fd, ConnectAndSubscribe());
  fd_.store(fd, std::memory_order_release);
  // If Stop() raced the connect it missed our fd; honor the flag now.
  if (stop_.load(std::memory_order_acquire)) {
    return Status::Unavailable("repl: applier stopping");
  }
  inbuf_.clear();

  uint8_t type = 0;
  std::string payload;
  MAMMOTH_RETURN_IF_ERROR(ReadFrame(&type, &payload));
  if (type != static_cast<uint8_t>(server::FrameType::kHello)) {
    return Status::InvalidArgument("repl: expected Hello from primary");
  }
  MAMMOTH_ASSIGN_OR_RETURN(server::HelloInfo hello,
                           server::DecodeHello(payload));
  if ((hello.caps & server::kWireCapReplication) == 0) {
    return Status::Unsupported(
        "repl: primary does not offer replication (not durable?)");
  }
  MAMMOTH_RETURN_IF_ERROR(
      SendFrame(fd, server::FrameType::kCaps,
                server::EncodeCaps(server::kWireCapReplication)));
  SubscribeRequest sub;
  sub.start_lsn = replayed_lsn_.load(std::memory_order_acquire);
  recv_cursor_ = sub.start_lsn;
  MAMMOTH_RETURN_IF_ERROR(SendFrame(fd, server::FrameType::kReplSubscribe,
                                    EncodeSubscribe(sub)));
  connected_.store(true, std::memory_order_release);

  for (;;) {
    MAMMOTH_RETURN_IF_ERROR(ReadFrame(&type, &payload));
    switch (static_cast<server::FrameType>(type)) {
      case server::FrameType::kReplRecords:
        MAMMOTH_RETURN_IF_ERROR(HandleRecords(payload));
        break;
      case server::FrameType::kReplSnapBegin:
        MAMMOTH_RETURN_IF_ERROR(ReceiveSnapshot(payload));
        break;
      case server::FrameType::kError: {
        MAMMOTH_ASSIGN_OR_RETURN(server::WireError err,
                                 server::DecodeError(payload));
        return err.ToStatus();
      }
      case server::FrameType::kClose:
        return Status::Unavailable("repl: primary closed the session");
      default:
        return Status::InvalidArgument("repl: unexpected frame type " +
                                       std::to_string(type));
    }
  }
}

Status ReplicaApplier::HandleRecords(std::string_view payload) {
  MAMMOTH_ASSIGN_OR_RETURN(RecordsBatch batch, DecodeRecords(payload));
  source_durable_lsn_.store(batch.source_durable_lsn,
                            std::memory_order_release);
  if (batch.base_lsn != recv_cursor_) {
    return Status::InvalidArgument(
        "repl: batch at lsn " + std::to_string(batch.base_lsn) +
        ", expected " + std::to_string(recv_cursor_));
  }
  MAMMOTH_ASSIGN_OR_RETURN(std::vector<wal::Record> records,
                           DecodeShippedBatch(batch.bytes, batch.base_lsn));
  for (wal::Record& rec : records) {
    switch (rec.type) {
      case wal::RecordType::kBegin:
        if (in_txn_) {
          return Status::Corruption("repl: nested Begin at lsn " +
                                    std::to_string(rec.lsn));
        }
        in_txn_ = true;
        txn_id_ = rec.txn_id;
        txn_ops_.clear();
        break;
      case wal::RecordType::kCommit: {
        if (!in_txn_ || rec.txn_id != txn_id_) {
          return Status::Corruption("repl: commit without matching Begin");
        }
        MAMMOTH_RETURN_IF_ERROR(engine_->ApplyReplicatedTxn(txn_ops_));
        in_txn_ = false;
        txn_ops_.clear();
        replayed_lsn_.store(rec.end_lsn, std::memory_order_release);
        txns_applied_.fetch_add(1, std::memory_order_relaxed);
        uint64_t next = next_txn_id_.load(std::memory_order_acquire);
        while (rec.txn_id + 1 > next &&
               !next_txn_id_.compare_exchange_weak(next, rec.txn_id + 1)) {
        }
        break;
      }
      default:
        if (!in_txn_) {
          return Status::Corruption("repl: op outside a transaction at lsn " +
                                    std::to_string(rec.lsn));
        }
        txn_ops_.push_back(std::move(rec));
        break;
    }
  }
  recv_cursor_ += batch.bytes.size();
  Ack ack;
  ack.replayed_lsn = replayed_lsn_.load(std::memory_order_acquire);
  return SendFrame(fd_.load(std::memory_order_acquire),
                   server::FrameType::kReplAck, EncodeAck(ack));
}

Status ReplicaApplier::ReceiveSnapshot(std::string_view begin_payload) {
  MAMMOTH_ASSIGN_OR_RETURN(SnapBegin begin, DecodeSnapBegin(begin_payload));
  if (in_txn_) {
    return Status::Corruption("repl: snapshot inside a transaction");
  }
  std::string scratch = options_.scratch_dir;
  if (scratch.empty()) {
    scratch = (fs::temp_directory_path() /
               ("mammoth_repl_" + std::to_string(::getpid())))
                  .string();
  }
  const std::string inbox = scratch + "/snap_inbox";
  std::error_code ec;
  fs::remove_all(inbox, ec);
  fs::create_directories(inbox, ec);
  if (ec) return Status::IOError("repl: mkdir " + inbox + ": " + ec.message());

  uint8_t type = 0;
  std::string payload;
  for (;;) {
    MAMMOTH_RETURN_IF_ERROR(ReadFrame(&type, &payload));
    if (type == static_cast<uint8_t>(server::FrameType::kReplSnapEnd)) break;
    if (type != static_cast<uint8_t>(server::FrameType::kReplFile)) {
      return Status::InvalidArgument(
          "repl: unexpected frame inside snapshot transfer");
    }
    MAMMOTH_ASSIGN_OR_RETURN(FileChunk chunk, DecodeFileChunk(payload));
    const std::string path = inbox + "/" + std::string(chunk.name);
    fs::create_directories(fs::path(path).parent_path(), ec);
    ec.clear();
    const uint64_t existing =
        chunk.offset == 0 ? 0 : static_cast<uint64_t>(fs::file_size(path, ec));
    if (ec || chunk.offset != existing) {
      return Status::InvalidArgument("repl: snapshot chunk out of order");
    }
    std::ofstream out(path, chunk.offset == 0
                                ? std::ios::binary | std::ios::trunc
                                : std::ios::binary | std::ios::app);
    if (!out.is_open()) return Status::IOError("repl: open " + path);
    out.write(chunk.data.data(),
              static_cast<std::streamsize>(chunk.data.size()));
    if (!out.good()) return Status::IOError("repl: write " + path);
  }
  MAMMOTH_ASSIGN_OR_RETURN(SnapEnd end, DecodeSnapEnd(payload));
  if (end.snapshot_lsn != begin.snapshot_lsn) {
    return Status::InvalidArgument("repl: snapshot begin/end lsn mismatch");
  }
  MAMMOTH_ASSIGN_OR_RETURN(std::shared_ptr<Catalog> catalog,
                           LoadCatalog(inbox, /*use_mmap=*/false));
  MAMMOTH_RETURN_IF_ERROR(engine_->ResetCatalogForReplication(catalog));
  replayed_lsn_.store(begin.snapshot_lsn, std::memory_order_release);
  recv_cursor_ = begin.snapshot_lsn;
  uint64_t next = next_txn_id_.load(std::memory_order_acquire);
  while (begin.next_txn_id > next &&
         !next_txn_id_.compare_exchange_weak(next, begin.next_txn_id)) {
  }
  snapshots_received_.fetch_add(1, std::memory_order_relaxed);
  Ack ack;
  ack.replayed_lsn = begin.snapshot_lsn;
  return SendFrame(fd_.load(std::memory_order_acquire),
                   server::FrameType::kReplAck, EncodeAck(ack));
}

}  // namespace mammoth::repl
