#include "volcano/operators.h"

#include <cstring>
#include <limits>
#include <unordered_map>

#include "common/hash.h"
#include "common/logging.h"
#include "core/dispatch.h"

namespace mammoth::volcano {

namespace {

/// Reads field datums out of a BAT row by row.
Datum DatumAt(const Bat& b, size_t row) {
  switch (b.type()) {
    case PhysType::kStr:
      return Datum::Str(b.StringAt(row));
    case PhysType::kFloat:
      return Datum::Real(b.ValueAt<float>(row));
    case PhysType::kDouble:
      return Datum::Real(b.ValueAt<double>(row));
    case PhysType::kOid:
      return Datum::Int(static_cast<int64_t>(b.IsDenseTail()
                                                 ? b.OidAt(row)
                                                 : b.ValueAt<Oid>(row)));
    case PhysType::kBool:
    case PhysType::kInt8:
      return Datum::Int(b.ValueAt<int8_t>(row));
    case PhysType::kInt16:
      return Datum::Int(b.ValueAt<int16_t>(row));
    case PhysType::kInt32:
      return Datum::Int(b.ValueAt<int32_t>(row));
    case PhysType::kInt64:
      return Datum::Int(b.ValueAt<int64_t>(row));
  }
  return Datum();
}

class ScanIterator final : public Iterator {
 public:
  explicit ScanIterator(std::vector<BatPtr> columns)
      : columns_(std::move(columns)) {}

  void Open() override { row_ = 0; }

  bool Next(Tuple* out) override {
    if (columns_.empty() || row_ >= columns_[0]->Count()) return false;
    out->resize(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      (*out)[c] = DatumAt(*columns_[c], row_);
    }
    ++row_;
    return true;
  }

 private:
  std::vector<BatPtr> columns_;
  size_t row_ = 0;
};

class TableScanIterator final : public Iterator {
 public:
  explicit TableScanIterator(TablePtr table) : table_(std::move(table)) {}

  void Open() override {
    columns_.clear();
    for (size_t c = 0; c < table_->NumColumns(); ++c) {
      auto col = table_->ScanColumn(c);
      MAMMOTH_CHECK(col.ok(), "table scan column failure");
      columns_.push_back(*col);
    }
    live_ = table_->LiveCandidates();
    idx_ = 0;
  }

  bool Next(Tuple* out) override {
    if (idx_ >= live_->Count()) return false;
    const size_t row = static_cast<size_t>(live_->OidAt(idx_));
    out->resize(columns_.size());
    for (size_t c = 0; c < columns_.size(); ++c) {
      (*out)[c] = DatumAt(*columns_[c], row);
    }
    ++idx_;
    return true;
  }

 private:
  TablePtr table_;
  std::vector<BatPtr> columns_;
  BatPtr live_;
  size_t idx_ = 0;
};

class FilterIterator final : public Iterator {
 public:
  FilterIterator(IteratorPtr child, ExprPtr predicate)
      : child_(std::move(child)), predicate_(std::move(predicate)) {}

  void Open() override { child_->Open(); }
  void Close() override { child_->Close(); }

  bool Next(Tuple* out) override {
    while (child_->Next(out)) {
      if (predicate_->Eval(*out).i != 0) return true;
    }
    return false;
  }

 private:
  IteratorPtr child_;
  ExprPtr predicate_;
};

class MapIterator final : public Iterator {
 public:
  MapIterator(IteratorPtr child, std::vector<ExprPtr> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}

  void Open() override { child_->Open(); }
  void Close() override { child_->Close(); }

  bool Next(Tuple* out) override {
    if (!child_->Next(&scratch_)) return false;
    out->resize(exprs_.size());
    for (size_t i = 0; i < exprs_.size(); ++i) {
      (*out)[i] = exprs_[i]->Eval(scratch_);
    }
    return true;
  }

 private:
  IteratorPtr child_;
  std::vector<ExprPtr> exprs_;
  Tuple scratch_;
};

uint64_t DatumHash(const Datum& d) {
  switch (d.kind) {
    case Datum::Kind::kStr:
      return HashString(d.s);
    case Datum::Kind::kReal:
      return HashDouble(d.d);
    case Datum::Kind::kInt:
      return HashInt(static_cast<uint64_t>(d.i));
    case Datum::Kind::kNull:
      return 0;
  }
  return 0;
}

class HashJoinIterator final : public Iterator {
 public:
  HashJoinIterator(IteratorPtr left, IteratorPtr right, size_t lkey,
                   size_t rkey)
      : left_(std::move(left)),
        right_(std::move(right)),
        lkey_(lkey),
        rkey_(rkey) {}

  void Open() override {
    left_->Open();
    right_->Open();
    build_.clear();
    table_.clear();
    Tuple t;
    while (right_->Next(&t)) {
      MAMMOTH_CHECK(rkey_ < t.size(), "join key out of range");
      table_.emplace(DatumHash(t[rkey_]), build_.size());
      build_.push_back(t);
    }
    match_begin_ = match_end_ = {};
    have_probe_ = false;
  }

  void Close() override {
    left_->Close();
    right_->Close();
  }

  bool Next(Tuple* out) override {
    while (true) {
      if (have_probe_) {
        while (match_begin_ != match_end_) {
          const Tuple& b = build_[match_begin_->second];
          ++match_begin_;
          if (b[rkey_].EqualTo(probe_[lkey_])) {
            *out = probe_;
            out->insert(out->end(), b.begin(), b.end());
            return true;
          }
        }
        have_probe_ = false;
      }
      if (!left_->Next(&probe_)) return false;
      MAMMOTH_CHECK(lkey_ < probe_.size(), "join key out of range");
      std::tie(match_begin_, match_end_) =
          table_.equal_range(DatumHash(probe_[lkey_]));
      have_probe_ = true;
    }
  }

 private:
  IteratorPtr left_, right_;
  size_t lkey_, rkey_;
  std::vector<Tuple> build_;
  std::unordered_multimap<uint64_t, size_t> table_;
  Tuple probe_;
  bool have_probe_ = false;
  std::unordered_multimap<uint64_t, size_t>::iterator match_begin_,
      match_end_;
};

class AggregateIterator final : public Iterator {
 public:
  AggregateIterator(IteratorPtr child, std::vector<size_t> group_fields,
                    std::vector<AggSpec> aggs)
      : child_(std::move(child)),
        group_fields_(std::move(group_fields)),
        aggs_(std::move(aggs)) {}

  void Open() override {
    child_->Open();
    results_.clear();
    emit_ = 0;

    struct State {
      Tuple keys;
      std::vector<double> acc;
      std::vector<int64_t> count;
      std::vector<bool> is_real;
    };
    std::unordered_map<std::string, State> groups;

    Tuple t;
    while (child_->Next(&t)) {
      // Group key rendered to a byte string (simple, and this engine is the
      // baseline anyway).
      std::string key;
      for (size_t f : group_fields_) {
        const Datum& d = t[f];
        key.push_back(static_cast<char>(d.kind));
        if (d.kind == Datum::Kind::kStr) {
          key.append(d.s);
        } else {
          int64_t bits = d.i;
          if (d.kind == Datum::Kind::kReal) {
            std::memcpy(&bits, &d.d, sizeof(bits));
          }
          key.append(reinterpret_cast<const char*>(&bits), sizeof(bits));
        }
        key.push_back('\x1f');
      }
      auto [it, fresh] = groups.try_emplace(key);
      State& st = it->second;
      if (fresh) {
        for (size_t f : group_fields_) st.keys.push_back(t[f]);
        st.acc.assign(aggs_.size(), 0.0);
        st.count.assign(aggs_.size(), 0);
        st.is_real.assign(aggs_.size(), false);
        for (size_t a = 0; a < aggs_.size(); ++a) {
          if (aggs_[a].fn == AggSpec::Fn::kMin) {
            st.acc[a] = std::numeric_limits<double>::infinity();
          } else if (aggs_[a].fn == AggSpec::Fn::kMax) {
            st.acc[a] = -std::numeric_limits<double>::infinity();
          }
        }
      }
      for (size_t a = 0; a < aggs_.size(); ++a) {
        const AggSpec& spec = aggs_[a];
        if (spec.fn == AggSpec::Fn::kCount) {
          st.count[a] += 1;
          continue;
        }
        const Datum& d = t[spec.field];
        if (d.kind == Datum::Kind::kReal) st.is_real[a] = true;
        const double v = d.AsReal();
        switch (spec.fn) {
          case AggSpec::Fn::kSum:
          case AggSpec::Fn::kAvg:
            st.acc[a] += v;
            st.count[a] += 1;
            break;
          case AggSpec::Fn::kMin:
            if (v < st.acc[a]) st.acc[a] = v;
            break;
          case AggSpec::Fn::kMax:
            if (v > st.acc[a]) st.acc[a] = v;
            break;
          case AggSpec::Fn::kCount:
            break;
        }
      }
    }

    for (auto& [key, st] : groups) {
      Tuple out = st.keys;
      for (size_t a = 0; a < aggs_.size(); ++a) {
        switch (aggs_[a].fn) {
          case AggSpec::Fn::kCount:
            out.push_back(Datum::Int(st.count[a]));
            break;
          case AggSpec::Fn::kAvg:
            out.push_back(Datum::Real(
                st.count[a] == 0 ? 0.0 : st.acc[a] / st.count[a]));
            break;
          case AggSpec::Fn::kSum:
            out.push_back(st.is_real[a]
                              ? Datum::Real(st.acc[a])
                              : Datum::Int(static_cast<int64_t>(st.acc[a])));
            break;
          case AggSpec::Fn::kMin:
          case AggSpec::Fn::kMax:
            out.push_back(st.is_real[a]
                              ? Datum::Real(st.acc[a])
                              : Datum::Int(static_cast<int64_t>(st.acc[a])));
            break;
        }
      }
      results_.push_back(std::move(out));
    }
  }

  void Close() override { child_->Close(); }

  bool Next(Tuple* out) override {
    if (emit_ >= results_.size()) return false;
    *out = results_[emit_++];
    return true;
  }

 private:
  IteratorPtr child_;
  std::vector<size_t> group_fields_;
  std::vector<AggSpec> aggs_;
  std::vector<Tuple> results_;
  size_t emit_ = 0;
};

class LimitIterator final : public Iterator {
 public:
  LimitIterator(IteratorPtr child, size_t limit)
      : child_(std::move(child)), limit_(limit) {}

  void Open() override {
    child_->Open();
    produced_ = 0;
  }
  void Close() override { child_->Close(); }

  bool Next(Tuple* out) override {
    if (produced_ >= limit_) return false;
    if (!child_->Next(out)) return false;
    ++produced_;
    return true;
  }

 private:
  IteratorPtr child_;
  size_t limit_;
  size_t produced_ = 0;
};

}  // namespace

IteratorPtr MakeScan(std::vector<BatPtr> columns) {
  return std::make_unique<ScanIterator>(std::move(columns));
}

IteratorPtr MakeTableScan(const TablePtr& table) {
  return std::make_unique<TableScanIterator>(table);
}

IteratorPtr MakeFilter(IteratorPtr child, ExprPtr predicate) {
  return std::make_unique<FilterIterator>(std::move(child),
                                          std::move(predicate));
}

IteratorPtr MakeMap(IteratorPtr child, std::vector<ExprPtr> exprs) {
  return std::make_unique<MapIterator>(std::move(child), std::move(exprs));
}

IteratorPtr MakeHashJoin(IteratorPtr left, IteratorPtr right,
                         size_t left_key_field, size_t right_key_field) {
  return std::make_unique<HashJoinIterator>(
      std::move(left), std::move(right), left_key_field, right_key_field);
}

IteratorPtr MakeAggregate(IteratorPtr child, std::vector<size_t> group_fields,
                          std::vector<AggSpec> aggs) {
  return std::make_unique<AggregateIterator>(
      std::move(child), std::move(group_fields), std::move(aggs));
}

IteratorPtr MakeLimit(IteratorPtr child, size_t limit) {
  return std::make_unique<LimitIterator>(std::move(child), limit);
}

std::vector<Tuple> Collect(Iterator* root) {
  std::vector<Tuple> out;
  root->Open();
  Tuple t;
  while (root->Next(&t)) out.push_back(t);
  root->Close();
  return out;
}

}  // namespace mammoth::volcano
