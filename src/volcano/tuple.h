#ifndef MAMMOTH_VOLCANO_TUPLE_H_
#define MAMMOTH_VOLCANO_TUPLE_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace mammoth::volcano {

/// One field of an in-flight tuple. A small tagged union — string payloads
/// point into the underlying BAT heaps and are not copied, so the measured
/// slowdown of this engine is interpretation overhead, not gratuitous
/// copying.
struct Datum {
  enum class Kind : uint8_t { kInt, kReal, kStr, kNull } kind = Kind::kNull;
  int64_t i = 0;
  double d = 0;
  std::string_view s;

  static Datum Int(int64_t v) {
    Datum x;
    x.kind = Kind::kInt;
    x.i = v;
    return x;
  }
  static Datum Real(double v) {
    Datum x;
    x.kind = Kind::kReal;
    x.d = v;
    return x;
  }
  static Datum Str(std::string_view v) {
    Datum x;
    x.kind = Kind::kStr;
    x.s = v;
    return x;
  }

  double AsReal() const { return kind == Kind::kInt ? static_cast<double>(i) : d; }
  int64_t AsInt() const { return kind == Kind::kReal ? static_cast<int64_t>(d) : i; }

  bool EqualTo(const Datum& o) const {
    if (kind == Kind::kStr || o.kind == Kind::kStr) {
      return kind == Kind::kStr && o.kind == Kind::kStr && s == o.s;
    }
    if (kind == Kind::kReal || o.kind == Kind::kReal) {
      return AsReal() == o.AsReal();
    }
    return i == o.i;
  }
};

/// A tuple is a row of fields; operators communicate one of these per
/// Next() call — the paper's "recursive series of method calls ... to
/// produce a single tuple" (§3).
using Tuple = std::vector<Datum>;

}  // namespace mammoth::volcano

#endif  // MAMMOTH_VOLCANO_TUPLE_H_
