#include "volcano/expr.h"

#include "common/logging.h"

namespace mammoth::volcano {

namespace {

class ColumnRefExpr final : public Expr {
 public:
  explicit ColumnRefExpr(size_t index) : index_(index) {}
  Datum Eval(const Tuple& t) const override {
    MAMMOTH_DCHECK(index_ < t.size(), "column ref out of range");
    return t[index_];
  }

 private:
  size_t index_;
};

class ConstExpr final : public Expr {
 public:
  explicit ConstExpr(const Value& v) {
    if (v.is_str()) {
      storage_ = v.AsStr();
      datum_ = Datum::Str(storage_);
    } else if (v.is_real()) {
      datum_ = Datum::Real(v.AsReal());
    } else {
      datum_ = Datum::Int(v.AsInt());
    }
  }
  Datum Eval(const Tuple&) const override { return datum_; }

 private:
  std::string storage_;
  Datum datum_;
};

class ArithExpr final : public Expr {
 public:
  ArithExpr(algebra::ArithOp op, ExprPtr l, ExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}

  Datum Eval(const Tuple& t) const override {
    const Datum a = l_->Eval(t);
    const Datum b = r_->Eval(t);
    const bool real =
        a.kind == Datum::Kind::kReal || b.kind == Datum::Kind::kReal;
    using algebra::ArithOp;
    if (real) {
      const double x = a.AsReal(), y = b.AsReal();
      switch (op_) {
        case ArithOp::kAdd:
          return Datum::Real(x + y);
        case ArithOp::kSub:
          return Datum::Real(x - y);
        case ArithOp::kMul:
          return Datum::Real(x * y);
        case ArithOp::kDiv:
          return Datum::Real(x / y);
        case ArithOp::kMod:
          break;
      }
      return Datum();
    }
    const int64_t x = a.i, y = b.i;
    switch (op_) {
      case ArithOp::kAdd:
        return Datum::Int(x + y);
      case ArithOp::kSub:
        return Datum::Int(x - y);
      case ArithOp::kMul:
        return Datum::Int(x * y);
      case ArithOp::kDiv:
        return y == 0 ? Datum() : Datum::Int(x / y);
      case ArithOp::kMod:
        return y == 0 ? Datum() : Datum::Int(x % y);
    }
    return Datum();
  }

 private:
  algebra::ArithOp op_;
  ExprPtr l_, r_;
};

class CmpExpr final : public Expr {
 public:
  CmpExpr(CmpOp op, ExprPtr l, ExprPtr r)
      : op_(op), l_(std::move(l)), r_(std::move(r)) {}

  Datum Eval(const Tuple& t) const override {
    const Datum a = l_->Eval(t);
    const Datum b = r_->Eval(t);
    bool res;
    if (a.kind == Datum::Kind::kStr && b.kind == Datum::Kind::kStr) {
      res = op_ == CmpOp::kLike ? LikeMatch(a.s, b.s)
                                : ApplyCmp(op_, a.s, b.s);
    } else if (a.kind == Datum::Kind::kReal || b.kind == Datum::Kind::kReal) {
      res = ApplyCmp(op_, a.AsReal(), b.AsReal());
    } else {
      res = ApplyCmp(op_, a.i, b.i);
    }
    return Datum::Int(res ? 1 : 0);
  }

 private:
  CmpOp op_;
  ExprPtr l_, r_;
};

class LogicalExpr final : public Expr {
 public:
  LogicalExpr(bool is_and, ExprPtr l, ExprPtr r)
      : is_and_(is_and), l_(std::move(l)), r_(std::move(r)) {}

  Datum Eval(const Tuple& t) const override {
    const bool a = l_->Eval(t).i != 0;
    if (is_and_ && !a) return Datum::Int(0);
    if (!is_and_ && a) return Datum::Int(1);
    return Datum::Int(r_->Eval(t).i != 0 ? 1 : 0);
  }

 private:
  bool is_and_;
  ExprPtr l_, r_;
};

}  // namespace

ExprPtr ColumnRef(size_t index) {
  return std::make_shared<ColumnRefExpr>(index);
}

ExprPtr Const(const Value& v) { return std::make_shared<ConstExpr>(v); }

ExprPtr Arith(algebra::ArithOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<ArithExpr>(op, std::move(l), std::move(r));
}

ExprPtr Cmp(CmpOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<CmpExpr>(op, std::move(l), std::move(r));
}

ExprPtr And(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(true, std::move(l), std::move(r));
}

ExprPtr Or(ExprPtr l, ExprPtr r) {
  return std::make_shared<LogicalExpr>(false, std::move(l), std::move(r));
}

}  // namespace mammoth::volcano
