#ifndef MAMMOTH_VOLCANO_EXPR_H_
#define MAMMOTH_VOLCANO_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/calc.h"
#include "core/value.h"
#include "volcano/tuple.h"

namespace mammoth::volcano {

class Expr;
using ExprPtr = std::shared_ptr<Expr>;

/// Interpreted expression tree — the "expression interpreter in the
/// critical runtime code-path" that §3 blames for tuple-at-a-time overhead.
/// Every evaluation is a virtual call per node per tuple, on purpose: this
/// is the baseline the BAT algebra is measured against.
class Expr {
 public:
  virtual ~Expr() = default;
  virtual Datum Eval(const Tuple& t) const = 0;
};

/// Reads field `index` of the input tuple.
ExprPtr ColumnRef(size_t index);

/// A constant.
ExprPtr Const(const Value& v);

/// Arithmetic node: add/sub/mul/div on numeric operands.
ExprPtr Arith(algebra::ArithOp op, ExprPtr l, ExprPtr r);

/// Comparison node: yields Int(0/1).
ExprPtr Cmp(CmpOp op, ExprPtr l, ExprPtr r);

/// Logical and/or over Int(0/1) operands.
ExprPtr And(ExprPtr l, ExprPtr r);
ExprPtr Or(ExprPtr l, ExprPtr r);

}  // namespace mammoth::volcano

#endif  // MAMMOTH_VOLCANO_EXPR_H_
