#ifndef MAMMOTH_VOLCANO_OPERATORS_H_
#define MAMMOTH_VOLCANO_OPERATORS_H_

#include <memory>
#include <vector>

#include "core/bat.h"
#include "core/table.h"
#include "volcano/expr.h"
#include "volcano/tuple.h"

namespace mammoth::volcano {

/// The classic iterator interface: Open / Next / Close, one tuple per call
/// through a virtual dispatch — the execution paradigm §3 contrasts with
/// the BAT algebra's bulk operators.
class Iterator {
 public:
  virtual ~Iterator() = default;
  virtual void Open() = 0;
  /// Produces the next tuple into *out; returns false at end-of-stream.
  virtual bool Next(Tuple* out) = 0;
  virtual void Close() {}
};

using IteratorPtr = std::unique_ptr<Iterator>;

/// Full scan of a set of column BATs (one tuple assembled per row).
IteratorPtr MakeScan(std::vector<BatPtr> columns);

/// Scan of a Table's visible rows (merged deltas, deletes skipped).
IteratorPtr MakeTableScan(const TablePtr& table);

/// Filters child tuples by a boolean expression.
IteratorPtr MakeFilter(IteratorPtr child, ExprPtr predicate);

/// Computes one output field per expression.
IteratorPtr MakeMap(IteratorPtr child, std::vector<ExprPtr> exprs);

/// In-memory hash join: builds on the right child, probes with the left;
/// output tuple = left fields ++ right fields.
IteratorPtr MakeHashJoin(IteratorPtr left, IteratorPtr right,
                         size_t left_key_field, size_t right_key_field);

/// Aggregate specification for MakeAggregate.
struct AggSpec {
  enum class Fn : uint8_t { kSum, kCount, kMin, kMax, kAvg } fn;
  size_t field = 0;  // input field (ignored for kCount)
};

/// Hash aggregation: one output tuple per distinct combination of the
/// `group_fields`, fields ordered group keys first, then aggregates.
IteratorPtr MakeAggregate(IteratorPtr child, std::vector<size_t> group_fields,
                          std::vector<AggSpec> aggs);

/// Passes through the first `limit` tuples.
IteratorPtr MakeLimit(IteratorPtr child, size_t limit);

/// Drains an iterator tree, returning all produced tuples.
std::vector<Tuple> Collect(Iterator* root);

}  // namespace mammoth::volcano

#endif  // MAMMOTH_VOLCANO_OPERATORS_H_
