#ifndef MAMMOTH_COST_MODEL_H_
#define MAMMOTH_COST_MODEL_H_

#include <cstddef>
#include <vector>

#include "cost/hardware.h"

namespace mammoth::cost {

/// The unified memory cost model of §4.4 ([26,24,27]): data structures are
/// abstracted as byte regions, algorithms as compounds of a few basic
/// access patterns, and the cost is the per-level sum
///     T_mem = sum_i (Ms_i * ls_i + Mr_i * lr_i)
/// of sequential and random misses Ms/Mr scored with their latencies.

/// Predicted misses of one pattern at one cache level.
struct LevelMisses {
  double sequential = 0;
  double random = 0;
};

/// Misses across all levels plus TLB (TLB misses are scored randomly).
struct MissProfile {
  std::vector<LevelMisses> per_level;
  double tlb = 0;

  MissProfile& operator+=(const MissProfile& o);
};

/// Converts misses into nanoseconds under a profile.
double ScoreNs(const HardwareProfile& hw, const MissProfile& misses);

/// --- Basic access patterns ------------------------------------------------

/// s_trav: one sequential traversal over a region of `bytes`.
MissProfile SeqTraversal(const HardwareProfile& hw, size_t bytes);

/// rr_acc: `accesses` independent random accesses into a region of `bytes`.
/// If the region fits a level, only compulsory (first-touch) misses remain
/// at that level; otherwise the miss probability is 1 - capacity/region.
MissProfile RandomAccess(const HardwareProfile& hw, size_t bytes,
                         size_t accesses);

/// Interleaved scatter: writing `bytes` spread over `regions` concurrently
/// advancing sequential cursors (one radix-cluster pass). Sequential-like
/// while `regions` fits the level's line budget (and the TLB), thrashing
/// once it does not — the effect Figure 2 / §4.2 is about.
MissProfile ScatterRegions(const HardwareProfile& hw, size_t bytes,
                           size_t regions);

/// --- Operator models --------------------------------------------------------

/// Sequential scan+predicate over n tuples of `width` bytes.
double ScanCostNs(const HardwareProfile& hw, size_t n, size_t width);

/// Bucket-chained hash join: build over `inner` tuples, probe with `outer`
/// (tuple payload `width` + ~8B bucket overhead per inner tuple).
double HashJoinCostNs(const HardwareProfile& hw, size_t outer, size_t inner,
                      size_t width);

/// Multi-pass radix-cluster of n tuples of `width` bytes with the given
/// per-pass bit counts.
double RadixClusterCostNs(const HardwareProfile& hw, size_t n, size_t width,
                          const std::vector<int>& bits_per_pass);

/// Full partitioned hash join: cluster both sides on `bits` in `passes`
/// passes, then per-partition hash join.
double PartitionedJoinCostNs(const HardwareProfile& hw, size_t outer,
                             size_t inner, size_t width, int bits,
                             int passes);

/// Post-projection strategies (§4.3 / E5): naive positional fetch makes
/// `n` random accesses into a `nvalues * width` byte column.
double NaiveProjectionCostNs(const HardwareProfile& hw, size_t n,
                             size_t nvalues, size_t width);

/// Radix-decluster replaces them with ~3 passes over (rank, value) pairs
/// plus two cache-bounded scatters.
double DeclusterProjectionCostNs(const HardwareProfile& hw, size_t n,
                                 size_t nvalues, size_t width);

/// Model-driven tuning (the "automated tuning task" of §4.4): the
/// (bits, passes) minimizing PartitionedJoinCostNs.
struct RadixPlan {
  int bits = 0;
  int passes = 1;
  double predicted_ns = 0;
};
RadixPlan PlanRadixJoin(const HardwareProfile& hw, size_t outer, size_t inner,
                        size_t width, int max_bits = 20, int max_passes = 4);

}  // namespace mammoth::cost

#endif  // MAMMOTH_COST_MODEL_H_
