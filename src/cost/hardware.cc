#include "cost/hardware.h"

#include <cstdio>

namespace mammoth::cost {

HardwareProfile HardwareProfile::Default() {
  HardwareProfile p;
  p.levels = {
      {"L1", 32 << 10, 64, 1.0, 2.0},
      {"L2", 256 << 10, 64, 3.0, 8.0},
      {"L3", 8 << 20, 64, 10.0, 60.0},
  };
  p.tlb_entries = 64;
  p.page_bytes = 4096;
  p.tlb_miss_ns = 20.0;
  p.mlp = 6.0;
  return p;
}

HardwareProfile HardwareProfile::Pentium4Era() {
  HardwareProfile p;
  // Numbers in the ballpark of a 2002-2004 Pentium4 Xeon: small caches and
  // a ~300-cycle DRAM access with no overlap between misses.
  p.levels = {
      {"L1", 8 << 10, 64, 2.0, 10.0},
      {"L2", 512 << 10, 128, 25.0, 150.0},
  };
  p.tlb_entries = 64;
  p.page_bytes = 4096;
  p.tlb_miss_ns = 100.0;
  p.mlp = 1.0;  // in-order-ish memory system: one outstanding miss
  return p;
}

std::string HardwareProfile::ToString() const {
  std::string out;
  char buf[128];
  for (const CacheLevel& l : levels) {
    std::snprintf(buf, sizeof(buf), "%s: %zuKB line=%zuB seq=%.1fns rand=%.1fns\n",
                  l.name.c_str(), l.capacity_bytes >> 10, l.line_bytes,
                  l.seq_miss_ns, l.rand_miss_ns);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "TLB: %zu entries, page=%zuB, miss=%.1fns\n",
                tlb_entries, page_bytes, tlb_miss_ns);
  out += buf;
  return out;
}

}  // namespace mammoth::cost
