#ifndef MAMMOTH_COST_HARDWARE_H_
#define MAMMOTH_COST_HARDWARE_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mammoth::cost {

/// One level of the memory hierarchy as seen by the unified hardware model
/// of §4.4 ([26,24]): capacity, transfer-unit (line) size, and the miss
/// latencies for sequential and random access. The TLB is modeled as just
/// another level whose "lines" are pages.
struct CacheLevel {
  std::string name;
  size_t capacity_bytes = 0;
  size_t line_bytes = 64;
  double seq_miss_ns = 0;   ///< latency charged per sequential miss
  double rand_miss_ns = 0;  ///< latency charged per random miss
};

/// The machine description the cost functions consume. Levels are ordered
/// from smallest/fastest to largest/slowest; the TLB is carried separately
/// because its capacity is in *entries*, not bytes.
struct HardwareProfile {
  std::vector<CacheLevel> levels;
  size_t tlb_entries = 64;
  size_t page_bytes = 4096;
  double tlb_miss_ns = 20.0;

  /// Memory-level parallelism: how many independent cache misses the core
  /// overlaps. The single most important hardware change since the paper's
  /// era — it divides the effective cost of *independent* random accesses
  /// and decides whether cache-avoiding algorithms (radix-decluster) still
  /// beat direct gathers (E5). Dependent chains (pointer chasing, bucket
  /// chains) get no benefit.
  double mlp = 1.0;

  /// A typical commodity x86 box (32KB L1, 256KB L2, 8MB L3), used when no
  /// calibration has been run.
  static HardwareProfile Default();

  /// The class of machine the paper's experiments ran on (§4.3 mentions a
  /// Pentium4 Xeon with 512KB L2): tiny caches, 64-entry TLB, high miss
  /// latencies and essentially no memory-level parallelism. Used to
  /// evaluate era-dependence of algorithm trade-offs (E5/E6).
  static HardwareProfile Pentium4Era();

  std::string ToString() const;
};

}  // namespace mammoth::cost

#endif  // MAMMOTH_COST_HARDWARE_H_
