#include "cost/calibrator.h"

#include <algorithm>
#include <fstream>
#include <string>
#include <numeric>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"

namespace mammoth::cost {

namespace {

/// Builds a random Hamiltonian cycle over `n` slots (Sattolo's algorithm),
/// so chasing `i = next[i]` visits every slot once per lap in random order.
std::vector<uint32_t> RandomCycle(size_t n, Rng* rng) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (size_t i = n - 1; i > 0; --i) {
    const size_t j = rng->Uniform(i);  // j < i: guarantees a single cycle
    std::swap(perm[i], perm[j]);
  }
  std::vector<uint32_t> next(n);
  for (size_t i = 0; i + 1 < n; ++i) next[perm[i]] = perm[i + 1];
  next[perm[n - 1]] = perm[0];
  return next;
}

}  // namespace

double MeasureRandomLatencyNs(size_t bytes, size_t iterations) {
  const size_t stride = 64;  // one slot per cache line
  const size_t n = std::max<size_t>(bytes / stride, 16);
  Rng rng(12345);
  // Lay the chase out one uint32 per line to avoid spatial locality.
  std::vector<uint32_t> cycle = RandomCycle(n, &rng);
  std::vector<uint32_t> arena(n * (stride / sizeof(uint32_t)));
  const size_t scale = stride / sizeof(uint32_t);
  for (size_t i = 0; i < n; ++i) arena[i * scale] = cycle[i] * scale;

  // Warm-up lap.
  uint32_t p = 0;
  for (size_t i = 0; i < n; ++i) p = arena[p];

  WallTimer timer;
  for (size_t i = 0; i < iterations; ++i) p = arena[p];
  const double ns = timer.ElapsedSeconds() * 1e9 / iterations;
  // Defeat dead-code elimination.
  volatile uint32_t sink = p;
  (void)sink;
  return ns;
}

double MeasureSequentialLatencyNs(size_t bytes, size_t iterations) {
  const size_t n = std::max<size_t>(bytes / sizeof(uint64_t), 1024);
  std::vector<uint64_t> arena(n, 1);
  uint64_t sum = 0;
  // Warm-up.
  for (size_t i = 0; i < n; ++i) sum += arena[i];
  WallTimer timer;
  size_t done = 0;
  while (done < iterations) {
    for (size_t i = 0; i < n; ++i) sum += arena[i];
    done += n;
  }
  const double ns = timer.ElapsedSeconds() * 1e9 / done;
  volatile uint64_t sink = sum;
  (void)sink;
  return ns;
}

double MeasureGatherLatencyNs(size_t bytes, size_t iterations) {
  const size_t stride = 64;
  const size_t n = std::max<size_t>(bytes / stride, 16);
  Rng rng(777);
  // Independent random indexes: the core can keep many loads in flight.
  std::vector<uint32_t> idx(iterations);
  for (auto& i : idx) i = static_cast<uint32_t>(rng.Uniform(n));
  std::vector<uint64_t> arena(n * (stride / sizeof(uint64_t)), 1);
  const size_t scale = stride / sizeof(uint64_t);
  uint64_t sum = 0;
  for (size_t i = 0; i < std::min<size_t>(iterations, n); ++i) {
    sum += arena[idx[i] * scale];  // warm-up
  }
  WallTimer timer;
  for (size_t i = 0; i < iterations; ++i) sum += arena[idx[i] * scale];
  const double ns = timer.ElapsedSeconds() * 1e9 / iterations;
  volatile uint64_t sink = sum;
  (void)sink;
  return ns;
}

namespace {

/// Last-level cache capacity from sysfs; 0 when unavailable. Matters on
/// hosts with very large shared LLCs, where assuming "8MB L3" makes every
/// model verdict about cache-resident working sets wrong.
size_t DetectLlcBytes() {
  for (int idx = 4; idx >= 0; --idx) {
    const std::string path = "/sys/devices/system/cpu/cpu0/cache/index" +
                             std::to_string(idx) + "/size";
    std::ifstream f(path);
    if (!f) continue;
    size_t value = 0;
    char unit = 0;
    f >> value >> unit;
    if (!f || value == 0) continue;
    if (unit == 'K' || unit == 'k') return value << 10;
    if (unit == 'M' || unit == 'm') return value << 20;
    return value;
  }
  return 0;
}

}  // namespace

HardwareProfile Calibrate() {
  HardwareProfile p = HardwareProfile::Default();
  const size_t llc = DetectLlcBytes();
  if (llc > 0) p.levels.back().capacity_bytes = llc;
  // The "RAM" working set must exceed the (possibly huge) LLC.
  const size_t ram_ws =
      std::max<size_t>(256 << 20, 2 * p.levels.back().capacity_bytes);

  // Measure the random-access latency ladder.
  struct Point {
    size_t bytes;
    double ns;
  };
  std::vector<Point> ladder;
  for (size_t kb : {16, 64, 128, 512, 2048, 8192, 32768}) {
    ladder.push_back({kb << 10, MeasureRandomLatencyNs(kb << 10, 1 << 18)});
  }
  // One point inside the (possibly huge) LLC and one beyond it.
  const size_t llc_ws = p.levels.back().capacity_bytes / 2;
  if (llc_ws > ladder.back().bytes) {
    ladder.push_back({llc_ws, MeasureRandomLatencyNs(llc_ws, 1 << 18)});
  }
  const double ram_latency = MeasureRandomLatencyNs(ram_ws, 1 << 18);
  ladder.push_back({ram_ws, ram_latency});

  // Install *incremental* latencies: the model sums per-level miss costs,
  // so each level carries the latency it adds on top of the levels below.
  auto latency_at = [&](size_t bytes) {
    for (const Point& pt : ladder) {
      if (pt.bytes >= bytes) return pt.ns;
    }
    return ladder.back().ns;
  };
  if (p.levels.size() >= 3) {
    const double l1_miss = latency_at(p.levels[1].capacity_bytes / 2);
    const double l2_miss = latency_at(p.levels[2].capacity_bytes / 2);
    p.levels[0].rand_miss_ns = l1_miss;
    p.levels[1].rand_miss_ns = std::max(1.0, l2_miss - l1_miss);
    p.levels[2].rand_miss_ns = std::max(1.0, ram_latency - l2_miss);
  }
  // Sequential bandwidth: per-line cost of streaming a RAM-sized region.
  const double seq_per_elem = MeasureSequentialLatencyNs(64 << 20, 1 << 22);
  const double seq_per_line = seq_per_elem * (64.0 / sizeof(uint64_t));
  for (CacheLevel& l : p.levels) {
    l.seq_miss_ns = seq_per_line / static_cast<double>(p.levels.size());
  }
  // Memory-level parallelism: dependent chase vs independent gather at a
  // beyond-LLC working set.
  const double gather = MeasureGatherLatencyNs(ram_ws, 1 << 18);
  p.mlp = gather > 0 ? std::max(1.0, ram_latency / gather) : 1.0;
  return p;
}

}  // namespace mammoth::cost
