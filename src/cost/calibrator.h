#ifndef MAMMOTH_COST_CALIBRATOR_H_
#define MAMMOTH_COST_CALIBRATOR_H_

#include <cstddef>

#include "cost/hardware.h"

namespace mammoth::cost {

/// Runtime micro-measurements in the spirit of the Calibrator tool that
/// accompanied [26,24]: the cost model's inputs are *measured*, not assumed,
/// so the model self-adapts to the machine it runs on (no knobs, §6.1).

/// Average latency (ns) of one dependent random access within a working set
/// of `bytes`, measured by pointer-chasing a shuffled cycle. Dependent loads
/// defeat the prefetcher and the out-of-order window.
double MeasureRandomLatencyNs(size_t bytes, size_t iterations = 1 << 20);

/// Average per-element cost (ns) of streaming through `bytes` sequentially.
double MeasureSequentialLatencyNs(size_t bytes, size_t iterations = 1 << 22);

/// Average latency (ns) of one *independent* random access (a gather the
/// out-of-order core can overlap), within a working set of `bytes`. The
/// ratio chase/gather estimates the machine's memory-level parallelism.
double MeasureGatherLatencyNs(size_t bytes, size_t iterations = 1 << 20);

/// Probes a ladder of working-set sizes and derives a 2-3 level
/// HardwareProfile by locating latency steps. Falls back to
/// HardwareProfile::Default() capacities when the steps are too noisy to
/// segment, but always installs the measured latencies.
HardwareProfile Calibrate();

}  // namespace mammoth::cost

#endif  // MAMMOTH_COST_CALIBRATOR_H_
