#include "cost/model.h"

#include <algorithm>
#include <cmath>

#include "common/bitutil.h"
#include "common/logging.h"
#include "join/radix_cluster.h"

namespace mammoth::cost {

MissProfile& MissProfile::operator+=(const MissProfile& o) {
  if (per_level.size() < o.per_level.size()) {
    per_level.resize(o.per_level.size());
  }
  for (size_t i = 0; i < o.per_level.size(); ++i) {
    per_level[i].sequential += o.per_level[i].sequential;
    per_level[i].random += o.per_level[i].random;
  }
  tlb += o.tlb;
  return *this;
}

double ScoreNs(const HardwareProfile& hw, const MissProfile& misses) {
  double ns = 0;
  const size_t n = std::min(hw.levels.size(), misses.per_level.size());
  for (size_t i = 0; i < n; ++i) {
    ns += misses.per_level[i].sequential * hw.levels[i].seq_miss_ns;
    ns += misses.per_level[i].random * hw.levels[i].rand_miss_ns;
  }
  ns += misses.tlb * hw.tlb_miss_ns;
  return ns;
}

MissProfile SeqTraversal(const HardwareProfile& hw, size_t bytes) {
  MissProfile m;
  m.per_level.resize(hw.levels.size());
  for (size_t i = 0; i < hw.levels.size(); ++i) {
    m.per_level[i].sequential =
        static_cast<double>(bytes) / hw.levels[i].line_bytes;
  }
  // Sequential page walk: one TLB fill per page, cheap and mostly hidden;
  // charge a token fraction.
  m.tlb = 0.1 * static_cast<double>(bytes) / hw.page_bytes;
  return m;
}

MissProfile RandomAccess(const HardwareProfile& hw, size_t bytes,
                         size_t accesses) {
  // Independent accesses overlap up to hw.mlp misses; the *effective* miss
  // count is divided accordingly (dependent chains must not use this
  // pattern — model them as accesses with mlp forced to 1).
  const double mlp = hw.mlp < 1.0 ? 1.0 : hw.mlp;
  MissProfile m;
  m.per_level.resize(hw.levels.size());
  const double region = static_cast<double>(bytes);
  for (size_t i = 0; i < hw.levels.size(); ++i) {
    const CacheLevel& l = hw.levels[i];
    const double compulsory =
        std::min<double>(static_cast<double>(accesses), region / l.line_bytes);
    double capacity = 0;
    if (region > static_cast<double>(l.capacity_bytes)) {
      const double miss_prob = 1.0 - static_cast<double>(l.capacity_bytes) /
                                         region;
      capacity = std::max<double>(0.0, static_cast<double>(accesses) -
                                           compulsory) *
                 miss_prob;
    }
    m.per_level[i].random = (compulsory + capacity) / mlp;
  }
  // TLB: reach = entries * page.
  const double tlb_reach =
      static_cast<double>(hw.tlb_entries) * hw.page_bytes;
  const double tlb_compulsory =
      std::min<double>(static_cast<double>(accesses), region / hw.page_bytes);
  double tlb_capacity = 0;
  if (region > tlb_reach) {
    tlb_capacity =
        std::max<double>(0.0, static_cast<double>(accesses) - tlb_compulsory) *
        (1.0 - tlb_reach / region);
  }
  m.tlb = (tlb_compulsory + tlb_capacity) / mlp;
  return m;
}

MissProfile ScatterRegions(const HardwareProfile& hw, size_t bytes,
                           size_t regions) {
  MissProfile m;
  m.per_level.resize(hw.levels.size());
  const double lines_written = static_cast<double>(bytes);
  for (size_t i = 0; i < hw.levels.size(); ++i) {
    const CacheLevel& l = hw.levels[i];
    const double seq_misses = lines_written / l.line_bytes;
    const size_t line_budget = l.capacity_bytes / l.line_bytes;
    if (regions <= line_budget) {
      // One open line per region fits: behaves like a sequential write.
      m.per_level[i].sequential += seq_misses;
    } else {
      // Thrashing: a fraction of writes lose their line before finishing
      // it. Writes per line = line/width is unknown here; charge per-write
      // granularity via the region overflow ratio.
      const double keep =
          static_cast<double>(line_budget) / static_cast<double>(regions);
      m.per_level[i].sequential += seq_misses * keep;
      // Each evicted open line costs a random (re-)miss per subsequent
      // write that would have hit it. Approximate: writes happen every 8
      // bytes.
      const double writes = static_cast<double>(bytes) / 8.0;
      m.per_level[i].random += writes * (1.0 - keep);
    }
  }
  if (regions > hw.tlb_entries) {
    const double writes = static_cast<double>(bytes) / 8.0;
    m.tlb += writes * (1.0 - static_cast<double>(hw.tlb_entries) /
                                 static_cast<double>(regions));
  } else {
    m.tlb += 0.1 * static_cast<double>(bytes) / hw.page_bytes;
  }
  return m;
}

double ScanCostNs(const HardwareProfile& hw, size_t n, size_t width) {
  return ScoreNs(hw, SeqTraversal(hw, n * width));
}

double HashJoinCostNs(const HardwareProfile& hw, size_t outer, size_t inner,
                      size_t width) {
  MissProfile m;
  // Build: sequential read of inner + random insert into the table region.
  const size_t table_bytes = inner * (width + 8);
  m += SeqTraversal(hw, inner * width);
  m += RandomAccess(hw, table_bytes, inner);
  // Probe: sequential read of outer + random lookups into the table.
  m += SeqTraversal(hw, outer * width);
  m += RandomAccess(hw, table_bytes, outer);
  return ScoreNs(hw, m);
}

double RadixClusterCostNs(const HardwareProfile& hw, size_t n, size_t width,
                          const std::vector<int>& bits_per_pass) {
  MissProfile m;
  size_t regions = 1;
  for (int bits : bits_per_pass) {
    regions <<= bits;
    // Each pass reads everything sequentially (twice: histogram + scatter
    // read) and scatters everything into `regions_this_pass` concurrently
    // open regions per source cluster. The number of concurrently open
    // write regions is 2^bits (per source cluster processed one at a time).
    m += SeqTraversal(hw, 2 * n * width);
    m += ScatterRegions(hw, n * width, size_t{1} << bits);
  }
  return ScoreNs(hw, m);
}

double PartitionedJoinCostNs(const HardwareProfile& hw, size_t outer,
                             size_t inner, size_t width, int bits,
                             int passes) {
  double ns = 0;
  if (bits > 0) {
    const std::vector<int> plan = radix::SplitBits(bits, passes);
    ns += RadixClusterCostNs(hw, outer, width + 8, plan);
    ns += RadixClusterCostNs(hw, inner, width + 8, plan);
  }
  // Join per partition: inner partition + its hash table as the randomly
  // accessed region.
  const size_t h = size_t{1} << bits;
  const size_t inner_part = std::max<size_t>(inner / h, 1);
  const size_t outer_part = std::max<size_t>(outer / h, 1);
  MissProfile m;
  const size_t table_bytes = inner_part * (width + 8);
  m += SeqTraversal(hw, inner_part * width);
  m += RandomAccess(hw, table_bytes, inner_part);
  m += SeqTraversal(hw, outer_part * width);
  m += RandomAccess(hw, table_bytes, outer_part);
  ns += static_cast<double>(h) * ScoreNs(hw, m);
  // CPU work term: hashing + compares, ~1.5ns per tuple per pass + join.
  ns += 1.5 * (static_cast<double>(outer + inner) *
               (bits > 0 ? static_cast<double>(passes) : 0.0)) +
        2.0 * static_cast<double>(outer + inner);
  return ns;
}

double NaiveProjectionCostNs(const HardwareProfile& hw, size_t n,
                             size_t nvalues, size_t width) {
  MissProfile m;
  m += SeqTraversal(hw, n * 8);          // read the join-index positions
  m += RandomAccess(hw, nvalues * width, n);  // fetch values
  m += SeqTraversal(hw, n * width);      // write the output
  return ScoreNs(hw, m);
}

double DeclusterProjectionCostNs(const HardwareProfile& hw, size_t n,
                                 size_t nvalues, size_t width) {
  // The algorithm tunes its cluster counts to the protected cache level:
  // the last on-chip level, whose misses cost a full memory access.
  const size_t cache = hw.levels.back().capacity_bytes;
  const size_t pair = width + 4;  // (rank, value)-ish unit

  MissProfile m;
  // Phase A: multi-pass radix-cluster of (rank, pos) pairs by position so
  // each position cluster covers <= cache bytes of the value column.
  const int bits_v = static_cast<int>(
      CeilLog2(std::max<size_t>(1, nvalues * width / cache) + 1));
  const std::vector<int> plan_a = radix::SplitBits(std::max(bits_v, 1), 2);
  for (int b : plan_a) {
    m += SeqTraversal(hw, 2 * n * pair);
    m += ScatterRegions(hw, n * pair, size_t{1} << b);
  }
  // Phase B: fetch values cluster by cluster — cache-local by
  // construction, so it behaves sequentially.
  m += SeqTraversal(hw, 2 * n * pair);
  // Phase C: one-pass decluster of (rank, value) pairs on output rank,
  // then a region-local scatter into the (cache-sized) output regions.
  const int bits_o = static_cast<int>(
      CeilLog2(std::max<size_t>(1, n * width / cache) + 1));
  m += SeqTraversal(hw, 2 * n * pair);
  m += ScatterRegions(hw, n * pair, size_t{1} << std::max(bits_o, 1));
  m += SeqTraversal(hw, 2 * n * width);  // region-local scatter + write-out
  return ScoreNs(hw, m);
}

RadixPlan PlanRadixJoin(const HardwareProfile& hw, size_t outer, size_t inner,
                        size_t width, int max_bits, int max_passes) {
  RadixPlan best;
  best.predicted_ns = PartitionedJoinCostNs(hw, outer, inner, width, 0, 1);
  for (int bits = 1; bits <= max_bits; ++bits) {
    for (int passes = 1; passes <= max_passes && passes <= bits; ++passes) {
      const double ns =
          PartitionedJoinCostNs(hw, outer, inner, width, bits, passes);
      if (ns < best.predicted_ns) {
        best.bits = bits;
        best.passes = passes;
        best.predicted_ns = ns;
      }
    }
  }
  return best;
}

}  // namespace mammoth::cost
