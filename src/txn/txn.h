#ifndef MAMMOTH_TXN_TXN_H_
#define MAMMOTH_TXN_TXN_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_set>

namespace mammoth::txn {

/// Commit stamps (the version layer between the WAL's transaction
/// boundaries and the delta-BAT storage): every pending insert row and
/// delete mark carries a 64-bit stamp that says *when* it became — or
/// will become — visible.
///
///   0                      visible to every snapshot ("since forever"):
///                          merged main rows, crash-recovery replay, and
///                          direct Table users that predate transactions.
///   1 .. 2^63-1            commit timestamp: visible to snapshots taken
///                          at or after that commit.
///   kPendingBit | txn_id   uncommitted write of an open transaction:
///                          visible only to its own statements. COMMIT
///                          restamps these to a fresh commit timestamp;
///                          ROLLBACK truncates them away physically.
inline constexpr uint64_t kPendingBit = uint64_t{1} << 63;

/// Stamp of every row committed before the transaction layer existed.
inline constexpr uint64_t kVisibleToAll = 0;

/// The largest commit timestamp: a snapshot at kMaxTs sees every
/// committed row (the auto-commit / legacy read path).
inline constexpr uint64_t kMaxTs = kPendingBit - 1;

constexpr uint64_t PendingStamp(uint64_t txn_id) {
  return kPendingBit | txn_id;
}
constexpr bool IsPending(uint64_t stamp) {
  return (stamp & kPendingBit) != 0;
}

/// A read snapshot: the reader sees exactly the rows committed at or
/// before `ts`, plus (inside a transaction) its own pending writes.
/// Default-constructed it is the "latest" snapshot — every committed row,
/// no pending ones — which keeps the pre-transaction read paths honest.
struct Snapshot {
  uint64_t ts = kMaxTs;
  uint64_t txn_id = 0;  ///< 0 outside a transaction

  bool Sees(uint64_t stamp) const {
    if (IsPending(stamp)) {
      return txn_id != 0 && stamp == PendingStamp(txn_id);
    }
    return stamp <= ts;
  }
};

/// Monotonic transaction counters, surfaced through SERVER STATUS.
struct TxnStats {
  uint64_t begun = 0;        ///< explicit BEGINs accepted
  uint64_t committed = 0;    ///< COMMITs applied (incl. read-only)
  uint64_t rolled_back = 0;  ///< explicit ROLLBACKs + disconnect aborts
  uint64_t conflicts = 0;    ///< statements refused with kConflict
  uint64_t active = 0;       ///< open explicit transactions right now
};

/// Issues monotonically increasing transaction IDs and commit
/// timestamps, and tracks which transactions are active so checkpoints
/// can demand quiescence. Thread-safe: BEGIN runs under the engine's
/// shared lock; commits bump the timestamp under the exclusive lock.
class TransactionManager {
 public:
  /// Starts a transaction: a fresh ID plus a snapshot at the current
  /// latest commit timestamp. The transaction stays registered (blocking
  /// checkpoints) until End().
  Snapshot Begin() {
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot snap;
    snap.txn_id = next_txn_id_++;
    snap.ts = latest_ts_;
    active_.insert(snap.txn_id);
    ++begun_;
    return snap;
  }

  /// A transaction ID without the active registration: auto-commit DML
  /// uses one for its pending stamps within a single exclusive-lock hold.
  uint64_t AllocTxnId() {
    std::lock_guard<std::mutex> lock(mu_);
    return next_txn_id_++;
  }

  /// The next commit timestamp. Caller must hold the engine's exclusive
  /// lock and finish restamping before any reader can take a snapshot —
  /// the bump makes the commit visible to every later Begin()/latest().
  uint64_t NextCommitTs() {
    std::lock_guard<std::mutex> lock(mu_);
    return ++latest_ts_;
  }

  /// Deregisters an explicit transaction (COMMIT or ROLLBACK).
  void End(uint64_t txn_id, bool committed) {
    std::lock_guard<std::mutex> lock(mu_);
    active_.erase(txn_id);
    ++(committed ? committed_ : rolled_back_);
  }

  void CountConflict() {
    std::lock_guard<std::mutex> lock(mu_);
    ++conflicts_;
  }

  /// Snapshot for a statement outside any transaction: the latest commit
  /// timestamp, no pending visibility.
  Snapshot LatestSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot snap;
    snap.ts = latest_ts_;
    return snap;
  }

  uint64_t latest_ts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return latest_ts_;
  }

  /// Open explicit transactions; > 0 vetoes checkpoints and delta merges
  /// (they compact away the versions those snapshots still read).
  size_t ActiveCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_.size();
  }

  TxnStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    TxnStats s;
    s.begun = begun_;
    s.committed = committed_;
    s.rolled_back = rolled_back_;
    s.conflicts = conflicts_;
    s.active = active_.size();
    return s;
  }

 private:
  mutable std::mutex mu_;
  uint64_t next_txn_id_ = 1;
  uint64_t latest_ts_ = 0;
  std::unordered_set<uint64_t> active_;
  uint64_t begun_ = 0;
  uint64_t committed_ = 0;
  uint64_t rolled_back_ = 0;
  uint64_t conflicts_ = 0;
};

}  // namespace mammoth::txn

#endif  // MAMMOTH_TXN_TXN_H_
