#include "mal/program.h"

#include <cstdio>

namespace mammoth::mal {

const char* OpCodeName(OpCode op) {
  switch (op) {
    case OpCode::kBind:
      return "sql.bind";
    case OpCode::kBindCands:
      return "sql.tid";
    case OpCode::kThetaSelect:
      return "algebra.thetaselect";
    case OpCode::kRangeSelect:
      return "algebra.select";
    case OpCode::kProject:
      return "algebra.projection";
    case OpCode::kJoin:
      return "algebra.join";
    case OpCode::kGroup:
      return "group.subgroup";
    case OpCode::kAggrSum:
      return "aggr.sum";
    case OpCode::kAggrCount:
      return "aggr.count";
    case OpCode::kAggrMin:
      return "aggr.min";
    case OpCode::kAggrMax:
      return "aggr.max";
    case OpCode::kAggrAvg:
      return "aggr.avg";
    case OpCode::kCalcBin:
      return "batcalc.bin";
    case OpCode::kCalcConst:
      return "batcalc.const";
    case OpCode::kSort:
      return "algebra.sort";
    case OpCode::kTopN:
      return "algebra.firstn";
    case OpCode::kDistinct:
      return "algebra.unique";
    case OpCode::kResult:
      return "sql.resultSet";
  }
  return "?";
}

std::string Program::ToString() const {
  std::string out;
  char buf[64];
  for (const Instr& ins : instrs_) {
    std::string line = "  ";
    if (!ins.outputs.empty()) {
      line += "(";
      for (size_t i = 0; i < ins.outputs.size(); ++i) {
        if (i > 0) line += ", ";
        std::snprintf(buf, sizeof(buf), "v%d", ins.outputs[i]);
        line += buf;
      }
      line += ") := ";
    }
    line += OpCodeName(ins.op);
    line += "(";
    bool first = true;
    auto comma = [&] {
      if (!first) line += ", ";
      first = false;
    };
    if (!ins.table.empty()) {
      comma();
      line += "\"" + ins.table + "\"";
    }
    if (!ins.column.empty()) {
      comma();
      line += "\"" + ins.column + "\"";
    }
    for (int v : ins.inputs) {
      comma();
      if (v < 0) {
        line += "nil";
      } else {
        std::snprintf(buf, sizeof(buf), "v%d", v);
        line += buf;
      }
    }
    for (const Value& c : ins.consts) {
      comma();
      line += c.ToString();
    }
    if (ins.op == OpCode::kThetaSelect) {
      comma();
      line += CmpOpName(ins.cmp);
    }
    if (ins.op == OpCode::kCalcBin || ins.op == OpCode::kCalcConst) {
      comma();
      line += algebra::ArithOpName(ins.arith);
    }
    if (ins.flag) {
      comma();
      line += (ins.op == OpCode::kRangeSelect) ? "anti" : "desc";
    }
    line += ");\n";
    out += line;
  }
  return out;
}

int Program::Bind(const std::string& table, const std::string& column) {
  Instr& i = Append(OpCode::kBind);
  i.table = table;
  i.column = column;
  i.outputs = {NewVar()};
  return i.outputs[0];
}

int Program::BindCandidates(const std::string& table) {
  Instr& i = Append(OpCode::kBindCands);
  i.table = table;
  i.outputs = {NewVar()};
  return i.outputs[0];
}

int Program::ThetaSelect(int bat, int cands, const Value& v, CmpOp cmp) {
  Instr& i = Append(OpCode::kThetaSelect);
  i.inputs = {bat, cands};
  i.consts = {v};
  i.cmp = cmp;
  i.outputs = {NewVar()};
  return i.outputs[0];
}

int Program::RangeSelect(int bat, int cands, const Value& lo, const Value& hi,
                         bool anti) {
  Instr& i = Append(OpCode::kRangeSelect);
  i.inputs = {bat, cands};
  i.consts = {lo, hi};
  i.flag = anti;
  i.outputs = {NewVar()};
  return i.outputs[0];
}

int Program::Project(int oids, int values) {
  Instr& i = Append(OpCode::kProject);
  i.inputs = {oids, values};
  i.outputs = {NewVar()};
  return i.outputs[0];
}

std::pair<int, int> Program::Join(int l, int r) {
  Instr& i = Append(OpCode::kJoin);
  i.inputs = {l, r};
  i.outputs = {NewVar(), NewVar()};
  return {i.outputs[0], i.outputs[1]};
}

std::tuple<int, int, int> Program::Group(int bat, int prev, int prev_n) {
  Instr& i = Append(OpCode::kGroup);
  i.inputs = {bat, prev, prev_n};
  i.outputs = {NewVar(), NewVar(), NewVar()};
  return {i.outputs[0], i.outputs[1], i.outputs[2]};
}

int Program::Aggr(OpCode agg_op, int values, int groups, int ngroups) {
  Instr& i = Append(agg_op);
  i.inputs = {values, groups, ngroups};
  i.outputs = {NewVar()};
  return i.outputs[0];
}

int Program::CalcBin(algebra::ArithOp op, int a, int b) {
  Instr& i = Append(OpCode::kCalcBin);
  i.inputs = {a, b};
  i.arith = op;
  i.outputs = {NewVar()};
  return i.outputs[0];
}

int Program::CalcConst(algebra::ArithOp op, int a, const Value& v) {
  Instr& i = Append(OpCode::kCalcConst);
  i.inputs = {a};
  i.consts = {v};
  i.arith = op;
  i.outputs = {NewVar()};
  return i.outputs[0];
}

std::pair<int, int> Program::Sort(int bat, bool desc) {
  Instr& i = Append(OpCode::kSort);
  i.inputs = {bat};
  i.flag = desc;
  i.outputs = {NewVar(), NewVar()};
  return {i.outputs[0], i.outputs[1]};
}

int Program::TopN(int bat, size_t k, bool desc) {
  Instr& i = Append(OpCode::kTopN);
  i.inputs = {bat};
  i.consts = {Value::Int(static_cast<int64_t>(k))};
  i.flag = desc;
  i.outputs = {NewVar()};
  return i.outputs[0];
}

int Program::Distinct(int bat) {
  Instr& i = Append(OpCode::kDistinct);
  i.inputs = {bat};
  i.outputs = {NewVar()};
  return i.outputs[0];
}

void Program::Result(int bat, const std::string& name) {
  Instr& i = Append(OpCode::kResult);
  i.inputs = {bat};
  i.column = name;
}

}  // namespace mammoth::mal
