#ifndef MAMMOTH_MAL_INTERPRETER_H_
#define MAMMOTH_MAL_INTERPRETER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "core/catalog.h"
#include "mal/program.h"
#include "parallel/exec_context.h"
#include "recycle/recycler.h"
#include "txn/txn.h"

namespace mammoth::mal {

/// Named result columns of a query (the "collection of BATs" a query
/// evaluates to, §3).
struct QueryResult {
  std::vector<std::string> names;
  std::vector<BatPtr> columns;

  size_t RowCount() const {
    return columns.empty() || columns[0] == nullptr ? 0
                                                    : columns[0]->Count();
  }
  /// ASCII rendering for examples/debugging; truncates at `max_rows`.
  std::string ToText(size_t max_rows = 20) const;
};

/// Per-run instrumentation.
struct RunStats {
  size_t instructions = 0;
  size_t recycled = 0;  ///< instructions answered from the recycler
  double seconds = 0;
};

/// The MAL interpreter (§3.1 third tier): walks the SSA instruction list,
/// calling the optimized BAT kernels and materializing every intermediate.
/// When a Recycler is attached, each pure instruction first consults the
/// cache (exact signature, then range subsumption) before executing.
/// `ctx` scopes the kernel parallelism of every instruction this
/// interpreter runs (a server passes each query's admission-granted
/// slice of the shared pool; the default is the process-wide context).
/// `snap` scopes every base-table access: kBindCands resolves to the
/// positions visible to the snapshot, and recycler signatures key on the
/// snapshot-visible state (not the physical version), so another
/// transaction's uncommitted writes neither appear in results nor evict
/// this reader's cached intermediates. The default snapshot sees every
/// committed row — the pre-transaction behavior.
class Interpreter {
 public:
  explicit Interpreter(
      Catalog* catalog, recycle::Recycler* recycler = nullptr,
      const parallel::ExecContext& ctx = parallel::ExecContext::Default(),
      const txn::Snapshot& snap = txn::Snapshot())
      : catalog_(catalog), recycler_(recycler), ctx_(ctx), snap_(snap) {}

  Result<QueryResult> Run(const Program& program, RunStats* stats = nullptr);

 private:
  Catalog* catalog_;
  recycle::Recycler* recycler_;
  parallel::ExecContext ctx_;
  txn::Snapshot snap_;
};

}  // namespace mammoth::mal

#endif  // MAMMOTH_MAL_INTERPRETER_H_
