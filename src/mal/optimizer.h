#ifndef MAMMOTH_MAL_OPTIMIZER_H_
#define MAMMOTH_MAL_OPTIMIZER_H_

#include <string>
#include <vector>

#include "mal/program.h"

namespace mammoth::mal {

/// The optimizer tier of §3.1: "a collection of optimizer modules ...
/// assembled into optimization pipelines", transforming MAL programs into
/// more efficient ones. Each pass is symbolic and independent — the
/// explicit break with one-big-cost-formula optimizers the paper describes.

/// Removes instructions none of whose outputs reach a Result sink.
/// Returns the number of instructions removed.
size_t DeadCodeElimination(Program* p);

/// Replaces instructions whose (op, inputs, consts) match an earlier one
/// with aliases of the earlier outputs. Returns replacements made.
size_t CommonSubexpressionElimination(Program* p);

/// Fuses a pair of theta-selects (>= lo as candidates into <= hi, in either
/// order) over the same column into one RangeSelect. Returns fusions made.
size_t SelectFusion(Program* p);

/// A named pass pipeline, applied in order until fixpoint (at most
/// `max_rounds`). The default pipeline runs fusion, CSE, then DCE.
struct PipelineReport {
  size_t fused = 0;
  size_t cse = 0;
  size_t dce = 0;
  size_t rounds = 0;
  std::string ToString() const;
};
PipelineReport OptimizePipeline(Program* p, size_t max_rounds = 4);

}  // namespace mammoth::mal

#endif  // MAMMOTH_MAL_OPTIMIZER_H_
