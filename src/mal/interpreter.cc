#include "mal/interpreter.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/hash.h"
#include "common/timer.h"
#include "compress/compressed_exec.h"
#include "compress/compressed_kernels.h"
#include "core/group.h"
#include "core/join.h"
#include "core/project.h"
#include "core/select.h"
#include "core/sort.h"
#include "scan/shared_scan.h"

namespace mammoth::mal {

namespace {

/// Runtime slot for one MAL variable.
struct Rt {
  BatPtr bat;
  /// Compressed base-column image, set by kBind when the bound column is
  /// stored compressed (and no pending inserts extend it). `bat` stays
  /// null then: select, project and aggregate route the compressed image
  /// directly (code-space kernels or chunk-at-a-time decompression); any
  /// other consumer materializes the shared whole-column decode via
  /// NeedBat.
  std::shared_ptr<const compress::CompressedBat> cbat;
  /// Dictionary image of a bound string column (compression policy on,
  /// no pending inserts). Unlike cbat, `bat` is set alongside it — the
  /// plain heap image stays resident — so only code-space-rewritable
  /// string predicates route through the dictionary; everything else
  /// reads `bat` unchanged.
  std::shared_ptr<const compress::StrDict> sdict;
  Value scalar;
  uint64_t sig = 0;
  /// Base-table provenance, set by kBind (and only kBind): marks this BAT
  /// as a whole base column, which makes a downstream full-column select
  /// eligible for the shared-scan path. `bind` points into the program's
  /// instruction list (stable for the run).
  const Instr* bind = nullptr;
  uint64_t bind_version = 0;
};

uint64_t HashValue(const Value& v) {
  if (v.is_nil()) return 0x9e37;
  if (v.is_int()) return HashCombine(1, static_cast<uint64_t>(v.AsInt()));
  if (v.is_real()) {
    double d = v.AsReal();
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return HashCombine(2, bits);
  }
  return HashCombine(3, HashString(v.AsStr()));
}

uint64_t InstrSignature(const Instr& ins, const std::vector<Rt>& vars) {
  uint64_t h = HashInt(static_cast<uint64_t>(ins.op) + uint64_t{0x51});
  for (int in : ins.inputs) {
    h = HashCombine(h, in < 0 ? uint64_t{0xfeed} : vars[in].sig);
  }
  for (const Value& c : ins.consts) h = HashCombine(h, HashValue(c));
  h = HashCombine(h, static_cast<uint64_t>(ins.cmp));
  h = HashCombine(h, static_cast<uint64_t>(ins.arith));
  h = HashCombine(h, ins.flag ? 1 : 0);
  h = HashCombine(h, HashString(ins.table));
  h = HashCombine(h, HashString(ins.column));
  return h;
}

bool Recyclable(OpCode op) {
  switch (op) {
    case OpCode::kBind:
    case OpCode::kBindCands:
    case OpCode::kResult:
      return false;
    default:
      return true;
  }
}

/// Validates (and, for compressed binds, materializes) the BAT operand:
/// a slot holding only a compressed image decodes it here — through the
/// shared cache, so repeated materializations pay once.
Status NeedBat(std::vector<Rt>& vars, int id, const char* what) {
  if (id >= 0 && vars[id].bat == nullptr && vars[id].cbat != nullptr) {
    MAMMOTH_ASSIGN_OR_RETURN(vars[id].bat, vars[id].cbat->DecodedBat());
  }
  if (id < 0 || vars[id].bat == nullptr) {
    return Status::Internal(std::string("mal: missing BAT operand for ") +
                            what);
  }
  return Status::OK();
}

/// Whether `cands` filters nothing: absent, or a dense list spanning every
/// row of a column of `count` rows headed at `hseq` (what
/// Table::LiveCandidates returns for delete-free tables). Such a select is
/// a full-column scan and may be routed through the shared-scan scheduler.
bool CoversWholeColumn(const BatPtr& cands, size_t count, Oid hseq) {
  return cands == nullptr ||
         (cands->IsDenseTail() && cands->Count() == count &&
          cands->tseqbase() == hseq);
}

/// Whether `cands` is a dense *prefix* [hseq, hseq+k) of a column of
/// `count` rows — what Table::VisibleCandidates returns when another
/// transaction's uncommitted rows form the delta tail. Such a select can
/// still join a shared full-column pass: run over all rows, then cut the
/// sorted result at the prefix boundary (bit-identical to scanning only
/// the prefix, since selects never look across rows).
bool CoversDensePrefix(const BatPtr& cands, size_t count, Oid hseq,
                       size_t* prefix) {
  if (cands == nullptr || !cands->IsDenseTail() ||
      cands->tseqbase() != hseq || cands->Count() >= count) {
    return false;
  }
  *prefix = cands->Count();
  return true;
}

/// Drops every OID >= `limit` from a sorted select result.
BatPtr TruncateSorted(const BatPtr& r, Oid limit) {
  if (r->IsDenseTail()) {
    const size_t keep =
        r->tseqbase() >= limit
            ? 0
            : std::min<size_t>(r->Count(), limit - r->tseqbase());
    if (keep == r->Count()) return r;
    return Bat::NewDense(r->tseqbase(), keep, r->hseqbase());
  }
  const Oid* data = r->TailData<Oid>();
  const size_t keep = static_cast<size_t>(
      std::lower_bound(data, data + r->Count(), limit) - data);
  if (keep == r->Count()) return r;
  BatPtr out = Bat::New(PhysType::kOid);
  out->AppendRaw(data, keep);
  out->mutable_props().sorted = true;
  out->mutable_props().key = true;
  return out;
}

/// The scan source of a bound slot: the compressed image when the bind
/// left one, the dictionary-backed string image when one exists, the
/// plain BAT otherwise.
scan::ColumnSource SourceOf(const Rt& in) {
  if (in.cbat != nullptr) return scan::ColumnSource::Compressed(in.cbat);
  if (in.sdict != nullptr) return scan::ColumnSource::Dict(in.bat, in.sdict);
  return scan::ColumnSource::Plain(in.bat);
}

}  // namespace

std::string QueryResult::ToText(size_t max_rows) const {
  std::string out;
  for (size_t c = 0; c < names.size(); ++c) {
    out += c == 0 ? "" : " | ";
    out += names[c];
  }
  out += "\n";
  for (size_t c = 0; c < names.size(); ++c) {
    out += c == 0 ? "" : "-+-";
    out += std::string(names[c].size(), '-');
  }
  out += "\n";
  const size_t rows = RowCount();
  char buf[64];
  for (size_t r = 0; r < rows && r < max_rows; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c > 0) out += " | ";
      const Bat& b = *columns[c];
      switch (b.type()) {
        case PhysType::kStr:
          out += std::string(b.StringAt(r));
          break;
        case PhysType::kDouble:
          std::snprintf(buf, sizeof(buf), "%.4f", b.ValueAt<double>(r));
          out += buf;
          break;
        case PhysType::kFloat:
          std::snprintf(buf, sizeof(buf), "%.4f", b.ValueAt<float>(r));
          out += buf;
          break;
        case PhysType::kOid:
          std::snprintf(buf, sizeof(buf), "%llu",
                        static_cast<unsigned long long>(b.OidAt(r)));
          out += buf;
          break;
        case PhysType::kInt64:
          std::snprintf(buf, sizeof(buf), "%lld",
                        static_cast<long long>(b.ValueAt<int64_t>(r)));
          out += buf;
          break;
        case PhysType::kInt32:
          std::snprintf(buf, sizeof(buf), "%d", b.ValueAt<int32_t>(r));
          out += buf;
          break;
        case PhysType::kInt16:
          std::snprintf(buf, sizeof(buf), "%d", b.ValueAt<int16_t>(r));
          out += buf;
          break;
        case PhysType::kBool:
        case PhysType::kInt8:
          std::snprintf(buf, sizeof(buf), "%d", b.ValueAt<int8_t>(r));
          out += buf;
          break;
      }
    }
    out += "\n";
  }
  if (rows > max_rows) out += "... (" + std::to_string(rows) + " rows)\n";
  return out;
}

Result<QueryResult> Interpreter::Run(const Program& program, RunStats* stats) {
  WallTimer total;
  std::vector<Rt> vars(program.nvars());
  QueryResult result;
  RunStats local;

  for (const Instr& ins : program.instrs()) {
    ++local.instructions;
    const uint64_t sig = InstrSignature(ins, vars);

    // --- Recycler: exact match -------------------------------------------
    if (recycler_ != nullptr && Recyclable(ins.op)) {
      std::vector<recycle::CachedVal> cached;
      if (recycler_->Lookup(sig, &cached) &&
          cached.size() == ins.outputs.size()) {
        for (size_t o = 0; o < ins.outputs.size(); ++o) {
          vars[ins.outputs[o]].bat = cached[o].bat;
          vars[ins.outputs[o]].cbat = cached[o].cbat;
          vars[ins.outputs[o]].scalar = cached[o].scalar;
          vars[ins.outputs[o]].sig = HashCombine(sig, o);
        }
        ++local.recycled;
        continue;
      }
    }

    WallTimer timer;
    BatPtr subsume_cands;  // range-subsumption candidates, when found

    switch (ins.op) {
      case OpCode::kBind: {
        MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog_->Get(ins.table));
        MAMMOTH_ASSIGN_OR_RETURN(size_t idx, t->ColumnIndex(ins.column));
        Rt& out = vars[ins.outputs[0]];
        out.bat = nullptr;
        out.cbat = nullptr;
        out.sdict = nullptr;
        // A compressed column with no pending inserts binds as its
        // compressed image (decoded lazily, or chunk-at-a-time by the
        // scan path); otherwise the merged plain image. A dictionary-
        // backed string column binds both images: the plain BAT for
        // general consumers, the dictionary for code-space predicates.
        const auto& comp = t->CompressedColumn(idx);
        if (comp != nullptr && t->PendingInsertCount() == 0) {
          out.cbat = comp;
        } else {
          MAMMOTH_ASSIGN_OR_RETURN(out.bat, t->ScanColumn(idx));
          const auto& sdict = t->StringDictColumn(idx);
          if (sdict != nullptr && t->PendingInsertCount() == 0) {
            out.sdict = sdict;
          }
        }
        out.bind = &ins;
        out.bind_version = t->version();
        // Signatures key on the *snapshot-visible* state, not the physical
        // version: rows another transaction appended but this snapshot
        // cannot see leave the key — and hence every cached downstream
        // intermediate — untouched. (Values at visible positions are
        // immutable, so results computed over an older physical image are
        // still bit-exact.)
        out.sig = HashCombine(HashCombine(HashString(ins.table),
                                          HashString(ins.column)),
                              t->VisibleStateKey(snap_));
        break;
      }
      case OpCode::kBindCands: {
        MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog_->Get(ins.table));
        Rt& out = vars[ins.outputs[0]];
        out.bat = t->VisibleCandidates(snap_);
        out.sig = HashCombine(HashCombine(HashString(ins.table), 0x71d),
                              t->VisibleStateKey(snap_));
        break;
      }
      case OpCode::kThetaSelect: {
        const BatPtr cands =
            ins.inputs[1] < 0 ? nullptr : vars[ins.inputs[1]].bat;
        // Full-column scans of a base table route through the shared-scan
        // scheduler (bit-identical to the kernel; shares a physical pass
        // with concurrent scans of the same table when one is in flight).
        // A compressed bind routes its compressed image: the pass
        // decompresses each chunk once for all attached consumers.
        if (ctx_.shared_scans() != nullptr && ins.inputs[0] >= 0 &&
            vars[ins.inputs[0]].bind != nullptr) {
          const Rt& in = vars[ins.inputs[0]];
          const scan::ColumnSource src = SourceOf(in);
          size_t prefix = 0;
          const bool whole = CoversWholeColumn(cands, src.Count(),
                                               src.hseqbase);
          if (whole || CoversDensePrefix(cands, src.Count(), src.hseqbase,
                                         &prefix)) {
            MAMMOTH_ASSIGN_OR_RETURN(
                BatPtr r,
                ctx_.shared_scans()->Select(
                    src, in.bind->table, in.bind->column, in.bind_version,
                    scan::ScanPredicate::Theta(ins.consts[0], ins.cmp),
                    ctx_));
            if (!whole) r = TruncateSorted(r, src.hseqbase + prefix);
            vars[ins.outputs[0]].bat = r;
            break;
          }
        }
        // Direct code-space kernels (no routed pass): a rewritable
        // predicate over a full compressed or dictionary-backed column
        // never decodes. Candidate-filtered or non-rewritable selects
        // fall through to decode-then-kernel.
        if (ins.inputs[0] >= 0) {
          const Rt& in = vars[ins.inputs[0]];
          if (in.cbat != nullptr &&
              CoversWholeColumn(cands, in.cbat->Count(), 0) &&
              compress::ThetaSelectableOnCompressed(*in.cbat, ins.consts[0],
                                                    ins.cmp)) {
            MAMMOTH_ASSIGN_OR_RETURN(
                BatPtr r, compress::CompressedThetaSelectRange(
                              *in.cbat, ins.consts[0], ins.cmp, 0,
                              in.cbat->Count(), 0));
            compress::stats::SelectDirect();
            vars[ins.outputs[0]].bat = r;
            break;
          }
          if (in.sdict != nullptr && in.bat != nullptr &&
              CoversWholeColumn(cands, in.bat->Count(), in.bat->hseqbase()) &&
              compress::StrSelectableOnDict(ins.consts[0], ins.cmp)) {
            MAMMOTH_ASSIGN_OR_RETURN(
                BatPtr r, compress::DictStrSelectRange(
                              *in.sdict, ins.consts[0], ins.cmp, 0,
                              in.sdict->Count(), in.bat->hseqbase()));
            compress::stats::SelectDirect();
            vars[ins.outputs[0]].bat = r;
            break;
          }
          if (in.cbat != nullptr && in.bat == nullptr) {
            compress::stats::SelectFallback();
          }
        }
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[0], "thetaselect"));
        MAMMOTH_ASSIGN_OR_RETURN(
            BatPtr r, algebra::ThetaSelect(vars[ins.inputs[0]].bat, cands,
                                           ins.consts[0], ins.cmp, ctx_));
        vars[ins.outputs[0]].bat = r;
        break;
      }
      case OpCode::kRangeSelect: {
        BatPtr cands = ins.inputs[1] < 0 ? nullptr : vars[ins.inputs[1]].bat;
        // --- Recycler: range subsumption ---------------------------------
        // A cached wider range over the same (column, candidates) pair can
        // serve as the candidate list: the cached output already reflects
        // the original candidate filtering, so refining within it is exact.
        const uint64_t range_base = HashCombine(
            vars[ins.inputs[0]].sig,
            ins.inputs[1] < 0 ? uint64_t{0xfeed} : vars[ins.inputs[1]].sig);
        if (recycler_ != nullptr && !ins.flag && ins.consts[0].is_numeric() &&
            ins.consts[1].is_numeric()) {
          if (recycler_->LookupRangeSuperset(range_base,
                                             ins.consts[0].AsReal(),
                                             ins.consts[1].AsReal(),
                                             &subsume_cands)) {
            cands = subsume_cands;
          }
        }
        if (ctx_.shared_scans() != nullptr && ins.inputs[0] >= 0 &&
            vars[ins.inputs[0]].bind != nullptr && subsume_cands == nullptr) {
          const Rt& in = vars[ins.inputs[0]];
          const scan::ColumnSource src = SourceOf(in);
          size_t prefix = 0;
          const bool whole = CoversWholeColumn(cands, src.Count(),
                                               src.hseqbase);
          if (whole || CoversDensePrefix(cands, src.Count(), src.hseqbase,
                                         &prefix)) {
            MAMMOTH_ASSIGN_OR_RETURN(
                BatPtr r,
                ctx_.shared_scans()->Select(
                    src, in.bind->table, in.bind->column, in.bind_version,
                    scan::ScanPredicate::Range(ins.consts[0], ins.consts[1],
                                               ins.flag),
                    ctx_));
            if (!whole) r = TruncateSorted(r, src.hseqbase + prefix);
            vars[ins.outputs[0]].bat = r;
            break;
          }
        }
        if (ins.inputs[0] >= 0 && subsume_cands == nullptr) {
          const Rt& in = vars[ins.inputs[0]];
          if (in.cbat != nullptr &&
              CoversWholeColumn(cands, in.cbat->Count(), 0) &&
              compress::RangeSelectableOnCompressed(*in.cbat, ins.consts[0],
                                                    ins.consts[1])) {
            MAMMOTH_ASSIGN_OR_RETURN(
                BatPtr r, compress::CompressedRangeSelectRange(
                              *in.cbat, ins.consts[0], ins.consts[1], true,
                              true, ins.flag, 0, in.cbat->Count(), 0));
            compress::stats::SelectDirect();
            vars[ins.outputs[0]].bat = r;
            break;
          }
          if (in.cbat != nullptr && in.bat == nullptr) {
            compress::stats::SelectFallback();
          }
        }
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[0], "select"));
        MAMMOTH_ASSIGN_OR_RETURN(
            BatPtr r,
            algebra::RangeSelect(vars[ins.inputs[0]].bat, cands,
                                 ins.consts[0], ins.consts[1], true, true,
                                 ins.flag, ctx_));
        vars[ins.outputs[0]].bat = r;
        break;
      }
      case OpCode::kProject: {
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[0], "projection"));
        // Projection out of a compressed bind decodes only the touched
        // range (dense OID gathers) instead of the whole column. An
        // identity projection (dense OID list covering every row — what
        // a WHERE-less query's candidate list looks like) passes the
        // compressed image through untouched, so a downstream aggregate
        // can fold it without ever decoding.
        if (ins.inputs[1] >= 0 && vars[ins.inputs[1]].bat == nullptr &&
            vars[ins.inputs[1]].cbat != nullptr) {
          const BatPtr& oids = vars[ins.inputs[0]].bat;
          const auto& comp = vars[ins.inputs[1]].cbat;
          if (oids->IsDenseTail() && oids->Count() == comp->Count() &&
              oids->tseqbase() == 0 && oids->hseqbase() == 0) {
            vars[ins.outputs[0]].bat = nullptr;
            vars[ins.outputs[0]].cbat = comp;
            break;
          }
          MAMMOTH_ASSIGN_OR_RETURN(
              BatPtr r,
              compress::CompressedProject(vars[ins.inputs[0]].bat,
                                          vars[ins.inputs[1]].cbat, ctx_));
          vars[ins.outputs[0]].bat = r;
          break;
        }
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[1], "projection"));
        MAMMOTH_ASSIGN_OR_RETURN(
            BatPtr r, algebra::Project(vars[ins.inputs[0]].bat,
                                       vars[ins.inputs[1]].bat, ctx_));
        vars[ins.outputs[0]].bat = r;
        break;
      }
      case OpCode::kJoin: {
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[0], "join"));
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[1], "join"));
        MAMMOTH_ASSIGN_OR_RETURN(
            algebra::JoinResult jr,
            algebra::Join(vars[ins.inputs[0]].bat, vars[ins.inputs[1]].bat));
        vars[ins.outputs[0]].bat = jr.left;
        vars[ins.outputs[1]].bat = jr.right;
        break;
      }
      case OpCode::kGroup: {
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[0], "group"));
        BatPtr prev = ins.inputs[1] < 0 ? nullptr : vars[ins.inputs[1]].bat;
        size_t prev_n = 0;
        if (ins.inputs[2] >= 0) {
          prev_n = static_cast<size_t>(vars[ins.inputs[2]].scalar.AsInt());
        }
        MAMMOTH_ASSIGN_OR_RETURN(
            algebra::GroupResult g,
            algebra::Group(vars[ins.inputs[0]].bat, prev, prev_n, ctx_));
        vars[ins.outputs[0]].bat = g.groups;
        vars[ins.outputs[1]].bat = g.extents;
        vars[ins.outputs[2]].scalar =
            Value::Int(static_cast<int64_t>(g.ngroups));
        break;
      }
      case OpCode::kAggrSum:
      case OpCode::kAggrCount:
      case OpCode::kAggrMin:
      case OpCode::kAggrMax:
      case OpCode::kAggrAvg: {
        BatPtr groups = ins.inputs[1] < 0 ? nullptr : vars[ins.inputs[1]].bat;
        size_t ngroups = 1;
        if (ins.inputs[2] >= 0) {
          ngroups = static_cast<size_t>(vars[ins.inputs[2]].scalar.AsInt());
        }
        // Compressed-direct aggregation: a global SUM/MIN/MAX over an
        // RLE or dictionary image folds runs/codes in O(runs + dict)
        // without decoding; COUNT only reads the row count. Grouped and
        // non-foldable aggregates decode via NeedBat below.
        if (ins.inputs[0] >= 0 && vars[ins.inputs[0]].bat == nullptr &&
            vars[ins.inputs[0]].cbat != nullptr) {
          const auto& comp = vars[ins.inputs[0]].cbat;
          Result<BatPtr> cr = Status::Internal("unrouted");
          bool routed = false;
          if (ins.op == OpCode::kAggrCount) {
            cr = algebra::AggrCount(groups, ngroups, comp->Count(), ctx_);
            routed = true;
          } else if (groups == nullptr &&
                     compress::AggregatableOnCompressed(*comp)) {
            switch (ins.op) {
              case OpCode::kAggrSum:
                cr = compress::CompressedAggrSum(*comp);
                routed = true;
                break;
              case OpCode::kAggrMin:
                cr = compress::CompressedAggrMin(*comp);
                routed = true;
                break;
              case OpCode::kAggrMax:
                cr = compress::CompressedAggrMax(*comp);
                routed = true;
                break;
              default:
                break;
            }
          }
          if (routed) {
            if (!cr.ok()) return cr.status();
            compress::stats::AggrDirect();
            vars[ins.outputs[0]].bat = *cr;
            break;
          }
          compress::stats::AggrFallback();
        }
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[0], "aggr"));
        const BatPtr values = vars[ins.inputs[0]].bat;
        Result<BatPtr> r = Status::Internal("unreachable");
        switch (ins.op) {
          case OpCode::kAggrSum:
            r = algebra::AggrSum(values, groups, ngroups, ctx_);
            break;
          case OpCode::kAggrCount:
            r = algebra::AggrCount(groups, ngroups, values->Count(), ctx_);
            break;
          case OpCode::kAggrMin:
            r = algebra::AggrMin(values, groups, ngroups, ctx_);
            break;
          case OpCode::kAggrMax:
            r = algebra::AggrMax(values, groups, ngroups, ctx_);
            break;
          case OpCode::kAggrAvg:
            r = algebra::AggrAvg(values, groups, ngroups);
            break;
          default:
            break;
        }
        if (!r.ok()) return r.status();
        vars[ins.outputs[0]].bat = *r;
        break;
      }
      case OpCode::kCalcBin: {
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[0], "batcalc"));
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[1], "batcalc"));
        MAMMOTH_ASSIGN_OR_RETURN(
            BatPtr r,
            algebra::CalcBinary(ins.arith, vars[ins.inputs[0]].bat,
                                vars[ins.inputs[1]].bat));
        vars[ins.outputs[0]].bat = r;
        break;
      }
      case OpCode::kCalcConst: {
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[0], "batcalc"));
        MAMMOTH_ASSIGN_OR_RETURN(
            BatPtr r, algebra::CalcScalar(ins.arith, vars[ins.inputs[0]].bat,
                                          ins.consts[0]));
        vars[ins.outputs[0]].bat = r;
        break;
      }
      case OpCode::kSort: {
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[0], "sort"));
        MAMMOTH_ASSIGN_OR_RETURN(
            algebra::SortResult s,
            algebra::Sort(vars[ins.inputs[0]].bat, ins.flag, ctx_));
        vars[ins.outputs[0]].bat = s.sorted;
        vars[ins.outputs[1]].bat = s.order;
        break;
      }
      case OpCode::kTopN: {
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[0], "firstn"));
        MAMMOTH_ASSIGN_OR_RETURN(
            BatPtr r,
            algebra::TopN(vars[ins.inputs[0]].bat,
                          static_cast<size_t>(ins.consts[0].AsInt()),
                          ins.flag, ctx_));
        vars[ins.outputs[0]].bat = r;
        break;
      }
      case OpCode::kDistinct: {
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[0], "unique"));
        MAMMOTH_ASSIGN_OR_RETURN(BatPtr r,
                                 algebra::Distinct(vars[ins.inputs[0]].bat, ctx_));
        vars[ins.outputs[0]].bat = r;
        break;
      }
      case OpCode::kResult: {
        MAMMOTH_RETURN_IF_ERROR(NeedBat(vars, ins.inputs[0], "resultSet"));
        result.names.push_back(ins.column);
        result.columns.push_back(vars[ins.inputs[0]].bat);
        break;
      }
    }

    // Derived signatures + recycler insertion.
    if (Recyclable(ins.op)) {
      for (size_t o = 0; o < ins.outputs.size(); ++o) {
        vars[ins.outputs[o]].sig = HashCombine(sig, o);
      }
      if (recycler_ != nullptr) {
        std::vector<recycle::CachedVal> outs;
        outs.reserve(ins.outputs.size());
        for (int ov : ins.outputs) {
          outs.push_back({vars[ov].bat, vars[ov].cbat, vars[ov].scalar});
        }
        recycler_->Insert(sig, std::move(outs), timer.ElapsedSeconds());
        if (ins.op == OpCode::kRangeSelect && !ins.flag &&
            ins.consts[0].is_numeric() && ins.consts[1].is_numeric()) {
          const uint64_t range_base = HashCombine(
              vars[ins.inputs[0]].sig, ins.inputs[1] < 0
                                           ? uint64_t{0xfeed}
                                           : vars[ins.inputs[1]].sig);
          recycler_->RegisterRange(range_base, ins.consts[0].AsReal(),
                                   ins.consts[1].AsReal(), sig);
        }
      }
    }
  }

  local.seconds = total.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return result;
}

}  // namespace mammoth::mal
