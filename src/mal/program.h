#ifndef MAMMOTH_MAL_PROGRAM_H_
#define MAMMOTH_MAL_PROGRAM_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/calc.h"
#include "core/value.h"

namespace mammoth::mal {

/// Opcodes of the MAL-like back-end algebra (§3, Figure 1). Each
/// instruction has zero degrees of freedom: complex expressions are broken
/// into sequences of these by the front-end.
enum class OpCode : uint8_t {
  kBind,         // (table, column)            -> bat
  kBindCands,    // (table)                    -> live-row candidate bat
  kThetaSelect,  // bat, [cands]; const, cmp   -> oid bat
  kRangeSelect,  // bat, [cands]; lo, hi       -> oid bat
  kProject,      // oids, values               -> bat
  kJoin,         // l, r                       -> (loids, roids)
  kGroup,        // bat [, prev, prev_n]       -> (groups, extents, n)
  kAggrSum,      // values, [groups, n]        -> bat
  kAggrCount,    // values, [groups, n]        -> bat
  kAggrMin,      // values, [groups, n]        -> bat
  kAggrMax,      // values, [groups, n]        -> bat
  kAggrAvg,      // values, [groups, n]        -> bat
  kCalcBin,      // a, b; arith                -> bat
  kCalcConst,    // a; arith, const            -> bat
  kSort,         // bat; desc flag             -> (sorted, order)
  kTopN,         // bat; k, desc               -> oid bat
  kDistinct,     // bat                        -> bat
  kResult,       // bat; result column name    -> (sink)
};

const char* OpCodeName(OpCode op);

/// One MAL instruction in SSA form: every output variable is assigned
/// exactly once.
struct Instr {
  OpCode op;
  std::vector<int> outputs;
  std::vector<int> inputs;      // -1 marks an absent optional input
  std::vector<Value> consts;    // immediate operands
  CmpOp cmp = CmpOp::kEq;
  algebra::ArithOp arith = algebra::ArithOp::kAdd;
  bool flag = false;            // desc for sort/topn; anti for range
  std::string table;            // kBind/kBindCands
  std::string column;           // kBind / kResult name
};

/// A MAL program: a straight-line SSA instruction list (control flow lives
/// in the front-ends; the back-end plan for one query is a DAG linearized
/// here, as in MonetDB).
class Program {
 public:
  /// Allocates a fresh variable id.
  int NewVar() { return nvars_++; }
  int nvars() const { return nvars_; }

  Instr& Append(OpCode op) {
    instrs_.push_back(Instr{});
    instrs_.back().op = op;
    return instrs_.back();
  }

  const std::vector<Instr>& instrs() const { return instrs_; }
  std::vector<Instr>& mutable_instrs() { return instrs_; }

  /// Renders a readable MAL-ish listing, e.g.
  /// "v3 := algebra.thetaselect(v1, v2, 1927, ==);".
  std::string ToString() const;

  // --- Builder helpers (front-end convenience) -----------------------------
  int Bind(const std::string& table, const std::string& column);
  int BindCandidates(const std::string& table);
  int ThetaSelect(int bat, int cands, const Value& v, CmpOp cmp);
  int RangeSelect(int bat, int cands, const Value& lo, const Value& hi,
                  bool anti = false);
  int Project(int oids, int values);
  std::pair<int, int> Join(int l, int r);
  /// Returns (groups, extents, ngroups) variable ids; prev/prev_n may be -1.
  std::tuple<int, int, int> Group(int bat, int prev = -1, int prev_n = -1);
  int Aggr(OpCode agg_op, int values, int groups = -1, int ngroups = -1);
  int CalcBin(algebra::ArithOp op, int a, int b);
  int CalcConst(algebra::ArithOp op, int a, const Value& v);
  std::pair<int, int> Sort(int bat, bool desc = false);
  int TopN(int bat, size_t k, bool desc = false);
  int Distinct(int bat);
  void Result(int bat, const std::string& name);

 private:
  std::vector<Instr> instrs_;
  int nvars_ = 0;
};

}  // namespace mammoth::mal

#endif  // MAMMOTH_MAL_PROGRAM_H_
