#ifndef MAMMOTH_MAL_PARSER_H_
#define MAMMOTH_MAL_PARSER_H_

#include <string>

#include "common/result.h"
#include "mal/program.h"

namespace mammoth::mal {

/// Parses the textual MAL listing produced by Program::ToString() back into
/// a Program (MAL *is* a language — Figure 1's front-ends emit exactly this
/// form). Round-trip guarantee: Parse(p.ToString()) is structurally equal
/// to p for every valid program.
///
/// Accepted line shape:
///   [(vN[, vN...]) := ] module.op(arg [, arg...]);
/// with args being vN variables, `nil`, integer/real literals, "strings",
/// comparison/arithmetic operator tokens, and the `desc`/`anti` flags.
Result<Program> ParseMal(const std::string& text);

}  // namespace mammoth::mal

#endif  // MAMMOTH_MAL_PARSER_H_
