#include "mal/parser.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <string_view>
#include <vector>

namespace mammoth::mal {

namespace {

/// One parsed argument of a MAL call.
struct Arg {
  enum class Kind { kVar, kNil, kInt, kReal, kString, kOp, kFlag } kind;
  int var = -1;
  int64_t i = 0;
  double d = 0;
  std::string s;  // string literal / op token / flag token
};

/// Splits one instruction line (without the trailing ';') at the top level.
class LineParser {
 public:
  explicit LineParser(std::string_view line) : s_(line) {}

  Status Parse(std::vector<int>* outputs, std::string* opname,
               std::vector<Arg>* args) {
    SkipWs();
    if (Peek() == '(') {
      // Output list.
      Get();
      while (true) {
        SkipWs();
        MAMMOTH_ASSIGN_OR_RETURN(int v, ParseVar());
        outputs->push_back(v);
        SkipWs();
        if (Peek() == ',') {
          Get();
          continue;
        }
        break;
      }
      MAMMOTH_RETURN_IF_ERROR(Expect(')'));
      SkipWs();
      MAMMOTH_RETURN_IF_ERROR(Expect(':'));
      MAMMOTH_RETURN_IF_ERROR(Expect('='));
    }
    SkipWs();
    // module.op name.
    while (std::isalnum(static_cast<unsigned char>(Peek())) ||
           Peek() == '.' || Peek() == '_') {
      opname->push_back(Get());
    }
    if (opname->empty()) return Status::InvalidArgument("mal: missing op");
    SkipWs();
    MAMMOTH_RETURN_IF_ERROR(Expect('('));
    SkipWs();
    if (Peek() != ')') {
      while (true) {
        MAMMOTH_ASSIGN_OR_RETURN(Arg a, ParseArg());
        args->push_back(std::move(a));
        SkipWs();
        if (Peek() == ',') {
          Get();
          SkipWs();
          continue;
        }
        break;
      }
    }
    MAMMOTH_RETURN_IF_ERROR(Expect(')'));
    return Status::OK();
  }

 private:
  char Peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  char Get() { return pos_ < s_.size() ? s_[pos_++] : '\0'; }
  void SkipWs() {
    while (std::isspace(static_cast<unsigned char>(Peek()))) Get();
  }
  Status Expect(char c) {
    if (Get() != c) {
      return Status::InvalidArgument(std::string("mal: expected '") + c +
                                     "'");
    }
    return Status::OK();
  }

  Result<int> ParseVar() {
    if (Get() != 'v') return Status::InvalidArgument("mal: expected vN");
    int v = 0;
    bool any = false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) {
      v = v * 10 + (Get() - '0');
      any = true;
    }
    if (!any) return Status::InvalidArgument("mal: expected var number");
    return v;
  }

  Result<Arg> ParseArg() {
    Arg a;
    const char c = Peek();
    if (c == '"') {
      Get();
      a.kind = Arg::Kind::kString;
      while (Peek() != '"' && Peek() != '\0') a.s.push_back(Get());
      if (Get() != '"') {
        return Status::InvalidArgument("mal: unterminated string");
      }
      return a;
    }
    if (c == 'v' && pos_ + 1 < s_.size() &&
        std::isdigit(static_cast<unsigned char>(s_[pos_ + 1]))) {
      MAMMOTH_ASSIGN_OR_RETURN(a.var, ParseVar());
      a.kind = Arg::Kind::kVar;
      return a;
    }
    if (std::isalpha(static_cast<unsigned char>(c))) {
      std::string word;
      while (std::isalnum(static_cast<unsigned char>(Peek()))) {
        word.push_back(Get());
      }
      if (word == "nil") {
        a.kind = Arg::Kind::kNil;
      } else if (word == "desc" || word == "anti") {
        a.kind = Arg::Kind::kFlag;
        a.s = word;
      } else if (word == "like") {
        a.kind = Arg::Kind::kOp;
        a.s = word;
      } else {
        return Status::InvalidArgument("mal: unknown token " + word);
      }
      return a;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < s_.size() &&
         std::isdigit(static_cast<unsigned char>(s_[pos_ + 1])))) {
      std::string num;
      num.push_back(Get());
      bool real = false;
      while (std::isdigit(static_cast<unsigned char>(Peek())) ||
             Peek() == '.') {
        if (Peek() == '.') real = true;
        num.push_back(Get());
      }
      if (real) {
        a.kind = Arg::Kind::kReal;
        a.d = std::stod(num);
      } else {
        a.kind = Arg::Kind::kInt;
        a.i = std::stoll(num);
      }
      return a;
    }
    // Operator tokens: == != <= >= < > + - * / %
    a.kind = Arg::Kind::kOp;
    a.s.push_back(Get());
    if ((a.s == "=" || a.s == "!" || a.s == "<" || a.s == ">") &&
        Peek() == '=') {
      a.s.push_back(Get());
    }
    return a;
  }

  std::string_view s_;
  size_t pos_ = 0;
};

Result<OpCode> OpFromName(const std::string& name) {
  static const std::map<std::string, OpCode> kOps = [] {
    std::map<std::string, OpCode> m;
    for (int i = 0; i <= static_cast<int>(OpCode::kResult); ++i) {
      const auto op = static_cast<OpCode>(i);
      m.emplace(OpCodeName(op), op);
    }
    return m;
  }();
  auto it = kOps.find(name);
  if (it == kOps.end()) return Status::InvalidArgument("mal: unknown op " + name);
  return it->second;
}

Result<CmpOp> CmpFromToken(const std::string& tok) {
  if (tok == "<") return CmpOp::kLt;
  if (tok == "<=") return CmpOp::kLe;
  if (tok == "==") return CmpOp::kEq;
  if (tok == "!=") return CmpOp::kNe;
  if (tok == ">=") return CmpOp::kGe;
  if (tok == ">") return CmpOp::kGt;
  if (tok == "like") return CmpOp::kLike;
  return Status::InvalidArgument("mal: bad comparison " + tok);
}

Result<algebra::ArithOp> ArithFromToken(const std::string& tok) {
  if (tok == "+") return algebra::ArithOp::kAdd;
  if (tok == "-") return algebra::ArithOp::kSub;
  if (tok == "*") return algebra::ArithOp::kMul;
  if (tok == "/") return algebra::ArithOp::kDiv;
  if (tok == "%") return algebra::ArithOp::kMod;
  return Status::InvalidArgument("mal: bad arith op " + tok);
}

Value ValueOfArg(const Arg& a) {
  switch (a.kind) {
    case Arg::Kind::kInt:
      return Value::Int(a.i);
    case Arg::Kind::kReal:
      return Value::Real(a.d);
    case Arg::Kind::kString:
      return Value::Str(a.s);
    case Arg::Kind::kNil:
    default:
      return Value::Nil();
  }
}

/// Splits args into buckets in order of appearance.
struct ArgBuckets {
  std::vector<std::string> strings;
  std::vector<int> vars;  // nil -> -1
  std::vector<Value> consts;
  std::vector<std::string> ops;
  bool flag = false;
};

ArgBuckets Bucketize(const std::vector<Arg>& args) {
  ArgBuckets b;
  for (const Arg& a : args) {
    switch (a.kind) {
      case Arg::Kind::kString:
        b.strings.push_back(a.s);
        break;
      case Arg::Kind::kVar:
        b.vars.push_back(a.var);
        break;
      case Arg::Kind::kNil:
        b.vars.push_back(-1);
        break;
      case Arg::Kind::kInt:
      case Arg::Kind::kReal:
        b.consts.push_back(ValueOfArg(a));
        break;
      case Arg::Kind::kOp:
        b.ops.push_back(a.s);
        break;
      case Arg::Kind::kFlag:
        b.flag = true;
        break;
    }
  }
  return b;
}

Status CheckShape(const ArgBuckets& b, size_t nvars, size_t nconsts,
                  size_t nstrings, size_t nops, size_t noutputs,
                  size_t want_outputs, const std::string& opname) {
  if (b.vars.size() != nvars || b.consts.size() != nconsts ||
      b.strings.size() != nstrings || b.ops.size() != nops ||
      noutputs != want_outputs) {
    return Status::InvalidArgument("mal: bad argument shape for " + opname);
  }
  return Status::OK();
}

}  // namespace

Result<Program> ParseMal(const std::string& text) {
  Program prog;
  int max_var = -1;
  std::vector<bool> defined;

  auto note_output = [&](int v) -> Status {
    if (v < 0) return Status::InvalidArgument("mal: negative variable");
    if (v >= static_cast<int>(defined.size())) defined.resize(v + 1, false);
    if (defined[v]) {
      return Status::InvalidArgument("mal: variable v" + std::to_string(v) +
                                     " assigned twice (SSA violation)");
    }
    defined[v] = true;
    max_var = std::max(max_var, v);
    return Status::OK();
  };
  auto check_input = [&](int v) -> Status {
    if (v < 0) return Status::OK();  // nil
    if (v >= static_cast<int>(defined.size()) || !defined[v]) {
      return Status::InvalidArgument("mal: use of undefined v" +
                                     std::to_string(v));
    }
    return Status::OK();
  };

  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find(';', start);
    if (end == std::string::npos) {
      // Only whitespace may remain.
      if (text.find_first_not_of(" \t\r\n", start) != std::string::npos) {
        return Status::InvalidArgument("mal: missing ';'");
      }
      break;
    }
    const std::string line = text.substr(start, end - start);
    start = end + 1;
    if (line.find_first_not_of(" \t\r\n") == std::string::npos) continue;

    std::vector<int> outputs;
    std::string opname;
    std::vector<Arg> args;
    LineParser lp(line);
    MAMMOTH_RETURN_IF_ERROR(lp.Parse(&outputs, &opname, &args));
    MAMMOTH_ASSIGN_OR_RETURN(OpCode op, OpFromName(opname));
    const ArgBuckets b = Bucketize(args);
    for (int v : outputs) MAMMOTH_RETURN_IF_ERROR(note_output(v));
    for (int v : b.vars) MAMMOTH_RETURN_IF_ERROR(check_input(v));

    Instr ins;
    ins.op = op;
    ins.outputs = outputs;
    ins.inputs = b.vars;
    ins.consts = b.consts;
    ins.flag = b.flag;
    const size_t no = outputs.size();
    switch (op) {
      case OpCode::kBind:
        MAMMOTH_RETURN_IF_ERROR(CheckShape(b, 0, 0, 2, 0, no, 1, opname));
        ins.table = b.strings[0];
        ins.column = b.strings[1];
        break;
      case OpCode::kBindCands:
        MAMMOTH_RETURN_IF_ERROR(CheckShape(b, 0, 0, 1, 0, no, 1, opname));
        ins.table = b.strings[0];
        break;
      case OpCode::kThetaSelect: {
        MAMMOTH_RETURN_IF_ERROR(CheckShape(b, 2, 1, 0, 1, no, 1, opname));
        MAMMOTH_ASSIGN_OR_RETURN(ins.cmp, CmpFromToken(b.ops[0]));
        break;
      }
      case OpCode::kRangeSelect:
        MAMMOTH_RETURN_IF_ERROR(CheckShape(b, 2, 2, 0, 0, no, 1, opname));
        break;
      case OpCode::kProject:
      case OpCode::kCalcBin: {
        MAMMOTH_RETURN_IF_ERROR(
            CheckShape(b, 2, 0, 0, op == OpCode::kCalcBin ? 1 : 0, no, 1,
                       opname));
        if (op == OpCode::kCalcBin) {
          MAMMOTH_ASSIGN_OR_RETURN(ins.arith, ArithFromToken(b.ops[0]));
        }
        break;
      }
      case OpCode::kJoin:
        MAMMOTH_RETURN_IF_ERROR(CheckShape(b, 2, 0, 0, 0, no, 2, opname));
        break;
      case OpCode::kGroup:
        MAMMOTH_RETURN_IF_ERROR(CheckShape(b, 3, 0, 0, 0, no, 3, opname));
        break;
      case OpCode::kAggrSum:
      case OpCode::kAggrCount:
      case OpCode::kAggrMin:
      case OpCode::kAggrMax:
      case OpCode::kAggrAvg:
        MAMMOTH_RETURN_IF_ERROR(CheckShape(b, 3, 0, 0, 0, no, 1, opname));
        break;
      case OpCode::kCalcConst: {
        MAMMOTH_RETURN_IF_ERROR(CheckShape(b, 1, 1, 0, 1, no, 1, opname));
        MAMMOTH_ASSIGN_OR_RETURN(ins.arith, ArithFromToken(b.ops[0]));
        break;
      }
      case OpCode::kSort:
        MAMMOTH_RETURN_IF_ERROR(CheckShape(b, 1, 0, 0, 0, no, 2, opname));
        break;
      case OpCode::kTopN:
        MAMMOTH_RETURN_IF_ERROR(CheckShape(b, 1, 1, 0, 0, no, 1, opname));
        break;
      case OpCode::kDistinct:
        MAMMOTH_RETURN_IF_ERROR(CheckShape(b, 1, 0, 0, 0, no, 1, opname));
        break;
      case OpCode::kResult:
        MAMMOTH_RETURN_IF_ERROR(CheckShape(b, 1, 0, 1, 0, no, 0, opname));
        ins.column = b.strings[0];
        break;
    }
    prog.mutable_instrs().push_back(std::move(ins));
  }
  // Reserve variable ids so the program can be extended after parsing.
  while (prog.nvars() <= max_var) prog.NewVar();
  return prog;
}

}  // namespace mammoth::mal
