#include "mal/optimizer.h"

#include <map>
#include <set>
#include <unordered_map>

namespace mammoth::mal {

size_t DeadCodeElimination(Program* p) {
  auto& instrs = p->mutable_instrs();
  std::set<int> live;
  std::vector<bool> keep(instrs.size(), false);
  for (size_t idx = instrs.size(); idx-- > 0;) {
    const Instr& ins = instrs[idx];
    bool needed = ins.op == OpCode::kResult;
    if (!needed) {
      for (int o : ins.outputs) {
        if (live.count(o) > 0) {
          needed = true;
          break;
        }
      }
    }
    if (needed) {
      keep[idx] = true;
      for (int in : ins.inputs) {
        if (in >= 0) live.insert(in);
      }
    }
  }
  size_t removed = 0;
  std::vector<Instr> kept;
  kept.reserve(instrs.size());
  for (size_t i = 0; i < instrs.size(); ++i) {
    if (keep[i]) {
      kept.push_back(std::move(instrs[i]));
    } else {
      ++removed;
    }
  }
  instrs = std::move(kept);
  return removed;
}

namespace {

/// Exact (collision-free) textual key of an instruction's computation.
std::string InstrKey(const Instr& ins) {
  std::string key = std::to_string(static_cast<int>(ins.op));
  key += '|';
  key += ins.table;
  key += '|';
  key += ins.column;
  key += '|';
  for (int in : ins.inputs) {
    key += std::to_string(in);
    key += ',';
  }
  key += '|';
  for (const Value& c : ins.consts) {
    key += c.ToString();
    key += ',';
  }
  key += '|';
  key += std::to_string(static_cast<int>(ins.cmp));
  key += '|';
  key += std::to_string(static_cast<int>(ins.arith));
  key += '|';
  key += ins.flag ? '1' : '0';
  return key;
}

}  // namespace

size_t CommonSubexpressionElimination(Program* p) {
  auto& instrs = p->mutable_instrs();
  std::unordered_map<std::string, std::vector<int>> seen;  // key -> outputs
  std::unordered_map<int, int> alias;  // var -> canonical var
  size_t replaced = 0;

  auto canon = [&](int v) {
    auto it = alias.find(v);
    return it == alias.end() ? v : it->second;
  };

  std::vector<Instr> out;
  out.reserve(instrs.size());
  for (Instr& ins : instrs) {
    for (int& in : ins.inputs) {
      if (in >= 0) in = canon(in);
    }
    // Binds depend on table state; they are pure within one program run, so
    // they participate in CSE too (same table+column -> same BAT).
    const std::string key = InstrKey(ins);
    auto it = seen.find(key);
    if (it != seen.end() && ins.op != OpCode::kResult) {
      for (size_t o = 0; o < ins.outputs.size(); ++o) {
        alias[ins.outputs[o]] = it->second[o];
      }
      ++replaced;
      continue;  // drop the duplicate instruction
    }
    if (ins.op != OpCode::kResult) {
      seen.emplace(key, ins.outputs);
    }
    out.push_back(std::move(ins));
  }
  instrs = std::move(out);
  return replaced;
}

size_t SelectFusion(Program* p) {
  auto& instrs = p->mutable_instrs();
  // Map output var -> defining instruction index.
  std::unordered_map<int, size_t> def;
  for (size_t i = 0; i < instrs.size(); ++i) {
    for (int o : instrs[i].outputs) def[o] = i;
  }
  size_t fused = 0;
  for (Instr& ins : instrs) {
    if (ins.op != OpCode::kThetaSelect) continue;
    if (ins.cmp != CmpOp::kLe && ins.cmp != CmpOp::kGe) continue;
    if (ins.inputs[1] < 0) continue;
    auto dit = def.find(ins.inputs[1]);
    if (dit == def.end()) continue;
    const Instr& first = instrs[dit->second];
    if (first.op != OpCode::kThetaSelect) continue;
    if (first.inputs[0] != ins.inputs[0]) continue;  // different column
    const bool lo_then_hi =
        first.cmp == CmpOp::kGe && ins.cmp == CmpOp::kLe;
    const bool hi_then_lo =
        first.cmp == CmpOp::kLe && ins.cmp == CmpOp::kGe;
    if (!lo_then_hi && !hi_then_lo) continue;
    const Value lo = lo_then_hi ? first.consts[0] : ins.consts[0];
    const Value hi = lo_then_hi ? ins.consts[0] : first.consts[0];
    // Rewrite the second select into one range select over the first's
    // candidates; DCE removes the first when it has no other consumer.
    ins.op = OpCode::kRangeSelect;
    ins.inputs = {ins.inputs[0], first.inputs[1]};
    ins.consts = {lo, hi};
    ins.flag = false;
    ++fused;
  }
  return fused;
}

std::string PipelineReport::ToString() const {
  return "optimizer: fused=" + std::to_string(fused) +
         " cse=" + std::to_string(cse) + " dce=" + std::to_string(dce) +
         " rounds=" + std::to_string(rounds);
}

PipelineReport OptimizePipeline(Program* p, size_t max_rounds) {
  PipelineReport report;
  for (size_t round = 0; round < max_rounds; ++round) {
    const size_t fused = SelectFusion(p);
    const size_t cse = CommonSubexpressionElimination(p);
    const size_t dce = DeadCodeElimination(p);
    report.fused += fused;
    report.cse += cse;
    report.dce += dce;
    report.rounds = round + 1;
    if (fused + cse + dce == 0) break;
  }
  return report;
}

}  // namespace mammoth::mal
