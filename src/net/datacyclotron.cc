#include "net/datacyclotron.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"

namespace mammoth::net {

std::string RingStats::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "makespan=%.4fs throughput=%.0f q/s latency=%.2fms "
                "wait=%.2fms cpu=%.0f%%",
                makespan, throughput, avg_latency * 1e3, avg_wait * 1e3,
                cpu_utilization * 100);
  return buf;
}

namespace {

struct Arrival {
  double time;
  size_t node;
  size_t partition;
};

std::vector<Arrival> GenerateArrivals(const RingConfig& c) {
  Rng rng(c.seed);
  std::vector<Arrival> out;
  out.reserve(c.num_queries);
  double t = 0;
  for (size_t i = 0; i < c.num_queries; ++i) {
    // Exponential inter-arrival times (Poisson process).
    const double u = std::max(rng.NextDouble(), 1e-12);
    t += -std::log(u) / c.arrival_rate;
    out.push_back({t, rng.Uniform(c.nodes), rng.Uniform(c.partitions)});
  }
  return out;
}

RingStats Summarize(const std::vector<Arrival>& arrivals,
                    const std::vector<double>& completion, size_t nodes,
                    double process_seconds) {
  RingStats s;
  double total_latency = 0;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    s.makespan = std::max(s.makespan, completion[i]);
    total_latency += completion[i] - arrivals[i].time;
  }
  const double n = static_cast<double>(arrivals.size());
  s.throughput = s.makespan > 0 ? n / s.makespan : 0;
  s.avg_latency = total_latency / n;
  s.avg_wait = s.avg_latency - process_seconds;
  s.cpu_utilization =
      s.makespan > 0
          ? n * process_seconds / (static_cast<double>(nodes) * s.makespan)
          : 0;
  return s;
}

}  // namespace

RingStats SimulateRing(const RingConfig& config) {
  const std::vector<Arrival> arrivals = GenerateArrivals(config);
  std::vector<double> cpu_free(config.nodes, 0.0);
  std::vector<double> completion(arrivals.size(), 0.0);
  const double hop = config.EffectiveHopSeconds();
  const size_t n = config.nodes;

  for (size_t i = 0; i < arrivals.size(); ++i) {
    const Arrival& a = arrivals[i];
    // Earliest instant this query could run: data must be resident AND the
    // node's CPU free.
    const double ready = std::max(a.time, cpu_free[a.node]);
    // Partition p is at node (p + k) mod n during [k*hop, (k+1)*hop).
    const uint64_t k0 = static_cast<uint64_t>(ready / hop);
    const uint64_t need =
        (a.node + n - (a.partition + k0) % n) % n;  // laps to wait
    const uint64_t k = k0 + need;
    const double start = need == 0 ? ready : static_cast<double>(k) * hop;
    completion[i] = start + config.process_seconds;
    cpu_free[a.node] = completion[i];
  }
  return Summarize(arrivals, completion, config.nodes,
                   config.process_seconds);
}

RingStats SimulateCentralized(const RingConfig& config) {
  const std::vector<Arrival> arrivals = GenerateArrivals(config);
  std::vector<double> completion(arrivals.size(), 0.0);
  double cpu_free = 0;
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const double start = std::max(arrivals[i].time, cpu_free);
    completion[i] = start + config.process_seconds;
    cpu_free = completion[i];
  }
  return Summarize(arrivals, completion, 1, config.process_seconds);
}

}  // namespace mammoth::net
