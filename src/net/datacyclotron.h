#ifndef MAMMOTH_NET_DATACYCLOTRON_H_
#define MAMMOTH_NET_DATACYCLOTRON_H_

#include <cstdint>
#include <string>

#include "common/result.h"

namespace mammoth::net {

/// DataCyclotron simulation (§6.2, [13]): the database hot-set floats
/// around a ring of nodes via RDMA-style transfers that bypass the CPU.
/// A query waits at its node until the partition it needs passes by, then
/// processes it locally.
///
/// Substitution note (DESIGN.md §3): we have no RDMA cluster, so the ring
/// is a discrete-event simulation. Partition motion is deterministic
/// (partition p sits at node (p + floor(t/hop)) mod N for hop time `hop`),
/// which models CPU-bypassing forwarding: movement consumes *no* node CPU.
struct RingConfig {
  size_t nodes = 4;
  size_t partitions = 16;       ///< hot-set partitions circling the ring
  double hop_seconds = 0.0005;  ///< per-hop RDMA latency component
  double process_seconds = 0.002;  ///< CPU time per query
  size_t num_queries = 1000;
  double arrival_rate = 10000;  ///< queries/second entering the system
  uint64_t seed = 42;

  /// Bandwidth model: every hop, each link forwards its node's share of the
  /// hot set (partitions/nodes x partition_bytes). 0 bandwidth disables the
  /// term (hop time = hop_seconds).
  double partition_bytes = 1 << 20;
  double link_bytes_per_second = 10e9 / 8;  ///< 10 Gbit RDMA NIC

  /// Effective time of one ring step given latency + transfer volume.
  double EffectiveHopSeconds() const {
    if (link_bytes_per_second <= 0) return hop_seconds;
    const double share = partition_bytes *
                         (static_cast<double>(partitions) /
                          static_cast<double>(nodes));
    return hop_seconds + share / link_bytes_per_second;
  }
};

struct RingStats {
  double makespan = 0;        ///< completion time of the last query
  double throughput = 0;      ///< queries per second (num/makespan)
  double avg_latency = 0;     ///< arrival -> completion
  double avg_wait = 0;        ///< time spent waiting for data + CPU
  double cpu_utilization = 0; ///< busy time / (nodes * makespan)

  std::string ToString() const;
};

/// Runs the ring simulation. Queries arrive Poisson at random nodes, each
/// needing one uniformly random hot-set partition.
RingStats SimulateRing(const RingConfig& config);

/// Baseline: one server owns all data; queries queue for its single CPU.
RingStats SimulateCentralized(const RingConfig& config);

}  // namespace mammoth::net

#endif  // MAMMOTH_NET_DATACYCLOTRON_H_
