#ifndef MAMMOTH_LAYOUT_ROW_SCHEMA_H_
#define MAMMOTH_LAYOUT_ROW_SCHEMA_H_

#include <cstddef>
#include <vector>

#include "core/types.h"

namespace mammoth::layout {

/// Fixed-width record schema shared by the NSM and PAX stores (the §7
/// storage-layout comparison substrates). Numeric columns only: the layout
/// experiments are about cache behaviour, not type systems.
class RowSchema {
 public:
  explicit RowSchema(std::vector<PhysType> types) : types_(std::move(types)) {
    offsets_.reserve(types_.size());
    size_t off = 0;
    for (PhysType t : types_) {
      offsets_.push_back(off);
      off += TypeWidth(t);
    }
    row_width_ = off;
  }

  size_t NumColumns() const { return types_.size(); }
  PhysType type(size_t col) const { return types_[col]; }
  size_t offset(size_t col) const { return offsets_[col]; }
  size_t width(size_t col) const { return TypeWidth(types_[col]); }
  size_t row_width() const { return row_width_; }

 private:
  std::vector<PhysType> types_;
  std::vector<size_t> offsets_;
  size_t row_width_ = 0;
};

}  // namespace mammoth::layout

#endif  // MAMMOTH_LAYOUT_ROW_SCHEMA_H_
