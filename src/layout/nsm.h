#ifndef MAMMOTH_LAYOUT_NSM_H_
#define MAMMOTH_LAYOUT_NSM_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "layout/row_schema.h"

namespace mammoth::layout {

/// N-ary Storage Model: the traditional slotted-page row store (§7).
/// Records live contiguously within fixed-size pages; reading one column
/// drags every column's bytes through the cache, reading one whole tuple
/// touches a single page.
class NsmStore {
 public:
  static constexpr size_t kDefaultPageBytes = 8192;

  explicit NsmStore(RowSchema schema, size_t page_bytes = kDefaultPageBytes)
      : schema_(std::move(schema)),
        page_bytes_(page_bytes),
        rows_per_page_(page_bytes / schema_.row_width()) {
    MAMMOTH_CHECK(rows_per_page_ > 0, "row wider than page");
  }

  size_t RowCount() const { return nrows_; }
  size_t PageCount() const { return pages_.size(); }
  const RowSchema& schema() const { return schema_; }

  /// Appends one row from a packed byte image (schema.row_width() bytes).
  void AppendRow(const void* row_bytes) {
    const size_t slot = nrows_ % rows_per_page_;
    if (slot == 0) {
      pages_.push_back(std::make_unique<uint8_t[]>(page_bytes_));
    }
    std::memcpy(pages_.back().get() + slot * schema_.row_width(), row_bytes,
                schema_.row_width());
    ++nrows_;
  }

  /// Pointer to a field's bytes.
  const uint8_t* FieldPtr(size_t row, size_t col) const {
    const size_t page = row / rows_per_page_;
    const size_t slot = row % rows_per_page_;
    return pages_[page].get() + slot * schema_.row_width() +
           schema_.offset(col);
  }

  template <typename T>
  T Field(size_t row, size_t col) const {
    T v;
    std::memcpy(&v, FieldPtr(row, col), sizeof(T));
    return v;
  }

  /// Copies one full row out (tuple reconstruction is a single memcpy).
  void ReadRow(size_t row, void* out) const {
    const size_t page = row / rows_per_page_;
    const size_t slot = row % rows_per_page_;
    std::memcpy(out, pages_[page].get() + slot * schema_.row_width(),
                schema_.row_width());
  }

 private:
  RowSchema schema_;
  size_t page_bytes_;
  size_t rows_per_page_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  size_t nrows_ = 0;
};

}  // namespace mammoth::layout

#endif  // MAMMOTH_LAYOUT_NSM_H_
