#ifndef MAMMOTH_LAYOUT_PAX_H_
#define MAMMOTH_LAYOUT_PAX_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "layout/row_schema.h"

namespace mammoth::layout {

/// PAX — Partition Attributes Across ([5], §7): NSM-like pages, but inside
/// each page the records are decomposed into per-column "minipages". One
/// page still holds whole tuples (NSM's I/O behaviour), while a
/// single-column scan within the page touches contiguous bytes (DSM's
/// cache behaviour).
class PaxStore {
 public:
  static constexpr size_t kDefaultPageBytes = 8192;

  explicit PaxStore(RowSchema schema, size_t page_bytes = kDefaultPageBytes)
      : schema_(std::move(schema)),
        page_bytes_(page_bytes),
        rows_per_page_(page_bytes / schema_.row_width()) {
    MAMMOTH_CHECK(rows_per_page_ > 0, "row wider than page");
    // Minipage c starts after all previous columns' minipages.
    size_t off = 0;
    for (size_t c = 0; c < schema_.NumColumns(); ++c) {
      minipage_offset_.push_back(off);
      off += schema_.width(c) * rows_per_page_;
    }
  }

  size_t RowCount() const { return nrows_; }
  size_t PageCount() const { return pages_.size(); }
  const RowSchema& schema() const { return schema_; }
  size_t rows_per_page() const { return rows_per_page_; }

  /// Appends one row from a packed NSM-style byte image; the fields are
  /// scattered into their minipages.
  void AppendRow(const void* row_bytes) {
    const size_t slot = nrows_ % rows_per_page_;
    if (slot == 0) {
      pages_.push_back(std::make_unique<uint8_t[]>(page_bytes_));
    }
    const auto* src = static_cast<const uint8_t*>(row_bytes);
    uint8_t* page = pages_.back().get();
    for (size_t c = 0; c < schema_.NumColumns(); ++c) {
      std::memcpy(page + minipage_offset_[c] + slot * schema_.width(c),
                  src + schema_.offset(c), schema_.width(c));
    }
    ++nrows_;
  }

  const uint8_t* FieldPtr(size_t row, size_t col) const {
    const size_t page = row / rows_per_page_;
    const size_t slot = row % rows_per_page_;
    return pages_[page].get() + minipage_offset_[col] +
           slot * schema_.width(col);
  }

  template <typename T>
  T Field(size_t row, size_t col) const {
    T v;
    std::memcpy(&v, FieldPtr(row, col), sizeof(T));
    return v;
  }

  /// Reconstructs one full tuple into a packed row image (gathers from all
  /// minipages of the row's page — same page, several cache lines).
  void ReadRow(size_t row, void* out) const {
    auto* dst = static_cast<uint8_t*>(out);
    for (size_t c = 0; c < schema_.NumColumns(); ++c) {
      std::memcpy(dst + schema_.offset(c), FieldPtr(row, c),
                  schema_.width(c));
    }
  }

 private:
  RowSchema schema_;
  size_t page_bytes_;
  size_t rows_per_page_;
  std::vector<size_t> minipage_offset_;
  std::vector<std::unique_ptr<uint8_t[]>> pages_;
  size_t nrows_ = 0;
};

}  // namespace mammoth::layout

#endif  // MAMMOTH_LAYOUT_PAX_H_
