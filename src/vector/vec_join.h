#ifndef MAMMOTH_VECTOR_VEC_JOIN_H_
#define MAMMOTH_VECTOR_VEC_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "core/bat.h"

namespace mammoth::vec {

/// Vectorized N:1 hash join (§5): the build side (a key column with unique
/// values — the dimension table of a star query) is hashed once; probing
/// happens vector-at-a-time, shrinking the selection vector to matching
/// lanes and recording the build-side row for each, so payload columns can
/// be gathered per vector while everything is cache-resident.
class VecHashJoin {
 public:
  /// Builds over a unique-key :int column. Duplicate keys are rejected
  /// (N:1 semantics; use the BAT-algebra join for M:N).
  static Result<VecHashJoin> Build(const BatPtr& build_keys);

  /// Probes the `n` values of `keys`, restricted to `sel_in`/`sel_n` when
  /// `sel_in` != nullptr. Matching lane indexes go to `sel_out`, the
  /// build-side row of each match to `rows_out` (parallel to sel_out).
  /// Returns the match count.
  size_t ProbeVector(const int32_t* keys, size_t n, const uint32_t* sel_in,
                     size_t sel_n, uint32_t* sel_out,
                     uint32_t* rows_out) const;

  /// Gathers `payload[rows[i]]` into out[sel[i]] for i in [0, k): the
  /// fetched build-side column lands in lane positions so later stages see
  /// it as a regular register.
  template <typename T>
  void Gather(const T* payload, const uint32_t* rows, const uint32_t* sel,
              size_t k, T* out) const {
    for (size_t i = 0; i < k; ++i) out[sel[i]] = payload[rows[i]];
  }

  size_t BuildCount() const { return keys_.size(); }

 private:
  std::vector<int32_t> keys_;
  std::vector<uint32_t> buckets_;  // 1-based heads
  std::vector<uint32_t> next_;
  uint64_t mask_ = 0;
};

}  // namespace mammoth::vec

#endif  // MAMMOTH_VECTOR_VEC_JOIN_H_
