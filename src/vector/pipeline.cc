#include "vector/pipeline.h"

#include <algorithm>
#include <cstring>
#include <limits>

namespace mammoth::vec {

namespace {

bool SupportedRegType(PhysType t) {
  return t == PhysType::kInt32 || t == PhysType::kInt64 ||
         t == PhysType::kDouble;
}

/// Dispatches a callable templated over the register's C++ type.
template <typename Fn>
decltype(auto) DispatchReg(PhysType t, Fn&& fn) {
  switch (t) {
    case PhysType::kInt32:
      return fn(std::type_identity<int32_t>{});
    case PhysType::kInt64:
      return fn(std::type_identity<int64_t>{});
    default:
      return fn(std::type_identity<double>{});
  }
}

template <typename T>
void RunBin(BinOp op, const T* a, const T* b, T* out, size_t n,
            const uint32_t* sel, size_t sel_n) {
  switch (op) {
    case BinOp::kAdd:
      MapColCol<T, BinOp::kAdd>(a, b, out, n, sel, sel_n);
      break;
    case BinOp::kSub:
      MapColCol<T, BinOp::kSub>(a, b, out, n, sel, sel_n);
      break;
    case BinOp::kMul:
      MapColCol<T, BinOp::kMul>(a, b, out, n, sel, sel_n);
      break;
    case BinOp::kDiv:
      MapColCol<T, BinOp::kDiv>(a, b, out, n, sel, sel_n);
      break;
  }
}

template <typename T>
void RunBinConst(BinOp op, const T* a, T c, T* out, size_t n,
                 const uint32_t* sel, size_t sel_n) {
  switch (op) {
    case BinOp::kAdd:
      MapColConst<T, BinOp::kAdd>(a, c, out, n, sel, sel_n);
      break;
    case BinOp::kSub:
      MapColConst<T, BinOp::kSub>(a, c, out, n, sel, sel_n);
      break;
    case BinOp::kMul:
      MapColConst<T, BinOp::kMul>(a, c, out, n, sel, sel_n);
      break;
    case BinOp::kDiv:
      MapColConst<T, BinOp::kDiv>(a, c, out, n, sel, sel_n);
      break;
  }
}

}  // namespace

Pipeline::Pipeline(std::vector<PipelineColumn> columns, size_t vector_size)
    : columns_(std::move(columns)),
      vector_size_(vector_size == 0 ? 1 : vector_size) {
  for (const PipelineColumn& c : columns_) {
    reg_types_.push_back(c.type());
  }
  nrows_ = columns_.empty() ? 0 : columns_[0].count();
}

Status Pipeline::ValidateReg(size_t reg) const {
  if (reg >= reg_types_.size()) {
    return Status::InvalidArgument("pipeline: no such register");
  }
  if (!SupportedRegType(reg_types_[reg])) {
    return Status::TypeMismatch("pipeline: register type unsupported");
  }
  return Status::OK();
}

Status Pipeline::AddSelectRange(size_t reg, double lo, double hi) {
  MAMMOTH_RETURN_IF_ERROR(ValidateReg(reg));
  Stage s;
  s.kind = Stage::Kind::kSelect;
  s.a = reg;
  s.lo = lo;
  s.hi = hi;
  stages_.push_back(s);
  return Status::OK();
}

Result<size_t> Pipeline::AddMapColCol(BinOp op, size_t a, size_t b) {
  MAMMOTH_RETURN_IF_ERROR(ValidateReg(a));
  MAMMOTH_RETURN_IF_ERROR(ValidateReg(b));
  if (reg_types_[a] != reg_types_[b]) {
    return Status::TypeMismatch("pipeline map: operand types differ");
  }
  Stage s;
  s.kind = Stage::Kind::kMapCC;
  s.op = op;
  s.a = a;
  s.b = b;
  s.dst = reg_types_.size();
  reg_types_.push_back(reg_types_[a]);
  stages_.push_back(s);
  return s.dst;
}

Result<size_t> Pipeline::AddMapColConst(BinOp op, size_t a, double c) {
  MAMMOTH_RETURN_IF_ERROR(ValidateReg(a));
  Stage s;
  s.kind = Stage::Kind::kMapCK;
  s.op = op;
  s.a = a;
  s.c = c;
  s.dst = reg_types_.size();
  reg_types_.push_back(reg_types_[a]);
  stages_.push_back(s);
  return s.dst;
}

Result<size_t> Pipeline::AddCast(size_t src, PhysType to) {
  MAMMOTH_RETURN_IF_ERROR(ValidateReg(src));
  if (!SupportedRegType(to)) {
    return Status::TypeMismatch("pipeline cast: unsupported target");
  }
  Stage s;
  s.kind = Stage::Kind::kCast;
  s.a = src;
  s.dst = reg_types_.size();
  reg_types_.push_back(to);
  stages_.push_back(s);
  return s.dst;
}

Result<size_t> Pipeline::AddHashProbe(size_t key_reg, const VecHashJoin* join,
                                      BatPtr payload) {
  MAMMOTH_RETURN_IF_ERROR(ValidateReg(key_reg));
  if (reg_types_[key_reg] != PhysType::kInt32) {
    return Status::TypeMismatch("pipeline probe: key register must be :int");
  }
  if (join == nullptr || payload == nullptr) {
    return Status::InvalidArgument("pipeline probe: null join or payload");
  }
  if (!SupportedRegType(payload->type()) || payload->IsDenseTail()) {
    return Status::TypeMismatch(
        "pipeline probe: payload must be a materialized int/lng/dbl BAT");
  }
  if (payload->Count() != join->BuildCount()) {
    return Status::InvalidArgument(
        "pipeline probe: payload misaligned with build side");
  }
  Stage s;
  s.kind = Stage::Kind::kHashProbe;
  s.a = key_reg;
  s.join = join;
  s.payload = std::move(payload);
  s.dst = reg_types_.size();
  reg_types_.push_back(s.payload->type());
  stages_.push_back(s);
  return s.dst;
}

Status Pipeline::SetAggregate(size_t group_reg, size_t ngroups,
                              std::vector<AggSpec> specs) {
  if (group_reg != kNoGroup) {
    MAMMOTH_RETURN_IF_ERROR(ValidateReg(group_reg));
    if (reg_types_[group_reg] != PhysType::kInt32) {
      return Status::TypeMismatch("pipeline: group register must be :int");
    }
    if (ngroups == 0) {
      return Status::InvalidArgument("pipeline: ngroups must be > 0");
    }
  }
  for (const AggSpec& a : specs) {
    if (a.fn != AggFn::kCount) MAMMOTH_RETURN_IF_ERROR(ValidateReg(a.reg));
  }
  has_agg_ = true;
  group_reg_ = group_reg;
  ngroups_ = group_reg == kNoGroup ? 1 : ngroups;
  agg_specs_ = std::move(specs);
  return Status::OK();
}

Status Pipeline::LoadBatch(size_t start, size_t n, Batch* batch) {
  batch->count = n;
  batch->has_sel = false;
  batch->sel_count = 0;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (columns_[c].compressed != nullptr) {
      // Decompress straight into the cache-resident vector (§5).
      MAMMOTH_RETURN_IF_ERROR(columns_[c].compressed->DecodeRange(
          start, n, batch->regs[c].Data<int32_t>()));
      continue;
    }
    const size_t width = batch->regs[c].width();
    std::memcpy(
        batch->regs[c].raw(),
        static_cast<const uint8_t*>(columns_[c].bat->tail().raw_data()) +
            start * width,
        n * width);
  }
  return Status::OK();
}

Status Pipeline::RunStages(Batch* batch) {
  for (const Stage& s : stages_) {
    const uint32_t* sel = batch->has_sel ? batch->sel.data() : nullptr;
    const size_t sel_n = batch->sel_count;
    const size_t n = batch->count;
    switch (s.kind) {
      case Stage::Kind::kSelect: {
        // Reuses the pipeline scratch buffer: no allocation per vector.
        if (scratch_sel_.size() < n) scratch_sel_.resize(vector_size_);
        std::vector<uint32_t>& out = scratch_sel_;
        size_t k = 0;
        DispatchReg(reg_types_[s.a], [&](auto tag) {
          using T = typename decltype(tag)::type;
          const T lo = s.lo <= static_cast<double>(
                                   std::numeric_limits<T>::lowest())
                           ? std::numeric_limits<T>::lowest()
                           : static_cast<T>(s.lo);
          const T hi =
              s.hi >= static_cast<double>(std::numeric_limits<T>::max())
                  ? std::numeric_limits<T>::max()
                  : static_cast<T>(s.hi);
          k = SelRange<T>(batch->regs[s.a].Data<T>(), n, lo, hi, sel, sel_n,
                          out.data());
        });
        std::swap(batch->sel, scratch_sel_);
        batch->has_sel = true;
        batch->sel_count = k;
        break;
      }
      case Stage::Kind::kMapCC:
        DispatchReg(reg_types_[s.a], [&](auto tag) {
          using T = typename decltype(tag)::type;
          RunBin<T>(s.op, batch->regs[s.a].Data<T>(),
                    batch->regs[s.b].Data<T>(), batch->regs[s.dst].Data<T>(),
                    n, sel, sel_n);
        });
        break;
      case Stage::Kind::kMapCK:
        DispatchReg(reg_types_[s.a], [&](auto tag) {
          using T = typename decltype(tag)::type;
          RunBinConst<T>(s.op, batch->regs[s.a].Data<T>(),
                         static_cast<T>(s.c), batch->regs[s.dst].Data<T>(),
                         n, sel, sel_n);
        });
        break;
      case Stage::Kind::kHashProbe: {
        if (scratch_sel_.size() < vector_size_) {
          scratch_sel_.resize(vector_size_);
        }
        if (scratch_rows_.size() < vector_size_) {
          scratch_rows_.resize(vector_size_);
        }
        const size_t k = s.join->ProbeVector(
            batch->regs[s.a].Data<int32_t>(), n, sel, sel_n,
            scratch_sel_.data(), scratch_rows_.data());
        DispatchReg(reg_types_[s.dst], [&](auto tag) {
          using T = typename decltype(tag)::type;
          s.join->Gather<T>(s.payload->TailData<T>(), scratch_rows_.data(),
                            scratch_sel_.data(), k,
                            batch->regs[s.dst].Data<T>());
        });
        std::swap(batch->sel, scratch_sel_);
        batch->has_sel = true;
        batch->sel_count = k;
        break;
      }
      case Stage::Kind::kCast:
        DispatchReg(reg_types_[s.a], [&](auto src_tag) {
          using Src = typename decltype(src_tag)::type;
          DispatchReg(reg_types_[s.dst], [&](auto dst_tag) {
            using Dst = typename decltype(dst_tag)::type;
            MapCast<Src, Dst>(batch->regs[s.a].Data<Src>(),
                              batch->regs[s.dst].Data<Dst>(), n, sel, sel_n);
          });
        });
        break;
    }
  }
  return Status::OK();
}

Status Pipeline::ValidateColumns() const {
  for (const PipelineColumn& c : columns_) {
    if (c.compressed != nullptr) {
      if (c.compressed->Count() != nrows_) {
        return Status::InvalidArgument("pipeline: column lengths differ");
      }
      continue;
    }
    if (c.bat == nullptr || c.bat->IsDenseTail() ||
        !SupportedRegType(c.bat->type())) {
      return Status::InvalidArgument(
          "pipeline: columns must be materialized int/lng/dbl BATs");
    }
    if (c.bat->Count() != nrows_) {
      return Status::InvalidArgument("pipeline: column lengths differ");
    }
  }
  return Status::OK();
}

Result<AggResult> Pipeline::Run() {
  if (!has_agg_) {
    return Status::InvalidArgument("pipeline: no aggregate sink configured");
  }
  MAMMOTH_RETURN_IF_ERROR(ValidateColumns());

  Batch batch;
  for (PhysType t : reg_types_) batch.AddRegister(t, vector_size_);

  AggResult result;
  result.ngroups = ngroups_;
  result.aggregates.assign(agg_specs_.size(),
                           std::vector<double>(ngroups_, 0.0));
  for (size_t a = 0; a < agg_specs_.size(); ++a) {
    if (agg_specs_[a].fn == AggFn::kMin) {
      result.aggregates[a].assign(ngroups_,
                                  std::numeric_limits<double>::infinity());
    } else if (agg_specs_[a].fn == AggFn::kMax) {
      result.aggregates[a].assign(ngroups_,
                                  -std::numeric_limits<double>::infinity());
    }
  }
  std::vector<uint32_t> gid(vector_size_, 0);

  for (size_t start = 0; start < nrows_; start += vector_size_) {
    const size_t n = std::min(vector_size_, nrows_ - start);
    MAMMOTH_RETURN_IF_ERROR(LoadBatch(start, n, &batch));
    MAMMOTH_RETURN_IF_ERROR(RunStages(&batch));
    const uint32_t* sel = batch.has_sel ? batch.sel.data() : nullptr;
    const size_t sel_n = batch.sel_count;

    if (group_reg_ != kNoGroup) {
      const int32_t* g = batch.regs[group_reg_].Data<int32_t>();
      if (sel == nullptr) {
        for (size_t i = 0; i < n; ++i) {
          if (static_cast<uint32_t>(g[i]) >= ngroups_) {
            return Status::OutOfRange("pipeline: group id out of range");
          }
          gid[i] = static_cast<uint32_t>(g[i]);
        }
      } else {
        for (size_t s = 0; s < sel_n; ++s) {
          const uint32_t i = sel[s];
          if (static_cast<uint32_t>(g[i]) >= ngroups_) {
            return Status::OutOfRange("pipeline: group id out of range");
          }
          gid[i] = static_cast<uint32_t>(g[i]);
        }
      }
    }

    for (size_t a = 0; a < agg_specs_.size(); ++a) {
      const AggSpec& spec = agg_specs_[a];
      double* acc = result.aggregates[a].data();
      if (spec.fn == AggFn::kCount) {
        if (sel == nullptr) {
          for (size_t i = 0; i < n; ++i) acc[gid[i]] += 1.0;
        } else {
          for (size_t s = 0; s < sel_n; ++s) acc[gid[sel[s]]] += 1.0;
        }
        continue;
      }
      DispatchReg(reg_types_[spec.reg], [&](auto tag) {
        using T = typename decltype(tag)::type;
        const T* v = batch.regs[spec.reg].Data<T>();
        auto update = [&](size_t i) {
          const double x = static_cast<double>(v[i]);
          switch (spec.fn) {
            case AggFn::kSum:
              acc[gid[i]] += x;
              break;
            case AggFn::kMin:
              if (x < acc[gid[i]]) acc[gid[i]] = x;
              break;
            case AggFn::kMax:
              if (x > acc[gid[i]]) acc[gid[i]] = x;
              break;
            case AggFn::kCount:
              break;
          }
        };
        if (sel == nullptr) {
          for (size_t i = 0; i < n; ++i) update(i);
        } else {
          for (size_t s = 0; s < sel_n; ++s) update(sel[s]);
        }
      });
    }
  }
  return result;
}

Result<BatPtr> Pipeline::RunMaterialize(size_t reg) {
  if (has_agg_) {
    return Status::InvalidArgument(
        "pipeline: aggregate sink configured; use Run()");
  }
  MAMMOTH_RETURN_IF_ERROR(ValidateReg(reg));
  MAMMOTH_RETURN_IF_ERROR(ValidateColumns());
  Batch batch;
  for (PhysType t : reg_types_) batch.AddRegister(t, vector_size_);

  BatPtr out = Bat::New(reg_types_[reg]);
  for (size_t start = 0; start < nrows_; start += vector_size_) {
    const size_t n = std::min(vector_size_, nrows_ - start);
    MAMMOTH_RETURN_IF_ERROR(LoadBatch(start, n, &batch));
    MAMMOTH_RETURN_IF_ERROR(RunStages(&batch));
    DispatchReg(reg_types_[reg], [&](auto tag) {
      using T = typename decltype(tag)::type;
      const T* v = batch.regs[reg].Data<T>();
      if (batch.has_sel) {
        for (size_t s = 0; s < batch.sel_count; ++s) {
          out->tail().Append<T>(v[batch.sel[s]]);
        }
      } else {
        out->AppendRaw(v, n);
      }
    });
  }
  return out;
}

}  // namespace mammoth::vec
