#ifndef MAMMOTH_VECTOR_VEC_H_
#define MAMMOTH_VECTOR_VEC_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "core/types.h"

namespace mammoth::vec {

/// One column slice ("vector") flowing through the X100-style pipeline
/// (§5): at most `capacity` values of one type, small enough that all
/// vectors of a query stay CPU-cache resident when the vector size is tuned
/// right.
class Vec {
 public:
  Vec() = default;
  Vec(PhysType type, size_t capacity)
      : type_(type), width_(TypeWidth(type)), storage_(capacity * width_) {}

  PhysType type() const { return type_; }
  size_t capacity() const { return width_ == 0 ? 0 : storage_.size() / width_; }

  template <typename T>
  T* Data() {
    MAMMOTH_DCHECK(sizeof(T) == width_, "vec width mismatch");
    return reinterpret_cast<T*>(storage_.data());
  }
  template <typename T>
  const T* Data() const {
    MAMMOTH_DCHECK(sizeof(T) == width_, "vec width mismatch");
    return reinterpret_cast<const T*>(storage_.data());
  }

  void* raw() { return storage_.data(); }
  const void* raw() const { return storage_.data(); }
  size_t width() const { return width_; }

 private:
  PhysType type_ = PhysType::kInt32;
  size_t width_ = 4;
  std::vector<uint8_t> storage_;
};

/// A batch: `count` tuples across several register vectors, plus an optional
/// selection vector listing the active tuple indexes (X100's mechanism for
/// filtering without copying).
struct Batch {
  size_t count = 0;                   ///< tuples materialized in vectors
  std::vector<Vec> regs;              ///< registers (input cols + temps)
  std::vector<uint32_t> sel;          ///< active indexes when has_sel
  bool has_sel = false;
  size_t sel_count = 0;               ///< active tuples when has_sel

  /// Number of tuples an operator should consider live.
  size_t ActiveCount() const { return has_sel ? sel_count : count; }

  /// Adds a register of the given type sized to `capacity`; returns its id.
  size_t AddRegister(PhysType type, size_t capacity) {
    regs.emplace_back(type, capacity);
    return regs.size() - 1;
  }
};

}  // namespace mammoth::vec

#endif  // MAMMOTH_VECTOR_VEC_H_
