#ifndef MAMMOTH_VECTOR_PIPELINE_H_
#define MAMMOTH_VECTOR_PIPELINE_H_

#include <vector>

#include "common/result.h"
#include "compress/compressed_bat.h"
#include "core/bat.h"
#include "vector/primitives.h"
#include "vector/vec.h"
#include "vector/vec_join.h"

namespace mammoth::vec {

/// One pipeline input column: either a plain BAT or a compressed :int
/// column decompressed vector-at-a-time during the scan — X100's way of
/// keeping scans CPU-bound (§5): the decoded vector never leaves the cache
/// before the next operator consumes it.
struct PipelineColumn {
  BatPtr bat;
  const compress::CompressedBat* compressed = nullptr;

  PipelineColumn(BatPtr b) : bat(std::move(b)) {}  // NOLINT
  PipelineColumn(const compress::CompressedBat* c) : compressed(c) {}  // NOLINT

  PhysType type() const {
    return compressed != nullptr ? PhysType::kInt32 : bat->type();
  }
  size_t count() const {
    return compressed != nullptr ? compressed->Count() : bat->Count();
  }
};

/// Aggregate functions supported by the pipeline sink.
enum class AggFn : uint8_t { kSum, kCount, kMin, kMax };

/// Result of an aggregating pipeline run: one slot per group per aggregate.
struct AggResult {
  size_t ngroups = 0;
  /// aggregates[a][g]: value of aggregate a for group g. Sums/min/max are
  /// doubles, counts are exact integers stored as double.
  std::vector<std::vector<double>> aggregates;
};

/// A linear X100-style pipeline over column BATs (§5): data flows as
/// cache-resident vectors of `vector_size` values through scan -> select ->
/// map -> aggregate, with *columnar data flow and pipelined control flow*.
/// With vector_size == 1 it degenerates to tuple-at-a-time; with
/// vector_size == row count it degenerates to operator-at-a-time (full
/// materialization), which is how the paper benchmarks the paradigm within
/// one system.
///
/// Registers: 0..k-1 are the scanned input columns; map stages append new
/// ones. Supported register types: :int, :lng, :dbl.
class Pipeline {
 public:
  /// `columns` must be numeric, equally long, materialized sources; plain
  /// BatPtrs convert implicitly, compressed columns pass a CompressedBat*.
  Pipeline(std::vector<PipelineColumn> columns, size_t vector_size);

  /// Keeps lanes with lo <= reg <= hi (conjunctive with prior selects).
  Status AddSelectRange(size_t reg, double lo, double hi);

  /// Appends a register = a op b; returns its id.
  Result<size_t> AddMapColCol(BinOp op, size_t a, size_t b);

  /// Appends a register = a op constant; returns its id.
  Result<size_t> AddMapColConst(BinOp op, size_t a, double c);

  /// Appends a register casting `src` to `to`; returns its id.
  Result<size_t> AddCast(size_t src, PhysType to);

  /// N:1 hash-join probe stage (§5): lanes whose `key_reg` value misses
  /// `join`'s build side are dropped from the selection vector; for the
  /// hits, `payload` (a build-side column, :int/:lng/:dbl) is gathered
  /// into a fresh register aligned with the surviving lanes. Returns the
  /// payload register id. `join` and `payload` must outlive the pipeline.
  Result<size_t> AddHashProbe(size_t key_reg, const VecHashJoin* join,
                              BatPtr payload);

  /// Declares the aggregation sink. `group_reg` must be an :int register
  /// with values in [0, ngroups); pass kNoGroup for a global aggregate.
  static constexpr size_t kNoGroup = static_cast<size_t>(-1);
  struct AggSpec {
    AggFn fn;
    size_t reg = 0;  // ignored for kCount
  };
  Status SetAggregate(size_t group_reg, size_t ngroups,
                      std::vector<AggSpec> specs);

  /// Executes the pipeline and returns the aggregates.
  Result<AggResult> Run();

  /// Executes the pipeline and materializes register `reg`'s selected lanes
  /// (requires no aggregate sink).
  Result<BatPtr> RunMaterialize(size_t reg);

  size_t vector_size() const { return vector_size_; }

 private:
  struct Stage {
    enum class Kind : uint8_t {
      kSelect,
      kMapCC,
      kMapCK,
      kCast,
      kHashProbe,
    } kind;
    BinOp op = BinOp::kAdd;
    size_t a = 0, b = 0, dst = 0;
    double lo = 0, hi = 0, c = 0;
    const VecHashJoin* join = nullptr;
    BatPtr payload;
  };

  Status ValidateReg(size_t reg) const;
  Status ValidateColumns() const;
  Status LoadBatch(size_t start, size_t n, Batch* batch);
  Status RunStages(Batch* batch);

  std::vector<PipelineColumn> columns_;
  std::vector<PhysType> reg_types_;
  size_t vector_size_;
  size_t nrows_ = 0;
  std::vector<Stage> stages_;

  bool has_agg_ = false;
  size_t group_reg_ = kNoGroup;
  size_t ngroups_ = 1;
  std::vector<AggSpec> agg_specs_;
  std::vector<uint32_t> scratch_sel_;
  std::vector<uint32_t> scratch_rows_;
};

}  // namespace mammoth::vec

#endif  // MAMMOTH_VECTOR_PIPELINE_H_
