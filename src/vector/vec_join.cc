#include "vector/vec_join.h"

#include "common/bitutil.h"
#include "common/hash.h"

namespace mammoth::vec {

Result<VecHashJoin> VecHashJoin::Build(const BatPtr& build_keys) {
  if (build_keys == nullptr || build_keys->type() != PhysType::kInt32) {
    return Status::TypeMismatch("vec join: build keys must be bat[:int]");
  }
  VecHashJoin j;
  const size_t n = build_keys->Count();
  const int32_t* v = build_keys->TailData<int32_t>();
  j.keys_.assign(v, v + n);
  const size_t nbuckets = NextPow2(n < 8 ? 8 : n);
  j.mask_ = nbuckets - 1;
  j.buckets_.assign(nbuckets, 0);
  j.next_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = HashInt(static_cast<uint64_t>(v[i])) & j.mask_;
    // Reject duplicates: N:1 join semantics.
    for (uint32_t k = j.buckets_[h]; k != 0; k = j.next_[k - 1]) {
      if (j.keys_[k - 1] == v[i]) {
        return Status::InvalidArgument(
            "vec join: duplicate build key (needs N:1)");
      }
    }
    j.next_[i] = j.buckets_[h];
    j.buckets_[h] = static_cast<uint32_t>(i + 1);
  }
  return j;
}

size_t VecHashJoin::ProbeVector(const int32_t* keys, size_t n,
                                const uint32_t* sel_in, size_t sel_n,
                                uint32_t* sel_out,
                                uint32_t* rows_out) const {
  size_t k = 0;
  auto probe_lane = [&](uint32_t lane) {
    const int32_t key = keys[lane];
    const uint64_t h = HashInt(static_cast<uint64_t>(key)) & mask_;
    for (uint32_t j = buckets_[h]; j != 0; j = next_[j - 1]) {
      if (keys_[j - 1] == key) {
        sel_out[k] = lane;
        rows_out[k] = j - 1;
        ++k;
        return;
      }
    }
  };
  if (sel_in == nullptr) {
    for (size_t i = 0; i < n; ++i) probe_lane(static_cast<uint32_t>(i));
  } else {
    for (size_t s = 0; s < sel_n; ++s) probe_lane(sel_in[s]);
  }
  return k;
}

}  // namespace mammoth::vec
