#ifndef MAMMOTH_VECTOR_PRIMITIVES_H_
#define MAMMOTH_VECTOR_PRIMITIVES_H_

#include <cstddef>
#include <cstdint>

namespace mammoth::vec {

/// X100-style vectorized primitives (§5): tight loops over one vector,
/// optionally driven by a selection vector. Zero degrees of freedom per
/// call — exactly like the BAT algebra kernels, but over cache-resident
/// slices instead of whole columns.

/// Fills `sel_out` with the indexes i in [0,n) (or in sel_in) where
/// lo <= v[i] <= hi; returns the match count.
template <typename T>
size_t SelRange(const T* v, size_t n, T lo, T hi, const uint32_t* sel_in,
                size_t sel_n, uint32_t* sel_out) {
  size_t k = 0;
  if (sel_in == nullptr) {
    for (size_t i = 0; i < n; ++i) {
      if (v[i] >= lo && v[i] <= hi) sel_out[k++] = static_cast<uint32_t>(i);
    }
  } else {
    for (size_t s = 0; s < sel_n; ++s) {
      const uint32_t i = sel_in[s];
      if (v[i] >= lo && v[i] <= hi) sel_out[k++] = i;
    }
  }
  return k;
}

enum class BinOp : uint8_t { kAdd, kSub, kMul, kDiv };

/// out[i] = a[i] op b[i] over active lanes.
template <typename T, BinOp kOp>
void MapColCol(const T* a, const T* b, T* out, size_t n,
               const uint32_t* sel, size_t sel_n) {
  auto apply = [](T x, T y) -> T {
    if constexpr (kOp == BinOp::kAdd) return x + y;
    if constexpr (kOp == BinOp::kSub) return x - y;
    if constexpr (kOp == BinOp::kMul) return x * y;
    return x / y;
  };
  if (sel == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = apply(a[i], b[i]);
  } else {
    for (size_t s = 0; s < sel_n; ++s) {
      const uint32_t i = sel[s];
      out[i] = apply(a[i], b[i]);
    }
  }
}

/// out[i] = a[i] op c over active lanes.
template <typename T, BinOp kOp>
void MapColConst(const T* a, T c, T* out, size_t n, const uint32_t* sel,
                 size_t sel_n) {
  auto apply = [](T x, T y) -> T {
    if constexpr (kOp == BinOp::kAdd) return x + y;
    if constexpr (kOp == BinOp::kSub) return x - y;
    if constexpr (kOp == BinOp::kMul) return x * y;
    return x / y;
  };
  if (sel == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = apply(a[i], c);
  } else {
    for (size_t s = 0; s < sel_n; ++s) {
      const uint32_t i = sel[s];
      out[i] = apply(a[i], c);
    }
  }
}

/// Widening cast over active lanes.
template <typename Src, typename Dst>
void MapCast(const Src* a, Dst* out, size_t n, const uint32_t* sel,
             size_t sel_n) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; ++i) out[i] = static_cast<Dst>(a[i]);
  } else {
    for (size_t s = 0; s < sel_n; ++s) {
      const uint32_t i = sel[s];
      out[i] = static_cast<Dst>(a[i]);
    }
  }
}

/// acc[gid[i]] += v[i] over active lanes (direct-mapped group aggregation).
template <typename T, typename Acc>
void AggrSumGrouped(const T* v, const uint32_t* gid, Acc* acc, size_t n,
                    const uint32_t* sel, size_t sel_n) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; ++i) acc[gid[i]] += static_cast<Acc>(v[i]);
  } else {
    for (size_t s = 0; s < sel_n; ++s) {
      const uint32_t i = sel[s];
      acc[gid[i]] += static_cast<Acc>(v[i]);
    }
  }
}

/// count[gid[i]] += 1 over active lanes.
inline void AggrCountGrouped(const uint32_t* gid, int64_t* count, size_t n,
                             const uint32_t* sel, size_t sel_n) {
  if (sel == nullptr) {
    for (size_t i = 0; i < n; ++i) count[gid[i]] += 1;
  } else {
    for (size_t s = 0; s < sel_n; ++s) count[gid[sel[s]]] += 1;
  }
}

}  // namespace mammoth::vec

#endif  // MAMMOTH_VECTOR_PRIMITIVES_H_
