#include "index/css_tree.h"

#include <algorithm>
#include <limits>

namespace mammoth::index {

/// Built bottom-up: the sorted data is divided into groups of kNodeKeys;
/// each internal level stores, per child group, that group's maximum key.
/// `nodes_` concatenates the levels top-down; level l occupying
/// [offset_[l], offset_[l+1]). Implicit fanout-kNodeKeys child arithmetic.
CssTree::CssTree(const int64_t* keys, size_t n) : data_(keys), n_(n) {
  std::vector<std::vector<int64_t>> levels;
  // Level 0 separators: max of each data group.
  std::vector<int64_t> cur;
  for (size_t g = 0; g * kNodeKeys < n; ++g) {
    const size_t end = std::min(n, (g + 1) * static_cast<size_t>(kNodeKeys));
    cur.push_back(keys[end - 1]);
  }
  leaf_nodes_ = cur.size();
  while (cur.size() > 1) {
    levels.push_back(cur);
    std::vector<int64_t> up;
    for (size_t g = 0; g * kNodeKeys < cur.size(); ++g) {
      const size_t end =
          std::min(cur.size(), (g + 1) * static_cast<size_t>(kNodeKeys));
      up.push_back(cur[end - 1]);
    }
    cur = std::move(up);
  }
  if (!cur.empty()) levels.push_back(cur);

  // Flatten top-down.
  levels_ = static_cast<int>(levels.size());
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    if (it == std::prev(levels.rend())) first_leaf_index_ = nodes_.size();
    nodes_.insert(nodes_.end(), it->begin(), it->end());
  }

  // Record level offsets for descent.
  size_t off = 0;
  offsets_.clear();
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    offsets_.push_back(off);
    off += it->size();
  }
  offsets_.push_back(off);
  level_sizes_.clear();
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    level_sizes_.push_back(it->size());
  }
}

size_t CssTree::LowerBound(int64_t key) const {
  if (n_ == 0) return 0;
  // Descend: group index at each level.
  size_t g = 0;
  for (int l = 0; l < levels_; ++l) {
    const size_t level_begin = offsets_[l];
    const size_t begin = std::min(g * kNodeKeys, level_sizes_[l]);
    const size_t end =
        std::min(begin + static_cast<size_t>(kNodeKeys), level_sizes_[l]);
    // First separator >= key within the node (linear scan: the node is at
    // most two cache lines).
    size_t i = begin;
    while (i < end && nodes_[level_begin + i] < key) ++i;
    if (i == end) i = end - 1;  // key beyond all: follow the last child
    g = i;
  }
  // g is now the data-group index.
  const size_t begin = std::min(g * static_cast<size_t>(kNodeKeys), n_);
  const size_t end = std::min(begin + static_cast<size_t>(kNodeKeys), n_);
  const int64_t* first = std::lower_bound(data_ + begin, data_ + end, key);
  size_t pos = static_cast<size_t>(first - data_);
  return pos;
}

size_t CssTree::Find(int64_t key) const {
  const size_t pos = LowerBound(key);
  if (pos < n_ && data_[pos] == key) return pos;
  return std::numeric_limits<size_t>::max();
}

std::pair<size_t, size_t> CssTree::Range(int64_t lo, int64_t hi) const {
  if (lo > hi) return {0, 0};
  const size_t first = LowerBound(lo);
  size_t last;
  if (hi == std::numeric_limits<int64_t>::max()) {
    last = n_;
  } else {
    last = LowerBound(hi + 1);
  }
  if (last < first) last = first;
  return {first, last};
}

}  // namespace mammoth::index
