#ifndef MAMMOTH_INDEX_BTREE_H_
#define MAMMOTH_INDEX_BTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.h"

namespace mammoth::index {

/// In-memory B+-tree from int64 keys to OIDs (duplicates allowed). The
/// pointer-chasing baseline that §3 contrasts with O(1) positional lookup
/// and that the cracking experiments (§6.1) compare against as the
/// "pay-up-front" index.
///
/// Fixed fanout, pointer-linked nodes — intentionally the *traditional*
/// layout (one cache miss per level), unlike the CSS-tree in css_tree.h.
class BPlusTree {
 public:
  static constexpr int kFanout = 64;  // max keys per node

  BPlusTree();
  ~BPlusTree();

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  void Insert(int64_t key, Oid value);

  /// All values with exactly this key.
  std::vector<Oid> Lookup(int64_t key) const;

  /// First value with this key, or kOidNil (fast path for unique keys).
  Oid LookupFirst(int64_t key) const;

  /// All values with keys in [lo, hi] inclusive.
  std::vector<Oid> Range(int64_t lo, int64_t hi) const;

  size_t size() const { return size_; }
  int height() const { return height_; }

 private:
  struct Node;
  struct LeafEntry {
    int64_t key;
    Oid value;
  };

  Node* FindLeaf(int64_t key) const;
  /// Splits a full child during downward traversal (preemptive split).
  void SplitChild(Node* parent, int index);
  static void DestroySubtree(Node* n);

  Node* root_;
  size_t size_ = 0;
  int height_ = 1;
};

}  // namespace mammoth::index

#endif  // MAMMOTH_INDEX_BTREE_H_
