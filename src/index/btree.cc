#include "index/btree.h"

#include <algorithm>

#include "common/logging.h"

namespace mammoth::index {

/// Node layout: internal nodes hold `keys[i]` separating children i and i+1
/// (child i covers keys < keys[i]); leaves hold (key, value) pairs sorted by
/// key and a right-sibling link for range scans.
struct BPlusTree::Node {
  bool leaf = true;
  int count = 0;  // keys in internal nodes, entries in leaves
  int64_t keys[kFanout];
  union {
    Node* children[kFanout + 1];
    Oid values[kFanout];
  };
  Node* next = nullptr;  // leaf chain

  Node() { children[0] = nullptr; }
};

BPlusTree::BPlusTree() : root_(new Node()) {}

void BPlusTree::DestroySubtree(Node* n) {
  if (n == nullptr) return;
  if (!n->leaf) {
    for (int i = 0; i <= n->count; ++i) DestroySubtree(n->children[i]);
  }
  delete n;
}

BPlusTree::~BPlusTree() { DestroySubtree(root_); }

void BPlusTree::SplitChild(Node* parent, int index) {
  Node* child = parent->children[index];
  Node* right = new Node();
  right->leaf = child->leaf;
  const int mid = kFanout / 2;

  int64_t up_key;
  if (child->leaf) {
    right->count = child->count - mid;
    std::copy(child->keys + mid, child->keys + child->count, right->keys);
    std::copy(child->values + mid, child->values + child->count,
              right->values);
    child->count = mid;
    right->next = child->next;
    child->next = right;
    up_key = right->keys[0];
  } else {
    // Key at mid moves up; right gets keys (mid, count) and their children.
    up_key = child->keys[mid];
    right->count = child->count - mid - 1;
    std::copy(child->keys + mid + 1, child->keys + child->count, right->keys);
    std::copy(child->children + mid + 1, child->children + child->count + 1,
              right->children);
    child->count = mid;
  }

  // Shift parent slots to insert (up_key, right) after `index`.
  for (int i = parent->count; i > index; --i) {
    parent->keys[i] = parent->keys[i - 1];
    parent->children[i + 1] = parent->children[i];
  }
  parent->keys[index] = up_key;
  parent->children[index + 1] = right;
  ++parent->count;
}

void BPlusTree::Insert(int64_t key, Oid value) {
  if (root_->count == kFanout) {
    Node* new_root = new Node();
    new_root->leaf = false;
    new_root->count = 0;
    new_root->children[0] = root_;
    root_ = new_root;
    SplitChild(root_, 0);
    ++height_;
  }
  Node* n = root_;
  while (!n->leaf) {
    int i = static_cast<int>(
        std::upper_bound(n->keys, n->keys + n->count, key) - n->keys);
    if (n->children[i]->count == kFanout) {
      SplitChild(n, i);
      if (key >= n->keys[i]) ++i;
    }
    n = n->children[i];
  }
  const int pos = static_cast<int>(
      std::upper_bound(n->keys, n->keys + n->count, key) - n->keys);
  for (int i = n->count; i > pos; --i) {
    n->keys[i] = n->keys[i - 1];
    n->values[i] = n->values[i - 1];
  }
  n->keys[pos] = key;
  n->values[pos] = value;
  ++n->count;
  ++size_;
}

BPlusTree::Node* BPlusTree::FindLeaf(int64_t key) const {
  // Reads descend with lower_bound: with duplicate keys the separator only
  // guarantees "left subtree keys <= separator", so the leftmost candidate
  // leaf is under the first separator >= key.
  Node* n = root_;
  while (!n->leaf) {
    const int i = static_cast<int>(
        std::lower_bound(n->keys, n->keys + n->count, key) - n->keys);
    n = n->children[i];
  }
  return n;
}

Oid BPlusTree::LookupFirst(int64_t key) const {
  const Node* n = FindLeaf(key);
  // Equal keys may spill into following leaves; the first match, if any,
  // is at the lower_bound position in this leaf or at the head of the next.
  while (n != nullptr) {
    const int i = static_cast<int>(
        std::lower_bound(n->keys, n->keys + n->count, key) - n->keys);
    if (i < n->count) {
      return n->keys[i] == key ? n->values[i] : kOidNil;
    }
    n = n->next;
  }
  return kOidNil;
}

std::vector<Oid> BPlusTree::Lookup(int64_t key) const {
  return Range(key, key);
}

std::vector<Oid> BPlusTree::Range(int64_t lo, int64_t hi) const {
  std::vector<Oid> out;
  if (lo > hi) return out;
  const Node* n = FindLeaf(lo);
  int i = static_cast<int>(
      std::lower_bound(n->keys, n->keys + n->count, lo) - n->keys);
  while (n != nullptr) {
    for (; i < n->count; ++i) {
      if (n->keys[i] > hi) return out;
      out.push_back(n->values[i]);
    }
    n = n->next;
    i = 0;
  }
  return out;
}

}  // namespace mammoth::index
