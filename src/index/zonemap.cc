#include "index/zonemap.h"

#include <algorithm>

namespace mammoth::index {

namespace {

template <typename T>
void BuildBlocks(const T* v, size_t n, size_t block_rows,
                 std::vector<int64_t>* mins, std::vector<int64_t>* maxs) {
  for (size_t start = 0; start < n; start += block_rows) {
    const size_t end = std::min(n, start + block_rows);
    T lo = v[start], hi = v[start];
    for (size_t i = start + 1; i < end; ++i) {
      lo = std::min(lo, v[i]);
      hi = std::max(hi, v[i]);
    }
    mins->push_back(static_cast<int64_t>(lo));
    maxs->push_back(static_cast<int64_t>(hi));
  }
}

template <typename T>
void ScanBlock(const T* v, size_t begin, size_t end, T lo, T hi, Oid hseq,
               Bat* out) {
  for (size_t i = begin; i < end; ++i) {
    if (v[i] >= lo && v[i] <= hi) out->Append<Oid>(hseq + i);
  }
}

}  // namespace

Result<ZoneMap> ZoneMap::Build(const BatPtr& b, size_t block_rows) {
  if (b == nullptr) return Status::InvalidArgument("zonemap: null input");
  if (block_rows == 0) {
    return Status::InvalidArgument("zonemap: block_rows must be > 0");
  }
  if (b->type() != PhysType::kInt32 && b->type() != PhysType::kInt64) {
    return Status::Unimplemented("zonemap supports int/lng columns");
  }
  ZoneMap zm;
  zm.column_ = b;
  zm.block_rows_ = block_rows;
  if (b->type() == PhysType::kInt32) {
    BuildBlocks(b->TailData<int32_t>(), b->Count(), block_rows, &zm.mins_,
                &zm.maxs_);
  } else {
    BuildBlocks(b->TailData<int64_t>(), b->Count(), block_rows, &zm.mins_,
                &zm.maxs_);
  }
  return zm;
}

size_t ZoneMap::BlocksTouched(const Value& lo, const Value& hi) const {
  const int64_t l = lo.AsInt(), h = hi.AsInt();
  size_t touched = 0;
  for (size_t blk = 0; blk < mins_.size(); ++blk) {
    if (maxs_[blk] >= l && mins_[blk] <= h) ++touched;
  }
  return touched;
}

Result<BatPtr> ZoneMap::RangeSelect(const Value& lo, const Value& hi) const {
  if (!lo.is_numeric() || !hi.is_numeric()) {
    return Status::TypeMismatch("zonemap select: non-numeric bound");
  }
  const int64_t l = lo.AsInt(), h = hi.AsInt();
  BatPtr out = Bat::New(PhysType::kOid);
  const size_t n = column_->Count();
  const Oid hseq = column_->hseqbase();
  for (size_t blk = 0; blk < mins_.size(); ++blk) {
    if (maxs_[blk] < l || mins_[blk] > h) continue;  // skip the block
    const size_t begin = blk * block_rows_;
    const size_t end = std::min(n, begin + block_rows_);
    if (column_->type() == PhysType::kInt32) {
      ScanBlock(column_->TailData<int32_t>(), begin, end,
                static_cast<int32_t>(std::max<int64_t>(l, INT32_MIN)),
                static_cast<int32_t>(std::min<int64_t>(h, INT32_MAX)), hseq,
                out.get());
    } else {
      ScanBlock(column_->TailData<int64_t>(), begin, end, l, h, hseq,
                out.get());
    }
  }
  out->mutable_props().sorted = true;
  out->mutable_props().key = true;
  return out;
}

}  // namespace mammoth::index
