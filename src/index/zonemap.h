#ifndef MAMMOTH_INDEX_ZONEMAP_H_
#define MAMMOTH_INDEX_ZONEMAP_H_

#include <vector>

#include "common/result.h"
#include "core/bat.h"
#include "core/value.h"

namespace mammoth::index {

/// Zone map: per-block min/max summaries of a column — the light-weight
/// "partial index" family §2 alludes to ("not all data is equally
/// important"): one sequential pass to build, then range selects skip every
/// block whose [min, max] cannot intersect the predicate. Pays off on
/// (nearly) clustered data; degenerates gracefully to a plain scan on
/// random data.
class ZoneMap {
 public:
  static constexpr size_t kDefaultBlockRows = 1024;

  /// Builds over a numeric BAT (int32/int64 supported).
  static Result<ZoneMap> Build(const BatPtr& b,
                               size_t block_rows = kDefaultBlockRows);

  /// Range select [lo, hi] (inclusive) using block skipping; returns the
  /// qualifying head OIDs (sorted). Exactly equals the kernel RangeSelect.
  Result<BatPtr> RangeSelect(const Value& lo, const Value& hi) const;

  /// Number of blocks whose [min,max] intersects [lo, hi] — the scan work
  /// a query would do; used by tests and the ablation bench.
  size_t BlocksTouched(const Value& lo, const Value& hi) const;

  size_t NumBlocks() const { return mins_.size(); }
  size_t block_rows() const { return block_rows_; }

  /// Per-block summaries in canonical 64-bit, for callers that prune with
  /// predicates richer than a [lo, hi] range (e.g. the shared-scan
  /// scheduler's per-consumer chunk skipping).
  int64_t BlockMin(size_t block) const { return mins_[block]; }
  int64_t BlockMax(size_t block) const { return maxs_[block]; }

 private:
  BatPtr column_;
  size_t block_rows_ = kDefaultBlockRows;
  std::vector<int64_t> mins_, maxs_;  // canonical 64-bit per block
};

}  // namespace mammoth::index

#endif  // MAMMOTH_INDEX_ZONEMAP_H_
