#ifndef MAMMOTH_INDEX_HASH_INDEX_H_
#define MAMMOTH_INDEX_HASH_INDEX_H_

#include <cstdint>
#include <vector>

#include "common/bitutil.h"
#include "common/hash.h"
#include "core/types.h"

namespace mammoth::index {

/// Bucket-chained hash index from int64 keys to OIDs — the "value index
/// created on the fly" of MonetDB/SQL (§3.2). Equality lookups only;
/// duplicates allowed. Same chained layout the join kernels use, so one
/// build can be reused as the inner side of repeated hash joins.
class HashIndex {
 public:
  /// Builds over `n` keys whose OIDs are hseqbase + position.
  HashIndex(const int64_t* keys, size_t n, Oid hseqbase = 0)
      : keys_(keys, keys + n), hseqbase_(hseqbase) {
    nbuckets_ = NextPow2(n < 8 ? 8 : n);
    buckets_.assign(nbuckets_, 0);
    next_.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
      const uint64_t h = HashInt(static_cast<uint64_t>(keys_[i])) &
                         (nbuckets_ - 1);
      next_[i] = buckets_[h];
      buckets_[h] = static_cast<uint32_t>(i + 1);
    }
  }

  /// All OIDs whose key equals `key`.
  std::vector<Oid> Lookup(int64_t key) const {
    std::vector<Oid> out;
    const uint64_t h = HashInt(static_cast<uint64_t>(key)) & (nbuckets_ - 1);
    for (uint32_t j = buckets_[h]; j != 0; j = next_[j - 1]) {
      if (keys_[j - 1] == key) out.push_back(hseqbase_ + (j - 1));
    }
    return out;
  }

  /// First OID with this key, or kOidNil.
  Oid LookupFirst(int64_t key) const {
    const uint64_t h = HashInt(static_cast<uint64_t>(key)) & (nbuckets_ - 1);
    for (uint32_t j = buckets_[h]; j != 0; j = next_[j - 1]) {
      if (keys_[j - 1] == key) return hseqbase_ + (j - 1);
    }
    return kOidNil;
  }

  size_t size() const { return keys_.size(); }

 private:
  std::vector<int64_t> keys_;
  Oid hseqbase_;
  size_t nbuckets_;
  std::vector<uint32_t> buckets_;
  std::vector<uint32_t> next_;
};

}  // namespace mammoth::index

#endif  // MAMMOTH_INDEX_HASH_INDEX_H_
