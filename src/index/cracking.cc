#include "index/cracking.h"

namespace mammoth::index {

Result<CrackedBat> CrackedBat::Make(const BatPtr& b) {
  if (b == nullptr) return Status::InvalidArgument("crack: null input");
  CrackedBat out;
  out.type_ = b->type();
  switch (b->type()) {
    case PhysType::kInt32:
      out.i32_ = std::make_shared<CrackerIndex<int32_t>>(
          b->TailData<int32_t>(), b->Count(), b->hseqbase());
      break;
    case PhysType::kInt64:
      out.i64_ = std::make_shared<CrackerIndex<int64_t>>(
          b->TailData<int64_t>(), b->Count(), b->hseqbase());
      break;
    default:
      return Status::Unimplemented("cracking supports int/lng columns");
  }
  return out;
}

Result<BatPtr> CrackedBat::RangeSelect(const Value& lo, const Value& hi,
                                       bool lo_incl, bool hi_incl) {
  if (!lo.is_numeric() || !hi.is_numeric()) {
    return Status::TypeMismatch("crack select: non-numeric bound");
  }
  std::vector<Oid> oids;
  if (type_ == PhysType::kInt32) {
    oids = i32_->RangeSelect(lo.As<int32_t>(), hi.As<int32_t>(), lo_incl,
                             hi_incl);
  } else {
    oids = i64_->RangeSelect(lo.As<int64_t>(), hi.As<int64_t>(), lo_incl,
                             hi_incl);
  }
  BatPtr r = Bat::New(PhysType::kOid);
  r->AppendRaw(oids.data(), oids.size());
  r->mutable_props().key = true;  // oids are distinct, though unordered
  return r;
}

Status CrackedBat::Insert(const Value& v, Oid oid) {
  if (!v.is_numeric()) return Status::TypeMismatch("crack insert: non-numeric");
  if (type_ == PhysType::kInt32) {
    i32_->Insert(v.As<int32_t>(), oid);
  } else {
    i64_->Insert(v.As<int64_t>(), oid);
  }
  return Status::OK();
}

Status CrackedBat::Delete(Oid oid) {
  if (type_ == PhysType::kInt32) {
    i32_->Delete(oid);
  } else {
    i64_->Delete(oid);
  }
  return Status::OK();
}

void CrackedBat::ConsolidatePending() {
  if (type_ == PhysType::kInt32) {
    i32_->ConsolidatePending();
  } else {
    i64_->ConsolidatePending();
  }
}

size_t CrackedBat::PieceCount() const {
  return type_ == PhysType::kInt32 ? i32_->PieceCount() : i64_->PieceCount();
}

}  // namespace mammoth::index
