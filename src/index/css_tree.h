#ifndef MAMMOTH_INDEX_CSS_TREE_H_
#define MAMMOTH_INDEX_CSS_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.h"

namespace mammoth::index {

/// Cache-Sensitive Search Tree (Rao & Ross [31], discussed in §7): a
/// read-only search tree over *sorted* data that stores all internal nodes
/// in one array with implicit child pointers, sizing nodes to cache lines.
/// Child of node n at branch b is node n*(m+1)+b+1. No pointers stored —
/// more keys per cache line than a B+-tree.
class CssTree {
 public:
  /// Keys per node: 16 int64 keys = 128 bytes = two cache lines, the
  /// layout [31] found effective.
  static constexpr int kNodeKeys = 16;

  /// Builds over `keys`, which MUST be sorted ascending. The tree keeps a
  /// pointer to the data; the caller owns it.
  CssTree(const int64_t* keys, size_t n);

  /// Position of the first element >= key (== n when none).
  size_t LowerBound(int64_t key) const;

  /// Position of the first element equal to key, or SIZE_MAX.
  size_t Find(int64_t key) const;

  /// [first, last) positions of elements in [lo, hi] inclusive.
  std::pair<size_t, size_t> Range(int64_t lo, int64_t hi) const;

  size_t size() const { return n_; }
  int levels() const { return levels_; }
  size_t internal_bytes() const { return nodes_.size() * sizeof(int64_t); }

 private:
  const int64_t* data_;
  size_t n_;
  std::vector<int64_t> nodes_;        // internal separators, top level first
  std::vector<size_t> offsets_;       // start of each level within nodes_
  std::vector<size_t> level_sizes_;   // separators per level, top first
  size_t leaf_nodes_ = 0;             // number of data groups
  int levels_ = 0;
  size_t first_leaf_index_ = 0;       // node index of the bottom level
};

}  // namespace mammoth::index

#endif  // MAMMOTH_INDEX_CSS_TREE_H_
