#ifndef MAMMOTH_INDEX_CRACKING_H_
#define MAMMOTH_INDEX_CRACKING_H_

#include <limits>
#include <map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "core/bat.h"
#include "core/value.h"

namespace mammoth::index {

/// Database cracking (§6.1, [22,18]): a self-organizing, knob-free partial
/// index. The column is copied once into a "cracker column"; every range
/// query physically reorganizes (cracks) exactly the pieces it touches, so
/// the data gets more sorted where — and only where — queries look.
///
/// The cracker index is a map from pivot value v to position p with the
/// invariant: values at positions [0, p) are < v, values at [p, n) are >= v.
///
/// Updates follow the pending-delta scheme of [18]: inserts and deletes
/// gather in side structures consulted at query time and can be folded in
/// with ConsolidatePending().
template <typename T>
class CrackerIndex {
 public:
  /// Copies `values` (tail) and their head OIDs into the cracker column.
  CrackerIndex(const T* values, size_t n, Oid hseqbase = 0) {
    data_.assign(values, values + n);
    oids_.resize(n);
    for (size_t i = 0; i < n; ++i) oids_[i] = hseqbase + i;
  }

  /// Positions (head OIDs) of values in [lo, hi] (inclusive bounds chosen
  /// by flags). Cracks the touched pieces as a side effect. The returned
  /// OIDs are *unordered* (cracking permutes within pieces).
  std::vector<Oid> RangeSelect(T lo, T hi, bool lo_incl = true,
                               bool hi_incl = true);

  /// Queues a pending insert / delete (visible to queries immediately).
  void Insert(T value, Oid oid);
  void Delete(Oid oid);

  /// Folds pending inserts into the cracked column (each insert lands in
  /// its piece) and physically removes deleted tuples.
  void ConsolidatePending();

  /// Number of pieces the column is currently cracked into.
  size_t PieceCount() const { return index_.size() + 1; }

  size_t size() const { return data_.size() + pending_.size(); }
  size_t PendingInsertCount() const { return pending_.size(); }
  size_t PendingDeleteCount() const { return deleted_.size(); }

  /// Testing aid: verifies the cracker-index invariant over the whole
  /// column; returns false if any piece violates its bounds.
  bool CheckInvariant() const;

 private:
  /// Ensures a crack exists at pivot `v` (all < v left of the returned
  /// position). Returns that position.
  size_t CrackAt(T v);

  std::vector<T> data_;
  std::vector<Oid> oids_;
  std::map<T, size_t> index_;

  struct PendingInsert {
    T value;
    Oid oid;
  };
  std::vector<PendingInsert> pending_;
  std::unordered_set<Oid> deleted_;
};

/// Type-erased convenience wrapper cracking a numeric BAT.
class CrackedBat {
 public:
  /// `b` must be kInt32 or kInt64.
  static Result<CrackedBat> Make(const BatPtr& b);

  /// Range select through the cracker index; returns a bat[:oid].
  Result<BatPtr> RangeSelect(const Value& lo, const Value& hi,
                             bool lo_incl = true, bool hi_incl = true);

  Status Insert(const Value& v, Oid oid);
  Status Delete(Oid oid);
  void ConsolidatePending();
  size_t PieceCount() const;

 private:
  CrackedBat() = default;
  PhysType type_ = PhysType::kInt32;
  std::shared_ptr<CrackerIndex<int32_t>> i32_;
  std::shared_ptr<CrackerIndex<int64_t>> i64_;
};

// ---------------------------------------------------------------------------
// Template implementation.

template <typename T>
size_t CrackerIndex<T>::CrackAt(T v) {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;

  // Piece holding v: between the previous and next crack.
  size_t begin = 0, end = data_.size();
  auto next = index_.lower_bound(v);
  if (next != index_.end()) end = next->second;
  if (next != index_.begin() && !index_.empty()) {
    auto prev = std::prev(next);
    begin = prev->second;
  }

  // Two-sided partition of [begin, end): < v to the left, >= v right.
  size_t i = begin, j = end;
  while (i < j) {
    while (i < j && data_[i] < v) ++i;
    while (i < j && data_[j - 1] >= v) --j;
    if (i < j) {
      std::swap(data_[i], data_[j - 1]);
      std::swap(oids_[i], oids_[j - 1]);
      ++i;
      --j;
    }
  }
  index_.emplace(v, i);
  return i;
}

template <typename T>
std::vector<Oid> CrackerIndex<T>::RangeSelect(T lo, T hi, bool lo_incl,
                                              bool hi_incl) {
  // Normalize to [lo', hi') with inclusive lo', exclusive hi' pivots.
  // Careful at the numeric extremes: <=max has no exclusive pivot, so fall
  // back to end-of-column.
  std::vector<Oid> out;
  if (lo > hi || (lo == hi && (!lo_incl || !hi_incl))) return out;

  size_t from;
  if (!lo_incl && lo == std::numeric_limits<T>::max()) return out;
  from = CrackAt(lo_incl ? lo : static_cast<T>(lo + 1));

  size_t to;
  if (hi_incl && hi == std::numeric_limits<T>::max()) {
    to = data_.size();
  } else {
    to = CrackAt(hi_incl ? static_cast<T>(hi + 1) : hi);
  }

  out.reserve(to > from ? to - from : 0);
  for (size_t i = from; i < to; ++i) {
    if (deleted_.empty() || deleted_.count(oids_[i]) == 0) {
      out.push_back(oids_[i]);
    }
  }
  // Pending inserts are scanned (they are few between consolidations).
  for (const PendingInsert& p : pending_) {
    const bool ge_lo = lo_incl ? (p.value >= lo) : (p.value > lo);
    const bool le_hi = hi_incl ? (p.value <= hi) : (p.value < hi);
    if (ge_lo && le_hi && deleted_.count(p.oid) == 0) out.push_back(p.oid);
  }
  return out;
}

template <typename T>
void CrackerIndex<T>::Insert(T value, Oid oid) {
  pending_.push_back({value, oid});
}

template <typename T>
void CrackerIndex<T>::Delete(Oid oid) {
  deleted_.insert(oid);
}

template <typename T>
void CrackerIndex<T>::ConsolidatePending() {
  if (!deleted_.empty()) {
    // Compact the cracker column, shifting crack positions down by the
    // number of deleted tuples before them.
    std::vector<T> new_data;
    std::vector<Oid> new_oids;
    new_data.reserve(data_.size());
    new_oids.reserve(oids_.size());
    std::map<T, size_t> new_index;
    auto next_crack = index_.begin();
    for (size_t i = 0; i < data_.size(); ++i) {
      while (next_crack != index_.end() && next_crack->second == i) {
        new_index.emplace(next_crack->first, new_data.size());
        ++next_crack;
      }
      if (deleted_.count(oids_[i]) == 0) {
        new_data.push_back(data_[i]);
        new_oids.push_back(oids_[i]);
      }
    }
    while (next_crack != index_.end()) {
      new_index.emplace(next_crack->first, new_data.size());
      ++next_crack;
    }
    data_ = std::move(new_data);
    oids_ = std::move(new_oids);
    index_ = std::move(new_index);
  }

  // Fold pending inserts: each lands at the start of its piece, shifting
  // later cracks by one (insert-in-the-middle, [18]'s "ripple" simplified
  // to a vector insert).
  for (const PendingInsert& p : pending_) {
    if (deleted_.count(p.oid) > 0) continue;
    const size_t pos = [&] {
      auto next = index_.upper_bound(p.value);
      return next == index_.end() ? data_.size() : next->second;
    }();
    data_.insert(data_.begin() + pos, p.value);
    oids_.insert(oids_.begin() + pos, p.oid);
    for (auto& [pivot, cpos] : index_) {
      if (pivot > p.value) ++cpos;
    }
  }
  pending_.clear();
  deleted_.clear();
}

template <typename T>
bool CrackerIndex<T>::CheckInvariant() const {
  for (const auto& [pivot, pos] : index_) {
    if (pos > data_.size()) return false;
    for (size_t i = 0; i < pos; ++i) {
      if (!(data_[i] < pivot)) return false;
    }
    for (size_t i = pos; i < data_.size(); ++i) {
      if (data_[i] < pivot) return false;
    }
  }
  return true;
}

}  // namespace mammoth::index

#endif  // MAMMOTH_INDEX_CRACKING_H_
