#include "parallel/task_pool.h"

#include <algorithm>

namespace mammoth::parallel {

namespace {

/// True while this thread is executing a morsel; nested ParallelFor calls
/// from inside a morsel run inline instead of dead-locking on the pool.
thread_local bool t_in_morsel = false;

}  // namespace

TaskPool::TaskPool(int threads) : threads_(std::max(threads, 1)) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] {
      // Each background thread is permanently worker `i`; the ParallelFor
      // caller is worker 0.
      uint64_t seen_epoch = 0;
      std::unique_lock<std::mutex> lock(mu_);
      while (true) {
        wake_cv_.wait(lock, [&] {
          return stop_ || (job_ != nullptr && epoch_ != seen_epoch);
        });
        if (stop_) return;
        seen_epoch = epoch_;
        Job* job = job_;
        ++job->active;
        lock.unlock();
        RunMorsels(job, i);
        lock.lock();
        if (--job->active == 0) done_cv_.notify_all();
      }
    });
  }
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

Status TaskPool::RunInline(size_t n, size_t grain, const MorselFn& fn) {
  if (grain == 0) grain = 1;
  for (size_t begin = 0; begin < n; begin += grain) {
    Status s = fn(begin, std::min(begin + grain, n), 0);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

void TaskPool::RunMorsels(Job* job, int worker) {
  t_in_morsel = true;
  while (!job->failed.load(std::memory_order_relaxed)) {
    const size_t begin =
        job->cursor.fetch_add(job->grain, std::memory_order_relaxed);
    if (begin >= job->n) break;
    const size_t end = std::min(begin + job->grain, job->n);
    Status s = (*job->fn)(begin, end, worker);
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(job->err_mu);
      if (job->error.ok()) job->error = std::move(s);
      job->failed.store(true, std::memory_order_relaxed);
    }
  }
  t_in_morsel = false;
}

Status TaskPool::ParallelFor(size_t n, size_t grain, const MorselFn& fn) {
  if (n == 0) return Status::OK();
  if (grain == 0) grain = 1;
  // Inline when parallelism cannot help (one worker, one morsel) or when
  // called from inside a morsel of this or another pool.
  if (threads_ <= 1 || n <= grain || t_in_morsel) {
    return RunInline(n, grain, fn);
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  Job job;
  job.n = n;
  job.grain = grain;
  job.fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++epoch_;
  }
  wake_cv_.notify_all();
  RunMorsels(&job, /*worker=*/0);
  {
    // Unpublish the job, then wait for workers that joined it to drain.
    // Workers that never woke up see job_ == nullptr and go back to sleep,
    // so `job` cannot be touched after this scope exits.
    std::unique_lock<std::mutex> lock(mu_);
    job_ = nullptr;
    done_cv_.wait(lock, [&] { return job.active == 0; });
  }
  std::lock_guard<std::mutex> err_lock(job.err_mu);
  return std::move(job.error);
}

}  // namespace mammoth::parallel
