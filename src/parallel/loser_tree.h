#ifndef MAMMOTH_PARALLEL_LOSER_TREE_H_
#define MAMMOTH_PARALLEL_LOSER_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace mammoth::parallel {

/// K-way loser-tree merge (Knuth's tournament of replacement selection,
/// TAOCP §5.4.1) over sorted runs of a permutation array. Each Pop() costs
/// log2(k) comparisons: the winning run replays only the path from its leaf
/// to the root, against the losers parked on that path.
///
/// `Less` must be a *strict total order* on the positions stored in the
/// runs (key comparison with position tie-break). Totality makes the merged
/// sequence unique, which is what lets a parallel run-formation + merge
/// pipeline reproduce the serial stable sort byte for byte regardless of
/// how the runs were cut.
template <typename Less>
class LoserTree {
 public:
  /// `perm` holds the positions; `runs` are k disjoint [begin, end) ranges
  /// into it, each sorted w.r.t. `less`. `perm` must outlive the tree.
  LoserTree(const uint32_t* perm, std::vector<std::pair<size_t, size_t>> runs,
            Less less)
      : perm_(perm), less_(less), k_(runs.size()), loser_(k_, -1) {
    MAMMOTH_CHECK(k_ >= 1, "loser tree needs at least one run");
    cur_.reserve(k_);
    end_.reserve(k_);
    remaining_ = 0;
    for (const auto& [begin, end] : runs) {
      cur_.push_back(begin);
      end_.push_back(end);
      remaining_ += end - begin;
    }
    winner_ = k_ == 1 ? 0 : Build(1);
  }

  size_t remaining() const { return remaining_; }
  bool empty() const { return remaining_ == 0; }

  /// Removes and returns the globally next position.
  uint32_t Pop() {
    MAMMOTH_DCHECK(!empty(), "Pop on drained loser tree");
    const int w = winner_;
    const uint32_t out = perm_[cur_[w]++];
    // Replay the leaf-to-root path: the parked loser that beats the
    // advanced run takes its place as the contender.
    int cand = w;
    for (size_t node = (static_cast<size_t>(w) + k_) >> 1; node >= 1;
         node >>= 1) {
      if (Beats(loser_[node], cand)) std::swap(loser_[node], cand);
    }
    winner_ = cand;
    --remaining_;
    return out;
  }

 private:
  bool Exhausted(int r) const { return cur_[r] == end_[r]; }

  /// True when run `a`'s head element must be emitted before run `b`'s.
  /// Exhausted runs lose to everything (and to each other arbitrarily but
  /// deterministically).
  bool Beats(int a, int b) const {
    if (Exhausted(a)) return false;
    if (Exhausted(b)) return true;
    return less_(perm_[cur_[a]], perm_[cur_[b]]);
  }

  /// Builds the tree over the complete binary tree with leaves k_..2k_-1
  /// (leaf j+k_ holds run j): returns the subtree winner, parking losers.
  int Build(size_t node) {
    if (node >= k_) return static_cast<int>(node - k_);
    const int l = Build(2 * node);
    const int r = Build(2 * node + 1);
    if (Beats(r, l)) {
      loser_[node] = l;
      return r;
    }
    loser_[node] = r;
    return l;
  }

  const uint32_t* perm_;
  Less less_;
  size_t k_;
  std::vector<int> loser_;  // loser_[1..k_-1]: run parked at internal node
  std::vector<size_t> cur_, end_;
  int winner_ = 0;
  size_t remaining_ = 0;
};

}  // namespace mammoth::parallel

#endif  // MAMMOTH_PARALLEL_LOSER_TREE_H_
