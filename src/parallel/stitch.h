#ifndef MAMMOTH_PARALLEL_STITCH_H_
#define MAMMOTH_PARALLEL_STITCH_H_

#include <cstring>
#include <vector>

#include "common/logging.h"

namespace mammoth::parallel {

/// Deterministic gather for parallel scans with data-dependent output sizes
/// (select, join): each worker appends its matches to a private buffer,
/// tagged with the morsel index they came from; Stitch() then concatenates
/// the per-morsel runs in morsel order, which reproduces the serial
/// kernel's output byte for byte no matter how morsels were scheduled.
///
/// Workers never share buffers, so the collection phase is synchronization
/// free; the only cross-worker step is the final stitch copy.
template <typename T>
class MorselCollector {
 public:
  /// `n`/`grain` must match the ParallelFor the collector is used under;
  /// they define the morsel grid (morsel m covers [m*grain, ...)).
  MorselCollector(int nworkers, size_t n, size_t grain)
      : grain_(grain == 0 ? 1 : grain),
        nmorsels_((n + grain_ - 1) / grain_),
        workers_(static_cast<size_t>(nworkers)) {}

  /// Appends values for one worker; obtained per morsel via BeginMorsel.
  class Sink {
   public:
    void Append(T v) { buf_->push_back(v); }

   private:
    friend class MorselCollector;
    explicit Sink(std::vector<T>* buf) : buf_(buf) {}
    std::vector<T>* buf_;
  };

  /// Declares that `worker` is about to process the morsel starting at
  /// `begin`. Must be called exactly once per morsel, before any Append.
  Sink BeginMorsel(size_t begin, int worker) {
    PerWorker& w = workers_[static_cast<size_t>(worker)];
    w.runs.push_back(Run{begin / grain_, w.buf.size()});
    return Sink(&w.buf);
  }

  /// Total values collected across all workers.
  size_t Total() const {
    size_t total = 0;
    for (const PerWorker& w : workers_) total += w.buf.size();
    return total;
  }

  /// Copies all runs into `out` (capacity >= Total()) in morsel order.
  void Stitch(T* out) const {
    // Resolve each morsel's run: exactly one worker processed it.
    struct Resolved {
      const T* src = nullptr;
      size_t len = 0;
    };
    std::vector<Resolved> by_morsel(nmorsels_);
    for (const PerWorker& w : workers_) {
      for (size_t j = 0; j < w.runs.size(); ++j) {
        const Run& r = w.runs[j];
        const size_t run_end =
            j + 1 < w.runs.size() ? w.runs[j + 1].start : w.buf.size();
        MAMMOTH_DCHECK(r.morsel < nmorsels_, "run outside morsel grid");
        by_morsel[r.morsel] = Resolved{w.buf.data() + r.start,
                                       run_end - r.start};
      }
    }
    size_t off = 0;
    for (const Resolved& r : by_morsel) {
      if (r.len == 0) continue;
      std::memcpy(out + off, r.src, r.len * sizeof(T));
      off += r.len;
    }
  }

 private:
  struct Run {
    size_t morsel;
    size_t start;  // offset into the worker's buffer
  };
  /// Cache-line separated so workers growing their vectors do not false
  /// share the bookkeeping fields.
  struct alignas(64) PerWorker {
    std::vector<T> buf;
    std::vector<Run> runs;
  };

  size_t grain_;
  size_t nmorsels_;
  std::vector<PerWorker> workers_;
};

}  // namespace mammoth::parallel

#endif  // MAMMOTH_PARALLEL_STITCH_H_
