#ifndef MAMMOTH_PARALLEL_EXEC_CONTEXT_H_
#define MAMMOTH_PARALLEL_EXEC_CONTEXT_H_

#include "common/status.h"
#include "parallel/task_pool.h"

namespace mammoth::scan {
class SharedScanScheduler;  // parallel/ cannot depend on scan/ headers
}  // namespace mammoth::scan

namespace mammoth::parallel {

/// Execution context handed to the parallel-aware kernels. It carries the
/// worker pool (or none, for strictly serial execution); kernels only ever
/// go through ParallelFor/threads(), so a context with no pool makes any
/// kernel run its exact serial schedule.
///
/// Every kernel is required to produce bit-identical results — values,
/// hseqbase, properties — for any context, so callers may freely default to
/// ExecContext::Default() (sized from the MAMMOTH_THREADS environment
/// variable, falling back to the hardware thread count) while tests pin
/// ExecContext::Serial() or a pool of their own.
class ExecContext {
 public:
  /// A context with no pool: everything runs inline on the caller.
  ExecContext() = default;

  /// A context backed by `pool` (not owned; may be null for serial).
  explicit ExecContext(TaskPool* pool) : pool_(pool) {}

  /// Worker slots available to a kernel (>= 1).
  int threads() const { return pool_ == nullptr ? 1 : pool_->threads(); }

  /// Morsel loop over [0, n); see TaskPool::ParallelFor. Runs inline over
  /// the identical morsel grid when no pool is attached.
  Status ParallelFor(size_t n, size_t grain,
                     const TaskPool::MorselFn& fn) const {
    if (pool_ == nullptr) return TaskPool::RunInline(n, grain, fn);
    return pool_->ParallelFor(n, grain, fn);
  }

  /// Process-wide default: MAMMOTH_THREADS workers if the variable is set
  /// to a positive integer, else std::thread::hardware_concurrency(). The
  /// pool is created lazily on first use and lives for the process.
  static const ExecContext& Default();

  /// The no-pool context (kernels run their serial schedule).
  static const ExecContext& Serial();

  /// The shared-scan scheduler eligible base-table scans route through,
  /// or null (the default) for the plain kernel path. Sharing never
  /// changes results — every routed scan is bit-identical to the direct
  /// kernels — so contexts with and without a scheduler are
  /// interchangeable correctness-wise.
  scan::SharedScanScheduler* shared_scans() const { return shared_scans_; }

  /// A copy of this context that routes scans through `scheduler`
  /// (null detaches).
  ExecContext WithSharedScans(scan::SharedScanScheduler* scheduler) const {
    ExecContext ctx = *this;
    ctx.shared_scans_ = scheduler;
    return ctx;
  }

 private:
  TaskPool* pool_ = nullptr;
  scan::SharedScanScheduler* shared_scans_ = nullptr;
};

/// Parses a MAMMOTH_THREADS-style value: returns the thread count, or
/// `fallback` when `value` is null, empty, non-numeric, or <= 0. Exposed
/// for tests.
int ParseThreadCount(const char* value, int fallback);

/// The thread count ExecContext::Default() uses (env var or hardware).
int DefaultThreadCount();

}  // namespace mammoth::parallel

#endif  // MAMMOTH_PARALLEL_EXEC_CONTEXT_H_
