#include "parallel/exec_context.h"

#include <cstdlib>
#include <thread>

namespace mammoth::parallel {

int ParseThreadCount(const char* value, int fallback) {
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || parsed <= 0 || parsed > 4096) {
    return fallback;
  }
  return static_cast<int>(parsed);
}

int DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw == 0 ? 1 : static_cast<int>(hw);
  return ParseThreadCount(std::getenv("MAMMOTH_THREADS"), fallback);
}

const ExecContext& ExecContext::Default() {
  // Function-local statics: the pool is built on first use and torn down
  // (joining its workers) at process exit.
  static TaskPool* pool = [] {
    const int threads = DefaultThreadCount();
    return threads <= 1 ? nullptr : new TaskPool(threads);
  }();
  static const ExecContext ctx(pool);
  return ctx;
}

const ExecContext& ExecContext::Serial() {
  static const ExecContext ctx;
  return ctx;
}

}  // namespace mammoth::parallel
