#ifndef MAMMOTH_PARALLEL_TASK_POOL_H_
#define MAMMOTH_PARALLEL_TASK_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace mammoth::parallel {

/// A fixed-size worker pool driving morsel-driven parallelism (Leis et al.,
/// "Morsel-Driven Parallelism"): a dense index range [0, n) is split into
/// cache-sized morsels that workers claim through a single atomic cursor.
/// There is no per-morsel allocation or queueing — claiming a morsel is one
/// fetch_add — so the scheduling overhead stays negligible next to the
/// column kernels the morsels run.
///
/// The pool owns `threads() - 1` background threads; the caller of
/// ParallelFor is always worker 0 and executes morsels itself. With
/// `threads() <= 1` (or when the range is a single morsel) ParallelFor
/// degrades to inline execution on the calling thread, which keeps
/// single-threaded configurations free of any synchronization.
class TaskPool {
 public:
  /// Morsel body: processes [begin, end). `worker` is a stable id in
  /// [0, threads()) identifying the executing worker, usable to index
  /// per-worker scratch. Returning a non-OK status cancels the remaining
  /// morsels and is propagated out of ParallelFor.
  using MorselFn = std::function<Status(size_t begin, size_t end, int worker)>;

  /// Default morsel grain: 64K values keeps an int32 morsel at 256KB —
  /// roughly one L2 — so a worker's working set stays cache-resident.
  static constexpr size_t kDefaultGrain = size_t{1} << 16;

  /// Spawns `threads - 1` background workers (clamped to >= 1 total).
  explicit TaskPool(int threads);
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Total worker slots, including the calling thread.
  int threads() const { return threads_; }

  /// Runs `fn` over the morsel grid of [0, n): morsel m covers
  /// [m*grain, min((m+1)*grain, n)). The grid is identical whether the call
  /// executes inline or across workers, so kernels that key scratch off the
  /// morsel index (begin / grain) see the same decomposition either way.
  ///
  /// Returns the first (by completion time) error any morsel produced;
  /// remaining morsels are skipped once an error is observed. Concurrent
  /// ParallelFor calls on one pool serialize; a ParallelFor issued from
  /// inside a morsel runs inline on that worker (no deadlock).
  Status ParallelFor(size_t n, size_t grain, const MorselFn& fn);

  /// The inline (no pool) morsel loop — shared by the degraded path and by
  /// ExecContext instances with no pool attached.
  static Status RunInline(size_t n, size_t grain, const MorselFn& fn);

 private:
  struct Job {
    std::atomic<size_t> cursor{0};
    size_t n = 0;
    size_t grain = 1;
    const MorselFn* fn = nullptr;
    std::atomic<bool> failed{false};
    int active = 0;  // workers currently inside the job; guarded by mu_
    std::mutex err_mu;
    Status error;
  };

  void WorkerLoop();
  static void RunMorsels(Job* job, int worker);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable wake_cv_;  // signals workers: new job or stop
  std::condition_variable done_cv_;  // signals caller: job drained
  Job* job_ = nullptr;               // guarded by mu_
  uint64_t epoch_ = 0;               // guarded by mu_; bumps per ParallelFor
  bool stop_ = false;                // guarded by mu_

  std::mutex run_mu_;  // serializes concurrent ParallelFor callers
};

}  // namespace mammoth::parallel

#endif  // MAMMOTH_PARALLEL_TASK_POOL_H_
