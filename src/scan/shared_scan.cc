#include "scan/shared_scan.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "compress/compressed_kernels.h"
#include "core/select.h"
#include "parallel/task_pool.h"

namespace mammoth::scan {

namespace {

/// Matches StampSelectResult in core/select.cc: the guarantees every
/// select kernel stamps on its result, replicated so the assembled
/// shared-scan result is bit-identical (values *and* properties).
void StampSelectResult(const BatPtr& r) {
  r->mutable_props().sorted = true;
  r->mutable_props().key = true;
  r->mutable_props().revsorted = r->Count() <= 1;
}

/// Runs the predicate through the direct kernels over the whole column
/// (the fallback path; exactly what the interpreter did before routing).
Result<BatPtr> RunKernel(const BatPtr& column, const ScanPredicate& pred,
                         const parallel::ExecContext& ctx) {
  if (pred.kind == ScanPredicate::Kind::kTheta) {
    return algebra::ThetaSelect(column, nullptr, pred.v, pred.op, ctx);
  }
  return algebra::RangeSelect(column, nullptr, pred.lo, pred.hi, true, true,
                              pred.anti, ctx);
}

/// Whether the predicate can run over the source's compressed
/// representation directly (code-space / run-space), bit-identical to
/// decode-then-kernel.
bool CodeSpacePredicate(const ColumnSource& source, const ScanPredicate& pred) {
  if (source.comp != nullptr) {
    return pred.kind == ScanPredicate::Kind::kTheta
               ? compress::ThetaSelectableOnCompressed(*source.comp, pred.v,
                                                       pred.op)
               : compress::RangeSelectableOnCompressed(*source.comp, pred.lo,
                                                       pred.hi);
  }
  if (source.sdict != nullptr) {
    return pred.kind == ScanPredicate::Kind::kTheta &&
           compress::StrSelectableOnDict(pred.v, pred.op);
  }
  return false;
}

/// Evaluates a code-space-rewritable predicate over rows [begin, end) of
/// the compressed image directly.
Result<BatPtr> EvalCodeSpace(const ColumnSource& source,
                             const ScanPredicate& pred, size_t begin,
                             size_t end, Oid col_hseq) {
  if (source.sdict != nullptr) {
    return compress::DictStrSelectRange(*source.sdict, pred.v, pred.op, begin,
                                        end, col_hseq);
  }
  if (pred.kind == ScanPredicate::Kind::kTheta) {
    return compress::CompressedThetaSelectRange(*source.comp, pred.v, pred.op,
                                                begin, end, col_hseq);
  }
  return compress::CompressedRangeSelectRange(*source.comp, pred.lo, pred.hi,
                                              true, true, pred.anti, begin,
                                              end, col_hseq);
}

/// Fallback for a source-aware scan outside the pass protocol: a
/// code-space-rewritable predicate consumes the compressed image in
/// place; anything else materializes the shared whole-column decode
/// first (operator-at-a-time), then runs the plain kernels.
Result<BatPtr> RunKernelSource(const ColumnSource& source,
                               const ScanPredicate& pred,
                               const parallel::ExecContext& ctx) {
  if (CodeSpacePredicate(source, pred)) {
    compress::stats::SelectDirect();
    return EvalCodeSpace(source, pred, 0, source.Count(), source.hseqbase);
  }
  BatPtr column = source.bat;
  if (source.compressed()) {
    compress::stats::SelectFallback();
    MAMMOTH_ASSIGN_OR_RETURN(column, source.comp->DecodedBat());
  }
  return RunKernel(column, pred, ctx);
}

/// Evaluates the predicate over rows [begin, end) only, via a dense
/// candidate list. The kernels append qualifying OIDs in position order
/// (parallel and serial contexts produce identical outputs), so
/// concatenating chunk results by chunk index reproduces the full kernel
/// output exactly.
Result<BatPtr> EvalChunk(const BatPtr& column, const ScanPredicate& pred,
                         size_t begin, size_t end,
                         const parallel::ExecContext& ctx) {
  const BatPtr cands =
      Bat::NewDense(column->hseqbase() + begin, end - begin);
  if (pred.kind == ScanPredicate::Kind::kTheta) {
    return algebra::ThetaSelect(column, cands, pred.v, pred.op, ctx);
  }
  return algebra::RangeSelect(column, cands, pred.lo, pred.hi, true, true,
                              pred.anti, ctx);
}

/// Evaluates the predicate over the chunk's materialized buffer: a
/// zero-copy view BAT over the delivered bytes, head-rebased so the
/// kernels emit the same OIDs (`col_hseq + position`) a full-column scan
/// would. The view carries default properties, matching the merged-image
/// columns the routed scans read (never sorted/dense), so kernel
/// fast-path decisions agree with the plain path.
Result<BatPtr> EvalChunkBuffer(const ChunkBuffer& buf, Oid col_hseq,
                               const ScanPredicate& pred, size_t begin,
                               size_t end,
                               const parallel::ExecContext& ctx) {
  BatPtr view = Bat::New(buf.type);
  view->tail().AdoptExternal(const_cast<void*>(buf.data), end - begin);
  view->set_hseqbase(col_hseq + begin);
  if (pred.kind == ScanPredicate::Kind::kTheta) {
    return algebra::ThetaSelect(view, nullptr, pred.v, pred.op, ctx);
  }
  return algebra::RangeSelect(view, nullptr, pred.lo, pred.hi, true, true,
                              pred.anti, ctx);
}

/// Whether any value in [block_min, block_max] can satisfy the predicate,
/// with the predicate operand converted exactly as the kernels convert it
/// (Value::As<T> on the column type), so pruning never disagrees with the
/// scan.
bool BlockMaySatisfy(const ScanPredicate& pred, int64_t bmin, int64_t bmax,
                     PhysType type) {
  const auto as_col = [&](const Value& v) -> int64_t {
    return type == PhysType::kInt32
               ? static_cast<int64_t>(v.As<int32_t>())
               : v.As<int64_t>();
  };
  if (pred.kind == ScanPredicate::Kind::kTheta) {
    const int64_t v = as_col(pred.v);
    switch (pred.op) {
      case CmpOp::kEq:
        return v >= bmin && v <= bmax;
      case CmpOp::kNe:
        return !(bmin == bmax && bmin == v);
      case CmpOp::kLt:
        return bmin < v;
      case CmpOp::kLe:
        return bmin <= v;
      case CmpOp::kGe:
        return bmax >= v;
      case CmpOp::kGt:
        return bmax > v;
      case CmpOp::kLike:
        return true;  // string-only; never reaches numeric pruning
    }
    return true;
  }
  const bool has_lo = !pred.lo.is_nil();
  const bool has_hi = !pred.hi.is_nil();
  const int64_t lo = has_lo ? as_col(pred.lo) : 0;
  const int64_t hi = has_hi ? as_col(pred.hi) : 0;
  if (pred.anti) {
    // Keep x outside [lo, hi]: the block is prunable only when it lies
    // entirely inside the rejected range.
    return !(has_lo && has_hi && lo <= bmin && bmax <= hi) ||
           (has_lo && lo > bmin) || (has_hi && hi < bmax);
  }
  if (has_lo && bmax < lo) return false;
  if (has_hi && bmin > hi) return false;
  return true;
}

}  // namespace

/// One consumer of a shared pass. All fields except `fn`'s captured
/// buffers are guarded by the owning group's mutex; the buffers are only
/// touched by chunk deliveries (never two at once for one consumer) and
/// handed back to the owner through that same mutex.
class SharedScanScheduler::Consumer {
 public:
  std::shared_ptr<Group> group;
  ColumnSource source;       ///< column this consumer reads (may be empty)
  /// False for code-space consumers: they evaluate over the compressed
  /// image in place, so the pass skips the chunk's decode when no other
  /// receiver needs the decoded bytes.
  bool wants_buffer = true;
  std::vector<bool> needed;  ///< per chunk: wanted and not yet delivered
  size_t remaining = 0;      ///< count of true bits in `needed`
  int inflight = 0;          ///< deliveries currently running our fn
  ChunkFn fn;
  Status error = Status::OK();
  bool failed = false;
};

/// Per-table pass state. `version`/`nrows`/`chunk_rows`/`nchunks`
/// describe the shape of the in-flight pass; they may only change while
/// the group is idle.
struct SharedScanScheduler::Group {
  std::mutex mu;
  std::condition_variable cv;
  uint64_t version = 0;
  size_t nrows = 0;
  size_t chunk_rows = 0;
  size_t nchunks = 0;
  int attaching = 0;  ///< arrivals between route decision and Attach
  bool driver_active = false;
  std::vector<Consumer*> consumers;
  /// Free decode buffers of the in-flight pass (compressed sources
  /// decompress into these; returned after each delivery). Sized for the
  /// widest supported value so any source of the pass can reuse them.
  std::vector<std::unique_ptr<uint8_t[]>> buffer_pool;
  size_t buffer_rows = 0;  ///< rows each pooled buffer holds

  std::unique_ptr<uint8_t[]> TakeBufferLocked() {
    if (!buffer_pool.empty()) {
      std::unique_ptr<uint8_t[]> b = std::move(buffer_pool.back());
      buffer_pool.pop_back();
      return b;
    }
    return std::make_unique<uint8_t[]>(chunk_rows * sizeof(int64_t));
  }
};

SharedScanScheduler::SharedScanScheduler(const SharedScanConfig& config)
    : config_([&] {
        SharedScanConfig c = config;
        // Morsel-align the chunk grain so chunk boundaries coincide with
        // TaskPool morsel boundaries.
        constexpr size_t kGrain = parallel::TaskPool::kDefaultGrain;
        if (c.chunk_rows == 0) c.chunk_rows = kGrain;
        c.chunk_rows = (c.chunk_rows + kGrain - 1) / kGrain * kGrain;
        return c;
      }()) {}

SharedScanScheduler::~SharedScanScheduler() = default;

size_t SharedScanScheduler::RowsPerChunk(size_t value_width) const {
  if (config_.chunk_bytes == 0 || value_width == 0) {
    return config_.chunk_rows;
  }
  constexpr size_t kGrain = parallel::TaskPool::kDefaultGrain;
  const size_t rows =
      std::max(config_.chunk_bytes / value_width, kGrain);
  return (rows + kGrain - 1) / kGrain * kGrain;
}

std::shared_ptr<SharedScanScheduler::Group> SharedScanScheduler::GetGroup(
    const std::string& table) {
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<Group>& g = groups_[table];
  if (g == nullptr) g = std::make_shared<Group>();
  return g;
}

size_t SharedScanScheduler::ActiveScans(const std::string& table) const {
  std::shared_ptr<Group> g;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = groups_.find(table);
    if (it == groups_.end()) return 0;
    g = it->second;
  }
  std::lock_guard<std::mutex> lock(g->mu);
  return g->consumers.size() + static_cast<size_t>(g->attaching);
}

std::vector<bool> SharedScanScheduler::PruneChunks(
    const BatPtr& column, const std::string& table,
    const std::string& column_name, uint64_t version,
    const ScanPredicate& pred, size_t chunk_rows) {
  if (column->type() != PhysType::kInt32 &&
      column->type() != PhysType::kInt64) {
    return {};
  }
  if (pred.kind == ScanPredicate::Kind::kTheta && !pred.v.is_numeric()) {
    return {};
  }
  std::shared_ptr<index::ZoneMap> zm;
  const std::string key = table + '\0' + column_name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = zonemaps_.find(key);
    if (it != zonemaps_.end() && it->second.version == version &&
        it->second.block_rows == chunk_rows) {
      zm = it->second.zonemap;
    }
  }
  if (zm == nullptr) {
    // Build outside the lock (O(n)); concurrent builders duplicate the
    // work at most once, last insert wins.
    auto built = index::ZoneMap::Build(column, chunk_rows);
    if (!built.ok()) return {};
    zm = std::make_shared<index::ZoneMap>(std::move(*built));
    std::lock_guard<std::mutex> lock(mu_);
    zonemaps_[key] = CachedZoneMap{version, chunk_rows, zm};
  }
  std::vector<bool> needed(zm->NumBlocks());
  for (size_t blk = 0; blk < needed.size(); ++blk) {
    needed[blk] = BlockMaySatisfy(pred, zm->BlockMin(blk), zm->BlockMax(blk),
                                  column->type());
  }
  return needed;
}

SharedScanScheduler::Consumer* SharedScanScheduler::Attach(
    const std::string& table, uint64_t version, size_t nrows,
    std::vector<bool> needed, ChunkFn fn, size_t chunk_rows,
    ColumnSource source) {
  if (chunk_rows == 0) chunk_rows = config_.chunk_rows;
  auto group = GetGroup(table);
  std::lock_guard<std::mutex> lock(group->mu);
  const size_t nchunks = (nrows + chunk_rows - 1) / chunk_rows;
  const bool idle = group->consumers.empty() && group->attaching == 0;
  if (idle) {
    group->version = version;
    group->nrows = nrows;
    group->chunk_rows = chunk_rows;
    group->nchunks = nchunks;
    if (group->buffer_rows != chunk_rows) {
      group->buffer_pool.clear();
      group->buffer_rows = chunk_rows;
    }
  } else if (group->version != version || group->nrows != nrows ||
             group->chunk_rows != chunk_rows) {
    return nullptr;  // pass shape mismatch: caller scans directly
  }
  Consumer* c = new Consumer;
  c->group = group;
  c->source = std::move(source);
  if (needed.empty()) needed.assign(nchunks, true);
  c->needed = std::move(needed);
  c->remaining = static_cast<size_t>(
      std::count(c->needed.begin(), c->needed.end(), true));
  c->fn = std::move(fn);
  group->consumers.push_back(c);
  ++scans_attached_;
  return c;
}

size_t SharedScanScheduler::PickChunkLocked(Group& group,
                                            const Consumer& driver) const {
  size_t best_chunk = group.nchunks;
  size_t best_relevance = 0;
  for (size_t c = 0; c < group.nchunks; ++c) {
    if (!driver.needed[c]) continue;
    size_t relevance = 0;
    for (const Consumer* con : group.consumers) {
      if (con->needed[c]) ++relevance;
    }
    if (relevance > best_relevance) {  // ties resolve to the lowest index
      best_relevance = relevance;
      best_chunk = c;
    }
  }
  return best_chunk;
}

void SharedScanScheduler::DriveLocked(Group& group, Consumer* driver,
                                      std::unique_lock<std::mutex>& lock,
                                      const parallel::ExecContext& ctx) {
  /// One physical materialization of the chunk, shared by every receiver
  /// whose source has the same identity. Plain sources alias the BAT
  /// tail (zero copy); compressed ones decompress once into a pooled
  /// buffer.
  struct SourceLoad {
    const void* identity = nullptr;
    ColumnSource src;
    /// Whether any receiver reads the materialized buffer; a load all of
    /// whose receivers evaluate in code space skips materialization (and
    /// decompression) entirely.
    bool wanted = false;
    std::unique_ptr<uint8_t[]> buf;  ///< decode target (compressed only)
    ChunkBuffer view;
    Status status = Status::OK();
  };

  while (driver->remaining > 0) {
    const size_t chunk = PickChunkLocked(group, *driver);
    MAMMOTH_CHECK(chunk < group.nchunks, "driver with remaining needs a pick");
    // Snapshot the receivers and mark the chunk taken under the lock;
    // inflight keeps each receiver attached until its callback finished.
    // Receivers are grouped by source identity: one load per distinct
    // source, fanned out to all its consumers.
    std::vector<Consumer*> recv;
    std::vector<size_t> recv_load;
    std::vector<SourceLoad> loads;
    for (Consumer* con : group.consumers) {
      if (!con->needed[chunk]) continue;
      con->needed[chunk] = false;
      --con->remaining;
      ++con->inflight;
      const void* id = con->source.Identity();
      size_t li = loads.size();
      for (size_t i = 0; i < loads.size(); ++i) {
        if (loads[i].identity == id) {
          li = i;
          break;
        }
      }
      if (li == loads.size()) {
        SourceLoad l;
        l.identity = id;
        l.src = con->source;
        loads.push_back(std::move(l));
      }
      loads[li].wanted |= con->wants_buffer;
      recv.push_back(con);
      recv_load.push_back(li);
    }
    // Decode buffers only for loads some receiver reads decoded.
    for (SourceLoad& l : loads) {
      if (l.wanted && l.src.compressed()) l.buf = group.TakeBufferLocked();
    }
    const size_t begin = chunk * group.chunk_rows;
    const size_t end = std::min(group.nrows, begin + group.chunk_rows);
    chunks_loaded_ += loads.size();
    chunks_delivered_ += recv.size();
    lock.unlock();

    // Materialize each distinct source once (the chunk's bytes are
    // touched — or decompressed — a single time no matter how many
    // consumers receive them), then fan the deliveries out.
    uint64_t bytes_loaded = 0;
    uint64_t decompressed = 0;
    for (SourceLoad& l : loads) {
      const size_t rows = end - begin;
      if (!l.wanted) {
        // Every receiver runs in code space: the chunk's compressed bytes
        // are read in place, nothing is decoded or copied. Charge the
        // pro-rated compressed stream as the physical load.
        const size_t n = l.src.Count();
        const size_t cb = l.src.compressed()
                              ? l.src.comp->CompressedBytes()
                              : (l.src.sdict != nullptr
                                     ? l.src.sdict->CompressedBytes()
                                     : 0);
        if (n != 0) bytes_loaded += cb * rows / n;
        continue;
      }
      if (l.src.compressed()) {
        const compress::CompressedBat& comp = *l.src.comp;
        l.status = comp.DecodeRangeRaw(begin, rows, l.buf.get());
        l.view = ChunkBuffer{l.buf.get(), comp.type()};
        ++decompressed;
        // Pro-rate the compressed stream over the pass: the physical
        // bytes this chunk stands for.
        bytes_loaded += comp.Count() == 0
                            ? 0
                            : comp.CompressedBytes() * rows / comp.Count();
      } else if (l.src.bat != nullptr) {
        const auto* base =
            static_cast<const uint8_t*>(l.src.bat->tail().raw_data());
        const size_t width = l.src.bat->tail().width();
        l.view = ChunkBuffer{base + begin * width, l.src.bat->type()};
        bytes_loaded += rows * width;
      }
    }
    chunks_decompressed_ += decompressed;
    bytes_loaded_ += bytes_loaded;

    // One delivery per receiver; the TaskPool spreads the consumers'
    // predicate evaluations over the workers while the chunk's cache
    // lines are hot. When the driver is the chunk's sole receiver there
    // is nothing to fan out, so it evaluates inline with its own context
    // (morsel-parallel within the chunk) instead.
    uint64_t bytes_delivered = 0;
    for (size_t i = 0; i < recv.size(); ++i) {
      const ChunkBuffer& v = loads[recv_load[i]].view;
      if (v.data != nullptr) {
        bytes_delivered += (end - begin) * TypeWidth(v.type);
      }
    }
    bytes_delivered_ += bytes_delivered;

    std::vector<Status> results(recv.size());
    auto deliver = [&](size_t i, const parallel::ExecContext& eval_ctx) {
      SourceLoad& l = loads[recv_load[i]];
      results[i] = l.status.ok()
                       ? recv[i]->fn(chunk, begin, end, l.view, eval_ctx)
                       : l.status;
    };
    if (recv.size() == 1) {
      deliver(0, ctx);
    } else {
      Status st = ctx.ParallelFor(
          recv.size(), 1, [&](size_t b, size_t e, int) {
            for (size_t i = b; i < e; ++i) {
              deliver(i, parallel::ExecContext::Serial());
            }
            return Status::OK();
          });
      MAMMOTH_CHECK(st.ok(), "delivery morsels never fail");
    }

    lock.lock();
    // Return decode buffers to the pass's pool for the next chunk.
    for (SourceLoad& l : loads) {
      if (l.buf != nullptr) group.buffer_pool.push_back(std::move(l.buf));
    }
    for (size_t i = 0; i < recv.size(); ++i) {
      --recv[i]->inflight;
      if (!results[i].ok() && !recv[i]->failed) {
        // Cancel the failed consumer's outstanding chunks so its Drain
        // returns the error instead of waiting for pointless deliveries.
        recv[i]->failed = true;
        recv[i]->error = results[i];
        std::fill(recv[i]->needed.begin(), recv[i]->needed.end(), false);
        recv[i]->remaining = 0;
      }
    }
    group.cv.notify_all();
  }
}

Status SharedScanScheduler::Drain(Consumer* consumer,
                                  const parallel::ExecContext& ctx) {
  std::shared_ptr<Group> group = consumer->group;
  std::unique_lock<std::mutex> lock(group->mu);
  for (;;) {
    if (consumer->remaining == 0 && consumer->inflight == 0) break;
    if (!group->driver_active && consumer->remaining > 0) {
      group->driver_active = true;
      DriveLocked(*group, consumer, lock, ctx);
      group->driver_active = false;
      group->cv.notify_all();
      continue;  // recheck inflight (a prior driver may still deliver to us)
    }
    group->cv.wait(lock);
  }
  auto it = std::find(group->consumers.begin(), group->consumers.end(),
                      consumer);
  MAMMOTH_CHECK(it != group->consumers.end(), "consumer drained twice");
  group->consumers.erase(it);
  Status error = consumer->error;
  lock.unlock();
  delete consumer;
  return error;
}

std::vector<bool> SharedScanScheduler::PruneChunksCompressed(
    const compress::CompressedBat& comp, const ScanPredicate& pred,
    size_t chunk_rows) {
  if (pred.kind == ScanPredicate::Kind::kTheta && !pred.v.is_numeric()) {
    return {};
  }
  constexpr size_t kStatRows = compress::CompressedBat::kStatBlockRows;
  const size_t nstats = comp.NumStatBlocks();
  if (nstats == 0 || chunk_rows % kStatRows != 0) return {};
  const size_t stats_per_chunk = chunk_rows / kStatRows;
  const size_t nchunks = (comp.Count() + chunk_rows - 1) / chunk_rows;
  std::vector<bool> needed(nchunks, true);
  for (size_t c = 0; c < nchunks; ++c) {
    const size_t first = c * stats_per_chunk;
    const size_t last = std::min(nstats, first + stats_per_chunk);
    if (first >= last) break;
    int64_t bmin = comp.StatMin(first);
    int64_t bmax = comp.StatMax(first);
    for (size_t s = first + 1; s < last; ++s) {
      bmin = std::min(bmin, comp.StatMin(s));
      bmax = std::max(bmax, comp.StatMax(s));
    }
    needed[c] = BlockMaySatisfy(pred, bmin, bmax, comp.type());
  }
  return needed;
}

Result<BatPtr> SharedScanScheduler::Select(const BatPtr& column,
                                           const std::string& table,
                                           const std::string& column_name,
                                           uint64_t version,
                                           const ScanPredicate& pred,
                                           const parallel::ExecContext& ctx) {
  return Select(ColumnSource::Plain(column), table, column_name, version,
                pred, ctx);
}

Result<BatPtr> SharedScanScheduler::Select(const ColumnSource& source,
                                           const std::string& table,
                                           const std::string& column_name,
                                           uint64_t version,
                                           const ScanPredicate& pred,
                                           const parallel::ExecContext& ctx) {
  // Ineligible shapes go straight to the kernels: sorted columns select
  // in O(log n), dense tails and strings have their own specialized
  // paths, and short columns cost more to coordinate than to rescan.
  // (Compressed sources are integer by construction; a sorted one still
  // prefers the decoded O(log n) path.) A code-space-rewritable predicate
  // rides the pass without decoding: its per-chunk evaluation reads the
  // compressed image in place.
  const bool code_space = CodeSpacePredicate(source, pred);
  bool eligible;
  if (source.compressed()) {
    eligible = !source.comp->props().sorted &&
               source.comp->Count() >= config_.min_share_rows;
  } else if (source.sdict != nullptr) {
    // Dict string sources only route for code-space predicates: heap
    // strings have no decoded chunk-buffer representation to fan out.
    eligible = code_space && source.Count() >= config_.min_share_rows;
  } else {
    const BatPtr& column = source.bat;
    eligible = column != nullptr && column->type() != PhysType::kStr &&
               !column->props().sorted && !column->IsDenseTail() &&
               column->Count() >= config_.min_share_rows;
  }
  if (!eligible) return RunKernelSource(source, pred, ctx);

  const size_t nrows = source.Count();
  // The pass's chunk grain adapts to the column width (comparable chunk
  // *bytes* across types); a joiner adopts the grain of the pass it
  // joins — the chunk grid lives over row positions, so any column of
  // the table can ride it.
  size_t pass_chunk_rows = RowsPerChunk(TypeWidth(source.type()));
  size_t nchunks = (nrows + pass_chunk_rows - 1) / pass_chunk_rows;
  auto group = GetGroup(table);

  // Route: a lone scan *starts* a chunk-at-a-time pass (counted direct —
  // it joined nobody — but later arrivals can join it mid-flight, which a
  // monolithic kernel sweep would make impossible); arrivals on a busy
  // group of matching (version, nrows) shape join the in-flight pass.
  // Only a shape mismatch keeps a scan out entirely: it cannot mix rows
  // with the other snapshot's pass, so it pays the plain kernel.
  enum class Mode { kStart, kJoin, kFallback };
  Mode mode;
  {
    std::lock_guard<std::mutex> lock(group->mu);
    const bool busy = !group->consumers.empty() || group->attaching > 0;
    if (!busy) {
      group->version = version;
      group->nrows = nrows;
      group->chunk_rows = pass_chunk_rows;
      group->nchunks = nchunks;
      if (group->buffer_rows != pass_chunk_rows) {
        group->buffer_pool.clear();
        group->buffer_rows = pass_chunk_rows;
      }
      mode = Mode::kStart;
    } else if (group->version != version || group->nrows != nrows) {
      mode = Mode::kFallback;  // cannot mix rows with the other snapshot
    } else {
      mode = Mode::kJoin;
      pass_chunk_rows = group->chunk_rows;
      nchunks = group->nchunks;
    }
    if (mode != Mode::kFallback) {
      ++group->attaching;  // keeps the group busy while we prune chunks
    }
  }
  if (mode == Mode::kFallback) {
    ++scans_direct_;
    chunks_direct_ += nchunks;
    return RunKernelSource(source, pred, ctx);
  }
  const bool starts_pass = mode == Mode::kStart;

  // Prune chunks the zone map proves empty, attach, let the pass deliver
  // our chunks (driving it whenever no one else does), and assemble the
  // per-chunk results in chunk order. A compressed source prunes off its
  // own block statistics — skipped chunks are never decompressed.
  std::vector<bool> needed =
      source.compressed()
          ? PruneChunksCompressed(*source.comp, pred, pass_chunk_rows)
          : (source.sdict != nullptr
                 ? std::vector<bool>{}  // no per-block stats on dicts
                 : PruneChunks(source.bat, table, column_name, version, pred,
                               pass_chunk_rows));
  size_t skipped = 0;
  if (!needed.empty()) {
    skipped = nchunks - static_cast<size_t>(
                            std::count(needed.begin(), needed.end(), true));
  }
  chunks_skipped_ += skipped;

  std::vector<BatPtr> parts(nchunks);
  Consumer* consumer = nullptr;
  {
    const Oid col_hseq = source.hseqbase;
    ChunkFn fn;
    if (code_space) {
      // Code-space consumer: each chunk evaluates over the compressed
      // image directly; the delivered buffer (if any other receiver
      // forced a decode) is ignored.
      compress::stats::SelectDirect();
      fn = [&parts, col_hseq, source, pred](
               size_t chunk, size_t begin, size_t end, const ChunkBuffer&,
               const parallel::ExecContext&) -> Status {
        MAMMOTH_ASSIGN_OR_RETURN(
            parts[chunk], EvalCodeSpace(source, pred, begin, end, col_hseq));
        return Status::OK();
      };
    } else {
      if (source.compressed()) compress::stats::SelectFallback();
      fn = [&parts, col_hseq, source, pred](
               size_t chunk, size_t begin, size_t end, const ChunkBuffer& buf,
               const parallel::ExecContext& eval_ctx) -> Status {
        if (buf.data != nullptr) {
          MAMMOTH_ASSIGN_OR_RETURN(
              parts[chunk],
              EvalChunkBuffer(buf, col_hseq, pred, begin, end, eval_ctx));
        } else {
          MAMMOTH_ASSIGN_OR_RETURN(
              parts[chunk], EvalChunk(source.bat, pred, begin, end, eval_ctx));
        }
        return Status::OK();
      };
    }
    std::lock_guard<std::mutex> lock(group->mu);
    // Attach inline (the shape cannot have changed: `attaching` kept the
    // group busy), releasing the placeholder in the same critical section.
    --group->attaching;
    consumer = new Consumer;
    consumer->group = group;
    consumer->source = source;
    consumer->wants_buffer = !code_space;
    consumer->needed =
        needed.empty() ? std::vector<bool>(nchunks, true) : std::move(needed);
    consumer->remaining = static_cast<size_t>(std::count(
        consumer->needed.begin(), consumer->needed.end(), true));
    consumer->fn = std::move(fn);
    group->consumers.push_back(consumer);
    if (starts_pass) {
      ++scans_direct_;
    } else {
      ++scans_attached_;
    }
  }
  MAMMOTH_RETURN_IF_ERROR(Drain(consumer, ctx));

  size_t total = 0;
  for (const BatPtr& p : parts) {
    if (p != nullptr) total += p->Count();
  }
  BatPtr out = Bat::New(PhysType::kOid);
  out->Resize(total);
  Oid* dst = out->MutableTailData<Oid>();
  for (const BatPtr& p : parts) {
    if (p == nullptr || p->Count() == 0) continue;
    std::memcpy(dst, p->TailData<Oid>(), p->Count() * sizeof(Oid));
    dst += p->Count();
  }
  StampSelectResult(out);
  return out;
}

SharedScanStats SharedScanScheduler::stats() const {
  SharedScanStats s;
  s.scans_attached = scans_attached_.load();
  s.scans_direct = scans_direct_.load();
  s.chunks_loaded = chunks_loaded_.load();
  s.chunks_delivered = chunks_delivered_.load();
  s.chunks_skipped = chunks_skipped_.load();
  s.chunks_direct = chunks_direct_.load();
  s.loads_saved = s.chunks_delivered - s.chunks_loaded;
  s.chunks_decompressed = chunks_decompressed_.load();
  s.bytes_loaded = bytes_loaded_.load();
  s.bytes_delivered = bytes_delivered_.load();
  return s;
}

}  // namespace mammoth::scan
