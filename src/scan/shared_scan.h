#ifndef MAMMOTH_SCAN_SHARED_SCAN_H_
#define MAMMOTH_SCAN_SHARED_SCAN_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "compress/compressed_bat.h"
#include "compress/dict_str.h"
#include "core/bat.h"
#include "core/value.h"
#include "index/zonemap.h"
#include "parallel/exec_context.h"

namespace mammoth::scan {

/// The execution-side counterpart of the Cooperative Scans simulation in
/// scan/cooperative.h (§5): instead of *modelling* queries that share one
/// physical pass, the SharedScanScheduler makes real concurrent SELECTs
/// over one table ride a single chunk-at-a-time sweep over the BATs.
///
/// A table pass is divided into morsel-aligned chunks. Every routed scan
/// attaches as a *consumer* with the chunk set it still needs (zone-map
/// pruned for selective range predicates); one attached consumer at a time
/// acts as the *driver*: it repeatedly picks the next chunk with the
/// relevance policy of the simulation (the chunk needed by the most
/// attached consumers, ties to the lowest index, restricted to chunks the
/// driver itself needs) and delivers it to every consumer that wants it in
/// one go — the in-memory analogue of loading a disk chunk once and
/// handing it to all waiting queries: the chunk's cache lines are streamed
/// once per delivery instead of once per query. Late-arriving consumers
/// attach to the in-flight pass and circle back for the chunks they
/// missed, exactly like the simulation's mid-flight arrivals.

/// The column image a routed scan reads: either a plain BAT or a
/// compressed column. A pass over a compressed source decompresses each
/// chunk *once* into a pooled buffer and hands that buffer to every
/// consumer of the chunk — sharing the decompression work exactly like
/// the plain path shares the memory sweep.
struct ColumnSource {
  BatPtr bat;
  std::shared_ptr<const compress::CompressedBat> comp;
  /// The dictionary image of a string column; `bat` is set alongside it
  /// (the plain heap image) so ineligible predicates fall back to the
  /// string kernels. Code-space predicates scan the dict's packed codes
  /// and never materialize a chunk buffer.
  std::shared_ptr<const compress::StrDict> sdict;
  Oid hseqbase = 0;  ///< head base of the column (a CompressedBat has none)

  static ColumnSource Plain(BatPtr b) {
    ColumnSource s;
    s.hseqbase = b != nullptr ? b->hseqbase() : 0;
    s.bat = std::move(b);
    return s;
  }
  static ColumnSource Compressed(
      std::shared_ptr<const compress::CompressedBat> c, Oid hseq = 0) {
    ColumnSource s;
    s.comp = std::move(c);
    s.hseqbase = hseq;
    return s;
  }
  static ColumnSource Dict(BatPtr b,
                           std::shared_ptr<const compress::StrDict> d) {
    ColumnSource s = Plain(std::move(b));
    s.sdict = std::move(d);
    return s;
  }
  bool compressed() const { return comp != nullptr; }
  size_t Count() const {
    return comp != nullptr ? comp->Count()
                           : (bat != nullptr ? bat->Count() : 0);
  }
  PhysType type() const {
    return comp != nullptr ? comp->type()
                           : (bat != nullptr ? bat->type() : PhysType::kInt32);
  }
  /// Physical identity for per-chunk load sharing: consumers whose
  /// sources compare equal read the same bytes, so one materialization
  /// serves them all.
  const void* Identity() const {
    if (comp != nullptr) return comp.get();
    if (sdict != nullptr) return sdict.get();
    return bat != nullptr ? bat->tail().raw_data() : nullptr;
  }
};

/// The materialized image of one chunk, delivered to every consumer of
/// the chunk: `data` points at the value of the chunk's first row
/// (aliasing the BAT tail for plain sources — zero copy — or a pooled
/// decode buffer for compressed ones). Null for consumers that attached
/// without a source (the low-level Attach protocol). The buffer is only
/// valid for the duration of the ChunkFn call.
struct ChunkBuffer {
  const void* data = nullptr;
  PhysType type = PhysType::kInt32;
};

/// The predicate of a routed scan, normalized from the MAL select ops.
struct ScanPredicate {
  enum class Kind : uint8_t { kTheta, kRange };
  Kind kind = Kind::kTheta;
  Value v;                 ///< theta operand
  CmpOp op = CmpOp::kEq;   ///< theta comparison
  Value lo, hi;            ///< inclusive range bounds; nil = unbounded
  bool anti = false;       ///< range inversion

  static ScanPredicate Theta(Value value, CmpOp cmp) {
    ScanPredicate p;
    p.kind = Kind::kTheta;
    p.v = std::move(value);
    p.op = cmp;
    return p;
  }
  static ScanPredicate Range(Value range_lo, Value range_hi, bool anti_sel) {
    ScanPredicate p;
    p.kind = Kind::kRange;
    p.lo = std::move(range_lo);
    p.hi = std::move(range_hi);
    p.anti = anti_sel;
    return p;
  }
};

struct SharedScanConfig {
  /// Default rows per chunk; rounded up to a multiple of the 64K morsel
  /// grain so chunk boundaries coincide with TaskPool morsel boundaries.
  /// Used by the low-level Attach protocol and whenever `chunk_bytes` is
  /// disabled.
  size_t chunk_rows = size_t{1} << 18;
  /// Target *bytes* per chunk for routed scans: each pass derives its row
  /// grain from the width of the column that starts it
  /// (chunk_bytes / width, morsel-aligned), so an int64 pass uses half
  /// the rows of an int32 pass and both sweep comparably sized chunks —
  /// the unit the relevance policy reasons about is then cache footprint,
  /// not row count. 0 disables the adaptation (every pass uses
  /// `chunk_rows`). The default (1 MiB) makes an int32 pass match the
  /// legacy 256Ki-row grain exactly.
  size_t chunk_bytes = size_t{1} << 20;
  /// Columns shorter than this always take the direct kernel path —
  /// coordinating a scan that fits in one cache-resident sweep costs more
  /// than it shares.
  size_t min_share_rows = size_t{1} << 18;
};

/// Monotonic sharing counters (all values since construction).
struct SharedScanStats {
  uint64_t scans_attached = 0;   ///< scans that joined an in-flight pass
  uint64_t scans_direct = 0;     ///< eligible scans that started their own pass
  uint64_t chunks_loaded = 0;    ///< physical chunk deliveries (one sweep each)
  uint64_t chunks_delivered = 0; ///< per-consumer chunk deliveries
  uint64_t chunks_skipped = 0;   ///< consumer chunks pruned by zone maps
  /// Chunk-equivalents scanned outside the pass protocol entirely (the
  /// monolithic-kernel fallback for pass-shape mismatches).
  uint64_t chunks_direct = 0;
  /// Deliveries that rode along another consumer's load instead of paying
  /// their own: chunks_delivered - chunks_loaded.
  uint64_t loads_saved = 0;
  /// Chunk loads that decompressed a compressed source (once per chunk
  /// per source, shared by every consumer of the chunk).
  uint64_t chunks_decompressed = 0;
  /// Physical bytes materialized by chunk loads: tail bytes for plain
  /// sources, compressed stream bytes (pro-rated per chunk) for
  /// compressed ones.
  uint64_t bytes_loaded = 0;
  /// Logical (uncompressed) bytes handed to consumers across deliveries.
  uint64_t bytes_delivered = 0;
};

class SharedScanScheduler {
 public:
  /// Per-chunk consumer body: processes rows [begin, end) of the pass.
  /// Chunks arrive in relevance order, not position order; a consumer
  /// buffers per-chunk results and assembles them by chunk index. May be
  /// invoked from any attached consumer's thread (or a TaskPool worker),
  /// but never twice for the same chunk and never concurrently with
  /// another chunk of the same consumer. `buf` is the chunk's
  /// materialized image (see ChunkBuffer) — one load shared by every
  /// receiver. `eval_ctx` is the context the body should evaluate with:
  /// the driver's own context when it is the chunk's sole receiver (the
  /// evaluation may morsel-parallelize), the serial context when the
  /// delivery fans out — the receivers themselves already spread over
  /// the pool then.
  using ChunkFn = std::function<Status(size_t chunk, size_t begin, size_t end,
                                       const ChunkBuffer& buf,
                                       const parallel::ExecContext& eval_ctx)>;

  class Consumer;

  explicit SharedScanScheduler(const SharedScanConfig& config = {});
  ~SharedScanScheduler();

  SharedScanScheduler(const SharedScanScheduler&) = delete;
  SharedScanScheduler& operator=(const SharedScanScheduler&) = delete;

  /// The routed select: evaluates `pred` over the merged column image
  /// `column` of `table`@`version`, returning the qualifying OID BAT —
  /// bit-identical (values, hseqbase, properties) to the direct kernels in
  /// core/select.h. When >= 1 other scan of the same table is active it
  /// joins that pass; a lone scan starts a chunk-at-a-time pass of its own
  /// (so later arrivals can join it mid-flight). The monolithic kernel
  /// path remains for ineligible scans (sorted/dense/string columns, short
  /// columns) and for arrivals whose (version, nrows) shape mismatches the
  /// busy pass.
  Result<BatPtr> Select(const BatPtr& column, const std::string& table,
                        const std::string& column_name, uint64_t version,
                        const ScanPredicate& pred,
                        const parallel::ExecContext& ctx);

  /// Source-aware routed select: like the BAT overload, but the column
  /// may be a CompressedBat — the pass then decompresses each chunk once
  /// into a pooled buffer shared by all attached consumers, and chunk
  /// pruning runs off the compressed column's own block statistics
  /// (no decompression for skipped chunks). Results are bit-identical to
  /// decompress-then-kernel.
  Result<BatPtr> Select(const ColumnSource& source, const std::string& table,
                        const std::string& column_name, uint64_t version,
                        const ScanPredicate& pred,
                        const parallel::ExecContext& ctx);

  /// --- Low-level pass protocol (used by Select, tests and benches) ------
  /// Attaches a consumer to the pass over `nrows` rows of `table`@
  /// `version`. `needed` marks the chunks the consumer wants (empty = all);
  /// unneeded chunks count as skipped. Returns null when the group is
  /// already busy with a different (version, nrows, chunk grain) shape —
  /// the caller must then run its scan directly. May be called from
  /// inside a ChunkFn (a late arrival attaching mid-pass).
  /// `chunk_rows` sets the pass's chunk grain (0: the config default);
  /// it only takes effect when this Attach starts the pass.
  /// `source` is the column the consumer reads (materialized once per
  /// chunk and passed to `fn`); default-constructed = no source (the fn
  /// receives a null ChunkBuffer and reads whatever it captured).
  Consumer* Attach(const std::string& table, uint64_t version, size_t nrows,
                   std::vector<bool> needed, ChunkFn fn,
                   size_t chunk_rows = 0, ColumnSource source = {});

  /// Drives and/or waits until every needed chunk of `consumer` has been
  /// delivered, then detaches and destroys it. Exactly one Drain per
  /// Attach. Returns the first error any of this consumer's chunk
  /// callbacks produced.
  Status Drain(Consumer* consumer, const parallel::ExecContext& ctx);

  /// Number of scans (attached consumers + arrivals mid-attach) of
  /// `table` right now; a new arrival joins an existing pass iff this
  /// is >= 1.
  size_t ActiveScans(const std::string& table) const;

  SharedScanStats stats() const;

  /// The default (non-adaptive) chunk grain, morsel-aligned.
  size_t chunk_rows() const { return config_.chunk_rows; }

  /// The chunk grain a routed pass uses for columns of the given value
  /// width: chunk_bytes / width, morsel-aligned (or the fixed chunk_rows
  /// when byte-adaptation is disabled).
  size_t RowsPerChunk(size_t value_width) const;

 private:
  struct Group;

  /// Builds (or fetches the cached) zone map of the column at the pass's
  /// chunk grain and returns the chunk mask `pred` cannot prove empty, or
  /// an empty vector ("need all") when the predicate/type does not
  /// support pruning.
  std::vector<bool> PruneChunks(const BatPtr& column,
                                const std::string& table,
                                const std::string& column_name,
                                uint64_t version, const ScanPredicate& pred,
                                size_t chunk_rows);

  /// Chunk pruning for a compressed source: aggregates the column's own
  /// per-block min/max statistics to the pass's chunk grain (the stat
  /// grain divides the morsel-aligned chunk grain), so skipped chunks
  /// are never decompressed. Empty = "need all".
  static std::vector<bool> PruneChunksCompressed(
      const compress::CompressedBat& comp, const ScanPredicate& pred,
      size_t chunk_rows);

  /// Relevance policy of the simulation: among chunks `driver` still
  /// needs, the one wanted by the most attached consumers (ties: lowest
  /// index). Requires the group lock.
  size_t PickChunkLocked(Group& group, const Consumer& driver) const;

  void DriveLocked(Group& group, Consumer* driver,
                   std::unique_lock<std::mutex>& lock,
                   const parallel::ExecContext& ctx);

  std::shared_ptr<Group> GetGroup(const std::string& table);

  const SharedScanConfig config_;

  mutable std::mutex mu_;  ///< guards groups_ and zonemaps_
  std::unordered_map<std::string, std::shared_ptr<Group>> groups_;

  /// Zone maps cached per (table\0column), invalidated by version or by
  /// a block-granularity change (a pass at a different chunk grain).
  struct CachedZoneMap {
    uint64_t version = 0;
    size_t block_rows = 0;
    std::shared_ptr<index::ZoneMap> zonemap;
  };
  std::unordered_map<std::string, CachedZoneMap> zonemaps_;

  std::atomic<uint64_t> scans_attached_{0};
  std::atomic<uint64_t> scans_direct_{0};
  std::atomic<uint64_t> chunks_loaded_{0};
  std::atomic<uint64_t> chunks_delivered_{0};
  std::atomic<uint64_t> chunks_skipped_{0};
  std::atomic<uint64_t> chunks_direct_{0};
  std::atomic<uint64_t> chunks_decompressed_{0};
  std::atomic<uint64_t> bytes_loaded_{0};
  std::atomic<uint64_t> bytes_delivered_{0};
};

}  // namespace mammoth::scan

#endif  // MAMMOTH_SCAN_SHARED_SCAN_H_
