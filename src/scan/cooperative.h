#ifndef MAMMOTH_SCAN_COOPERATIVE_H_
#define MAMMOTH_SCAN_COOPERATIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace mammoth::scan {

/// Cooperative Scans ([45], §5): "multiple active queries cooperate to
/// create synergy rather than competition for I/O resources". The column is
/// divided into chunks; instead of every query dragging its own sequential
/// pass over the table through the I/O subsystem, an *active buffer
/// manager* decides which chunk to load next — favoring chunks that the
/// most waiting queries still need — and hands each loaded chunk to all of
/// them at once.
///
/// Substitution (DESIGN.md §3): there is no disk here; chunk loads are
/// simulated time against a configurable bandwidth, which is what the
/// claim is about (I/O volume and query latency, not the medium).

/// One registered scan query over chunk range [first_chunk, last_chunk].
struct ScanQuery {
  size_t first_chunk = 0;
  size_t last_chunk = 0;  // inclusive
  double arrival_time = 0;
  double process_seconds_per_chunk = 0;  ///< CPU per delivered chunk
};

struct ScanStats {
  size_t chunk_loads = 0;      ///< chunks fetched from "disk"
  double makespan = 0;         ///< completion of the last query
  double avg_latency = 0;      ///< arrival -> completion per query
  double io_seconds = 0;       ///< total simulated I/O time
  std::string ToString() const;
};

struct ScanConfig {
  size_t total_chunks = 256;
  double chunk_load_seconds = 0.004;  ///< e.g. 1MB chunks at 250MB/s
  size_t buffer_chunks = 16;          ///< chunks resident at once
};

/// The relevance-driven cooperative policy: repeatedly load the chunk
/// needed by the most currently-active queries (ties: lowest index), and
/// deliver it to all of them.
ScanStats RunCooperative(const ScanConfig& config,
                         const std::vector<ScanQuery>& queries);

/// The traditional policy: every query performs its own sequential scan;
/// a shared LRU buffer of `buffer_chunks` is the only reuse opportunity.
/// Queries time-share the single I/O channel in round-robin.
ScanStats RunIndependent(const ScanConfig& config,
                         const std::vector<ScanQuery>& queries);

}  // namespace mammoth::scan

#endif  // MAMMOTH_SCAN_COOPERATIVE_H_
