#include "scan/cooperative.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <vector>

namespace mammoth::scan {

std::string ScanStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "loads=%zu io=%.3fs makespan=%.3fs latency=%.3fs",
                chunk_loads, io_seconds, makespan, avg_latency);
  return buf;
}

namespace {

struct QueryState {
  const ScanQuery* q;
  std::vector<bool> delivered;  // indexed by chunk - first_chunk
  size_t remaining = 0;
  double completion = 0;
  bool active = false;
  bool done = false;

  explicit QueryState(const ScanQuery* query) : q(query) {
    remaining = query->last_chunk - query->first_chunk + 1;
    delivered.assign(remaining, false);
  }

  bool Needs(size_t chunk) const {
    return !done && chunk >= q->first_chunk && chunk <= q->last_chunk &&
           !delivered[chunk - q->first_chunk];
  }

  void Deliver(size_t chunk, double now) {
    delivered[chunk - q->first_chunk] = true;
    if (--remaining == 0) {
      done = true;
      // CPU overlaps I/O of other chunks; it binds only when it exceeds
      // the total I/O span the query observed.
      const double total_cpu =
          q->process_seconds_per_chunk *
          static_cast<double>(delivered.size());
      completion = std::max(now, q->arrival_time + total_cpu);
    }
  }
};

/// Simple LRU set of resident chunks.
class ChunkBuffer {
 public:
  explicit ChunkBuffer(size_t capacity) : capacity_(capacity) {}

  bool Contains(size_t chunk) const {
    return std::find(lru_.begin(), lru_.end(), chunk) != lru_.end();
  }

  void Touch(size_t chunk) {
    auto it = std::find(lru_.begin(), lru_.end(), chunk);
    if (it != lru_.end()) lru_.erase(it);
    lru_.push_back(chunk);
    if (lru_.size() > capacity_) lru_.pop_front();
  }

 private:
  size_t capacity_;
  std::deque<size_t> lru_;
};

ScanStats Summarize(const std::vector<QueryState>& states, size_t loads,
                    double load_cost) {
  ScanStats s;
  s.chunk_loads = loads;
  s.io_seconds = static_cast<double>(loads) * load_cost;
  double total_latency = 0;
  for (const QueryState& st : states) {
    s.makespan = std::max(s.makespan, st.completion);
    total_latency += st.completion - st.q->arrival_time;
  }
  s.avg_latency =
      states.empty() ? 0 : total_latency / static_cast<double>(states.size());
  return s;
}

}  // namespace

ScanStats RunCooperative(const ScanConfig& config,
                         const std::vector<ScanQuery>& queries) {
  std::vector<QueryState> states;
  states.reserve(queries.size());
  for (const ScanQuery& q : queries) states.emplace_back(&q);
  ChunkBuffer buffer(config.buffer_chunks);

  double now = 0;
  size_t loads = 0;
  size_t done_count = 0;
  while (done_count < states.size()) {
    // Activate arrivals; serve buffered chunks to them for free.
    bool any_active = false;
    double next_arrival = -1;
    for (QueryState& st : states) {
      if (st.done) continue;
      if (st.q->arrival_time <= now) {
        st.active = true;
        any_active = true;
      } else if (next_arrival < 0 || st.q->arrival_time < next_arrival) {
        next_arrival = st.q->arrival_time;
      }
    }
    if (!any_active) {
      now = next_arrival;
      continue;
    }

    // Relevance: the chunk needed by the most active queries.
    size_t best_chunk = config.total_chunks;
    size_t best_relevance = 0;
    for (size_t c = 0; c < config.total_chunks; ++c) {
      size_t relevance = 0;
      for (const QueryState& st : states) {
        if (st.active && st.Needs(c)) ++relevance;
      }
      // Buffered chunks are free: deliver them immediately below.
      if (relevance > 0 && buffer.Contains(c)) {
        for (QueryState& st : states) {
          if (st.active && st.Needs(c)) {
            st.Deliver(c, now);
            if (st.done) ++done_count;
          }
        }
        continue;
      }
      if (relevance > best_relevance) {
        best_relevance = relevance;
        best_chunk = c;
      }
    }
    if (best_chunk == config.total_chunks) continue;  // all served from buffer

    now += config.chunk_load_seconds;
    ++loads;
    buffer.Touch(best_chunk);
    for (QueryState& st : states) {
      if (st.active && st.Needs(best_chunk)) {
        st.Deliver(best_chunk, now);
        if (st.done) ++done_count;
      }
    }
  }
  return Summarize(states, loads, config.chunk_load_seconds);
}

ScanStats RunIndependent(const ScanConfig& config,
                         const std::vector<ScanQuery>& queries) {
  std::vector<QueryState> states;
  states.reserve(queries.size());
  for (const ScanQuery& q : queries) states.emplace_back(&q);
  std::vector<size_t> cursor(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    cursor[i] = queries[i].first_chunk;
  }
  ChunkBuffer buffer(config.buffer_chunks);

  double now = 0;
  size_t loads = 0;
  size_t done_count = 0;
  size_t rr = 0;  // round-robin pointer
  while (done_count < states.size()) {
    // Find the next active query in round-robin order.
    size_t picked = states.size();
    double next_arrival = -1;
    for (size_t step = 0; step < states.size(); ++step) {
      const size_t i = (rr + step) % states.size();
      if (states[i].done) continue;
      if (states[i].q->arrival_time <= now) {
        picked = i;
        break;
      }
      if (next_arrival < 0 || states[i].q->arrival_time < next_arrival) {
        next_arrival = states[i].q->arrival_time;
      }
    }
    if (picked == states.size()) {
      now = next_arrival;
      continue;
    }
    rr = picked + 1;

    QueryState& st = states[picked];
    const size_t chunk = cursor[picked]++;
    if (!buffer.Contains(chunk)) {
      now += config.chunk_load_seconds;
      ++loads;
    }
    buffer.Touch(chunk);
    st.Deliver(chunk, now);
    if (st.done) ++done_count;
  }
  return Summarize(states, loads, config.chunk_load_seconds);
}

}  // namespace mammoth::scan
