#ifndef MAMMOTH_COMMON_BITUTIL_H_
#define MAMMOTH_COMMON_BITUTIL_H_

#include <bit>
#include <cstdint>

namespace mammoth {

/// Smallest power of two >= v (v=0 yields 1).
inline uint64_t NextPow2(uint64_t v) {
  if (v <= 1) return 1;
  return uint64_t{1} << (64 - std::countl_zero(v - 1));
}

/// floor(log2(v)) for v > 0.
inline uint32_t FloorLog2(uint64_t v) {
  return 63 - static_cast<uint32_t>(std::countl_zero(v));
}

/// ceil(log2(v)) for v > 0.
inline uint32_t CeilLog2(uint64_t v) {
  return v <= 1 ? 0 : 64 - static_cast<uint32_t>(std::countl_zero(v - 1));
}

/// Number of bits needed to represent v (0 needs 0 bits).
inline uint32_t BitWidth(uint64_t v) {
  return static_cast<uint32_t>(std::bit_width(v));
}

/// Rounds n up to a multiple of align (align must be a power of two).
inline uint64_t AlignUp(uint64_t n, uint64_t align) {
  return (n + align - 1) & ~(align - 1);
}

}  // namespace mammoth

#endif  // MAMMOTH_COMMON_BITUTIL_H_
