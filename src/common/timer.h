#ifndef MAMMOTH_COMMON_TIMER_H_
#define MAMMOTH_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace mammoth {

/// Wall-clock stopwatch on the steady clock.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Reads the CPU timestamp counter. Used to report cycles/value figures as
/// the paper does for decompression speed (§5). Falls back to a nanosecond
/// clock scaled as-if 1 GHz on non-x86 platforms.
inline uint64_t ReadCycleCounter() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Measures the TSC frequency against the steady clock so cycle counts can
/// be converted to seconds. Result is cached after the first call.
double CyclesPerSecond();

}  // namespace mammoth

#endif  // MAMMOTH_COMMON_TIMER_H_
