#ifndef MAMMOTH_COMMON_STATUS_H_
#define MAMMOTH_COMMON_STATUS_H_

#include <cstdint>
#include <string>
#include <utility>

namespace mammoth {

/// Error categories used across the library. The library never throws;
/// every fallible operation returns a Status or a Result<T>.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kTypeMismatch,
  kUnimplemented,
  kIOError,
  kInternal,
  kUnavailable,  ///< service refusing work (e.g. server draining)
  kTimedOut,     ///< deadline elapsed (e.g. admission queue timeout)
  kCorruption,   ///< on-disk state fails validation (e.g. mid-log CRC)
  kUnsupported,  ///< valid request the implementation declines (e.g. codec/type)
  kReadOnly,     ///< mutation refused: this node is a read replica
  kConflict,     ///< write-write transaction conflict: retry the txn
};

/// Returns a short human-readable name for a status code ("InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// A cheap success/error value. Success carries no allocation; errors carry
/// a code plus a message describing what went wrong.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status TypeMismatch(std::string msg) {
    return Status(StatusCode::kTypeMismatch, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status TimedOut(std::string msg) {
    return Status(StatusCode::kTimedOut, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ReadOnly(std::string msg) {
    return Status(StatusCode::kReadOnly, std::move(msg));
  }
  static Status Conflict(std::string msg) {
    return Status(StatusCode::kConflict, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace mammoth

#endif  // MAMMOTH_COMMON_STATUS_H_
