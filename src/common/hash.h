#ifndef MAMMOTH_COMMON_HASH_H_
#define MAMMOTH_COMMON_HASH_H_

#include <cstdint>
#include <cstring>
#include <string_view>

namespace mammoth {

/// Cheap multiplicative integer hash. The paper (§4.2, [25]) stresses that
/// cache-conscious joins only reach full speed once divisions and function
/// calls are removed from inner loops; this hash is a single multiply plus a
/// shift-xor and is meant to be inlined into kernel loops.
inline uint64_t HashInt(uint64_t x) {
  x *= 0x9e3779b97f4a7c15ULL;  // golden-ratio (Fibonacci) hashing
  return x ^ (x >> 32);
}

inline uint64_t HashInt(int64_t x) { return HashInt(static_cast<uint64_t>(x)); }
inline uint64_t HashInt(int32_t x) {
  return HashInt(static_cast<uint64_t>(static_cast<uint32_t>(x)));
}

inline uint64_t HashDouble(double x) {
  uint64_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  return HashInt(bits);
}

/// FNV-1a for variable-width data (string heaps, instruction signatures).
inline uint64_t HashBytes(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Mixes a new 64-bit value into an existing hash (for composite keys).
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  return seed ^ (HashInt(v) + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

}  // namespace mammoth

#endif  // MAMMOTH_COMMON_HASH_H_
