#ifndef MAMMOTH_COMMON_RESULT_H_
#define MAMMOTH_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace mammoth {

/// Either a value of type T or an error Status. Modeled on
/// absl::StatusOr / arrow::Result.
template <typename T>
class Result {
 public:
  /// Constructs a Result holding a value (implicit to allow `return value;`).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs a Result holding an error (implicit to allow
  /// `return Status::...;`). `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok() && "Result from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  /// Value accessors; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<Status, T> repr_;
};

}  // namespace mammoth

/// Propagates an error Status from an expression returning Status.
#define MAMMOTH_RETURN_IF_ERROR(expr)              \
  do {                                             \
    ::mammoth::Status status_macro_s_ = (expr);    \
    if (!status_macro_s_.ok()) return status_macro_s_; \
  } while (0)

#define MAMMOTH_CONCAT_IMPL_(a, b) a##b
#define MAMMOTH_CONCAT_(a, b) MAMMOTH_CONCAT_IMPL_(a, b)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise moves the value into `lhs` (which may be a declaration).
#define MAMMOTH_ASSIGN_OR_RETURN(lhs, expr)                            \
  MAMMOTH_ASSIGN_OR_RETURN_IMPL_(                                      \
      MAMMOTH_CONCAT_(result_macro_r_, __LINE__), lhs, expr)

#define MAMMOTH_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value();

#endif  // MAMMOTH_COMMON_RESULT_H_
