#include "common/timer.h"

#include <thread>

namespace mammoth {

namespace {

double MeasureCyclesPerSecond() {
  const uint64_t c0 = ReadCycleCounter();
  const auto t0 = std::chrono::steady_clock::now();
  // 20ms is enough for a <1% estimate and cheap enough to do once.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const uint64_t c1 = ReadCycleCounter();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(c1 - c0) / secs;
}

}  // namespace

double CyclesPerSecond() {
  static const double cached = MeasureCyclesPerSecond();
  return cached;
}

}  // namespace mammoth
