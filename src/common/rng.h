#ifndef MAMMOTH_COMMON_RNG_H_
#define MAMMOTH_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace mammoth {

/// SplitMix64: tiny, fast, high-quality 64-bit PRNG. Deterministic given a
/// seed, which keeps tests and benchmark workloads reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  /// Next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

/// Zipf-distributed generator over ranks [0, n). Used to synthesize skewed
/// value distributions and Skyserver-like repeated query logs (DESIGN.md §3).
///
/// Uses the classic inverse-CDF-over-precomputed-harmonics approach; O(log n)
/// per sample after O(n) setup.
class ZipfGenerator {
 public:
  /// `n` distinct ranks, skew `theta` (0 = uniform, ~1 = heavily skewed).
  ZipfGenerator(uint64_t n, double theta, uint64_t seed = 42)
      : rng_(seed), cdf_(n) {
    double sum = 0.0;
    for (uint64_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (uint64_t i = 0; i < n; ++i) cdf_[i] /= sum;
  }

  /// Next rank in [0, n); rank 0 is the most frequent.
  uint64_t Next() {
    double u = rng_.NextDouble();
    // Binary search the CDF.
    uint64_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      uint64_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  Rng rng_;
  std::vector<double> cdf_;
};

}  // namespace mammoth

#endif  // MAMMOTH_COMMON_RNG_H_
