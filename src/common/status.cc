#include "common/status.h"

namespace mammoth {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kTypeMismatch:
      return "TypeMismatch";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTimedOut:
      return "TimedOut";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kReadOnly:
      return "ReadOnly";
    case StatusCode::kConflict:
      return "Conflict";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace mammoth
