#ifndef MAMMOTH_COMMON_LOGGING_H_
#define MAMMOTH_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// Aborts the process with a message when `cond` is false. Used for
/// programmer errors (contract violations), never for data-dependent errors,
/// which are reported through Status.
#define MAMMOTH_CHECK(cond, msg)                                        \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::fprintf(stderr, "MAMMOTH_CHECK failed at %s:%d: %s (%s)\n",  \
                   __FILE__, __LINE__, msg, #cond);                     \
      std::abort();                                                     \
    }                                                                   \
  } while (0)

/// Debug-only check; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define MAMMOTH_DCHECK(cond, msg) \
  do {                            \
  } while (0)
#else
#define MAMMOTH_DCHECK(cond, msg) MAMMOTH_CHECK(cond, msg)
#endif

#endif  // MAMMOTH_COMMON_LOGGING_H_
