#include "join/partitioned_hash_join.h"

#include "common/bitutil.h"
#include "common/timer.h"
#include "join/radix_cluster.h"

namespace mammoth::radix {

namespace {

/// Bucket-chained hash join of two clustered partitions. Buckets and chain
/// links are uint32 indices local to the partition, so the working set is
/// the partition plus ~8 bytes per inner tuple.
///
/// CRITICAL ([9]): all keys in this partition share the low `radix_bits`
/// of their hash — bucket selection must use the bits *above* them, or
/// every tuple collides into nbuckets/2^B chains and the join degenerates
/// to quadratic.
template <typename T>
void JoinPartition(const typename RadixTable<T>::Entry* l, size_t ln,
                   const typename RadixTable<T>::Entry* r, size_t rn,
                   Oid lbase, Oid rbase, int radix_bits,
                   std::vector<uint32_t>* buckets,
                   std::vector<uint32_t>* next, Bat* out_l, Bat* out_r) {
  if (ln == 0 || rn == 0) return;
  const size_t nbuckets = NextPow2(rn < 8 ? 8 : rn);
  const uint64_t mask = nbuckets - 1;
  buckets->assign(nbuckets, 0);
  next->resize(rn);
  for (size_t i = 0; i < rn; ++i) {
    const uint64_t h =
        (HashInt(static_cast<uint64_t>(r[i].key)) >> radix_bits) & mask;
    (*next)[i] = (*buckets)[h];
    (*buckets)[h] = static_cast<uint32_t>(i + 1);
  }
  for (size_t i = 0; i < ln; ++i) {
    const T key = l[i].key;
    const uint64_t h =
        (HashInt(static_cast<uint64_t>(key)) >> radix_bits) & mask;
    for (uint32_t j = (*buckets)[h]; j != 0; j = (*next)[j - 1]) {
      if (r[j - 1].key == key) {
        out_l->Append<Oid>(lbase + l[i].oid);
        out_r->Append<Oid>(rbase + r[j - 1].oid);
      }
    }
  }
}

template <typename T>
Result<algebra::JoinResult> Run(const BatPtr& l, const BatPtr& r,
                                const PartitionedJoinOptions& options,
                                PartitionedJoinStats* stats) {
  MAMMOTH_ASSIGN_OR_RETURN(RadixTable<T> lt, FromBat<T>(*l));
  MAMMOTH_ASSIGN_OR_RETURN(RadixTable<T> rt, FromBat<T>(*r));

  int bits = options.bits;
  if (bits <= 0) {
    // Default: size inner partitions for a typical 256KB L2.
    bits = SuggestRadixBits(rt.size(), sizeof(T) + sizeof(Oid), 256 << 10);
  }
  const std::vector<int> plan =
      bits == 0 ? std::vector<int>{} : SplitBits(bits, options.passes);

  WallTimer timer;
  if (!plan.empty()) {
    RadixCluster<T>(&lt, plan);
    RadixCluster<T>(&rt, plan);
  } else {
    lt.bounds = {0, lt.size()};
    rt.bounds = {0, rt.size()};
  }
  const double cluster_s = timer.ElapsedSeconds();

  timer.Reset();
  algebra::JoinResult out;
  out.left = Bat::New(PhysType::kOid);
  out.right = Bat::New(PhysType::kOid);
  out.left->Reserve(lt.size());
  out.right->Reserve(lt.size());
  std::vector<uint32_t> buckets, next;
  const size_t nclusters = lt.NumClusters();
  MAMMOTH_CHECK(nclusters == rt.NumClusters(),
                "cluster plans diverged between inputs");
  for (size_t c = 0; c < nclusters; ++c) {
    JoinPartition<T>(lt.entries.data() + lt.bounds[c],
                     lt.bounds[c + 1] - lt.bounds[c],
                     rt.entries.data() + rt.bounds[c],
                     rt.bounds[c + 1] - rt.bounds[c], lt.hseqbase,
                     rt.hseqbase, bits, &buckets, &next, out.left.get(),
                     out.right.get());
  }
  if (stats != nullptr) {
    stats->cluster_seconds = cluster_s;
    stats->join_seconds = timer.ElapsedSeconds();
    stats->bits = bits;
    stats->passes = plan.empty() ? 0 : static_cast<int>(plan.size());
  }
  return out;
}

}  // namespace

int SuggestRadixBits(size_t inner_count, size_t tuple_bytes,
                     size_t cache_bytes) {
  // Partition payload + bucket array (~8B/tuple) should fit about half the
  // cache, leaving room for the probe stream.
  const size_t budget = cache_bytes / 2;
  const size_t per_tuple = tuple_bytes + 8;
  int bits = 0;
  while (bits < 20 && ((inner_count >> bits) * per_tuple) > budget) ++bits;
  return bits;
}

Result<algebra::JoinResult> PartitionedHashJoin(
    const BatPtr& l, const BatPtr& r, const PartitionedJoinOptions& options,
    PartitionedJoinStats* stats) {
  if (l == nullptr || r == nullptr) {
    return Status::InvalidArgument("partitioned join: null input");
  }
  if (l->type() != r->type()) {
    return Status::TypeMismatch("partitioned join: tail types differ");
  }
  switch (l->type()) {
    case PhysType::kInt32:
      return Run<int32_t>(l, r, options, stats);
    case PhysType::kInt64:
      return Run<int64_t>(l, r, options, stats);
    case PhysType::kOid:
      return Run<uint64_t>(l, r, options, stats);
    default:
      return Status::Unimplemented(
          "partitioned join supports int/lng/oid keys");
  }
}

}  // namespace mammoth::radix
