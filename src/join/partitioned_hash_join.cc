#include "join/partitioned_hash_join.h"

#include "common/bitutil.h"
#include "common/timer.h"
#include "join/radix_cluster.h"
#include "parallel/stitch.h"

namespace mammoth::radix {

namespace {

using parallel::ExecContext;
using parallel::MorselCollector;

/// Bucket-chained hash join of two clustered partitions. Buckets and chain
/// links are uint32 indices local to the partition, so the working set is
/// the partition plus ~8 bytes per inner tuple. Matches stream through
/// `emit(left_oid, right_oid)` so the caller decides where pairs land
/// (output BATs serially, per-worker stitch buffers in parallel).
///
/// CRITICAL ([9]): all keys in this partition share the low `radix_bits`
/// of their hash — bucket selection must use the bits *above* them, or
/// every tuple collides into nbuckets/2^B chains and the join degenerates
/// to quadratic.
template <typename T, typename EmitFn>
void JoinPartition(const typename RadixTable<T>::Entry* l, size_t ln,
                   const typename RadixTable<T>::Entry* r, size_t rn,
                   Oid lbase, Oid rbase, int radix_bits,
                   std::vector<uint32_t>* buckets,
                   std::vector<uint32_t>* next, const EmitFn& emit) {
  if (ln == 0 || rn == 0) return;
  const size_t nbuckets = NextPow2(rn < 8 ? 8 : rn);
  const uint64_t mask = nbuckets - 1;
  buckets->assign(nbuckets, 0);
  next->resize(rn);
  for (size_t i = 0; i < rn; ++i) {
    const uint64_t h =
        (HashInt(static_cast<uint64_t>(r[i].key)) >> radix_bits) & mask;
    (*next)[i] = (*buckets)[h];
    (*buckets)[h] = static_cast<uint32_t>(i + 1);
  }
  for (size_t i = 0; i < ln; ++i) {
    const T key = l[i].key;
    const uint64_t h =
        (HashInt(static_cast<uint64_t>(key)) >> radix_bits) & mask;
    for (uint32_t j = (*buckets)[h]; j != 0; j = (*next)[j - 1]) {
      if (r[j - 1].key == key) {
        emit(lbase + l[i].oid, rbase + r[j - 1].oid);
      }
    }
  }
}

template <typename T>
Result<algebra::JoinResult> Run(const BatPtr& l, const BatPtr& r,
                                const PartitionedJoinOptions& options,
                                PartitionedJoinStats* stats) {
  const ExecContext& ctx =
      options.ctx != nullptr ? *options.ctx : ExecContext::Default();
  MAMMOTH_ASSIGN_OR_RETURN(RadixTable<T> lt, FromBat<T>(*l, ctx));
  MAMMOTH_ASSIGN_OR_RETURN(RadixTable<T> rt, FromBat<T>(*r, ctx));

  int bits = options.bits;
  if (bits <= 0) {
    // Default: size inner partitions for a typical 256KB L2.
    bits = SuggestRadixBits(rt.size(), sizeof(T) + sizeof(Oid), 256 << 10);
  }
  const std::vector<int> plan =
      bits == 0 ? std::vector<int>{} : SplitBits(bits, options.passes);

  WallTimer timer;
  if (!plan.empty()) {
    RadixCluster<T>(&lt, plan, ctx);
    RadixCluster<T>(&rt, plan, ctx);
  } else {
    lt.bounds = {0, lt.size()};
    rt.bounds = {0, rt.size()};
  }
  const double cluster_s = timer.ElapsedSeconds();

  timer.Reset();
  algebra::JoinResult out;
  out.left = Bat::New(PhysType::kOid);
  out.right = Bat::New(PhysType::kOid);
  const size_t nclusters = lt.NumClusters();
  MAMMOTH_CHECK(nclusters == rt.NumClusters(),
                "cluster plans diverged between inputs");

  if (ctx.threads() > 1 && nclusters > 1) {
    // Partition fan-out: one partition per morsel, per-worker hash-table
    // scratch, per-worker match buffers stitched back in partition order
    // (identical to the serial partition loop's output).
    struct Scratch {
      std::vector<uint32_t> buckets;
      std::vector<uint32_t> next;
    };
    const int nworkers = ctx.threads();
    std::vector<Scratch> scratch(static_cast<size_t>(nworkers));
    MorselCollector<Oid> lmatch(nworkers, nclusters, 1);
    MorselCollector<Oid> rmatch(nworkers, nclusters, 1);
    Status s = ctx.ParallelFor(
        nclusters, /*grain=*/1, [&](size_t cbegin, size_t cend, int worker) {
          Scratch& sc = scratch[static_cast<size_t>(worker)];
          for (size_t c = cbegin; c < cend; ++c) {
            auto lsink = lmatch.BeginMorsel(c, worker);
            auto rsink = rmatch.BeginMorsel(c, worker);
            JoinPartition<T>(
                lt.entries.data() + lt.bounds[c],
                lt.bounds[c + 1] - lt.bounds[c],
                rt.entries.data() + rt.bounds[c],
                rt.bounds[c + 1] - rt.bounds[c], lt.hseqbase, rt.hseqbase,
                bits, &sc.buckets, &sc.next, [&](Oid lo, Oid ro) {
                  lsink.Append(lo);
                  rsink.Append(ro);
                });
          }
          return Status::OK();
        });
    MAMMOTH_CHECK(s.ok(), "partition join cannot fail");
    out.left->Resize(lmatch.Total());
    lmatch.Stitch(out.left->MutableTailData<Oid>());
    out.right->Resize(rmatch.Total());
    rmatch.Stitch(out.right->MutableTailData<Oid>());
  } else {
    out.left->Reserve(lt.size());
    out.right->Reserve(lt.size());
    std::vector<uint32_t> buckets, next;
    Bat* out_l = out.left.get();
    Bat* out_r = out.right.get();
    for (size_t c = 0; c < nclusters; ++c) {
      JoinPartition<T>(lt.entries.data() + lt.bounds[c],
                       lt.bounds[c + 1] - lt.bounds[c],
                       rt.entries.data() + rt.bounds[c],
                       rt.bounds[c + 1] - rt.bounds[c], lt.hseqbase,
                       rt.hseqbase, bits, &buckets, &next,
                       [&](Oid lo, Oid ro) {
                         out_l->Append<Oid>(lo);
                         out_r->Append<Oid>(ro);
                       });
    }
  }
  if (stats != nullptr) {
    stats->cluster_seconds = cluster_s;
    stats->join_seconds = timer.ElapsedSeconds();
    stats->bits = bits;
    stats->passes = plan.empty() ? 0 : static_cast<int>(plan.size());
  }
  return out;
}

}  // namespace

int SuggestRadixBits(size_t inner_count, size_t tuple_bytes,
                     size_t cache_bytes) {
  // Partition payload + bucket array (~8B/tuple) should fit about half the
  // cache, leaving room for the probe stream.
  const size_t budget = cache_bytes / 2;
  const size_t per_tuple = tuple_bytes + 8;
  int bits = 0;
  while (bits < 20 && ((inner_count >> bits) * per_tuple) > budget) ++bits;
  return bits;
}

Result<algebra::JoinResult> PartitionedHashJoin(
    const BatPtr& l, const BatPtr& r, const PartitionedJoinOptions& options,
    PartitionedJoinStats* stats) {
  if (l == nullptr || r == nullptr) {
    return Status::InvalidArgument("partitioned join: null input");
  }
  if (l->type() != r->type()) {
    return Status::TypeMismatch("partitioned join: tail types differ");
  }
  switch (l->type()) {
    case PhysType::kInt32:
      return Run<int32_t>(l, r, options, stats);
    case PhysType::kInt64:
      return Run<int64_t>(l, r, options, stats);
    case PhysType::kOid:
      return Run<uint64_t>(l, r, options, stats);
    default:
      return Status::Unimplemented(
          "partitioned join supports int/lng/oid keys");
  }
}

}  // namespace mammoth::radix
