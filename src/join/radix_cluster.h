#ifndef MAMMOTH_JOIN_RADIX_CLUSTER_H_
#define MAMMOTH_JOIN_RADIX_CLUSTER_H_

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/logging.h"
#include "common/result.h"
#include "core/bat.h"
#include "parallel/exec_context.h"

namespace mammoth::radix {

/// A relation laid out for the radix algorithms of §4: packed binary
/// <oid,key> units, stored as one array so every clustering pass moves one
/// cache-friendly stream. OIDs are stored as 32-bit positions relative to
/// `hseqbase` (the algorithms' own scalability bounds sit far below 2^32
/// tuples). After clustering, `bounds` holds the H+1 cluster boundaries and
/// `bits` how many radix bits the layout reflects.
template <typename T>
struct RadixTable {
  struct Entry {
    uint32_t oid;  // position; head OID = hseqbase + oid
    T key;

    bool operator==(const Entry&) const = default;
  };

  std::vector<Entry> entries;
  std::vector<size_t> bounds;  // size H+1 once clustered; empty before
  int bits = 0;
  Oid hseqbase = 0;

  size_t size() const { return entries.size(); }
  size_t NumClusters() const {
    return bounds.empty() ? 1 : bounds.size() - 1;
  }
};

/// Radix-bits function: the B low bits of the key's hash (the paper clusters
/// "on the lower B bits of the integer hash-value", §4.2). `kUseHash=false`
/// clusters on the low bits of the raw value instead — used to reproduce
/// Figure 2 literally and by tests.
template <typename T, bool kUseHash = true>
inline uint64_t RadixBits(T key) {
  if constexpr (kUseHash) {
    return HashInt(static_cast<uint64_t>(key));
  } else {
    return static_cast<uint64_t>(key);
  }
}

/// One clustering pass over [begin, end): splits the region into 2^bits
/// sub-clusters on hash bits [shift, shift+bits). The histogram + scatter
/// two-scan radix partition; `cursor` is caller-provided scratch of size
/// 2^bits. Appends the produced sub-cluster boundaries (absolute) to
/// `out_bounds`.
template <typename T, bool kUseHash>
void ClusterPass(const typename RadixTable<T>::Entry* src,
                 typename RadixTable<T>::Entry* dst, size_t begin,
                 size_t end, int shift, int bits,
                 std::vector<size_t>* cursor,
                 std::vector<size_t>* out_bounds) {
  const size_t nclusters = size_t{1} << bits;
  const uint64_t mask = nclusters - 1;
  cursor->assign(nclusters, 0);
  for (size_t i = begin; i < end; ++i) {
    ++(*cursor)[(RadixBits<T, kUseHash>(src[i].key) >> shift) & mask];
  }
  size_t sum = begin;
  for (size_t c = 0; c < nclusters; ++c) {
    const size_t count = (*cursor)[c];
    (*cursor)[c] = sum;
    sum += count;
    out_bounds->push_back(sum);
  }
  for (size_t i = begin; i < end; ++i) {
    const size_t c = (RadixBits<T, kUseHash>(src[i].key) >> shift) & mask;
    dst[(*cursor)[c]++] = src[i];
  }
}

/// Multi-pass radix-cluster (§4.2, Figure 2): clusters `table` on the low
/// `total_bits` of the key hash using `bits_per_pass.size()` passes, pass p
/// splitting every existing cluster on the next `bits_per_pass[p]` bits,
/// starting with the *leftmost* bits of the B-bit window. The number of
/// randomly written regions per pass stays 2^bits_per_pass[p], which is what
/// avoids TLB and cache-line thrashing.
template <typename T, bool kUseHash = true>
void RadixCluster(RadixTable<T>* table,
                  const std::vector<int>& bits_per_pass) {
  int total_bits = 0;
  for (int b : bits_per_pass) {
    MAMMOTH_CHECK(b > 0, "radix pass must cluster on >= 1 bit");
    total_bits += b;
  }
  const size_t n = table->size();
  std::vector<typename RadixTable<T>::Entry> tmp(n);

  std::vector<size_t> bounds = {0, n};
  std::vector<size_t> cursor;
  int bits_done = 0;
  bool in_tmp = false;
  for (int pass_bits : bits_per_pass) {
    const int shift = total_bits - bits_done - pass_bits;
    std::vector<size_t> new_bounds = {0};
    const auto* src = in_tmp ? tmp.data() : table->entries.data();
    auto* dst = in_tmp ? table->entries.data() : tmp.data();
    for (size_t c = 0; c + 1 < bounds.size(); ++c) {
      ClusterPass<T, kUseHash>(src, dst, bounds[c], bounds[c + 1], shift,
                               pass_bits, &cursor, &new_bounds);
    }
    bounds = std::move(new_bounds);
    bits_done += pass_bits;
    in_tmp = !in_tmp;
  }
  if (in_tmp) table->entries.swap(tmp);
  table->bounds = std::move(bounds);
  table->bits = total_bits;
}

/// One clustering pass over [begin, end), morsel-parallel: phase A builds a
/// per-chunk histogram, a serial prefix walk turns the histograms into
/// per-chunk scatter cursors (cluster-major, chunk-minor), and phase B lets
/// every chunk scatter through its own cursors into disjoint destination
/// slots. The resulting layout — within a cluster, rows keep their source
/// order — is byte-identical to the serial ClusterPass. Falls back to the
/// serial pass for small regions, serial contexts, or histogram footprints
/// past ~32MB.
template <typename T, bool kUseHash>
void ParallelClusterPass(const typename RadixTable<T>::Entry* src,
                         typename RadixTable<T>::Entry* dst, size_t begin,
                         size_t end, int shift, int bits,
                         const parallel::ExecContext& ctx,
                         std::vector<size_t>* out_bounds) {
  const size_t n = end - begin;
  const size_t nclusters = size_t{1} << bits;
  const size_t grain = parallel::TaskPool::kDefaultGrain;
  const size_t nchunks = (n + grain - 1) / grain;
  if (ctx.threads() <= 1 || n <= 2 * grain ||
      nchunks * nclusters > (size_t{1} << 22)) {
    std::vector<size_t> cursor;
    ClusterPass<T, kUseHash>(src, dst, begin, end, shift, bits, &cursor,
                             out_bounds);
    return;
  }
  const uint64_t mask = nclusters - 1;

  // Phase A: per-chunk histograms (chunks own disjoint hist rows).
  std::vector<std::vector<size_t>> hist(nchunks);
  Status s = ctx.ParallelFor(
      n, grain, [&](size_t mbegin, size_t mend, int /*worker*/) {
        std::vector<size_t>& h = hist[mbegin / grain];
        h.assign(nclusters, 0);
        for (size_t i = mbegin; i < mend; ++i) {
          ++h[(RadixBits<T, kUseHash>(src[begin + i].key) >> shift) & mask];
        }
        return Status::OK();
      });
  MAMMOTH_CHECK(s.ok(), "cluster histogram cannot fail");

  // Serial prefix walk: chunk k's cursor for cluster c starts after all of
  // cluster c's rows from chunks < k and all rows of clusters < c.
  size_t sum = begin;
  for (size_t c = 0; c < nclusters; ++c) {
    for (size_t k = 0; k < nchunks; ++k) {
      const size_t count = hist[k][c];
      hist[k][c] = sum;
      sum += count;
    }
    out_bounds->push_back(sum);
  }

  // Phase B: scatter; every chunk advances only its own cursors, and the
  // prefix walk made all destination slots disjoint.
  s = ctx.ParallelFor(
      n, grain, [&](size_t mbegin, size_t mend, int /*worker*/) {
        std::vector<size_t>& cur = hist[mbegin / grain];
        for (size_t i = mbegin; i < mend; ++i) {
          const size_t c =
              (RadixBits<T, kUseHash>(src[begin + i].key) >> shift) & mask;
          dst[cur[c]++] = src[begin + i];
        }
        return Status::OK();
      });
  MAMMOTH_CHECK(s.ok(), "cluster scatter cannot fail");
}

/// Morsel-parallel multi-pass radix-cluster: identical decomposition and
/// output to the serial RadixCluster above for any context (§4.2 is doing
/// the scheduling for us — clusters are independent by construction). Early
/// passes with few clusters parallelize inside each cluster region
/// (ParallelClusterPass); once a pass has at least 2x threads() clusters it
/// fans whole clusters out to workers instead.
template <typename T, bool kUseHash = true>
void RadixCluster(RadixTable<T>* table, const std::vector<int>& bits_per_pass,
                  const parallel::ExecContext& ctx) {
  int total_bits = 0;
  for (int b : bits_per_pass) {
    MAMMOTH_CHECK(b > 0, "radix pass must cluster on >= 1 bit");
    total_bits += b;
  }
  const size_t n = table->size();
  std::vector<typename RadixTable<T>::Entry> tmp(n);
  const int nworkers = ctx.threads();

  std::vector<size_t> bounds = {0, n};
  int bits_done = 0;
  bool in_tmp = false;
  for (int pass_bits : bits_per_pass) {
    const int shift = total_bits - bits_done - pass_bits;
    const size_t ncur = bounds.size() - 1;
    std::vector<size_t> new_bounds = {0};
    const auto* src = in_tmp ? tmp.data() : table->entries.data();
    auto* dst = in_tmp ? table->entries.data() : tmp.data();
    if (ncur < 2 * static_cast<size_t>(nworkers)) {
      for (size_t c = 0; c + 1 < bounds.size(); ++c) {
        ParallelClusterPass<T, kUseHash>(src, dst, bounds[c], bounds[c + 1],
                                         shift, pass_bits, ctx, &new_bounds);
      }
    } else {
      // Enough clusters to keep every worker busy: one cluster per morsel,
      // per-worker cursor scratch, per-cluster bounds stitched in order.
      std::vector<std::vector<size_t>> cluster_bounds(ncur);
      std::vector<std::vector<size_t>> cursors(
          static_cast<size_t>(nworkers));
      Status s = ctx.ParallelFor(
          ncur, /*grain=*/1, [&](size_t cbegin, size_t cend, int worker) {
            for (size_t c = cbegin; c < cend; ++c) {
              ClusterPass<T, kUseHash>(
                  src, dst, bounds[c], bounds[c + 1], shift, pass_bits,
                  &cursors[static_cast<size_t>(worker)], &cluster_bounds[c]);
            }
            return Status::OK();
          });
      MAMMOTH_CHECK(s.ok(), "cluster pass cannot fail");
      for (const std::vector<size_t>& cb : cluster_bounds) {
        new_bounds.insert(new_bounds.end(), cb.begin(), cb.end());
      }
    }
    bounds = std::move(new_bounds);
    bits_done += pass_bits;
    in_tmp = !in_tmp;
  }
  if (in_tmp) table->entries.swap(tmp);
  table->bounds = std::move(bounds);
  table->bits = total_bits;
}

/// Splits `total_bits` over `passes` as evenly as possible (leftmost passes
/// take the remainder), e.g. (7, 2) -> {4, 3}. When `passes > total_bits`
/// the pass count is clamped: the returned plan's size() — not the
/// requested `passes` — is the authoritative number of passes, and every
/// entry is >= 1 bit. Callers sizing per-pass state (the parallel join's
/// partition fan-out included) must use plan.size().
std::vector<int> SplitBits(int total_bits, int passes);

/// Builds a RadixTable from a numeric BAT (the BAT's type must match T).
/// The <oid,key> packing writes disjoint slots, so it morsel-parallelizes
/// under `ctx` (identical bytes for any context).
template <typename T>
Result<RadixTable<T>> FromBat(
    const Bat& b,
    const parallel::ExecContext& ctx = parallel::ExecContext::Serial()) {
  if (b.type() != TypeTraits<T>::kType) {
    return Status::TypeMismatch("radix table type mismatch");
  }
  const size_t n = b.Count();
  if (n > 0xffffffffull) {
    return Status::OutOfRange("radix table limited to 2^32 tuples");
  }
  RadixTable<T> t;
  t.hseqbase = b.hseqbase();
  t.entries.resize(n);
  const T* v = b.TailData<T>();
  auto* entries = t.entries.data();
  Status s = ctx.ParallelFor(
      n, parallel::TaskPool::kDefaultGrain,
      [&](size_t begin, size_t end, int /*worker*/) {
        for (size_t i = begin; i < end; ++i) {
          entries[i].oid = static_cast<uint32_t>(i);
          entries[i].key = v[i];
        }
        return Status::OK();
      });
  MAMMOTH_CHECK(s.ok(), "radix table build cannot fail");
  return t;
}

}  // namespace mammoth::radix

#endif  // MAMMOTH_JOIN_RADIX_CLUSTER_H_
