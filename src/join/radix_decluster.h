#ifndef MAMMOTH_JOIN_RADIX_DECLUSTER_H_
#define MAMMOTH_JOIN_RADIX_DECLUSTER_H_

#include <cstdint>
#include <vector>

#include "common/bitutil.h"
#include "common/result.h"
#include "core/bat.h"

namespace mammoth::radix {

/// Cache-conscious DSM post-projection (§4.3, [28]).
///
/// After a join, the join index holds for every output rank i a position
/// `positions[i]` into a projection column. The naive projection
/// `out[i] = values[positions[i]]` makes one random access per tuple.
/// Radix-Decluster replaces it with three cache-friendly phases:
///
///   A. one-pass radix-cluster of (rank, position) pairs on the *high* bits
///      of position -> fetches become localized per position-cluster;
///   B. fetch values cluster-by-cluster, producing (rank, value) pairs;
///   C. one-pass radix-cluster of (rank, value) pairs on the high bits of
///      rank, then scatter each cluster into its contiguous, cache-sized
///      output region.
///
/// Being single-pass, phase C bounds the tuple count by
/// (#cache lines) x (cache bytes / value width) — "quite generous" and
/// quadratic in cache size, as the paper notes.
struct DeclusterOptions {
  /// Cache the algorithm should stay within; default 256KB (L2-ish).
  size_t cache_bytes = 256 << 10;
};

/// Maximum relation size the single-pass decluster supports for a value
/// width, given the cache size (paper: half a billion 4-byte tuples for a
/// 512KB cache).
size_t MaxDeclusterTuples(size_t cache_bytes, size_t value_width,
                          size_t line_bytes = 64);

namespace internal {

/// Single radix-cluster pass of (tag, payload) pairs on bits
/// [shift, shift+bits) of the tag. Histogram + scatter.
template <typename Tag, typename P>
void ClusterPairs(const Tag* tags, const P* payloads, size_t n, int shift,
                  int bits, Tag* out_tags, P* out_payloads) {
  const size_t k = size_t{1} << bits;
  const uint64_t mask = k - 1;
  std::vector<size_t> cursor(k, 0);
  for (size_t i = 0; i < n; ++i) {
    ++cursor[(static_cast<uint64_t>(tags[i]) >> shift) & mask];
  }
  size_t sum = 0;
  for (size_t c = 0; c < k; ++c) {
    const size_t count = cursor[c];
    cursor[c] = sum;
    sum += count;
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t c = (static_cast<uint64_t>(tags[i]) >> shift) & mask;
    out_tags[cursor[c]] = tags[i];
    out_payloads[cursor[c]] = payloads[i];
    ++cursor[c];
  }
}

}  // namespace internal

/// Reusable working memory for RadixDeclusterProject. Allocating ~5 full
/// relation-sized arrays per call would dominate the measurement with page
/// faults; production use keeps one scratch per worker.
template <typename T>
struct DeclusterScratch {
  std::vector<uint32_t> ranks, cranks, cpos, dranks;
  std::vector<T> fetched, dvals;

  void Resize(size_t n) {
    ranks.resize(n);
    cranks.resize(n);
    cpos.resize(n);
    dranks.resize(n);
    fetched.resize(n);
    dvals.resize(n);
  }
};

/// Projects `values[positions[i]]` into output rank i using Radix-Decluster.
/// `positions` are plain array positions (0-based; relation sizes up to
/// 2^32 — the algorithm's own single-pass bound is far below that). Returns
/// the projected column in output-rank order.
template <typename T>
std::vector<T> RadixDeclusterProject(const std::vector<Oid>& positions,
                                     const T* values, size_t nvalues,
                                     const DeclusterOptions& opt = {},
                                     DeclusterScratch<T>* scratch = nullptr) {
  const size_t n = positions.size();
  std::vector<T> out(n);
  if (n == 0) return out;

  DeclusterScratch<T> local;
  DeclusterScratch<T>& s = scratch == nullptr ? local : *scratch;
  s.Resize(n);

  // Cluster counts: enough clusters that one cluster's touched region fits
  // about half the cache.
  const size_t budget = opt.cache_bytes / 2;
  auto clusters_for = [&](size_t total_bytes) {
    size_t k = 1;
    while (k < 4096 && total_bytes / k > budget) k <<= 1;
    return k;
  };

  // --- Phase A: cluster (rank, position) by high bits of position.
  const size_t kpos = clusters_for(nvalues * sizeof(T));
  std::vector<uint32_t> pos32(n);
  for (size_t i = 0; i < n; ++i) pos32[i] = static_cast<uint32_t>(positions[i]);
  for (size_t i = 0; i < n; ++i) s.ranks[i] = static_cast<uint32_t>(i);
  const uint32_t pos_bits = CeilLog2(nvalues == 0 ? 1 : nvalues);
  const uint32_t kpos_bits = FloorLog2(kpos);
  const int pos_shift =
      pos_bits > kpos_bits ? static_cast<int>(pos_bits - kpos_bits) : 0;
  internal::ClusterPairs<uint32_t, uint32_t>(
      pos32.data(), s.ranks.data(), n, pos_shift,
      static_cast<int>(kpos_bits), s.cpos.data(), s.cranks.data());

  // --- Phase B: fetch values in position-clustered order.
  for (size_t i = 0; i < n; ++i) s.fetched[i] = values[s.cpos[i]];

  // --- Phase C: decluster (rank, value) by high bits of rank, then scatter
  // per cluster into the cache-sized output region.
  const size_t kout = clusters_for(n * sizeof(T));
  const uint32_t rank_bits = CeilLog2(n);
  const uint32_t kout_bits = FloorLog2(kout);
  const int rank_shift =
      rank_bits > kout_bits ? static_cast<int>(rank_bits - kout_bits) : 0;
  internal::ClusterPairs<uint32_t, T>(
      s.cranks.data(), s.fetched.data(), n, rank_shift,
      static_cast<int>(kout_bits), s.dranks.data(), s.dvals.data());
  for (size_t i = 0; i < n; ++i) out[s.dranks[i]] = s.dvals[i];
  return out;
}

/// The naive DSM post-projection baseline: one random access per tuple.
template <typename T>
std::vector<T> NaiveFetchProject(const std::vector<Oid>& positions,
                                 const T* values) {
  std::vector<T> out(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) out[i] = values[positions[i]];
  return out;
}

/// BAT-level wrapper: projects `values` through the join-index column
/// `positions` (bat[:oid] of head OIDs of `values`) with Radix-Decluster.
Result<BatPtr> DeclusterProject(const BatPtr& positions, const BatPtr& values,
                                const DeclusterOptions& opt = {});

}  // namespace mammoth::radix

#endif  // MAMMOTH_JOIN_RADIX_DECLUSTER_H_
