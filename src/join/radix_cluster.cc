#include "join/radix_cluster.h"

namespace mammoth::radix {

std::vector<int> SplitBits(int total_bits, int passes) {
  MAMMOTH_CHECK(total_bits > 0 && passes > 0, "SplitBits: bad arguments");
  if (passes > total_bits) passes = total_bits;
  std::vector<int> out(passes, total_bits / passes);
  for (int i = 0; i < total_bits % passes; ++i) ++out[i];
  return out;
}

}  // namespace mammoth::radix
