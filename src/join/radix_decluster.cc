#include "join/radix_decluster.h"

#include "core/dispatch.h"

namespace mammoth::radix {

size_t MaxDeclusterTuples(size_t cache_bytes, size_t value_width,
                          size_t line_bytes) {
  // Phase C supports at most (#cache lines) clusters, each covering a
  // cache-sized output region of cache_bytes/value_width tuples.
  return (cache_bytes / line_bytes) * (cache_bytes / value_width);
}

Result<BatPtr> DeclusterProject(const BatPtr& positions, const BatPtr& values,
                                const DeclusterOptions& opt) {
  if (positions == nullptr || values == nullptr) {
    return Status::InvalidArgument("decluster: null input");
  }
  if (positions->type() != PhysType::kOid) {
    return Status::TypeMismatch("decluster: positions must be bat[:oid]");
  }
  if (values->type() == PhysType::kStr) {
    return Status::Unimplemented("decluster on string values");
  }
  BatPtr posm = positions;
  if (posm->IsDenseTail()) {
    posm = posm->Clone();
    posm->MaterializeDense();
  }
  BatPtr valm = values;
  if (valm->IsDenseTail()) {
    valm = valm->Clone();
    valm->MaterializeDense();
  }
  const size_t n = posm->Count();
  const size_t nvalues = valm->Count();
  const Oid vbase = valm->hseqbase();
  std::vector<Oid> pos(n);
  for (size_t i = 0; i < n; ++i) {
    const Oid o = posm->TailData<Oid>()[i];
    if (o - vbase >= nvalues) {
      return Status::OutOfRange("decluster: oid beyond value BAT");
    }
    pos[i] = o - vbase;
  }
  return DispatchNumeric(valm->type(), [&](auto tag) -> BatPtr {
    using T = typename decltype(tag)::type;
    std::vector<T> projected =
        RadixDeclusterProject<T>(pos, valm->TailData<T>(), nvalues, opt);
    BatPtr r = Bat::New(valm->type());
    r->AppendRaw(projected.data(), projected.size());
    r->set_hseqbase(posm->hseqbase());
    return r;
  });
}

}  // namespace mammoth::radix
