#ifndef MAMMOTH_JOIN_PARTITIONED_HASH_JOIN_H_
#define MAMMOTH_JOIN_PARTITIONED_HASH_JOIN_H_

#include <vector>

#include "common/result.h"
#include "core/bat.h"
#include "core/join.h"
#include "parallel/exec_context.h"

namespace mammoth::radix {

/// Tuning and instrumentation for PartitionedHashJoin.
struct PartitionedJoinOptions {
  /// Radix bits B: both relations are clustered into 2^B partitions. 0 means
  /// "pick from cache size" (see SuggestRadixBits).
  int bits = 0;
  /// Number of clustering passes P; bits are split evenly over passes. The
  /// effective pass count is min(passes, bits) — see SplitBits.
  int passes = 2;
  /// Execution context for the clustering and per-partition join phases
  /// (partitions are independent by construction, §4.2). Null means
  /// parallel::ExecContext::Default(); results are bit-identical for any
  /// context.
  const parallel::ExecContext* ctx = nullptr;
};

/// Timing breakdown reported by the join (seconds).
struct PartitionedJoinStats {
  double cluster_seconds = 0;
  double join_seconds = 0;
  int bits = 0;
  int passes = 0;
};

/// Radix-partitioned hash join (§4.1-4.2): radix-clusters both inputs on B
/// bits of the key hash so corresponding partitions fit the CPU cache, then
/// hash-joins partition pairs with a bucket-chained table. CPU-optimized per
/// [25]: multiplicative hash, no divisions or function calls in inner loops.
///
/// Inputs must share a numeric type (kInt32 or kInt64). Returns the join
/// index (pairs of head OIDs).
Result<algebra::JoinResult> PartitionedHashJoin(
    const BatPtr& l, const BatPtr& r,
    const PartitionedJoinOptions& options = {},
    PartitionedJoinStats* stats = nullptr);

/// Picks B so that an inner partition (|r|/2^B tuples of `tuple_bytes` each,
/// plus its hash table) fits in `cache_bytes`.
int SuggestRadixBits(size_t inner_count, size_t tuple_bytes,
                     size_t cache_bytes);

}  // namespace mammoth::radix

#endif  // MAMMOTH_JOIN_PARTITIONED_HASH_JOIN_H_
