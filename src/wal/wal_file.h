#ifndef MAMMOTH_WAL_WAL_FILE_H_
#define MAMMOTH_WAL_WAL_FILE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"

namespace mammoth::wal {

/// Injectable crash points for the durability tests: every hook defaults
/// to "do nothing". A triggered fault puts the WalFile into a permanently
/// failed state (every later Append/Sync returns the same error), which
/// models a crashed process whose file contents stop exactly where the
/// fault hit — the recovery tests then reopen the directory and verify
/// the committed prefix survives.
struct WalFaultInjector {
  /// Called with the size of each physical write; returning fewer bytes
  /// simulates a torn write (the tail of the write is dropped on the
  /// floor, as after a power cut mid-append).
  std::function<size_t(size_t len)> clamp_write;
  /// May mutate the outgoing bytes (e.g. flip CRC bits) before they hit
  /// the file. A mutated write still "succeeds" — the corruption is only
  /// discovered by recovery, like silent media corruption.
  std::function<void(std::string* bytes)> mutate_write;
  /// Returning true fails the next fsync (models a dying disk; the WAL
  /// poisons itself and refuses further commits).
  std::function<bool()> fail_sync;
  /// Called right before each fsync; tests use it to hold the syncing
  /// leader long enough that followers pile onto one group commit.
  std::function<void()> before_sync;
};

/// Append-only file handle used for WAL segments: every byte passes
/// through the fault injector (when one is attached), and a triggered
/// fault latches the file into a failed state.
class WalFile {
 public:
  /// Opens `path` for appending, creating it when absent. Appends resume
  /// at `truncate_to` when >= 0 (the file is truncated first — recovery
  /// uses this to drop a torn tail before new records go in).
  static Result<std::unique_ptr<WalFile>> OpenAppend(
      const std::string& path, std::shared_ptr<WalFaultInjector> fault,
      int64_t truncate_to = -1);

  ~WalFile();
  WalFile(const WalFile&) = delete;
  WalFile& operator=(const WalFile&) = delete;

  /// Appends all bytes (through the injector). On a torn write the file
  /// keeps the clamped prefix and the error latches.
  Status Append(std::string_view bytes);

  /// fsync(2) (through the injector).
  Status Sync();

  /// Bytes successfully appended so far (file offset of the next write).
  uint64_t size() const { return size_; }

  const std::string& path() const { return path_; }

 private:
  WalFile(int fd, std::string path, uint64_t size,
          std::shared_ptr<WalFaultInjector> fault)
      : fd_(fd), path_(std::move(path)), size_(size),
        fault_(std::move(fault)) {}

  int fd_;
  std::string path_;
  uint64_t size_;
  Status failed_ = Status::OK();  ///< latched first fault/IO error
  std::shared_ptr<WalFaultInjector> fault_;
};

}  // namespace mammoth::wal

#endif  // MAMMOTH_WAL_WAL_FILE_H_
