#ifndef MAMMOTH_WAL_WAL_H_
#define MAMMOTH_WAL_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "wal/record.h"
#include "wal/wal_file.h"

namespace mammoth {
class Catalog;
}

namespace mammoth::wal {

/// Tuning for a durable database directory.
struct WalOptions {
  /// Rotate to a fresh segment once the current one grows past this.
  size_t segment_bytes = size_t{8} << 20;
  /// Amortize concurrent commits under one fsync (leader/follower on the
  /// WAL mutex). Off forces one fsync per committer — the bench's
  /// baseline, not a mode anyone should serve traffic with.
  bool group_commit = true;
  /// Skip fsync entirely (commit = buffered write). For benchmarking the
  /// fsync cost itself; acknowledged commits can be lost on crash.
  bool sync_on_commit = true;
  /// Auto-checkpoint once this many log bytes accumulate past the last
  /// checkpoint (0 disables; explicit CHECKPOINT still works).
  size_t checkpoint_log_bytes = size_t{64} << 20;
  /// Crash-point injection for the durability tests (null in production).
  std::shared_ptr<WalFaultInjector> fault;
};

/// Monotonic counters; `fsyncs` vs `commits_synced` is the group-commit
/// headline number (fsyncs-per-commit < 1 under concurrent writers).
struct WalStats {
  uint64_t txns_logged = 0;      ///< transactions appended
  uint64_t records_logged = 0;   ///< records appended (incl. Begin/Commit)
  uint64_t bytes_logged = 0;     ///< framed bytes appended
  uint64_t commits_synced = 0;   ///< successful Sync() returns
  uint64_t fsyncs = 0;           ///< physical fsync batches
  uint64_t segments_created = 0;
  uint64_t checkpoints = 0;
  uint64_t next_lsn = 0;
  uint64_t durable_lsn = 0;
  uint64_t checkpoint_lsn = 0;
};

/// Where an opened log resumes appending; produced by recovery (db.h).
struct WalResume {
  uint64_t next_lsn = 0;     ///< logical offset of the next record
  uint64_t next_txn_id = 1;
  uint64_t checkpoint_lsn = 0;
  std::string tail_segment;  ///< path to reuse (empty: start a new one)
  /// Record-stream bytes of the tail segment that survive recovery; the
  /// rest (a torn tail, or trailing uncommitted records) is truncated
  /// away before the first new append.
  uint64_t tail_valid_bytes = 0;
};

/// The write-ahead log of a database directory (layout in db.h): numbered
/// segment files of CRC-framed records plus checkpoint bookkeeping.
///
/// ### Group commit
///
/// `LogTransaction` (serialized by the engine's exclusive DML lock) only
/// buffers the transaction's frames and hands back its commit LSN; the
/// caller then *releases the engine lock* and calls `Sync(lsn)`. The
/// first syncer becomes the leader: it writes and fsyncs everything
/// buffered so far in one batch while later committers wait on the
/// condition variable; when the leader finishes, every transaction at or
/// below the durable LSN is acknowledged without an fsync of its own.
///
/// A failed write or fsync *poisons* the log: the in-memory catalog may
/// now be ahead of durable storage, so every later commit is refused
/// with the original error rather than pretending to be durable.
class Wal {
 public:
  /// Opens the log of `dir` (creating the directory and `wal/` subdir as
  /// needed), resuming at `resume`.
  static Result<std::unique_ptr<Wal>> Open(const std::string& dir,
                                           const WalOptions& options,
                                           const WalResume& resume = {});

  ~Wal() = default;
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Buffers one transaction (Begin + ops + Commit, framed contiguously)
  /// and returns its commit LSN — the position that must become durable
  /// before the statement may be acknowledged. Does not block on I/O.
  Result<uint64_t> LogTransaction(const std::vector<std::string>& ops);

  /// Blocks until the log is durable through `lsn` (group commit; see
  /// class comment). Counts one acknowledged commit.
  Status Sync(uint64_t lsn);

  /// Writes a checkpoint: flushes + fsyncs the log, saves `catalog`'s
  /// visible image atomically (temp dir + rename + CURRENT pointer),
  /// rotates to a fresh segment and deletes segments and snapshots the
  /// checkpoint obsoleted. Caller must hold the engine's exclusive lock
  /// (no concurrent DML). Returns the checkpoint LSN.
  Result<uint64_t> Checkpoint(const Catalog& catalog);

  /// True once `checkpoint_log_bytes` have accumulated past the last
  /// checkpoint (the log-size trigger; the engine checks after DML).
  bool ShouldCheckpoint() const;

  /// Blocks until the durable LSN advances past `lsn` or `timeout_ms`
  /// elapses, and returns the durable LSN at that moment. Replication
  /// sources tail the log with this instead of polling stats(); a
  /// timeout is not an error (the caller just sees an unchanged LSN).
  Result<uint64_t> WaitDurablePast(uint64_t lsn, int timeout_ms);

  WalStats stats() const;

  const std::string& dir() const { return dir_; }

 private:
  Wal(std::string dir, const WalOptions& options, const WalResume& resume);

  /// Opens/creates the segment that starts at `start_lsn`; registers the
  /// new file durably (fsync of the wal dir).
  Status OpenSegmentLocked(uint64_t start_lsn, const std::string& reuse_path,
                           uint64_t valid_bytes);

  /// Leader body: writes + fsyncs `buf` (rotating past segment_bytes),
  /// without holding mu_.
  Status WriteAndSync(const std::string& buf);

  const std::string dir_;
  const WalOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::string pending_;         ///< framed bytes not yet written
  uint64_t next_lsn_;           ///< lsn after pending_
  uint64_t durable_lsn_;        ///< fsynced through here
  uint64_t checkpoint_lsn_;
  uint64_t next_txn_id_;
  bool sync_active_ = false;    ///< a leader is writing/fsyncing
  Status poison_ = Status::OK();

  std::unique_ptr<WalFile> file_;  ///< current segment (never null)
  uint64_t segment_start_lsn_ = 0;

  // Stats (under mu_).
  uint64_t txns_logged_ = 0;
  uint64_t records_logged_ = 0;
  uint64_t bytes_logged_ = 0;
  uint64_t commits_synced_ = 0;
  uint64_t fsyncs_ = 0;
  uint64_t segments_created_ = 0;
  uint64_t checkpoints_ = 0;
};

/// On-disk naming shared by the Wal and recovery.
constexpr uint64_t kSegmentMagic = 0x314C41574D4DULL;  // "MMWAL1"
constexpr size_t kSegmentHeaderBytes = 16;              // magic + start lsn
std::string SegmentFileName(uint64_t start_lsn);
std::string WalSubdir(const std::string& dir);
std::string CurrentFilePath(const std::string& dir);
std::string SnapshotDirName(uint64_t checkpoint_lsn);

}  // namespace mammoth::wal

#endif  // MAMMOTH_WAL_WAL_H_
