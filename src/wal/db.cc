#include "wal/db.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/catalog.h"
#include "core/persist.h"
#include "core/table.h"
#include "sql/engine.h"

namespace mammoth::wal {

namespace fs = std::filesystem;

namespace {

/// One segment file located on disk.
struct SegmentInfo {
  std::string path;
  uint64_t start_lsn = 0;
  std::string payload;  ///< record stream (header stripped)
};

Result<std::vector<SegmentInfo>> ReadSegments(const std::string& dir) {
  struct RawSegment {
    std::string name;
    std::string path;
    std::string bytes;
  };
  std::vector<RawSegment> raw;
  std::vector<SegmentInfo> segs;
  std::error_code ec;
  fs::directory_iterator it(WalSubdir(dir), ec);
  if (ec) return segs;  // no wal/ subdir yet: nothing to replay
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal_", 0) != 0) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    if (!in.good() && !in.eof()) {
      return Status::IOError("read " + entry.path().string());
    }
    raw.push_back({name, entry.path().string(), std::move(buf).str()});
  }
  // Filenames encode the start LSN zero-padded to fixed width, so
  // lexicographic name order is LSN order — usable even for a file whose
  // header never made it to disk.
  std::sort(raw.begin(), raw.end(),
            [](const RawSegment& a, const RawSegment& b) {
              return a.name < b.name;
            });
  // A crash during segment rotation can land between creating the next
  // segment file and completing its 16-byte header write (the header is
  // appended after open). That file is by construction the newest and
  // holds no records: treat it like any other torn tail — drop it and
  // remove the file so the reopened log recreates it cleanly — instead
  // of refusing to open the database. A short *non-final* segment is
  // still corruption (records are missing from the middle of the log).
  if (!raw.empty() && raw.back().bytes.size() < kSegmentHeaderBytes) {
    fs::remove(raw.back().path, ec);
    raw.pop_back();
  }
  for (RawSegment& rs : raw) {
    if (rs.bytes.size() < kSegmentHeaderBytes) {
      return Status::Corruption("wal: segment " + rs.name +
                                " shorter than its header");
    }
    uint64_t magic = 0;
    SegmentInfo seg;
    std::memcpy(&magic, rs.bytes.data(), sizeof(magic));
    std::memcpy(&seg.start_lsn, rs.bytes.data() + 8, sizeof(seg.start_lsn));
    if (magic != kSegmentMagic) {
      return Status::Corruption("wal: bad magic in segment " + rs.name);
    }
    seg.path = rs.path;
    seg.payload = rs.bytes.substr(kSegmentHeaderBytes);
    segs.push_back(std::move(seg));
  }
  std::sort(segs.begin(), segs.end(),
            [](const SegmentInfo& a, const SegmentInfo& b) {
              return a.start_lsn < b.start_lsn;
            });
  for (size_t i = 1; i < segs.size(); ++i) {
    const uint64_t expected =
        segs[i - 1].start_lsn + segs[i - 1].payload.size();
    if (segs[i].start_lsn != expected) {
      return Status::Corruption(
          "wal: segment gap — " + segs[i].path + " starts at lsn " +
          std::to_string(segs[i].start_lsn) + ", expected " +
          std::to_string(expected));
    }
  }
  return segs;
}

/// Parsed CURRENT file, absent on a fresh database.
struct CurrentInfo {
  bool present = false;
  uint64_t checkpoint_lsn = 0;
  std::string snapshot_dir;
  uint64_t next_txn_id = 1;
};

Result<CurrentInfo> ReadCurrent(const std::string& dir) {
  CurrentInfo info;
  std::ifstream in(CurrentFilePath(dir));
  if (!in.is_open()) return info;  // fresh database
  info.present = true;
  if (!(in >> info.checkpoint_lsn >> info.snapshot_dir >> info.next_txn_id)) {
    return Status::Corruption("wal: malformed CURRENT file in " + dir);
  }
  return info;
}

}  // namespace

Status ApplyRecord(Catalog* catalog, const Record& rec, uint64_t stamp) {
  switch (rec.type) {
    case RecordType::kCreateTable: {
      MAMMOTH_ASSIGN_OR_RETURN(TablePtr t,
                               Table::Create(rec.table, rec.schema));
      return catalog->Register(std::move(t));
    }
    case RecordType::kInsertRows: {
      MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog->Get(rec.table));
      for (const std::vector<Value>& row : rec.rows) {
        MAMMOTH_RETURN_IF_ERROR(t->Insert(row, stamp));
      }
      return Status::OK();
    }
    case RecordType::kDeletePositions: {
      MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog->Get(rec.table));
      BatPtr oids = Bat::New(PhysType::kOid);
      oids->Reserve(rec.oids.size());
      for (Oid o : rec.oids) oids->Append(o);
      return t->Delete(oids, stamp);
    }
    case RecordType::kUpdateCells: {
      // Same order as Engine::RunUpdate: append the new row images, then
      // delete the replaced positions — so replay reproduces the exact
      // physical layout (OIDs, delta contents) of the pre-crash table.
      MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog->Get(rec.table));
      for (const std::vector<Value>& row : rec.rows) {
        MAMMOTH_RETURN_IF_ERROR(t->Insert(row, stamp));
      }
      BatPtr oids = Bat::New(PhysType::kOid);
      oids->Reserve(rec.oids.size());
      for (Oid o : rec.oids) oids->Append(o);
      return t->Delete(oids, stamp);
    }
    case RecordType::kSetCompression: {
      MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, catalog->Get(rec.table));
      return t->SetCompression(rec.compress);
    }
    case RecordType::kBegin:
    case RecordType::kCommit:
      return Status::Internal("wal: txn marker reached ApplyRecord");
  }
  return Status::Internal("wal: unhandled record type");
}

Result<RecoveryInfo> Recover(const std::string& dir, Catalog* catalog,
                             bool use_mmap) {
  RecoveryInfo info;

  MAMMOTH_ASSIGN_OR_RETURN(CurrentInfo current, ReadCurrent(dir));
  info.checkpoint_lsn = current.checkpoint_lsn;
  info.resume.checkpoint_lsn = current.checkpoint_lsn;
  info.resume.next_lsn = current.checkpoint_lsn;
  info.resume.next_txn_id = current.next_txn_id;

  if (current.present) {
    info.snapshot_dir = dir + "/" + current.snapshot_dir;
    MAMMOTH_ASSIGN_OR_RETURN(std::shared_ptr<Catalog> snap,
                             LoadCatalog(info.snapshot_dir, use_mmap));
    for (const std::string& name : snap->TableNames()) {
      MAMMOTH_ASSIGN_OR_RETURN(TablePtr t, snap->Get(name));
      MAMMOTH_RETURN_IF_ERROR(catalog->Register(std::move(t)));
    }
  }

  MAMMOTH_ASSIGN_OR_RETURN(std::vector<SegmentInfo> segs, ReadSegments(dir));
  if (segs.empty()) return info;

  // Decode every surviving frame, in LSN order. Only the final segment
  // may end torn.
  std::vector<Record> records;
  for (size_t i = 0; i < segs.size(); ++i) {
    const bool last = i + 1 == segs.size();
    size_t valid = 0;
    MAMMOTH_ASSIGN_OR_RETURN(
        TailState tail,
        DecodeFrames(segs[i].payload, segs[i].start_lsn, last, &records,
                     &valid));
    if (tail == TailState::kTorn) info.torn_tail = true;
  }

  // Replay committed transactions. A transaction's frames never straddle
  // segments (group commit writes whole transactions to one file), so a
  // trailing Begin without Commit sits wholly in the final segment.
  const SegmentInfo& tail_seg = segs.back();
  uint64_t resume_lsn = tail_seg.start_lsn;  // past the last surviving txn
  uint64_t max_txn_id = 0;
  bool in_txn = false;
  std::vector<const Record*> txn_ops;
  for (const Record& rec : records) {
    switch (rec.type) {
      case RecordType::kBegin:
        if (in_txn) {
          return Status::Corruption("wal: nested Begin at lsn " +
                                    std::to_string(rec.lsn));
        }
        in_txn = true;
        txn_ops.clear();
        break;
      case RecordType::kCommit: {
        if (!in_txn) {
          return Status::Corruption("wal: Commit without Begin at lsn " +
                                    std::to_string(rec.lsn));
        }
        in_txn = false;
        max_txn_id = std::max(max_txn_id, rec.txn_id);
        if (rec.end_lsn > resume_lsn) resume_lsn = rec.end_lsn;
        if (rec.lsn < current.checkpoint_lsn) {
          // Already folded into the snapshot (a stale segment a crash
          // kept around); committed, so it still anchors the resume point.
          ++info.txns_skipped;
          break;
        }
        for (const Record* op : txn_ops) {
          MAMMOTH_RETURN_IF_ERROR(ApplyRecord(catalog, *op));
          ++info.records_applied;
        }
        ++info.txns_applied;
        break;
      }
      default:
        if (!in_txn) {
          return Status::Corruption("wal: op outside a transaction at lsn " +
                                    std::to_string(rec.lsn));
        }
        txn_ops.push_back(&rec);
        break;
    }
  }
  if (in_txn) ++info.txns_uncommitted;

  info.resume.next_txn_id = std::max(current.next_txn_id, max_txn_id + 1);
  info.resume.tail_segment = tail_seg.path;
  info.resume.tail_valid_bytes = resume_lsn - tail_seg.start_lsn;
  info.resume.next_lsn = resume_lsn;
  return info;
}

Result<OpenedDb> OpenDatabase(const std::string& dir, sql::Engine* engine,
                              const DbOptions& options) {
  OpenedDb db;
  MAMMOTH_ASSIGN_OR_RETURN(
      db.info, Recover(dir, engine->catalog(), options.use_mmap));
  MAMMOTH_ASSIGN_OR_RETURN(db.wal,
                           Wal::Open(dir, options.wal, db.info.resume));
  engine->AttachWal(db.wal.get());
  return db;
}

namespace {

Status Differ(const std::string& what) {
  return Status::Internal("catalogs differ: " + what);
}

}  // namespace

Status CompareCatalogs(const Catalog& a, const Catalog& b) {
  std::vector<std::string> na = a.TableNames(), nb = b.TableNames();
  std::sort(na.begin(), na.end());
  std::sort(nb.begin(), nb.end());
  if (na != nb) return Differ("table sets");
  for (const std::string& name : na) {
    MAMMOTH_ASSIGN_OR_RETURN(TablePtr ta, a.Get(name));
    MAMMOTH_ASSIGN_OR_RETURN(TablePtr tb, b.Get(name));
    if (ta->schema().size() != tb->schema().size()) {
      return Differ(name + ": column count");
    }
    for (size_t c = 0; c < ta->schema().size(); ++c) {
      if (ta->schema()[c].name != tb->schema()[c].name ||
          ta->schema()[c].type != tb->schema()[c].type) {
        return Differ(name + ": schema of column " + std::to_string(c));
      }
    }
    if (ta->VisibleRowCount() != tb->VisibleRowCount()) {
      return Differ(name + ": visible row count (" +
                    std::to_string(ta->VisibleRowCount()) + " vs " +
                    std::to_string(tb->VisibleRowCount()) + ")");
    }
    const BatPtr live_a = ta->LiveCandidates();
    const BatPtr live_b = tb->LiveCandidates();
    const size_t nrows = ta->VisibleRowCount();
    for (size_t c = 0; c < ta->schema().size(); ++c) {
      MAMMOTH_ASSIGN_OR_RETURN(BatPtr col_a, ta->ScanColumn(c));
      MAMMOTH_ASSIGN_OR_RETURN(BatPtr col_b, tb->ScanColumn(c));
      const PhysType type = ta->schema()[c].type;
      const size_t width = TypeWidth(type);
      for (size_t i = 0; i < nrows; ++i) {
        const size_t ia = live_a ? live_a->OidAt(i) : i;
        const size_t ib = live_b ? live_b->OidAt(i) : i;
        bool equal;
        if (type == PhysType::kStr) {
          equal = col_a->StringAt(ia) == col_b->StringAt(ib);
        } else {
          // Bit-exact compare (covers NaN payloads in doubles).
          const auto* pa =
              static_cast<const uint8_t*>(col_a->tail().raw_data()) + ia * width;
          const auto* pb =
              static_cast<const uint8_t*>(col_b->tail().raw_data()) + ib * width;
          equal = std::memcmp(pa, pb, width) == 0;
        }
        if (!equal) {
          return Differ(name + "." + ta->schema()[c].name + " row " +
                        std::to_string(i));
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace mammoth::wal
