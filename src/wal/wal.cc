#include "wal/wal.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "core/catalog.h"
#include "core/persist.h"

namespace mammoth::wal {

namespace fs = std::filesystem;

std::string WalSubdir(const std::string& dir) { return dir + "/wal"; }

std::string CurrentFilePath(const std::string& dir) { return dir + "/CURRENT"; }

std::string SegmentFileName(uint64_t start_lsn) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "wal_%020" PRIu64 ".log", start_lsn);
  return buf;
}

std::string SnapshotDirName(uint64_t checkpoint_lsn) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "snap_%020" PRIu64, checkpoint_lsn);
  return buf;
}

namespace {

std::string EncodeSegmentHeader(uint64_t start_lsn) {
  std::string out(kSegmentHeaderBytes, '\0');
  std::memcpy(out.data(), &kSegmentMagic, sizeof(kSegmentMagic));
  std::memcpy(out.data() + 8, &start_lsn, sizeof(start_lsn));
  return out;
}

}  // namespace

Wal::Wal(std::string dir, const WalOptions& options, const WalResume& resume)
    : dir_(std::move(dir)),
      options_(options),
      next_lsn_(resume.next_lsn),
      durable_lsn_(resume.next_lsn),
      checkpoint_lsn_(resume.checkpoint_lsn),
      next_txn_id_(resume.next_txn_id) {}

Result<std::unique_ptr<Wal>> Wal::Open(const std::string& dir,
                                       const WalOptions& options,
                                       const WalResume& resume) {
  std::error_code ec;
  fs::create_directories(WalSubdir(dir), ec);
  if (ec) return Status::IOError("mkdir " + WalSubdir(dir) + ": " + ec.message());
  std::unique_ptr<Wal> wal(new Wal(dir, options, resume));
  std::unique_lock<std::mutex> lock(wal->mu_);
  MAMMOTH_RETURN_IF_ERROR(wal->OpenSegmentLocked(
      resume.next_lsn, resume.tail_segment, resume.tail_valid_bytes));
  lock.unlock();
  return wal;
}

Status Wal::OpenSegmentLocked(uint64_t start_lsn,
                              const std::string& reuse_path,
                              uint64_t valid_bytes) {
  if (!reuse_path.empty()) {
    // Resume inside a recovered segment: drop everything past the last
    // surviving record (torn tail or trailing uncommitted frames) so new
    // appends continue a clean committed prefix.
    MAMMOTH_ASSIGN_OR_RETURN(
        file_, WalFile::OpenAppend(
                   reuse_path, options_.fault,
                   static_cast<int64_t>(kSegmentHeaderBytes + valid_bytes)));
    segment_start_lsn_ = start_lsn - valid_bytes;
    return Status::OK();
  }
  const std::string path =
      WalSubdir(dir_) + "/" + SegmentFileName(start_lsn);
  MAMMOTH_ASSIGN_OR_RETURN(file_,
                           WalFile::OpenAppend(path, options_.fault, 0));
  MAMMOTH_RETURN_IF_ERROR(file_->Append(EncodeSegmentHeader(start_lsn)));
  segment_start_lsn_ = start_lsn;
  ++segments_created_;
  // Make the file's existence durable; its contents are covered by the
  // next commit's fsync.
  return SyncDir(WalSubdir(dir_));
}

Result<uint64_t> Wal::LogTransaction(const std::vector<std::string>& ops) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!poison_.ok()) return poison_;
  const uint64_t txn_id = next_txn_id_++;
  std::string buf;
  AppendFrame(&buf, EncodeBegin(txn_id));
  for (const std::string& op : ops) AppendFrame(&buf, op);
  AppendFrame(&buf, EncodeCommit(txn_id));
  pending_.append(buf);
  next_lsn_ += buf.size();
  ++txns_logged_;
  records_logged_ += 2 + ops.size();
  bytes_logged_ += buf.size();
  return next_lsn_;
}

Status Wal::WriteAndSync(const std::string& buf) {
  if (!buf.empty()) {
    MAMMOTH_RETURN_IF_ERROR(file_->Append(buf));
  }
  if (options_.sync_on_commit) {
    MAMMOTH_RETURN_IF_ERROR(file_->Sync());
  }
  return Status::OK();
}

Status Wal::Sync(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  bool did_fsync = false;
  for (;;) {
    if (!poison_.ok()) return poison_;
    if (durable_lsn_ >= lsn && (options_.group_commit || did_fsync ||
                                !options_.sync_on_commit)) {
      ++commits_synced_;
      return Status::OK();
    }
    if (sync_active_) {
      cv_.wait(lock);
      continue;
    }
    // Become the leader: write and fsync everything buffered so far.
    // Committers that arrive while we hold no lock buffer more bytes and
    // wait for the next leader round.
    sync_active_ = true;
    std::string buf = std::move(pending_);
    pending_.clear();
    const uint64_t target = next_lsn_;
    lock.unlock();
    Status st = WriteAndSync(buf);
    lock.lock();
    sync_active_ = false;
    if (!st.ok()) {
      poison_ = st;
      cv_.notify_all();
      return st;
    }
    durable_lsn_ = target;
    did_fsync = true;
    if (options_.sync_on_commit) ++fsyncs_;
    // Rotate once a segment is oversized; the next append goes to a fresh
    // file. Safe here: everything written so far is durable.
    if (file_->size() >= kSegmentHeaderBytes + options_.segment_bytes) {
      Status rot = OpenSegmentLocked(durable_lsn_, "", 0);
      if (!rot.ok()) {
        poison_ = rot;
        cv_.notify_all();
        return rot;
      }
    }
    cv_.notify_all();
  }
}

Result<uint64_t> Wal::Checkpoint(const Catalog& catalog) {
  // 1. Flush and fsync the whole log. The engine's exclusive lock keeps
  //    new transactions out, so next_lsn_ is stable once pending drains.
  uint64_t cp_lsn = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!poison_.ok()) return poison_;
    cp_lsn = next_lsn_;
  }
  MAMMOTH_RETURN_IF_ERROR(Sync(cp_lsn));
  {
    std::lock_guard<std::mutex> lock(mu_);
    --commits_synced_;  // Sync() counted a commit; a checkpoint is not one.
  }

  // 2. Save the catalog's visible image into a temp dir, make it durable,
  //    then publish it with an atomic rename.
  const std::string tmp = dir_ + "/snap.tmp";
  const std::string snap = dir_ + "/" + SnapshotDirName(cp_lsn);
  std::error_code ec;
  fs::remove_all(tmp, ec);
  fs::remove_all(snap, ec);
  fs::create_directories(tmp, ec);
  if (ec) return Status::IOError("mkdir " + tmp + ": " + ec.message());
  MAMMOTH_RETURN_IF_ERROR(SaveCatalog(catalog, tmp));
  MAMMOTH_RETURN_IF_ERROR(SyncTree(tmp));
  fs::rename(tmp, snap, ec);
  if (ec) return Status::IOError("rename " + snap + ": " + ec.message());
  MAMMOTH_RETURN_IF_ERROR(SyncDir(dir_));

  // 3. Swing the CURRENT pointer (same temp + rename dance). After this
  //    rename the checkpoint is the recovery baseline.
  {
    const std::string cur_tmp = CurrentFilePath(dir_) + ".tmp";
    std::string body = std::to_string(cp_lsn) + " " + SnapshotDirName(cp_lsn);
    uint64_t txn_snapshot;
    {
      std::lock_guard<std::mutex> lock(mu_);
      txn_snapshot = next_txn_id_;
    }
    body += " " + std::to_string(txn_snapshot) + "\n";
    FILE* f = std::fopen(cur_tmp.c_str(), "wb");
    if (f == nullptr) return Status::IOError("open " + cur_tmp);
    const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
    std::fclose(f);
    if (!ok) return Status::IOError("write " + cur_tmp);
    MAMMOTH_RETURN_IF_ERROR(SyncFile(cur_tmp));
    fs::rename(cur_tmp, CurrentFilePath(dir_), ec);
    if (ec) {
      return Status::IOError("rename CURRENT: " + ec.message());
    }
    MAMMOTH_RETURN_IF_ERROR(SyncDir(dir_));
  }

  // 4. Rotate to a segment starting at the checkpoint LSN, then drop the
  //    segments and snapshots it obsoleted. Rotation must not race an
  //    active leader (there is none for new commits — the engine lock —
  //    but a straggling Sync for an already-durable lsn may hold it).
  {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return !sync_active_; });
    if (segment_start_lsn_ != cp_lsn || file_ == nullptr) {
      MAMMOTH_RETURN_IF_ERROR(OpenSegmentLocked(cp_lsn, "", 0));
    }
    checkpoint_lsn_ = cp_lsn;
    ++checkpoints_;
  }
  for (const auto& entry : fs::directory_iterator(WalSubdir(dir_), ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("wal_", 0) == 0 && name < SegmentFileName(cp_lsn)) {
      fs::remove(entry.path(), ec);
    }
  }
  for (const auto& entry : fs::directory_iterator(dir_, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap_", 0) == 0 && name != SnapshotDirName(cp_lsn)) {
      fs::remove_all(entry.path(), ec);
    }
  }
  return cp_lsn;
}

Result<uint64_t> Wal::WaitDurablePast(uint64_t lsn, int timeout_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
               [&] { return !poison_.ok() || durable_lsn_ > lsn; });
  if (!poison_.ok()) return poison_;
  return durable_lsn_;
}

bool Wal::ShouldCheckpoint() const {
  if (options_.checkpoint_log_bytes == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_ - checkpoint_lsn_ >= options_.checkpoint_log_bytes;
}

WalStats Wal::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalStats s;
  s.txns_logged = txns_logged_;
  s.records_logged = records_logged_;
  s.bytes_logged = bytes_logged_;
  s.commits_synced = commits_synced_;
  s.fsyncs = fsyncs_;
  s.segments_created = segments_created_;
  s.checkpoints = checkpoints_;
  s.next_lsn = next_lsn_;
  s.durable_lsn = durable_lsn_;
  s.checkpoint_lsn = checkpoint_lsn_;
  return s;
}

}  // namespace mammoth::wal
