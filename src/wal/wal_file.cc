#include "wal/wal_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mammoth::wal {

Result<std::unique_ptr<WalFile>> WalFile::OpenAppend(
    const std::string& path, std::shared_ptr<WalFaultInjector> fault,
    int64_t truncate_to) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return Status::IOError("open " + path + ": " + std::strerror(errno));
  }
  if (truncate_to >= 0 && ::ftruncate(fd, truncate_to) != 0) {
    ::close(fd);
    return Status::IOError("ftruncate " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("fstat " + path);
  }
  return std::unique_ptr<WalFile>(new WalFile(
      fd, path, static_cast<uint64_t>(st.st_size), std::move(fault)));
}

WalFile::~WalFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status WalFile::Append(std::string_view bytes) {
  if (!failed_.ok()) return failed_;
  std::string mutated;
  if (fault_ != nullptr && fault_->mutate_write) {
    mutated.assign(bytes);
    fault_->mutate_write(&mutated);
    bytes = mutated;
  }
  size_t want = bytes.size();
  bool torn = false;
  if (fault_ != nullptr && fault_->clamp_write) {
    const size_t clamped = fault_->clamp_write(bytes.size());
    if (clamped < want) {
      want = clamped;
      torn = true;
    }
  }
  size_t done = 0;
  while (done < want) {
    const ssize_t n = ::write(fd_, bytes.data() + done, want - done);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      failed_ = Status::IOError("write " + path_ + ": " +
                                std::strerror(errno));
      return failed_;
    }
    done += static_cast<size_t>(n);
    size_ += static_cast<uint64_t>(n);
  }
  if (torn) {
    failed_ = Status::IOError("injected crash: torn write to " + path_);
    return failed_;
  }
  return Status::OK();
}

Status WalFile::Sync() {
  if (!failed_.ok()) return failed_;
  if (fault_ != nullptr && fault_->before_sync) fault_->before_sync();
  if (fault_ != nullptr && fault_->fail_sync && fault_->fail_sync()) {
    failed_ = Status::IOError("injected crash: fsync failed on " + path_);
    return failed_;
  }
  if (::fsync(fd_) != 0) {
    failed_ =
        Status::IOError("fsync " + path_ + ": " + std::strerror(errno));
    return failed_;
  }
  return Status::OK();
}

}  // namespace mammoth::wal
