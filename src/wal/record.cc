#include "wal/record.h"

#include <cstring>

namespace mammoth::wal {

namespace {

/// --- CRC-32 (IEEE, reflected), table-driven --------------------------------

const uint32_t* CrcTable() {
  static const auto table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

/// --- Little-endian put/get helpers ----------------------------------------

template <typename T>
void PutInt(std::string* out, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out->append(bytes, sizeof(T));
}

void PutString(std::string* out, std::string_view s) {
  PutInt<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutCell(std::string* out, PhysType type, const Value& v) {
  switch (type) {
    case PhysType::kStr:
      PutString(out, v.AsStr());
      break;
    case PhysType::kDouble:
    case PhysType::kFloat:
      PutInt<double>(out, v.AsReal());
      break;
    default:
      PutInt<int64_t>(out, v.AsInt());
      break;
  }
}

void PutSchema(std::string* out, const std::vector<ColumnDef>& schema) {
  PutInt<uint32_t>(out, static_cast<uint32_t>(schema.size()));
  for (const ColumnDef& def : schema) {
    PutString(out, def.name);
    PutInt<uint8_t>(out, static_cast<uint8_t>(def.type));
  }
}

struct Reader {
  const char* p;
  const char* end;
  explicit Reader(std::string_view s) : p(s.data()), end(s.data() + s.size()) {}

  template <typename T>
  bool ReadInt(T* v) {
    if (end - p < static_cast<ptrdiff_t>(sizeof(T))) return false;
    std::memcpy(v, p, sizeof(T));
    p += sizeof(T);
    return true;
  }
  bool ReadString(std::string* s) {
    uint32_t len = 0;
    if (!ReadInt(&len) || end - p < static_cast<ptrdiff_t>(len)) return false;
    s->assign(p, len);
    p += len;
    return true;
  }
  bool done() const { return p == end; }
};

bool ReadSchema(Reader* r, std::vector<ColumnDef>* schema) {
  uint32_t ncols = 0;
  if (!r->ReadInt(&ncols) || ncols == 0 || ncols > 4096) return false;
  schema->resize(ncols);
  for (ColumnDef& def : *schema) {
    uint8_t type = 0;
    if (!r->ReadString(&def.name) || !r->ReadInt(&type) ||
        type > static_cast<uint8_t>(PhysType::kStr)) {
      return false;
    }
    def.type = static_cast<PhysType>(type);
  }
  return true;
}

bool ReadRows(Reader* r, const std::vector<ColumnDef>& schema,
              std::vector<std::vector<Value>>* rows) {
  uint64_t nrows = 0;
  if (!r->ReadInt(&nrows)) return false;
  // One cell is at least one byte on the wire; bound before allocating.
  if (nrows * schema.size() >
      static_cast<uint64_t>(r->end - r->p)) {
    return false;
  }
  rows->resize(nrows);
  for (std::vector<Value>& row : *rows) {
    row.resize(schema.size());
    for (size_t c = 0; c < schema.size(); ++c) {
      switch (schema[c].type) {
        case PhysType::kStr: {
          std::string s;
          if (!r->ReadString(&s)) return false;
          row[c] = Value::Str(std::move(s));
          break;
        }
        case PhysType::kDouble:
        case PhysType::kFloat: {
          double d = 0;
          if (!r->ReadInt(&d)) return false;
          row[c] = Value::Real(d);
          break;
        }
        default: {
          int64_t i = 0;
          if (!r->ReadInt(&i)) return false;
          row[c] = Value::Int(i);
          break;
        }
      }
    }
  }
  return true;
}

bool ReadOids(Reader* r, std::vector<Oid>* oids) {
  uint64_t n = 0;
  if (!r->ReadInt(&n) ||
      n * sizeof(Oid) > static_cast<uint64_t>(r->end - r->p)) {
    return false;
  }
  oids->resize(n);
  for (Oid& o : *oids) {
    if (!r->ReadInt(&o)) return false;
  }
  return true;
}

void PutOids(std::string* out, const Bat& oids) {
  PutInt<uint64_t>(out, oids.Count());
  for (size_t i = 0; i < oids.Count(); ++i) {
    PutInt<Oid>(out, oids.OidAt(i));
  }
}

std::string EncodeTxnMarker(RecordType type, uint64_t txn_id) {
  std::string out;
  PutInt<uint8_t>(&out, static_cast<uint8_t>(type));
  PutInt<uint64_t>(&out, txn_id);
  return out;
}

}  // namespace

uint32_t Crc32(const void* data, size_t n) {
  const uint32_t* table = CrcTable();
  const auto* p = static_cast<const uint8_t*>(data);
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    crc = table[(crc ^ p[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeBegin(uint64_t txn_id) {
  return EncodeTxnMarker(RecordType::kBegin, txn_id);
}

std::string EncodeCommit(uint64_t txn_id) {
  return EncodeTxnMarker(RecordType::kCommit, txn_id);
}

std::string EncodeCreateTable(const std::string& table,
                              const std::vector<ColumnDef>& schema) {
  std::string out;
  PutInt<uint8_t>(&out, static_cast<uint8_t>(RecordType::kCreateTable));
  PutString(&out, table);
  PutSchema(&out, schema);
  return out;
}

std::string EncodeInsertRows(const std::string& table,
                             const std::vector<ColumnDef>& schema,
                             const std::vector<std::vector<Value>>& rows) {
  std::string out;
  PutInt<uint8_t>(&out, static_cast<uint8_t>(RecordType::kInsertRows));
  PutString(&out, table);
  PutSchema(&out, schema);
  PutInt<uint64_t>(&out, rows.size());
  for (const std::vector<Value>& row : rows) {
    for (size_t c = 0; c < schema.size(); ++c) {
      PutCell(&out, schema[c].type, row[c]);
    }
  }
  return out;
}

std::string EncodeDeletePositions(const std::string& table, const Bat& oids) {
  std::string out;
  PutInt<uint8_t>(&out, static_cast<uint8_t>(RecordType::kDeletePositions));
  PutString(&out, table);
  PutOids(&out, oids);
  return out;
}

std::string EncodeUpdateCells(const std::string& table,
                              const std::vector<ColumnDef>& schema,
                              const Bat& oids,
                              const std::vector<std::vector<Value>>& rows) {
  std::string out;
  PutInt<uint8_t>(&out, static_cast<uint8_t>(RecordType::kUpdateCells));
  PutString(&out, table);
  PutOids(&out, oids);
  PutSchema(&out, schema);
  PutInt<uint64_t>(&out, rows.size());
  for (const std::vector<Value>& row : rows) {
    for (size_t c = 0; c < schema.size(); ++c) {
      PutCell(&out, schema[c].type, row[c]);
    }
  }
  return out;
}

std::string EncodeSetCompression(const std::string& table, bool compress) {
  std::string out;
  PutInt<uint8_t>(&out, static_cast<uint8_t>(RecordType::kSetCompression));
  PutString(&out, table);
  PutInt<uint8_t>(&out, compress ? 1 : 0);
  return out;
}

void AppendFrame(std::string* out, std::string_view payload) {
  PutInt<uint32_t>(out, static_cast<uint32_t>(payload.size()));
  PutInt<uint32_t>(out, Crc32(payload.data(), payload.size()));
  out->append(payload);
}

Result<Record> DecodeRecord(std::string_view payload) {
  Reader r(payload);
  uint8_t type = 0;
  if (!r.ReadInt(&type)) return Status::Corruption("wal: empty payload");
  Record rec;
  switch (static_cast<RecordType>(type)) {
    case RecordType::kBegin:
    case RecordType::kCommit:
      rec.type = static_cast<RecordType>(type);
      if (!r.ReadInt(&rec.txn_id) || !r.done()) {
        return Status::Corruption("wal: bad txn marker");
      }
      return rec;
    case RecordType::kCreateTable:
      rec.type = RecordType::kCreateTable;
      if (!r.ReadString(&rec.table) || !ReadSchema(&r, &rec.schema) ||
          !r.done()) {
        return Status::Corruption("wal: bad CreateTable record");
      }
      return rec;
    case RecordType::kInsertRows:
      rec.type = RecordType::kInsertRows;
      if (!r.ReadString(&rec.table) || !ReadSchema(&r, &rec.schema) ||
          !ReadRows(&r, rec.schema, &rec.rows) || !r.done()) {
        return Status::Corruption("wal: bad InsertRows record");
      }
      return rec;
    case RecordType::kDeletePositions:
      rec.type = RecordType::kDeletePositions;
      if (!r.ReadString(&rec.table) || !ReadOids(&r, &rec.oids) ||
          !r.done()) {
        return Status::Corruption("wal: bad DeletePositions record");
      }
      return rec;
    case RecordType::kUpdateCells:
      rec.type = RecordType::kUpdateCells;
      if (!r.ReadString(&rec.table) || !ReadOids(&r, &rec.oids) ||
          !ReadSchema(&r, &rec.schema) ||
          !ReadRows(&r, rec.schema, &rec.rows) || !r.done()) {
        return Status::Corruption("wal: bad UpdateCells record");
      }
      return rec;
    case RecordType::kSetCompression: {
      rec.type = RecordType::kSetCompression;
      uint8_t on = 0;
      if (!r.ReadString(&rec.table) || !r.ReadInt(&on) || on > 1 ||
          !r.done()) {
        return Status::Corruption("wal: bad SetCompression record");
      }
      rec.compress = on != 0;
      return rec;
    }
    default:
      return Status::Corruption("wal: unknown record type " +
                                std::to_string(type));
  }
}

Result<TailState> DecodeFrames(std::string_view bytes, uint64_t base_lsn,
                               bool last_segment, std::vector<Record>* out,
                               size_t* valid_bytes) {
  size_t off = 0;
  if (valid_bytes != nullptr) *valid_bytes = 0;
  while (off < bytes.size()) {
    // A frame that cannot even declare its length is torn if nothing
    // follows it — which is always true here, since we stop on the first
    // bad frame — but only a *final* segment may legally end that way.
    const size_t remaining = bytes.size() - off;
    auto torn_or_corrupt = [&](const char* what) -> Result<TailState> {
      if (last_segment) return TailState::kTorn;
      return Status::Corruption(std::string("wal: ") + what +
                                " at lsn " + std::to_string(base_lsn + off) +
                                " with later segments present");
    };
    if (remaining < kFrameHeaderBytes) return torn_or_corrupt("short header");
    uint32_t len = 0, crc = 0;
    std::memcpy(&len, bytes.data() + off, sizeof(len));
    std::memcpy(&crc, bytes.data() + off + sizeof(len), sizeof(crc));
    if (len > kMaxRecordBytes) return torn_or_corrupt("absurd record length");
    if (remaining < kFrameHeaderBytes + len) {
      return torn_or_corrupt("truncated record");
    }
    const char* payload = bytes.data() + off + kFrameHeaderBytes;
    if (Crc32(payload, len) != crc) {
      // A complete frame with a bad CRC at the very end of the final
      // segment is a torn write of the payload; the same mismatch with
      // valid data after it can only be mid-log corruption.
      if (last_segment && off + kFrameHeaderBytes + len == bytes.size()) {
        return TailState::kTorn;
      }
      return Status::Corruption("wal: CRC mismatch at lsn " +
                                std::to_string(base_lsn + off));
    }
    MAMMOTH_ASSIGN_OR_RETURN(Record rec,
                             DecodeRecord(std::string_view(payload, len)));
    rec.lsn = base_lsn + off;
    off += kFrameHeaderBytes + len;
    rec.end_lsn = base_lsn + off;
    out->push_back(std::move(rec));
    if (valid_bytes != nullptr) *valid_bytes = off;
  }
  return TailState::kClean;
}

}  // namespace mammoth::wal
